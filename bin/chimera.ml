(* The chimera CLI: run rule scripts, evaluate event expressions against
   inline streams, inspect V(E) analyses, or start a small REPL.

     chimera run script.ch          execute a script file
     chimera stats script.ch        execute and report the obs snapshot
     chimera eval "A < B" "A B"     ts timeline of an expression
     chimera analyze "A + -B"       static V(E) analysis
     chimera serve --port 7877      network ingestion server
     chimera loadgen --port 7877    load generator against a server
     chimera repl                   interactive statements *)

open Core
open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Every subcommand body runs under this guard so an engine-level failure
   surfaces as an ordinary cmdliner error (exit code 1, message on
   stderr) instead of an escaping exception (exit 125): unreadable paths
   from [read_file]/[Journal.create] raise [Sys_error], malformed
   numbers raise [Failure], stream items raise [Invalid_argument]. *)
let protected f =
  try f () with
  | Sys_error msg | Failure msg | Invalid_argument msg -> `Error (false, msg)

(* ------------------------------------------------------------- run *)

let fsync_policy_conv =
  let parse = function
    | "write" -> Ok Journal.Per_write
    | "commit" -> Ok Journal.Per_commit
    | "never" -> Ok Journal.Never
    | s -> Error (`Msg (Printf.sprintf "unknown fsync policy %s (write|commit|never)" s))
  in
  let print ppf p =
    Format.pp_print_string ppf
      (match p with
      | Journal.Per_write -> "write"
      | Journal.Per_commit -> "commit"
      | Journal.Never -> "never")
  in
  Arg.conv (parse, print)

let fsync_arg =
  Arg.(
    value
    & opt fsync_policy_conv Journal.Per_commit
    & info [ "fsync" ] ~docv:"POLICY"
        ~doc:
          "Journal fsync policy: $(b,write) (every block), $(b,commit) \
           (markers only, the default) or $(b,never).")

let print_stats interp =
  let stats = Engine.statistics (Interp.engine interp) in
  Printf.printf
    "-- %d line(s), %d event(s), %d consideration(s), %d execution(s)\n"
    stats.Engine.lines stats.Engine.events stats.Engine.considerations
    stats.Engine.executions;
  Printf.printf "-- memo: %d hit(s), %d miss(es), %d node(s)\n"
    stats.Engine.memo_hits stats.Engine.memo_misses stats.Engine.memo_nodes;
  (match Engine.journal (Interp.engine interp) with
  | None -> ()
  | Some j ->
      let c = Journal.counters j in
      Printf.printf
        "-- journal: %d record(s), %d commit(s), %d fsync(s), %d rotation(s), %d byte(s) -> %s\n"
        c.Journal.appends c.Journal.commits c.Journal.syncs
        c.Journal.rotations c.Journal.bytes_written (Journal.path j));
  Printf.printf "-- %s\n"
    (Fmt.str "%a" Event_stats.pp
       (Event_stats.of_event_base (Engine.event_base (Interp.engine interp))))

(* --trace without a value records spans into the ring and turns on the
   debug log; --trace=stderr streams spans to stderr; any other value is
   a JSONL file path.  --metrics enables the counters and prints the
   snapshot after the run. *)
let setup_obs ~metrics ~trace =
  if metrics || trace <> None then Obs.set_enabled true;
  match trace with
  | None | Some "" -> ()
  | Some "1" ->
      Logs.set_reporter (Logs.format_reporter ());
      Logs.set_level (Some Logs.Debug)
  | Some "stderr" -> Obs.Sink.attach (Obs.Sink.stderr ())
  | Some path -> Obs.Sink.attach (Obs.Sink.jsonl ~path)

let finish_obs ~metrics ~trace =
  if trace <> None then Obs.publish ();
  if metrics then Fmt.pr "%a@." Obs.pp_snapshot (Obs.snapshot ())

(* The wake strategy of the Trigger Support: indexed (the default) or the
   legacy sweep, kept selectable for A/B comparison. *)
let wake_arg =
  let mode =
    Arg.enum
      [
        ("indexed", Trigger_support.Indexed); ("sweep", Trigger_support.Sweep);
      ]
  in
  Arg.(
    value
    & opt mode Trigger_support.Indexed
    & info [ "wake" ] ~docv:"MODE"
        ~doc:
          "Trigger wake strategy.  $(b,indexed) (the default) wakes only \
           the rules subscribed, via their V(E), to an event type that \
           actually arrived; $(b,sweep) visits every rule after every \
           block — the legacy path, kept for A/B comparison.")

let config_of_wake wake =
  {
    Engine.default_config with
    Engine.trigger = { Trigger_support.default_config with Trigger_support.wake };
  }

let run_script trace metrics journal_path fsync checkpoint_every wake path =
 protected @@ fun () ->
  setup_obs ~metrics ~trace;
  let interp = Interp.create ~config:(config_of_wake wake) () in
  let journal =
    Option.map
      (fun path ->
        let j = Journal.create ~sync:fsync ~path () in
        Engine.set_journal (Interp.engine interp) j;
        j)
      journal_path
  in
  (match (journal, checkpoint_every) with
  | None, Some _ -> invalid_arg "--checkpoint-every requires --journal"
  | Some _, Some every_commits ->
      Engine.enable_checkpoints (Interp.engine interp) ~every_commits ()
  | _, None -> ());
  let finish result =
    Option.iter Journal.close journal;
    finish_obs ~metrics ~trace;
    result
  in
  match Interp.run_string interp (read_file path) with
  | Ok () ->
      print_string (Interp.output interp);
      print_stats interp;
      finish (`Ok ())
  | Error msg ->
      print_string (Interp.output interp);
      finish (`Error (false, msg))

let journal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"PATH"
        ~doc:
          "Write-ahead journal file: every transaction is made durable and \
           $(b,chimera recover) can rebuild the state after a crash.")

let checkpoint_every_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:
          "Bounded state: every $(i,N) commits write a checkpoint beside \
           the journal, seal the live segment, and GC the sealed segments \
           the checkpoint covers — recovery boots from the checkpoint \
           plus the O(delta) journal suffix.  Requires $(b,--journal).")

let checkpoint_interval_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "checkpoint-interval" ] ~docv:"SECONDS"
        ~doc:
          "Time-based checkpoint cadence: a checkpoint cycle runs at the \
           first commit boundary at least $(i,SECONDS) after the last one \
           (monotonic clock).  Combinable with $(b,--checkpoint-every) — \
           whichever cadence is due first fires.  Requires $(b,--journal).")

let trace_arg =
  Arg.(
    value
    & opt ~vopt:(Some "1") (some string) None
    & info [ "trace" ] ~docv:"TARGET"
        ~doc:
          "Record trace spans.  Without a value also logs \
           trigger/consideration decisions; $(b,--trace=stderr) streams \
           spans to stderr; any other value is a JSONL file the spans and \
           the final metrics snapshot are written to.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Enable the metrics registry and print its snapshot at the end.")

let run_cmd =
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"SCRIPT" ~doc:"Script file to execute.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute a Chimera rule script")
    Term.(
      ret
        (const run_script $ trace_arg $ metrics_arg $ journal_arg $ fsync_arg
        $ checkpoint_every_arg $ wake_arg $ path))

(* ----------------------------------------------------------- stats *)

(* Like [run] with everything enabled: executes the script under metrics
   and span recording, then reports the snapshot and the hottest interned
   memo nodes — the quick profiling entry point. *)
let stats_script top wake path =
 protected @@ fun () ->
  Obs.set_enabled true;
  let interp = Interp.create ~config:(config_of_wake wake) () in
  match Interp.run_string interp (read_file path) with
  | Error msg ->
      print_string (Interp.output interp);
      `Error (false, msg)
  | Ok () ->
      print_string (Interp.output interp);
      Fmt.pr "%a@." Obs.pp_snapshot (Obs.snapshot ());
      let nodes =
        List.filter
          (fun n -> Memo.(n.node_hits + n.node_misses) > 0)
          (Memo.node_stats (Engine.memo (Interp.engine interp)))
      in
      let nodes =
        List.sort
          (fun a b ->
            compare
              Memo.(b.node_hits + b.node_misses)
              Memo.(a.node_hits + a.node_misses))
          nodes
      in
      let shown = List.filteri (fun i _ -> i < top) nodes in
      if shown <> [] then begin
        Fmt.pr "@.hot memo nodes (top %d of %d touched):@."
          (List.length shown) (List.length nodes);
        Fmt.pr "  %8s %8s %6s %6s  %s@." "hits" "misses" "inval" "cost" "node";
        List.iter
          (fun n ->
            Fmt.pr "  %8d %8d %6d %6d  %s%s@." n.Memo.node_hits
              n.Memo.node_misses n.Memo.node_invalidations n.Memo.node_cost
              n.Memo.node_expr
              (if n.Memo.node_cached then "" else "  [uncached]"))
          shown
      end;
      let spans = Obs.Trace.recorded () in
      Fmt.pr "@.%d span(s) in the trace ring (capacity %d)@."
        (List.length spans)
        (Obs.Trace.ring_capacity ());
      `Ok ()

let stats_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"SCRIPT" ~doc:"Script file to execute.")
  in
  let top =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"N" ~doc:"Hot memo nodes to list.")
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Executes the script with the metrics registry and span recording \
         enabled, then reports the snapshot and the hottest interned memo \
         nodes.";
      `S "WAKE AND POSTING-LIST COUNTERS";
      `P
        "$(b,trigger.woken) / $(b,trigger.idle): rules drained from the \
         dirty set at a wake vs. rules the wake never visited.  Under \
         $(b,--wake=indexed) the woken count tracks the rules an arrived \
         event type actually subscribes, so idle grows with rule count \
         while woken does not; under $(b,--wake=sweep) every rule is \
         visited and both counters stay 0.";
      `P
        "$(b,eventbase.posting_appends) / $(b,eventbase.posting_probes): \
         per-type posting-list maintenance on record vs. binary-search \
         probes serving type-restricted queries; \
         $(b,eventbase.posting_lists) gauges the distinct indexed types.";
      `P
        "$(b,trigger.checks) / $(b,trigger.probes) / $(b,trigger.skipped): \
         per-rule trigger checks, ts probe instants, and checks skipped \
         via V(E).  The probes-per-event ratio is the headline figure of \
         the indexed wake (see bench e11).";
      `P
        "$(b,gc.floor): the commit sequence the last checkpoint cycle \
         retired journal segments at or below (bounded-state runs).  Under \
         $(b,chimera serve) the per-shard $(b,repl.ack_floor.shard)N \
         gauges report the lowest commit a replication follower has not \
         yet durably acked (-1 with no followers attached); both floors \
         also appear in the $(b,STATS) verb's bounds line.";
      `P
        "$(b,sub.notifies) / $(b,sub.gaps) / $(b,sub.dropped): live \
         subscription pushes under $(b,chimera serve) — $(b,NOTIFY) \
         frames written to subscribers, $(b,NOTIFY_GAP) frames emitted \
         when the per-connection $(b,--notify-queue) bound sheds \
         backlog, and the individual notifies those gaps account as \
         shed.  $(b,sub.active) gauges the subscriptions currently \
         registered across all sessions.  The same figures appear on \
         the $(b,STATS) verb's $(b,subs:) line.";
    ]
  in
  Cmd.v
    (Cmd.info "stats" ~man
       ~doc:"Execute a script under full observability and report the snapshot")
    Term.(ret (const stats_script $ top $ wake_arg $ path))

(* --------------------------------------------------------- recover *)

(* Replays a script's definitions (classes, triggers, timers) without
   executing any transaction line — the shared prologue of [recover] and
   [checkpoint], whose journals were recorded under those definitions. *)
let interp_with_definitions script_path =
  match Lang_parser.parse (read_file script_path) with
  | Error msg -> Error msg
  | Ok script -> (
      let interp = Interp.create () in
      let definitions =
        List.filter
          (function
            | Lang_ast.Define_class _ | Lang_ast.Define_trigger _
            | Lang_ast.Define_timer _ ->
                true
            | _ -> false)
          script
      in
      let defined =
        List.fold_left
          (fun acc stmt ->
            match acc with
            | Error _ -> acc
            | Ok () -> Interp.run_statement interp stmt)
          (Ok ()) definitions
      in
      match defined with Error msg -> Error msg | Ok () -> Ok interp)

let recover_from_journal journal_path script_path =
 protected @@ fun () ->
  match interp_with_definitions script_path with
  | Error msg -> `Error (false, msg)
  | Ok interp -> (
          match Engine.recover (Interp.engine interp) ~path:journal_path with
          | Error msg -> `Error (false, msg)
          | Ok report ->
              Printf.printf
                "recovered %d transaction(s) (last commit seq %d), %d record(s)\n"
                report.Engine.recovered_commits report.Engine.last_commit_seq
                report.Engine.recovered_entries;
              (match report.Engine.booted_from_checkpoint with
              | None -> ()
              | Some seq ->
                  Printf.printf
                    "booted from checkpoint at commit seq %d; replayed %d \
                     suffix record(s)%s\n"
                    seq report.Engine.replayed_records
                    (match report.Engine.first_segment with
                    | Some n when n > 0 ->
                        Printf.sprintf
                          " (chain starts at segment %d, older segments GC'd)"
                          n
                    | _ -> ""));
              if report.Engine.dropped_entries > 0 || report.Engine.dropped_bytes > 0
              then
                Printf.printf
                  "dropped %d uncommitted record(s) and %d torn byte(s)\n"
                  report.Engine.dropped_entries report.Engine.dropped_bytes;
              let store = Engine.store (Interp.engine interp) in
              Printf.printf "store: %d live object(s)\n"
                (Object_store.count_live store);
              List.iter
                (fun (oid, class_name, deleted, _attrs) ->
                  if not deleted then
                    Printf.printf "  %s\n"
                      (Fmt.str "%a" (Object_store.pp_object store) oid)
                  else
                    Printf.printf "  o%d: deleted (%s)\n"
                      (Ident.Oid.to_int oid) class_name)
                (Object_store.dump_objects store);
              Printf.printf "events: %d occurrence(s) in the log\n"
                (Event_base.size (Engine.event_base (Interp.engine interp)));
              `Ok ())

let script_defs_arg =
  Arg.(
    required
    & pos 1 (some file) None
    & info [] ~docv:"SCRIPT"
        ~doc:
          "The script whose definitions (classes, triggers, timers) the \
           journal was recorded under; its transaction lines are not \
           executed.")

let recover_cmd =
  let journal =
    (* [string], not [file]: the live file may be freshly sealed away, and
       a GC'd chain legally starts past segment 0 — [read_chain] decides
       what is tolerable, not the argument parser. *)
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"JOURNAL"
          ~doc:
            "Journal path written by $(b,run --journal) (the head of its \
             sealed-segment chain).")
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:"Rebuild the state after the last committed transaction from a journal")
    Term.(ret (const recover_from_journal $ journal $ script_defs_arg))

(* ------------------------------------------------------- checkpoint *)

(* The offline checkpoint: recover the committed state from the chain,
   write a checkpoint covering it, then GC the sealed segments it covers
   (ascending, so a failure can only shorten the chain from the front —
   never punch a hole).  The live file stays: later appends land there,
   and recovery filters its already-covered records by commit sequence. *)
let checkpoint_journal journal_path script_path =
 protected @@ fun () ->
  match interp_with_definitions script_path with
  | Error msg -> `Error (false, msg)
  | Ok interp -> (
      let engine = Interp.engine interp in
      match Engine.recover engine ~path:journal_path with
      | Error msg -> `Error (false, msg)
      | Ok report ->
          let ckpt =
            {
              Checkpoint.commit_seq = report.Engine.last_commit_seq;
              entries = Engine.checkpoint_records engine;
            }
          in
          let ckpt_path = Checkpoint.path_for journal_path in
          Checkpoint.write ~path:ckpt_path ckpt;
          Printf.printf
            "checkpoint at commit seq %d (%d record(s)) -> %s\n"
            ckpt.Checkpoint.commit_seq
            (List.length ckpt.Checkpoint.entries)
            ckpt_path;
          let dir = Filename.dirname journal_path in
          let prefix = Filename.basename journal_path ^ ".seg-" in
          let plen = String.length prefix in
          let segments =
            (match Sys.readdir dir with
            | exception Sys_error _ -> []
            | names ->
                Array.to_list names
                |> List.filter_map (fun name ->
                       if
                         String.length name > plen
                         && String.sub name 0 plen = prefix
                       then
                         match
                           int_of_string_opt
                             (String.sub name plen (String.length name - plen))
                         with
                         | Some seq -> Some (seq, Filename.concat dir name)
                         | None -> None
                       else None))
            |> List.sort compare
          in
          let removed = ref 0 in
          (try
             List.iter
               (fun (_, seg) ->
                 match Journal.read ~path:seg with
                 | Ok r when r.Journal.last_commit_seq <= ckpt.Checkpoint.commit_seq
                   ->
                     Sys.remove seg;
                     incr removed
                 | _ -> raise Exit)
               segments
           with Exit -> ());
          if !removed > 0 then
            Printf.printf "GC'd %d covered segment(s)\n" !removed;
          `Ok ())

let checkpoint_cmd =
  let journal =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"JOURNAL"
          ~doc:"Journal path to checkpoint (the head of its chain).")
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Recovers the committed state from the journal chain (checkpoint \
         plus suffix when one already exists), atomically writes a fresh \
         checkpoint beside the journal covering its last committed \
         transaction, and unlinks the sealed segments the checkpoint \
         covers.  The next $(b,chimera recover) boots from the checkpoint \
         and replays only transactions journaled after it.";
    ]
  in
  Cmd.v
    (Cmd.info "checkpoint" ~man
       ~doc:"Write a checkpoint beside a journal and GC the covered segments")
    Term.(ret (const checkpoint_journal $ journal $ script_defs_arg))

(* ------------------------------------------------------------ eval *)

let parse_stream s =
  let items =
    List.filter (fun x -> x <> "") (String.split_on_char ' ' (String.trim s))
  in
  List.map
    (fun item ->
      match String.split_on_char '@' item with
      | [ name ] -> (name, 1)
      | [ name; obj ] -> (name, int_of_string obj)
      | _ -> invalid_arg ("cannot parse stream item " ^ item))
    items

let eval_expression expr_src stream_src =
 protected @@ fun () ->
  match Expr_parse.parse expr_src with
  | Error msg -> `Error (false, msg)
  | Ok expr ->
      let eb = Event_base.create () in
      let report label =
        let at = Event_base.probe_now eb in
        let env = Ts.env eb ~window:(Window.all ~upto:at) in
        let v = Ts.ts env ~at expr in
        Printf.printf "%-24s ts=%-6d %s\n" label v
          (if v > 0 then Printf.sprintf "ACTIVE since t%d" v else "inactive")
      in
      report "(start)";
      List.iter
        (fun (name, obj) ->
          let etype =
            match Event_type.of_string name with
            | Ok t -> t
            | Error _ -> Event_type.external_ ~name ~class_name:""
          in
          ignore (Event_base.record eb ~etype ~oid:(Ident.Oid.of_int obj));
          report (Printf.sprintf "%s@o%d" name obj))
        (parse_stream stream_src);
      `Ok ()

let eval_cmd =
  let expr =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPR" ~doc:"Event expression.")
  in
  let stream =
    Arg.(value & pos 1 string "" & info [] ~docv:"STREAM" ~doc:"Whitespace-separated name[@obj] occurrences.")
  in
  Cmd.v
    (Cmd.info "eval" ~doc:"Evaluate an event expression over a stream")
    Term.(ret (const eval_expression $ expr $ stream))

(* --------------------------------------------------------- analyze *)

let analyze_expression expr_src =
  match Expr_parse.parse expr_src with
  | Error msg -> `Error (false, msg)
  | Ok expr ->
      Printf.printf "expression:      %s\n" (Expr.to_string expr);
      Printf.printf "size/depth:      %d/%d\n" (Expr.size expr) (Expr.depth expr);
      Printf.printf "regular:         %b\n" (Expr.is_regular expr);
      (let n = Normal_form.nnf expr in
       if not (Expr.equal n expr) then
         Printf.printf "negation NF:     %s\n" (Expr.to_string n));
      Printf.printf "\n%s\n" (Fmt.str "%a" Derive.pp_trace (Derive.derive expr));
      Printf.printf "V(E) = %s\n" (Simplify.to_string (Simplify.v_of_expr expr));
      let relevance = Relevance.of_expr expr in
      Printf.printf "always relevant: %b\n" (Relevance.always_relevant relevance);
      `Ok ()

let analyze_cmd =
  let expr =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPR" ~doc:"Event expression.")
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Static V(E) analysis of an event expression")
    Term.(ret (const analyze_expression $ expr))

(* ----------------------------------------------------------- graph *)

let graph_script path =
 protected @@ fun () ->
  match Lang_parser.parse (read_file path) with
  | Error msg -> `Error (false, msg)
  | Ok script ->
      let specs =
        List.filter_map
          (function Lang_ast.Define_trigger spec -> Some spec | _ -> None)
          script
      in
      if specs = [] then `Error (false, "script defines no triggers")
      else begin
        Printf.printf "triggering graph (%d rules):\n" (List.length specs);
        print_string
          (Fmt.str "%a" Analysis.pp_graph (Analysis.triggering_graph specs));
        (match Analysis.potential_cycles specs with
        | [] -> print_endline "termination: PROVED (acyclic triggering graph)"
        | cycles ->
            print_endline "termination: NOT PROVED - potential cycles:";
            List.iter
              (fun cycle ->
                Printf.printf "  {%s}\n" (String.concat ", " cycle))
              cycles);
        `Ok ()
      end

let graph_cmd =
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"SCRIPT" ~doc:"Script file to analyze.")
  in
  Cmd.v
    (Cmd.info "graph" ~doc:"Triggering graph and termination check of a script's rules")
    Term.(ret (const graph_script $ path))

(* ----------------------------------------------------------- serve *)

let parse_follow = function
  | None -> Ok None
  | Some spec -> (
      match String.rindex_opt spec ':' with
      | None -> Error (Printf.sprintf "bad --follow %S: expected HOST:PORT" spec)
      | Some i -> (
          let host = String.sub spec 0 i in
          let port = String.sub spec (i + 1) (String.length spec - i - 1) in
          match int_of_string_opt port with
          | Some p when host <> "" && p > 0 && p < 65536 ->
              Ok (Some (host, p))
          | _ ->
              Error
                (Printf.sprintf "bad --follow %S: expected HOST:PORT" spec)))

let serve trace metrics host port engines domains journal_dir fsync
    checkpoint_every checkpoint_interval script max_conns max_frame
    max_pending idle_timeout notify_queue follow repl_async =
 protected @@ fun () ->
  if notify_queue < 1 then
    `Error (false, "--notify-queue must be at least 1")
  else
  match parse_follow follow with
  | Error msg -> `Error (false, msg)
  | Ok follow ->
  setup_obs ~metrics ~trace;
  let boot_script = Option.map read_file script in
  let config =
    {
      Server.default_config with
      host;
      port;
      engines;
      domains;
      journal_dir;
      fsync;
      boot_script;
      max_conns;
      max_frame;
      max_pending;
      idle_timeout;
      notify_queue;
      follow;
      repl_sync = not repl_async;
      checkpoint_every;
      checkpoint_interval;
    }
  in
  match Server.create config with
  | Error msg -> `Error (false, msg)
  | Ok server ->
      Server.install_signal_handlers server;
      let running_domains =
        Session.Manager.domains (Server.manager server)
      in
      Printf.printf
        "chimera serve: listening on %s:%d (%d engine shard(s), %s%s%s)\n%!"
        host (Server.port server) engines
        (match running_domains with
        | 0 -> "inline on the reactor thread"
        | n -> Printf.sprintf "%d worker domain(s)" n)
        (match journal_dir with
        | None -> ""
        | Some dir -> Printf.sprintf ", journals in %s" dir)
        (match follow with
        | None -> ""
        | Some (h, p) -> Printf.sprintf ", standby following %s:%d" h p);
      Server.run server;
      finish_obs ~metrics ~trace;
      Printf.printf "chimera serve: drained cleanly\n";
      `Ok ()

let host_arg =
  Arg.(
    value
    & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"ADDR" ~doc:"Address to bind or connect to.")

let serve_cmd =
  let port =
    Arg.(
      value
      & opt int Server.default_config.Server.port
      & info [ "port" ] ~docv:"PORT"
          ~doc:"TCP port to listen on; $(b,0) binds an ephemeral port.")
  in
  let engines =
    Arg.(
      value
      & opt int 1
      & info [ "engines" ] ~docv:"N"
          ~doc:
            "Independent engine shards; each session is pinned to the shard \
             its id hashes to and transactions serialize per shard.")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"M"
          ~doc:
            "Worker domains executing the engine shards (shard $(i,i) \
             runs on domain $(i,i) mod $(i,M)).  Defaults to one domain \
             per shard; $(b,0) runs every shard inline on the reactor \
             thread (the pre-multicore behaviour).")
  in
  let journal_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"DIR"
          ~doc:
            "Directory for the per-shard write-ahead journals \
             ($(i,DIR)/shard-$(i,N).journal), each replayable with \
             $(b,chimera recover).")
  in
  let script =
    Arg.(
      value
      & opt (some file) None
      & info [ "script" ] ~docv:"SCRIPT"
          ~doc:
            "Boot script (class, trigger and timer definitions) executed \
             and committed on every shard before the first accept.")
  in
  let max_conns =
    Arg.(
      value
      & opt int Server.default_config.Server.max_conns
      & info [ "max-conns" ] ~docv:"N"
          ~doc:"Connection admission cap; further accepts get $(b,ERR busy).")
  in
  let max_frame =
    Arg.(
      value
      & opt int Server.default_config.Server.max_frame
      & info [ "max-frame" ] ~docv:"BYTES"
          ~doc:"Frame payload cap; larger frames close the connection.")
  in
  let max_pending =
    Arg.(
      value
      & opt int Server.default_config.Server.max_pending
      & info [ "max-pending" ] ~docv:"N"
          ~doc:"Per-session bound on commands queued behind a busy shard.")
  in
  let idle_timeout =
    Arg.(
      value
      & opt float Server.default_config.Server.idle_timeout
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:"Close sessions idle this long; $(b,0) disables.")
  in
  let notify_queue =
    Arg.(
      value
      & opt int Server.default_config.Server.notify_queue
      & info [ "notify-queue" ] ~docv:"N"
          ~doc:
            "Slow-consumer bound for live subscriptions: at most $(i,N) \
             $(b,NOTIFY) pushes wait per connection; beyond it the \
             oldest is shed and accounted to that subscription's next \
             $(b,NOTIFY_GAP) frame, so subscribers see every committed \
             activation either delivered or explicitly gapped.")
  in
  let follow =
    Arg.(
      value
      & opt (some string) None
      & info [ "follow" ] ~docv:"HOST:PORT"
          ~doc:
            "Run as a warm standby of the primary at $(i,HOST:PORT): tail \
             its journal stream, apply committed transactions, refuse \
             writes with $(b,ERR standby), and promote to primary on \
             SIGUSR1 (or a $(b,PROMOTE) frame).  Requires $(b,--journal).")
  in
  let repl_async =
    Arg.(
      value & flag
      & info [ "repl-async" ]
          ~doc:
            "Ship the journal stream to followers asynchronously: commit \
             replies return without waiting for follower acknowledgements \
             (faster, but the freshest acked commits can be lost with the \
             primary).  The default is semi-synchronous.")
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Serves the engine over TCP with the length-prefixed frame protocol \
         (HELLO, LINE, COMMIT, ABORT, STATS, PING, QUIT).  SIGTERM and \
         SIGINT drain gracefully: accepts stop, lines already received \
         finish, clients get $(b,ERR shutdown), journals flush, and the \
         process exits 0.";
      `P
        "Sessions that negotiate the $(b,sub) HELLO feature can register \
         live subscriptions: $(b,SUB <id> [BIN] ON <event-expr> [DO \
         at-bindings]) compiles an ad-hoc composite-event rule scoped to \
         the connection, $(b,UNSUB <id>) drops it, and every committed \
         activation is pushed asynchronously as a $(b,NOTIFY) frame (or \
         accounted by a $(b,NOTIFY_GAP) when $(b,--notify-queue) sheds \
         backlog), in commit order per subscription.";
    ]
  in
  Cmd.v
    (Cmd.info "serve" ~man ~doc:"Serve the engine over TCP")
    Term.(
      ret
        (const serve $ trace_arg $ metrics_arg $ host_arg $ port $ engines
        $ domains $ journal_dir $ fsync_arg $ checkpoint_every_arg
        $ checkpoint_interval_arg $ script $ max_conns $ max_frame
        $ max_pending $ idle_timeout $ notify_queue $ follow $ repl_async))

(* --------------------------------------------------------- loadgen *)

let loadgen host port conns lines line commit_every pipeline binary events
    batch etype subscribe reconnect retry_max retry_base retry_cap seed =
 protected @@ fun () ->
  let config =
    {
      Loadgen.default_config with
      host;
      port;
      conns;
      lines;
      line;
      commit_every;
      pipeline;
      binary;
      events;
      batch;
      etype;
      subscribe;
      reconnect;
      retry_max;
      retry_base;
      retry_cap;
      seed;
    }
  in
  match Loadgen.run config with
  | Error msg -> `Error (false, msg)
  | Ok report ->
      Fmt.pr "%a@." Loadgen.pp_report report;
      if report.Loadgen.errors > 0 then
        `Error
          (false, Printf.sprintf "%d protocol error(s)" report.Loadgen.errors)
      else `Ok ()

let loadgen_cmd =
  let port =
    Arg.(
      required
      & opt (some int) None
      & info [ "port" ] ~docv:"PORT" ~doc:"Port of the server to drive.")
  in
  let conns =
    Arg.(
      value
      & opt int Loadgen.default_config.Loadgen.conns
      & info [ "conns" ] ~docv:"C" ~doc:"Concurrent connections.")
  in
  let lines =
    Arg.(
      value
      & opt int Loadgen.default_config.Loadgen.lines
      & info [ "lines" ] ~docv:"L" ~doc:"Transaction lines per connection.")
  in
  let line =
    Arg.(
      value
      & opt string Loadgen.default_config.Loadgen.line
      & info [ "line" ] ~docv:"TEXT"
          ~doc:"Rule-language text every LINE frame carries.")
  in
  let commit_every =
    Arg.(
      value
      & opt int Loadgen.default_config.Loadgen.commit_every
      & info [ "commit-every" ] ~docv:"N" ~doc:"Commit every $(i,N) events.")
  in
  let pipeline =
    Arg.(
      value
      & opt int Loadgen.default_config.Loadgen.pipeline
      & info [ "pipeline" ] ~docv:"DEPTH"
          ~doc:
            "Frames in flight per session (default $(b,1): strict \
             ping-pong).  The server's HELLO $(b,window) token is the \
             useful maximum.")
  in
  let binary =
    Arg.(
      value & flag
      & info [ "binary" ]
          ~doc:
            "Send binary EVENT/BATCH frames instead of LINE text: one \
             $(b,ETYPE) announcement per session, then fixed-width \
             records — the text parser is skipped entirely.")
  in
  let events =
    Arg.(
      value & flag
      & info [ "events" ]
          ~doc:
            "Send text $(b,EVENT <etype> <oid>) frames instead of LINE: \
             the same engine work as $(b,--binary) but through the text \
             parser — the apples-to-apples baseline.")
  in
  let batch =
    Arg.(
      value
      & opt int Loadgen.default_config.Loadgen.batch
      & info [ "batch" ] ~docv:"K"
          ~doc:
            "Records per binary frame (default $(b,1): EVENT frames; \
             above 1: BATCH frames, one reply each).  Ignored without \
             $(b,--binary).")
  in
  let etype =
    Arg.(
      value
      & opt string Loadgen.default_config.Loadgen.etype
      & info [ "etype" ] ~docv:"NAME"
          ~doc:"Event-type name binary records carry (announced as id 0).")
  in
  let subscribe =
    Arg.(
      value
      & opt int Loadgen.default_config.Loadgen.subscribe
      & info [ "subscribe" ] ~docv:"S"
          ~doc:
            "Extra subscriber connections: each registers one live \
             subscription on the event type before any ingester sends \
             work, then measures the push side — notify throughput, gap \
             accounting, and trigger-to-notify latency (every ingested \
             oid is its send time in nanoseconds).  Requires \
             $(b,--events) or $(b,--binary).")
  in
  let reconnect =
    Arg.(
      value & flag
      & info [ "reconnect" ]
          ~doc:
            "Ride out dropped connections: back off with jitter, \
             reconnect, and resend the uncommitted lines (a failover \
             drill's client).  Without it any mid-run failure is a hard \
             error.")
  in
  let retry_max =
    Arg.(
      value
      & opt int Loadgen.default_config.Loadgen.retry_max
      & info [ "retry-max" ] ~docv:"N"
          ~doc:"Consecutive failed connects tolerated before giving up.")
  in
  let retry_base =
    Arg.(
      value
      & opt float Loadgen.default_config.Loadgen.retry_base
      & info [ "retry-base" ] ~docv:"SECONDS"
          ~doc:"First backoff delay; doubles up to $(b,--retry-cap).")
  in
  let retry_cap =
    Arg.(
      value
      & opt float Loadgen.default_config.Loadgen.retry_cap
      & info [ "retry-cap" ] ~docv:"SECONDS"
          ~doc:"Backoff saturation bound.")
  in
  let seed =
    Arg.(
      value
      & opt int Loadgen.default_config.Loadgen.seed
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Backoff jitter PRNG seed (connection $(i,i) uses \
                $(i,SEED+i)).")
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"Drive a running server with concurrent protocol sessions")
    Term.(
      ret
        (const loadgen $ host_arg $ port $ conns $ lines $ line $ commit_every
       $ pipeline $ binary $ events $ batch $ etype $ subscribe $ reconnect
       $ retry_max $ retry_base $ retry_cap $ seed))

(* ------------------------------------------------------------ repl *)

let repl () =
  let interp = Interp.create () in
  print_endline "Chimera composite-events REPL; ';'-terminated statements, ctrl-d to quit.";
  let buffer = Buffer.create 128 in
  (try
     while true do
       print_string (if Buffer.length buffer = 0 then "chimera> " else "   ...> ");
       let line = read_line () in
       Buffer.add_string buffer line;
       Buffer.add_char buffer '\n';
       if String.contains line ';' then begin
         let src = Buffer.contents buffer in
         Buffer.clear buffer;
         (match Interp.run_string interp src with
         | Ok () -> ()
         | Error msg -> Printf.printf "error: %s\n" msg);
         print_string (Interp.output interp);
         Interp.clear_output interp
       end
     done
   with End_of_file -> print_newline ());
  `Ok ()

let repl_cmd =
  Cmd.v (Cmd.info "repl" ~doc:"Interactive session") Term.(ret (const repl $ const ()))

let main_cmd =
  let doc = "Composite events in Chimera (EDBT 1996) - reproduction CLI" in
  Cmd.group (Cmd.info "chimera" ~doc)
    [
      run_cmd;
      stats_cmd;
      recover_cmd;
      checkpoint_cmd;
      eval_cmd;
      analyze_cmd;
      graph_cmd;
      serve_cmd;
      loadgen_cmd;
      repl_cmd;
    ]

(* ~term_err:1 so engine failures exit 1 uniformly across subcommands;
   CLI usage errors keep cmdliner's 124. *)
let () = exit (Cmd.eval ~term_err:1 main_cmd)
