(* E9: write-ahead journaling overhead — the fsync-policy ablation of
   the durability layer (DESIGN.md "Durable transactions").

   Identical inventory traffic per row (same seed, same rule set); only
   the journal attachment differs: none, fsync never (buffered appends
   only), fsync per commit (the default — one durability point per
   transaction), fsync per write (every block forced to disk).  The
   no-journal row is the baseline the overhead is measured against. *)

open Core

type policy = No_journal | Sync of Journal.sync_policy

let policy_label = function
  | No_journal -> "none"
  | Sync Journal.Never -> "never"
  | Sync Journal.Per_commit -> "per-commit"
  | Sync Journal.Per_write -> "per-write"

let transactions = 8
let lines_per_tx = 40
let ops_per_line = 3

(* One full measured run: fresh engine, fresh journal file, [transactions]
   committed transactions of seeded traffic. *)
let run_once ~seed policy =
  let engine = Scenario.engine () in
  let journal =
    match policy with
    | No_journal -> None
    | Sync sync ->
        let path = Filename.temp_file "chimera-e9" ".chj" in
        let j = Journal.create ~sync ~path () in
        Engine.set_journal engine j;
        Some j
  in
  let prng = Prng.create ~seed in
  let elapsed, () =
    Bench_util.time_once_ns (fun () ->
        for _ = 1 to transactions do
          Scenario.run_inventory_traffic prng engine ~lines:lines_per_tx
            ~ops_per_line;
          Engine.commit_exn engine
        done)
  in
  let counters = Option.map Journal.counters journal in
  Option.iter
    (fun j ->
      Journal.close j;
      try Sys.remove (Journal.path j) with Sys_error _ -> ())
    journal;
  (elapsed, counters)

(* Minimum of [runs] fresh runs: engines are stateful, so repetition means
   rebuilding, not re-entering. *)
let measure ~seed ?(runs = 3) policy =
  let best = ref infinity in
  let counters = ref None in
  for _ = 1 to runs do
    let elapsed, c = run_once ~seed policy in
    if elapsed < !best then begin
      best := elapsed;
      counters := c
    end
  done;
  (!best, !counters)

let e9 () =
  Bench_util.print_header "E9: write-ahead journal overhead (fsync policy)";
  Bench_util.print_note
    "Identical seeded inventory traffic per row; only the journal\n\
     attachment differs.  8 transactions x 40 lines x 3 ops; min of 3\n\
     fresh runs.  'per-commit' is the default durability point (one\n\
     fsync per transaction); 'per-write' forces every block.";
  let seed = Bench_util.seed_of_experiment "e9" in
  let table =
    Pretty.table
      ~title:
        (Printf.sprintf "journaling: %d tx x %d lines x %d ops" transactions
           lines_per_tx ops_per_line)
      ~header:
        [ "journal"; "total"; "per line"; "overhead"; "fsyncs"; "bytes" ]
      ~aligns:
        [ Pretty.Left; Pretty.Right; Pretty.Right; Pretty.Right; Pretty.Right;
          Pretty.Right ]
      ()
  in
  let json_rows = ref [] in
  let lines_total = transactions * lines_per_tx in
  let baseline = ref nan in
  List.iter
    (fun policy ->
      let total, counters = measure ~seed policy in
      if policy = No_journal then baseline := total;
      let per_line = total /. float_of_int lines_total in
      let overhead =
        if policy = No_journal then "1.00x"
        else Printf.sprintf "%.2fx" (total /. !baseline)
      in
      let fsyncs, bytes =
        match counters with
        | None -> (0, 0)
        | Some c -> (c.Journal.syncs, c.Journal.bytes_written)
      in
      Pretty.add_row table
        [
          policy_label policy;
          Pretty.ns_cell total;
          Pretty.ns_cell per_line;
          overhead;
          string_of_int fsyncs;
          string_of_int bytes;
        ];
      json_rows :=
        Bench_util.(
          J_obj
            [
              ("policy", J_string (policy_label policy));
              ("total_ns", J_float total);
              ("ns_per_line", J_float per_line);
              ("overhead", J_float (total /. !baseline));
              ("fsyncs", J_int fsyncs);
              ("bytes_written", J_int bytes);
              ("transactions", J_int transactions);
              ("lines", J_int lines_total);
            ])
        :: !json_rows)
    [ No_journal; Sync Journal.Never; Sync Journal.Per_commit;
      Sync Journal.Per_write ];
  print_string (Pretty.render table);
  Bench_util.write_json ~experiment:"e9" (List.rev !json_rows)
