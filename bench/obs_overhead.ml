(* E10: observability overhead (extension).

   The obs layer rides the hottest engine paths (memo probes, trigger
   sweeps, every transaction line), so its cost is measured where it
   hurts: identical inventory traffic under three modes —

     disabled   the shipped default: every obs entry point is one
                load-and-branch
     metrics    counters/histograms live, spans recorded into the ring
     trace      metrics plus the JSONL file sink streaming every span

   The acceptance budget is the *disabled* row: it must stay within noise
   of the pre-obs engine (checked against E6/E8 numbers); the enabled
   rows document what turning the instruments on costs. *)

open Core

let e10 () =
  Bench_util.print_header "E10: observability overhead";
  Bench_util.print_note
    "Identical traffic (400 lines x 5 ops, standard rule set) per row;\n\
     only the obs mode differs.  min of 5 runs per row.";
  let was_enabled = Obs.enabled () in
  let run () =
    let engine = Scenario.engine () in
    let prng = Prng.create ~seed:(Bench_util.seed_of_experiment "e10") in
    let lines = 400 and ops_per_line = 5 in
    let elapsed, () =
      Bench_util.time_once_ns (fun () ->
          Scenario.run_inventory_traffic prng engine ~lines ~ops_per_line;
          match Engine.commit engine with
          | Ok () -> ()
          | Error e -> invalid_arg (Fmt.str "%a" Engine.pp_error e))
    in
    (elapsed, lines)
  in
  (* One discarded run per mode: the first measured transaction of a
     process otherwise absorbs heap growth and cache warm-up, which
     lands entirely on whichever mode happens to run first. *)
  let min_of_5 f =
    ignore (f ());
    let best = ref infinity and lines = ref 0 in
    for _ = 1 to 5 do
      let t, n = f () in
      if t < !best then best := t;
      lines := n
    done;
    (!best, !lines)
  in
  let trace_path = Filename.temp_file "chimera_e10" ".jsonl" in
  let modes =
    [
      ( "disabled",
        (fun () -> Obs.set_enabled false),
        fun () -> () );
      ( "metrics",
        (fun () ->
          Obs.set_enabled true;
          Obs.reset ()),
        fun () -> () );
      ( "trace",
        (fun () ->
          Obs.set_enabled true;
          Obs.reset ();
          Obs.Sink.attach (Obs.Sink.jsonl ~path:trace_path)),
        fun () -> Obs.Sink.detach ("jsonl:" ^ trace_path) );
    ]
  in
  let table =
    Pretty.table ~title:"engine traffic under obs modes"
      ~header:[ "mode"; "lines/s"; "ns/line"; "overhead" ]
      ~aligns:[ Pretty.Left; Pretty.Right; Pretty.Right; Pretty.Right ]
      ()
  in
  let json_rows = ref [] in
  let baseline = ref nan in
  Obs.set_enabled false;
  ignore (run ());
  List.iter
    (fun (mode, setup, teardown) ->
      setup ();
      let t, lines = min_of_5 run in
      teardown ();
      let per_line = t /. float_of_int lines in
      if Float.is_nan !baseline then baseline := per_line;
      let overhead = 100.0 *. ((per_line /. !baseline) -. 1.0) in
      Pretty.add_row table
        [
          mode;
          Printf.sprintf "%.0f" (float_of_int lines /. (t /. 1e9));
          Printf.sprintf "%.0f" per_line;
          Printf.sprintf "%+.1f%%" overhead;
        ];
      json_rows :=
        Bench_util.(
          J_obj
            [
              ("mode", J_string mode);
              ("lines", J_int lines);
              ("ns_per_line", J_float per_line);
              ("overhead_pct", J_float overhead);
            ])
        :: !json_rows)
    modes;
  Pretty.print table;
  (try Sys.remove trace_path with Sys_error _ -> ());
  Obs.set_enabled was_enabled;
  Bench_util.write_json ~experiment:"e10" (List.rev !json_rows)
