(* The experiment harness: regenerates every figure and worked example of
   the paper (F1-F6, W1-W2) and runs the performance study its
   implementation section motivates (E1-E6), as indexed in DESIGN.md and
   recorded in EXPERIMENTS.md.

     dune exec bench/main.exe            runs everything
     dune exec bench/main.exe -- f5 e2   runs selected experiments
     dune exec bench/main.exe -- micro   bechamel micro-benchmarks only *)

let experiments =
  [
    ("f1", "operator table (Fig. 1/2)", Figures.f1);
    ("f3", "example event base (Fig. 3/4)", Figures.f3);
    ("f5", "ts timelines + De Morgan (Fig. 5)", Figures.f5);
    ("f6", "V(E) worked example (Fig. 6/7)", Figures.f6);
    ("w1", "set-oriented walkthroughs (3.1)", Figures.w1);
    ("w2", "instance-oriented walkthroughs (3.2)", Figures.w2);
    ("e1", "ts latency vs window size", Perf.e1);
    ("e2", "V(E) ablation", Perf.e2);
    ("e3", "calculus vs baselines", Compare.e3);
    ("e4", "instance vs set granularity", Perf.e4);
    ("e5", "consuming vs preserving", Perf.e5);
    ("e6", "engine throughput", Perf.e6);
    ("e7", "memoized ts ablation", Perf.e7);
    ("e8", "shared memo engine path", Perf.e8);
    ("e9", "journaling overhead (fsync policy)", Durability.e9);
    ("e10", "observability overhead", Obs_overhead.e10);
    ("e11", "wide rule sets: sweep vs indexed wake", Wide.e11);
    ("e12", "network serving throughput (1 vs 4 shards)", Serve_bench.e12);
    ("e13", "worker-domain scaling (inline vs 1/2/4 domains)", Serve_bench.e13);
    ( "e14",
      "journal-shipping replication (0 vs 1 follower, failover)",
      Serve_bench.e14 );
    ("e15", "bounded state (checkpoints, GC, windows)", Bounded.e15);
    ( "e16",
      "pipelined binary ingestion vs text EVENT ping-pong",
      Serve_bench.e16 );
    ( "e17",
      "live-subscription push throughput (8 vs 64 subscribers)",
      Serve_bench.e17 );
    ("micro", "bechamel micro-benchmarks", Micro.run);
  ]

let usage () =
  print_endline "usage: main.exe [experiment ...]";
  print_endline "experiments:";
  List.iter
    (fun (id, descr, _) -> Printf.printf "  %-6s %s\n" id descr)
    experiments

let () =
  match Array.to_list Sys.argv with
  | _ :: [] ->
      print_endline
        "Composite Events in Chimera (EDBT 1996) - experiment harness";
      List.iter (fun (_, _, run) -> run ()) experiments
  | _ :: args ->
      if List.mem "--help" args || List.mem "-h" args then usage ()
      else
        List.iter
          (fun arg ->
            match
              List.find_opt (fun (id, _, _) -> String.equal id arg) experiments
            with
            | Some (_, _, run) -> run ()
            | None ->
                Printf.printf "unknown experiment %s\n" arg;
                usage ();
                exit 1)
          args
  | [] -> usage ()
