(* Timing helpers and shared workload builders for the experiment
   harness.  Wall-clock tables use the monotonic clock; the [micro] module
   additionally runs Bechamel for statistically analyzed micro-timings. *)

open Core

let now_ns () = Int64.to_float (Monotonic_clock.now ())

(* Times [f] repeated until [min_time_ns] elapsed (at least [min_runs]),
   returning ns per run. *)
let time_ns ?(min_time_ns = 5e7) ?(min_runs = 3) f =
  (* Warm-up run (also forces any lazy initialization). *)
  ignore (f ());
  let start = now_ns () in
  let rec loop runs =
    ignore (f ());
    let elapsed = now_ns () -. start in
    if elapsed < min_time_ns || runs < min_runs then loop (runs + 1)
    else elapsed /. float_of_int runs
  in
  loop 1

(* Times one execution of [f] (for setups too slow to repeat). *)
let time_once_ns f =
  let start = now_ns () in
  let result = f () in
  (now_ns () -. start, result)

let print_header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let print_note note = Printf.printf "%s\n" note

(* Replays a (type, oid-index) stream into a fresh event base. *)
let replay_stream stream =
  let eb = Event_base.create () in
  List.iter
    (fun (etype, oid) -> ignore (Event_base.record eb ~etype ~oid))
    stream;
  eb

(* Fixed seeds: every table in EXPERIMENTS.md is reproducible. *)
let seed_of_experiment = function
  | "e1" -> 101
  | "e2" -> 202
  | "e3" -> 303
  | "e4" -> 404
  | "e5" -> 505
  | "e6" -> 606
  | "e8" -> 808
  | "e9" -> 909
  | "e10" -> 1010
  | "e11" -> 1111
  | "e12" -> 1212
  | "e14" -> 1414
  | "e15" -> 1515
  | _ -> 7

(* ------------------------------------------------ machine-readable *)

(* A minimal JSON value, enough for BENCH_*.json result files (no
   external dependency). *)
type json =
  | J_bool of bool
  | J_int of int
  | J_float of float
  | J_string of string
  | J_list of json list
  | J_obj of (string * json) list

let rec json_to_buf buf = function
  | J_bool b -> Buffer.add_string buf (string_of_bool b)
  | J_int i -> Buffer.add_string buf (string_of_int i)
  | J_float f ->
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6g" f)
      else Buffer.add_string buf "null"
  | J_string s ->
      Buffer.add_char buf '"';
      String.iter
        (fun c ->
          match c with
          | '"' -> Buffer.add_string buf "\\\""
          | '\\' -> Buffer.add_string buf "\\\\"
          | '\n' -> Buffer.add_string buf "\\n"
          | c when Char.code c < 0x20 ->
              Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
          | c -> Buffer.add_char buf c)
        s;
      Buffer.add_char buf '"'
  | J_list items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          json_to_buf buf item)
        items;
      Buffer.add_char buf ']'
  | J_obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          json_to_buf buf (J_string k);
          Buffer.add_char buf ':';
          json_to_buf buf v)
        fields;
      Buffer.add_char buf '}'

(* The obs snapshot in the bench JSON schema: even an obs-disabled run
   embeds it (all zeroes then), so every BENCH_*.json records the metric
   state its numbers were produced under. *)
let json_of_histogram_stat (s : Obs.Metrics.histogram_stat) =
  J_obj
    [
      ("count", J_int s.Obs.Metrics.h_count);
      ("sum_ns", J_int s.Obs.Metrics.h_sum);
      ("min_ns", J_int s.Obs.Metrics.h_min);
      ("max_ns", J_int s.Obs.Metrics.h_max);
      ( "buckets",
        J_list
          (List.map
             (fun (lower, count) -> J_list [ J_int lower; J_int count ])
             s.Obs.Metrics.h_buckets) );
    ]

let json_of_snapshot (snap : Obs.snapshot) =
  J_obj
    [
      ( "counters",
        J_obj (List.map (fun (k, v) -> (k, J_int v)) snap.Obs.counters) );
      ("gauges", J_obj (List.map (fun (k, v) -> (k, J_int v)) snap.Obs.gauges));
      ( "histograms",
        J_obj
          (List.map
             (fun (k, s) -> (k, json_of_histogram_stat s))
             snap.Obs.histograms) );
    ]

(* Writes BENCH_<id>.json into the invocation directory: the experiment's
   rows in machine-readable form, next to the pretty table on stdout. *)
let write_json ~experiment rows =
  let path = Printf.sprintf "BENCH_%s.json" experiment in
  let doc =
    J_obj
      [
        ("experiment", J_string experiment);
        ("seed", J_int (seed_of_experiment experiment));
        ("obs_enabled", J_bool (Obs.enabled ()));
        ("metrics", json_of_snapshot (Obs.snapshot ()));
        ("rows", J_list rows);
      ]
  in
  let buf = Buffer.create 1024 in
  json_to_buf buf doc;
  Buffer.add_char buf '\n';
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Buffer.contents buf));
  Printf.printf "(results written to %s)\n" path
