(* E15: bounded state — the long soak behind DESIGN.md §4h and the
   test-suite miniature in test/suite_bounded.ml.

   Two questions, one table each:

   - Soak: does resident state stay flat as the run length grows?  Same
     stationary churn workload (one create + one delete per committed
     transaction) at increasing lengths; a leak anywhere — event log,
     store tombstones, per-object indexes, journal chain — shows up as
     heap growth proportional to the run.
   - Recovery: is boot time proportional to the post-checkpoint suffix
     (O(delta)) rather than the journal history?  Fixed run length,
     varying checkpoint cadence, plus a no-checkpoint baseline that
     replays the whole chain. *)

open Core

let bounded_config =
  {
    Engine.default_config with
    Engine.compact_at_commit = None;
    retire_in_tx = Some 1;
  }

let remove_chain path =
  let rm p = try Sys.remove p with Sys_error _ -> () in
  rm path;
  rm (Checkpoint.path_for path);
  let dir = Filename.dirname path and base = Filename.basename path in
  let prefix = base ^ ".seg-" in
  Array.iter
    (fun f ->
      if
        String.length f > String.length prefix
        && String.sub f 0 (String.length prefix) = prefix
      then rm (Filename.concat dir f))
    (Sys.readdir dir)

let chain_files path =
  let dir = Filename.dirname path and base = Filename.basename path in
  let prefix = base ^ ".seg-" in
  let segs =
    Array.fold_left
      (fun n f ->
        if
          String.length f > String.length prefix
          && String.sub f 0 (String.length prefix) = prefix
        then n + 1
        else n)
      0 (Sys.readdir dir)
  in
  segs + (if Sys.file_exists path then 1 else 0)

(* The stationary transaction of the bounded suite: one create, one
   delete past a small population — state the engine must NOT retain is
   generated every commit, state it must retain stays constant. *)
let stationary_tx engine =
  Engine.execute_line_exn engine
    [ Domain.new_stock ~quantity:50 ~maxquantity:100 ~minquantity:10 ];
  (match Object_store.extent (Engine.store engine) ~class_name:"stock" with
  | oid :: _ :: _ :: _ :: _ ->
      Engine.execute_line_exn engine [ Operation.Delete { oid } ]
  | _ -> ());
  Engine.commit_exn engine

let journaled_engine ~path ~checkpoint_every =
  let engine = Scenario.engine ~config:bounded_config () in
  let journal = Journal.create ~path () in
  Engine.set_journal engine journal;
  (match checkpoint_every with
  | Some every_commits -> Engine.enable_checkpoints engine ~every_commits ()
  | None -> ());
  (engine, journal)

let live_words () =
  Gc.full_major ();
  (Gc.stat ()).Gc.live_words

let soak_lengths = [ 500; 2_000; 8_000 ]
let soak_every = 50
let warmup = 100

let run_soak txs =
  let path = Filename.temp_file "chimera-e15" ".chj" in
  Fun.protect ~finally:(fun () -> remove_chain path) @@ fun () ->
  let engine, journal =
    journaled_engine ~path ~checkpoint_every:(Some soak_every)
  in
  let eb = Engine.event_base engine in
  for _ = 1 to warmup do
    stationary_tx engine
  done;
  let words0 = live_words () in
  let elapsed, () =
    Bench_util.time_once_ns (fun () ->
        for _ = 1 to txs do
          stationary_tx engine
        done)
  in
  let words1 = live_words () in
  let result =
    ( elapsed,
      words1 - words0,
      Event_base.size eb,
      Event_base.live_size eb,
      chain_files path )
  in
  Journal.close journal;
  result

let recovery_cadences = [ Some 25; Some 100; Some 400; None ]
let recovery_txs = 4_013 (* not a cadence multiple: a real suffix replays *)

let run_recovery checkpoint_every =
  let path = Filename.temp_file "chimera-e15" ".chj" in
  Fun.protect ~finally:(fun () -> remove_chain path) @@ fun () ->
  let engine, journal = journaled_engine ~path ~checkpoint_every in
  for _ = 1 to recovery_txs do
    stationary_tx engine
  done;
  ignore engine;
  Journal.close journal;
  let fresh = Scenario.engine ~config:bounded_config () in
  let elapsed, report =
    Bench_util.time_once_ns (fun () ->
        match Engine.recover fresh ~path with
        | Ok r -> r
        | Error msg -> failwith msg)
  in
  (elapsed, report)

let e15 () =
  Bench_util.print_header "E15: bounded state (checkpoints, GC, windows)";
  Bench_util.print_note
    "Stationary churn: each committed transaction creates one stock row\n\
     and deletes one past a small population.  Soak rows grow the run\n\
     16x; flat state means heap growth stays near zero regardless.\n\
     Recovery rows fix the run and vary the checkpoint cadence; boot\n\
     cost follows the post-checkpoint suffix, with the no-checkpoint\n\
     row replaying the whole chain as the O(history) baseline.";
  let json_rows = ref [] in
  let soak =
    Pretty.table
      ~title:
        (Printf.sprintf "soak (checkpoint every %d commits, %d warmup txs)"
           soak_every warmup)
      ~header:
        [ "txs"; "total"; "per tx"; "heap delta"; "log size"; "live"; "files" ]
      ~aligns:
        [ Pretty.Right; Pretty.Right; Pretty.Right; Pretty.Right; Pretty.Right;
          Pretty.Right; Pretty.Right ]
      ()
  in
  List.iter
    (fun txs ->
      let elapsed, heap_delta, log_size, live, files = run_soak txs in
      Pretty.add_row soak
        [
          string_of_int txs;
          Pretty.ns_cell elapsed;
          Pretty.ns_cell (elapsed /. float_of_int txs);
          Printf.sprintf "%+d w" heap_delta;
          string_of_int log_size;
          string_of_int live;
          string_of_int files;
        ];
      json_rows :=
        Bench_util.(
          J_obj
            [
              ("row", J_string "soak");
              ("transactions", J_int txs);
              ("total_ns", J_float elapsed);
              ("heap_delta_words", J_int heap_delta);
              ("log_absolute_size", J_int log_size);
              ("log_live_size", J_int live);
              ("chain_files", J_int files);
              ("checkpoint_every", J_int soak_every);
            ])
        :: !json_rows)
    soak_lengths;
  print_string (Pretty.render soak);
  let recovery =
    Pretty.table
      ~title:(Printf.sprintf "recovery after %d committed txs" recovery_txs)
      ~header:[ "ckpt every"; "boot"; "booted from"; "replayed records" ]
      ~aligns:[ Pretty.Right; Pretty.Right; Pretty.Right; Pretty.Right ]
      ()
  in
  List.iter
    (fun cadence ->
      let elapsed, report = run_recovery cadence in
      let label =
        match cadence with None -> "none" | Some n -> string_of_int n
      in
      Pretty.add_row recovery
        [
          label;
          Pretty.ns_cell elapsed;
          (match report.Engine.booted_from_checkpoint with
          | Some seq -> Printf.sprintf "seq %d" seq
          | None -> "full replay");
          string_of_int report.Engine.replayed_records;
        ];
      json_rows :=
        Bench_util.(
          J_obj
            [
              ("row", J_string "recovery");
              ("checkpoint_every",
               match cadence with None -> J_string "none" | Some n -> J_int n);
              ("boot_ns", J_float elapsed);
              ( "booted_from_checkpoint",
                match report.Engine.booted_from_checkpoint with
                | Some seq -> J_int seq
                | None -> J_bool false );
              ("replayed_records", J_int report.Engine.replayed_records);
              ("last_commit_seq", J_int report.Engine.last_commit_seq);
              ("transactions", J_int recovery_txs);
            ])
        :: !json_rows)
    recovery_cadences;
  print_string (Pretty.render recovery);
  Bench_util.write_json ~experiment:"e15" (List.rev !json_rows)
