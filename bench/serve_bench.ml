(* E12: network serving throughput — connection scaling, 1 vs 4 engine
   shards.

   The server and the load generator are both single-threaded pollable
   reactors, so the bench interleaves [Server.poll] and [Loadgen.poll]
   co-operatively in this one process: the numbers measure the full
   protocol path (framing, session multiplexing, engine execution,
   reply) without scheduler or loopback-stack noise dominating.  Every
   LINE creates one object and fires the boot trigger, so each round
   trip is one real transaction-line's worth of engine work.

   Sharding changes *serialization*, not parallelism (one thread): with
   1 shard all C sessions funnel their transactions through one engine
   and queue FIFO; with 4 shards sessions hash across 4 independent
   engines, so the queue behind any one transaction is a quarter as
   long.  The table reports how throughput and tail latency respond. *)

open Core

let lines = 150
let commit_every = 10
let shard_counts = [ 1; 4 ]
let conn_counts = [ 8; 64 ]

let boot_script =
  "define class item (n: integer);\n\
   define class audit (tag: string);\n\
   define immediate trigger onItem for item\n\
  \  events { create(item) }\n\
  \  condition item(I), occurred({ create(item) }, I), I.n > 0\n\
  \  actions create audit(tag = \"item\")\n\
   end;\n"

type row = {
  shards : int;
  conns : int;
  report : Loadgen.report;
}

let run_one ~shards ~conns =
  let server_config =
    {
      Server.default_config with
      Server.engines = shards;
      boot_script = Some boot_script;
      max_conns = conns + 8;
      idle_timeout = 0.;
    }
  in
  match Server.create server_config with
  | Error msg -> failwith msg
  | Ok srv ->
      let lg =
        match
          Loadgen.create
            {
              Loadgen.default_config with
              Loadgen.port = Server.port srv;
              conns;
              lines;
              commit_every;
            }
        with
        | Ok lg -> lg
        | Error msg -> failwith msg
      in
      let rec drive () =
        if not (Loadgen.finished lg) then begin
          ignore (Server.poll srv ~timeout:0.);
          Loadgen.poll lg ~timeout:0.;
          drive ()
        end
      in
      drive ();
      let report = Loadgen.report lg in
      (* Epilogue: drain so journal-free shards still close sockets. *)
      Server.request_drain srv;
      let rec stop n =
        if n > 0 then
          match Server.poll srv ~timeout:0.005 with
          | Server.Stopped -> ()
          | Server.Running -> stop (n - 1)
      in
      stop 1000;
      if report.Loadgen.errors > 0 then
        failwith
          (Printf.sprintf "e12: %d protocol error(s) at shards=%d conns=%d"
             report.Loadgen.errors shards conns);
      { shards; conns; report }

let e12 () =
  Bench_util.print_header
    "E12: network serving throughput (1 vs 4 engine shards)";
  Bench_util.print_note
    (Printf.sprintf
       "in-process loopback; %d lines/conn, commit every %d; every line \
        creates an object and fires the boot trigger"
       lines commit_every);
  let rows =
    List.concat_map
      (fun shards ->
        List.map (fun conns -> run_one ~shards ~conns) conn_counts)
      shard_counts
  in
  Printf.printf "\n  %6s %6s %10s %12s %10s %10s %10s\n" "shards" "conns"
    "lines" "lines/s" "p50 us" "p99 us" "max us";
  List.iter
    (fun { shards; conns; report = r } ->
      Printf.printf "  %6d %6d %10d %12.0f %10d %10d %10d\n" shards conns
        r.Loadgen.lines_ok r.Loadgen.lines_per_s
        (r.Loadgen.lat_p50_ns / 1000)
        (r.Loadgen.lat_p99_ns / 1000)
        (r.Loadgen.lat_max_ns / 1000))
    rows;
  let base speed_of target =
    match
      List.find_opt (fun r -> r.shards = 1 && r.conns = target.conns) rows
    with
    | Some b -> speed_of target.report /. speed_of b.report
    | None -> Float.nan
  in
  let speed r = r.Loadgen.lines_per_s in
  List.iter
    (fun r ->
      if r.shards > 1 then
        Printf.printf
          "  %d conns: %d shards serve %.2fx the single-shard throughput\n"
          r.conns r.shards (base speed r))
    rows;
  Bench_util.write_json ~experiment:"e12"
    (List.map
       (fun { shards; conns; report = r } ->
         Bench_util.J_obj
           [
             ("shards", Bench_util.J_int shards);
             ("conns", Bench_util.J_int conns);
             ("lines_per_conn", Bench_util.J_int lines);
             ("commit_every", Bench_util.J_int commit_every);
             ("lines_sent", Bench_util.J_int r.Loadgen.lines_sent);
             ("lines_ok", Bench_util.J_int r.Loadgen.lines_ok);
             ("triggered", Bench_util.J_int r.Loadgen.triggered);
             ("commits", Bench_util.J_int r.Loadgen.commits);
             ("errors", Bench_util.J_int r.Loadgen.errors);
             ("wall_s", Bench_util.J_float r.Loadgen.wall_s);
             ("lines_per_s", Bench_util.J_float r.Loadgen.lines_per_s);
             ("lat_p50_ns", Bench_util.J_int r.Loadgen.lat_p50_ns);
             ("lat_p90_ns", Bench_util.J_int r.Loadgen.lat_p90_ns);
             ("lat_p99_ns", Bench_util.J_int r.Loadgen.lat_p99_ns);
             ("lat_max_ns", Bench_util.J_int r.Loadgen.lat_max_ns);
           ])
       rows)

(* E13: worker-domain scaling — 4 engine shards executed inline on the
   reactor thread (domains = 0) versus on 1, 2 and 4 worker domains.

   Honest caveat baked into the JSON: the speedup ceiling is the machine's
   core count.  On a single-core container the domain runs measure the
   *overhead* of the mailbox hop (they cannot be faster than inline); the
   scaling story only materialises with cores to schedule the workers
   on.  The bench records [cores] so readers can tell which regime a
   result came from. *)

let e13_domain_counts = [ 0; 1; 2; 4 ]
let e13_conns = 64

type drow = { domains : int; report : Loadgen.report }

let run_domains ~domains =
  let server_config =
    {
      Server.default_config with
      Server.engines = 4;
      domains = Some domains;
      boot_script = Some boot_script;
      max_conns = e13_conns + 8;
      idle_timeout = 0.;
    }
  in
  match Server.create server_config with
  | Error msg -> failwith msg
  | Ok srv ->
      let lg =
        match
          Loadgen.create
            {
              Loadgen.default_config with
              Loadgen.port = Server.port srv;
              conns = e13_conns;
              lines;
              commit_every;
            }
        with
        | Ok lg -> lg
        | Error msg -> failwith msg
      in
      let rec drive () =
        if not (Loadgen.finished lg) then begin
          ignore (Server.poll srv ~timeout:0.);
          Loadgen.poll lg ~timeout:0.;
          drive ()
        end
      in
      drive ();
      let report = Loadgen.report lg in
      Server.request_drain srv;
      let rec stop n =
        if n > 0 then
          match Server.poll srv ~timeout:0.005 with
          | Server.Stopped -> ()
          | Server.Running -> stop (n - 1)
      in
      stop 1000;
      if report.Loadgen.errors > 0 then
        failwith
          (Printf.sprintf "e13: %d protocol error(s) at domains=%d"
             report.Loadgen.errors domains);
      { domains; report }

let e13 () =
  let cores = Stdlib.Domain.recommended_domain_count () in
  Bench_util.print_header
    "E13: worker-domain scaling (4 shards; inline vs 1/2/4 domains)";
  Bench_util.print_note
    (Printf.sprintf
       "%d conns, %d lines/conn, commit every %d; %d core(s) available — \
        on 1 core the domain rows measure mailbox-hop overhead, not \
        parallel speedup"
       e13_conns lines commit_every cores);
  let rows = List.map (fun domains -> run_domains ~domains) e13_domain_counts in
  Printf.printf "\n  %7s %10s %12s %10s %10s %10s\n" "domains" "lines"
    "lines/s" "p50 us" "p99 us" "max us";
  List.iter
    (fun { domains; report = r } ->
      Printf.printf "  %7d %10d %12.0f %10d %10d %10d\n" domains
        r.Loadgen.lines_ok r.Loadgen.lines_per_s
        (r.Loadgen.lat_p50_ns / 1000)
        (r.Loadgen.lat_p99_ns / 1000)
        (r.Loadgen.lat_max_ns / 1000))
    rows;
  (match List.find_opt (fun r -> r.domains = 0) rows with
  | Some inline ->
      List.iter
        (fun r ->
          if r.domains > 0 then
            Printf.printf "  %d domain(s): %.2fx the inline throughput\n"
              r.domains
              (r.report.Loadgen.lines_per_s
              /. inline.report.Loadgen.lines_per_s))
        rows
  | None -> ());
  Bench_util.write_json ~experiment:"e13"
    (List.map
       (fun { domains; report = r } ->
         Bench_util.J_obj
           [
             ("shards", Bench_util.J_int 4);
             ("domains", Bench_util.J_int domains);
             ("cores", Bench_util.J_int cores);
             ("conns", Bench_util.J_int e13_conns);
             ("lines_per_conn", Bench_util.J_int lines);
             ("commit_every", Bench_util.J_int commit_every);
             ("lines_sent", Bench_util.J_int r.Loadgen.lines_sent);
             ("lines_ok", Bench_util.J_int r.Loadgen.lines_ok);
             ("triggered", Bench_util.J_int r.Loadgen.triggered);
             ("commits", Bench_util.J_int r.Loadgen.commits);
             ("errors", Bench_util.J_int r.Loadgen.errors);
             ("wall_s", Bench_util.J_float r.Loadgen.wall_s);
             ("lines_per_s", Bench_util.J_float r.Loadgen.lines_per_s);
             ("lat_p50_ns", Bench_util.J_int r.Loadgen.lat_p50_ns);
             ("lat_p90_ns", Bench_util.J_int r.Loadgen.lat_p90_ns);
             ("lat_p99_ns", Bench_util.J_int r.Loadgen.lat_p99_ns);
             ("lat_max_ns", Bench_util.J_int r.Loadgen.lat_max_ns);
           ])
       rows)

(* E14: journal-shipping replication — what a warm standby costs and
   what a failover buys.

   The same co-operative single-thread harness as E12/E13, now with up
   to three reactors interleaved: the primary, its journal-tailing
   standby, and the load generator.  The follower row pays the full
   semi-synchronous price: every COMMIT reply is parked until the
   standby has written the records to its local segment copy (fsync per
   the follower's policy) and acknowledged them, so the delta against
   the zero-follower row is the whole replication round trip, not just
   the shipped bytes.

   After the load completes the primary is drained away, the standby is
   promoted, and two numbers are recorded: how long promotion takes (it
   is warm — the shipped segments are re-opened for append, nothing is
   replayed) and how many acknowledged commits the promoted journals
   are missing.  Semi-sync's contract is that the second number is
   zero. *)

let e14_conns = 32
let e14_lines = 100
let e14_shards = 2

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let e14_dir label =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "chimera-e14-%s-%d" label (Unix.getpid ()))
  in
  rm_rf dir;
  Unix.mkdir dir 0o755;
  dir

type rrow = {
  followers : int;
  r_report : Loadgen.report;
  lag_max : int;  (** worst commits-behind seen on any shard mid-run *)
  promote_ms : float;  (** NaN on the baseline row *)
  acked_lost : int;  (** acked commits missing from the promoted journals *)
}

(* Sum of last committed sequence numbers across a data directory's
   shard journals — commits are per-shard monotone from 1, so this is
   the directory's total committed-transaction count. *)
let e14_journal_commits dir =
  List.fold_left
    (fun acc shard ->
      match
        Journal.read
          ~path:(Filename.concat dir (Printf.sprintf "shard-%d.journal" shard))
      with
      | Ok r -> acc + r.Journal.last_commit_seq
      | Error msg -> failwith msg)
    0
    (List.init e14_shards Fun.id)

let run_repl ~follower =
  let dir_p = e14_dir "primary" in
  let dir_f = e14_dir "standby" in
  let base_config =
    {
      Server.default_config with
      Server.engines = e14_shards;
      domains = Some 0;
      boot_script = Some boot_script;
      max_conns = e14_conns + 8;
      idle_timeout = 0.;
    }
  in
  let primary =
    match
      Server.create { base_config with Server.journal_dir = Some dir_p }
    with
    | Ok s -> s
    | Error msg -> failwith msg
  in
  let standby =
    if not follower then None
    else
      match
        Server.create
          {
            base_config with
            Server.journal_dir = Some dir_f;
            follow = Some ("127.0.0.1", Server.port primary);
          }
      with
      | Ok s -> Some s
      | Error msg -> failwith msg
  in
  let lg =
    match
      Loadgen.create
        {
          Loadgen.default_config with
          Loadgen.port = Server.port primary;
          conns = e14_conns;
          lines = e14_lines;
          commit_every;
        }
    with
    | Ok lg -> lg
    | Error msg -> failwith msg
  in
  let lag_max = ref 0 in
  let sample_lag () =
    match standby with
    | None -> ()
    | Some s ->
        Array.iter
          (fun (applied, head) -> lag_max := max !lag_max (head - applied))
          (Session.Manager.repl_seqs (Server.manager s))
  in
  let poll_all () =
    ignore (Server.poll primary ~timeout:0.);
    match standby with
    | Some s -> ignore (Server.poll s ~timeout:0.)
    | None -> ()
  in
  let rec drive n =
    if not (Loadgen.finished lg) then begin
      poll_all ();
      Loadgen.poll lg ~timeout:0.;
      if n mod 64 = 0 then sample_lag ();
      drive (n + 1)
    end
  in
  drive 0;
  let report = Loadgen.report lg in
  if report.Loadgen.errors > 0 then
    failwith
      (Printf.sprintf "e14: %d protocol error(s) with %d follower(s)"
         report.Loadgen.errors
         (if follower then 1 else 0));
  (* Let any in-flight replication batch land before the primary goes
     away: under semi-sync the last acked COMMIT already implies the
     follower applied it, so a short grace is enough. *)
  for _ = 1 to 50 do
    poll_all ()
  done;
  sample_lag ();
  let stop srv =
    Server.request_drain srv;
    let rec go n =
      if n > 0 then
        match Server.poll srv ~timeout:0.005 with
        | Server.Stopped -> ()
        | Server.Running -> go (n - 1)
    in
    go 1000
  in
  stop primary;
  let promote_ms, acked_lost =
    match standby with
    | None -> (Float.nan, 0)
    | Some s ->
        let t0 = Monotime.now_s () in
        Server.request_promote s;
        let rec go n =
          if Server.standby s && n > 0 then begin
            ignore (Server.poll s ~timeout:0.001);
            go (n - 1)
          end
        in
        go 10_000;
        let ms = (Monotime.now_s () -. t0) *. 1e3 in
        if Server.standby s then failwith "e14: promotion never completed";
        stop s;
        (* Every acknowledged commit, plus the boot transaction each
           shard journals, must be in the promoted journals. *)
        let expected = report.Loadgen.commits + e14_shards in
        (ms, max 0 (expected - e14_journal_commits dir_f))
  in
  rm_rf dir_p;
  rm_rf dir_f;
  {
    followers = (if follower then 1 else 0);
    r_report = report;
    lag_max = !lag_max;
    promote_ms;
    acked_lost;
  }

let e14 () =
  Bench_util.print_header
    "E14: journal-shipping replication (0 vs 1 follower, failover)";
  Bench_util.print_note
    (Printf.sprintf
       "in-process loopback, %d shards inline; %d conns, %d lines/conn, \
        commit every %d; the follower row is semi-synchronous (COMMIT \
        waits for the standby's durable ack), then the primary is \
        stopped and the standby promoted"
       e14_shards e14_conns e14_lines commit_every);
  let rows = [ run_repl ~follower:false; run_repl ~follower:true ] in
  Printf.printf "\n  %9s %10s %12s %10s %10s %9s %11s %11s\n" "followers"
    "lines" "lines/s" "p50 us" "p99 us" "lag max" "promote ms" "acked lost";
  List.iter
    (fun { followers; r_report = r; lag_max; promote_ms; acked_lost } ->
      Printf.printf "  %9d %10d %12.0f %10d %10d %9d %11s %11d\n" followers
        r.Loadgen.lines_ok r.Loadgen.lines_per_s
        (r.Loadgen.lat_p50_ns / 1000)
        (r.Loadgen.lat_p99_ns / 1000)
        lag_max
        (if Float.is_nan promote_ms then "-"
         else Printf.sprintf "%.1f" promote_ms)
        acked_lost)
    rows;
  (match rows with
  | [ base; repl ] ->
      Printf.printf
        "  semi-sync replication keeps %.2fx the standalone throughput; \
         %d acked commit(s) lost across failover\n"
        (repl.r_report.Loadgen.lines_per_s
        /. base.r_report.Loadgen.lines_per_s)
        repl.acked_lost
  | _ -> ());
  Bench_util.write_json ~experiment:"e14"
    (List.map
       (fun { followers; r_report = r; lag_max; promote_ms; acked_lost } ->
         Bench_util.J_obj
           [
             ("followers", Bench_util.J_int followers);
             ("shards", Bench_util.J_int e14_shards);
             ("conns", Bench_util.J_int e14_conns);
             ("lines_per_conn", Bench_util.J_int e14_lines);
             ("commit_every", Bench_util.J_int commit_every);
             ("semi_sync", Bench_util.J_bool true);
             ("lines_sent", Bench_util.J_int r.Loadgen.lines_sent);
             ("lines_ok", Bench_util.J_int r.Loadgen.lines_ok);
             ("triggered", Bench_util.J_int r.Loadgen.triggered);
             ("commits", Bench_util.J_int r.Loadgen.commits);
             ("errors", Bench_util.J_int r.Loadgen.errors);
             ("reconnects", Bench_util.J_int r.Loadgen.reconnects);
             ("wall_s", Bench_util.J_float r.Loadgen.wall_s);
             ("lines_per_s", Bench_util.J_float r.Loadgen.lines_per_s);
             ("lat_p50_ns", Bench_util.J_int r.Loadgen.lat_p50_ns);
             ("lat_p90_ns", Bench_util.J_int r.Loadgen.lat_p90_ns);
             ("lat_p99_ns", Bench_util.J_int r.Loadgen.lat_p99_ns);
             ("lat_max_ns", Bench_util.J_int r.Loadgen.lat_max_ns);
             ("repl_lag_max_commits", Bench_util.J_int lag_max);
             ("promote_ms", Bench_util.J_float promote_ms);
             ("acked_commits_lost", Bench_util.J_int acked_lost);
           ])
       rows)

(* E16: pipelined binary ingestion — the tentpole measurement.

   Both rows do *identical engine work* (one external event occurrence
   per round-trip unit, through [Engine.ingest_event]); what differs is
   the wire path.  The baseline is text ping-pong: one [EVENT <etype>
   <oid>] frame outstanding per session, parsed by the text
   command-grammar on the reactor.  The contender is the binary path:
   BATCH frames of fixed-width records, decoded on the worker domains,
   [pipeline] frames deep per session — so the reactor never parses, and
   the round-trip latency is amortised over a full window.

   The ratio between the two events/s figures is the deliverable:
   single-shard it isolates protocol overhead (same engine, same
   serialization); at 4 shards it shows pipelining composing with
   shard parallelism.  [cores] is recorded because the worker-domain
   regime depends on it. *)

let e16_conns = 8
let e16_events = 1500
let e16_commit_every = 100
let e16_pipeline = 64
let e16_batch = 16
let e16_shard_counts = [ 1; 4 ]

type e16_row = { b_shards : int; b_binary : bool; b_report : Loadgen.report }

let e16_run ~shards ~binary =
  let server_config =
    {
      Server.default_config with
      Server.engines = shards;
      boot_script = Some boot_script;
      max_conns = e16_conns + 8;
      idle_timeout = 0.;
    }
  in
  match Server.create server_config with
  | Error msg -> failwith msg
  | Ok srv ->
      let lg_config =
        if binary then
          {
            Loadgen.default_config with
            Loadgen.port = Server.port srv;
            conns = e16_conns;
            lines = e16_events;
            commit_every = e16_commit_every;
            binary = true;
            pipeline = e16_pipeline;
            batch = e16_batch;
          }
        else
          {
            Loadgen.default_config with
            Loadgen.port = Server.port srv;
            conns = e16_conns;
            lines = e16_events;
            commit_every = e16_commit_every;
            events = true;
          }
      in
      let lg =
        match Loadgen.create lg_config with
        | Ok lg -> lg
        | Error msg -> failwith msg
      in
      let rec drive () =
        if not (Loadgen.finished lg) then begin
          ignore (Server.poll srv ~timeout:0.);
          Loadgen.poll lg ~timeout:0.;
          drive ()
        end
      in
      drive ();
      let report = Loadgen.report lg in
      Server.request_drain srv;
      let rec stop n =
        if n > 0 then
          match Server.poll srv ~timeout:0.005 with
          | Server.Stopped -> ()
          | Server.Running -> stop (n - 1)
      in
      stop 1000;
      if report.Loadgen.errors > 0 then
        failwith
          (Printf.sprintf "e16: %d protocol error(s) at shards=%d binary=%b"
             report.Loadgen.errors shards binary);
      if report.Loadgen.lines_ok < e16_conns * e16_events then
        failwith
          (Printf.sprintf "e16: only %d/%d events acknowledged"
             report.Loadgen.lines_ok (e16_conns * e16_events));
      { b_shards = shards; b_binary = binary; b_report = report }

let e16 () =
  let cores = Stdlib.Domain.recommended_domain_count () in
  Bench_util.print_header
    "E16: pipelined binary ingestion vs text EVENT ping-pong";
  Bench_util.print_note
    (Printf.sprintf
       "in-process loopback; %d conns x %d events, commit every %d; text \
        rows ping-pong EVENT frames, binary rows pipeline %d frames of \
        %d-record BATCHes; identical engine work per event; %d core(s)"
       e16_conns e16_events e16_commit_every e16_pipeline e16_batch cores);
  let rows =
    List.concat_map
      (fun shards ->
        [ e16_run ~shards ~binary:false; e16_run ~shards ~binary:true ])
      e16_shard_counts
  in
  Printf.printf "\n  %6s %7s %10s %12s %10s %10s\n" "shards" "mode" "events"
    "events/s" "p50 us" "p99 us";
  List.iter
    (fun { b_shards; b_binary; b_report = r } ->
      Printf.printf "  %6d %7s %10d %12.0f %10d %10d\n" b_shards
        (if b_binary then "binary" else "text")
        r.Loadgen.lines_ok r.Loadgen.lines_per_s
        (r.Loadgen.lat_p50_ns / 1000)
        (r.Loadgen.lat_p99_ns / 1000))
    rows;
  let ratio shards =
    let find binary =
      List.find_opt
        (fun r -> r.b_shards = shards && r.b_binary = binary)
        rows
    in
    match (find false, find true) with
    | Some t, Some b ->
        b.b_report.Loadgen.lines_per_s /. t.b_report.Loadgen.lines_per_s
    | _ -> Float.nan
  in
  List.iter
    (fun shards ->
      Printf.printf
        "  %d shard(s): binary pipelined ingests %.2fx the text ping-pong \
         rate\n"
        shards (ratio shards))
    e16_shard_counts;
  Bench_util.write_json ~experiment:"e16"
    (List.map
       (fun { b_shards; b_binary; b_report = r } ->
         Bench_util.J_obj
           [
             ("shards", Bench_util.J_int b_shards);
             ( "mode",
               Bench_util.J_string (if b_binary then "binary" else "text") );
             ("conns", Bench_util.J_int e16_conns);
             ("events_per_conn", Bench_util.J_int e16_events);
             ("commit_every", Bench_util.J_int e16_commit_every);
             ( "pipeline",
               Bench_util.J_int (if b_binary then e16_pipeline else 1) );
             ("batch", Bench_util.J_int (if b_binary then e16_batch else 1));
             ("cores", Bench_util.J_int cores);
             ("events_sent", Bench_util.J_int r.Loadgen.lines_sent);
             ("events_ok", Bench_util.J_int r.Loadgen.lines_ok);
             ("commits", Bench_util.J_int r.Loadgen.commits);
             ("errors", Bench_util.J_int r.Loadgen.errors);
             ("wall_s", Bench_util.J_float r.Loadgen.wall_s);
             ("events_per_s", Bench_util.J_float r.Loadgen.lines_per_s);
             ("lat_p50_ns", Bench_util.J_int r.Loadgen.lat_p50_ns);
             ("lat_p90_ns", Bench_util.J_int r.Loadgen.lat_p90_ns);
             ("lat_p99_ns", Bench_util.J_int r.Loadgen.lat_p99_ns);
             ("lat_max_ns", Bench_util.J_int r.Loadgen.lat_max_ns);
             ( "vs_text_ratio",
               Bench_util.J_float
                 (if b_binary then ratio b_shards else 1.0) );
           ])
       rows)

(* E17: live-subscription push throughput — one engine shard, binary
   pipelined ingestion, a growing pool of subscribers each holding one
   SUB rule on the ingested event type.

   Every committed event activates every subscription, so the push side
   fans out: S subscribers turn E ingested events into up to E*S NOTIFY
   frames, shed down to NOTIFY_GAP accounting when a subscriber's
   bounded queue overflows.  The delivery invariant is asserted, not
   assumed: delivered + shed = events * subscribers, exactly.  Each
   ingested oid is its send time in nanoseconds, so every delivered
   binding is one trigger-to-notify latency sample with no correlation
   state (see Loadgen). *)

let e17_ingest_conns = 4
let e17_events = 500
let e17_commit_every = 10
let e17_pipeline = 16
let e17_sub_counts = [ 8; 64 ]

type e17_row = { s_subs : int; s_report : Loadgen.report }

let e17_run ~subscribers =
  let server_config =
    {
      Server.default_config with
      Server.engines = 1;
      (* One shard, executed inline on the reactor thread: the push path
         is the subject here, and on the CI container's single core a
         worker domain only adds the mailbox hop e13 measures. *)
      domains = Some 0;
      max_conns = e17_ingest_conns + subscribers + 8;
      idle_timeout = 0.;
    }
  in
  match Server.create server_config with
  | Error msg -> failwith msg
  | Ok srv ->
      let lg =
        match
          Loadgen.create
            {
              Loadgen.default_config with
              Loadgen.port = Server.port srv;
              conns = e17_ingest_conns;
              lines = e17_events;
              commit_every = e17_commit_every;
              binary = true;
              pipeline = e17_pipeline;
              subscribe = subscribers;
            }
        with
        | Ok lg -> lg
        | Error msg -> failwith msg
      in
      let rec drive () =
        if not (Loadgen.finished lg) then begin
          ignore (Server.poll srv ~timeout:0.);
          Loadgen.poll lg ~timeout:0.;
          drive ()
        end
      in
      drive ();
      let report = Loadgen.report lg in
      Server.request_drain srv;
      let rec stop n =
        if n > 0 then
          match Server.poll srv ~timeout:0.005 with
          | Server.Stopped -> ()
          | Server.Running -> stop (n - 1)
      in
      stop 1000;
      if report.Loadgen.errors > 0 then
        failwith
          (Printf.sprintf "e17: %d protocol error(s) at subscribers=%d"
             report.Loadgen.errors subscribers);
      let expected = e17_ingest_conns * e17_events * subscribers in
      let accounted = report.Loadgen.notifies + report.Loadgen.gap_dropped in
      if accounted <> expected then
        failwith
          (Printf.sprintf
             "e17: delivery invariant broken at subscribers=%d: %d \
              delivered + %d shed <> %d expected"
             subscribers report.Loadgen.notifies report.Loadgen.gap_dropped
             expected);
      { s_subs = subscribers; s_report = report }

let e17 () =
  let cores = Stdlib.Domain.recommended_domain_count () in
  Bench_util.print_header
    "E17: live-subscription push throughput (one shard)";
  Bench_util.print_note
    (Printf.sprintf
       "in-process loopback; %d ingesters x %d binary events (pipeline \
        %d, commit every %d) fanning out to each subscriber's SUB rule; \
        notify queue %d/conn, overflow sheds into NOTIFY_GAP; %d core(s)"
       e17_ingest_conns e17_events e17_pipeline e17_commit_every
       Server.default_config.Server.notify_queue cores);
  let rows = List.map (fun s -> e17_run ~subscribers:s) e17_sub_counts in
  Printf.printf "\n  %6s %10s %8s %12s %10s %10s %10s\n" "subs" "notifies"
    "shed" "notifies/s" "p50 us" "p99 us" "max us";
  List.iter
    (fun { s_subs; s_report = r } ->
      Printf.printf "  %6d %10d %8d %12.0f %10d %10d %10d\n" s_subs
        r.Loadgen.notifies r.Loadgen.gap_dropped r.Loadgen.notifies_per_s
        (r.Loadgen.nlat_p50_ns / 1000)
        (r.Loadgen.nlat_p99_ns / 1000)
        (r.Loadgen.nlat_max_ns / 1000))
    rows;
  List.iter
    (fun { s_subs; s_report = r } ->
      if s_subs = 64 then
        Printf.printf
          "  64 subscribers: %.0f notifies/s delivered (target: 10000)\n"
          r.Loadgen.notifies_per_s)
    rows;
  Bench_util.write_json ~experiment:"e17"
    (List.map
       (fun { s_subs; s_report = r } ->
         Bench_util.J_obj
           [
             ("shards", Bench_util.J_int 1);
             ("domains", Bench_util.J_int 0);
             ("subscribers", Bench_util.J_int s_subs);
             ("ingest_conns", Bench_util.J_int e17_ingest_conns);
             ("events_per_conn", Bench_util.J_int e17_events);
             ("commit_every", Bench_util.J_int e17_commit_every);
             ("pipeline", Bench_util.J_int e17_pipeline);
             ( "notify_queue",
               Bench_util.J_int Server.default_config.Server.notify_queue );
             ("cores", Bench_util.J_int cores);
             ("events_ok", Bench_util.J_int r.Loadgen.lines_ok);
             ("notifies", Bench_util.J_int r.Loadgen.notifies);
             ("gap_frames", Bench_util.J_int r.Loadgen.gap_frames);
             ("gap_dropped", Bench_util.J_int r.Loadgen.gap_dropped);
             ("errors", Bench_util.J_int r.Loadgen.errors);
             ("wall_s", Bench_util.J_float r.Loadgen.wall_s);
             ("notifies_per_s", Bench_util.J_float r.Loadgen.notifies_per_s);
             ("nlat_p50_ns", Bench_util.J_int r.Loadgen.nlat_p50_ns);
             ("nlat_p90_ns", Bench_util.J_int r.Loadgen.nlat_p90_ns);
             ("nlat_p99_ns", Bench_util.J_int r.Loadgen.nlat_p99_ns);
             ("nlat_max_ns", Bench_util.J_int r.Loadgen.nlat_max_ns);
           ])
       rows)
