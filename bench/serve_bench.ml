(* E12: network serving throughput — connection scaling, 1 vs 4 engine
   shards.

   The server and the load generator are both single-threaded pollable
   reactors, so the bench interleaves [Server.poll] and [Loadgen.poll]
   co-operatively in this one process: the numbers measure the full
   protocol path (framing, session multiplexing, engine execution,
   reply) without scheduler or loopback-stack noise dominating.  Every
   LINE creates one object and fires the boot trigger, so each round
   trip is one real transaction-line's worth of engine work.

   Sharding changes *serialization*, not parallelism (one thread): with
   1 shard all C sessions funnel their transactions through one engine
   and queue FIFO; with 4 shards sessions hash across 4 independent
   engines, so the queue behind any one transaction is a quarter as
   long.  The table reports how throughput and tail latency respond. *)

open Core

let lines = 150
let commit_every = 10
let shard_counts = [ 1; 4 ]
let conn_counts = [ 8; 64 ]

let boot_script =
  "define class item (n: integer);\n\
   define class audit (tag: string);\n\
   define immediate trigger onItem for item\n\
  \  events { create(item) }\n\
  \  condition item(I), occurred({ create(item) }, I), I.n > 0\n\
  \  actions create audit(tag = \"item\")\n\
   end;\n"

type row = {
  shards : int;
  conns : int;
  report : Loadgen.report;
}

let run_one ~shards ~conns =
  let server_config =
    {
      Server.default_config with
      Server.engines = shards;
      boot_script = Some boot_script;
      max_conns = conns + 8;
      idle_timeout = 0.;
    }
  in
  match Server.create server_config with
  | Error msg -> failwith msg
  | Ok srv ->
      let lg =
        match
          Loadgen.create
            {
              Loadgen.default_config with
              Loadgen.port = Server.port srv;
              conns;
              lines;
              commit_every;
            }
        with
        | Ok lg -> lg
        | Error msg -> failwith msg
      in
      let rec drive () =
        if not (Loadgen.finished lg) then begin
          ignore (Server.poll srv ~timeout:0.);
          Loadgen.poll lg ~timeout:0.;
          drive ()
        end
      in
      drive ();
      let report = Loadgen.report lg in
      (* Epilogue: drain so journal-free shards still close sockets. *)
      Server.request_drain srv;
      let rec stop n =
        if n > 0 then
          match Server.poll srv ~timeout:0.005 with
          | Server.Stopped -> ()
          | Server.Running -> stop (n - 1)
      in
      stop 1000;
      if report.Loadgen.errors > 0 then
        failwith
          (Printf.sprintf "e12: %d protocol error(s) at shards=%d conns=%d"
             report.Loadgen.errors shards conns);
      { shards; conns; report }

let e12 () =
  Bench_util.print_header
    "E12: network serving throughput (1 vs 4 engine shards)";
  Bench_util.print_note
    (Printf.sprintf
       "in-process loopback; %d lines/conn, commit every %d; every line \
        creates an object and fires the boot trigger"
       lines commit_every);
  let rows =
    List.concat_map
      (fun shards ->
        List.map (fun conns -> run_one ~shards ~conns) conn_counts)
      shard_counts
  in
  Printf.printf "\n  %6s %6s %10s %12s %10s %10s %10s\n" "shards" "conns"
    "lines" "lines/s" "p50 us" "p99 us" "max us";
  List.iter
    (fun { shards; conns; report = r } ->
      Printf.printf "  %6d %6d %10d %12.0f %10d %10d %10d\n" shards conns
        r.Loadgen.lines_ok r.Loadgen.lines_per_s
        (r.Loadgen.lat_p50_ns / 1000)
        (r.Loadgen.lat_p99_ns / 1000)
        (r.Loadgen.lat_max_ns / 1000))
    rows;
  let base speed_of target =
    match
      List.find_opt (fun r -> r.shards = 1 && r.conns = target.conns) rows
    with
    | Some b -> speed_of target.report /. speed_of b.report
    | None -> Float.nan
  in
  let speed r = r.Loadgen.lines_per_s in
  List.iter
    (fun r ->
      if r.shards > 1 then
        Printf.printf
          "  %d conns: %d shards serve %.2fx the single-shard throughput\n"
          r.conns r.shards (base speed r))
    rows;
  Bench_util.write_json ~experiment:"e12"
    (List.map
       (fun { shards; conns; report = r } ->
         Bench_util.J_obj
           [
             ("shards", Bench_util.J_int shards);
             ("conns", Bench_util.J_int conns);
             ("lines_per_conn", Bench_util.J_int lines);
             ("commit_every", Bench_util.J_int commit_every);
             ("lines_sent", Bench_util.J_int r.Loadgen.lines_sent);
             ("lines_ok", Bench_util.J_int r.Loadgen.lines_ok);
             ("triggered", Bench_util.J_int r.Loadgen.triggered);
             ("commits", Bench_util.J_int r.Loadgen.commits);
             ("errors", Bench_util.J_int r.Loadgen.errors);
             ("wall_s", Bench_util.J_float r.Loadgen.wall_s);
             ("lines_per_s", Bench_util.J_float r.Loadgen.lines_per_s);
             ("lat_p50_ns", Bench_util.J_int r.Loadgen.lat_p50_ns);
             ("lat_p90_ns", Bench_util.J_int r.Loadgen.lat_p90_ns);
             ("lat_p99_ns", Bench_util.J_int r.Loadgen.lat_p99_ns);
             ("lat_max_ns", Bench_util.J_int r.Loadgen.lat_max_ns);
           ])
       rows)

(* E13: worker-domain scaling — 4 engine shards executed inline on the
   reactor thread (domains = 0) versus on 1, 2 and 4 worker domains.

   Honest caveat baked into the JSON: the speedup ceiling is the machine's
   core count.  On a single-core container the domain runs measure the
   *overhead* of the mailbox hop (they cannot be faster than inline); the
   scaling story only materialises with cores to schedule the workers
   on.  The bench records [cores] so readers can tell which regime a
   result came from. *)

let e13_domain_counts = [ 0; 1; 2; 4 ]
let e13_conns = 64

type drow = { domains : int; report : Loadgen.report }

let run_domains ~domains =
  let server_config =
    {
      Server.default_config with
      Server.engines = 4;
      domains = Some domains;
      boot_script = Some boot_script;
      max_conns = e13_conns + 8;
      idle_timeout = 0.;
    }
  in
  match Server.create server_config with
  | Error msg -> failwith msg
  | Ok srv ->
      let lg =
        match
          Loadgen.create
            {
              Loadgen.default_config with
              Loadgen.port = Server.port srv;
              conns = e13_conns;
              lines;
              commit_every;
            }
        with
        | Ok lg -> lg
        | Error msg -> failwith msg
      in
      let rec drive () =
        if not (Loadgen.finished lg) then begin
          ignore (Server.poll srv ~timeout:0.);
          Loadgen.poll lg ~timeout:0.;
          drive ()
        end
      in
      drive ();
      let report = Loadgen.report lg in
      Server.request_drain srv;
      let rec stop n =
        if n > 0 then
          match Server.poll srv ~timeout:0.005 with
          | Server.Stopped -> ()
          | Server.Running -> stop (n - 1)
      in
      stop 1000;
      if report.Loadgen.errors > 0 then
        failwith
          (Printf.sprintf "e13: %d protocol error(s) at domains=%d"
             report.Loadgen.errors domains);
      { domains; report }

let e13 () =
  let cores = Stdlib.Domain.recommended_domain_count () in
  Bench_util.print_header
    "E13: worker-domain scaling (4 shards; inline vs 1/2/4 domains)";
  Bench_util.print_note
    (Printf.sprintf
       "%d conns, %d lines/conn, commit every %d; %d core(s) available — \
        on 1 core the domain rows measure mailbox-hop overhead, not \
        parallel speedup"
       e13_conns lines commit_every cores);
  let rows = List.map (fun domains -> run_domains ~domains) e13_domain_counts in
  Printf.printf "\n  %7s %10s %12s %10s %10s %10s\n" "domains" "lines"
    "lines/s" "p50 us" "p99 us" "max us";
  List.iter
    (fun { domains; report = r } ->
      Printf.printf "  %7d %10d %12.0f %10d %10d %10d\n" domains
        r.Loadgen.lines_ok r.Loadgen.lines_per_s
        (r.Loadgen.lat_p50_ns / 1000)
        (r.Loadgen.lat_p99_ns / 1000)
        (r.Loadgen.lat_max_ns / 1000))
    rows;
  (match List.find_opt (fun r -> r.domains = 0) rows with
  | Some inline ->
      List.iter
        (fun r ->
          if r.domains > 0 then
            Printf.printf "  %d domain(s): %.2fx the inline throughput\n"
              r.domains
              (r.report.Loadgen.lines_per_s
              /. inline.report.Loadgen.lines_per_s))
        rows
  | None -> ());
  Bench_util.write_json ~experiment:"e13"
    (List.map
       (fun { domains; report = r } ->
         Bench_util.J_obj
           [
             ("shards", Bench_util.J_int 4);
             ("domains", Bench_util.J_int domains);
             ("cores", Bench_util.J_int cores);
             ("conns", Bench_util.J_int e13_conns);
             ("lines_per_conn", Bench_util.J_int lines);
             ("commit_every", Bench_util.J_int commit_every);
             ("lines_sent", Bench_util.J_int r.Loadgen.lines_sent);
             ("lines_ok", Bench_util.J_int r.Loadgen.lines_ok);
             ("triggered", Bench_util.J_int r.Loadgen.triggered);
             ("commits", Bench_util.J_int r.Loadgen.commits);
             ("errors", Bench_util.J_int r.Loadgen.errors);
             ("wall_s", Bench_util.J_float r.Loadgen.wall_s);
             ("lines_per_s", Bench_util.J_float r.Loadgen.lines_per_s);
             ("lat_p50_ns", Bench_util.J_int r.Loadgen.lat_p50_ns);
             ("lat_p90_ns", Bench_util.J_int r.Loadgen.lat_p90_ns);
             ("lat_p99_ns", Bench_util.J_int r.Loadgen.lat_p99_ns);
             ("lat_max_ns", Bench_util.J_int r.Loadgen.lat_max_ns);
           ])
       rows)
