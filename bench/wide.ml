(* E11: wide rule sets under sweep vs indexed wake.

   N rules, each watching create(c_i) for its own class — disjoint,
   sparse event types, the discrimination-network workload of Section 5.
   Traffic is round-robin: every line creates one object of class
   c_(line mod N), so exactly one rule is relevant per line.  The sweep
   wake still visits all N rules after every block; the indexed wake
   drains only the one subscribed rule.  The table reports how checks,
   probes and wall-clock scale as N grows 10 -> 100 -> 1000 under each
   mode: per-event work should stay flat under the indexed wake. *)

open Core

let lines = 1200
let commit_every = 300
let sizes = [ 10; 100; 1000 ]

let class_name i = Printf.sprintf "w%d" i

let schema n =
  let s = Schema.create () in
  for i = 0 to n - 1 do
    match Schema.define s ~name:(class_name i) ~attributes:[] () with
    | Ok _ -> ()
    | Error _ -> failwith "schema"
  done;
  s

let watch_rule i =
  {
    Rule.name = Printf.sprintf "watch%d" i;
    target = None;
    event = Expr.prim (Event_type.create ~class_name:(class_name i));
    condition = [];
    action = [];
    coupling = Rule.Immediate;
    consumption = Rule.Consuming;
    priority = 0;
  }

type row = {
  n : int;
  mode : string;
  wall_ns : float;
  checks : int;
  probes : int;
  skipped : int;
  woken : int;
  idle : int;
  fired : int;
  events : int;
  evals : int;
}

let run ~wake ~mode n =
  let config =
    {
      Engine.default_config with
      Engine.trigger = { Trigger_support.default_config with Trigger_support.wake };
    }
  in
  let engine = Engine.create ~config (schema n) in
  for i = 0 to n - 1 do
    ignore (Engine.define_exn engine (watch_rule i))
  done;
  let evals0 = Obs.Metrics.counter_value (Obs.Metrics.counter "memo.evals") in
  let wall_ns, () =
    Bench_util.time_once_ns (fun () ->
        for line = 0 to lines - 1 do
          (match
             Engine.execute_line engine
               [ Operation.Create { class_name = class_name (line mod n); attrs = [] } ]
           with
          | Ok () -> ()
          | Error e -> failwith (Format.asprintf "%a" Engine.pp_error e));
          if (line + 1) mod commit_every = 0 then
            match Engine.commit engine with
            | Ok () -> ()
            | Error e -> failwith (Format.asprintf "%a" Engine.pp_error e)
        done)
  in
  let evals1 = Obs.Metrics.counter_value (Obs.Metrics.counter "memo.evals") in
  let s = Engine.statistics engine in
  let t = s.Engine.trigger_stats in
  {
    n;
    mode;
    wall_ns;
    checks = t.Trigger_support.checks;
    probes = t.Trigger_support.probes;
    skipped = t.Trigger_support.skipped;
    woken = t.Trigger_support.woken;
    idle = t.Trigger_support.idle;
    fired = t.Trigger_support.fired;
    events = s.Engine.events;
    evals = evals1 - evals0;
  }

let e11 () =
  let was_enabled = Obs.enabled () in
  Obs.set_enabled true;
  print_endline "== E11: wide rule sets (sweep vs indexed wake) ==";
  Printf.printf "   %d lines per run, commit every %d, one create per line,\n"
    lines commit_every;
  print_endline "   N disjoint rule/event types, round-robin traffic.";
  let rows =
    List.concat_map
      (fun n ->
        [ run ~wake:Trigger_support.Sweep ~mode:"sweep" n;
          run ~wake:Trigger_support.Indexed ~mode:"indexed" n ])
      sizes
  in
  let table =
    Pretty.table ~title:"E11: per-mode totals over 1200 lines"
      ~header:
        [ "N"; "wake"; "wall"; "checks"; "probes"; "ts evals"; "woken";
          "idle"; "fired" ]
      ()
  in
  List.iter
    (fun r ->
      Pretty.add_row table
        [
          Pretty.int_cell r.n;
          r.mode;
          Pretty.ns_cell r.wall_ns;
          Pretty.int_cell r.checks;
          Pretty.int_cell r.probes;
          Pretty.int_cell r.evals;
          Pretty.int_cell r.woken;
          Pretty.int_cell r.idle;
          Pretty.int_cell r.fired;
        ])
    rows;
  Pretty.print table;
  (* Headline ratio: wall-clock sweep/indexed per N. *)
  let find mode n = List.find (fun r -> r.n = n && r.mode = mode) rows in
  let ratio =
    Pretty.table ~title:"E11: sweep / indexed" ~header:[ "N"; "wall"; "checks" ]
      ()
  in
  List.iter
    (fun n ->
      let s = find "sweep" n and i = find "indexed" n in
      Pretty.add_row ratio
        [
          Pretty.int_cell n;
          Pretty.ratio_cell s.wall_ns i.wall_ns;
          Pretty.ratio_cell (float_of_int s.checks) (float_of_int i.checks);
        ])
    sizes;
  Pretty.print ratio;
  Bench_util.write_json ~experiment:"e11"
    (List.map
       (fun r ->
         Bench_util.J_obj
           [
             ("n", Bench_util.J_int r.n);
             ("wake", Bench_util.J_string r.mode);
             ("wall_ns", Bench_util.J_float r.wall_ns);
             ("checks", Bench_util.J_int r.checks);
             ("probes", Bench_util.J_int r.probes);
             ("skipped", Bench_util.J_int r.skipped);
             ("ts_evals", Bench_util.J_int r.evals);
             ("woken", Bench_util.J_int r.woken);
             ("idle", Bench_util.J_int r.idle);
             ("fired", Bench_util.J_int r.fired);
             ("events", Bench_util.J_int r.events);
             ("lines", Bench_util.J_int lines);
           ])
       rows);
  Obs.set_enabled was_enabled
