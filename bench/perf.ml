(* Performance experiments E1, E2, E4, E5, E6 (see EXPERIMENTS.md).

   E1 — ts evaluation latency vs event-base window size
   E2 — ablation: Trigger Support with/without the V(E) relevance filter
   E4 — instance-oriented lifting cost vs object population
   E5 — consuming vs preserving windows over a long transaction
   E6 — end-to-end engine throughput on the inventory scenario *)

open Core
open Chimera_rules

(* ------------------------------------------------------------------ E1 *)

let e1 () =
  Bench_util.print_header "E1: ts evaluation latency vs window size";
  Bench_util.print_note
    "Recompute-from-indexes cost (Section 5): primitive lookups are\n\
     index probes, set-oriented composites stay logarithmic in the window,\n\
     while instance-to-set lifting scans the window's objects.";
  let prng = Prng.create ~seed:(Bench_util.seed_of_experiment "e1") in
  let alphabet = Domain.abstract_alphabet 8 in
  let exprs =
    [
      ("primitive", Expr.prim (List.hd alphabet));
      ( "boolean depth 4",
        Expr_gen.gen prng ~profile:Expr_gen.boolean_profile ~alphabet ~depth:4 () );
      ( "sequence chain",
        Expr.seq
          (Expr.seq (Expr.prim (List.nth alphabet 0)) (Expr.prim (List.nth alphabet 1)))
          (Expr.prim (List.nth alphabet 2)) );
      ( "instance conj (lifted)",
        Expr.Inst
          (Expr.i_conj
             (Expr.I_prim (List.nth alphabet 0))
             (Expr.I_prim (List.nth alphabet 1))) );
    ]
  in
  let sizes = [ 100; 1_000; 10_000; 100_000 ] in
  let table =
    Pretty.table ~title:"ns per ts evaluation (64 live objects)"
      ~header:("window events" :: List.map fst exprs)
      ~aligns:(List.init (1 + List.length exprs) (fun _ -> Pretty.Right))
      ()
  in
  let json_rows = ref [] in
  List.iter
    (fun n ->
      let stream = Expr_gen.stream prng ~alphabet ~objects:64 ~length:n in
      let eb = Bench_util.replay_stream stream in
      let at = Event_base.probe_now eb in
      let env = Ts.env eb ~window:(Window.all ~upto:at) in
      let cells =
        List.map
          (fun (label, e) ->
            let ns = Bench_util.time_ns (fun () -> Ts.ts env ~at e) in
            json_rows :=
              Bench_util.(
                J_obj
                  [
                    ("window_events", J_int n);
                    ("expr", J_string label);
                    ("ns", J_float ns);
                  ])
              :: !json_rows;
            Pretty.ns_cell ns)
          exprs
      in
      Pretty.add_row table (string_of_int n :: cells))
    sizes;
  Pretty.print table;
  Bench_util.write_json ~experiment:"e1" (List.rev !json_rows)

(* ------------------------------------------------------------------ E2 *)

(* Detection-layer harness: rules checked by the Trigger Support directly
   over a raw event stream, with immediate synthetic consideration so the
   triggered flag does not mask work. *)
let detection_run ?(memoize = false) ~optimizer ~rules ~stream ~block () =
  let table = Rule_table.create () in
  let eb = Event_base.create () in
  let memo = Memo.create eb in
  let tx_start = Event_base.probe_now eb in
  List.iteri
    (fun i event ->
      match
        Rule_table.add table ~tx_start
          {
            Rule.name = Printf.sprintf "r%d" i;
            target = None;
            event;
            condition = [];
            action = [];
            coupling = Rule.Immediate;
            consumption = Rule.Consuming;
            priority = 0;
          }
      with
      | Ok _ -> ()
      | Error (`Rule_error msg) -> invalid_arg msg)
    rules;
  let config =
    {
      Trigger_support.detection = Trigger_support.Exact;
      optimizer;
      style = Ts.Logical;
      memoize;
      (* This harness drives check_all directly without an engine, so
         there is no listener feeding a wake index: sweep mode. *)
      wake = Trigger_support.Sweep;
    }
  in
  let wake = Trigger_support.Wake.create () in
  let stats = Trigger_support.stats () in
  let consider_triggered () =
    Rule_table.iter
      (fun r ->
        if r.Rule.triggered then
          Rule.detrigger r ~at:(Event_base.probe_now eb))
      table
  in
  let rec feed = function
    | [] -> ()
    | chunk ->
        let rec take n acc rest =
          if n = 0 then (List.rev acc, rest)
          else match rest with
            | [] -> (List.rev acc, [])
            | x :: xs -> take (n - 1) (x :: acc) xs
        in
        let now, later = take block [] chunk in
        List.iter
          (fun (etype, oid) -> ignore (Event_base.record eb ~etype ~oid))
          now;
        Trigger_support.check_all config stats memo wake table;
        consider_triggered ();
        feed later
  in
  let elapsed, () = Bench_util.time_once_ns (fun () -> feed stream) in
  (elapsed, stats, memo)

let e2 () =
  Bench_util.print_header "E2: ablation - the V(E) relevance filter (Section 5.1)";
  Bench_util.print_note
    "Same rules, same stream, exact detection; only the static filter\n\
     differs.  Rules subscribe to 3 of 24 event types each, so most\n\
     arrivals are irrelevant to most rules - the situation the paper's\n\
     optimization targets.";
  let prng = Prng.create ~seed:(Bench_util.seed_of_experiment "e2") in
  let alphabet = Domain.abstract_alphabet 24 in
  let stream = Expr_gen.stream prng ~alphabet ~objects:32 ~length:4_000 in
  let table =
    Pretty.table
      ~title:"4000 events, blocks of 4, negation-free rule sets"
      ~header:
        [ "rules"; "optimizer"; "total"; "recomputations"; "skipped"; "speedup" ]
      ~aligns:
        [ Pretty.Right; Pretty.Left; Pretty.Right; Pretty.Right; Pretty.Right; Pretty.Right ]
      ()
  in
  List.iter
    (fun nrules ->
      let rule_prng = Prng.create ~seed:(1000 + nrules) in
      let rules =
        List.init nrules (fun _ ->
            (* Each rule watches a narrow slice of the alphabet. *)
            let base = Prng.next_int rule_prng ~bound:(List.length alphabet - 3) in
            let sub = [ List.nth alphabet base; List.nth alphabet (base + 1);
                        List.nth alphabet (base + 2) ] in
            Expr_gen.gen rule_prng ~profile:Expr_gen.regular_profile
              ~alphabet:sub ~depth:3 ())
      in
      let t_off, s_off, _ =
        detection_run ~optimizer:false ~rules ~stream ~block:4 ()
      in
      let t_on, s_on, _ =
        detection_run ~optimizer:true ~rules ~stream ~block:4 ()
      in
      let row optimizer t (s : Trigger_support.stats) speedup =
        Pretty.add_row table
          [
            string_of_int nrules;
            optimizer;
            Pretty.ns_cell t;
            string_of_int s.Trigger_support.recomputations;
            string_of_int s.Trigger_support.skipped;
            speedup;
          ]
      in
      row "off" t_off s_off "1.00x";
      row "on" t_on s_on (Pretty.ratio_cell t_off t_on))
    [ 8; 32; 128 ];
  Pretty.print table

(* ------------------------------------------------------------------ E4 *)

let e4 () =
  Bench_util.print_header "E4: instance-oriented lifting cost vs object population";
  Bench_util.print_note
    "The same conjunction at both granularities: the set-oriented version\n\
     is two index probes; the instance-oriented version evaluates ots for\n\
     every object affected in the window (Section 5's per-object sparse\n\
     structures).";
  let prng = Prng.create ~seed:(Bench_util.seed_of_experiment "e4") in
  let alphabet = Domain.abstract_alphabet 4 in
  let a = List.nth alphabet 0 and b = List.nth alphabet 1 in
  let set_expr = Expr.conj (Expr.prim a) (Expr.prim b) in
  let inst_expr = Expr.Inst (Expr.i_conj (Expr.I_prim a) (Expr.I_prim b)) in
  let table =
    Pretty.table ~title:"ns per evaluation, 20k-event window"
      ~header:[ "objects"; "set-oriented"; "instance-oriented"; "ratio" ]
      ~aligns:[ Pretty.Right; Pretty.Right; Pretty.Right; Pretty.Right ]
      ()
  in
  List.iter
    (fun objects ->
      let stream = Expr_gen.stream prng ~alphabet ~objects ~length:20_000 in
      let eb = Bench_util.replay_stream stream in
      let at = Event_base.probe_now eb in
      let env = Ts.env eb ~window:(Window.all ~upto:at) in
      let t_set = Bench_util.time_ns (fun () -> Ts.ts env ~at set_expr) in
      let t_inst = Bench_util.time_ns (fun () -> Ts.ts env ~at inst_expr) in
      Pretty.add_row table
        [
          string_of_int objects;
          Pretty.ns_cell t_set;
          Pretty.ns_cell t_inst;
          Pretty.ratio_cell t_inst t_set;
        ])
    [ 10; 100; 1_000; 10_000 ];
  Pretty.print table

(* ------------------------------------------------------------------ E5 *)

let e5 () =
  Bench_util.print_header "E5: consuming vs preserving windows over a long transaction";
  Bench_util.print_note
    "A consuming rule's window restarts at each consideration; a\n\
     preserving rule re-reads the whole transaction.  Cost of one\n\
     instance-oriented check at increasing transaction lengths:";
  let prng = Prng.create ~seed:(Bench_util.seed_of_experiment "e5") in
  let alphabet = Domain.abstract_alphabet 4 in
  let a = List.nth alphabet 0 and b = List.nth alphabet 1 in
  let inst_expr = Expr.Inst (Expr.i_seq (Expr.I_prim a) (Expr.I_prim b)) in
  let table =
    Pretty.table ~title:"ns per ts evaluation of create<=modify-style rule"
      ~header:[ "events so far"; "consuming (window 64)"; "preserving (whole tx)"; "ratio" ]
      ~aligns:[ Pretty.Right; Pretty.Right; Pretty.Right; Pretty.Right ]
      ()
  in
  let stream = Expr_gen.stream prng ~alphabet ~objects:128 ~length:100_000 in
  let eb = Bench_util.replay_stream stream in
  let stamps =
    Array.of_list
      (Event_base.timestamps_in eb
         ~window:(Window.all ~upto:(Event_base.probe_now eb)))
  in
  List.iter
    (fun upto_events ->
      let at = Time.probe_after stamps.(upto_events - 1) in
      let preserving = Ts.env eb ~window:(Window.make ~after:Time.origin ~upto:at) in
      let consuming_after =
        if upto_events > 64 then Time.probe_after stamps.(upto_events - 65)
        else Time.origin
      in
      let consuming =
        Ts.env eb ~window:(Window.make ~after:consuming_after ~upto:at)
      in
      let t_cons = Bench_util.time_ns (fun () -> Ts.ts consuming ~at inst_expr) in
      let t_pres = Bench_util.time_ns (fun () -> Ts.ts preserving ~at inst_expr) in
      Pretty.add_row table
        [
          string_of_int upto_events;
          Pretty.ns_cell t_cons;
          Pretty.ns_cell t_pres;
          Pretty.ratio_cell t_pres t_cons;
        ])
    [ 1_000; 10_000; 50_000; 100_000 ];
  Pretty.print table

(* ------------------------------------------------------------------ E6 *)

let e6 () =
  Bench_util.print_header "E6: end-to-end engine throughput (inventory scenario)";
  let run ?(memoize = false) ~detection ~optimizer ~extra_rules () =
    let config =
      {
        Engine.default_config with
        Engine.trigger =
          { Trigger_support.default_config with detection; optimizer; memoize };
      }
    in
    let engine = Scenario.engine ~config () in
    let prng = Prng.create ~seed:(Bench_util.seed_of_experiment "e6") in
    (* Optional pack of extra composite listeners to stress the support. *)
    let rule_prng = Prng.create ~seed:99 in
    for i = 1 to extra_rules do
      let event =
        Expr.map_primitives
          (fun _ ->
            Prng.pick rule_prng
              (Array.of_list
                 [ Domain.create_stock; Domain.modify_stock_quantity; Domain.delete_stock ]))
          (Expr_gen.gen rule_prng ~profile:Expr_gen.regular_profile
             ~alphabet:(Domain.abstract_alphabet 3) ~depth:3 ())
      in
      ignore
        (Engine.define_exn engine
           {
             Rule.name = Printf.sprintf "listener%d" i;
             target = None;
             event;
             condition = [];
             action = [];
             coupling = Rule.Immediate;
             consumption = Rule.Consuming;
             priority = -1;
           })
    done;
    let lines = 400 and ops_per_line = 5 in
    let elapsed, () =
      Bench_util.time_once_ns (fun () ->
          Scenario.run_inventory_traffic prng engine ~lines ~ops_per_line;
          match Engine.commit engine with
          | Ok () -> ()
          | Error e -> invalid_arg (Fmt.str "%a" Engine.pp_error e))
    in
    (elapsed, Engine.statistics engine, lines)
  in
  let table =
    Pretty.table ~title:"400 lines x 5 ops, standard rules + extra listeners"
      ~header:
        [ "configuration"; "lines/s"; "events"; "recomputations"; "skipped"; "executions" ]
      ~aligns:
        [ Pretty.Left; Pretty.Right; Pretty.Right; Pretty.Right; Pretty.Right; Pretty.Right ]
      ()
  in
  let row ?memoize name ~detection ~optimizer ~extra_rules =
    let elapsed, stats, lines = run ?memoize ~detection ~optimizer ~extra_rules () in
    Pretty.add_row table
      [
        name;
        Printf.sprintf "%.0f" (float_of_int lines /. (elapsed /. 1e9));
        string_of_int stats.Engine.events;
        string_of_int stats.Engine.trigger_stats.Trigger_support.recomputations;
        string_of_int stats.Engine.trigger_stats.Trigger_support.skipped;
        string_of_int stats.Engine.executions;
      ]
  in
  row "exact, V(E) on, 2 rules" ~detection:Trigger_support.Exact ~optimizer:true
    ~extra_rules:0;
  row "exact, V(E) off, 2 rules" ~detection:Trigger_support.Exact
    ~optimizer:false ~extra_rules:0;
  row "exact, V(E) on, +16 listeners" ~detection:Trigger_support.Exact
    ~optimizer:true ~extra_rules:16;
  row "exact, V(E) off, +16 listeners" ~detection:Trigger_support.Exact
    ~optimizer:false ~extra_rules:16;
  row "endpoint, V(E) on, +16 listeners" ~detection:Trigger_support.Endpoint
    ~optimizer:true ~extra_rules:16;
  row "exact, V(E)+memo, +16 listeners" ~memoize:true
    ~detection:Trigger_support.Exact ~optimizer:true ~extra_rules:16;
  Pretty.print table

let all () =
  e1 ();
  e2 ();
  e4 ();
  e5 ();
  e6 ()

(* ------------------------------------------------------------------ E7 *)

let e7 () =
  Bench_util.print_header
    "E7: ablation - memoized ts over hash-consed expressions (extension)";
  Bench_util.print_note
    "Exact detection probes every rule at every event instant.  Rules of a\n\
     set share subexpressions, and ts(E, at) over an append-only log is\n\
     immutable per (node, instant): the memo evaluator caches across both\n\
     probes and rules.";
  let prng = Prng.create ~seed:707 in
  let alphabet = Domain.abstract_alphabet 6 in
  (* A shared library of subexpressions; each monitored expression combines
     three of them, so the memo sees heavy structural sharing. *)
  let library =
    Array.init 8 (fun _ ->
        Expr_gen.gen prng ~profile:Expr_gen.regular_profile ~alphabet ~depth:2 ())
  in
  let combine () =
    let pick () = library.(Prng.next_int prng ~bound:(Array.length library)) in
    let ops = [| Expr.conj; Expr.disj; Expr.seq |] in
    let op () = ops.(Prng.next_int prng ~bound:3) in
    (op ()) ((op ()) (pick ()) (pick ())) (pick ())
  in
  let table =
    Pretty.table ~title:"probe every expression at every event instant"
      ~header:[ "exprs"; "events"; "plain ts"; "memoized"; "speedup"; "hit rate" ]
      ~aligns:
        [ Pretty.Right; Pretty.Right; Pretty.Right; Pretty.Right; Pretty.Right; Pretty.Right ]
      ()
  in
  let json_rows = ref [] in
  List.iter
    (fun (nexprs, nevents) ->
      let exprs = List.init nexprs (fun _ -> combine ()) in
      let stream = Expr_gen.stream prng ~alphabet ~objects:16 ~length:nevents in
      let eb = Bench_util.replay_stream stream in
      let instants =
        Event_base.timestamps_in eb
          ~window:(Window.all ~upto:(Event_base.probe_now eb))
      in
      let env = Ts.env eb ~window:(Window.all ~upto:(Event_base.probe_now eb)) in
      let plain, () =
        Bench_util.time_once_ns (fun () ->
            List.iter
              (fun at -> List.iter (fun e -> ignore (Ts.ts env ~at e)) exprs)
              instants)
      in
      let memo = Memo.create eb in
      let handles = List.map (Memo.intern memo) exprs in
      let memoized, () =
        Bench_util.time_once_ns (fun () ->
            List.iter
              (fun at ->
                List.iter
                  (fun h ->
                    ignore (Memo.ts_handle memo ~after:Time.origin ~at h))
                  handles)
              instants)
      in
      let hits = float_of_int (Memo.hits memo) in
      let total = hits +. float_of_int (Memo.misses memo) in
      json_rows :=
        Bench_util.(
          J_obj
            [
              ("exprs", J_int nexprs);
              ("events", J_int nevents);
              ("plain_ns", J_float plain);
              ("memo_ns", J_float memoized);
              ("speedup", J_float (plain /. memoized));
              ("hit_rate", J_float (hits /. total));
              ("nodes", J_int (Memo.node_count memo));
            ])
        :: !json_rows;
      Pretty.add_row table
        [
          string_of_int nexprs;
          string_of_int nevents;
          Pretty.ns_cell plain;
          Pretty.ns_cell memoized;
          Pretty.ratio_cell plain memoized;
          Printf.sprintf "%.1f%%" (100.0 *. hits /. total);
        ])
    [ (8, 500); (24, 1_000); (48, 2_000) ];
  Pretty.print table;
  Bench_util.write_json ~experiment:"e7" (List.rev !json_rows)

(* ------------------------------------------------------------------ E8 *)

(* The shared memo as the default engine path, from two vantage points:

   - trigger layer: [detection_run] isolates the Trigger Support scan the
     cross-rule cache actually serves.  Rule sets combine subexpressions
     from a shared library, so structurally equal nodes intern once and
     their windowed values are reused across rules and probe instants.
   - engine level: end-to-end inventory runs, where store, condition and
     action work dominate.  Here the memo must at least not slow the
     e6-style standard workload down; min-of-3 timing damps the single
     run noise. *)
let e8 () =
  Bench_util.print_header
    "E8: shared memo as the default engine path (extension)";
  Bench_util.print_note
    "Identical rules and traffic per row pair; only [memoize] differs.\n\
     Trigger-layer rows isolate the detection scan the shared cache\n\
     serves: monitoring rules that wait for a pattern ending in an event\n\
     that never arrives, so every window stays anchored at the\n\
     transaction start and every probe re-reads the shared library\n\
     subexpressions.  Engine rows time the whole inventory pipeline (min\n\
     of 3 runs), where the memo must not cost the small standard rule\n\
     set anything.";
  let json_rows = ref [] in
  (* -- trigger layer ------------------------------------------------ *)
  let prng = Prng.create ~seed:(Bench_util.seed_of_experiment "e8") in
  let types = Domain.abstract_alphabet 9 in
  let live = List.filteri (fun i _ -> i < 8) types in
  let rare = List.nth types 8 in
  (* Half the library is instance-lifted: per-object evaluation is the
     expensive recompute (E4) that the per-(node, object) slots target. *)
  let library =
    Array.init 8 (fun i ->
        if i mod 2 = 0 then
          let p j = List.nth live ((i + j) mod 8) in
          Expr.Inst (Expr.i_seq (Expr.I_prim (p 0)) (Expr.I_prim (p 3)))
        else
          Expr_gen.gen prng ~profile:Expr_gen.regular_profile ~alphabet:live
            ~depth:2 ())
  in
  (* Each rule scans for a shared-library combination followed by the
     rare closing event; it keeps probing without ever triggering. *)
  let combine () =
    let pick () = library.(Prng.next_int prng ~bound:(Array.length library)) in
    let ops = [| Expr.conj; Expr.disj; Expr.seq |] in
    let op () = ops.(Prng.next_int prng ~bound:3) in
    Expr.conj ((op ()) (pick ()) (pick ())) (Expr.prim rare)
  in
  let stream = Expr_gen.stream prng ~alphabet:live ~objects:16 ~length:4_000 in
  let trigger_table =
    Pretty.table
      ~title:
        "trigger layer: 4000 events, blocks of 4, shared-library monitors"
      ~header:[ "rules"; "memo"; "total"; "speedup"; "hit rate"; "nodes" ]
      ~aligns:
        [ Pretty.Right; Pretty.Left; Pretty.Right; Pretty.Right; Pretty.Right;
          Pretty.Right ]
      ()
  in
  List.iter
    (fun nrules ->
      let rules = List.init nrules (fun _ -> combine ()) in
      let t_off, _, _ =
        detection_run ~optimizer:true ~rules ~stream ~block:4 ()
      in
      let t_on, _, memo =
        detection_run ~memoize:true ~optimizer:true ~rules ~stream ~block:4 ()
      in
      let hits = float_of_int (Memo.hits memo) in
      let total = hits +. float_of_int (Memo.misses memo) in
      let hit_rate = if total > 0.0 then hits /. total else 0.0 in
      let row label t speedup hit nodes =
        Pretty.add_row trigger_table
          [ string_of_int nrules; label; Pretty.ns_cell t; speedup; hit; nodes ]
      in
      row "off" t_off "1.00x" "-" "-";
      row "on" t_on (Pretty.ratio_cell t_off t_on)
        (Printf.sprintf "%.1f%%" (100.0 *. hit_rate))
        (string_of_int (Memo.node_count memo));
      json_rows :=
        Bench_util.(
          J_obj
            [
              ("layer", J_string "trigger");
              ("rules", J_int nrules);
              ("plain_ns", J_float t_off);
              ("memo_ns", J_float t_on);
              ("speedup", J_float (t_off /. t_on));
              ("hit_rate", J_float hit_rate);
              ("memo_nodes", J_int (Memo.node_count memo));
            ])
        :: !json_rows)
    [ 16; 64 ];
  Pretty.print trigger_table;
  (* -- engine level ------------------------------------------------- *)
  let run ~memoize ~extra_rules () =
    let config =
      {
        Engine.default_config with
        Engine.trigger =
          { Trigger_support.default_config with Trigger_support.memoize };
      }
    in
    let engine = Scenario.engine ~config () in
    let rule_prng = Prng.create ~seed:88 in
    let domain_types =
      [| Domain.create_stock; Domain.modify_stock_quantity; Domain.delete_stock |]
    in
    let library =
      Array.init 6 (fun _ ->
          Expr.map_primitives
            (fun _ -> Prng.pick rule_prng domain_types)
            (Expr_gen.gen rule_prng ~profile:Expr_gen.regular_profile
               ~alphabet:(Domain.abstract_alphabet 3) ~depth:2 ()))
    in
    let combine () =
      let pick () =
        library.(Prng.next_int rule_prng ~bound:(Array.length library))
      in
      let ops = [| Expr.conj; Expr.disj; Expr.seq |] in
      let op () = ops.(Prng.next_int rule_prng ~bound:3) in
      (op ()) ((op ()) (pick ()) (pick ())) (pick ())
    in
    for i = 1 to extra_rules do
      ignore
        (Engine.define_exn engine
           {
             Rule.name = Printf.sprintf "shared%d" i;
             target = None;
             event = combine ();
             condition = [];
             action = [];
             coupling = Rule.Immediate;
             consumption = Rule.Consuming;
             priority = -1;
           })
    done;
    let prng = Prng.create ~seed:(Bench_util.seed_of_experiment "e8") in
    let lines = 400 and ops_per_line = 5 in
    let elapsed, () =
      Bench_util.time_once_ns (fun () ->
          Scenario.run_inventory_traffic prng engine ~lines ~ops_per_line;
          match Engine.commit engine with
          | Ok () -> ()
          | Error e -> invalid_arg (Fmt.str "%a" Engine.pp_error e))
    in
    (elapsed, Engine.statistics engine, lines)
  in
  (* Fresh engines per run, deterministic seeds: the statistics are
     identical across repetitions, only the wall clock varies. *)
  let min_of_3 f =
    let best = ref infinity and result = ref None in
    for _ = 1 to 3 do
      let t, stats, lines = f () in
      if t < !best then best := t;
      result := Some (stats, lines)
    done;
    let stats, lines = Option.get !result in
    (!best, stats, lines)
  in
  let engine_table =
    Pretty.table
      ~title:"engine level: 400 lines x 5 ops, standard + shared-library rules"
      ~header:[ "extra rules"; "memo"; "lines/s"; "speedup"; "hit rate"; "nodes" ]
      ~aligns:
        [ Pretty.Right; Pretty.Left; Pretty.Right; Pretty.Right; Pretty.Right;
          Pretty.Right ]
      ()
  in
  List.iter
    (fun extra_rules ->
      let t_off, _, _ = min_of_3 (run ~memoize:false ~extra_rules) in
      let t_on, stats, lines = min_of_3 (run ~memoize:true ~extra_rules) in
      let hits = float_of_int stats.Engine.memo_hits in
      let total = hits +. float_of_int stats.Engine.memo_misses in
      let hit_rate = if total > 0.0 then hits /. total else 0.0 in
      let lines_per_s t = float_of_int lines /. (t /. 1e9) in
      let row memo t speedup hit_rate nodes =
        Pretty.add_row engine_table
          [
            string_of_int extra_rules;
            memo;
            Printf.sprintf "%.0f" (lines_per_s t);
            speedup;
            hit_rate;
            nodes;
          ]
      in
      row "off" t_off "1.00x" "-" "-";
      row "on" t_on (Pretty.ratio_cell t_off t_on)
        (Printf.sprintf "%.1f%%" (100.0 *. hit_rate))
        (string_of_int stats.Engine.memo_nodes);
      json_rows :=
        Bench_util.(
          J_obj
            [
              ("layer", J_string "engine");
              ("extra_rules", J_int extra_rules);
              ("plain_ns", J_float t_off);
              ("memo_ns", J_float t_on);
              ("plain_lines_per_s", J_float (lines_per_s t_off));
              ("memo_lines_per_s", J_float (lines_per_s t_on));
              ("speedup", J_float (t_off /. t_on));
              ("hit_rate", J_float hit_rate);
              ("memo_nodes", J_int stats.Engine.memo_nodes);
              ("events", J_int stats.Engine.events);
            ])
        :: !json_rows)
    [ 0; 16 ];
  Pretty.print engine_table;
  Bench_util.write_json ~experiment:"e8" (List.rev !json_rows)
