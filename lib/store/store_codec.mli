(** Textual persistence for store-level data: one tab-separated entity
    per line, in the spirit of [Event_codec].  The write-ahead journal
    records operations with {!op_to_line} and checkpoints store dumps
    with {!object_to_line}; strings are escaped, so no payload contains
    a tab or newline.  Floats are printed as hex literals and round-trip
    exactly. *)

open Chimera_util

val value_to_string : Value.t -> string
val value_of_string : string -> (Value.t, string) result

val op_to_line : Operation.t -> string
val op_of_line : string -> (Operation.t, string) result

val object_to_line :
  Ident.Oid.t * string * bool * (string * Value.t) list -> string
(** Encodes one {!Object_store.dump_objects} row. *)

val object_of_line :
  string ->
  (Ident.Oid.t * string * bool * (string * Value.t) list, string) result
