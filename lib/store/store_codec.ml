(* Textual persistence for store-level data: attribute values, data
   manipulation operations, and dumped object rows.

   One entity per line, tab-separated, in the same human-inspectable
   spirit as [Event_codec]: the journal records operations with these
   lines and checkpoints store dumps with them.  Strings are escaped
   ([String.escaped]), so no payload ever contains a tab or newline. *)

open Chimera_util

let ( let* ) = Result.bind
let err fmt = Printf.ksprintf (fun msg -> Error msg) fmt

(* ------------------------------------------------------------ values *)

let value_to_string = function
  | Value.Null -> "null"
  | Value.Int i -> Printf.sprintf "i:%d" i
  | Value.Float f -> Printf.sprintf "r:%h" f  (* hex floats round-trip exactly *)
  | Value.Str s -> Printf.sprintf "s:%s" (String.escaped s)
  | Value.Bool b -> Printf.sprintf "b:%b" b
  | Value.Oid oid -> Printf.sprintf "o:%d" (Ident.Oid.to_int oid)

let value_of_string text =
  match String.index_opt text ':' with
  | None -> if String.equal text "null" then Ok Value.Null else err "malformed value %S" text
  | Some i -> (
      let tag = String.sub text 0 i in
      let body = String.sub text (i + 1) (String.length text - i - 1) in
      match tag with
      | "i" -> (
          match int_of_string_opt body with
          | Some n -> Ok (Value.Int n)
          | None -> err "malformed integer %S" body)
      | "r" -> (
          match float_of_string_opt body with
          | Some f -> Ok (Value.Float f)
          | None -> err "malformed real %S" body)
      | "s" -> (
          match Scanf.unescaped body with
          | s -> Ok (Value.Str s)
          | exception Scanf.Scan_failure _ -> err "malformed string %S" body)
      | "b" -> (
          match bool_of_string_opt body with
          | Some b -> Ok (Value.Bool b)
          | None -> err "malformed boolean %S" body)
      | "o" -> (
          match int_of_string_opt body with
          | Some n -> Ok (Value.Oid (Ident.Oid.of_int n))
          | None -> err "malformed oid %S" body)
      | _ -> err "unknown value tag %S" tag)

(* Attribute bindings as "name=value" (names are identifiers: no '='). *)
let attr_to_string (a, v) = Printf.sprintf "%s=%s" a (value_to_string v)

let attr_of_string text =
  match String.index_opt text '=' with
  | None -> err "malformed attribute binding %S" text
  | Some i ->
      let name = String.sub text 0 i in
      let* v =
        value_of_string (String.sub text (i + 1) (String.length text - i - 1))
      in
      Ok (name, v)

let attrs_of_strings fields =
  List.fold_left
    (fun acc field ->
      let* acc = acc in
      let* binding = attr_of_string field in
      Ok (binding :: acc))
    (Ok []) fields
  |> Result.map List.rev

(* -------------------------------------------------------- operations *)

let op_to_line op =
  let oid o = string_of_int (Ident.Oid.to_int o) in
  String.concat "\t"
    (match op with
    | Operation.Create { class_name; attrs } ->
        "create" :: class_name :: List.map attr_to_string attrs
    | Operation.Delete { oid = o } -> [ "delete"; oid o ]
    | Operation.Modify { oid = o; attribute; value } ->
        [ "modify"; oid o; attribute; value_to_string value ]
    | Operation.Generalize { oid = o; to_class } ->
        [ "generalize"; oid o; to_class ]
    | Operation.Specialize { oid = o; to_class } ->
        [ "specialize"; oid o; to_class ]
    | Operation.Select { class_name } -> [ "select"; class_name ])

let parse_oid text =
  match int_of_string_opt text with
  | Some n -> Ok (Ident.Oid.of_int n)
  | None -> err "malformed oid %S" text

let op_of_line line =
  match String.split_on_char '\t' line with
  | "create" :: class_name :: attr_fields ->
      let* attrs = attrs_of_strings attr_fields in
      Ok (Operation.Create { class_name; attrs })
  | [ "delete"; o ] ->
      let* oid = parse_oid o in
      Ok (Operation.Delete { oid })
  | [ "modify"; o; attribute; v ] ->
      let* oid = parse_oid o in
      let* value = value_of_string v in
      Ok (Operation.Modify { oid; attribute; value })
  | [ "generalize"; o; to_class ] ->
      let* oid = parse_oid o in
      Ok (Operation.Generalize { oid; to_class })
  | [ "specialize"; o; to_class ] ->
      let* oid = parse_oid o in
      Ok (Operation.Specialize { oid; to_class })
  | [ "select"; class_name ] -> Ok (Operation.Select { class_name })
  | _ -> err "malformed operation line %S" line

(* ------------------------------------------------------- object rows *)

let object_to_line (oid, class_name, deleted, attrs) =
  String.concat "\t"
    (string_of_int (Ident.Oid.to_int oid)
    :: class_name
    :: (if deleted then "dead" else "live")
    :: List.map attr_to_string attrs)

let object_of_line line =
  match String.split_on_char '\t' line with
  | o :: class_name :: liveness :: attr_fields ->
      let* oid = parse_oid o in
      let* deleted =
        match liveness with
        | "live" -> Ok false
        | "dead" -> Ok true
        | _ -> err "malformed liveness %S" liveness
      in
      let* attrs = attrs_of_strings attr_fields in
      Ok (oid, class_name, deleted, attrs)
  | _ -> err "malformed object line %S" line
