(* The object store: class extents, attribute state, and the primitive
   state-changing operations that generate Chimera's internal events. *)

open Chimera_util

type obj = {
  oid : Ident.Oid.t;
  mutable class_name : string;
  attrs : (string, Value.t) Hashtbl.t;
  mutable deleted : bool;
}

(* Inverse operations, recorded by every mutator as it succeeds.  The
   undo log makes any store state reachable again: rolling back to a
   savepoint pops entries in reverse and applies the inverses, which is
   what gives blocks and transactions their abort semantics. *)
type undo =
  | U_insert of obj  (** inverse: remove the object entirely *)
  | U_set of obj * string * Value.t option  (** inverse: restore the value *)
  | U_delete of obj  (** inverse: resurrect *)
  | U_migrate of obj * string * (string * Value.t) list
      (** inverse: restore the old class and full attribute table *)

type t = {
  schema : Schema.t;
  objects : (int, obj) Hashtbl.t;
  oids : Ident.Oid.gen;
  (* Direct members per class (live and deleted; filtered on read).
     Extents walk the target class and its transitive subclasses instead
     of scanning the whole store. *)
  members : (string, int list ref) Hashtbl.t;
  mutable undo : undo list;  (** most recent first *)
  mutable undo_len : int;
}

type savepoint = { mark : int; saved_oid_count : int }

type error =
  [ Schema.error | `Unknown_object of string | `Deleted_object of string ]

let pp_error ppf = function
  | #Schema.error as e -> Schema.pp_error ppf e
  | `Unknown_object o -> Fmt.pf ppf "unknown object %s" o
  | `Deleted_object o -> Fmt.pf ppf "object %s was deleted" o

let create schema =
  {
    schema;
    objects = Hashtbl.create 256;
    oids = Ident.Oid.generator ();
    members = Hashtbl.create 32;
    undo = [];
    undo_len = 0;
  }

let record_undo t entry =
  t.undo <- entry :: t.undo;
  t.undo_len <- t.undo_len + 1

let schema t = t.schema

let members_of t class_name =
  match Hashtbl.find_opt t.members class_name with
  | Some l -> l
  | None ->
      let l = ref [] in
      Hashtbl.add t.members class_name l;
      l

let enroll t class_name oid =
  let l = members_of t class_name in
  l := Ident.Oid.to_int oid :: !l

let unenroll t class_name oid =
  let l = members_of t class_name in
  l := List.filter (fun k -> k <> Ident.Oid.to_int oid) !l

let find t oid =
  match Hashtbl.find_opt t.objects (Ident.Oid.to_int oid) with
  | None -> Error (`Unknown_object (Ident.Oid.to_string oid))
  | Some o when o.deleted -> Error (`Deleted_object (Ident.Oid.to_string oid))
  | Some o -> Ok o

let exists t oid =
  match find t oid with Ok _ -> true | Error _ -> false

let class_of t oid =
  match find t oid with Error _ as e -> e | Ok o -> Ok o.class_name

let ( let* ) = Result.bind

(* Validates the provided attributes against the (inherited) schema of the
   class; attributes not provided start as [Null]. *)
let insert t ~class_name ~attrs =
  let* declared =
    (Schema.attributes t.schema class_name
      : (_, Schema.error) result
      :> (_, error) result)
  in
  let* () =
    List.fold_left
      (fun acc (a, v) ->
        let* () = acc in
        match List.assoc_opt a declared with
        | None -> Error (`Unknown_attribute (class_name, a))
        | Some ty ->
            if Value.conforms v ty then Ok ()
            else
              Error
                (`Type_error
                  (Printf.sprintf "attribute %s.%s expects %s, got %s"
                     class_name a (Value.type_name ty) (Value.to_string v))))
      (Ok ()) attrs
  in
  let oid = Ident.Oid.fresh t.oids in
  let table = Hashtbl.create (List.length declared) in
  List.iter (fun (a, _) -> Hashtbl.replace table a Value.Null) declared;
  List.iter (fun (a, v) -> Hashtbl.replace table a v) attrs;
  let o = { oid; class_name; attrs = table; deleted = false } in
  Hashtbl.add t.objects (Ident.Oid.to_int oid) o;
  enroll t class_name oid;
  record_undo t (U_insert o);
  Ok oid

let get t oid ~attribute =
  let* o = find t oid in
  match Hashtbl.find_opt o.attrs attribute with
  | Some v -> Ok v
  | None -> Error (`Unknown_attribute (o.class_name, attribute))

let set t oid ~attribute ~value =
  let* o = find t oid in
  let* ty =
    (Schema.attribute_type t.schema ~class_name:o.class_name ~attribute
      : (_, Schema.error) result
      :> (_, error) result)
  in
  if not (Value.conforms value ty) then
    Error
      (`Type_error
        (Printf.sprintf "attribute %s.%s expects %s, got %s" o.class_name
           attribute (Value.type_name ty) (Value.to_string value)))
  else begin
    record_undo t (U_set (o, attribute, Hashtbl.find_opt o.attrs attribute));
    Hashtbl.replace o.attrs attribute value;
    Ok ()
  end

let delete t oid =
  let* o = find t oid in
  o.deleted <- true;
  record_undo t (U_delete o);
  Ok ()

(* Migration along the hierarchy.  Generalizing drops the attributes not
   declared by the target superclass; specializing adds the target's extra
   attributes as [Null]. *)
let migrate t oid ~to_class ~check =
  let* o = find t oid in
  let* () =
    if check t.schema ~from_class:o.class_name ~to_class then Ok ()
    else
      Error
        (`Type_error
          (Printf.sprintf "cannot migrate %s from %s to %s"
             (Ident.Oid.to_string oid) o.class_name to_class))
  in
  let* target_attrs =
    (Schema.attributes t.schema to_class
      : (_, Schema.error) result
      :> (_, error) result)
  in
  let fresh = Hashtbl.create (List.length target_attrs) in
  List.iter
    (fun (a, _) ->
      let v =
        match Hashtbl.find_opt o.attrs a with Some v -> v | None -> Value.Null
      in
      Hashtbl.replace fresh a v)
    target_attrs;
  record_undo t
    (U_migrate
       (o, o.class_name, Hashtbl.fold (fun a v acc -> (a, v) :: acc) o.attrs []));
  Hashtbl.reset o.attrs;
  Hashtbl.iter (Hashtbl.replace o.attrs) fresh;
  unenroll t o.class_name oid;
  o.class_name <- to_class;
  enroll t to_class oid;
  Ok ()

let generalize t oid ~to_class =
  migrate t oid ~to_class ~check:(fun schema ~from_class ~to_class ->
      Schema.is_subclass schema ~sub:from_class ~super:to_class)

let specialize t oid ~to_class =
  migrate t oid ~to_class ~check:(fun schema ~from_class ~to_class ->
      Schema.is_subclass schema ~sub:to_class ~super:from_class)

(* The extent of a class includes the members of its subclasses: walk the
   hierarchy below [class_name] and collect the live direct members. *)
let extent t ~class_name =
  let acc = ref [] in
  let rec walk name =
    List.iter
      (fun key ->
        match Hashtbl.find_opt t.objects key with
        | Some o when not o.deleted -> acc := o.oid :: !acc
        | Some _ | None -> ())
      !(members_of t name);
    List.iter walk (Schema.direct_subclasses t.schema name)
  in
  if Schema.mem t.schema class_name then walk class_name;
  List.sort Ident.Oid.compare !acc

let count_live t =
  Hashtbl.fold (fun _ o n -> if o.deleted then n else n + 1) t.objects 0

(* ------------------------------------------- savepoints and rollback *)

let savepoint t = { mark = t.undo_len; saved_oid_count = Ident.Oid.count t.oids }

let apply_undo t = function
  | U_insert o ->
      Hashtbl.remove t.objects (Ident.Oid.to_int o.oid);
      unenroll t o.class_name o.oid
  | U_set (o, attribute, old) -> (
      match old with
      | Some v -> Hashtbl.replace o.attrs attribute v
      | None -> Hashtbl.remove o.attrs attribute)
  | U_delete o -> o.deleted <- false
  | U_migrate (o, old_class, old_attrs) ->
      unenroll t o.class_name o.oid;
      Hashtbl.reset o.attrs;
      List.iter (fun (a, v) -> Hashtbl.replace o.attrs a v) old_attrs;
      o.class_name <- old_class;
      enroll t old_class o.oid

let rollback_to t sp =
  if sp.mark > t.undo_len then
    invalid_arg "Object_store.rollback_to: savepoint from the future";
  while t.undo_len > sp.mark do
    (match t.undo with
    | entry :: rest ->
        apply_undo t entry;
        t.undo <- rest
    | [] -> assert false);
    t.undo_len <- t.undo_len - 1
  done;
  (* Identifiers issued during the undone span are reissued, so an
     aborted transaction is indistinguishable from one that never ran. *)
  Ident.Oid.rewind t.oids ~count:sp.saved_oid_count

(* The commit point: committed history can never be rolled back again,
   so the inverse-operation log is dropped (savepoints taken before this
   call become invalid).  With rollback off the table the transaction's
   tombstones are unreachable too — every read filters them and rules
   bind live extents — so committed deletions release their rows here;
   the store stays O(live objects), not O(deletion history). *)
let forget_undo t =
  let purged =
    List.filter_map
      (function
        | U_delete o when o.deleted ->
            Hashtbl.remove t.objects (Ident.Oid.to_int o.oid);
            unenroll t o.class_name o.oid;
            Some o.oid
        | _ -> None)
      t.undo
  in
  t.undo <- [];
  t.undo_len <- 0;
  purged

(* ----------------------------------------------- checkpoint support *)

let oid_count t = Ident.Oid.count t.oids

let set_oid_count t count =
  if count < Ident.Oid.count t.oids then
    invalid_arg "Object_store.set_oid_count: cannot go backwards";
  (* Advance by issuing (dense identifiers have no gaps to skip). *)
  while Ident.Oid.count t.oids < count do
    ignore (Ident.Oid.fresh t.oids)
  done

let dump_objects t =
  let rows =
    Hashtbl.fold
      (fun _ o acc ->
        let attrs =
          List.sort
            (fun (a, _) (b, _) -> String.compare a b)
            (Hashtbl.fold (fun a v acc -> (a, v) :: acc) o.attrs [])
        in
        (o.oid, o.class_name, o.deleted, attrs) :: acc)
      t.objects []
  in
  List.sort (fun (a, _, _, _) (b, _, _, _) -> Ident.Oid.compare a b) rows

let restore_object t ~oid ~class_name ~deleted ~attrs =
  if Hashtbl.mem t.objects (Ident.Oid.to_int oid) then
    invalid_arg "Object_store.restore_object: object already present";
  let table = Hashtbl.create (List.length attrs) in
  List.iter (fun (a, v) -> Hashtbl.replace table a v) attrs;
  let o = { oid; class_name; attrs = table; deleted } in
  Hashtbl.add t.objects (Ident.Oid.to_int oid) o;
  enroll t class_name oid

let attributes_of t oid =
  let* o = find t oid in
  Ok
    (List.sort
       (fun (a, _) (b, _) -> String.compare a b)
       (Hashtbl.fold (fun a v acc -> (a, v) :: acc) o.attrs []))

let pp_object t ppf oid =
  match find t oid with
  | Error e -> pp_error ppf e
  | Ok o ->
      let attrs = Result.value ~default:[] (attributes_of t oid) in
      let pp_attr ppf (a, v) = Fmt.pf ppf "%s=%a" a Value.pp v in
      Fmt.pf ppf "%a:%s{%a}" Ident.Oid.pp o.oid o.class_name
        Fmt.(list ~sep:(any ", ") pp_attr)
        attrs
