(** The object store: class extents, attribute state and the primitive
    state-changing operations Chimera's internal events come from. *)

open Chimera_util

type t

type error =
  [ Schema.error | `Unknown_object of string | `Deleted_object of string ]

val pp_error : Format.formatter -> error -> unit
val create : Schema.t -> t
val schema : t -> Schema.t

val insert :
  t ->
  class_name:string ->
  attrs:(string * Value.t) list ->
  (Ident.Oid.t, error) result
(** Validates against the (inherited) class schema; attributes not
    provided start as [Null]. *)

val exists : t -> Ident.Oid.t -> bool
val class_of : t -> Ident.Oid.t -> (string, error) result
val get : t -> Ident.Oid.t -> attribute:string -> (Value.t, error) result

val set :
  t -> Ident.Oid.t -> attribute:string -> value:Value.t -> (unit, error) result

val delete : t -> Ident.Oid.t -> (unit, error) result

val generalize : t -> Ident.Oid.t -> to_class:string -> (unit, error) result
(** Moves the object up the hierarchy, dropping attributes the target does
    not declare. *)

val specialize : t -> Ident.Oid.t -> to_class:string -> (unit, error) result
(** Moves the object down the hierarchy; new attributes start [Null]. *)

val extent : t -> class_name:string -> Ident.Oid.t list
(** Live members of the class, including subclass members, by ascending
    OID. *)

val count_live : t -> int
val attributes_of : t -> Ident.Oid.t -> ((string * Value.t) list, error) result
val pp_object : t -> Format.formatter -> Ident.Oid.t -> unit

(** {2 Savepoints}

    Every mutator records its inverse into an undo log, so any earlier
    state of the current (uncommitted) history can be restored — the
    substrate of block atomicity and transaction abort. *)

type savepoint

val savepoint : t -> savepoint
(** Marks the current state; cheap (no copying). *)

val rollback_to : t -> savepoint -> unit
(** Restores the state at the savepoint by applying recorded inverses in
    reverse, and rewinds the OID generator so identifiers issued during
    the undone span are reissued.  Raises [Invalid_argument] on a
    savepoint taken after the current state (or invalidated by
    {!forget_undo}). *)

val forget_undo : t -> Ident.Oid.t list
(** The commit point: drops the undo log (committed history can never be
    rolled back), invalidating earlier savepoints, and purges the
    transaction's tombstones — once rollback is impossible a deleted row
    is unreachable (reads filter it, rules bind live extents), so the
    store stays O(live objects) under deletion churn.  Returns the
    purged OIDs so the caller can drop other per-object state (the
    event base's per-object indexes). *)

(** {2 Checkpoint support (journal segments)} *)

val oid_count : t -> int
(** Identifiers issued so far. *)

val set_oid_count : t -> int -> unit
(** Advances the OID generator to [count] issued identifiers (recovery
    from a checkpoint); raises [Invalid_argument] when going backwards. *)

val dump_objects :
  t -> (Ident.Oid.t * string * bool * (string * Value.t) list) list
(** Every object row — including this transaction's not-yet-committed
    tombstones ({!forget_undo} purges them) — as
    [(oid, class, deleted, attrs)] in ascending OID order with sorted
    attributes; the canonical comparable dump. *)

val restore_object :
  t ->
  oid:Ident.Oid.t ->
  class_name:string ->
  deleted:bool ->
  attrs:(string * Value.t) list ->
  unit
(** Reinstates a dumped row verbatim (no schema validation: the row came
    from a validated store).  Raises [Invalid_argument] when the OID is
    already present. *)
