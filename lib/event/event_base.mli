(** The Event Base: append-only log of the occurrences of a transaction,
    with the per-type ("Occurred Events tree") and per-(type, object)
    indexes of the paper's implementation section. *)

open Chimera_util

type t

val create : unit -> t
val clock : t -> Time.Clock.clock

val size : t -> int
(** Occurrences ever recorded (retired ones included): the absolute end
    of the log, and the count the EID generator tracks. *)

val live_size : t -> int
(** Occurrences currently retained (what memory is proportional to). *)

val now : t -> Time.t
(** Instant of the most recent occurrence ([Time.origin] when empty). *)

val probe_now : t -> Time.t
(** A probe instant strictly after every recorded occurrence. *)

val record : t -> etype:Event_type.t -> oid:Ident.Oid.t -> Occurrence.t
(** Appends an occurrence at a fresh event instant. *)

val record_at :
  t -> etype:Event_type.t -> oid:Ident.Oid.t -> timestamp:Time.t -> Occurrence.t
(** Appends at a caller-chosen instant, which must be a strictly increasing
    event instant; used by tests and workload replay. *)

val on_insert : t -> (Occurrence.t -> unit) -> unit
(** Registers a listener called after every recorded occurrence (engine
    lines, timers, recovery replay alike), in registration order — the
    feed of the subscription indexes.  Listeners survive [truncate_to]
    and are never unregistered; register at most once per consumer. *)

val indexed_types : Occurrence.t -> Event_type.t list
(** The posting-list keys an occurrence is indexed under: its exact type
    and, for attribute-qualified modify events, also the unqualified
    modify on the same class (so coarse subscriptions see it). *)

val truncate_to : t -> instant:Time.t -> unit
(** Forgets every occurrence strictly after [instant] (across the log and
    all indexes) and rewinds the clock and EID generator, leaving the
    event base exactly as it was when [instant] was the present — the
    abort/rollback path. *)

val retire_to :
  t -> horizon:Time.t -> type_horizon:(Event_type.t -> Time.t) -> unit
(** The dual of [truncate_to]: releases every occurrence at or before
    [horizon] (log and per-object index) and, per type, at or before
    [max horizon (type_horizon etype)] (posting lists) — the
    sliding-window forgetting rule.  Surviving occurrences keep their log
    indices.  Sound when no live or restorable rule window reaches at or
    below the horizons; queries strictly above them are unaffected.
    Horizons need not be monotone across calls: retirement never
    un-retires, and a lower bound is a no-op. *)

val forget_objects : t -> oids:Ident.Oid.t list -> unit
(** Drops the per-object indexes of objects the store has purged
    (committed deletions).  Sound once their occurrences are retired or
    otherwise unreachable: an absent per-object index reads as "no live
    events", which is then exact.  Their first-seen registry slots are
    reclaimed as they become a prefix (churn workloads delete roughly in
    creation order). *)

val horizon : t -> Time.t
(** The instant the log has been retired up to (inclusive);
    [Time.origin] before any retirement. *)

val type_horizon : t -> Event_type.t -> Time.t
(** The bound below which type-restricted queries on this type may have
    lost occurrences to retirement (at least [horizon t]); queries with
    [after >= type_horizon] are exact. *)

val last_of_type :
  t -> etype:Event_type.t -> window:Window.t -> at:Time.t -> Time.t option
(** Timestamp of the most recent occurrence of [etype] within [window]
    observed at instant [at] — the positive branch of the paper's [ts]. *)

val last_of_type_on :
  t ->
  etype:Event_type.t ->
  oid:Ident.Oid.t ->
  window:Window.t ->
  at:Time.t ->
  Time.t option
(** Per-object variant — the positive branch of [ots]. *)

val newest_of_type : t -> etype:Event_type.t -> Time.t option
(** Newest occurrence of [etype] anywhere in the log, in O(1); [None]
    when the type never occurred. *)

val occurred_in :
  t -> types:Event_type.Set.t -> after:Time.t -> upto:Time.t -> bool
(** Did any occurrence in [(after, upto]] carry one of [types]?  Scans
    the gap when it is short, probes the per-type indexes otherwise. *)

val occurrences_in : t -> window:Window.t -> Occurrence.t list
val iter_in : t -> window:Window.t -> (Occurrence.t -> unit) -> unit
val timestamps_in : t -> window:Window.t -> Time.t list
val is_empty_in : t -> window:Window.t -> bool

val oids_in : t -> window:Window.t -> at:Time.t -> Ident.Oid.t list
(** Distinct objects affected by any occurrence in the window at [at]: the
    set the instance-to-set lifting ranges over. *)

val oids_of_type :
  t -> etype:Event_type.t -> window:Window.t -> at:Time.t -> Ident.Oid.t list

val timestamps_of_type_on :
  t ->
  etype:Event_type.t ->
  oid:Ident.Oid.t ->
  window:Window.t ->
  at:Time.t ->
  Time.t list
(** Ascending occurrence instants of [etype] on [oid]; drives the [at]
    event formula. *)

val timestamps_of_types_in :
  t -> types:Event_type.t list -> after:Time.t -> upto:Time.t -> Time.t list
(** Ascending, de-duplicated instants in [(after, upto]] carrying at
    least one of [types] (under the modify-attribute aliasing the
    indexes use), merged from the per-type posting lists — the
    relevant-instant set a delta-driven trigger check probes. *)

val to_list : t -> Occurrence.t list
val pp : Format.formatter -> t -> unit
