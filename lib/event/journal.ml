(* The write-ahead event journal: an append-only on-disk log of framed
   records with commit/abort markers, a configurable fsync policy and
   checkpoint-based segment rotation.

   The journal is payload-agnostic: records are (tag, payload) strings —
   the engine writes operations with [Store_codec] lines and occurrences
   with [Event_codec] lines — framed one per line as

       <len> TAB <crc32> TAB <tag> [TAB <payload>] NL

   under a versioned header.  The framing makes torn tails detectable:
   recovery accepts the longest prefix of intact records, replays the
   transactions closed by a commit marker, and reports exactly what was
   dropped (uncommitted records and torn bytes).

   Durability boundaries are instrumented with [Failpoint] sites
   ("journal.write", "journal.fsync", "journal.rename",
   "journal.dirsync"), so the recovery property tests can crash at every
   one of them, including mid-write (torn records). *)

open Chimera_util
module Obs = Chimera_obs.Obs

(* Durability is where latency hides: every fsync, block write and segment
   rotation is timed into a log-scale histogram, so a snapshot attributes
   journal time without a profiler attached. *)
let c_appends = Obs.Metrics.counter "journal.appends"
let c_commits = Obs.Metrics.counter "journal.commits"
let c_syncs = Obs.Metrics.counter "journal.syncs"
let c_rotations = Obs.Metrics.counter "journal.rotations"
let h_fsync = Obs.Metrics.histogram "journal.fsync_ns"
let h_append = Obs.Metrics.histogram "journal.append_ns"
let h_rotate = Obs.Metrics.histogram "journal.rotate_ns"

let header = "# chimera-journal v1"

(* ------------------------------------------------------------- crc32 *)

(* Standard reflected CRC-32 (polynomial 0xEDB88320), table-driven. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

(* ------------------------------------------------------------- types *)

type sync_policy = Per_write | Per_commit | Never

type counters = {
  appends : int;
  commits : int;
  syncs : int;
  rotations : int;
  bytes_written : int;
}

type t = {
  path : string;
  sync : sync_policy;
  mutable oc : out_channel;
  mutable pending : (string * string) list;  (** newest first, not yet on disk *)
  mutable commit_seq : int;
  mutable appends : int;
  mutable commits : int;
  mutable syncs : int;
  mutable rotations : int;
  mutable bytes_written : int;
  mutable closed : bool;
}

let counters t =
  {
    appends = t.appends;
    commits = t.commits;
    syncs = t.syncs;
    rotations = t.rotations;
    bytes_written = t.bytes_written;
  }

let commit_seq t = t.commit_seq
let path t = t.path

(* ---------------------------------------------------- physical layer *)

let encode_record ~tag payload =
  let body = if payload = "" then tag else tag ^ "\t" ^ payload in
  Printf.sprintf "%d\t%d\t%s\n" (String.length body) (crc32 body) body

(* One write boundary.  A failpoint landing here persists a strict prefix
   of the bytes (flushed, so the torn record is on disk) and crashes. *)
let write_string t s =
  (match Failpoint.cut "journal.write" ~len:(String.length s) with
  | None -> output_string t.oc s
  | Some keep ->
      output_string t.oc (String.sub s 0 keep);
      flush t.oc;
      Failpoint.crash "journal.write");
  t.bytes_written <- t.bytes_written + String.length s

let fsync_channel oc = Unix.fsync (Unix.descr_of_out_channel oc)

(* Fsync of the parent directory: file creation and rename are directory
   mutations, durable only once the *directory* inode is forced down.
   Without it a crash after a rotation's rename can recover the old
   segment name — or no file at all — even though the rename "happened".
   Best-effort on filesystems whose directories refuse fsync. *)
let fsync_dir path =
  let dir = Filename.dirname path in
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

(* One fsync boundary: a failpoint landing here crashes after the write
   reached the channel but before it was forced to disk. *)
let fsync t =
  Failpoint.hit "journal.fsync";
  let t0 = Obs.start_timer () in
  flush t.oc;
  fsync_channel t.oc;
  Obs.observe_since h_fsync t0;
  Obs.Metrics.incr c_syncs;
  t.syncs <- t.syncs + 1

let sync t =
  let t0 = Obs.start_timer () in
  flush t.oc;
  fsync_channel t.oc;
  Obs.observe_since h_fsync t0;
  Obs.Metrics.incr c_syncs;
  t.syncs <- t.syncs + 1

(* ------------------------------------------------------------ opening *)

let open_segment path =
  open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 path

let create ?(sync = Per_commit) ~path () =
  let t =
    {
      path;
      sync;
      oc = open_segment path;
      pending = [];
      commit_seq = 0;
      appends = 0;
      commits = 0;
      syncs = 0;
      rotations = 0;
      bytes_written = 0;
      closed = false;
    }
  in
  write_string t (header ^ "\n");
  fsync t;
  (* The segment's directory entry must be as durable as its header. *)
  fsync_dir path;
  t

let check_open t = if t.closed then invalid_arg "Journal: already closed"

(* --------------------------------------------------- logical records *)

let valid_tag tag =
  tag <> ""
  && not (String.exists (fun c -> c = '\t' || c = '\n' || c = '\r') tag)

let append t ~tag payload =
  check_open t;
  if not (valid_tag tag) then invalid_arg "Journal.append: malformed tag";
  if String.contains payload '\n' || String.contains payload '\r' then
    invalid_arg "Journal.append: payload contains a newline";
  t.pending <- (tag, payload) :: t.pending;
  Obs.Metrics.incr c_appends;
  t.appends <- t.appends + 1

(* Writes the pending records of the current block in one batch; the
   block either reaches the file whole or (on rollback) not at all. *)
let flush_block t =
  check_open t;
  match t.pending with
  | [] -> ()
  | pending ->
      let t0 = Obs.start_timer () in
      let buf = Buffer.create 256 in
      List.iter
        (fun (tag, payload) -> Buffer.add_string buf (encode_record ~tag payload))
        (List.rev pending);
      t.pending <- [];
      write_string t (Buffer.contents buf);
      flush t.oc;
      Obs.observe_since h_append t0;
      if t.sync = Per_write then fsync t

let drop_block t =
  check_open t;
  t.pending <- []

let write_marker t tag payload =
  write_string t (encode_record ~tag payload);
  flush t.oc;
  match t.sync with
  | Per_write | Per_commit -> fsync t
  | Never -> ()

let commit t =
  check_open t;
  flush_block t;
  write_marker t "commit" (string_of_int (t.commit_seq + 1));
  t.commit_seq <- t.commit_seq + 1;
  Obs.Metrics.incr c_commits;
  t.commits <- t.commits + 1

(* An abort discards the pending block and records a durable marker, so
   flushed records of the aborted transaction are skipped on replay even
   once a later transaction commits. *)
let abort t =
  check_open t;
  t.pending <- [];
  write_marker t "abort" ""

(* ----------------------------------------------------------- rotation *)

(* Replaces the whole journal by a fresh segment whose base records (a
   checkpoint of the committed state) stand for everything logged so
   far.  The segment is prepared aside, fsynced, and atomically renamed
   over the live path: a crash anywhere leaves either the old journal or
   the complete new one. *)
let rotate t ~base =
  check_open t;
  let tok = Obs.Trace.begin_ "journal.rotate" in
  t.pending <- [];
  let tmp = t.path ^ ".rotating" in
  let oc = open_segment tmp in
  let previous = t.oc in
  t.oc <- oc;
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace.end_into h_rotate tok;
      if t.oc == oc then () else close_out_noerr oc)
    (fun () ->
      write_string t (header ^ "\n");
      let buf = Buffer.create 1024 in
      List.iter
        (fun (tag, payload) -> Buffer.add_string buf (encode_record ~tag payload))
        base;
      Buffer.add_string buf
        (encode_record ~tag:"commit" (string_of_int (t.commit_seq + 1)));
      write_string t (Buffer.contents buf);
      fsync t;
      Failpoint.hit "journal.rename";
      Sys.rename tmp t.path;
      (* The rename is durable only once the directory is synced: a
         crash in between may resurrect the pre-rotation segment (or
         leave only the ".rotating" name) on recovery. *)
      Failpoint.hit "journal.dirsync";
      fsync_dir t.path;
      close_out_noerr previous;
      t.commit_seq <- t.commit_seq + 1;
      Obs.Metrics.incr c_commits;
      t.commits <- t.commits + 1;
      Obs.Metrics.incr c_rotations;
      t.rotations <- t.rotations + 1;
      t.appends <- t.appends + List.length base)

let close t =
  if not t.closed then begin
    flush_block t;
    flush t.oc;
    close_out_noerr t.oc;
    t.closed <- true
  end

(* A simulated process death: releases the descriptor *without* flushing,
   so bytes still in the channel buffer are lost exactly as they would be
   when a process is killed.  Test harness use. *)
let abandon t =
  if not t.closed then begin
    (try Unix.close (Unix.descr_of_out_channel t.oc) with Unix.Unix_error _ -> ());
    t.closed <- true
  end

(* ------------------------------------------------------------ reading *)

type entry = { tag : string; payload : string }

type replay = {
  committed : entry list list;
  last_commit_seq : int;
  entries_committed : int;
  uncommitted_entries : int;
  torn_bytes : int;
}

let read_all path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Ok
        (Fun.protect
           ~finally:(fun () -> close_in_noerr ic)
           (fun () -> really_input_string ic (in_channel_length ic)))

let split_body body =
  match String.index_opt body '\t' with
  | None -> { tag = body; payload = "" }
  | Some i ->
      {
        tag = String.sub body 0 i;
        payload = String.sub body (i + 1) (String.length body - i - 1);
      }

(* Parses the record starting at [pos]; [None] when the bytes from [pos]
   on are not one intact record (torn or corrupt tail). *)
let parse_record content pos =
  match String.index_from_opt content pos '\n' with
  | None -> None
  | Some nl -> (
      let line = String.sub content pos (nl - pos) in
      match String.split_on_char '\t' line with
      | len_text :: crc_text :: rest -> (
          let body = String.concat "\t" rest in
          match (int_of_string_opt len_text, int_of_string_opt crc_text) with
          | Some len, Some crc
            when len = String.length body && crc = crc32 body ->
              Some (split_body body, nl + 1)
          | _ -> None)
      | _ -> None)

let read ~path =
  match read_all path with
  | Error msg -> Error msg
  | Ok content ->
      let total = String.length content in
      let header_line = header ^ "\n" in
      let header_len = String.length header_line in
      if total >= header_len && String.sub content 0 header_len = header_line
      then begin
        let committed = ref [] in
        let current = ref [] in
        let entries_committed = ref 0 in
        let last_commit_seq = ref 0 in
        let pos = ref header_len in
        let stop = ref false in
        while not !stop do
          match parse_record content !pos with
          | None -> stop := true
          | Some (entry, next) -> (
              pos := next;
              match entry.tag with
              | "commit" -> (
                  match int_of_string_opt entry.payload with
                  | None -> stop := true  (* corrupt marker: truncate here *)
                  | Some seq ->
                      committed := List.rev !current :: !committed;
                      entries_committed :=
                        !entries_committed + List.length !current;
                      current := [];
                      last_commit_seq := seq)
              | "abort" -> current := []
              | _ -> current := entry :: !current)
        done;
        Ok
          {
            committed = List.rev !committed;
            last_commit_seq = !last_commit_seq;
            entries_committed = !entries_committed;
            uncommitted_entries = List.length !current;
            torn_bytes = total - !pos;
          }
      end
      else if
        (* A crash during the very first header write leaves a prefix of
           the header: an empty journal with a torn tail, not garbage. *)
        total < header_len && String.sub header_line 0 total = content
      then
        Ok
          {
            committed = [];
            last_commit_seq = 0;
            entries_committed = 0;
            uncommitted_entries = 0;
            torn_bytes = total;
          }
      else Error (Printf.sprintf "%s: missing chimera-journal header" path)
