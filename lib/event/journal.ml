(* The write-ahead event journal: an append-only on-disk log of framed
   records with commit/abort markers, a configurable fsync policy and
   checkpoint-based segment rotation.

   The journal is payload-agnostic: records are (tag, payload) strings —
   the engine writes operations with [Store_codec] lines and occurrences
   with [Event_codec] lines — framed one per line as

       <len> TAB <crc32> TAB <tag> [TAB <payload>] NL

   under a versioned header.  The framing makes torn tails detectable:
   recovery accepts the longest prefix of intact records, replays the
   transactions closed by a commit marker, and reports exactly what was
   dropped (uncommitted records and torn bytes).

   Durability boundaries are instrumented with [Failpoint] sites
   ("journal.write", "journal.fsync", "journal.rename",
   "journal.dirsync"), so the recovery property tests can crash at every
   one of them, including mid-write (torn records). *)

open Chimera_util
module Obs = Chimera_obs.Obs

(* Durability is where latency hides: every fsync, block write and segment
   rotation is timed into a log-scale histogram, so a snapshot attributes
   journal time without a profiler attached. *)
let c_appends = Obs.Metrics.counter "journal.appends"
let c_commits = Obs.Metrics.counter "journal.commits"
let c_syncs = Obs.Metrics.counter "journal.syncs"
let c_rotations = Obs.Metrics.counter "journal.rotations"
let c_seals = Obs.Metrics.counter "journal.seals"
let c_gc_segments = Obs.Metrics.counter "gc.segments"
let h_fsync = Obs.Metrics.histogram "journal.fsync_ns"
let h_append = Obs.Metrics.histogram "journal.append_ns"
let h_rotate = Obs.Metrics.histogram "journal.rotate_ns"

let header = "# chimera-journal v1"

(* ------------------------------------------------------------- crc32 *)

(* Standard reflected CRC-32 (polynomial 0xEDB88320), table-driven. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

(* ------------------------------------------------------------- types *)

type sync_policy = Per_write | Per_commit | Never

type counters = {
  appends : int;
  commits : int;
  syncs : int;
  rotations : int;
  bytes_written : int;
}

type sealed = {
  seg_seq : int;
  seg_path : string;
  seg_last_commit_seq : int;
      (** the commit sequence the segment ends at: everything in it is
          covered by a checkpoint at or past this seq *)
}

type t = {
  path : string;
  sync : sync_policy;
  mutable oc : out_channel;
  mutable pending : (string * string) list;  (** newest first, not yet on disk *)
  mutable commit_seq : int;
  mutable seg_seq : int;  (** the next seal's segment number *)
  mutable sealed : sealed list;  (** oldest first, still on disk *)
  mutable appends : int;
  mutable commits : int;
  mutable syncs : int;
  mutable rotations : int;
  mutable bytes_written : int;
  mutable closed : bool;
}

let counters t =
  {
    appends = t.appends;
    commits = t.commits;
    syncs = t.syncs;
    rotations = t.rotations;
    bytes_written = t.bytes_written;
  }

let commit_seq t = t.commit_seq
let path t = t.path

(* ---------------------------------------------------- physical layer *)

let encode_record ~tag payload =
  let body = if payload = "" then tag else tag ^ "\t" ^ payload in
  Printf.sprintf "%d\t%d\t%s\n" (String.length body) (crc32 body) body

(* One write boundary.  A failpoint landing here persists a strict prefix
   of the bytes (flushed, so the torn record is on disk) and crashes. *)
let write_string t s =
  (match Failpoint.cut "journal.write" ~len:(String.length s) with
  | None -> output_string t.oc s
  | Some keep ->
      output_string t.oc (String.sub s 0 keep);
      flush t.oc;
      Failpoint.crash "journal.write");
  t.bytes_written <- t.bytes_written + String.length s

let fsync_channel oc = Unix.fsync (Unix.descr_of_out_channel oc)

(* Fsync of the parent directory: file creation and rename are directory
   mutations, durable only once the *directory* inode is forced down.
   Without it a crash after a rotation's rename can recover the old
   segment name — or no file at all — even though the rename "happened".
   Best-effort on filesystems whose directories refuse fsync. *)
let fsync_dir path =
  let dir = Filename.dirname path in
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

(* One fsync boundary: a failpoint landing here crashes after the write
   reached the channel but before it was forced to disk. *)
let fsync t =
  Failpoint.hit "journal.fsync";
  let t0 = Obs.start_timer () in
  flush t.oc;
  fsync_channel t.oc;
  Obs.observe_since h_fsync t0;
  Obs.Metrics.incr c_syncs;
  t.syncs <- t.syncs + 1

let sync t =
  let t0 = Obs.start_timer () in
  flush t.oc;
  fsync_channel t.oc;
  Obs.observe_since h_fsync t0;
  Obs.Metrics.incr c_syncs;
  t.syncs <- t.syncs + 1

(* ------------------------------------------------------------ opening *)

let open_segment path =
  open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 path

(* Sealed segments sit beside the live file as [<path>.seg-<NNNNNN>]. *)
let segment_path path seq = Printf.sprintf "%s.seg-%06d" path seq

(* The sealed segments currently beside [path], ascending by number — a
   chain may start past 0 once GC has retired its oldest segments. *)
let list_segment_files path =
  let dir = Filename.dirname path in
  let prefix = Filename.basename path ^ ".seg-" in
  let plen = String.length prefix in
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter_map (fun name ->
             if String.length name > plen && String.sub name 0 plen = prefix
             then
               match int_of_string_opt (String.sub name plen (String.length name - plen)) with
               | Some seq -> Some (seq, Filename.concat dir name)
               | None -> None
             else None)
      |> List.sort compare

let create ?(sync = Per_commit) ~path () =
  (* [Open_trunc] semantics extend to the whole chain: creating a journal
     here starts it from nothing, so stale sealed segments — and a stale
     checkpoint, whose covered sequence belongs to the wiped history and
     would make recovery silently skip the new journal's records — of a
     previous journal under the same path must not pollute a later chain
     read.  The [".ckpt"] suffix is [Checkpoint.path_for]'s convention;
     [Checkpoint] sits above this module, so the name is repeated here. *)
  List.iter
    (fun (_, p) -> try Sys.remove p with Sys_error _ -> ())
    (list_segment_files path);
  (try Sys.remove (path ^ ".ckpt") with Sys_error _ -> ());
  let t =
    {
      path;
      sync;
      oc = open_segment path;
      pending = [];
      commit_seq = 0;
      seg_seq = 0;
      sealed = [];
      appends = 0;
      commits = 0;
      syncs = 0;
      rotations = 0;
      bytes_written = 0;
      closed = false;
    }
  in
  write_string t (header ^ "\n");
  fsync t;
  (* The segment's directory entry must be as durable as its header. *)
  fsync_dir path;
  t

(* Reopens an existing journal for appending — the promotion path of a
   replication follower, whose local segment was written record-for-record
   from the primary's stream.  The header must already be on disk; the
   caller supplies the commit sequence the segment ends at (it tracked it
   while applying), so later markers continue the numbering. *)
let open_append ?(sync = Per_commit) ~path ~commit_seq () =
  let oc =
    open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path
  in
  {
    path;
    sync;
    oc;
    pending = [];
    commit_seq;
    seg_seq = 0;
    sealed = [];
    appends = 0;
    commits = 0;
    syncs = 0;
    rotations = 0;
    bytes_written = 0;
    closed = false;
  }

let check_open t = if t.closed then invalid_arg "Journal: already closed"

(* --------------------------------------------------- logical records *)

let valid_tag tag =
  tag <> ""
  && not (String.exists (fun c -> c = '\t' || c = '\n' || c = '\r') tag)

let append t ~tag payload =
  check_open t;
  if not (valid_tag tag) then invalid_arg "Journal.append: malformed tag";
  if String.contains payload '\n' || String.contains payload '\r' then
    invalid_arg "Journal.append: payload contains a newline";
  t.pending <- (tag, payload) :: t.pending;
  Obs.Metrics.incr c_appends;
  t.appends <- t.appends + 1

(* Writes the pending records of the current block in one batch; the
   block either reaches the file whole or (on rollback) not at all. *)
let flush_block t =
  check_open t;
  match t.pending with
  | [] -> ()
  | pending ->
      let t0 = Obs.start_timer () in
      let buf = Buffer.create 256 in
      List.iter
        (fun (tag, payload) -> Buffer.add_string buf (encode_record ~tag payload))
        (List.rev pending);
      t.pending <- [];
      write_string t (Buffer.contents buf);
      flush t.oc;
      Obs.observe_since h_append t0;
      if t.sync = Per_write then fsync t

let drop_block t =
  check_open t;
  t.pending <- []

let write_marker t tag payload =
  write_string t (encode_record ~tag payload);
  flush t.oc;
  match t.sync with
  | Per_write | Per_commit -> fsync t
  | Never -> ()

let commit t =
  check_open t;
  flush_block t;
  write_marker t "commit" (string_of_int (t.commit_seq + 1));
  t.commit_seq <- t.commit_seq + 1;
  Obs.Metrics.incr c_commits;
  t.commits <- t.commits + 1

(* An abort discards the pending block and records a durable marker, so
   flushed records of the aborted transaction are skipped on replay even
   once a later transaction commits. *)
let abort t =
  check_open t;
  t.pending <- [];
  write_marker t "abort" ""

(* ----------------------------------------------------------- rotation *)

(* Replaces the whole journal by a fresh segment whose base records (a
   checkpoint of the committed state) stand for everything logged so
   far.  The segment is prepared aside, fsynced, and atomically renamed
   over the live path: a crash anywhere leaves either the old journal or
   the complete new one. *)
let rotate t ~base =
  check_open t;
  let tok = Obs.Trace.begin_ "journal.rotate" in
  t.pending <- [];
  let tmp = t.path ^ ".rotating" in
  let oc = open_segment tmp in
  let previous = t.oc in
  t.oc <- oc;
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace.end_into h_rotate tok;
      if t.oc == oc then () else close_out_noerr oc)
    (fun () ->
      write_string t (header ^ "\n");
      let buf = Buffer.create 1024 in
      List.iter
        (fun (tag, payload) -> Buffer.add_string buf (encode_record ~tag payload))
        base;
      Buffer.add_string buf
        (encode_record ~tag:"commit" (string_of_int (t.commit_seq + 1)));
      write_string t (Buffer.contents buf);
      fsync t;
      Failpoint.hit "journal.rename";
      Sys.rename tmp t.path;
      (* The rename is durable only once the directory is synced: a
         crash in between may resurrect the pre-rotation segment (or
         leave only the ".rotating" name) on recovery. *)
      Failpoint.hit "journal.dirsync";
      fsync_dir t.path;
      close_out_noerr previous;
      t.commit_seq <- t.commit_seq + 1;
      Obs.Metrics.incr c_commits;
      t.commits <- t.commits + 1;
      Obs.Metrics.incr c_rotations;
      t.rotations <- t.rotations + 1;
      t.appends <- t.appends + List.length base)

(* ------------------------------------------------- sealing and GC *)

(* Closes the live segment under a numbered name and continues appending
   to a fresh live file at the same path — the checkpoint-era replacement
   for [rotate]: instead of one segment standing for all history, history
   accumulates as a chain [<path>.seg-0 .. seg-N, <path>] whose prefix a
   checkpoint lets {!gc} retire.  Called at a commit boundary (no pending
   block, no open transaction), so the sealed segment ends at a marker.
   The sealed content is fsynced before the rename; a crash between the
   rename and the fresh header leaves a readable chain with no live file,
   which {!read_chain} tolerates. *)
let seal t =
  check_open t;
  if t.pending <> [] then invalid_arg "Journal.seal: pending block";
  let tok = Obs.Trace.begin_ "journal.seal" in
  Fun.protect
    ~finally:(fun () -> Obs.Trace.end_into h_rotate tok)
    (fun () ->
      flush t.oc;
      fsync_channel t.oc;
      Obs.Metrics.incr c_syncs;
      t.syncs <- t.syncs + 1;
      let sealed_path = segment_path t.path t.seg_seq in
      Failpoint.hit "journal.seal.rename";
      Sys.rename t.path sealed_path;
      Failpoint.hit "journal.seal.dirsync";
      fsync_dir t.path;
      close_out_noerr t.oc;
      t.oc <- open_segment t.path;
      write_string t (header ^ "\n");
      fsync t;
      fsync_dir t.path;
      t.sealed <-
        t.sealed
        @ [ { seg_seq = t.seg_seq; seg_path = sealed_path;
              seg_last_commit_seq = t.commit_seq } ];
      t.seg_seq <- t.seg_seq + 1;
      Obs.Metrics.incr c_seals)

let sealed_segments t = t.sealed

(* Unlinks every sealed segment wholly behind [upto] — the caller passes
   [min checkpoint_seq follower_ack_floor], so a segment is removed only
   once a durable checkpoint stands for it *and* no connected follower
   still needs its bytes.  Returns the number removed.  A crash mid-way
   leaves extra covered segments behind, never a hole recovery needs. *)
let gc t ~upto =
  check_open t;
  let retired, kept =
    List.partition (fun s -> s.seg_last_commit_seq <= upto) t.sealed
  in
  List.iter
    (fun s ->
      Failpoint.hit "journal.gc.unlink";
      try Sys.remove s.seg_path with Sys_error _ -> ())
    retired;
  if retired <> [] then fsync_dir t.path;
  t.sealed <- kept;
  Obs.Metrics.add c_gc_segments (List.length retired);
  List.length retired

let close t =
  if not t.closed then begin
    flush_block t;
    flush t.oc;
    close_out_noerr t.oc;
    t.closed <- true
  end

(* A simulated process death: releases the descriptor *without* flushing,
   so bytes still in the channel buffer are lost exactly as they would be
   when a process is killed.  Test harness use. *)
let abandon t =
  if not t.closed then begin
    (try Unix.close (Unix.descr_of_out_channel t.oc) with Unix.Unix_error _ -> ());
    t.closed <- true
  end

(* ------------------------------------------------------------ reading *)

type entry = { tag : string; payload : string }

type replay = {
  committed : entry list list;
  committed_seqs : int list;
      (** the commit-marker sequence closing each group of [committed],
          in the same order — checkpoint-aware recovery filters on it *)
  last_commit_seq : int;
  entries_committed : int;
  uncommitted_entries : int;
  torn_bytes : int;
}

let read_all path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Ok
        (Fun.protect
           ~finally:(fun () -> close_in_noerr ic)
           (fun () -> really_input_string ic (in_channel_length ic)))

let split_body body =
  match String.index_opt body '\t' with
  | None -> { tag = body; payload = "" }
  | Some i ->
      {
        tag = String.sub body 0 i;
        payload = String.sub body (i + 1) (String.length body - i - 1);
      }

(* Parses the record starting at [pos]; [None] when the bytes from [pos]
   on are not one intact record (torn or corrupt tail). *)
let parse_record content pos =
  match String.index_from_opt content pos '\n' with
  | None -> None
  | Some nl -> (
      let line = String.sub content pos (nl - pos) in
      match String.split_on_char '\t' line with
      | len_text :: crc_text :: rest -> (
          let body = String.concat "\t" rest in
          match (int_of_string_opt len_text, int_of_string_opt crc_text) with
          | Some len, Some crc
            when len = String.length body && crc = crc32 body ->
              Some (split_body body, nl + 1)
          | _ -> None)
      | _ -> None)

let read ~path =
  match read_all path with
  | Error msg -> Error msg
  | Ok content ->
      let total = String.length content in
      let header_line = header ^ "\n" in
      let header_len = String.length header_line in
      if total >= header_len && String.sub content 0 header_len = header_line
      then begin
        let committed = ref [] in
        let committed_seqs = ref [] in
        let current = ref [] in
        let entries_committed = ref 0 in
        let last_commit_seq = ref 0 in
        let pos = ref header_len in
        let stop = ref false in
        while not !stop do
          match parse_record content !pos with
          | None -> stop := true
          | Some (entry, next) -> (
              pos := next;
              match entry.tag with
              | "commit" -> (
                  match int_of_string_opt entry.payload with
                  | None -> stop := true  (* corrupt marker: truncate here *)
                  | Some seq ->
                      committed := List.rev !current :: !committed;
                      committed_seqs := seq :: !committed_seqs;
                      entries_committed :=
                        !entries_committed + List.length !current;
                      current := [];
                      last_commit_seq := seq)
              | "abort" -> current := []
              | _ -> current := entry :: !current)
        done;
        Ok
          {
            committed = List.rev !committed;
            committed_seqs = List.rev !committed_seqs;
            last_commit_seq = !last_commit_seq;
            entries_committed = !entries_committed;
            uncommitted_entries = List.length !current;
            torn_bytes = total - !pos;
          }
      end
      else if
        (* A crash during the very first header write leaves a prefix of
           the header: an empty journal with a torn tail, not garbage. *)
        total < header_len && String.sub header_line 0 total = content
      then
        Ok
          {
            committed = [];
            committed_seqs = [];
            last_commit_seq = 0;
            entries_committed = 0;
            uncommitted_entries = 0;
            torn_bytes = total;
          }
      else Error (Printf.sprintf "%s: missing chimera-journal header" path)

(* ------------------------------------------------------- chain reading *)

type chain = {
  chain_replay : replay;  (** the concatenated replay of every file *)
  chain_files : string list;  (** files read, oldest first, live last *)
  chain_first_segment : int option;
      (** lowest sealed segment number present; [None] when the live file
          stands alone.  A value past 0 means GC retired the chain's
          oldest segments — everything before it must come from a
          checkpoint. *)
}

let empty_replay =
  {
    committed = [];
    committed_seqs = [];
    last_commit_seq = 0;
    entries_committed = 0;
    uncommitted_entries = 0;
    torn_bytes = 0;
  }

let concat_replays a b =
  {
    committed = a.committed @ b.committed;
    committed_seqs = a.committed_seqs @ b.committed_seqs;
    last_commit_seq =
      (if b.last_commit_seq > 0 then b.last_commit_seq else a.last_commit_seq);
    entries_committed = a.entries_committed + b.entries_committed;
    uncommitted_entries = a.uncommitted_entries + b.uncommitted_entries;
    torn_bytes = a.torn_bytes + b.torn_bytes;
  }

(* Reads the whole chain at [path]: sealed segments in ascending order,
   then the live file.  Tolerates a chain whose leading segments were
   GC'd (it may start at any number) and a missing live file (a crash
   between a seal's rename and the fresh header), but not a hole or a
   corrupt header in the middle.  Sealed segments end at a marker, so
   uncommitted/torn tails can only stem from the live file. *)
let read_chain ~path =
  let segs = list_segment_files path in
  let live_exists = Sys.file_exists path in
  if segs = [] && not live_exists then
    Error (Printf.sprintf "%s: no such journal" path)
  else begin
    let rec check_contiguous = function
      | (a, _) :: ((b, pb) :: _ as rest) ->
          if b <> a + 1 then
            Error (Printf.sprintf "%s: missing segment %d before %s" path (a + 1) pb)
          else check_contiguous rest
      | _ -> Ok ()
    in
    match check_contiguous segs with
    | Error _ as e -> e
    | Ok () -> (
        let rec fold acc files = function
          | [] ->
              if live_exists then
                match read ~path with
                | Error _ as e -> e
                | Ok r ->
                    Ok
                      {
                        chain_replay = concat_replays acc r;
                        chain_files = List.rev (path :: files);
                        chain_first_segment =
                          (match segs with [] -> None | (s, _) :: _ -> Some s);
                      }
              else
                Ok
                  {
                    chain_replay = acc;
                    chain_files = List.rev files;
                    chain_first_segment =
                      (match segs with [] -> None | (s, _) :: _ -> Some s);
                  }
          | (_, p) :: rest -> (
              match read ~path:p with
              | Error _ as e -> e
              | Ok r -> fold (concat_replays acc r) (p :: files) rest)
        in
        fold empty_replay [] segs)
  end

(* Parses one framed record line (without its newline) back into an
   entry, verifying length and CRC — what a replication follower runs on
   every record it receives before applying it. *)
let entry_of_line line =
  match String.split_on_char '\t' line with
  | len_text :: crc_text :: rest -> (
      let body = String.concat "\t" rest in
      match (int_of_string_opt len_text, int_of_string_opt crc_text) with
      | Some len, Some crc when len = String.length body && crc = crc32 body ->
          Ok (split_body body)
      | _ -> Error (Printf.sprintf "corrupt record frame %S" line))
  | _ -> Error (Printf.sprintf "malformed record line %S" line)

(* ------------------------------------------------------------ tailing *)

(* Live follow of a journal for replication shipping.  The tailer reads
   the segment the path currently names, ships whole record lines only
   up to and including the last commit/abort marker — a flushed but
   still-open transaction (and any torn tail) is held back until its
   marker lands — and follows segment rotation: when the inode behind
   the path changes (the writer renamed a checkpointed segment over it),
   the old descriptor is drained through its last marker, held-back
   records of the abandoned transaction are dropped (the new segment's
   checkpoint stands for them), and the stream restarts with a
   [Segment] event that tells the follower to reset. *)
module Tail = struct
  type event =
    | Segment of { generation : int }
    | Records of string
        (** raw record lines, newline-terminated, ending at a marker *)

  type t = {
    t_path : string;
    chunk : int;  (** max bytes per [Records] event *)
    mutable fd : Unix.file_descr option;
    mutable ino : int;
    mutable generation : int;
    mutable partial : Buffer.t;  (** bytes after the last newline read *)
    mutable held_rev : string list;  (** complete lines awaiting a marker *)
    mutable header_seen : bool;
    read_buf : Bytes.t;
  }

  let create ?(chunk = 32 * 1024) ~path () =
    {
      t_path = path;
      chunk = max 1024 chunk;
      fd = None;
      ino = -1;
      generation = 0;
      partial = Buffer.create 256;
      held_rev = [];
      header_seen = false;
      read_buf = Bytes.create 8192;
    }

  let generation t = t.generation

  let close t =
    (match t.fd with
    | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
    | None -> ());
    t.fd <- None

  (* The record tag sits after the second tab of the line; commit and
     abort tags are the transaction boundaries shipping keys on.  The
     line arrives newline-terminated, and a payload-less marker (abort)
     ends "...\tabort\n" — the terminator must come off before the tag
     compare or the tag would swallow it. *)
  let is_marker_line line =
    let line =
      let n = String.length line in
      if n > 0 && line.[n - 1] = '\n' then String.sub line 0 (n - 1) else line
    in
    match String.index_opt line '\t' with
    | None -> false
    | Some i -> (
        match String.index_from_opt line (i + 1) '\t' with
        | None -> false
        | Some j ->
            let rest = String.sub line (j + 1) (String.length line - j - 1) in
            let tag =
              match String.index_opt rest '\t' with
              | None -> rest
              | Some k -> String.sub rest 0 k
            in
            String.equal tag "commit" || String.equal tag "abort")

  (* Moves everything held (oldest first) into ship chunks of at most
     [t.chunk] bytes, splitting only at record boundaries. *)
  let ship_held t acc =
    let lines = List.rev t.held_rev in
    t.held_rev <- [];
    let buf = Buffer.create 1024 in
    let flush_buf () =
      if Buffer.length buf > 0 then begin
        acc := Records (Buffer.contents buf) :: !acc;
        Buffer.clear buf
      end
    in
    List.iter
      (fun line ->
        if Buffer.length buf > 0 && Buffer.length buf + String.length line > t.chunk
        then flush_buf ();
        Buffer.add_string buf line)
      lines;
    flush_buf ()

  (* Consumes the complete lines of [data]; the trailing partial line (no
     newline yet) stays buffered for the next read. *)
  let feed t data acc =
    Buffer.add_string t.partial data;
    let s = Buffer.contents t.partial in
    let n = String.length s in
    let rec lines pos =
      match String.index_from_opt s pos '\n' with
      | None ->
          Buffer.clear t.partial;
          Buffer.add_substring t.partial s pos (n - pos)
      | Some nl ->
          let line = String.sub s pos (nl - pos + 1) in
          (if not t.header_seen then
             (* The first line of a segment is the version header, not a
                record: consumed here, re-written by the follower. *)
             t.header_seen <- true
           else begin
             t.held_rev <- line :: t.held_rev;
             if is_marker_line line then ship_held t acc
           end);
          lines (nl + 1)
    in
    lines 0

  let drain_fd t fd acc =
    let rec go () =
      match Unix.read fd t.read_buf 0 (Bytes.length t.read_buf) with
      | 0 -> ()
      | n ->
          feed t (Bytes.sub_string t.read_buf 0 n) acc;
          go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
          ()
      | exception Unix.Unix_error _ -> ()
    in
    go ()

  let begin_segment t fd ino acc =
    t.fd <- Some fd;
    t.ino <- ino;
    t.generation <- t.generation + 1;
    Buffer.clear t.partial;
    t.held_rev <- [];
    t.header_seen <- false;
    acc := Segment { generation = t.generation } :: !acc

  let try_open t acc =
    match Unix.openfile t.t_path [ Unix.O_RDONLY ] 0 with
    | exception Unix.Unix_error _ -> ()
    | fd -> (
        match (Unix.fstat fd).Unix.st_ino with
        | ino -> begin_segment t fd ino acc
        | exception Unix.Unix_error _ -> (
            try Unix.close fd with Unix.Unix_error _ -> ()))

  (* One poll turn: detect rotation, read what the writer has flushed,
     return the shippable events.  Never blocks, never raises. *)
  let poll t =
    let acc = ref [] in
    (* Rotation: the path now names a different inode than the open fd. *)
    (match t.fd with
    | Some fd -> (
        match (Unix.stat t.t_path).Unix.st_ino with
        | ino when ino <> t.ino ->
            (* Drain the abandoned segment through its last marker; the
               held-back open transaction is superseded by the new
               segment's checkpoint. *)
            drain_fd t fd acc;
            (try Unix.close fd with Unix.Unix_error _ -> ());
            t.fd <- None;
            t.held_rev <- [];
            Buffer.clear t.partial
        | _ -> ()
        | exception Unix.Unix_error _ -> ())
    | None -> ());
    if t.fd = None then try_open t acc;
    (match t.fd with Some fd -> drain_fd t fd acc | None -> ());
    List.rev !acc
end

(* --------------------------------------------------------- raw sink *)

(* The follower's local copy of a shipped segment: raw record bytes are
   appended exactly as received (so the file is byte-identical to the
   primary's segment and {!read} / [chimera recover] replay it
   unchanged), under the same header, fsynced per policy so a REPL_ACK
   can vouch for durability. *)
module Sink = struct
  type sink = {
    s_path : string;
    s_sync : sync_policy;
    mutable s_oc : out_channel;
    mutable s_bytes : int;
  }

  type t = sink

  let open_fresh path =
    let oc = open_segment path in
    output_string oc (header ^ "\n");
    flush oc;
    fsync_channel oc;
    fsync_dir path;
    oc

  let create ~sync ~path () =
    { s_path = path; s_sync = sync; s_oc = open_fresh path; s_bytes = 0 }

  let path s = s.s_path
  let bytes_written s = s.s_bytes

  (* A new segment generation began on the primary: restart the local
     copy from a fresh header. *)
  let reset s =
    close_out_noerr s.s_oc;
    s.s_oc <- open_fresh s.s_path;
    s.s_bytes <- 0

  let write s data =
    output_string s.s_oc data;
    flush s.s_oc;
    s.s_bytes <- s.s_bytes + String.length data;
    match s.s_sync with
    | Per_write | Per_commit -> fsync_channel s.s_oc
    | Never -> ()

  let sync s =
    flush s.s_oc;
    fsync_channel s.s_oc

  let close s =
    flush s.s_oc;
    close_out_noerr s.s_oc
end
