(** The write-ahead event journal: an append-only on-disk log of framed
    (tag, payload) records with commit/abort markers, length+CRC32
    framing (one record per line under a versioned header), a
    configurable fsync policy, and checkpoint-based segment rotation.

    The journal is payload-agnostic; the engine records operations as
    [Store_codec] lines and occurrences as [Event_codec] lines.  Records
    accumulate in a pending block buffer ({!append}) and reach the file
    either whole ({!flush_block}) or not at all ({!drop_block}) — block
    atomicity.  {!commit} closes a transaction with a durable marker;
    recovery ({!read}) replays committed transactions only and tolerates
    a torn tail (truncating at the first corrupt record and reporting
    what was dropped).

    Durability boundaries carry [Failpoint] sites — ["journal.write"]
    (torn-write capable), ["journal.fsync"], ["journal.rename"] — so
    recovery tests can crash at every one of them. *)

type sync_policy =
  | Per_write  (** fsync every flushed block and marker *)
  | Per_commit  (** fsync commit/abort markers only (the default) *)
  | Never  (** never fsync; flushes still reach the OS *)

type t

val create : ?sync:sync_policy -> path:string -> unit -> t
(** Starts a fresh journal at [path] (truncating any previous file) and
    durably writes the header. *)

val append : t -> tag:string -> string -> unit
(** Buffers one record into the pending block.  Tags must be non-empty
    and tab/newline-free; payloads newline-free (raises
    [Invalid_argument] otherwise). *)

val flush_block : t -> unit
(** Writes the pending block to the file in one batch (fsyncs under
    {!Per_write}). *)

val drop_block : t -> unit
(** Discards the pending block — the journal side of block rollback. *)

val commit : t -> unit
(** Flushes the pending block and writes a commit marker carrying the
    next commit sequence number; fsyncs unless the policy is {!Never}. *)

val abort : t -> unit
(** Discards the pending block and writes a durable abort marker, so
    already-flushed records of the aborted transaction are skipped on
    replay. *)

val rotate : t -> base:(string * string) list -> unit
(** Replaces the whole journal by a fresh segment holding [base] (a
    checkpoint of the committed state) closed by a commit marker.  The
    segment is prepared aside, fsynced and atomically renamed over the
    live path: a crash anywhere leaves either the old journal or the
    complete new one.  Counts as a commit. *)

val sync : t -> unit
(** Forces an fsync regardless of policy. *)

val close : t -> unit
(** Flushes pending records and closes the file. *)

val abandon : t -> unit
(** Simulated process death: releases the descriptor {e without}
    flushing, losing bytes still in the channel buffer — test harness
    use after a [Failpoint.Crash]. *)

val commit_seq : t -> int
(** Commit markers written so far (monotone across rotations). *)

val path : t -> string

type counters = {
  appends : int;  (** records accepted into pending blocks *)
  commits : int;  (** commit markers written (incl. rotations) *)
  syncs : int;  (** fsyncs issued *)
  rotations : int;
  bytes_written : int;  (** bytes written to the live segment *)
}

val counters : t -> counters

(** {2 Recovery} *)

type entry = { tag : string; payload : string }

type replay = {
  committed : entry list list;  (** committed transactions, in order *)
  last_commit_seq : int;  (** 0 when no transaction committed *)
  entries_committed : int;
  uncommitted_entries : int;  (** intact records after the last marker *)
  torn_bytes : int;  (** bytes dropped at the first torn/corrupt record *)
}

val read : path:string -> (replay, string) result
(** Scans a journal file, accepting the longest prefix of intact
    records: committed transactions are returned for replay, trailing
    uncommitted records and the torn tail are reported as dropped.
    [Error] on an unreadable file or a foreign/garbled header. *)

val crc32 : string -> int
(** The checksum used by the framing (exposed for tests). *)
