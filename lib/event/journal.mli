(** The write-ahead event journal: an append-only on-disk log of framed
    (tag, payload) records with commit/abort markers, length+CRC32
    framing (one record per line under a versioned header), a
    configurable fsync policy, and checkpoint-based segment rotation.

    The journal is payload-agnostic; the engine records operations as
    [Store_codec] lines and occurrences as [Event_codec] lines.  Records
    accumulate in a pending block buffer ({!append}) and reach the file
    either whole ({!flush_block}) or not at all ({!drop_block}) — block
    atomicity.  {!commit} closes a transaction with a durable marker;
    recovery ({!read}) replays committed transactions only and tolerates
    a torn tail (truncating at the first corrupt record and reporting
    what was dropped).

    Durability boundaries carry [Failpoint] sites — ["journal.write"]
    (torn-write capable), ["journal.fsync"], ["journal.rename"] — so
    recovery tests can crash at every one of them. *)

type sync_policy =
  | Per_write  (** fsync every flushed block and marker *)
  | Per_commit  (** fsync commit/abort markers only (the default) *)
  | Never  (** never fsync; flushes still reach the OS *)

type t

val create : ?sync:sync_policy -> path:string -> unit -> t
(** Starts a fresh journal at [path] (truncating any previous file,
    removing stale sealed segments and a stale checkpoint of a previous
    journal under the same path) and durably writes the header. *)

val open_append : ?sync:sync_policy -> path:string -> commit_seq:int -> unit -> t
(** Reopens an existing journal for appending — the promotion path of a
    replication follower whose local segment was written record-for-record
    from the primary's stream.  The header must already be on disk;
    [commit_seq] is the sequence the segment currently ends at, so later
    markers continue the numbering. *)

val append : t -> tag:string -> string -> unit
(** Buffers one record into the pending block.  Tags must be non-empty
    and tab/newline-free; payloads newline-free (raises
    [Invalid_argument] otherwise). *)

val flush_block : t -> unit
(** Writes the pending block to the file in one batch (fsyncs under
    {!Per_write}). *)

val drop_block : t -> unit
(** Discards the pending block — the journal side of block rollback. *)

val commit : t -> unit
(** Flushes the pending block and writes a commit marker carrying the
    next commit sequence number; fsyncs unless the policy is {!Never}. *)

val abort : t -> unit
(** Discards the pending block and writes a durable abort marker, so
    already-flushed records of the aborted transaction are skipped on
    replay. *)

val rotate : t -> base:(string * string) list -> unit
(** Replaces the whole journal by a fresh segment holding [base] (a
    checkpoint of the committed state) closed by a commit marker.  The
    segment is prepared aside, fsynced and atomically renamed over the
    live path: a crash anywhere leaves either the old journal or the
    complete new one.  Counts as a commit. *)

(** {2 Sealing and segment GC}

    The checkpoint-era alternative to {!rotate}: instead of one segment
    standing for all history, the live file is {!seal}ed under a numbered
    name ([<path>.seg-000000], [.seg-000001], …) and appending continues
    in a fresh live file, forming a chain a checkpoint lets {!gc} retire
    from the front.  Failpoint sites: ["journal.seal.rename"],
    ["journal.seal.dirsync"], ["journal.gc.unlink"]. *)

val seal : t -> unit
(** Seals the live segment and continues at the same path.  Must be
    called at a commit boundary (raises [Invalid_argument] on a pending
    block); the sealed content is fsynced before the rename, so the
    segment always ends at a marker.  Does not write a marker or advance
    the commit sequence. *)

type sealed = {
  seg_seq : int;
  seg_path : string;
  seg_last_commit_seq : int;
      (** the commit sequence the segment ends at *)
}

val sealed_segments : t -> sealed list
(** Sealed segments this journal still holds, oldest first. *)

val gc : t -> upto:int -> int
(** Unlinks every sealed segment whose last commit sequence is at or
    below [upto] and returns how many were removed.  Callers pass
    [min checkpoint_seq follower_ack_floor]: a segment is retired only
    once a durable checkpoint stands for it and no connected follower
    still needs its bytes.  A crash mid-way leaves extra covered
    segments, never a hole recovery needs. *)

val sync : t -> unit
(** Forces an fsync regardless of policy. *)

val close : t -> unit
(** Flushes pending records and closes the file. *)

val abandon : t -> unit
(** Simulated process death: releases the descriptor {e without}
    flushing, losing bytes still in the channel buffer — test harness
    use after a [Failpoint.Crash]. *)

val commit_seq : t -> int
(** Commit markers written so far (monotone across rotations). *)

val path : t -> string

type counters = {
  appends : int;  (** records accepted into pending blocks *)
  commits : int;  (** commit markers written (incl. rotations) *)
  syncs : int;  (** fsyncs issued *)
  rotations : int;
  bytes_written : int;  (** bytes written to the live segment *)
}

val counters : t -> counters

(** {2 Recovery} *)

type entry = { tag : string; payload : string }

type replay = {
  committed : entry list list;  (** committed transactions, in order *)
  committed_seqs : int list;
      (** the commit-marker sequence closing each group of [committed],
          in the same order — checkpoint-aware recovery filters on it *)
  last_commit_seq : int;  (** 0 when no transaction committed *)
  entries_committed : int;
  uncommitted_entries : int;  (** intact records after the last marker *)
  torn_bytes : int;  (** bytes dropped at the first torn/corrupt record *)
}

val read : path:string -> (replay, string) result
(** Scans a journal file, accepting the longest prefix of intact
    records: committed transactions are returned for replay, trailing
    uncommitted records and the torn tail are reported as dropped.
    [Error] on an unreadable file or a foreign/garbled header. *)

type chain = {
  chain_replay : replay;  (** the concatenated replay of every file *)
  chain_files : string list;  (** files read, oldest first, live last *)
  chain_first_segment : int option;
      (** lowest sealed segment number present; [None] when the live
          file stands alone.  Past 0 means GC retired the oldest
          segments — their content must come from a checkpoint. *)
}

val read_chain : path:string -> (chain, string) result
(** Reads the sealed-segment chain at [path] (ascending) followed by the
    live file.  Tolerates a chain whose leading segments were GC'd and a
    missing live file (crash between a seal's rename and the fresh
    header), but errors on a hole in the middle or a corrupt header. *)

val crc32 : string -> int
(** The checksum used by the framing (exposed for tests). *)

val encode_record : tag:string -> string -> string
(** One framed, newline-terminated record line — what {!append} writes.
    Exposed for the checkpoint codec and for synthesizing replication
    base records from a checkpoint. *)

val entry_of_line : string -> (entry, string) result
(** Parses one framed record line (without its newline) back into an
    entry, verifying length and CRC32 — what a replication follower runs
    on every record it receives before applying it. *)

(** {2 Replication: tailing and raw sinks} *)

(** Live follow of a journal segment for replication shipping.  A tailer
    reads the file the path currently names and emits raw record lines
    {e only up to and including the last commit/abort marker} — records
    of a still-open transaction (and any torn tail) are held back until
    their marker lands.  Segment rotation (the writer atomically renaming
    a checkpointed segment over the path) is detected by the inode
    changing: the abandoned descriptor is drained through its last
    marker, held-back records are dropped (the new checkpoint stands for
    them), and a {!Tail.Segment} event tells the consumer to reset before
    the new segment's records follow. *)
module Tail : sig
  type event =
    | Segment of { generation : int }
        (** a new segment generation begins: reset downstream state *)
    | Records of string
        (** raw newline-terminated record lines, ending at a marker *)

  type t

  val create : ?chunk:int -> path:string -> unit -> t
  (** [chunk] (default 32 KiB, min 1 KiB) bounds the bytes per
      [Records] event, split only at record boundaries. *)

  val poll : t -> event list
  (** One non-blocking turn: detect rotation, read what the writer
      flushed, return shippable events (possibly []).  Never raises; an
      unreadable or missing file simply yields nothing this turn. *)

  val generation : t -> int
  (** Segment generations opened so far; 0 before the first open. *)

  val close : t -> unit
end

(** The follower's local copy of a shipped segment: raw record bytes
    append exactly as received — the file is byte-identical to the
    primary's segment, so {!read} and [chimera recover] replay it
    unchanged — under the standard header, fsynced per policy so an ack
    can vouch for durability. *)
module Sink : sig
  type t

  val create : sync:sync_policy -> path:string -> unit -> t
  (** Truncates [path] to a fresh header (durably). *)

  val reset : t -> unit
  (** A new segment generation began upstream: restart from a fresh
      header. *)

  val write : t -> string -> unit
  (** Appends raw record bytes and flushes; fsyncs unless the policy is
      {!Never}. *)

  val sync : t -> unit
  val close : t -> unit
  val path : t -> string
  val bytes_written : t -> int
end
