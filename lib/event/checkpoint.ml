(* Engine checkpoints: a point-in-time serialization of the committed
   state — object store dump, OID generator, logical clock, pending
   timers — that stands for every journal segment up to a commit
   sequence, so those segments can be GC'd and recovery can boot from
   the checkpoint plus the O(delta) journal suffix.

   The file reuses the journal's framing (one CRC32-checked record per
   line under a versioned header): a meta record carrying the covered
   commit sequence, then the same replayable (tag, payload) records the
   engine writes into journals — [ckpt.obj], [ckpt.oidgen], [ckpt.clock],
   [timer] — closed by an end record, so a torn file is detectable.
   Checkpoints are taken at commit boundaries, where the paper's
   semantics make every logged occurrence dead (all rule windows restart
   at the commit instant), so no event records are needed.

   Writing is atomic: tmp file, fsync, rename over the live name, parent
   dirsync — the path always names either the previous complete
   checkpoint or the new one.  Failpoint sites ("ckpt.write" torn-write
   capable, "ckpt.fsync", "ckpt.rename", "ckpt.dirsync") let the crash
   matrix stop at every boundary. *)

open Chimera_util

let header = "# chimera-checkpoint v1"
let meta_tag = "ckpt.meta"
let end_tag = "ckpt.end"

type t = {
  commit_seq : int;
      (** the journal commit sequence this checkpoint covers: recovery
          replays only transactions with a greater marker *)
  entries : Journal.entry list;
      (** replayable records, in application order *)
}

let path_for journal_path = journal_path ^ ".ckpt"

let fsync_dir path =
  let dir = Filename.dirname path in
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let write ~path t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (header ^ "\n");
  Buffer.add_string buf
    (Journal.encode_record ~tag:meta_tag (string_of_int t.commit_seq));
  List.iter
    (fun { Journal.tag; payload } ->
      Buffer.add_string buf (Journal.encode_record ~tag payload))
    t.entries;
  Buffer.add_string buf (Journal.encode_record ~tag:end_tag "");
  let content = Buffer.contents buf in
  let tmp = path ^ ".writing" in
  let oc =
    open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 tmp
  in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      (match Failpoint.cut "ckpt.write" ~len:(String.length content) with
      | None -> output_string oc content
      | Some keep ->
          output_string oc (String.sub content 0 keep);
          flush oc;
          Failpoint.crash "ckpt.write");
      Failpoint.hit "ckpt.fsync";
      flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc));
  Failpoint.hit "ckpt.rename";
  Sys.rename tmp path;
  Failpoint.hit "ckpt.dirsync";
  fsync_dir path

(* Reads a checkpoint back, validating the header, every record frame,
   the meta record and the end record: a file that does not parse whole
   is an error, never a partial checkpoint — atomic writing means the
   live path can only hold complete files, so damage here is corruption,
   not a crash artifact. *)
let read ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | content -> (
      let lines = String.split_on_char '\n' content in
      match lines with
      | h :: rest when h = header -> (
          let rec parse acc = function
            | [] | [ "" ] -> Error (path ^ ": missing checkpoint end record")
            | line :: rest -> (
                match Journal.entry_of_line line with
                | Error e -> Error (path ^ ": " ^ e)
                | Ok entry ->
                    if entry.Journal.tag = end_tag then
                      if rest = [] || rest = [ "" ] then Ok (List.rev acc)
                      else Error (path ^ ": trailing bytes after end record")
                    else parse (entry :: acc) rest)
          in
          match parse [] rest with
          | Error _ as e -> e
          | Ok (meta :: entries) when meta.Journal.tag = meta_tag -> (
              match int_of_string_opt meta.Journal.payload with
              | Some commit_seq -> Ok { commit_seq; entries }
              | None -> Error (path ^ ": malformed checkpoint meta record"))
          | Ok _ -> Error (path ^ ": missing checkpoint meta record"))
      | _ -> Error (path ^ ": missing chimera-checkpoint header"))

let read_opt ~path =
  if Sys.file_exists path then
    match read ~path with Ok t -> Ok (Some t) | Error _ as e -> e
  else Ok None

(* The checkpoint as journal wire bytes: its records framed exactly as
   the journal would write them, closed by a commit marker at the
   covered sequence.  A replication reactor ships this as the base of a
   freshly sealed segment, so a follower's local copy replays to the
   checkpointed state before the tailed records continue from it. *)
let to_wire t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun { Journal.tag; payload } ->
      Buffer.add_string buf (Journal.encode_record ~tag payload))
    t.entries;
  Buffer.add_string buf
    (Journal.encode_record ~tag:"commit" (string_of_int t.commit_seq));
  Buffer.contents buf
