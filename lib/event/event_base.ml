(* The Event Base: the append-only log of event occurrences of a transaction
   (Fig. 3), with the per-type index tree the implementation section
   describes (Occurred Events structure) and a per-(type, object) index for
   the instance-oriented operators.

   The per-type index is a *posting list*: a Vec of log indices per event
   type, appended on record and cut by truncate_to.  Because the log is in
   timestamp order, a posting list is too, so every type-restricted query
   (last_of_type, newest_of_type, oids_of_type, window scans) is a binary
   search over postings instead of a walk of the raw log. *)

open Chimera_util
module Obs = Chimera_obs.Obs

(* Every appended occurrence updates the trace context (spans begun after
   it carry its EID) and the raise counter — the "event raise" phase is
   observable wherever it happens: engine lines, rule actions, timers,
   recovery replay and the baseline detectors alike. *)
let c_recorded = Obs.Metrics.counter "events.recorded"

(* Posting-list traffic: appends on record, probes on type-restricted
   queries, and the number of distinct lists — the discrimination-network
   footprint visible in [chimera stats]. *)
let c_posting_appends = Obs.Metrics.counter "eventbase.posting_appends"
let c_posting_probes = Obs.Metrics.counter "eventbase.posting_probes"
let g_posting_lists = Obs.Metrics.gauge "eventbase.posting_lists"

(* Sliding-window retirement: the safe horizon the log has been retired
   behind, and how many occurrences have been released so far. *)
let g_horizon = Obs.Metrics.gauge "window.horizon"
let c_retired = Obs.Metrics.counter "window.retired"

module Type_oid_key = struct
  type t = Event_type.t * int

  let equal (ta, oa) (tb, ob) = oa = ob && Event_type.equal ta tb
  let hash (t, o) = (Event_type.hash t * 31) + o
end

module Type_oid_tbl = Hashtbl.Make (Type_oid_key)

type t = {
  clock : Time.Clock.clock;
  eids : Ident.Eid.gen;
  log : Occurrence.t Vec.t;
  by_type : int Vec.t Event_type.Tbl.t;  (** posting lists of log indices *)
  by_type_oid : Time.t Vec.t Type_oid_tbl.t;
  (* Per-object event instants (the "sparse data structure" of Section 5):
     lets [oids_in] check each known object with a binary search instead of
     scanning the window. *)
  by_oid : (int, Time.t Vec.t) Hashtbl.t;
  oid_registry : int Vec.t;  (** first-seen order *)
  mutable horizon : Time.t;
      (** the log and [by_oid] are retired up to here (inclusive) *)
  type_horizons : Time.t Event_type.Tbl.t;
      (** per-type posting retirement bounds; at least [horizon] *)
  mutable listeners : (Occurrence.t -> unit) list;
      (** notified after every insert, in registration order *)
}

let dummy_occurrence =
  Occurrence.make
    ~eid:(Ident.Eid.of_int 0)
    ~etype:(Event_type.create ~class_name:"_")
    ~oid:(Ident.Oid.of_int 0) ~timestamp:Time.origin

let create () =
  {
    clock = Time.Clock.create ();
    eids = Ident.Eid.generator ();
    log = Vec.create ~dummy:dummy_occurrence;
    by_type = Event_type.Tbl.create 64;
    by_type_oid = Type_oid_tbl.create 256;
    by_oid = Hashtbl.create 256;
    oid_registry = Vec.create ~dummy:0;
    horizon = Time.origin;
    type_horizons = Event_type.Tbl.create 64;
    listeners = [];
  }

let clock t = t.clock
let size t = Vec.length t.log
let live_size t = Vec.live_length t.log
let horizon t = t.horizon

(* The bound below which type-restricted queries on [etype] may have lost
   occurrences to retirement; queries with [after >= type_horizon] are
   exact. *)
let type_horizon t etype =
  match Event_type.Tbl.find_opt t.type_horizons etype with
  | Some h -> Time.max h t.horizon
  | None -> t.horizon
let now t = Time.Clock.now t.clock
let probe_now t = Time.Clock.probe_now t.clock
let on_insert t f = t.listeners <- t.listeners @ [ f ]

(* Timestamp of the log entry a posting refers to: the (non-decreasing)
   search key of every posting-list bisection. *)
let stamp_at t i = Occurrence.timestamp (Vec.get t.log i)

let type_index t etype =
  match Event_type.Tbl.find_opt t.by_type etype with
  | Some v -> v
  | None ->
      let v = Vec.create ~dummy:0 in
      Event_type.Tbl.add t.by_type etype v;
      Obs.Metrics.set_gauge g_posting_lists (Event_type.Tbl.length t.by_type);
      v

let type_oid_index t etype oid =
  let key = (etype, Ident.Oid.to_int oid) in
  match Type_oid_tbl.find_opt t.by_type_oid key with
  | Some v -> v
  | None ->
      let v = Vec.create ~dummy:Time.origin in
      Type_oid_tbl.add t.by_type_oid key v;
      v

(* Index an occurrence under its exact type and, for attribute-qualified
   modify events, also under the unqualified modify on the same class so
   that coarse subscriptions see it. *)
let index_types occ =
  let etype = Occurrence.etype occ in
  match (Event_type.operation etype, Event_type.attribute etype) with
  | Event_type.Modify, Some _ ->
      [ etype; Event_type.modify ~class_name:(Event_type.class_name etype) () ]
  | _ -> [ etype ]

let indexed_types = index_types

let oid_index t oid =
  let key = Ident.Oid.to_int oid in
  match Hashtbl.find_opt t.by_oid key with
  | Some v -> v
  | None ->
      let v = Vec.create ~dummy:Time.origin in
      Hashtbl.add t.by_oid key v;
      Vec.push t.oid_registry key;
      v

let insert t occ =
  Obs.Metrics.incr c_recorded;
  Obs.Trace.set_eid (Ident.Eid.to_int (Occurrence.eid occ));
  let pos = Vec.length t.log in
  Vec.push t.log occ;
  Vec.push (oid_index t (Occurrence.oid occ)) (Occurrence.timestamp occ);
  List.iter
    (fun key ->
      Vec.push (type_index t key) pos;
      Obs.Metrics.incr c_posting_appends;
      Vec.push
        (type_oid_index t key (Occurrence.oid occ))
        (Occurrence.timestamp occ))
    (index_types occ);
  List.iter (fun f -> f occ) t.listeners

let record t ~etype ~oid =
  let timestamp = Time.Clock.next_event_instant t.clock in
  let occ =
    Occurrence.make ~eid:(Ident.Eid.fresh t.eids) ~etype ~oid ~timestamp
  in
  insert t occ;
  occ

let record_at t ~etype ~oid ~timestamp =
  if not (Time.( > ) timestamp (Time.Clock.now t.clock)) then
    invalid_arg "Event_base.record_at: timestamps must be strictly increasing";
  if not (Time.is_event_instant timestamp) then
    invalid_arg "Event_base.record_at: not an event instant";
  Time.Clock.advance_to t.clock timestamp;
  let occ =
    Occurrence.make ~eid:(Ident.Eid.fresh t.eids) ~etype ~oid ~timestamp
  in
  insert t occ;
  occ

(* Rollback support: forget every occurrence strictly after [instant] and
   rewind the clock and EID generator, so the log is exactly what it was
   when [instant] was the present.  Every index is append-only in
   timestamp order, so each one is cut with a single binary search; the
   posting lists are cut *before* the log so their entries still resolve,
   and the per-object registry is in first-seen order, so objects first
   seen after the cut form a suffix. *)
let truncate_to t ~instant =
  let cut v ~key = Vec.truncate v (Vec.bisect_right v ~key instant + 1) in
  Event_type.Tbl.iter (fun _ v -> cut v ~key:(stamp_at t)) t.by_type;
  cut t.log ~key:Occurrence.timestamp;
  Type_oid_tbl.iter (fun _ v -> cut v ~key:(fun x -> x)) t.by_type_oid;
  Hashtbl.iter (fun _ v -> cut v ~key:(fun x -> x)) t.by_oid;
  let rec drop_fresh_oids () =
    match Vec.last t.oid_registry with
    | Some key -> (
        (* A dangling slot (forgotten object) is committed-era: nothing
           fresh sits at or below it, so stop there. *)
        match Hashtbl.find_opt t.by_oid key with
        | Some v when Vec.is_empty v ->
            Hashtbl.remove t.by_oid key;
            Vec.truncate t.oid_registry (Vec.length t.oid_registry - 1);
            drop_fresh_oids ()
        | Some _ | None -> ())
    | None -> ()
  in
  drop_fresh_oids ();
  Time.Clock.rewind_to t.clock instant;
  (* EIDs are issued densely, one per logged occurrence, so the undone
     ones are exactly those beyond the remaining length. *)
  Ident.Eid.rewind t.eids ~count:(Vec.length t.log);
  (* Horizons never cross the rollback target (retirement clamps to the
     transaction start), but the recorded per-type bounds may refer to
     just-undone instants — rewind them so they stay meaningful. *)
  if Time.( > ) t.horizon instant then t.horizon <- instant;
  Event_type.Tbl.filter_map_inplace
    (fun _ h -> Some (Time.min h instant))
    t.type_horizons

(* Sliding-window retirement (the dual of [truncate_to]): release every
   occurrence at or before [horizon] — and, per type, at or before
   [type_horizon etype], which may be later for types no live rule window
   can reach back to.  Indices stay stable ({!Vec.retire_prefix}); the
   posting lists are retired *before* the log so their bisection keys
   still resolve.  Horizons need not be monotone across calls (a new rule
   may shrink a type's bound): retirement simply never un-retires. *)
let retire_to t ~horizon ~type_horizon =
  let retired_before = Vec.start t.log in
  Event_type.Tbl.iter
    (fun etype v ->
      let h = Time.max horizon (type_horizon etype) in
      Vec.retire_prefix v (Vec.bisect_right v ~key:(stamp_at t) h + 1);
      let prev =
        match Event_type.Tbl.find_opt t.type_horizons etype with
        | Some p -> p
        | None -> Time.origin
      in
      if Time.( > ) h prev then Event_type.Tbl.replace t.type_horizons etype h)
    t.by_type;
  (* A fully retired per-(type, object) posting is indistinguishable
     from an absent one (every lookup treats absence as "no live
     events"), so drop the table entry outright — the index stays
     O(live window), not O(objects ever seen); a later event on the
     same pair re-creates it on demand. *)
  let dead = ref [] in
  Type_oid_tbl.iter
    (fun ((etype, _) as key) v ->
      let h = Time.max horizon (type_horizon etype) in
      Vec.retire_prefix v (Vec.bisect_right v ~key:(fun x -> x) h + 1);
      if Vec.is_empty v then dead := key :: !dead)
    t.by_type_oid;
  List.iter (Type_oid_tbl.remove t.by_type_oid) !dead;
  (* Crash site between the index passes and the log retire: a process
     killed mid-retirement leaves indexes ahead of the log — recovery
     rebuilds both from the journal, so the half-state must never need
     to be readable again. *)
  Failpoint.hit "window.retire";
  Vec.retire_prefix t.log
    (Vec.bisect_right t.log ~key:Occurrence.timestamp horizon + 1);
  Hashtbl.iter
    (fun _ v ->
      Vec.retire_prefix v (Vec.bisect_right v ~key:(fun x -> x) horizon + 1))
    t.by_oid;
  if Time.( > ) horizon t.horizon then begin
    t.horizon <- horizon;
    Obs.Metrics.set_gauge g_horizon (Time.to_int horizon)
  end;
  Obs.Metrics.add c_retired (Vec.start t.log - retired_before)

(* Registry slots of forgotten objects dangle (their [by_oid] entry is
   gone); first-seen order means churn workloads retire them as a
   prefix, keeping the registry proportional to the live population
   plus any out-of-order stragglers. *)
let retire_registry_prefix t =
  let rec go () =
    let s = Vec.start t.oid_registry in
    if
      s < Vec.length t.oid_registry
      && not (Hashtbl.mem t.by_oid (Vec.get t.oid_registry s))
    then begin
      Vec.retire_prefix t.oid_registry (s + 1);
      go ()
    end
  in
  go ()

let forget_objects t ~oids =
  List.iter (fun oid -> Hashtbl.remove t.by_oid (Ident.Oid.to_int oid)) oids;
  retire_registry_prefix t

let clipped_upper window ~at = Time.min at (Window.upto window)

let postings t etype =
  let r = Event_type.Tbl.find_opt t.by_type etype in
  if r <> None then Obs.Metrics.incr c_posting_probes;
  r

(* Timestamp of the most recent occurrence of [etype] inside [window],
   observed at instant [at]; [None] when there is none.  This is the
   positive branch of the paper's ts function for primitive event types. *)
let last_of_type t ~etype ~window ~at =
  match postings t etype with
  | None -> None
  | Some v -> (
      let upper = clipped_upper window ~at in
      let i = Vec.bisect_right v ~key:(stamp_at t) upper in
      if i < Vec.start v then None
      else
        let ts = stamp_at t (Vec.get v i) in
        if Time.( > ) ts (Window.after window) then Some ts else None)

(* Newest occurrence of [etype] anywhere in the log, O(1): the posting
   list is append-only, so its last entry is the answer.  Lets callers
   rule out an arrival after some instant without a binary search. *)
let newest_of_type t ~etype =
  match Event_type.Tbl.find_opt t.by_type etype with
  | None -> None
  | Some v -> (
      match Vec.last v with Some i -> Some (stamp_at t i) | None -> None)

(* Per-object variant: the positive branch of ots. *)
let last_of_type_on t ~etype ~oid ~window ~at =
  match Type_oid_tbl.find_opt t.by_type_oid (etype, Ident.Oid.to_int oid) with
  | None -> None
  | Some v -> (
      let upper = clipped_upper window ~at in
      let i = Vec.bisect_right v ~key:(fun x -> x) upper in
      if i < Vec.start v then None
      else
        let ts = Vec.get v i in
        if Time.( > ) ts (Window.after window) then Some ts else None)

(* Did any occurrence in (after, upto] carry one of [types] (under the
   same modify-attribute aliasing the indexes use)?  The gap between two
   successive probes is typically a handful of occurrences, so a short
   gap is answered by scanning it once; a long one falls back to one
   posting-list probe per type. *)
let occurred_in t ~types ~after ~upto =
  if Time.( >= ) after upto then false
  else begin
    let lo = Vec.bisect_after t.log ~key:Occurrence.timestamp after in
    let hi = Vec.bisect_right t.log ~key:Occurrence.timestamp upto in
    if hi < lo then false
    else if hi - lo < 16 then begin
      let rec scan i =
        i <= hi
        && (List.exists
              (fun ty -> Event_type.Set.mem ty types)
              (index_types (Vec.get t.log i))
           || scan (i + 1))
      in
      scan lo
    end
    else
      Event_type.Set.exists
        (fun etype ->
          match postings t etype with
          | None -> false
          | Some v ->
              let i = Vec.bisect_right v ~key:(stamp_at t) upto in
              i >= Vec.start v && Time.( > ) (stamp_at t (Vec.get v i)) after)
        types
  end

let iter_in t ~window f =
  let lo = Vec.bisect_after t.log ~key:Occurrence.timestamp (Window.after window) in
  let n = Vec.length t.log in
  let rec loop i =
    if i < n then
      let occ = Vec.get t.log i in
      if Time.( <= ) (Occurrence.timestamp occ) (Window.upto window) then begin
        f occ;
        loop (i + 1)
      end
  in
  loop lo

let occurrences_in t ~window =
  let acc = ref [] in
  iter_in t ~window (fun occ -> acc := occ :: !acc);
  List.rev !acc

let timestamps_in t ~window =
  List.map Occurrence.timestamp (occurrences_in t ~window)

(* Two bisections, not a window scan: this is the R <> 0 gate the
   Trigger Support consults on every rule check. *)
let is_empty_in t ~window =
  let lo =
    Vec.bisect_after t.log ~key:Occurrence.timestamp (Window.after window)
  in
  let hi =
    Vec.bisect_right t.log ~key:Occurrence.timestamp (Window.upto window)
  in
  hi < lo

module Int_set = Set.Make (Int)

(* Distinct objects affected by any occurrence in [window], observed at
   [at]: the "oid in R" set that instance-to-set lifting ranges over. *)
let oids_in t ~window ~at =
  let upper = clipped_upper window ~at in
  let after = Window.after window in
  if Time.( <= ) upper after then []
  else begin
    (* Each known object is checked with one binary search: it belongs iff
       it has an event instant in (after, upper]. *)
    let acc = ref [] in
    Vec.iter
      (fun key ->
        match Hashtbl.find_opt t.by_oid key with
        | None -> () (* forgotten object, dangling registry slot *)
        | Some stamps ->
            let i = Vec.bisect_right stamps ~key:(fun x -> x) upper in
            if i >= Vec.start stamps && Time.( > ) (Vec.get stamps i) after
            then acc := key :: !acc)
      t.oid_registry;
    List.rev_map Ident.Oid.of_int !acc
  end

(* Distinct objects affected by occurrences of [etype] in [window] at
   [at]; the candidate set for evaluating event formulas. *)
let oids_of_type t ~etype ~window ~at =
  match postings t etype with
  | None -> []
  | Some v ->
      let upper = clipped_upper window ~at in
      let lo = Vec.bisect_after v ~key:(stamp_at t) (Window.after window) in
      let hi = Vec.bisect_right v ~key:(stamp_at t) upper in
      let acc = ref Int_set.empty in
      for i = lo to hi do
        acc :=
          Int_set.add
            (Ident.Oid.to_int (Occurrence.oid (Vec.get t.log (Vec.get v i))))
            !acc
      done;
      List.map Ident.Oid.of_int (Int_set.elements !acc)

(* Ascending timestamps of occurrences of [etype] on [oid] in [window],
   clipped at [at]; used by the [at] event formula. *)
let timestamps_of_type_on t ~etype ~oid ~window ~at =
  match Type_oid_tbl.find_opt t.by_type_oid (etype, Ident.Oid.to_int oid) with
  | None -> []
  | Some v ->
      let upper = clipped_upper window ~at in
      let lo = Vec.bisect_after v ~key:(fun x -> x) (Window.after window) in
      let hi = Vec.bisect_right v ~key:(fun x -> x) upper in
      let rec loop i acc = if i < lo then acc else loop (i - 1) (Vec.get v i :: acc) in
      loop hi []

(* Ascending, de-duplicated instants in (after, upto] that carry at least
   one of [types]: the relevant-instant set a delta-driven trigger check
   probes, gathered by merging the per-type posting ranges instead of
   scanning the window. *)
let timestamps_of_types_in t ~types ~after ~upto =
  if Time.( >= ) after upto then []
  else begin
    let acc = ref Int_set.empty in
    List.iter
      (fun etype ->
        match postings t etype with
        | None -> ()
        | Some v ->
            let lo = Vec.bisect_after v ~key:(stamp_at t) after in
            let hi = Vec.bisect_right v ~key:(stamp_at t) upto in
            for i = lo to hi do
              acc := Int_set.add (Vec.get v i) !acc
            done)
      types;
    List.map (stamp_at t) (Int_set.elements !acc)
  end

let to_list t = Vec.to_list t.log

let pp ppf t =
  Fmt.pf ppf "@[<v>";
  Vec.iter (fun occ -> Fmt.pf ppf "%a@," Occurrence.pp occ) t.log;
  Fmt.pf ppf "@]"
