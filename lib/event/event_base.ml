(* The Event Base: the append-only log of event occurrences of a transaction
   (Fig. 3), with the per-type index tree the implementation section
   describes (Occurred Events structure: per-type occurrence lists keeping
   the most recent timestamp at each leaf) and a per-(type, object) index for
   the instance-oriented operators. *)

open Chimera_util
module Obs = Chimera_obs.Obs

(* Every appended occurrence updates the trace context (spans begun after
   it carry its EID) and the raise counter — the "event raise" phase is
   observable wherever it happens: engine lines, rule actions, timers,
   recovery replay and the baseline detectors alike. *)
let c_recorded = Obs.Metrics.counter "events.recorded"

module Type_oid_key = struct
  type t = Event_type.t * int

  let equal (ta, oa) (tb, ob) = oa = ob && Event_type.equal ta tb
  let hash (t, o) = (Event_type.hash t * 31) + o
end

module Type_oid_tbl = Hashtbl.Make (Type_oid_key)

type t = {
  clock : Time.Clock.clock;
  eids : Ident.Eid.gen;
  log : Occurrence.t Vec.t;
  by_type : Occurrence.t Vec.t Event_type.Tbl.t;
  by_type_oid : Time.t Vec.t Type_oid_tbl.t;
  (* Per-object event instants (the "sparse data structure" of Section 5):
     lets [oids_in] check each known object with a binary search instead of
     scanning the window. *)
  by_oid : (int, Time.t Vec.t) Hashtbl.t;
  oid_registry : int Vec.t;  (** first-seen order *)
}

let dummy_occurrence =
  Occurrence.make
    ~eid:(Ident.Eid.of_int 0)
    ~etype:(Event_type.create ~class_name:"_")
    ~oid:(Ident.Oid.of_int 0) ~timestamp:Time.origin

let create () =
  {
    clock = Time.Clock.create ();
    eids = Ident.Eid.generator ();
    log = Vec.create ~dummy:dummy_occurrence;
    by_type = Event_type.Tbl.create 64;
    by_type_oid = Type_oid_tbl.create 256;
    by_oid = Hashtbl.create 256;
    oid_registry = Vec.create ~dummy:0;
  }

let clock t = t.clock
let size t = Vec.length t.log
let now t = Time.Clock.now t.clock
let probe_now t = Time.Clock.probe_now t.clock

let type_index t etype =
  match Event_type.Tbl.find_opt t.by_type etype with
  | Some v -> v
  | None ->
      let v = Vec.create ~dummy:dummy_occurrence in
      Event_type.Tbl.add t.by_type etype v;
      v

let type_oid_index t etype oid =
  let key = (etype, Ident.Oid.to_int oid) in
  match Type_oid_tbl.find_opt t.by_type_oid key with
  | Some v -> v
  | None ->
      let v = Vec.create ~dummy:Time.origin in
      Type_oid_tbl.add t.by_type_oid key v;
      v

(* Index an occurrence under its exact type and, for attribute-qualified
   modify events, also under the unqualified modify on the same class so
   that coarse subscriptions see it. *)
let index_types occ =
  let etype = Occurrence.etype occ in
  match (Event_type.operation etype, Event_type.attribute etype) with
  | Event_type.Modify, Some _ ->
      [ etype; Event_type.modify ~class_name:(Event_type.class_name etype) () ]
  | _ -> [ etype ]

let oid_index t oid =
  let key = Ident.Oid.to_int oid in
  match Hashtbl.find_opt t.by_oid key with
  | Some v -> v
  | None ->
      let v = Vec.create ~dummy:Time.origin in
      Hashtbl.add t.by_oid key v;
      Vec.push t.oid_registry key;
      v

let insert t occ =
  Obs.Metrics.incr c_recorded;
  Obs.Trace.set_eid (Ident.Eid.to_int (Occurrence.eid occ));
  Vec.push t.log occ;
  Vec.push (oid_index t (Occurrence.oid occ)) (Occurrence.timestamp occ);
  List.iter
    (fun key ->
      Vec.push (type_index t key) occ;
      Vec.push
        (type_oid_index t key (Occurrence.oid occ))
        (Occurrence.timestamp occ))
    (index_types occ)

let record t ~etype ~oid =
  let timestamp = Time.Clock.next_event_instant t.clock in
  let occ =
    Occurrence.make ~eid:(Ident.Eid.fresh t.eids) ~etype ~oid ~timestamp
  in
  insert t occ;
  occ

let record_at t ~etype ~oid ~timestamp =
  if not (Time.( > ) timestamp (Time.Clock.now t.clock)) then
    invalid_arg "Event_base.record_at: timestamps must be strictly increasing";
  if not (Time.is_event_instant timestamp) then
    invalid_arg "Event_base.record_at: not an event instant";
  Time.Clock.advance_to t.clock timestamp;
  let occ =
    Occurrence.make ~eid:(Ident.Eid.fresh t.eids) ~etype ~oid ~timestamp
  in
  insert t occ;
  occ

(* Rollback support: forget every occurrence strictly after [instant] and
   rewind the clock and EID generator, so the log is exactly what it was
   when [instant] was the present.  Every index is append-only in
   timestamp order, so each one is cut with a single binary search; the
   per-object registry is in first-seen order, so objects first seen
   after the cut form a suffix. *)
let truncate_to t ~instant =
  let cut v ~key = Vec.truncate v (Vec.bisect_right v ~key instant + 1) in
  cut t.log ~key:Occurrence.timestamp;
  Event_type.Tbl.iter (fun _ v -> cut v ~key:Occurrence.timestamp) t.by_type;
  Type_oid_tbl.iter (fun _ v -> cut v ~key:(fun x -> x)) t.by_type_oid;
  Hashtbl.iter (fun _ v -> cut v ~key:(fun x -> x)) t.by_oid;
  let rec drop_fresh_oids () =
    match Vec.last t.oid_registry with
    | Some key when Vec.is_empty (Hashtbl.find t.by_oid key) ->
        Hashtbl.remove t.by_oid key;
        Vec.truncate t.oid_registry (Vec.length t.oid_registry - 1);
        drop_fresh_oids ()
    | Some _ | None -> ()
  in
  drop_fresh_oids ();
  Time.Clock.rewind_to t.clock instant;
  (* EIDs are issued densely, one per logged occurrence, so the undone
     ones are exactly those beyond the remaining length. *)
  Ident.Eid.rewind t.eids ~count:(Vec.length t.log)

let clipped_upper window ~at = Time.min at (Window.upto window)

(* Timestamp of the most recent occurrence of [etype] inside [window],
   observed at instant [at]; [None] when there is none.  This is the
   positive branch of the paper's ts function for primitive event types. *)
let last_of_type t ~etype ~window ~at =
  match Event_type.Tbl.find_opt t.by_type etype with
  | None -> None
  | Some v -> (
      let upper = clipped_upper window ~at in
      let i = Vec.bisect_right v ~key:Occurrence.timestamp upper in
      if i < 0 then None
      else
        let ts = Occurrence.timestamp (Vec.get v i) in
        if Time.( > ) ts (Window.after window) then Some ts else None)

(* Newest occurrence of [etype] anywhere in the log, O(1): the per-type
   index is append-only, so its last entry is the answer.  Lets callers
   rule out an arrival after some instant without a binary search. *)
let newest_of_type t ~etype =
  match Event_type.Tbl.find_opt t.by_type etype with
  | None -> None
  | Some v -> (
      match Vec.last v with
      | Some occ -> Some (Occurrence.timestamp occ)
      | None -> None)

(* Per-object variant: the positive branch of ots. *)
let last_of_type_on t ~etype ~oid ~window ~at =
  match Type_oid_tbl.find_opt t.by_type_oid (etype, Ident.Oid.to_int oid) with
  | None -> None
  | Some v -> (
      let upper = clipped_upper window ~at in
      let i = Vec.bisect_right v ~key:(fun x -> x) upper in
      if i < 0 then None
      else
        let ts = Vec.get v i in
        if Time.( > ) ts (Window.after window) then Some ts else None)

(* Did any occurrence in (after, upto] carry one of [types] (under the
   same modify-attribute aliasing the indexes use)?  The gap between two
   successive probes is typically a handful of occurrences, so a short
   gap is answered by scanning it once; a long one falls back to one
   index probe per type. *)
let occurred_in t ~types ~after ~upto =
  if Time.( >= ) after upto then false
  else begin
    let lo = Vec.bisect_after t.log ~key:Occurrence.timestamp after in
    let hi = Vec.bisect_right t.log ~key:Occurrence.timestamp upto in
    if hi < lo then false
    else if hi - lo < 16 then begin
      let rec scan i =
        i <= hi
        && (List.exists
              (fun ty -> Event_type.Set.mem ty types)
              (index_types (Vec.get t.log i))
           || scan (i + 1))
      in
      scan lo
    end
    else
      Event_type.Set.exists
        (fun etype ->
          match Event_type.Tbl.find_opt t.by_type etype with
          | None -> false
          | Some v ->
              let i = Vec.bisect_right v ~key:Occurrence.timestamp upto in
              i >= 0 && Time.( > ) (Occurrence.timestamp (Vec.get v i)) after)
        types
  end

let iter_in t ~window f =
  let lo = Vec.bisect_after t.log ~key:Occurrence.timestamp (Window.after window) in
  let n = Vec.length t.log in
  let rec loop i =
    if i < n then
      let occ = Vec.get t.log i in
      if Time.( <= ) (Occurrence.timestamp occ) (Window.upto window) then begin
        f occ;
        loop (i + 1)
      end
  in
  loop lo

let occurrences_in t ~window =
  let acc = ref [] in
  iter_in t ~window (fun occ -> acc := occ :: !acc);
  List.rev !acc

let timestamps_in t ~window =
  List.map Occurrence.timestamp (occurrences_in t ~window)

let is_empty_in t ~window =
  match occurrences_in t ~window with [] -> true | _ :: _ -> false

module Int_set = Set.Make (Int)

(* Distinct objects affected by any occurrence in [window], observed at
   [at]: the "oid in R" set that instance-to-set lifting ranges over. *)
let oids_in t ~window ~at =
  let upper = clipped_upper window ~at in
  let after = Window.after window in
  if Time.( <= ) upper after then []
  else begin
    (* Each known object is checked with one binary search: it belongs iff
       it has an event instant in (after, upper]. *)
    let acc = ref [] in
    Vec.iter
      (fun key ->
        let stamps = Hashtbl.find t.by_oid key in
        let i = Vec.bisect_right stamps ~key:(fun x -> x) upper in
        if i >= 0 && Time.( > ) (Vec.get stamps i) after then
          acc := key :: !acc)
      t.oid_registry;
    List.rev_map Ident.Oid.of_int !acc
  end

(* Distinct objects affected by occurrences of [etype] in [window] at
   [at]; the candidate set for evaluating event formulas. *)
let oids_of_type t ~etype ~window ~at =
  match Event_type.Tbl.find_opt t.by_type etype with
  | None -> []
  | Some v ->
      let upper = clipped_upper window ~at in
      let lo = Vec.bisect_after v ~key:Occurrence.timestamp (Window.after window) in
      let hi = Vec.bisect_right v ~key:Occurrence.timestamp upper in
      let acc = ref Int_set.empty in
      for i = lo to hi do
        acc := Int_set.add (Ident.Oid.to_int (Occurrence.oid (Vec.get v i))) !acc
      done;
      List.map Ident.Oid.of_int (Int_set.elements !acc)

(* Ascending timestamps of occurrences of [etype] on [oid] in [window],
   clipped at [at]; used by the [at] event formula. *)
let timestamps_of_type_on t ~etype ~oid ~window ~at =
  match Type_oid_tbl.find_opt t.by_type_oid (etype, Ident.Oid.to_int oid) with
  | None -> []
  | Some v ->
      let upper = clipped_upper window ~at in
      let lo = Vec.bisect_after v ~key:(fun x -> x) (Window.after window) in
      let hi = Vec.bisect_right v ~key:(fun x -> x) upper in
      let rec loop i acc = if i < lo then acc else loop (i - 1) (Vec.get v i :: acc) in
      loop hi []

let to_list t = Vec.to_list t.log

let pp ppf t =
  Fmt.pf ppf "@[<v>";
  Vec.iter (fun occ -> Fmt.pf ppf "%a@," Occurrence.pp occ) t.log;
  Fmt.pf ppf "@]"
