(** Engine checkpoints: a point-in-time serialization of the committed
    state (object store dump, OID generator, logical clock, pending
    timers) covering every journal transaction up to a commit sequence,
    so the segments behind it can be GC'd and recovery boots from the
    checkpoint plus the O(delta) journal suffix.

    The file reuses the journal's CRC32 framing under a
    [# chimera-checkpoint v1] header: a meta record (the covered commit
    sequence), the engine's replayable records ([ckpt.obj],
    [ckpt.oidgen], [ckpt.clock], [timer]), and an end record.  Written
    atomically (tmp + fsync + rename + parent dirsync), so the live path
    always names a complete checkpoint.  Failpoint sites: ["ckpt.write"]
    (torn-write capable), ["ckpt.fsync"], ["ckpt.rename"],
    ["ckpt.dirsync"]. *)

type t = {
  commit_seq : int;
      (** the journal commit sequence this checkpoint covers: recovery
          replays only transactions with a greater marker *)
  entries : Journal.entry list;  (** replayable records, in order *)
}

val path_for : string -> string
(** The conventional checkpoint path beside a journal:
    [<journal>.ckpt]. *)

val write : path:string -> t -> unit
(** Atomically (re)writes the checkpoint at [path]. *)

val read : path:string -> (t, string) result
(** Reads and fully validates a checkpoint; any damage is an error (the
    atomic write protocol never leaves a partial file at the live
    path). *)

val read_opt : path:string -> (t option, string) result
(** [Ok None] when no checkpoint exists at [path]. *)

val to_wire : t -> string
(** The checkpoint as journal wire bytes: its records framed as the
    journal writes them, closed by a commit marker at [commit_seq] —
    shipped by the replication reactor as the base of a freshly sealed
    segment so followers replay to the checkpointed state. *)
