(* Textual persistence for event bases.

   One occurrence per line — "EID <tab> event-type <tab> OID <tab>
   timestamp" — human-inspectable and stable, so traces can be archived,
   diffed and replayed (the CLI and the workload tools build on it).
   Decoding validates monotonicity and the even-instant discipline via
   [Event_base.record_at]. *)

open Chimera_util

let header = "# chimera-event-base v1"

let encode_line occ =
  Printf.sprintf "%d\t%s\t%d\t%d"
    (Ident.Eid.to_int (Occurrence.eid occ))
    (Event_type.to_string (Occurrence.etype occ))
    (Ident.Oid.to_int (Occurrence.oid occ))
    (Time.to_int (Occurrence.timestamp occ))

let to_string eb =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  List.iter
    (fun occ ->
      Buffer.add_string buf (encode_line occ);
      Buffer.add_char buf '\n')
    (Event_base.to_list eb);
  Buffer.contents buf

let ( let* ) = Result.bind
let occurrence_line = encode_line

(* Numeric fields decode defensively: [int_of_string_opt] already turns
   length/precision overflow into [None], and the sign check keeps an
   (otherwise CRC-valid) corrupt record from reaching the unchecked
   [Time.of_int]/[Oid.of_int] injections — decoding returns [Error],
   never raises. *)
let nonneg_int_opt text =
  match int_of_string_opt text with
  | Some n when n >= 0 -> Some n
  | Some _ | None -> None

(* Parses one occurrence line without positional context: the journal
   frames these lines as its "ev" payloads. *)
let parse_occurrence_line line =
  match String.split_on_char '\t' line with
  | [ _eid; etype_text; oid_text; timestamp_text ] -> (
      let* etype = Event_type.of_string etype_text in
      match (nonneg_int_opt oid_text, nonneg_int_opt timestamp_text) with
      | Some oid, Some timestamp ->
          Ok (etype, Ident.Oid.of_int oid, Time.of_int timestamp)
      | _ -> Error (Printf.sprintf "malformed numbers in %S" line))
  | _ -> Error (Printf.sprintf "expected 4 tab-separated fields in %S" line)

let decode_line lineno line =
  match String.split_on_char '\t' line with
  | [ _eid; etype_text; oid_text; timestamp_text ] -> (
      let* etype =
        Result.map_error
          (fun msg -> Printf.sprintf "line %d: %s" lineno msg)
          (Event_type.of_string etype_text)
      in
      match (nonneg_int_opt oid_text, nonneg_int_opt timestamp_text) with
      | Some oid, Some timestamp ->
          Ok (etype, Ident.Oid.of_int oid, Time.of_int timestamp)
      | _ -> Error (Printf.sprintf "line %d: malformed numbers" lineno))
  | _ -> Error (Printf.sprintf "line %d: expected 4 tab-separated fields" lineno)

(* EIDs are reassigned densely on load; identity is carried by the
   timestamps, which are preserved exactly. *)
let of_string text =
  let lines = String.split_on_char '\n' text in
  match lines with
  | first :: rest when String.equal first header ->
      let eb = Event_base.create () in
      let* () =
        List.fold_left
          (fun acc (lineno, line) ->
            let* () = acc in
            if String.trim line = "" then Ok ()
            else
              let* etype, oid, timestamp = decode_line lineno line in
              match Event_base.record_at eb ~etype ~oid ~timestamp with
              | _occ -> Ok ()
              | exception Invalid_argument msg ->
                  Error (Printf.sprintf "line %d: %s" lineno msg))
          (Ok ())
          (List.mapi (fun i line -> (i + 2, line)) rest)
      in
      Ok eb
  | _ -> Error "missing chimera-event-base header"

(* --------------------------------------------------------------- binary

   The wire's hot-path record: fixed-width big-endian fields, no parsing.
   One record is 20 bytes — etype id u32, oid u64, timestamp u64 — and
   the codec owns both directions so the server's encoder and the
   loadgen/journal decoders can never drift apart. *)

let binary_record_bytes = 20

let encode_record buf ~etype_id ~oid ~timestamp =
  if etype_id < 0 || etype_id > 0xFFFF_FFFF then
    invalid_arg "Event_codec.encode_record: etype id out of u32 range";
  if oid < 0 then invalid_arg "Event_codec.encode_record: negative oid";
  if timestamp < 0 then
    invalid_arg "Event_codec.encode_record: negative timestamp";
  let u32 n =
    Buffer.add_char buf (Char.chr ((n lsr 24) land 0xFF));
    Buffer.add_char buf (Char.chr ((n lsr 16) land 0xFF));
    Buffer.add_char buf (Char.chr ((n lsr 8) land 0xFF));
    Buffer.add_char buf (Char.chr (n land 0xFF))
  in
  let u64 n =
    (* OCaml ints are 63-bit: the top byte of the wire field is the
       value's bits 56..62 plus a zero sign bit, so [n lsr 56] never
       exceeds 0x3F for a non-negative int. *)
    Buffer.add_char buf (Char.chr ((n lsr 56) land 0xFF));
    Buffer.add_char buf (Char.chr ((n lsr 48) land 0xFF));
    Buffer.add_char buf (Char.chr ((n lsr 40) land 0xFF));
    Buffer.add_char buf (Char.chr ((n lsr 32) land 0xFF));
    u32 (n land 0xFFFF_FFFF)
  in
  u32 etype_id;
  u64 oid;
  u64 timestamp

(* Total: every 20-byte slice decodes to [Ok] or [Error], never raises.
   u64 fields whose top two bits are set would overflow a 63-bit OCaml
   int (or go negative), so the first byte must be < 0x40. *)
let decode_record s ~off =
  if off < 0 || off + binary_record_bytes > String.length s then
    Error "binary record: short buffer"
  else
    let byte i = Char.code (String.unsafe_get s (off + i)) in
    let u32 i =
      (byte i lsl 24) lor (byte (i + 1) lsl 16) lor (byte (i + 2) lsl 8)
      lor byte (i + 3)
    in
    let u64 i =
      if byte i >= 0x40 then None
      else
        Some
          ((byte i lsl 56) lor (byte (i + 1) lsl 48) lor (byte (i + 2) lsl 40)
          lor (byte (i + 3) lsl 32) lor u32 (i + 4))
    in
    let etype_id = u32 0 in
    match (u64 4, u64 12) with
    | Some oid, Some timestamp -> Ok (etype_id, oid, timestamp)
    | None, _ -> Error "binary record: oid exceeds 62-bit range"
    | _, None -> Error "binary record: timestamp exceeds 62-bit range"

(* File variants surface I/O failures (missing or unwritable paths) as
   [Error] carrying the path, never as a raised [Sys_error]. *)
let write_file eb ~path =
  match open_out_bin path with
  | exception Sys_error msg -> Error (Printf.sprintf "cannot write %s: %s" path msg)
  | oc -> (
      match
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc (to_string eb))
      with
      | () -> Ok ()
      | exception Sys_error msg ->
          Error (Printf.sprintf "cannot write %s: %s" path msg))

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error (Printf.sprintf "cannot read %s: %s" path msg)
  | ic -> (
      match
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with
      | text -> of_string text
      | exception Sys_error msg ->
          Error (Printf.sprintf "cannot read %s: %s" path msg))
