(* Textual persistence for event bases.

   One occurrence per line — "EID <tab> event-type <tab> OID <tab>
   timestamp" — human-inspectable and stable, so traces can be archived,
   diffed and replayed (the CLI and the workload tools build on it).
   Decoding validates monotonicity and the even-instant discipline via
   [Event_base.record_at]. *)

open Chimera_util

let header = "# chimera-event-base v1"

let encode_line occ =
  Printf.sprintf "%d\t%s\t%d\t%d"
    (Ident.Eid.to_int (Occurrence.eid occ))
    (Event_type.to_string (Occurrence.etype occ))
    (Ident.Oid.to_int (Occurrence.oid occ))
    (Time.to_int (Occurrence.timestamp occ))

let to_string eb =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  List.iter
    (fun occ ->
      Buffer.add_string buf (encode_line occ);
      Buffer.add_char buf '\n')
    (Event_base.to_list eb);
  Buffer.contents buf

let ( let* ) = Result.bind
let occurrence_line = encode_line

(* Numeric fields decode defensively: [int_of_string_opt] already turns
   length/precision overflow into [None], and the sign check keeps an
   (otherwise CRC-valid) corrupt record from reaching the unchecked
   [Time.of_int]/[Oid.of_int] injections — decoding returns [Error],
   never raises. *)
let nonneg_int_opt text =
  match int_of_string_opt text with
  | Some n when n >= 0 -> Some n
  | Some _ | None -> None

(* Parses one occurrence line without positional context: the journal
   frames these lines as its "ev" payloads. *)
let parse_occurrence_line line =
  match String.split_on_char '\t' line with
  | [ _eid; etype_text; oid_text; timestamp_text ] -> (
      let* etype = Event_type.of_string etype_text in
      match (nonneg_int_opt oid_text, nonneg_int_opt timestamp_text) with
      | Some oid, Some timestamp ->
          Ok (etype, Ident.Oid.of_int oid, Time.of_int timestamp)
      | _ -> Error (Printf.sprintf "malformed numbers in %S" line))
  | _ -> Error (Printf.sprintf "expected 4 tab-separated fields in %S" line)

let decode_line lineno line =
  match String.split_on_char '\t' line with
  | [ _eid; etype_text; oid_text; timestamp_text ] -> (
      let* etype =
        Result.map_error
          (fun msg -> Printf.sprintf "line %d: %s" lineno msg)
          (Event_type.of_string etype_text)
      in
      match (nonneg_int_opt oid_text, nonneg_int_opt timestamp_text) with
      | Some oid, Some timestamp ->
          Ok (etype, Ident.Oid.of_int oid, Time.of_int timestamp)
      | _ -> Error (Printf.sprintf "line %d: malformed numbers" lineno))
  | _ -> Error (Printf.sprintf "line %d: expected 4 tab-separated fields" lineno)

(* EIDs are reassigned densely on load; identity is carried by the
   timestamps, which are preserved exactly. *)
let of_string text =
  let lines = String.split_on_char '\n' text in
  match lines with
  | first :: rest when String.equal first header ->
      let eb = Event_base.create () in
      let* () =
        List.fold_left
          (fun acc (lineno, line) ->
            let* () = acc in
            if String.trim line = "" then Ok ()
            else
              let* etype, oid, timestamp = decode_line lineno line in
              match Event_base.record_at eb ~etype ~oid ~timestamp with
              | _occ -> Ok ()
              | exception Invalid_argument msg ->
                  Error (Printf.sprintf "line %d: %s" lineno msg))
          (Ok ())
          (List.mapi (fun i line -> (i + 2, line)) rest)
      in
      Ok eb
  | _ -> Error "missing chimera-event-base header"

(* File variants surface I/O failures (missing or unwritable paths) as
   [Error] carrying the path, never as a raised [Sys_error]. *)
let write_file eb ~path =
  match open_out_bin path with
  | exception Sys_error msg -> Error (Printf.sprintf "cannot write %s: %s" path msg)
  | oc -> (
      match
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc (to_string eb))
      with
      | () -> Ok ()
      | exception Sys_error msg ->
          Error (Printf.sprintf "cannot write %s: %s" path msg))

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error (Printf.sprintf "cannot read %s: %s" path msg)
  | ic -> (
      match
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with
      | text -> of_string text
      | exception Sys_error msg ->
          Error (Printf.sprintf "cannot read %s: %s" path msg))
