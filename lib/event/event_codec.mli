(** Textual persistence for event bases: one tab-separated occurrence per
    line under a versioned header, so traces can be archived, diffed and
    replayed.  Timestamps are preserved exactly; EIDs are reassigned
    densely on load. *)

open Chimera_util

val to_string : Event_base.t -> string

val of_string : string -> (Event_base.t, string) result
(** Validates the header, field shapes, timestamp monotonicity and the
    even-instant discipline; errors carry line numbers. *)

val write_file : Event_base.t -> path:string -> (unit, string) result
(** [Error] (carrying the path) on unwritable destinations — never
    raises [Sys_error]. *)

val read_file : string -> (Event_base.t, string) result
(** [Error] (carrying the path) on missing or unreadable files — never
    raises [Sys_error]. *)

val occurrence_line : Occurrence.t -> string
(** One occurrence in the line format (no header/newline); the journal
    frames these as its ["ev"] payloads. *)

val parse_occurrence_line :
  string -> (Event_type.t * Ident.Oid.t * Time.t, string) result
(** Parses one {!occurrence_line} (EIDs are reassigned on replay, so only
    the type, object and instant are returned). *)
