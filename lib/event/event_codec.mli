(** Textual persistence for event bases: one tab-separated occurrence per
    line under a versioned header, so traces can be archived, diffed and
    replayed.  Timestamps are preserved exactly; EIDs are reassigned
    densely on load. *)

open Chimera_util

val to_string : Event_base.t -> string

val of_string : string -> (Event_base.t, string) result
(** Validates the header, field shapes, timestamp monotonicity and the
    even-instant discipline; errors carry line numbers. *)

val write_file : Event_base.t -> path:string -> (unit, string) result
(** [Error] (carrying the path) on unwritable destinations — never
    raises [Sys_error]. *)

val read_file : string -> (Event_base.t, string) result
(** [Error] (carrying the path) on missing or unreadable files — never
    raises [Sys_error]. *)

val occurrence_line : Occurrence.t -> string
(** One occurrence in the line format (no header/newline); the journal
    frames these as its ["ev"] payloads. *)

val parse_occurrence_line :
  string -> (Event_type.t * Ident.Oid.t * Time.t, string) result
(** Parses one {!occurrence_line} (EIDs are reassigned on replay, so only
    the type, object and instant are returned). *)

(** {2 Binary occurrence records}

    The wire's hot-path encoding: fixed-width big-endian fields — etype
    id u32, oid u64, timestamp u64 — 20 bytes per record, no parsing.
    This module owns both directions (encode on the client, decode on
    the worker domains), so the formats can never drift apart. *)

val binary_record_bytes : int
(** Size of one encoded record: 20. *)

val encode_record :
  Buffer.t -> etype_id:int -> oid:int -> timestamp:int -> unit
(** Appends one record.  Raises [Invalid_argument] on a negative field
    or an etype id outside u32 — the encoder is the trusted side. *)

val decode_record : string -> off:int -> (int * int * int, string) result
(** [decode_record s ~off] reads the record at [off] as
    [(etype_id, oid, timestamp)].  Total: short buffers and u64 fields
    that would overflow OCaml's 63-bit int return [Error], never raise. *)
