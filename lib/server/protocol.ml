(* The wire protocol: length-prefixed frames carrying one text command or
   reply each.

   Framing is the only binary part — a 4-byte big-endian unsigned length
   prefix — and everything inside a frame is text, so a session capture
   is human-readable and the LINE payloads are the ordinary rule-language
   script text the rest of the system already parses.  The decoder is a
   total function over byte ranges: torn input is [Need_more], a
   zero-length prefix is a frame-local [Reject] (the stream is still
   framed: skip 4 bytes and continue), and a length prefix that
   overflows the cap is [Corrupt] — after it nothing downstream can be
   trusted, so the server replies ERR best-effort and closes. *)

open Chimera_event

let version = "chimera/1"
let features = [ "tx"; "stats"; "drain"; "keys"; "repl"; "bin"; "pipe"; "sub" ]
let default_max_frame = 64 * 1024
let header_bytes = 4

(* ----------------------------------------------------------- commands *)

type command =
  | Hello of string
  | Line of string
  | Etype of { id : int; name : string }
      (** [ETYPE <id> <name>]: intern an external event-type name under a
          session-local numeric id, for binary frames to reference *)
  | Event of { etype : string; oid : int }
      (** [EVENT <etype> <oid>]: record one external event occurrence
          directly — the text twin of the binary EVENT frame *)
  | Commit
  | Abort
  | Stats
  | Ping of string
  | Quit
  | Repl_hello of string
      (** a follower announcing itself: "<version> <engines>" *)
  | Repl_ack of { shard : int; seq : int }
      (** follower → primary: commit [seq] of [shard] is durably local *)
  | Promote
      (** admin → standby: stop following, start serving *)
  | Sub of { id : int; binary : bool; spec : string }
      (** [SUB <id> [BIN] ON <event-expr> [DO <atoms>]]: register the
          ad-hoc rule [spec] (everything from [ON] on, verbatim — parsed
          by the language front end) under the session-local [id];
          [BIN] asks for binary NOTIFY frames *)
  | Unsub of { id : int }  (** [UNSUB <id>]: drop a subscription *)

(* The verb/argument split: the verb runs to the first space or newline;
   one separator char is dropped and the rest is the argument verbatim
   (LINE payloads keep their internal newlines). *)
let split_verb payload =
  let n = String.length payload in
  let rec scan i =
    if i >= n then (payload, "")
    else
      match payload.[i] with
      | ' ' | '\n' -> (String.sub payload 0 i, String.sub payload (i + 1) (n - i - 1))
      | _ -> scan (i + 1)
  in
  scan 0

(* Etype ids live in the binary record's u32 field but are capped far
   lower: a session's table is an array indexed by id, and the cap keeps
   a hostile ETYPE from allocating 4G slots. *)
let max_etype_id = 0xFFFF

(* Subscription ids share the rationale: session-local, and the cap
   bounds the per-connection registry a hostile client can allocate. *)
let max_sub_id = 0xFFFF

let valid_etype_name name =
  name <> ""
  && not (String.exists (fun c -> c = ' ' || c = '\t' || c = '\n') name)

let command_to_payload = function
  | Hello v -> "HELLO " ^ v
  | Line text -> "LINE " ^ text
  | Etype { id; name } -> Printf.sprintf "ETYPE %d %s" id name
  | Event { etype; oid } -> Printf.sprintf "EVENT %s %d" etype oid
  | Commit -> "COMMIT"
  | Abort -> "ABORT"
  | Stats -> "STATS"
  | Ping "" -> "PING"
  | Ping token -> "PING " ^ token
  | Quit -> "QUIT"
  | Repl_hello v -> "REPL_HELLO " ^ v
  | Repl_ack { shard; seq } -> Printf.sprintf "REPL_ACK %d %d" shard seq
  | Promote -> "PROMOTE"
  | Sub { id; binary; spec } ->
      Printf.sprintf "SUB %d %s%s" id (if binary then "BIN " else "") spec
  | Unsub { id } -> Printf.sprintf "UNSUB %d" id

let command_of_payload payload =
  let verb, arg = split_verb payload in
  match verb with
  | "HELLO" -> Ok (Hello (String.trim arg))
  | "LINE" -> Ok (Line arg)
  | "ETYPE" -> (
      match String.split_on_char ' ' (String.trim arg) with
      | [ id_text; name ] -> (
          match int_of_string_opt id_text with
          | Some id when id >= 0 && id <= max_etype_id ->
              if valid_etype_name name then Ok (Etype { id; name })
              else Error "ETYPE name must be a whitespace-free identifier"
          | Some _ ->
              Error
                (Printf.sprintf "ETYPE id must be in 0..%d" max_etype_id)
          | None -> Error "ETYPE takes <id> <name>")
      | _ -> Error "ETYPE takes <id> <name>")
  | "EVENT" -> (
      match String.split_on_char ' ' (String.trim arg) with
      | [ etype; oid_text ] -> (
          match int_of_string_opt oid_text with
          | Some oid when oid >= 0 ->
              if valid_etype_name etype then Ok (Event { etype; oid })
              else Error "EVENT type must be a whitespace-free identifier"
          | _ -> Error "EVENT takes <etype> <non-negative oid>")
      | _ -> Error "EVENT takes <etype> <oid>")
  | "COMMIT" -> if arg = "" then Ok Commit else Error "COMMIT takes no argument"
  | "ABORT" -> if arg = "" then Ok Abort else Error "ABORT takes no argument"
  | "STATS" -> if arg = "" then Ok Stats else Error "STATS takes no argument"
  | "PING" -> Ok (Ping arg)
  | "QUIT" -> if arg = "" then Ok Quit else Error "QUIT takes no argument"
  | "REPL_HELLO" -> Ok (Repl_hello (String.trim arg))
  | "REPL_ACK" -> (
      match String.split_on_char ' ' (String.trim arg) with
      | [ shard_text; seq_text ] -> (
          match (int_of_string_opt shard_text, int_of_string_opt seq_text) with
          | Some shard, Some seq when shard >= 0 && seq >= 0 ->
              Ok (Repl_ack { shard; seq })
          | _ -> Error "REPL_ACK takes two non-negative integers")
      | _ -> Error "REPL_ACK takes <shard> <seq>")
  | "PROMOTE" -> if arg = "" then Ok Promote else Error "PROMOTE takes no argument"
  | "SUB" -> (
      let usage = "SUB takes <id> [BIN] ON <event-expr> [DO <atoms>]" in
      let id_text, rest = split_verb arg in
      match int_of_string_opt id_text with
      | Some id when id >= 0 && id <= max_sub_id ->
          let binary, spec =
            let tok, after = split_verb rest in
            if String.uppercase_ascii tok = "BIN" then (true, after)
            else (false, rest)
          in
          if String.trim spec = "" then Error usage
          else Ok (Sub { id; binary; spec })
      | Some _ -> Error (Printf.sprintf "SUB id must be in 0..%d" max_sub_id)
      | None -> Error usage)
  | "UNSUB" -> (
      match int_of_string_opt (String.trim arg) with
      | Some id when id >= 0 && id <= max_sub_id -> Ok (Unsub { id })
      | _ -> Error (Printf.sprintf "UNSUB takes an id in 0..%d" max_sub_id))
  | "" -> Error "empty command"
  | other -> Error (Printf.sprintf "unknown verb %S" other)

(* A replication-stream or admin verb the session manager never sees:
   the reactor handles these itself, before ordinary dispatch. *)
let is_repl_payload payload =
  let verb, _ = split_verb payload in
  match verb with
  | "REPL_HELLO" | "REPL_ACK" | "PROMOTE" -> true
  | _ -> false

(* ----------------------------------------------------- binary payloads *)

(* The hot ingestion path rides inside the same 4-byte framing but skips
   text entirely: a tag byte, then fixed-width records owned by
   [Event_codec].  Tag bytes are control characters (< 0x20), which no
   text verb starts with, so classification is one byte deep and needs
   no negotiation state in the decoder. *)

type event_record = { etype_id : int; oid : int; timestamp : int }

let tag_event = '\x01'
let tag_batch = '\x02'
let is_binary_payload payload = payload <> "" && payload.[0] < '\x20'
let record_bytes = Event_codec.binary_record_bytes

let encode_event ~etype_id ~oid ~timestamp =
  let buf = Buffer.create (1 + record_bytes) in
  Buffer.add_char buf tag_event;
  Event_codec.encode_record buf ~etype_id ~oid ~timestamp;
  Buffer.contents buf

let encode_batch records =
  let n = List.length records in
  if n = 0 then invalid_arg "Protocol.encode_batch: empty batch";
  let buf = Buffer.create (5 + (n * record_bytes)) in
  Buffer.add_char buf tag_batch;
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xFF));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (n land 0xFF));
  List.iter
    (fun { etype_id; oid; timestamp } ->
      Event_codec.encode_record buf ~etype_id ~oid ~timestamp)
    records;
  Buffer.contents buf

(* O(1) shape check — tag known, length consistent with the record count
   — for the reactor to run before acquiring a shard (the analogue of
   the text path's parse-before-acquire); the per-record field
   validation happens in [decode_binary] on a worker domain.  Returns
   the record count. *)
let check_binary payload =
  let len = String.length payload in
  if len = 0 then Error "empty binary payload"
  else if payload.[0] = tag_event then
    if len = 1 + record_bytes then Ok 1
    else
      Error
        (Printf.sprintf "EVENT frame must be %d bytes, got %d"
           (1 + record_bytes) len)
  else if payload.[0] = tag_batch then
    if len < 5 then Error "BATCH frame shorter than its count header"
    else
      let b i = Char.code payload.[i] in
      let count = (b 1 lsl 24) lor (b 2 lsl 16) lor (b 3 lsl 8) lor b 4 in
      if count = 0 then Error "BATCH frame with zero records"
      else if len <> 5 + (count * record_bytes) then
        Error
          (Printf.sprintf "BATCH frame of %d records must be %d bytes, got %d"
             count
             (5 + (count * record_bytes))
             len)
      else Ok count
  else
    Error (Printf.sprintf "unknown binary tag 0x%02x" (Char.code payload.[0]))

(* Total over arbitrary payload bytes: every malformation — unknown tag,
   size/count mismatch, field overflow — is an [Error] string, never an
   exception.  Frame-local by construction: the payload is already
   length-delimited, so a bad binary frame costs one ERR reply, not the
   connection. *)
let decode_binary payload =
  match check_binary payload with
  | Error msg -> Error msg
  | Ok count ->
      let base = if payload.[0] = tag_event then 1 else 5 in
      let rec go i acc =
        if i >= count then Ok (List.rev acc)
        else
          match
            Event_codec.decode_record payload ~off:(base + (i * record_bytes))
          with
          | Ok (etype_id, oid, timestamp) ->
              go (i + 1) ({ etype_id; oid; timestamp } :: acc)
          | Error msg -> Error msg
      in
      go 0 []

(* ------------------------------------------------------------ replies *)

type reply =
  | Ok_ of string
  | Triggered of string list
  | Err of string * string

(* Rule names are identifiers (no whitespace); reject anything else at
   encode time so the space-separated list stays parseable. *)
let valid_rule_name name =
  name <> ""
  && not (String.exists (fun c -> c = ' ' || c = '\t' || c = '\n') name)

let valid_err_code code =
  code <> "" && not (String.exists (fun c -> c = ' ' || c = '\n') code)

let reply_to_payload = function
  | Ok_ "" -> "OK"
  | Ok_ info -> "OK " ^ info
  | Triggered rules ->
      List.iter
        (fun r ->
          if not (valid_rule_name r) then
            invalid_arg (Printf.sprintf "Protocol: unencodable rule name %S" r))
        rules;
      "TRIGGERED " ^ String.concat " " rules
  | Err (code, msg) ->
      if not (valid_err_code code) then
        invalid_arg (Printf.sprintf "Protocol: unencodable error code %S" code);
      (* Replies are one frame each: newlines in engine messages are kept
         (frames are length-delimited), only the code token is constrained. *)
      "ERR " ^ code ^ " " ^ msg

let reply_of_payload payload =
  let verb, arg = split_verb payload in
  match verb with
  | "OK" -> Ok (Ok_ arg)
  | "TRIGGERED" ->
      let rules =
        List.filter (fun s -> s <> "") (String.split_on_char ' ' arg)
      in
      if rules = [] then Error "TRIGGERED without rule names"
      else Ok (Triggered rules)
  | "ERR" -> (
      let code, msg = split_verb arg in
      if code = "" then Error "ERR without a code" else Ok (Err (code, msg)))
  | "" -> Error "empty reply"
  | other -> Error (Printf.sprintf "unknown reply %S" other)

(* -------------------------------------------------- replication pushes *)

(* What a primary streams to an attached follower.  These travel in the
   reply direction of a replication session but are not replies to any
   command — the stream is full-duplex once REPL_HELLO is answered.
   REPL_RECORDS embeds raw journal record lines after the first newline
   of the payload (frames are length-delimited, so the bytes pass
   verbatim); [head_seq] is the primary's current commit sequence for
   the shard, which lets the follower gauge its own lag. *)
type push =
  | Repl_segment of { shard : int; generation : int }
  | Repl_records of { shard : int; head_seq : int; data : string }

let push_to_payload = function
  | Repl_segment { shard; generation } ->
      Printf.sprintf "REPL_SEGMENT %d %d" shard generation
  | Repl_records { shard; head_seq; data } ->
      Printf.sprintf "REPL_RECORDS %d %d\n%s" shard head_seq data

let push_of_payload payload =
  let verb, arg = split_verb payload in
  match verb with
  | "REPL_SEGMENT" -> (
      match String.split_on_char ' ' (String.trim arg) with
      | [ shard_text; gen_text ] -> (
          match (int_of_string_opt shard_text, int_of_string_opt gen_text) with
          | Some shard, Some generation when shard >= 0 && generation > 0 ->
              Ok (Repl_segment { shard; generation })
          | _ -> Error "REPL_SEGMENT takes two positive integers")
      | _ -> Error "REPL_SEGMENT takes <shard> <generation>")
  | "REPL_RECORDS" -> (
      (* The verb line runs to the first newline; everything after it is
         the raw record bytes. *)
      match String.index_opt arg '\n' with
      | None -> Error "REPL_RECORDS without a data block"
      | Some nl -> (
          let head = String.sub arg 0 nl in
          let data = String.sub arg (nl + 1) (String.length arg - nl - 1) in
          match String.split_on_char ' ' (String.trim head) with
          | [ shard_text; seq_text ] -> (
              match
                (int_of_string_opt shard_text, int_of_string_opt seq_text)
              with
              | Some shard, Some head_seq when shard >= 0 && head_seq >= 0 ->
                  Ok (Repl_records { shard; head_seq; data })
              | _ -> Error "REPL_RECORDS takes two non-negative integers")
          | _ -> Error "REPL_RECORDS takes <shard> <head-seq>"))
  | other -> Error (Printf.sprintf "not a replication push: %S" other)

let is_push_payload payload =
  let verb, _ = split_verb payload in
  match verb with "REPL_SEGMENT" | "REPL_RECORDS" -> true | _ -> false

(* --------------------------------------------------- subscription pushes *)

(* What the server pushes to a subscribed session at commit points.
   Like replication pushes these are not replies to any command: they
   interleave with the FIFO reply stream, and a client must classify
   each incoming frame before matching it against its in-flight
   commands.  Both forms carry the same data; the binary form (tags
   0x03/0x04, negotiated per subscription via [SUB ... BIN]) skips text
   parsing of the fixed-width header fields:

     NOTIFY      '\x03' · sub u32 · at u64 · bindings text
     NOTIFY_GAP  '\x04' · sub u32 · dropped u64

   The bindings text is shared verbatim with the text form: one line per
   satisfying environment, [var=value] pairs separated by tabs.  Values
   are object identifiers and instants (identifier-shaped — the
   condition calculus binds no free-text values), so the separators
   cannot occur inside them. *)

type notify = {
  sub : int;
  at : int;
  bindings : (string * string) list list;
}

let tag_notify = '\x03'
let tag_notify_gap = '\x04'

let bindings_text bindings =
  if bindings = [] then invalid_arg "Protocol: NOTIFY with zero environments";
  String.concat "\n"
    (List.map
       (fun env ->
         String.concat "\t" (List.map (fun (v, x) -> v ^ "=" ^ x) env))
       bindings)

let bindings_of_text body =
  let parse_env line =
    if line = "" then Ok []
    else
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | pair :: rest -> (
            match String.index_opt pair '=' with
            | Some eq when eq > 0 ->
                go
                  ((String.sub pair 0 eq,
                    String.sub pair (eq + 1) (String.length pair - eq - 1))
                  :: acc)
                  rest
            | _ -> Error (Printf.sprintf "malformed binding %S" pair))
      in
      go [] (String.split_on_char '\t' line)
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match parse_env line with
        | Ok env -> go (env :: acc) rest
        | Error _ as e -> e)
  in
  go [] (String.split_on_char '\n' body)

let add_u32 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (v land 0xFF))

let add_u64 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 56) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 48) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 40) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 32) land 0xFF));
  add_u32 buf (v land 0xFFFFFFFF)

let get_u32 s off =
  let b i = Char.code s.[off + i] in
  (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3

(* u64 fields hold instants and drop counts the server produced; values
   past OCaml's 63-bit int (top byte >= 0x40) are a decode error, never
   an overflow — mirroring [Event_codec.decode_record]'s guard. *)
let get_u64 s off =
  let b i = Char.code s.[off + i] in
  if b 0 >= 0x40 then None
  else
    Some
      ((b 0 lsl 56) lor (b 1 lsl 48) lor (b 2 lsl 40) lor (b 3 lsl 32)
      lor get_u32 s (off + 4))

let notify_to_payload ~binary { sub; at; bindings } =
  if sub < 0 || sub > max_sub_id then
    invalid_arg "Protocol: NOTIFY sub id out of range";
  if at < 0 then invalid_arg "Protocol: NOTIFY with a negative instant";
  let body = bindings_text bindings in
  if binary then begin
    let buf = Buffer.create (13 + String.length body) in
    Buffer.add_char buf tag_notify;
    add_u32 buf sub;
    add_u64 buf at;
    Buffer.add_string buf body;
    Buffer.contents buf
  end
  else Printf.sprintf "NOTIFY %d %d\n%s" sub at body

let notify_gap_to_payload ~binary ~sub ~dropped =
  if sub < 0 || sub > max_sub_id then
    invalid_arg "Protocol: NOTIFY_GAP sub id out of range";
  if dropped <= 0 then
    invalid_arg "Protocol: NOTIFY_GAP must report a positive drop count";
  if binary then begin
    let buf = Buffer.create 13 in
    Buffer.add_char buf tag_notify_gap;
    add_u32 buf sub;
    add_u64 buf dropped;
    Buffer.contents buf
  end
  else Printf.sprintf "NOTIFY_GAP %d %d" sub dropped

let is_notify_payload payload =
  if payload = "" then false
  else if payload.[0] = tag_notify || payload.[0] = tag_notify_gap then true
  else
    let verb, _ = split_verb payload in
    match verb with "NOTIFY" | "NOTIFY_GAP" -> true | _ -> false

(* Total, both forms: the client's classification step.  The server is
   the encoder, so errors here mean a corrupted stream, not a protocol
   negotiation problem. *)
let notify_of_payload payload =
  let len = String.length payload in
  if len = 0 then Error "empty notify payload"
  else if payload.[0] = tag_notify then
    if len < 13 then Error "binary NOTIFY shorter than its header"
    else
      let sub = get_u32 payload 1 in
      match get_u64 payload 5 with
      | None -> Error "binary NOTIFY instant overflows"
      | Some at -> (
          match bindings_of_text (String.sub payload 13 (len - 13)) with
          | Ok bindings when bindings <> [] -> Ok (`Notify { sub; at; bindings })
          | Ok _ -> Error "binary NOTIFY with zero environments"
          | Error _ as e -> e)
  else if payload.[0] = tag_notify_gap then
    if len <> 13 then Error "binary NOTIFY_GAP must be 13 bytes"
    else
      let sub = get_u32 payload 1 in
      match get_u64 payload 5 with
      | None -> Error "binary NOTIFY_GAP count overflows"
      | Some dropped -> Ok (`Gap (sub, dropped))
  else
    let verb, arg = split_verb payload in
    match verb with
    | "NOTIFY" -> (
        match String.index_opt arg '\n' with
        | None -> Error "NOTIFY without a bindings block"
        | Some nl -> (
            let head = String.sub arg 0 nl in
            let body = String.sub arg (nl + 1) (String.length arg - nl - 1) in
            match String.split_on_char ' ' (String.trim head) with
            | [ sub_text; at_text ] -> (
                match (int_of_string_opt sub_text, int_of_string_opt at_text) with
                | Some sub, Some at when sub >= 0 && at >= 0 -> (
                    match bindings_of_text body with
                    | Ok bindings when bindings <> [] ->
                        Ok (`Notify { sub; at; bindings })
                    | Ok _ -> Error "NOTIFY with zero environments"
                    | Error _ as e -> e)
                | _ -> Error "NOTIFY takes two non-negative integers")
            | _ -> Error "NOTIFY takes <sub> <at>"))
    | "NOTIFY_GAP" -> (
        match String.split_on_char ' ' (String.trim arg) with
        | [ sub_text; dropped_text ] -> (
            match
              (int_of_string_opt sub_text, int_of_string_opt dropped_text)
            with
            | Some sub, Some dropped when sub >= 0 && dropped > 0 ->
                Ok (`Gap (sub, dropped))
            | _ -> Error "NOTIFY_GAP takes <sub> <dropped>")
        | _ -> Error "NOTIFY_GAP takes <sub> <dropped>")
    | other -> Error (Printf.sprintf "not a notify push: %S" other)

(* ------------------------------------------------------------ framing *)

let frame_into ~max_frame buf payload =
  let n = String.length payload in
  if n = 0 then Error "cannot frame an empty payload"
  else if n > max_frame then
    Error
      (Printf.sprintf "payload of %d bytes exceeds the %d-byte frame cap" n
         max_frame)
  else begin
    Buffer.add_char buf (Char.chr ((n lsr 24) land 0xFF));
    Buffer.add_char buf (Char.chr ((n lsr 16) land 0xFF));
    Buffer.add_char buf (Char.chr ((n lsr 8) land 0xFF));
    Buffer.add_char buf (Char.chr (n land 0xFF));
    Buffer.add_string buf payload;
    Ok ()
  end

let frame_exn ~max_frame payload =
  let buf = Buffer.create (String.length payload + header_bytes) in
  match frame_into ~max_frame buf payload with
  | Ok () -> Buffer.contents buf
  | Error msg -> invalid_arg ("Protocol.frame_exn: " ^ msg)

type decoded =
  | Frame of string * int
  | Need_more
  | Reject of string * int
  | Corrupt of string

(* The length prefix is read as an unsigned 32-bit value into an OCaml
   int (63-bit), so the decode itself cannot overflow; the cap check
   then classifies anything oversized — including a prefix with the high
   bit set, which a signed 32-bit reader would see as negative — as
   [Corrupt], never as an exception.

   [decode_view] is the zero-copy variant: it reports the payload as an
   (offset, length) window into the caller's buffer instead of
   materialising a string, so the hot binary path copies payload bytes
   exactly once (when shipping them to a worker domain) instead of
   twice.  The view is only valid until the caller next mutates or
   compacts the buffer — copy before then. *)
let decode_view ~max_frame bytes ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length bytes then
    `Corrupt "decode range outside the buffer"
  else if len < header_bytes then `Need_more
  else
    let b i = Char.code (Bytes.get bytes (off + i)) in
    let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
    if n = 0 then `Reject ("zero-length frame", header_bytes)
    else if n > max_frame then
      `Corrupt
        (Printf.sprintf "length prefix %d exceeds the %d-byte frame cap" n
           max_frame)
    else if len < header_bytes + n then `Need_more
    else `Frame (off + header_bytes, n, header_bytes + n)

let decode ~max_frame bytes ~off ~len =
  match decode_view ~max_frame bytes ~off ~len with
  | `Frame (payload_off, payload_len, consumed) ->
      Frame (Bytes.sub_string bytes payload_off payload_len, consumed)
  | `Need_more -> Need_more
  | `Reject (reason, skip) -> Reject (reason, skip)
  | `Corrupt reason -> Corrupt reason
