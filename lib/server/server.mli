(** The network front end of [chimera serve]: a single-threaded,
    non-blocking [Unix.select] reactor speaking {!Protocol} and driving a
    {!Session.Manager}.

    One {!poll} call is one reactor turn — accept, read, execute, write —
    and never blocks longer than its timeout, so the CLI loops it with a
    real timeout while tests (and the in-process bench) interleave it
    co-operatively with a client in the same thread.

    Admission control and backpressure: at [max_conns] further accepts
    are answered [ERR busy] and closed; a connection whose reply buffer
    exceeds [high_water] bytes stops being read (a slow reader throttles
    itself, never the server); a session queued behind a busy engine
    shard stops being read until the shard frees; and frames over
    [max_frame] lose framing — [ERR oversize], connection closed.

    Graceful drain ({!request_drain}, wired to SIGTERM/SIGINT by
    {!install_signal_handlers}): stop accepting, finish the lines already
    received, notify every client ([ERR shutdown draining]), flush, close,
    abort whatever stayed uncommitted, flush and close the journals —
    then {!poll} reports [Stopped] and {!run} returns. *)

open Chimera_event

type config = {
  host : string;  (** bind address, default ["127.0.0.1"] *)
  port : int;  (** [0] binds an ephemeral port (see {!port}) *)
  engines : int;  (** independent engine shards *)
  domains : int option;
      (** worker domains executing the shards: [None] (default) spawns
          one per shard, [Some 0] keeps everything inline on the reactor
          thread, [Some m] spawns [min m engines] workers *)
  journal_dir : string option;  (** per-shard journals live here *)
  fsync : Journal.sync_policy;
  boot_script : string option;  (** rule-language source run on every shard *)
  max_conns : int;
  max_frame : int;
  max_pending : int;  (** per-session queued-command bound *)
  idle_timeout : float;  (** seconds; [<= 0.] disables *)
  high_water : int;  (** reply-buffer bytes that pause reading *)
  backlog : int;  (** listen(2) backlog *)
  follow : (string * int) option;
      (** [Some (host, port)] runs a warm standby: the server connects
          out to that primary, tails its per-shard journal stream
          (resynchronizing with exponential backoff when the link
          drops), applies committed transactions as they arrive, and
          refuses write verbs with [ERR standby] until promoted —
          by SIGUSR1 or a [PROMOTE] frame.  Promotion is warm (no
          replay): local segment copies become live journals, and the
          primary's address is taken over best-effort.  Requires
          [journal_dir]. *)
  repl_sync : bool;
      (** semi-synchronous replication (default [true]): a COMMIT reply
          is parked until every attached follower acknowledges that
          commit as durably local, so a commit the client saw
          acknowledged survives losing the primary.  [false] ships
          asynchronously — faster, but the freshest acked commits can be
          lost with the primary. *)
  checkpoint_every : int option;
      (** bounded state (default [None]): every N commits each journaled
          shard writes a checkpoint beside its journal, seals the live
          segment, and GCs sealed segments behind
          [min checkpoint_seq ack_floor] — the ack floor pins segments a
          connected replication follower has not durably acked.  A fresh
          follower attaching (or a seal rotating the stream) receives
          the checkpoint as its segment base. *)
  checkpoint_interval : float option;
      (** time-based checkpoint cadence in seconds, measured on the
          monotonic clock and checked at commit boundaries; combinable
          with [checkpoint_every] — whichever cadence is due first
          fires.  [None] (default) disables the time cadence. *)
  notify_queue : int;
      (** slow-consumer bound for live subscriptions (default [1024]):
          at most this many [NOTIFY] pushes wait per connection; beyond
          it the oldest queued push is shed and accounted to its
          subscription's next [NOTIFY_GAP], so a subscriber always sees
          either the notify or an explicit gap — never a silent hole.
          On drain (SIGTERM), every still-queued push is flushed or
          gapped before the goodbye. *)
}

val default_config : config

type t

val create : config -> (t, string) result
(** Binds and listens (non-blocking); shards, journals and the boot
    script run before the first accept. *)

val port : t -> int
(** The bound port — the ephemeral one when [config.port] was [0]. *)

val manager : t -> Session.Manager.t
val active_conns : t -> int
val draining : t -> bool

val standby : t -> bool
(** Running as a warm standby (created with [follow] and not yet
    promoted). *)

val request_promote : t -> unit
(** Signal-safe: the next {!poll} promotes a standby to a primary (no-op
    on a primary).  What SIGUSR1 is wired to. *)

type status = Running | Stopped

val poll : t -> timeout:float -> status
(** One reactor turn; [Stopped] once a requested drain has fully
    completed (sockets closed, journals flushed). *)

val run : t -> unit
(** {!poll} until [Stopped]. *)

val request_drain : t -> unit
(** Signal-safe: flips a flag the next {!poll} acts on. *)

val install_signal_handlers : t -> unit
(** SIGTERM and SIGINT trigger {!request_drain}; SIGUSR1 triggers
    {!request_promote}. *)
