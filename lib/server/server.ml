(* The select reactor: sockets, buffers and scheduling for the wire
   protocol; every engine decision lives in [Session.Manager], every
   byte-level concern lives here.

   One poll = one turn: acts on a requested drain, selects, accepts,
   reads (decoding and executing complete frames as they surface),
   writes, and enforces the idle timeout.  All I/O is non-blocking; the
   only place the process sleeps is inside [Unix.select] itself.

   Flow control is read-side: a connection is excluded from the read set
   while its reply buffer is above the high-water mark (slow reader) or
   while its session queues behind a busy engine shard (admission).  The
   kernel socket buffers then push the backpressure to the client. *)

open Chimera_event
module Obs = Chimera_obs.Obs

let c_accepts = Obs.Metrics.counter "server.accepts"
let c_rejects = Obs.Metrics.counter "server.rejects"
let c_frames_in = Obs.Metrics.counter "server.frames_in"
let c_frames_out = Obs.Metrics.counter "server.frames_out"
let c_bytes_in = Obs.Metrics.counter "server.bytes_in"
let c_bytes_out = Obs.Metrics.counter "server.bytes_out"
let c_drains = Obs.Metrics.counter "server.drains"
let g_active = Obs.Metrics.gauge "server.active_conns"
let h_frame = Obs.Metrics.histogram "server.frame_ns"

type config = {
  host : string;
  port : int;
  engines : int;
  domains : int option;
      (** worker domains: [None] = one per shard, [Some 0] = inline
          single-reactor mode, [Some m] = m workers *)
  journal_dir : string option;
  fsync : Journal.sync_policy;
  boot_script : string option;
  max_conns : int;
  max_frame : int;
  max_pending : int;
  idle_timeout : float;
  high_water : int;
  backlog : int;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    engines = 1;
    domains = None;
    journal_dir = None;
    fsync = Journal.Per_commit;
    boot_script = None;
    max_conns = 256;
    max_frame = Protocol.default_max_frame;
    max_pending = 64;
    idle_timeout = 30.;
    high_water = 256 * 1024;
    backlog = 64;
  }

type conn = {
  fd : Unix.file_descr;
  sid : int;
  mutable inbuf : Bytes.t;
  mutable in_len : int;  (** buffered undecoded bytes, at offset 0 *)
  outbuf : Buffer.t;
  mutable out_off : int;  (** bytes of [outbuf] already written *)
  mutable last_activity : float;
  mutable close_after_flush : bool;
  mutable dead : bool;
}

type t = {
  config : config;
  mutable listen_fd : Unix.file_descr option;
  bound_port : int;
  mgr : Session.Manager.t;
  conns : (int, conn) Hashtbl.t;  (** by session id *)
  mutable drain_requested : bool;  (** set from signal context *)
  mutable draining : bool;
  mutable stopped : bool;
  read_chunk : Bytes.t;
}

(* The server's contribution to a STATS reply: its own counter block,
   read back from the registry (enabled or not, the handles exist). *)
let counters_text () =
  Printf.sprintf
    "server: %d accept(s), %d reject(s), %d active, %d frame(s) in, %d \
     frame(s) out, %d byte(s) in, %d byte(s) out"
    (Obs.Metrics.counter_value c_accepts)
    (Obs.Metrics.counter_value c_rejects)
    (Obs.Metrics.gauge_value g_active)
    (Obs.Metrics.counter_value c_frames_in)
    (Obs.Metrics.counter_value c_frames_out)
    (Obs.Metrics.counter_value c_bytes_in)
    (Obs.Metrics.counter_value c_bytes_out)

let create config =
  let ( let* ) = Result.bind in
  let domains =
    match config.domains with None -> config.engines | Some m -> m
  in
  let* mgr =
    Session.Manager.create ~engines:config.engines ~domains
      ?journal_dir:config.journal_dir ~fsync:config.fsync
      ?boot_script:config.boot_script ~max_pending:config.max_pending
      ~extra_stats:counters_text ()
  in
  let* addr =
    match Unix.inet_addr_of_string config.host with
    | addr -> Ok addr
    | exception Failure _ -> (
        match Unix.gethostbyname config.host with
        | { Unix.h_addr_list = [||]; _ } ->
            Error (Printf.sprintf "cannot resolve %s" config.host)
        | entry -> Ok entry.Unix.h_addr_list.(0)
        | exception Not_found ->
            Error (Printf.sprintf "cannot resolve %s" config.host))
  in
  match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "socket: %s" (Unix.error_message e))
  | fd -> (
      match
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (addr, config.port));
        Unix.listen fd config.backlog;
        Unix.set_nonblock fd;
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, port) -> port
        | Unix.ADDR_UNIX _ -> config.port
      with
      | exception Unix.Unix_error (e, op, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Session.Manager.shutdown mgr;
          Error (Printf.sprintf "%s: %s" op (Unix.error_message e))
      | bound_port ->
          Ok
            {
              config;
              listen_fd = Some fd;
              bound_port;
              mgr;
              conns = Hashtbl.create 64;
              drain_requested = false;
              draining = false;
              stopped = false;
              read_chunk = Bytes.create 8192;
            })

let port t = t.bound_port
let manager t = t.mgr
let active_conns t = Hashtbl.length t.conns
let draining t = t.draining
let request_drain t = t.drain_requested <- true

let install_signal_handlers t =
  let handle = Sys.Signal_handle (fun _ -> request_drain t) in
  Sys.set_signal Sys.sigterm handle;
  Sys.set_signal Sys.sigint handle;
  (* A client that vanishes mid-write must surface as EPIPE, not kill
     the process. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore

(* ------------------------------------------------------------- output *)

let enqueue_payload t conn payload =
  match
    Protocol.frame_into ~max_frame:t.config.max_frame conn.outbuf payload
  with
  | Ok () -> Obs.Metrics.incr c_frames_out
  | Error _ ->
      (* A reply larger than the negotiated frame cap (a huge inspection
         output): degrade to a framed ERR rather than lose framing. *)
      (match
         Protocol.frame_into ~max_frame:t.config.max_frame conn.outbuf
           (Protocol.reply_to_payload
              (Protocol.Err ("oversize", "reply exceeded the frame cap")))
       with
      | Ok () -> Obs.Metrics.incr c_frames_out
      | Error _ -> ())

let enqueue_reply t conn reply =
  enqueue_payload t conn (Protocol.reply_to_payload reply)

let close_conn t conn =
  if not conn.dead then begin
    conn.dead <- true;
    Hashtbl.remove t.conns conn.sid;
    Obs.Metrics.set_gauge g_active (Hashtbl.length t.conns);
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    (* Closing may free an engine shard: route the woken waiters'
       replies to their own connections. *)
    let events = Session.Manager.disconnect t.mgr conn.sid in
    List.iter
      (fun event ->
        match event with
        | Session.Manager.Reply (sid, reply) -> (
            match Hashtbl.find_opt t.conns sid with
            | Some peer when not peer.dead -> enqueue_reply t peer reply
            | Some _ | None -> ())
        | Session.Manager.Close sid -> (
            match Hashtbl.find_opt t.conns sid with
            | Some peer -> peer.close_after_flush <- true
            | None -> ()))
      events
  end

let dispatch_events t events =
  List.iter
    (fun event ->
      match event with
      | Session.Manager.Reply (sid, reply) -> (
          match Hashtbl.find_opt t.conns sid with
          | Some conn when not conn.dead -> enqueue_reply t conn reply
          | Some _ | None -> ())
      | Session.Manager.Close sid -> (
          match Hashtbl.find_opt t.conns sid with
          | Some conn -> conn.close_after_flush <- true
          | None -> ()))
    events

let pending_out conn = Buffer.length conn.outbuf - conn.out_off

(* Non-blocking flush of whatever the buffer holds; on completion the
   buffer resets and a pending close executes. *)
let try_flush t conn =
  if (not conn.dead) && pending_out conn > 0 then begin
    let data = Buffer.to_bytes conn.outbuf in
    match
      Unix.write conn.fd data conn.out_off (Bytes.length data - conn.out_off)
    with
    | 0 -> ()
    | n ->
        Obs.Metrics.add c_bytes_out n;
        conn.out_off <- conn.out_off + n;
        if conn.out_off >= Bytes.length data then begin
          Buffer.clear conn.outbuf;
          conn.out_off <- 0
        end
    | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error _ -> close_conn t conn
  end;
  if (not conn.dead) && conn.close_after_flush && pending_out conn = 0 then
    close_conn t conn

(* -------------------------------------------------------------- input *)

let ensure_capacity conn extra =
  let need = conn.in_len + extra in
  if Bytes.length conn.inbuf < need then begin
    let grown = Bytes.create (max need (2 * Bytes.length conn.inbuf)) in
    Bytes.blit conn.inbuf 0 grown 0 conn.in_len;
    conn.inbuf <- grown
  end

let consume conn n =
  if n > 0 then begin
    Bytes.blit conn.inbuf n conn.inbuf 0 (conn.in_len - n);
    conn.in_len <- conn.in_len - n
  end

(* Decodes and executes every complete frame currently buffered. *)
let rec drain_frames t conn =
  if conn.dead || conn.close_after_flush then ()
  else
    match
      Protocol.decode ~max_frame:t.config.max_frame conn.inbuf ~off:0
        ~len:conn.in_len
    with
    | Protocol.Need_more -> ()
    | Protocol.Frame (payload, used) ->
        consume conn used;
        Obs.Metrics.incr c_frames_in;
        let t0 = Obs.start_timer () in
        dispatch_events t (Session.Manager.on_payload t.mgr conn.sid payload);
        Obs.observe_since h_frame t0;
        drain_frames t conn
    | Protocol.Reject (reason, skip) ->
        (* Framing survived (e.g. a zero-length frame): answer and go on. *)
        consume conn skip;
        enqueue_reply t conn (Protocol.Err ("proto", reason));
        drain_frames t conn
    | Protocol.Corrupt reason ->
        (* Framing lost: nothing later in the stream can be trusted. *)
        conn.in_len <- 0;
        enqueue_reply t conn (Protocol.Err ("oversize", reason));
        conn.close_after_flush <- true

let handle_readable t conn =
  match Unix.read conn.fd t.read_chunk 0 (Bytes.length t.read_chunk) with
  | 0 -> close_conn t conn
  | n ->
      Obs.Metrics.add c_bytes_in n;
      conn.last_activity <- Chimera_util.Monotime.now_s ();
      ensure_capacity conn n;
      Bytes.blit t.read_chunk 0 conn.inbuf conn.in_len n;
      conn.in_len <- conn.in_len + n;
      drain_frames t conn
  | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _)
    ->
      ()
  | exception Unix.Unix_error _ -> close_conn t conn

(* ------------------------------------------------------------- accept *)

let reject_conn t fd =
  Obs.Metrics.incr c_rejects;
  let frame =
    Protocol.frame_exn ~max_frame:t.config.max_frame
      (Protocol.reply_to_payload
         (Protocol.Err ("busy", "server at max connections")))
  in
  (try
     Unix.set_nonblock fd;
     ignore (Unix.write_substring fd frame 0 (String.length frame))
   with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let rec accept_loop t listen_fd =
  match Unix.accept listen_fd with
  | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _)
    ->
      ()
  | exception Unix.Unix_error _ -> ()
  | fd, _addr ->
      if Hashtbl.length t.conns >= t.config.max_conns then reject_conn t fd
      else begin
        Unix.set_nonblock fd;
        (try Unix.setsockopt fd Unix.TCP_NODELAY true
         with Unix.Unix_error _ -> ());
        let sid = Session.Manager.open_session t.mgr in
        Hashtbl.replace t.conns sid
          {
            fd;
            sid;
            inbuf = Bytes.create 4096;
            in_len = 0;
            outbuf = Buffer.create 512;
            out_off = 0;
            last_activity = Chimera_util.Monotime.now_s ();
            close_after_flush = false;
            dead = false;
          };
        Obs.Metrics.incr c_accepts;
        Obs.Metrics.set_gauge g_active (Hashtbl.length t.conns)
      end;
      accept_loop t listen_fd

(* -------------------------------------------------------------- drain *)

(* The per-turn drain sweep: a connection is told goodbye and closed
   once its session is idle — nothing queued, nothing in flight on a
   worker domain — so every reply already owed to it goes out first.
   Sessions parked behind a busy shard become idle as the closes cascade
   (closing the owner frees the shard, its waiters run their queues and
   turn idle), so the sweep converges over a few turns. *)
let drain_sweep t =
  Hashtbl.iter
    (fun _sid conn ->
      if
        (not conn.dead)
        && (not conn.close_after_flush)
        && Session.Manager.idle t.mgr conn.sid
      then begin
        enqueue_reply t conn (Protocol.Err ("shutdown", "draining"));
        conn.close_after_flush <- true
      end)
    (Hashtbl.copy t.conns)

(* Entering drain: stop accepting, execute what is already buffered on
   every connection, then sweep; the write path closes each socket once
   its replies are out. *)
let begin_drain t =
  t.draining <- true;
  Obs.Metrics.incr c_drains;
  (match t.listen_fd with
  | Some fd ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      t.listen_fd <- None
  | None -> ());
  Hashtbl.iter
    (fun _sid conn -> if not conn.dead then drain_frames t conn)
    (Hashtbl.copy t.conns);
  drain_sweep t

(* --------------------------------------------------------------- poll *)

type status = Running | Stopped

let conn_list t = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns []

let poll t ~timeout =
  if t.stopped then Stopped
  else begin
    if t.drain_requested && not t.draining then begin_drain t;
    let conns = conn_list t in
    let reads =
      List.filter_map
        (fun c ->
          if
            c.dead || c.close_after_flush
            || pending_out c > t.config.high_water
            || Session.Manager.blocked t.mgr c.sid
          then None
          else Some c.fd)
        conns
    in
    let reads =
      match t.listen_fd with Some fd -> fd :: reads | None -> reads
    in
    let reads =
      (* The worker domains' self-pipe: completions interrupt the select
         instead of waiting out its timeout. *)
      match Session.Manager.wakeup_fd t.mgr with
      | Some fd when not t.stopped -> fd :: reads
      | Some _ | None -> reads
    in
    let writes =
      List.filter_map
        (fun c -> if (not c.dead) && pending_out c > 0 then Some c.fd else None)
        conns
    in
    (match Unix.select reads writes [] timeout with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, writable, _ ->
        (match t.listen_fd with
        | Some fd when List.memq fd readable -> accept_loop t fd
        | Some _ | None -> ());
        List.iter
          (fun c ->
            if (not c.dead) && List.memq c.fd readable then handle_readable t c)
          conns;
        (* Collect worker completions — replies for frames read this turn
           or earlier — so they flush below with everything else. *)
        dispatch_events t (Session.Manager.pump t.mgr);
        if t.draining then drain_sweep t;
        (* Flush everything with output pending — the just-computed
           replies included, not only the fds select saw. *)
        List.iter
          (fun c ->
            if
              (not c.dead)
              && (List.memq c.fd writable || pending_out c > 0
                 || c.close_after_flush)
            then try_flush t c)
          conns);
    (* Idle reaping (sessions queued behind a busy shard included: a
       stuck transaction holder eventually times out and its abort frees
       the shard for the queue).  The monotonic clock, so an NTP step
       neither reaps every session at once nor pins one open forever. *)
    if t.config.idle_timeout > 0. then begin
      let now = Chimera_util.Monotime.now_s () in
      List.iter
        (fun c ->
          if
            (not c.dead) && (not c.close_after_flush)
            && now -. c.last_activity > t.config.idle_timeout
          then begin
            enqueue_reply t c (Protocol.Err ("shutdown", "idle timeout"));
            c.close_after_flush <- true;
            try_flush t c
          end)
        conns
    end;
    if t.draining && Hashtbl.length t.conns = 0 then begin
      Session.Manager.shutdown t.mgr;
      t.stopped <- true;
      Stopped
    end
    else Running
  end

let rec run t =
  match poll t ~timeout:0.25 with Running -> run t | Stopped -> ()
