(* The select reactor: sockets, buffers and scheduling for the wire
   protocol; every engine decision lives in [Session.Manager], every
   byte-level concern lives here.

   One poll = one turn: acts on a requested drain, selects, accepts,
   reads (decoding and executing complete frames as they surface),
   writes, and enforces the idle timeout.  All I/O is non-blocking; the
   only place the process sleeps is inside [Unix.select] itself.

   Flow control is read-side: a connection is excluded from the read set
   while its reply buffer is above the high-water mark (slow reader) or
   while its session queues behind a busy engine shard (admission).  The
   kernel socket buffers then push the backpressure to the client. *)

open Chimera_event
module Obs = Chimera_obs.Obs

let log_src = Logs.Src.create "chimera.server" ~doc:"Network event-ingestion server"

module Log = (val Logs.src_log log_src : Logs.LOG)

let c_accepts = Obs.Metrics.counter "server.accepts"
let c_rejects = Obs.Metrics.counter "server.rejects"
let c_frames_in = Obs.Metrics.counter "server.frames_in"
let c_frames_out = Obs.Metrics.counter "server.frames_out"
let c_bytes_in = Obs.Metrics.counter "server.bytes_in"
let c_bytes_out = Obs.Metrics.counter "server.bytes_out"
let c_drains = Obs.Metrics.counter "server.drains"
let g_active = Obs.Metrics.gauge "server.active_conns"
let h_frame = Obs.Metrics.histogram "server.frame_ns"
let c_repl_bytes = Obs.Metrics.counter "repl.bytes_shipped"
let c_repl_acks = Obs.Metrics.counter "repl.acks"
let c_repl_parked = Obs.Metrics.counter "repl.commits_parked"
let c_repl_promotions = Obs.Metrics.counter "repl.promotions"
let g_repl_peers = Obs.Metrics.gauge "repl.peers"
let c_sub_notifies = Obs.Metrics.counter "sub.notifies"
let c_sub_gaps = Obs.Metrics.counter "sub.gaps"
let c_sub_dropped = Obs.Metrics.counter "sub.dropped"
let g_sub_active = Obs.Metrics.gauge "sub.active"

type config = {
  host : string;
  port : int;
  engines : int;
  domains : int option;
      (** worker domains: [None] = one per shard, [Some 0] = inline
          single-reactor mode, [Some m] = m workers *)
  journal_dir : string option;
  fsync : Journal.sync_policy;
  boot_script : string option;
  max_conns : int;
  max_frame : int;
  max_pending : int;
  idle_timeout : float;
  high_water : int;
  backlog : int;
  follow : (string * int) option;
      (** run as a warm standby tailing this primary's journal stream;
          writes are refused until promotion (SIGUSR1 or PROMOTE) *)
  repl_sync : bool;
      (** semi-synchronous replication: park each COMMIT reply until
          every attached follower acknowledges its commit sequence, so
          an acked commit survives losing the primary (default); [false]
          acknowledges locally and ships asynchronously *)
  checkpoint_every : int option;
      (** bounded state: every N commits each journaled shard writes a
          checkpoint, seals its live segment and GCs segments behind
          [min checkpoint_seq ack_floor]; [None] keeps the legacy
          rotate-at-compaction behaviour *)
  checkpoint_interval : float option;
      (** time-based checkpoint cadence in seconds (checked at commit
          boundaries, on the monotonic clock); combinable with
          [checkpoint_every] — whichever is due first fires *)
  notify_queue : int;
      (** slow-consumer bound: at most this many subscription pushes wait
          per connection; beyond it the oldest queued notify is shed and
          counted into a [NOTIFY_GAP] for its subscription *)
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    engines = 1;
    domains = None;
    journal_dir = None;
    fsync = Journal.Per_commit;
    boot_script = None;
    max_conns = 256;
    max_frame = Protocol.default_max_frame;
    max_pending = 64;
    idle_timeout = 30.;
    high_water = 256 * 1024;
    backlog = 64;
    follow = None;
    repl_sync = true;
    checkpoint_every = None;
    checkpoint_interval = None;
    notify_queue = 1024;
  }

(* An attached replication follower, on the primary side: one journal
   tailer per shard reading the live segment, and the highest commit
   sequence the follower has acknowledged as durably local — what the
   semi-synchronous gate compares parked commits against. *)
type repl_peer = {
  tails : Journal.Tail.t array;
  tail_paths : string array;
      (** the journal path each tailer follows — the checkpoint beside
          it synthesizes the base of a fresh segment generation *)
  acked : int array;  (** per shard, last REPL_ACKed commit sequence *)
}

type conn = {
  fd : Unix.file_descr;
  sid : int;
  mutable inbuf : Bytes.t;
  mutable in_len : int;  (** buffered undecoded bytes, at offset 0 *)
  outbuf : Buffer.t;
      (** per-turn staging: every reply of a turn coalesces here, then
          seals into one [outq] chunk at flush time — one [write] per
          turn on the happy path, the userspace analogue of [writev] *)
  outq : string Queue.t;  (** sealed chunks awaiting the socket, FIFO *)
  mutable queued_bytes : int;  (** total bytes across [outq] *)
  mutable out_off : int;  (** bytes of the [outq] head already written *)
  mutable last_activity : float;
  mutable close_after_flush : bool;
  mutable dead : bool;
  mutable repl : repl_peer option;
      (** the connection upgraded into a replication stream *)
  notifyq : (int * string) Queue.t;
      (** subscription pushes awaiting this connection — (sub, payload)
          — bounded by [notify_queue], oldest shed first on overflow *)
  mutable notifyq_len : int;
  gaps : (int, int * bool) Hashtbl.t;
      (** per subscription, (shed count, binary): the [NOTIFY_GAP] owed
          before the subscription's next delivered notify *)
}

(* A COMMIT reply withheld until every follower acknowledges its commit
   sequence. *)
type parked = { p_sid : int; p_seq : int; p_reply : Protocol.reply }

(* The follower's outbound link to its primary: a tiny client-side state
   machine driven from the same select loop. *)
type fstream = {
  sfd : Unix.file_descr;
  mutable s_inbuf : Bytes.t;
  mutable s_in_len : int;
  s_outbuf : Buffer.t;  (** REPL_ACK frames awaiting write *)
  mutable s_out_off : int;
  mutable s_greeted : bool;  (** REPL_HELLO answered *)
}

type follower_link =
  | F_idle of { retry_at : float }  (** backing off before (re)connect *)
  | F_connecting of { fd : Unix.file_descr }  (** connect() in flight *)
  | F_streaming of fstream

type follower = {
  f_host : string;
  f_port : int;
  f_backoff : Chimera_util.Backoff.t;
  f_lag : Obs.Metrics.gauge array;
      (** per-shard replication lag in commits: ["repl.lag.shard<i>"] *)
  mutable f_link : follower_link;
}

type t = {
  config : config;
  mutable listen_fd : Unix.file_descr option;
  bound_port : int;
  mgr : Session.Manager.t;
  conns : (int, conn) Hashtbl.t;  (** by session id *)
  mutable drain_requested : bool;  (** set from signal context *)
  mutable draining : bool;
  mutable stopped : bool;
  read_chunk : Bytes.t;
  shard_seq : int array;
      (** per-shard commit sequence, the reactor's race-free view
          (boot baseline plus [Committed] events) *)
  g_ack_floors : Obs.Metrics.gauge array;
      (** per-shard ["repl.ack_floor.shard<i>"]: the lowest commit
          sequence every attached follower has durably acked, [-1] while
          no follower gates anything *)
  parked : parked Queue.t array;  (** per shard, FIFO by commit sequence *)
  mutable follower : follower option;  (** standby mode until promotion *)
  mutable promote_requested : bool;  (** set from signal context *)
  mutable takeover_fd : Unix.file_descr option;
      (** post-promotion listener on the old primary's address *)
}

(* The server's contribution to a STATS reply: its own counter block,
   read back from the registry (enabled or not, the handles exist). *)
let counters_text () =
  Printf.sprintf
    "server: %d accept(s), %d reject(s), %d active, %d frame(s) in, %d \
     frame(s) out, %d byte(s) in, %d byte(s) out"
    (Obs.Metrics.counter_value c_accepts)
    (Obs.Metrics.counter_value c_rejects)
    (Obs.Metrics.gauge_value g_active)
    (Obs.Metrics.counter_value c_frames_in)
    (Obs.Metrics.counter_value c_frames_out)
    (Obs.Metrics.counter_value c_bytes_in)
    (Obs.Metrics.counter_value c_bytes_out)
  ^ Printf.sprintf
      "\nsubs: %d active, %d notify(s) delivered, %d gap frame(s), %d \
       notify(s) shed"
      (Obs.Metrics.gauge_value g_sub_active)
      (Obs.Metrics.counter_value c_sub_notifies)
      (Obs.Metrics.counter_value c_sub_gaps)
      (Obs.Metrics.counter_value c_sub_dropped)

let resolve_addr host =
  match Unix.inet_addr_of_string host with
  | addr -> Ok addr
  | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } ->
          Error (Printf.sprintf "cannot resolve %s" host)
      | entry -> Ok entry.Unix.h_addr_list.(0)
      | exception Not_found -> Error (Printf.sprintf "cannot resolve %s" host))

let create config =
  let ( let* ) = Result.bind in
  (* A peer that vanished can RST mid-write; the write must surface as
     EPIPE for {!try_flush} to close the one connection, not raise
     SIGPIPE and kill the whole process.  Set here, not only in
     {!install_signal_handlers}, so in-process reactors (tests, the
     bench) are covered too. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let standby = config.follow <> None in
  let domains =
    match config.domains with None -> config.engines | Some m -> m
  in
  let* () =
    if standby && config.journal_dir = None then
      Error "--follow requires --journal (an ack must vouch for durability)"
    else Ok ()
  in
  let* mgr =
    Session.Manager.create ~engines:config.engines ~domains
      ?journal_dir:config.journal_dir ~fsync:config.fsync
      ?boot_script:config.boot_script ~max_pending:config.max_pending
      ~extra_stats:counters_text ~standby
      ?checkpoint_every:config.checkpoint_every
      ?checkpoint_interval:config.checkpoint_interval ()
  in
  let* addr = resolve_addr config.host in
  match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "socket: %s" (Unix.error_message e))
  | fd -> (
      match
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (addr, config.port));
        Unix.listen fd config.backlog;
        Unix.set_nonblock fd;
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, port) -> port
        | Unix.ADDR_UNIX _ -> config.port
      with
      | exception Unix.Unix_error (e, op, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Session.Manager.shutdown mgr;
          Error (Printf.sprintf "%s: %s" op (Unix.error_message e))
      | bound_port ->
          let follower =
            Option.map
              (fun (f_host, f_port) ->
                {
                  f_host;
                  f_port;
                  f_backoff = Chimera_util.Backoff.create ~base:0.05 ~cap:2.0 ();
                  f_lag =
                    Array.init config.engines (fun i ->
                        Obs.Metrics.gauge (Printf.sprintf "repl.lag.shard%d" i));
                  f_link = F_idle { retry_at = 0. };
                })
              config.follow
          in
          Ok
            {
              config;
              listen_fd = Some fd;
              bound_port;
              mgr;
              conns = Hashtbl.create 64;
              drain_requested = false;
              draining = false;
              stopped = false;
              read_chunk = Bytes.create 8192;
              shard_seq = Session.Manager.boot_seqs mgr;
              g_ack_floors =
                Array.init config.engines (fun i ->
                    Obs.Metrics.gauge
                      (Printf.sprintf "repl.ack_floor.shard%d" i));
              parked = Array.init config.engines (fun _ -> Queue.create ());
              follower;
              promote_requested = false;
              takeover_fd = None;
            })

let port t = t.bound_port
let manager t = t.mgr
let active_conns t = Hashtbl.length t.conns
let draining t = t.draining
let request_drain t = t.drain_requested <- true
let standby t = Session.Manager.standby t.mgr
let request_promote t = t.promote_requested <- true

let install_signal_handlers t =
  let handle = Sys.Signal_handle (fun _ -> request_drain t) in
  Sys.set_signal Sys.sigterm handle;
  Sys.set_signal Sys.sigint handle;
  (* SIGUSR1 promotes a standby (no-op on a primary): the conventional
     failover trigger for an operator or supervisor script. *)
  Sys.set_signal Sys.sigusr1 (Sys.Signal_handle (fun _ -> request_promote t));
  (* A client that vanishes mid-write must surface as EPIPE, not kill
     the process. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore

(* ------------------------------------------------------------- output *)

let enqueue_payload t conn payload =
  match
    Protocol.frame_into ~max_frame:t.config.max_frame conn.outbuf payload
  with
  | Ok () -> Obs.Metrics.incr c_frames_out
  | Error _ ->
      (* A reply larger than the negotiated frame cap (a huge inspection
         output): degrade to a framed ERR rather than lose framing. *)
      (match
         Protocol.frame_into ~max_frame:t.config.max_frame conn.outbuf
           (Protocol.reply_to_payload
              (Protocol.Err ("oversize", "reply exceeded the frame cap")))
       with
      | Ok () -> Obs.Metrics.incr c_frames_out
      | Error _ -> ())

let enqueue_reply t conn reply =
  enqueue_payload t conn (Protocol.reply_to_payload reply)

(* ------------------------------------------------- subscription pushes *)

let pending_out conn =
  Buffer.length conn.outbuf + conn.queued_bytes - conn.out_off

(* Moves queued subscription pushes into the connection's output, each
   preceded by the [NOTIFY_GAP] its subscription is owed (the gap is
   seen in stream position: everything before it was delivered,
   [dropped] notifies are missing right here).  Stops at the high-water
   mark — a slow consumer keeps its backlog in the bounded [notifyq],
   where overflow sheds the oldest — unless [force], the drain epilogue:
   every still-queued notify is flushed or gapped, never silently lost. *)
let drain_notifies t conn ~force =
  let flush_gap sub (dropped, binary) =
    Obs.Metrics.incr c_sub_gaps;
    enqueue_payload t conn (Protocol.notify_gap_to_payload ~binary ~sub ~dropped)
  in
  if not conn.dead then begin
    let rec go () =
      if force || pending_out conn <= t.config.high_water then
        match Queue.pop conn.notifyq with
        | exception Queue.Empty -> ()
        | sub, payload ->
            conn.notifyq_len <- conn.notifyq_len - 1;
            (match Hashtbl.find_opt conn.gaps sub with
            | Some gap ->
                Hashtbl.remove conn.gaps sub;
                flush_gap sub gap
            | None -> ());
            Obs.Metrics.incr c_sub_notifies;
            enqueue_payload t conn payload;
            go ()
    in
    go ();
    (* An emptied queue may leave gaps with no notify to ride in front
       of (the shed notify was the subscription's last): emit them now
       rather than park the receipt indefinitely. *)
    if Queue.is_empty conn.notifyq && Hashtbl.length conn.gaps > 0 then begin
      Hashtbl.iter flush_gap conn.gaps;
      Hashtbl.reset conn.gaps
    end
  end

(* A committed activation for one of this connection's subscriptions:
   enqueue bounded, shedding the oldest queued push when full — the shed
   push's subscription accrues a gap, delivered as [NOTIFY_GAP] in front
   of its next notify. *)
let on_notify t ~sid ~sub ~binary ~at ~bindings =
  match Hashtbl.find_opt t.conns sid with
  | Some conn when (not conn.dead) && not conn.close_after_flush ->
      let payload =
        Protocol.notify_to_payload ~binary { Protocol.sub; at; bindings }
      in
      if conn.notifyq_len >= t.config.notify_queue then (
        match Queue.pop conn.notifyq with
        | exception Queue.Empty -> ()
        | shed_sub, shed_payload ->
            conn.notifyq_len <- conn.notifyq_len - 1;
            Obs.Metrics.incr c_sub_dropped;
            let shed_binary =
              String.length shed_payload > 0 && shed_payload.[0] < '\x20'
            in
            let prior =
              match Hashtbl.find_opt conn.gaps shed_sub with
              | Some (n, _) -> n
              | None -> 0
            in
            Hashtbl.replace conn.gaps shed_sub (prior + 1, shed_binary));
      Queue.add (sub, payload) conn.notifyq;
      conn.notifyq_len <- conn.notifyq_len + 1;
      drain_notifies t conn ~force:false
  | Some _ | None -> ()

(* Replies ride behind the notifies already owed to the connection: an
   UNSUB's OK (or a COMMIT reply released from the replication gate)
   must not overtake the notifies of commits that preceded it.  The
   flush is forced — a client awaiting a reply is actively reading, and
   the backlog is bounded by [notify_queue]. *)
let enqueue_reply t conn reply =
  drain_notifies t conn ~force:true;
  enqueue_reply t conn reply

(* -------------------------------------- replication gate (primary side) *)

let fold_peers t f init =
  Hashtbl.fold
    (fun _ c acc ->
      match c.repl with Some p when not c.dead -> f acc p | Some _ | None -> acc)
    t.conns init

let repl_peer_count t = fold_peers t (fun n _ -> n + 1) 0

(* The gate floor of a shard: the lowest commit sequence every attached
   follower has acknowledged; [None] without followers. *)
let min_acked t shard =
  fold_peers t
    (fun acc p ->
      Some
        (match acc with
        | None -> p.acked.(shard)
        | Some m -> min m p.acked.(shard)))
    None

(* Publishes a shard's ack floor to the session manager: segment GC on
   the shard's worker domain never retires a sealed segment a connected
   follower has not durably acked. *)
let update_gc_floor t shard =
  let floor =
    match min_acked t shard with None -> max_int | Some m -> m
  in
  Obs.Metrics.set_gauge t.g_ack_floors.(shard)
    (if floor = max_int then -1 else floor);
  Session.Manager.set_gc_floor t.mgr ~shard floor

let update_gc_floors t =
  for shard = 0 to t.config.engines - 1 do
    update_gc_floor t shard
  done

(* Releases parked COMMIT replies whose sequence every follower now
   covers — also when the last follower detached (no followers, no
   gate). *)
let release_parked t shard =
  let q = t.parked.(shard) in
  let floor = min_acked t shard in
  let rec go () =
    match Queue.peek_opt q with
    | Some p when (match floor with None -> true | Some m -> p.p_seq <= m) ->
        ignore (Queue.pop q);
        (match Hashtbl.find_opt t.conns p.p_sid with
        | Some conn when not conn.dead -> enqueue_reply t conn p.p_reply
        | Some _ | None -> ());
        go ()
    | Some _ | None -> ()
  in
  go ()

(* A commit completed: record the shard's new sequence, then either send
   the reply or — under semi-synchronous replication with followers
   attached — park it until they acknowledge.  Per shard commits are
   sequential, so the parked queue is FIFO in sequence order. *)
let park_or_send t ~sid ~shard ~seq reply =
  t.shard_seq.(shard) <- max t.shard_seq.(shard) seq;
  let gated =
    t.config.repl_sync && (not t.draining) && repl_peer_count t > 0
  in
  if gated then begin
    Obs.Metrics.incr c_repl_parked;
    Queue.add { p_sid = sid; p_seq = seq; p_reply = reply } t.parked.(shard)
  end
  else
    match Hashtbl.find_opt t.conns sid with
    | Some conn when not conn.dead -> enqueue_reply t conn reply
    | Some _ | None -> ()

(* Drain forgoes the gate: replication continues best-effort, but a
   parked reply must not hold the shutdown hostage. *)
let flush_parked t =
  Array.iter
    (fun q ->
      Queue.iter
        (fun p ->
          match Hashtbl.find_opt t.conns p.p_sid with
          | Some conn when not conn.dead -> enqueue_reply t conn p.p_reply
          | Some _ | None -> ())
        q;
      Queue.clear q)
    t.parked

(* ------------------------------------------------------------ dispatch *)

let dispatch_events t events =
  List.iter
    (fun event ->
      match event with
      | Session.Manager.Reply (sid, reply) -> (
          match Hashtbl.find_opt t.conns sid with
          | Some conn when not conn.dead -> enqueue_reply t conn reply
          | Some _ | None -> ())
      | Session.Manager.Committed { sid; shard; seq; reply } ->
          park_or_send t ~sid ~shard ~seq reply
      | Session.Manager.Close sid -> (
          match Hashtbl.find_opt t.conns sid with
          | Some conn -> conn.close_after_flush <- true
          | None -> ())
      | Session.Manager.Notify { sid; sub; binary; at; bindings } ->
          on_notify t ~sid ~sub ~binary ~at ~bindings)
    events

let close_conn t conn =
  if not conn.dead then begin
    conn.dead <- true;
    Hashtbl.remove t.conns conn.sid;
    Obs.Metrics.set_gauge g_active (Hashtbl.length t.conns);
    (match conn.repl with
    | None -> ()
    | Some peer ->
        conn.repl <- None;
        Array.iter Journal.Tail.close peer.tails;
        Obs.Metrics.set_gauge g_repl_peers (repl_peer_count t);
        (* The gate floor rose (or the gate vanished): re-evaluate every
           shard's parked commits, and unpin sealed segments the
           departed follower was holding back from GC. *)
        update_gc_floors t;
        Array.iteri (fun shard _ -> release_parked t shard) t.parked);
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    (* Closing may free an engine shard: route the woken waiters'
       replies to their own connections. *)
    dispatch_events t (Session.Manager.disconnect t.mgr conn.sid)
  end

(* Seals the turn's staged replies into one queued chunk.  The copy
   happens exactly once per chunk, here — the write loop below then works
   on the string directly, unlike the previous scheme that re-copied the
   whole buffer on every partial-write retry. *)
let seal_out conn =
  if Buffer.length conn.outbuf > 0 then begin
    let chunk = Buffer.contents conn.outbuf in
    Buffer.clear conn.outbuf;
    Queue.add chunk conn.outq;
    conn.queued_bytes <- conn.queued_bytes + String.length chunk
  end

(* Non-blocking flush: writes queued chunks head-first until the socket
   would block; once everything is out a pending close executes. *)
let try_flush t conn =
  if (not conn.dead) && pending_out conn > 0 then begin
    seal_out conn;
    let rec write_chunks () =
      match Queue.peek_opt conn.outq with
      | None -> ()
      | Some chunk -> (
          match
            Unix.write_substring conn.fd chunk conn.out_off
              (String.length chunk - conn.out_off)
          with
          | 0 -> ()
          | n ->
              Obs.Metrics.add c_bytes_out n;
              conn.out_off <- conn.out_off + n;
              if conn.out_off >= String.length chunk then begin
                ignore (Queue.pop conn.outq);
                conn.queued_bytes <- conn.queued_bytes - String.length chunk;
                conn.out_off <- 0;
                write_chunks ()
              end
          | exception
              Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _)
            ->
              ()
          | exception Unix.Unix_error _ -> close_conn t conn)
    in
    write_chunks ()
  end;
  if (not conn.dead) && conn.close_after_flush && pending_out conn = 0 then
    close_conn t conn

(* ------------------------------------- replication stream (primary side) *)

(* Tail chunks must fit a frame with the push verb line in front. *)
let tail_chunk t = max 1024 (min (32 * 1024) (t.config.max_frame - 256))

(* [REPL_HELLO <version> <engines>]: upgrade this connection into a
   replication stream — one journal tailer per shard, reading the live
   segment from its start (a fresh follower rebuilds from the full
   segment; checkpoint rotation keeps segments bounded). *)
let handle_repl_hello t conn arg =
  let fail code msg = enqueue_reply t conn (Protocol.Err (code, msg)) in
  match String.split_on_char ' ' arg with
  | [ version; engines_text ] -> (
      match int_of_string_opt engines_text with
      | _ when not (String.equal version Protocol.version) ->
          fail "proto"
            (Printf.sprintf "unsupported version %S; speak %s" version
               Protocol.version)
      | None -> fail "proto" "REPL_HELLO takes <version> <engines>"
      | Some n when n <> t.config.engines ->
          fail "state"
            (Printf.sprintf "shard count mismatch: follower has %d, primary %d"
               n t.config.engines)
      | Some _ when Session.Manager.standby t.mgr ->
          fail "state" "a standby cannot be a replication source"
      | Some _ when conn.repl <> None ->
          fail "state" "already a replication stream"
      | Some _ -> (
          let paths = Session.Manager.journal_paths t.mgr in
          if List.length paths <> t.config.engines then
            fail "state" "replication requires --journal on the primary"
          else begin
            let tails =
              Array.of_list
                (List.map
                   (fun path ->
                     Journal.Tail.create ~chunk:(tail_chunk t) ~path ())
                   paths)
            in
            conn.repl <-
              Some
                {
                  tails;
                  tail_paths = Array.of_list paths;
                  acked = Array.make t.config.engines 0;
                };
            Obs.Metrics.set_gauge g_repl_peers (repl_peer_count t);
            (* The fresh peer has acked nothing: GC must pin every sealed
               segment until it catches up. *)
            update_gc_floors t;
            Log.info (fun m -> m "replication follower attached (session %d)" conn.sid);
            enqueue_reply t conn
              (Protocol.Ok_
                 (Printf.sprintf "%s shards=%d" Protocol.version
                    t.config.engines))
          end))
  | _ -> fail "proto" "REPL_HELLO takes <version> <engines>"

let handle_repl_ack t conn ~shard ~seq =
  match conn.repl with
  | None ->
      enqueue_reply t conn
        (Protocol.Err ("proto", "REPL_ACK outside a replication stream"))
  | Some peer ->
      if shard >= 0 && shard < Array.length peer.acked then begin
        peer.acked.(shard) <- max peer.acked.(shard) seq;
        Obs.Metrics.incr c_repl_acks;
        update_gc_floor t shard;
        release_parked t shard
      end

(* Ships the checkpoint beside [path] as the base of a fresh segment
   generation: the checkpoint's records framed as journal wire bytes,
   closed by a commit marker at its covered sequence, chunked at record
   boundaries to fit the frame cap.  The checkpoint on disk may be newer
   than the seal being shipped (another cycle ran meanwhile); the
   follower's idempotency guard skips any group it already applied. *)
let ship_checkpoint_base t conn ~shard path =
  match Checkpoint.read_opt ~path:(Checkpoint.path_for path) with
  | Ok None -> ()
  | Error msg ->
      Log.warn (fun m ->
          m "replication: unreadable checkpoint beside %s: %s" path msg)
  | Ok (Some ckpt) ->
      let wire = Checkpoint.to_wire ckpt in
      let limit = tail_chunk t in
      let buf = Buffer.create (min limit (String.length wire)) in
      let flush () =
        if Buffer.length buf > 0 then begin
          let data = Buffer.contents buf in
          Buffer.clear buf;
          Obs.Metrics.add c_repl_bytes (String.length data);
          enqueue_payload t conn
            (Protocol.push_to_payload
               (Protocol.Repl_records
                  { shard; head_seq = t.shard_seq.(shard); data }))
        end
      in
      List.iter
        (fun line ->
          if line <> "" then begin
            if Buffer.length buf + String.length line + 1 > limit then flush ();
            Buffer.add_string buf line;
            Buffer.add_char buf '\n'
          end)
        (String.split_on_char '\n' wire);
      flush ()

(* Ships whatever each shard's journal grew by to every attached
   follower, under the same high-water backpressure as replies: a slow
   follower stops being fed rather than ballooning its buffer (it
   catches up from the file — the tailer holds its position). *)
let ship_repl t =
  Hashtbl.iter
    (fun _ conn ->
      match conn.repl with
      | None -> ()
      | Some _ when conn.dead || conn.close_after_flush -> ()
      | Some peer ->
          Array.iteri
            (fun shard tail ->
              if pending_out conn <= t.config.high_water then
                List.iter
                  (fun ev ->
                    match ev with
                    | Journal.Tail.Segment { generation } ->
                        enqueue_payload t conn
                          (Protocol.push_to_payload
                             (Protocol.Repl_segment { shard; generation }));
                        (* A fresh generation rebuilds the follower from
                           nothing; under checkpoint-era sealing the live
                           file alone is not full history — the
                           checkpoint beside it stands for everything
                           behind the seal. *)
                        ship_checkpoint_base t conn ~shard
                          peer.tail_paths.(shard)
                    | Journal.Tail.Records data ->
                        Obs.Metrics.add c_repl_bytes (String.length data);
                        enqueue_payload t conn
                          (Protocol.push_to_payload
                             (Protocol.Repl_records
                                { shard; head_seq = t.shard_seq.(shard); data })))
                  (Journal.Tail.poll tail))
            peer.tails)
    t.conns

(* ----------------------------------------------------------- promotion *)

let close_follower_link f =
  (match f.f_link with
  | F_idle _ -> ()
  | F_connecting { fd } -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | F_streaming st -> (
      try Unix.close st.sfd with Unix.Unix_error _ -> ()));
  f.f_link <- F_idle { retry_at = infinity }

(* Best-effort takeover of the dead primary's address, so clients that
   reconnect to it land on the promoted server unchanged.  Fails quietly
   when the address is not local (or still held): clients then need the
   follower's own address. *)
let takeover_bind t host port =
  match resolve_addr host with
  | Error msg -> Log.warn (fun m -> m "takeover: %s" msg)
  | Ok addr -> (
      match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
      | exception Unix.Unix_error (e, _, _) ->
          Log.warn (fun m -> m "takeover: socket: %s" (Unix.error_message e))
      | fd -> (
          match
            Unix.setsockopt fd Unix.SO_REUSEADDR true;
            Unix.bind fd (Unix.ADDR_INET (addr, port));
            Unix.listen fd t.config.backlog;
            Unix.set_nonblock fd
          with
          | () ->
              t.takeover_fd <- Some fd;
              Log.info (fun m -> m "takeover: listening on %s:%d" host port)
          | exception Unix.Unix_error (e, op, _) ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              Log.warn (fun m ->
                  m "takeover of %s:%d failed: %s: %s" host port op
                    (Unix.error_message e))))

(* The standby becomes a primary: the manager attaches the shipped
   segment copies as live journals (warm — no replay), the outbound link
   closes, and the old primary's address is taken over best-effort. *)
let do_promote t =
  match Session.Manager.promote t.mgr with
  | Error _ as e -> e
  | Ok () ->
      Obs.Metrics.incr c_repl_promotions;
      (match t.follower with
      | None -> ()
      | Some f ->
          close_follower_link f;
          t.follower <- None;
          Array.iter (fun g -> Obs.Metrics.set_gauge g 0) f.f_lag;
          takeover_bind t f.f_host f.f_port);
      Log.app (fun m -> m "promoted: standby is now a primary");
      Ok ()

let handle_repl_command t conn payload =
  match Protocol.command_of_payload payload with
  | Error msg -> enqueue_reply t conn (Protocol.Err ("proto", msg))
  | Ok (Protocol.Repl_hello arg) -> handle_repl_hello t conn arg
  | Ok (Protocol.Repl_ack { shard; seq }) ->
      handle_repl_ack t conn ~shard ~seq
  | Ok Protocol.Promote ->
      if Session.Manager.standby t.mgr then (
        match do_promote t with
        | Ok () -> enqueue_reply t conn (Protocol.Ok_ "promoted")
        | Error msg -> enqueue_reply t conn (Protocol.Err ("state", msg)))
      else enqueue_reply t conn (Protocol.Err ("state", "not a standby"))
  | Ok _ ->
      (* [is_repl_payload] admits only the three verbs above. *)
      enqueue_reply t conn (Protocol.Err ("proto", "not a replication verb"))

(* -------------------------------------------------------------- input *)

let ensure_capacity conn extra =
  let need = conn.in_len + extra in
  if Bytes.length conn.inbuf < need then begin
    let grown = Bytes.create (max need (2 * Bytes.length conn.inbuf)) in
    Bytes.blit conn.inbuf 0 grown 0 conn.in_len;
    conn.inbuf <- grown
  end

let consume conn n =
  if n > 0 then begin
    Bytes.blit conn.inbuf n conn.inbuf 0 (conn.in_len - n);
    conn.in_len <- conn.in_len - n
  end

(* Decodes and executes the complete frames currently buffered, stopping
   while the session is blocked (queued behind a busy shard, or holding
   a reply back for pipeline order): decoding past that point would walk
   the per-session pending bound into an overflow close, when the right
   move — pipelining's admission control — is to leave the bytes in
   [inbuf] and resume once events unblock the session (the post-pump
   pass in {!poll}). *)
let rec drain_frames t conn =
  if
    conn.dead || conn.close_after_flush
    || Session.Manager.blocked t.mgr conn.sid
  then ()
  else
    match
      Protocol.decode_view ~max_frame:t.config.max_frame conn.inbuf ~off:0
        ~len:conn.in_len
    with
    | `Need_more -> ()
    | `Frame (payload_off, payload_len, used) ->
        (* One classifying byte decides the path before any copy; the
           payload is then materialised exactly once, off the view,
           before [consume] compacts the buffer under it. *)
        let binary =
          payload_len > 0 && Bytes.get conn.inbuf payload_off < '\x20'
        in
        let payload = Bytes.sub_string conn.inbuf payload_off payload_len in
        consume conn used;
        Obs.Metrics.incr c_frames_in;
        let t0 = Obs.start_timer () in
        if binary then
          dispatch_events t (Session.Manager.on_binary t.mgr conn.sid payload)
          (* Replication and admin verbs are reactor state, not session
             commands: they never reach the session manager. *)
        else if Protocol.is_repl_payload payload then
          handle_repl_command t conn payload
        else
          dispatch_events t (Session.Manager.on_payload t.mgr conn.sid payload);
        Obs.observe_since h_frame t0;
        drain_frames t conn
    | `Reject (reason, skip) ->
        (* Framing survived (e.g. a zero-length frame): answer and go on. *)
        consume conn skip;
        enqueue_reply t conn (Protocol.Err ("proto", reason));
        drain_frames t conn
    | `Corrupt reason ->
        (* Framing lost: nothing later in the stream can be trusted. *)
        conn.in_len <- 0;
        enqueue_reply t conn (Protocol.Err ("oversize", reason));
        conn.close_after_flush <- true

let handle_readable t conn =
  match Unix.read conn.fd t.read_chunk 0 (Bytes.length t.read_chunk) with
  | 0 -> close_conn t conn
  | n ->
      Obs.Metrics.add c_bytes_in n;
      conn.last_activity <- Chimera_util.Monotime.now_s ();
      ensure_capacity conn n;
      Bytes.blit t.read_chunk 0 conn.inbuf conn.in_len n;
      conn.in_len <- conn.in_len + n;
      drain_frames t conn
  | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _)
    ->
      ()
  | exception Unix.Unix_error _ -> close_conn t conn

(* ------------------------------------------------------------- accept *)

let reject_conn t fd =
  Obs.Metrics.incr c_rejects;
  let frame =
    Protocol.frame_exn ~max_frame:t.config.max_frame
      (Protocol.reply_to_payload
         (Protocol.Err ("busy", "server at max connections")))
  in
  (try
     Unix.set_nonblock fd;
     ignore (Unix.write_substring fd frame 0 (String.length frame))
   with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let rec accept_loop t listen_fd =
  match Unix.accept listen_fd with
  | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _)
    ->
      ()
  | exception Unix.Unix_error _ -> ()
  | fd, _addr ->
      if Hashtbl.length t.conns >= t.config.max_conns then reject_conn t fd
      else begin
        Unix.set_nonblock fd;
        (try Unix.setsockopt fd Unix.TCP_NODELAY true
         with Unix.Unix_error _ -> ());
        let sid = Session.Manager.open_session t.mgr in
        Hashtbl.replace t.conns sid
          {
            fd;
            sid;
            inbuf = Bytes.create 4096;
            in_len = 0;
            outbuf = Buffer.create 512;
            outq = Queue.create ();
            queued_bytes = 0;
            out_off = 0;
            last_activity = Chimera_util.Monotime.now_s ();
            close_after_flush = false;
            dead = false;
            repl = None;
            notifyq = Queue.create ();
            notifyq_len = 0;
            gaps = Hashtbl.create 4;
          };
        Obs.Metrics.incr c_accepts;
        Obs.Metrics.set_gauge g_active (Hashtbl.length t.conns)
      end;
      accept_loop t listen_fd

(* ---------------------------------------- follower link (standby side) *)

let follower_fail f msg =
  Log.warn (fun m -> m "replication link lost: %s" msg);
  (match f.f_link with
  | F_connecting { fd } -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | F_streaming st -> ( try Unix.close st.sfd with Unix.Unix_error _ -> ())
  | F_idle _ -> ());
  f.f_link <-
    F_idle
      {
        retry_at =
          Chimera_util.Monotime.now_s ()
          +. Chimera_util.Backoff.next f.f_backoff;
      }

(* The TCP connect completed: greet the primary.  Everything downstream
   of the greeting is a fresh replication session — the primary ships
   each segment from its start, and the [REPL_SEGMENT] events that open
   them reset our shards — so a reconnect needs no resume protocol. *)
let follower_established t f fd =
  let outbuf = Buffer.create 256 in
  ignore
    (Protocol.frame_into ~max_frame:t.config.max_frame outbuf
       (Protocol.command_to_payload
          (Protocol.Repl_hello
             (Protocol.version ^ " " ^ string_of_int t.config.engines))));
  f.f_link <-
    F_streaming
      {
        sfd = fd;
        s_inbuf = Bytes.create 8192;
        s_in_len = 0;
        s_outbuf = outbuf;
        s_out_off = 0;
        s_greeted = false;
      }

let follower_start_connect t f =
  let back () =
    f.f_link <-
      F_idle
        {
          retry_at =
            Chimera_util.Monotime.now_s ()
            +. Chimera_util.Backoff.next f.f_backoff;
        }
  in
  match resolve_addr f.f_host with
  | Error msg ->
      Log.warn (fun m -> m "follow: %s" msg);
      back ()
  | Ok addr -> (
      match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
      | exception Unix.Unix_error (e, _, _) ->
          Log.warn (fun m -> m "follow: socket: %s" (Unix.error_message e));
          back ()
      | fd -> (
          Unix.set_nonblock fd;
          (try Unix.setsockopt fd Unix.TCP_NODELAY true
           with Unix.Unix_error _ -> ());
          match Unix.connect fd (Unix.ADDR_INET (addr, f.f_port)) with
          | () -> follower_established t f fd
          | exception
              Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _) ->
              f.f_link <- F_connecting { fd }
          | exception Unix.Unix_error _ ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              back ()))

let follower_on_payload t f st payload =
  if not st.s_greeted then
    match Protocol.reply_of_payload payload with
    | Ok (Protocol.Ok_ _) ->
        st.s_greeted <- true;
        Chimera_util.Backoff.reset f.f_backoff;
        Log.info (fun m -> m "following %s:%d" f.f_host f.f_port)
    | Ok (Protocol.Err (code, msg)) ->
        follower_fail f (Printf.sprintf "primary refused: %s %s" code msg)
    | Ok (Protocol.Triggered _) | Error _ ->
        follower_fail f "unexpected greeting reply"
  else if Protocol.is_push_payload payload then (
    match Protocol.push_of_payload payload with
    | Error msg -> follower_fail f msg
    | Ok (Protocol.Repl_segment { shard; generation = _ }) -> (
        match Session.Manager.repl_reset t.mgr ~shard with
        | Ok () -> ()
        | Error msg -> follower_fail f msg)
    | Ok (Protocol.Repl_records { shard; head_seq; data }) -> (
        (* Apply, then ack what is durably ours; an apply error means the
           local state can no longer be trusted, so drop the link — the
           reconnect resynchronizes from the segment start. *)
        match Session.Manager.repl_apply t.mgr ~shard ~head_seq data with
        | Ok applied ->
            if shard < Array.length f.f_lag then
              Obs.Metrics.set_gauge f.f_lag.(shard) (max 0 (head_seq - applied));
            ignore
              (Protocol.frame_into ~max_frame:t.config.max_frame st.s_outbuf
                 (Protocol.command_to_payload
                    (Protocol.Repl_ack { shard; seq = applied })))
        | Error msg -> follower_fail f msg))
  else
    (* An ordinary reply on the stream — e.g. [ERR shutdown] when the
       primary drains.  Drop and retry; a promotion decision is the
       operator's. *)
    follower_fail f ("unexpected frame from the primary: " ^ payload)

let follower_drain_frames t f st =
  let live () = match f.f_link with F_streaming cur -> cur == st | _ -> false in
  let rec go () =
    if live () then
      match
        Protocol.decode ~max_frame:t.config.max_frame st.s_inbuf ~off:0
          ~len:st.s_in_len
      with
      | Protocol.Need_more -> ()
      | Protocol.Frame (payload, used) ->
          Bytes.blit st.s_inbuf used st.s_inbuf 0 (st.s_in_len - used);
          st.s_in_len <- st.s_in_len - used;
          follower_on_payload t f st payload;
          go ()
      | Protocol.Reject (_, skip) ->
          Bytes.blit st.s_inbuf skip st.s_inbuf 0 (st.s_in_len - skip);
          st.s_in_len <- st.s_in_len - skip;
          go ()
      | Protocol.Corrupt reason -> follower_fail f reason
  in
  go ()

let follower_handle_readable t f st =
  match Unix.read st.sfd t.read_chunk 0 (Bytes.length t.read_chunk) with
  | 0 -> follower_fail f "primary closed the stream"
  | n ->
      let need = st.s_in_len + n in
      if Bytes.length st.s_inbuf < need then begin
        let grown = Bytes.create (max need (2 * Bytes.length st.s_inbuf)) in
        Bytes.blit st.s_inbuf 0 grown 0 st.s_in_len;
        st.s_inbuf <- grown
      end;
      Bytes.blit t.read_chunk 0 st.s_inbuf st.s_in_len n;
      st.s_in_len <- st.s_in_len + n;
      follower_drain_frames t f st
  | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _)
    ->
      ()
  | exception Unix.Unix_error (e, _, _) ->
      follower_fail f (Unix.error_message e)

let follower_try_flush f =
  match f.f_link with
  | F_streaming st when Buffer.length st.s_outbuf - st.s_out_off > 0 -> (
      let data = Buffer.to_bytes st.s_outbuf in
      match
        Unix.write st.sfd data st.s_out_off (Bytes.length data - st.s_out_off)
      with
      | 0 -> ()
      | n ->
          st.s_out_off <- st.s_out_off + n;
          if st.s_out_off >= Bytes.length data then begin
            Buffer.clear st.s_outbuf;
            st.s_out_off <- 0
          end
      | exception
          Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _)
        ->
          ()
      | exception Unix.Unix_error (e, _, _) ->
          follower_fail f (Unix.error_message e))
  | F_streaming _ | F_connecting _ | F_idle _ -> ()

(* Pre-select: initiate a (re)connect when the backoff delay elapsed. *)
let follower_turn t =
  match t.follower with
  | None -> ()
  | Some f -> (
      match f.f_link with
      | F_idle { retry_at }
        when Chimera_util.Monotime.now_s () >= retry_at ->
          follower_start_connect t f
      | F_idle _ | F_connecting _ | F_streaming _ -> ())

let follower_fds t =
  match t.follower with
  | None -> ([], [])
  | Some f -> (
      match f.f_link with
      | F_idle _ -> ([], [])
      | F_connecting { fd } -> ([], [ fd ])
      | F_streaming st ->
          ( [ st.sfd ],
            if Buffer.length st.s_outbuf - st.s_out_off > 0 then [ st.sfd ] else []
          ))

let follower_after_select t readable writable =
  match t.follower with
  | None -> ()
  | Some f -> (
      match f.f_link with
      | F_idle _ -> ()
      | F_connecting { fd } ->
          if List.memq fd writable then (
            match Unix.getsockopt_error fd with
            | None -> follower_established t f fd
            | Some e -> follower_fail f (Unix.error_message e)
            | exception Unix.Unix_error (e, _, _) ->
                follower_fail f (Unix.error_message e))
      | F_streaming st ->
          if List.memq st.sfd readable then follower_handle_readable t f st;
          (* The link may have failed while reading. *)
          (match f.f_link with
          | F_streaming cur when cur == st -> follower_try_flush f
          | F_streaming _ | F_connecting _ | F_idle _ -> ()))

(* -------------------------------------------------------------- drain *)

(* The per-turn drain sweep: a connection is told goodbye and closed
   once its session is idle — nothing queued, nothing in flight on a
   worker domain — so every reply already owed to it goes out first.
   Sessions parked behind a busy shard become idle as the closes cascade
   (closing the owner frees the shard, its waiters run their queues and
   turn idle), so the sweep converges over a few turns. *)
let drain_sweep t =
  Hashtbl.iter
    (fun _sid conn ->
      if
        (not conn.dead)
        && (not conn.close_after_flush)
        && Session.Manager.idle t.mgr conn.sid
      then begin
        (* The goodbye must not orphan queued pushes: flush or gap every
           pending notify before the shutdown reply seals the stream. *)
        drain_notifies t conn ~force:true;
        enqueue_reply t conn (Protocol.Err ("shutdown", "draining"));
        conn.close_after_flush <- true
      end)
    (Hashtbl.copy t.conns)

(* Entering drain: stop accepting, execute what is already buffered on
   every connection, then sweep; the write path closes each socket once
   its replies are out. *)
let begin_drain t =
  t.draining <- true;
  Obs.Metrics.incr c_drains;
  (match t.listen_fd with
  | Some fd ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      t.listen_fd <- None
  | None -> ());
  (match t.takeover_fd with
  | Some fd ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      t.takeover_fd <- None
  | None -> ());
  (* A draining standby stops chasing its primary; a draining primary
     releases any gated commit replies — the gate must not hold the
     shutdown hostage. *)
  (match t.follower with
  | Some f ->
      close_follower_link f;
      t.follower <- None
  | None -> ());
  flush_parked t;
  Hashtbl.iter
    (fun _sid conn -> if not conn.dead then drain_frames t conn)
    (Hashtbl.copy t.conns);
  drain_sweep t

(* --------------------------------------------------------------- poll *)

type status = Running | Stopped

let conn_list t = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns []

let poll t ~timeout =
  if t.stopped then Stopped
  else begin
    if t.drain_requested && not t.draining then begin_drain t;
    if t.promote_requested then begin
      t.promote_requested <- false;
      if Session.Manager.standby t.mgr then
        match do_promote t with
        | Ok () -> ()
        | Error msg -> Log.err (fun m -> m "promotion failed: %s" msg)
    end;
    follower_turn t;
    (* Refreshed here, on the reactor (the registry's only writer), so
       [extra_stats] — possibly running on a worker domain — reads a
       plain gauge instead of racing the session table. *)
    Obs.Metrics.set_gauge g_sub_active
      (Session.Manager.subscription_count t.mgr);
    let conns = conn_list t in
    let reads =
      List.filter_map
        (fun c ->
          if
            c.dead || c.close_after_flush
            || pending_out c > t.config.high_water
            || Session.Manager.blocked t.mgr c.sid
          then None
          else Some c.fd)
        conns
    in
    let reads =
      match t.listen_fd with Some fd -> fd :: reads | None -> reads
    in
    let reads =
      match t.takeover_fd with Some fd -> fd :: reads | None -> reads
    in
    let reads =
      (* The worker domains' self-pipe: completions interrupt the select
         instead of waiting out its timeout. *)
      match Session.Manager.wakeup_fd t.mgr with
      | Some fd when not t.stopped -> fd :: reads
      | Some _ | None -> reads
    in
    let follower_reads, follower_writes = follower_fds t in
    let reads = follower_reads @ reads in
    let writes =
      List.filter_map
        (fun c -> if (not c.dead) && pending_out c > 0 then Some c.fd else None)
        conns
    in
    let writes = follower_writes @ writes in
    (* An idle standby waiting out its reconnect backoff must wake in
       time for the retry, not a full select timeout later. *)
    let timeout =
      match t.follower with
      | Some { f_link = F_idle { retry_at }; _ } when retry_at < infinity ->
          let now = Chimera_util.Monotime.now_s () in
          Float.max 0.005 (Float.min timeout (retry_at -. now))
      | Some _ | None -> timeout
    in
    (match Unix.select reads writes [] timeout with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, writable, _ ->
        (match t.listen_fd with
        | Some fd when List.memq fd readable -> accept_loop t fd
        | Some _ | None -> ());
        (match t.takeover_fd with
        | Some fd when List.memq fd readable -> accept_loop t fd
        | Some _ | None -> ());
        follower_after_select t readable writable;
        List.iter
          (fun c ->
            if (not c.dead) && List.memq c.fd readable then handle_readable t c)
          conns;
        (* Collect worker completions — replies for frames read this turn
           or earlier — so they flush below with everything else. *)
        dispatch_events t (Session.Manager.pump t.mgr);
        (* Completions may have unblocked sessions whose connections still
           hold undecoded frames (decoding stopped at [blocked]): resume
           them now, within the same turn, so a pipelining client is not
           one select round-trip behind its own window. *)
        List.iter
          (fun c -> if c.in_len > 0 then drain_frames t c)
          conns;
        (* Ship journal growth (this turn's commits included) to every
           attached replication follower. *)
        ship_repl t;
        (* Notifies parked behind the high-water mark ride out as the
           socket drains: re-attempt every backlog each turn. *)
        List.iter
          (fun c ->
            if (not c.dead) && c.notifyq_len > 0 then
              drain_notifies t c ~force:false)
          conns;
        if t.draining then drain_sweep t;
        (* Flush everything with output pending — the just-computed
           replies included, not only the fds select saw. *)
        List.iter
          (fun c ->
            if
              (not c.dead)
              && (List.memq c.fd writable || pending_out c > 0
                 || c.close_after_flush)
            then try_flush t c)
          conns);
    (* Idle reaping (sessions queued behind a busy shard included: a
       stuck transaction holder eventually times out and its abort frees
       the shard for the queue).  The monotonic clock, so an NTP step
       neither reaps every session at once nor pins one open forever. *)
    if t.config.idle_timeout > 0. then begin
      let now = Chimera_util.Monotime.now_s () in
      List.iter
        (fun c ->
          if
            (not c.dead) && (not c.close_after_flush)
            && c.repl = None
               (* a replication stream is legitimately silent between
                  commits: never reap it *)
            && now -. c.last_activity > t.config.idle_timeout
          then begin
            enqueue_reply t c (Protocol.Err ("shutdown", "idle timeout"));
            c.close_after_flush <- true;
            try_flush t c
          end)
        conns
    end;
    if t.draining && Hashtbl.length t.conns = 0 then begin
      Session.Manager.shutdown t.mgr;
      (match t.takeover_fd with
      | Some fd ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          t.takeover_fd <- None
      | None -> ());
      t.stopped <- true;
      Stopped
    end
    else Running
  end

let rec run t =
  match poll t ~timeout:0.25 with Running -> run t | Stopped -> ()
