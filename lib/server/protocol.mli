(** The wire protocol of [chimera serve]: length-prefixed frames carrying
    one text command (or reply) each.

    A frame is a 4-byte big-endian unsigned length prefix followed by
    exactly that many payload bytes.  Payloads are text: a verb, then —
    separated by one space or newline — an optional argument.  [LINE]
    arguments are ordinary rule-language script text (the [lib/lang]
    grammar), so the protocol adds framing and control verbs but no new
    statement syntax.

    Decoding never raises: torn frames report [Need_more], a zero
    length-prefix is rejected frame-locally ([Reject] — the connection
    can continue), and an oversized or overflowed length prefix loses
    framing ([Corrupt] — the server replies [ERR] and closes). *)

val version : string
(** The protocol identifier exchanged by [HELLO], currently ["chimera/1"]. *)

val features : string list
(** Feature tokens the server advertises in its [HELLO] reply. *)

val default_max_frame : int
(** Default payload-size cap, in bytes (64 KiB). *)

val header_bytes : int
(** Size of the length prefix (4). *)

(** {1 Commands} (client to server) *)

type command =
  | Hello of string  (** [HELLO <version>]: version/feature negotiation *)
  | Line of string
      (** [LINE <script text>]: one transaction line — rule-language
          statements executed as a block (definitions included;
          [commit;] is refused, use the COMMIT verb) *)
  | Commit  (** close the open transaction durably *)
  | Abort  (** roll the open transaction back *)
  | Stats  (** engine + server statistics snapshot *)
  | Ping of string  (** liveness probe; the token is echoed *)
  | Quit  (** orderly close (an open transaction is aborted) *)
  | Repl_hello of string
      (** [REPL_HELLO <version> <engines>]: a follower announcing itself
          and its shard count (which must match the primary's); answered
          [OK <version> shards=<n>], after which the connection is a
          full-duplex replication stream *)
  | Repl_ack of { shard : int; seq : int }
      (** [REPL_ACK <shard> <seq>]: the follower has durably written
          [shard]'s records through commit [seq] locally.  Fire-and-
          forget — never answered *)
  | Promote
      (** [PROMOTE]: administrative — a standby stops following and
          starts serving; [ERR state] on a server that is not one *)

val command_to_payload : command -> string
val command_of_payload : string -> (command, string) result

val is_repl_payload : string -> bool
(** The payload carries a replication-stream or admin verb ([REPL_HELLO],
    [REPL_ACK], [PROMOTE]) that the reactor handles itself, before
    ordinary session dispatch. *)

(** {1 Replies} (server to client) *)

type reply =
  | Ok_ of string  (** [OK] or [OK <info>] (e.g. inspection output) *)
  | Triggered of string list
      (** [TRIGGERED <rule> ...]: the line (or commit) executed these
          rules, in execution order *)
  | Err of string * string
      (** [ERR <code> <message>]; codes: [proto], [parse], [engine],
          [state], [busy], [overflow], [oversize], [shutdown] *)

val reply_to_payload : reply -> string
val reply_of_payload : string -> (reply, string) result

(** {1 Replication pushes} (primary to follower)

    Streamed over a replication session once [REPL_HELLO] is answered;
    not replies to any command. *)

type push =
  | Repl_segment of { shard : int; generation : int }
      (** [REPL_SEGMENT <shard> <gen>]: a new journal segment generation
          begins for [shard] (initial attach, or the primary rotated):
          the follower resets the shard and its local copy *)
  | Repl_records of { shard : int; head_seq : int; data : string }
      (** [REPL_RECORDS <shard> <head-seq>\n<raw record lines>]: framed
          journal records of [shard], whole lines ending at a
          commit/abort marker; [head_seq] is the primary's current
          commit sequence for the shard (for the follower's lag gauge) *)

val push_to_payload : push -> string
val push_of_payload : string -> (push, string) result
val is_push_payload : string -> bool

(** {1 Framing} *)

val frame_into :
  max_frame:int -> Buffer.t -> string -> (unit, string) result
(** Appends the length prefix and payload; [Error] when the payload is
    empty or exceeds [max_frame] (nothing is appended then). *)

val frame_exn : max_frame:int -> string -> string
(** Convenience for tests and the load generator; raises
    [Invalid_argument] where {!frame_into} errors. *)

type decoded =
  | Frame of string * int
      (** one intact payload and the bytes consumed (prefix included) *)
  | Need_more  (** the buffer holds a strict prefix of a frame *)
  | Reject of string * int
      (** a framed protocol violation (zero-length frame): the reason
          and the bytes to skip; the stream stays framed *)
  | Corrupt of string
      (** framing lost (length prefix overflow / over [max_frame]):
          reply [ERR] best-effort and close *)

val decode : max_frame:int -> Bytes.t -> off:int -> len:int -> decoded
(** Decodes the first frame of [len] bytes at [off]; never raises (an
    [off]/[len] range outside the buffer is itself [Corrupt]). *)
