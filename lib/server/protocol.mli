(** The wire protocol of [chimera serve]: length-prefixed frames carrying
    one text command (or reply) each.

    A frame is a 4-byte big-endian unsigned length prefix followed by
    exactly that many payload bytes.  Payloads are text: a verb, then —
    separated by one space or newline — an optional argument.  [LINE]
    arguments are ordinary rule-language script text (the [lib/lang]
    grammar), so the protocol adds framing and control verbs but no new
    statement syntax.

    Decoding never raises: torn frames report [Need_more], a zero
    length-prefix is rejected frame-locally ([Reject] — the connection
    can continue), and an oversized or overflowed length prefix loses
    framing ([Corrupt] — the server replies [ERR] and closes). *)

val version : string
(** The protocol identifier exchanged by [HELLO], currently ["chimera/1"]. *)

val features : string list
(** Feature tokens the server advertises in its [HELLO] reply. *)

val default_max_frame : int
(** Default payload-size cap, in bytes (64 KiB). *)

val header_bytes : int
(** Size of the length prefix (4). *)

(** {1 Commands} (client to server) *)

type command =
  | Hello of string  (** [HELLO <version>]: version/feature negotiation *)
  | Line of string
      (** [LINE <script text>]: one transaction line — rule-language
          statements executed as a block (definitions included;
          [commit;] is refused, use the COMMIT verb) *)
  | Etype of { id : int; name : string }
      (** [ETYPE <id> <name>]: intern the external event-type [name]
          under the session-local numeric [id] (0..{!max_etype_id}), for
          binary frames to reference.  Re-announcing an id rebinds it. *)
  | Event of { etype : string; oid : int }
      (** [EVENT <etype> <oid>]: record one external event occurrence on
          the open transaction — the text twin of the binary EVENT
          frame.  The server assigns the instant; opens a transaction
          like [LINE] *)
  | Commit  (** close the open transaction durably *)
  | Abort  (** roll the open transaction back *)
  | Stats  (** engine + server statistics snapshot *)
  | Ping of string  (** liveness probe; the token is echoed *)
  | Quit  (** orderly close (an open transaction is aborted) *)
  | Repl_hello of string
      (** [REPL_HELLO <version> <engines>]: a follower announcing itself
          and its shard count (which must match the primary's); answered
          [OK <version> shards=<n>], after which the connection is a
          full-duplex replication stream *)
  | Repl_ack of { shard : int; seq : int }
      (** [REPL_ACK <shard> <seq>]: the follower has durably written
          [shard]'s records through commit [seq] locally.  Fire-and-
          forget — never answered *)
  | Promote
      (** [PROMOTE]: administrative — a standby stops following and
          starts serving; [ERR state] on a server that is not one *)
  | Sub of { id : int; binary : bool; spec : string }
      (** [SUB <id> [BIN] ON <event-expr> [DO <atoms>]]: register the
          ad-hoc rule [spec] — everything from [ON] on, verbatim, parsed
          by the language front end ({!Chimera_lang.Parser.parse_subscription})
          — under the session-local [id] (0..{!max_sub_id}).  [BIN]
          negotiates binary NOTIFY frames for this subscription.
          Answered [OK] (or [ERR parse]/[ERR state]); requires the [sub]
          HELLO feature and a closed transaction *)
  | Unsub of { id : int }
      (** [UNSUB <id>]: drop the subscription; notifies from commits
          that preceded the UNSUB are still delivered first.  [ERR
          state] on an unknown id *)

val command_to_payload : command -> string
val command_of_payload : string -> (command, string) result

val is_repl_payload : string -> bool
(** The payload carries a replication-stream or admin verb ([REPL_HELLO],
    [REPL_ACK], [PROMOTE]) that the reactor handles itself, before
    ordinary session dispatch. *)

val max_etype_id : int
(** Highest id [ETYPE] accepts (65535): session etype tables are arrays
    indexed by id, and the cap bounds their size. *)

val max_sub_id : int
(** Highest id [SUB] accepts (65535): bounds the per-connection
    subscription registry. *)

(** {1 Binary event frames} (client to server, negotiated by [bin])

    The hot ingestion path rides inside the same 4-byte framing but
    skips text parsing entirely.  A binary payload starts with a control
    tag byte (< 0x20 — no text verb does), followed by fixed-width
    big-endian records owned by {!Event_codec}:

    {v
    EVENT  '\x01' · record                      (21 bytes)
    BATCH  '\x02' · count u32 · count × record  (5 + 20·count bytes)
    record = etype-id u32 · oid u64 · timestamp u64   (20 bytes)
    v}

    Etype ids refer to the session's [ETYPE] table.  Each frame gets
    exactly one reply ([OK]/[TRIGGERED]/[ERR]); a BATCH is applied as
    that many single events in order, replying once — on an error the
    preceding records stay applied and the transaction stays open.  The
    server assigns event instants; the timestamp field is the client's
    clock, carried for tooling but not trusted. *)

type event_record = { etype_id : int; oid : int; timestamp : int }

val is_binary_payload : string -> bool
(** The payload's first byte is a binary tag (any control byte, not just
    the known tags — unknown tags are then rejected frame-locally by
    {!decode_binary}). *)

val encode_event : etype_id:int -> oid:int -> timestamp:int -> string
(** One EVENT payload (framing not included). *)

val encode_batch : event_record list -> string
(** One BATCH payload.  Raises [Invalid_argument] on an empty list. *)

val check_binary : string -> (int, string) result
(** O(1) shape check — tag known, length consistent — returning the
    record count; the reactor runs this before acquiring a shard, the
    per-record field validation happens in {!decode_binary} on a worker
    domain. *)

val decode_binary : string -> (event_record list, string) result
(** Total over arbitrary payload bytes: unknown tags, size/count
    mismatches and field overflows are [Error] (one ERR reply, the
    connection continues), never exceptions. *)

(** {1 Replies} (server to client) *)

type reply =
  | Ok_ of string  (** [OK] or [OK <info>] (e.g. inspection output) *)
  | Triggered of string list
      (** [TRIGGERED <rule> ...]: the line (or commit) executed these
          rules, in execution order *)
  | Err of string * string
      (** [ERR <code> <message>]; codes: [proto], [parse], [engine],
          [state], [busy], [overflow], [oversize], [shutdown] *)

val reply_to_payload : reply -> string
val reply_of_payload : string -> (reply, string) result

(** {1 Replication pushes} (primary to follower)

    Streamed over a replication session once [REPL_HELLO] is answered;
    not replies to any command. *)

type push =
  | Repl_segment of { shard : int; generation : int }
      (** [REPL_SEGMENT <shard> <gen>]: a new journal segment generation
          begins for [shard] (initial attach, or the primary rotated):
          the follower resets the shard and its local copy *)
  | Repl_records of { shard : int; head_seq : int; data : string }
      (** [REPL_RECORDS <shard> <head-seq>\n<raw record lines>]: framed
          journal records of [shard], whole lines ending at a
          commit/abort marker; [head_seq] is the primary's current
          commit sequence for the shard (for the follower's lag gauge) *)

val push_to_payload : push -> string
val push_of_payload : string -> (push, string) result
val is_push_payload : string -> bool

(** {1 Subscription pushes} (server to subscriber, negotiated by [sub])

    Pushed asynchronously at commit points; not replies to any command —
    a client with frames in flight classifies each incoming frame with
    {!is_notify_payload} before matching it against its FIFO reply
    expectations.  Two encodings of the same data:

    {v
    NOTIFY <sub> <at>\n<bindings>          (text)
    NOTIFY_GAP <sub> <dropped>             (text)
    NOTIFY      '\x03' · sub u32 · at u64 · bindings   (binary, SUB ... BIN)
    NOTIFY_GAP  '\x04' · sub u32 · dropped u64         (binary)
    v}

    [bindings] is one line per satisfying environment of the rule's
    condition, [var=value] pairs separated by tabs (values are object
    identifiers and instants, which cannot contain the separators).  A
    NOTIFY carries at least one environment.  [NOTIFY_GAP] declares the
    overflow policy's receipt: [dropped] notifies of [sub] were shed
    because the connection's notify queue was full ([drop-oldest]); it
    is pushed before the subscription's next delivered notify, so a
    subscriber always learns about a gap in stream position. *)

type notify = {
  sub : int;  (** the subscription id the client chose *)
  at : int;  (** activation instant — the rule's [ts] evaluation point *)
  bindings : (string * string) list list;
      (** one list per satisfying environment, in declaration order *)
}

val notify_to_payload : binary:bool -> notify -> string
(** Raises [Invalid_argument] on out-of-range fields or zero
    environments — the server is the trusted encoder. *)

val notify_gap_to_payload : binary:bool -> sub:int -> dropped:int -> string

val is_notify_payload : string -> bool
(** The payload is a notify push, either form (text [NOTIFY]/
    [NOTIFY_GAP] verbs, or binary tags 0x03/0x04). *)

val notify_of_payload :
  string -> ([ `Notify of notify | `Gap of int * int ], string) result
(** Total over both forms; [`Gap (sub, dropped)].  An [Error] on a
    stream the server encoded means corruption, not negotiation. *)

(** {1 Framing} *)

val frame_into :
  max_frame:int -> Buffer.t -> string -> (unit, string) result
(** Appends the length prefix and payload; [Error] when the payload is
    empty or exceeds [max_frame] (nothing is appended then). *)

val frame_exn : max_frame:int -> string -> string
(** Convenience for tests and the load generator; raises
    [Invalid_argument] where {!frame_into} errors. *)

type decoded =
  | Frame of string * int
      (** one intact payload and the bytes consumed (prefix included) *)
  | Need_more  (** the buffer holds a strict prefix of a frame *)
  | Reject of string * int
      (** a framed protocol violation (zero-length frame): the reason
          and the bytes to skip; the stream stays framed *)
  | Corrupt of string
      (** framing lost (length prefix overflow / over [max_frame]):
          reply [ERR] best-effort and close *)

val decode : max_frame:int -> Bytes.t -> off:int -> len:int -> decoded
(** Decodes the first frame of [len] bytes at [off]; never raises (an
    [off]/[len] range outside the buffer is itself [Corrupt]). *)

val decode_view :
  max_frame:int ->
  Bytes.t ->
  off:int ->
  len:int ->
  [ `Frame of int * int * int
  | `Need_more
  | `Reject of string * int
  | `Corrupt of string ]
(** Zero-copy variant of {!decode}: [`Frame (payload_off, payload_len,
    consumed)] is a window into the caller's buffer — no string is
    materialised.  The window aliases the buffer: it is only valid until
    the buffer is next mutated or compacted; copy the bytes out before
    then.  {!decode} is implemented on top of this. *)
