(* The load generator: C concurrent protocol sessions driven by one
   non-blocking select loop.

   Each session is a strict ping-pong state machine — HELLO, then L
   LINE frames with a COMMIT every [commit_every], then QUIT — with at
   most one frame outstanding, so every LINE round trip is one latency
   sample and the reply stream needs no correlation ids.  Throughput
   scales with the connection count, latency reports the per-frame
   cost; both are what the bench records. *)

module Obs = Chimera_obs.Obs

type config = {
  host : string;
  port : int;
  conns : int;
  lines : int;
  line : string;
  commit_every : int;
  max_frame : int;
  reconnect : bool;
  retry_max : int;
  retry_base : float;
  retry_cap : float;
  seed : int;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    conns = 8;
    lines = 100;
    line = "create item(n = 1)";
    commit_every = 10;
    max_frame = Protocol.default_max_frame;
    reconnect = false;
    retry_max = 8;
    retry_base = 0.05;
    retry_cap = 2.0;
    seed = 0;
  }

type report = {
  conns : int;
  lines_sent : int;
  lines_ok : int;
  triggered : int;
  commits : int;
  errors : int;
  drained : int;
  reconnects : int;
  wall_s : float;
  lines_per_s : float;
  lat_p50_ns : int;
  lat_p90_ns : int;
  lat_p99_ns : int;
  lat_max_ns : int;
}

let pp_report ppf r =
  Format.fprintf ppf
    "%d conn(s): %d line(s) sent, %d ok (%d triggered), %d commit(s), %d \
     error(s), %d drained, %d reconnect(s)@\n\
     %.3f s wall, %.0f lines/s; LINE latency p50=%dus p90=%dus p99=%dus \
     max=%dus"
    r.conns r.lines_sent r.lines_ok r.triggered r.commits r.errors r.drained
    r.reconnects r.wall_s r.lines_per_s (r.lat_p50_ns / 1000)
    (r.lat_p90_ns / 1000) (r.lat_p99_ns / 1000) (r.lat_max_ns / 1000)

(* What the session is waiting for (one outstanding frame at most).
   [Backoff] is between attempts: the socket is closed and the next
   connect fires once [retry_at] passes. *)
type await = Backoff | Connect | Hello | Line | Commit | Bye

type conn = {
  mutable fd : Unix.file_descr;
  key : string;  (** session key sent with HELLO, for shard pinning *)
  backoff : Chimera_util.Backoff.t;
  mutable retry_at : float;  (** only meaningful under [Backoff] *)
  mutable await : await;
  mutable lines_done : int;
  mutable since_commit : int;
  mutable line_sent_ns : int;
  mutable inbuf : Bytes.t;
  mutable in_len : int;
  outbuf : Buffer.t;
  mutable out_off : int;
  mutable done_ : bool;
}

type t = {
  config : config;
  addr : Unix.inet_addr;
  conns : conn list;
  latencies : int array;
  mutable samples : int;
  mutable lines_sent : int;
  mutable lines_ok : int;
  mutable triggered : int;
  mutable commits : int;
  mutable errors : int;
  mutable drained : int;
  mutable reconnects : int;
  started : float;
  mutable finished_at : float option;
}

let now_ns () = Obs.now_ns ()
let now_s () = Chimera_util.Monotime.now_s ()

let send t conn payload =
  match
    Protocol.frame_into ~max_frame:t.config.max_frame conn.outbuf payload
  with
  | Ok () -> ()
  | Error _ ->
      t.errors <- t.errors + 1;
      conn.done_ <- true

let send_command t conn cmd = send t conn (Protocol.command_to_payload cmd)

let mark_done t conn =
  conn.done_ <- true;
  if t.finished_at = None && List.for_all (fun c -> c.done_) t.conns then
    t.finished_at <- Some (now_s ())

let finish_conn t conn =
  if not conn.done_ then
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  mark_done t conn

(* A failed connect or a dropped link.  Retry with backoff when allowed
   — the initial connect is always retried (bounded), an established
   session only under [reconnect] — else a hard error.  The server
   aborted whatever the dead session had not committed, so the cursor
   rewinds to the last commit and those lines are resent. *)
let fail_conn t conn =
  if not conn.done_ then begin
    let retryable =
      (t.config.reconnect || conn.await = Connect)
      && Chimera_util.Backoff.attempts conn.backoff < t.config.retry_max
    in
    if retryable then begin
      (try Unix.close conn.fd with Unix.Unix_error _ -> ());
      conn.lines_done <- conn.lines_done - conn.since_commit;
      conn.since_commit <- 0;
      conn.in_len <- 0;
      Buffer.clear conn.outbuf;
      conn.out_off <- 0;
      conn.await <- Backoff;
      conn.retry_at <- now_s () +. Chimera_util.Backoff.next conn.backoff;
      t.reconnects <- t.reconnects + 1
    end
    else begin
      t.errors <- t.errors + 1;
      finish_conn t conn
    end
  end

let send_next_line t conn =
  conn.line_sent_ns <- now_ns ();
  conn.await <- Line;
  t.lines_sent <- t.lines_sent + 1;
  send_command t conn (Protocol.Line t.config.line)

let send_commit t conn =
  conn.await <- Commit;
  conn.since_commit <- 0;
  send_command t conn Protocol.Commit

let send_quit t conn =
  conn.await <- Bye;
  send_command t conn Protocol.Quit

(* Advance after a successful round trip: next line, a due commit, or
   the goodbye. *)
let advance t conn =
  if conn.lines_done >= t.config.lines then
    if conn.since_commit > 0 then send_commit t conn else send_quit t conn
  else if conn.since_commit >= t.config.commit_every then send_commit t conn
  else send_next_line t conn

let on_reply t conn reply =
  match (conn.await, reply) with
  | _, Protocol.Err ("shutdown", _) ->
      (* The server is draining (or idled us out): a clean end, counted
         apart from protocol errors. *)
      t.drained <- t.drained + 1;
      finish_conn t conn
  | _, Protocol.Err ("standby", _) when t.config.reconnect ->
      (* A not-yet-promoted standby answered (address takeover mid
         failover): back off and retry, the promotion is coming. *)
      fail_conn t conn
  | (Backoff | Connect), _ | _, Protocol.Err _ ->
      t.errors <- t.errors + 1;
      finish_conn t conn
  | Hello, (Protocol.Ok_ _ | Protocol.Triggered _) ->
      Chimera_util.Backoff.reset conn.backoff;
      advance t conn
  | Line, (Protocol.Ok_ _ | Protocol.Triggered _) ->
      (* The clock is monotonic, but clamp anyway: a sample must never go
         negative even under a test-injected clock. *)
      let dt = max 0 (now_ns () - conn.line_sent_ns) in
      if t.samples < Array.length t.latencies then begin
        t.latencies.(t.samples) <- dt;
        t.samples <- t.samples + 1
      end;
      t.lines_ok <- t.lines_ok + 1;
      (match reply with
      | Protocol.Triggered _ -> t.triggered <- t.triggered + 1
      | _ -> ());
      conn.lines_done <- conn.lines_done + 1;
      conn.since_commit <- conn.since_commit + 1;
      advance t conn
  | Commit, (Protocol.Ok_ _ | Protocol.Triggered _) ->
      t.commits <- t.commits + 1;
      advance t conn
  | Bye, (Protocol.Ok_ _ | Protocol.Triggered _) -> finish_conn t conn

let rec drain_frames t conn =
  if not conn.done_ then
    match
      Protocol.decode ~max_frame:t.config.max_frame conn.inbuf ~off:0
        ~len:conn.in_len
    with
    | Protocol.Need_more -> ()
    | Protocol.Reject (_, skip) ->
        Bytes.blit conn.inbuf skip conn.inbuf 0 (conn.in_len - skip);
        conn.in_len <- conn.in_len - skip;
        t.errors <- t.errors + 1;
        drain_frames t conn
    | Protocol.Corrupt _ ->
        t.errors <- t.errors + 1;
        finish_conn t conn
    | Protocol.Frame (payload, used) ->
        Bytes.blit conn.inbuf used conn.inbuf 0 (conn.in_len - used);
        conn.in_len <- conn.in_len - used;
        (match Protocol.reply_of_payload payload with
        | Ok reply -> on_reply t conn reply
        | Error _ ->
            t.errors <- t.errors + 1;
            finish_conn t conn);
        drain_frames t conn

let handle_readable t conn chunk =
  match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
  | 0 ->
      (* EOF before the goodbye is only clean after a drain notice —
         otherwise the link dropped under us. *)
      if conn.await = Bye then finish_conn t conn else fail_conn t conn
  | n ->
      let need = conn.in_len + n in
      if Bytes.length conn.inbuf < need then begin
        let grown = Bytes.create (max need (2 * Bytes.length conn.inbuf)) in
        Bytes.blit conn.inbuf 0 grown 0 conn.in_len;
        conn.inbuf <- grown
      end;
      Bytes.blit chunk 0 conn.inbuf conn.in_len n;
      conn.in_len <- need;
      drain_frames t conn
  | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _)
    ->
      ()
  | exception Unix.Unix_error _ -> fail_conn t conn

let try_flush t conn =
  let pending = Buffer.length conn.outbuf - conn.out_off in
  if (not conn.done_) && pending > 0 then begin
    let data = Buffer.to_bytes conn.outbuf in
    match Unix.write conn.fd data conn.out_off pending with
    | n ->
        conn.out_off <- conn.out_off + n;
        if conn.out_off >= Bytes.length data then begin
          Buffer.clear conn.outbuf;
          conn.out_off <- 0
        end
    | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error _ -> fail_conn t conn
  end

let create (config : config) =
  if config.conns <= 0 || config.lines <= 0 then
    Error "conns and lines must be positive"
  else if config.commit_every <= 0 then Error "commit-every must be positive"
  else if config.retry_max < 0 then Error "retry-max must be non-negative"
  else begin
    (* A server killed mid-run RSTs these sockets; the writes must fail
       with EPIPE (feeding the reconnect path), not raise SIGPIPE. *)
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ | Sys_error _ -> ());
    match Unix.inet_addr_of_string config.host with
    | exception Failure _ -> Error (Printf.sprintf "bad host %s" config.host)
    | addr -> (
        let open_conn i =
          (* Per-connection jitter streams, offset by the index so a
             fleet backing off from one refusal does not reconnect in
             lockstep — yet fully deterministic under [seed]. *)
          let backoff =
            Chimera_util.Backoff.create ~base:config.retry_base
              ~cap:config.retry_cap ~seed:(config.seed + i) ()
          in
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          Unix.set_nonblock fd;
          (try Unix.setsockopt fd Unix.TCP_NODELAY true
           with Unix.Unix_error _ -> ());
          let conn =
            {
              fd;
              key = Printf.sprintf "lg-%d" i;
              backoff;
              retry_at = 0.;
              await = Connect;
              lines_done = 0;
              since_commit = 0;
              line_sent_ns = 0;
              inbuf = Bytes.create 4096;
              in_len = 0;
              outbuf = Buffer.create 256;
              out_off = 0;
              done_ = false;
            }
          in
          (try Unix.connect fd (Unix.ADDR_INET (addr, config.port)) with
          | Unix.Unix_error (Unix.EINPROGRESS, _, _) -> ()
          | Unix.Unix_error _ ->
              (* A synchronous refusal: straight into backoff. *)
              (try Unix.close fd with Unix.Unix_error _ -> ());
              conn.await <- Backoff;
              conn.retry_at <-
                now_s () +. Chimera_util.Backoff.next backoff);
          conn
        in
        match List.init config.conns open_conn with
        | conns ->
            Ok
              {
                config;
                addr;
                conns;
                latencies = Array.make (config.conns * config.lines) 0;
                samples = 0;
                lines_sent = 0;
                lines_ok = 0;
                triggered = 0;
                commits = 0;
                errors = 0;
                drained = 0;
                reconnects = 0;
                started = now_s ();
                finished_at = None;
              }
        | exception Unix.Unix_error (e, _, _) ->
            Error (Printf.sprintf "connect: %s" (Unix.error_message e)))
  end

(* A backoff delay expired: fresh socket, fresh connect. *)
let start_connect t conn =
  match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error _ ->
      t.errors <- t.errors + 1;
      mark_done t conn
  | fd -> (
      Unix.set_nonblock fd;
      (try Unix.setsockopt fd Unix.TCP_NODELAY true
       with Unix.Unix_error _ -> ());
      conn.fd <- fd;
      conn.await <- Connect;
      try Unix.connect fd (Unix.ADDR_INET (t.addr, t.config.port)) with
      | Unix.Unix_error (Unix.EINPROGRESS, _, _) -> ()
      | Unix.Unix_error _ -> fail_conn t conn)

let finished t = List.for_all (fun c -> c.done_) t.conns

let poll t ~timeout =
  (* Fire the retries that are due before selecting, and cap the sleep
     at the earliest one still pending so none oversleeps. *)
  let now = now_s () in
  List.iter
    (fun c ->
      if (not c.done_) && c.await = Backoff && c.retry_at <= now then
        start_connect t c)
    t.conns;
  let live = List.filter (fun c -> not c.done_) t.conns in
  if live <> [] then begin
    let timeout =
      List.fold_left
        (fun acc c ->
          if c.await = Backoff then
            Float.min acc (Float.max 0. (c.retry_at -. now))
          else acc)
        timeout live
    in
    let reads =
      List.filter_map
        (fun c -> if c.await = Backoff then None else Some c.fd)
        live
    in
    let writes =
      List.filter_map
        (fun c ->
          if
            c.await = Connect
            || (c.await <> Backoff && Buffer.length c.outbuf - c.out_off > 0)
          then Some c.fd
          else None)
        live
    in
    match Unix.select reads writes [] timeout with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, writable, _ ->
        let chunk = Bytes.create 8192 in
        List.iter
          (fun c ->
            if (not c.done_) && c.await = Connect && List.memq c.fd writable
            then begin
              match Unix.getsockopt_error c.fd with
              | Some _err -> fail_conn t c
              | None ->
                  c.await <- Hello;
                  (* The key pins the session by full-string hash
                     server-side, spreading the dense connection indexes
                     evenly over the shards. *)
                  send_command t c
                    (Protocol.Hello (Protocol.version ^ " " ^ c.key))
            end)
          live;
        List.iter
          (fun c ->
            if (not c.done_) && c.await <> Backoff && List.memq c.fd readable
            then handle_readable t c chunk)
          live;
        List.iter
          (fun c ->
            if (not c.done_) && c.await <> Backoff then try_flush t c)
          live
  end

(* Nearest-rank percentile over an already-sorted sample array: the
   smallest element with at least p% of the samples at or below it; 0 on
   an empty array.  With one sample every percentile is that sample. *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0
  else
    let rank = int_of_float (Float.ceil (p /. 100. *. Float.of_int n)) in
    sorted.(Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)))

let report t =
  let finished_at = match t.finished_at with Some f -> f | None -> now_s () in
  let wall_s = Float.max 1e-9 (finished_at -. t.started) in
  let sorted = Array.sub t.latencies 0 t.samples in
  (* [Int.compare], not polymorphic [compare]: same order, no boxing
     walk per comparison. *)
  Array.sort Int.compare sorted;
  let pct = percentile sorted in
  {
    conns = t.config.conns;
    lines_sent = t.lines_sent;
    lines_ok = t.lines_ok;
    triggered = t.triggered;
    commits = t.commits;
    errors = t.errors;
    drained = t.drained;
    reconnects = t.reconnects;
    wall_s;
    lines_per_s = Float.of_int t.lines_ok /. wall_s;
    lat_p50_ns = pct 50.;
    lat_p90_ns = pct 90.;
    lat_p99_ns = pct 99.;
    lat_max_ns = (if t.samples = 0 then 0 else sorted.(t.samples - 1));
  }

let run config =
  match create config with
  | Error _ as e -> e
  | Ok t ->
      let rec loop () =
        if finished t then Ok (report t)
        else begin
          poll t ~timeout:0.25;
          loop ()
        end
      in
      loop ()
