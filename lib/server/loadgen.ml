(* The load generator: C concurrent protocol sessions driven by one
   non-blocking select loop.

   Each session is a state machine over a FIFO *expectation queue*: every
   frame sent pushes what its reply must be, and every reply pops and
   checks the head — the protocol preserves reply order per session, so
   the queue needs no correlation ids.  With [pipeline = 1] (the
   default) this degenerates to the strict ping-pong of old: HELLO, then
   work frames with a COMMIT every [commit_every] events, then QUIT,
   one frame outstanding, every round trip a latency sample.  With
   [pipeline = D] up to D frames ride the wire at once — the depth the
   server advertises in its HELLO [window] token is the useful maximum.

   Work frames are LINE text by default; [binary] switches to the
   binary ingestion path — one ETYPE announcement after HELLO, then
   EVENT frames ([batch = 1]) or BATCH frames carrying up to [batch]
   records each.  Counters stay in events: [lines] is the events per
   connection, and a BATCH round trip is one latency sample covering
   [batch] of them.

   [subscribe = N] adds N extra connections that never ingest: each
   registers one live subscription on the run's event type and measures
   the push side — notify throughput, gap accounting, and trigger-to-
   notify latency.  The latency trick: in subscription runs every
   ingested event carries its send-time (nanoseconds) as its oid, the
   subscription's condition binds that oid back out of the event base,
   and the subscriber differences it against its own clock on receipt —
   one end-to-end sample per delivered binding, no correlation state.
   Ingesters hold their fire until every subscriber's SUB is acked (a
   notify before registration would silently undercount), and
   subscribers UNSUB + QUIT once every ingester finished — the UNSUB
   reply is documented to ride behind every notify already owed, so the
   count at QUIT is complete. *)

module Obs = Chimera_obs.Obs

type config = {
  host : string;
  port : int;
  conns : int;
  lines : int;
  line : string;
  commit_every : int;
  pipeline : int;
  binary : bool;
  events : bool;
  batch : int;
  etype : string;
  subscribe : int;
  max_frame : int;
  reconnect : bool;
  retry_max : int;
  retry_base : float;
  retry_cap : float;
  seed : int;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    conns = 8;
    lines = 100;
    line = "create item(n = 1)";
    commit_every = 10;
    pipeline = 1;
    binary = false;
    events = false;
    batch = 1;
    etype = "tick";
    subscribe = 0;
    max_frame = Protocol.default_max_frame;
    reconnect = false;
    retry_max = 8;
    retry_base = 0.05;
    retry_cap = 2.0;
    seed = 0;
  }

type report = {
  conns : int;
  lines_sent : int;
  lines_ok : int;
  triggered : int;
  commits : int;
  errors : int;
  drained : int;
  reconnects : int;
  wall_s : float;
  lines_per_s : float;
  lat_p50_ns : int;
  lat_p90_ns : int;
  lat_p99_ns : int;
  lat_max_ns : int;
  subscribers : int;
  notifies : int;
  gap_frames : int;
  gap_dropped : int;
  notifies_per_s : float;
  nlat_p50_ns : int;
  nlat_p90_ns : int;
  nlat_p99_ns : int;
  nlat_max_ns : int;
}

let pp_report ppf r =
  Format.fprintf ppf
    "%d conn(s): %d event(s) sent, %d ok (%d triggered), %d commit(s), %d \
     error(s), %d drained, %d reconnect(s)@\n\
     %.3f s wall, %.0f events/s; round-trip latency p50=%dus p90=%dus \
     p99=%dus max=%dus"
    r.conns r.lines_sent r.lines_ok r.triggered r.commits r.errors r.drained
    r.reconnects r.wall_s r.lines_per_s (r.lat_p50_ns / 1000)
    (r.lat_p90_ns / 1000) (r.lat_p99_ns / 1000) (r.lat_max_ns / 1000);
  if r.subscribers > 0 then
    Format.fprintf ppf
      "@\n\
       %d subscriber(s): %d notify(s), %d gap frame(s) (%d shed), %.0f \
       notifies/s; trigger-to-notify p50=%dus p90=%dus p99=%dus max=%dus"
      r.subscribers r.notifies r.gap_frames r.gap_dropped r.notifies_per_s
      (r.nlat_p50_ns / 1000) (r.nlat_p90_ns / 1000) (r.nlat_p99_ns / 1000)
      (r.nlat_max_ns / 1000)

(* What one in-flight frame's reply must be, FIFO per session.  [E_work]
   covers both a LINE and a binary EVENT/BATCH — [events] is how many
   event occurrences the frame carried (always 1 for LINE). *)
type expect =
  | E_hello
  | E_etype
  | E_work of { events : int; sent_ns : int }
  | E_commit of { upto : int }  (** events covered once this commit acks *)
  | E_sub
  | E_unsub
  | E_bye

(* The connection's link state; the expectation queue only fills under
   [Streaming]. *)
type link = Backoff | Connecting | Streaming

type conn = {
  mutable fd : Unix.file_descr;
  key : string;  (** session key sent with HELLO, for shard pinning *)
  is_sub : bool;  (** a subscriber: registers a rule, never ingests *)
  backoff : Chimera_util.Backoff.t;
  mutable retry_at : float;  (** only meaningful under [Backoff] *)
  mutable link : link;
  expect : expect Queue.t;
  mutable helloed : bool;  (** HELLO sent on this TCP session *)
  mutable etyped : bool;  (** ETYPE announced on this TCP session *)
  mutable sub_sent : bool;  (** SUB sent on this TCP session *)
  mutable sub_acked : bool;  (** SUB acked — notifies may flow *)
  mutable unsub_sent : bool;
  mutable unsub_acked : bool;
  mutable quit_sent : bool;
  mutable gen_events : int;  (** events sent (the generation cursor) *)
  mutable commit_cursor : int;  (** events covered by COMMITs sent *)
  mutable committed_events : int;  (** events covered by COMMITs acked *)
  mutable inbuf : Bytes.t;
  mutable in_len : int;
  outbuf : Buffer.t;
  mutable out_off : int;
  mutable done_ : bool;
}

type t = {
  config : config;
  addr : Unix.inet_addr;
  conns : conn list;
  latencies : int array;
  mutable samples : int;
  nlat : int array;  (** trigger-to-notify samples, one per binding *)
  mutable nsamples : int;
  mutable lines_sent : int;
  mutable lines_ok : int;
  mutable triggered : int;
  mutable commits : int;
  mutable errors : int;
  mutable drained : int;
  mutable reconnects : int;
  mutable notifies : int;
  mutable gap_frames : int;
  mutable gap_dropped : int;
  started : float;
  mutable finished_at : float option;
}

let now_ns () = Obs.now_ns ()
let now_s () = Chimera_util.Monotime.now_s ()

let send t conn payload =
  match
    Protocol.frame_into ~max_frame:t.config.max_frame conn.outbuf payload
  with
  | Ok () -> ()
  | Error _ ->
      t.errors <- t.errors + 1;
      conn.done_ <- true

let send_command t conn cmd = send t conn (Protocol.command_to_payload cmd)

let mark_done t conn =
  conn.done_ <- true;
  if t.finished_at = None && List.for_all (fun c -> c.done_) t.conns then
    t.finished_at <- Some (now_s ())

let finish_conn t conn =
  if not conn.done_ then
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  mark_done t conn

(* A failed connect or a dropped link.  Retry with backoff when allowed
   — the initial connect is always retried (bounded), an established
   session only under [reconnect] — else a hard error.  The server
   aborted whatever the dead session had not committed, so the
   generation cursor rewinds to the last *acknowledged* commit and those
   events are resent; everything in flight (its expectations included)
   is forgotten with the socket. *)
let fail_conn t conn =
  if not conn.done_ then begin
    let retryable =
      (t.config.reconnect || conn.link = Connecting)
      && Chimera_util.Backoff.attempts conn.backoff < t.config.retry_max
    in
    if retryable then begin
      (try Unix.close conn.fd with Unix.Unix_error _ -> ());
      conn.gen_events <- conn.committed_events;
      conn.commit_cursor <- conn.committed_events;
      Queue.clear conn.expect;
      conn.helloed <- false;
      conn.etyped <- false;
      conn.sub_sent <- false;
      conn.sub_acked <- false;
      conn.unsub_sent <- false;
      conn.unsub_acked <- false;
      conn.quit_sent <- false;
      conn.in_len <- 0;
      Buffer.clear conn.outbuf;
      conn.out_off <- 0;
      conn.link <- Backoff;
      conn.retry_at <- now_s () +. Chimera_util.Backoff.next conn.backoff;
      t.reconnects <- t.reconnects + 1
    end
    else begin
      t.errors <- t.errors + 1;
      finish_conn t conn
    end
  end

(* One binary work frame: EVENT for a single record, BATCH above that.
   The oid is the event's global index on this connection — stable
   across reconnect resends — or, in a subscription run, the send-time
   in nanoseconds, which the subscriber's condition binds back out for
   the trigger-to-notify latency.  The timestamp is the client clock,
   which the server carries but does not trust. *)
let work_oid t conn i =
  if t.config.subscribe > 0 then now_ns () else conn.gen_events + i

let binary_payload t conn ~n ~sent_ns =
  if n = 1 then
    Protocol.encode_event ~etype_id:0 ~oid:(work_oid t conn 0)
      ~timestamp:sent_ns
  else
    Protocol.encode_batch
      (List.init n (fun i ->
           {
             Protocol.etype_id = 0;
             oid = work_oid t conn i;
             timestamp = sent_ns;
           }))

(* Every subscriber's SUB is acked: the ingesters may open fire without
   losing pushes to not-yet-registered rules.  A subscriber that gave up
   (connect retries exhausted) stops gating. *)
let subs_ready t =
  List.for_all (fun c -> (not c.is_sub) || c.sub_acked || c.done_) t.conns

(* Every ingester delivered its load and closed: the subscribers may
   UNSUB — the reply rides behind all owed notifies — and leave. *)
let ingest_done t = List.for_all (fun c -> c.is_sub || c.done_) t.conns

let sub_spec t =
  Printf.sprintf "ON { %s } DO at({ %s }, X, T)" t.config.etype t.config.etype

(* Tops the session's pipeline up to the configured depth: sends the
   next due frame — greeting, etype announcement, work, commit, quit —
   and queues its expectation, until the window is full or there is
   nothing left to send.  Subscribers run their own little script:
   HELLO, SUB, sit in the push stream, UNSUB once ingestion is done,
   QUIT once the UNSUB acked. *)
let rec fill t conn =
  if conn.is_sub then fill_sub t conn else fill_ingest t conn

and fill_sub t conn =
  let cfg = t.config in
  let parked = ref false in
  while
    (not !parked) && conn.link = Streaming && (not conn.done_)
    && (not conn.quit_sent)
    && Queue.length conn.expect < cfg.pipeline
  do
    if not conn.helloed then begin
      conn.helloed <- true;
      send_command t conn (Protocol.Hello (Protocol.version ^ " " ^ conn.key));
      Queue.add E_hello conn.expect
    end
    else if not conn.sub_sent then begin
      conn.sub_sent <- true;
      send_command t conn
        (Protocol.Sub { id = 0; binary = cfg.binary; spec = sub_spec t });
      Queue.add E_sub conn.expect
    end
    else if conn.unsub_acked then begin
      conn.quit_sent <- true;
      send_command t conn Protocol.Quit;
      Queue.add E_bye conn.expect
    end
    else if conn.sub_acked && (not conn.unsub_sent) && ingest_done t then begin
      conn.unsub_sent <- true;
      send_command t conn (Protocol.Unsub { id = 0 });
      Queue.add E_unsub conn.expect
    end
    else parked := true
  done

and fill_ingest t conn =
  let cfg = t.config in
  while
    conn.link = Streaming && (not conn.done_) && (not conn.quit_sent)
    && Queue.length conn.expect < cfg.pipeline
    (* Work holds until every subscriber registered; the greeting and
       the etype announcement may run ahead. *)
    && (conn.helloed = false
       || (cfg.binary && not conn.etyped)
       || subs_ready t)
  do
    if not conn.helloed then begin
      conn.helloed <- true;
      send_command t conn (Protocol.Hello (Protocol.version ^ " " ^ conn.key));
      Queue.add E_hello conn.expect
    end
    else if cfg.binary && not conn.etyped then begin
      conn.etyped <- true;
      send_command t conn (Protocol.Etype { id = 0; name = cfg.etype });
      Queue.add E_etype conn.expect
    end
    else if conn.gen_events >= cfg.lines then
      if conn.gen_events > conn.commit_cursor then begin
        conn.commit_cursor <- conn.gen_events;
        send_command t conn Protocol.Commit;
        Queue.add (E_commit { upto = conn.gen_events }) conn.expect
      end
      else begin
        conn.quit_sent <- true;
        send_command t conn Protocol.Quit;
        Queue.add E_bye conn.expect
      end
    else if conn.gen_events - conn.commit_cursor >= cfg.commit_every then begin
      conn.commit_cursor <- conn.gen_events;
      send_command t conn Protocol.Commit;
      Queue.add (E_commit { upto = conn.gen_events }) conn.expect
    end
    else begin
      let room =
        min
          (cfg.lines - conn.gen_events)
          (cfg.commit_every - (conn.gen_events - conn.commit_cursor))
      in
      let n = if cfg.binary then min cfg.batch room else 1 in
      let sent_ns = now_ns () in
      if cfg.binary then send t conn (binary_payload t conn ~n ~sent_ns)
      else if cfg.events then
        (* The text twin of the binary frames — same engine work through
           the EVENT verb, parsed from text; what an apples-to-apples
           binary-vs-text comparison pits the binary path against. *)
        send_command t conn
          (Protocol.Event { etype = cfg.etype; oid = work_oid t conn 0 })
      else send_command t conn (Protocol.Line cfg.line);
      conn.gen_events <- conn.gen_events + n;
      t.lines_sent <- t.lines_sent + n;
      Queue.add (E_work { events = n; sent_ns }) conn.expect
    end
  done

let on_reply t conn reply =
  match reply with
  | Protocol.Err ("shutdown", _) ->
      (* The server is draining (or idled us out): a clean end, counted
         apart from protocol errors. *)
      t.drained <- t.drained + 1;
      finish_conn t conn
  | Protocol.Err ("standby", _) when t.config.reconnect ->
      (* A not-yet-promoted standby answered (address takeover mid
         failover): back off and retry, the promotion is coming. *)
      fail_conn t conn
  | _ -> (
      match Queue.take_opt conn.expect with
      | None ->
          (* A reply nothing asked for: the stream cannot be trusted. *)
          t.errors <- t.errors + 1;
          finish_conn t conn
      | Some expected -> (
          match (expected, reply) with
          | _, Protocol.Err _ ->
              t.errors <- t.errors + 1;
              finish_conn t conn
          | E_hello, (Protocol.Ok_ _ | Protocol.Triggered _) ->
              Chimera_util.Backoff.reset conn.backoff;
              fill t conn
          | E_etype, (Protocol.Ok_ _ | Protocol.Triggered _) -> fill t conn
          | E_work { events; sent_ns }, (Protocol.Ok_ _ | Protocol.Triggered _)
            ->
              (* The clock is monotonic, but clamp anyway: a sample must
                 never go negative even under a test-injected clock.
                 Under pipelining the sample includes queue wait — that
                 is the latency a pipelining client experiences. *)
              let dt = max 0 (now_ns () - sent_ns) in
              if t.samples < Array.length t.latencies then begin
                t.latencies.(t.samples) <- dt;
                t.samples <- t.samples + 1
              end;
              t.lines_ok <- t.lines_ok + events;
              (match reply with
              | Protocol.Triggered _ -> t.triggered <- t.triggered + 1
              | _ -> ());
              fill t conn
          | E_commit { upto }, (Protocol.Ok_ _ | Protocol.Triggered _) ->
              t.commits <- t.commits + 1;
              conn.committed_events <- upto;
              fill t conn
          | E_sub, (Protocol.Ok_ _ | Protocol.Triggered _) ->
              conn.sub_acked <- true;
              Chimera_util.Backoff.reset conn.backoff;
              (* The last registration releases the ingesters. *)
              if subs_ready t then
                List.iter
                  (fun c ->
                    if (not c.is_sub) && (not c.done_) && c.link = Streaming
                    then fill t c)
                  t.conns
          | E_unsub, (Protocol.Ok_ _ | Protocol.Triggered _) ->
              conn.unsub_acked <- true;
              fill t conn
          | E_bye, (Protocol.Ok_ _ | Protocol.Triggered _) ->
              finish_conn t conn))

(* A subscription push — NOTIFY or NOTIFY_GAP — outside the expectation
   queue entirely, like on the wire.  Each delivered binding whose [X]
   value decodes as a send-time yields one trigger-to-notify sample. *)
let on_push t payload =
  match Protocol.notify_of_payload payload with
  | Ok (`Notify n) ->
      t.notifies <- t.notifies + 1;
      let received = now_ns () in
      List.iter
        (fun env ->
          match List.assoc_opt "X" env with
          | Some x when String.length x > 1 && x.[0] = 'o' -> (
              match int_of_string_opt (String.sub x 1 (String.length x - 1)) with
              | Some sent when sent > 0 ->
                  if t.nsamples < Array.length t.nlat then begin
                    t.nlat.(t.nsamples) <- max 0 (received - sent);
                    t.nsamples <- t.nsamples + 1
                  end
              | Some _ | None -> ())
          | Some _ | None -> ())
        n.Protocol.bindings
  | Ok (`Gap (_sub, dropped)) ->
      t.gap_frames <- t.gap_frames + 1;
      t.gap_dropped <- t.gap_dropped + dropped
  | Error _ -> t.errors <- t.errors + 1

let rec drain_frames t conn =
  if not conn.done_ then
    match
      Protocol.decode ~max_frame:t.config.max_frame conn.inbuf ~off:0
        ~len:conn.in_len
    with
    | Protocol.Need_more -> ()
    | Protocol.Reject (_, skip) ->
        Bytes.blit conn.inbuf skip conn.inbuf 0 (conn.in_len - skip);
        conn.in_len <- conn.in_len - skip;
        t.errors <- t.errors + 1;
        drain_frames t conn
    | Protocol.Corrupt _ ->
        t.errors <- t.errors + 1;
        finish_conn t conn
    | Protocol.Frame (payload, used) ->
        Bytes.blit conn.inbuf used conn.inbuf 0 (conn.in_len - used);
        conn.in_len <- conn.in_len - used;
        (if Protocol.is_notify_payload payload then on_push t payload
         else
           match Protocol.reply_of_payload payload with
           | Ok reply -> on_reply t conn reply
           | Error _ ->
               t.errors <- t.errors + 1;
               finish_conn t conn);
        drain_frames t conn

let handle_readable t conn chunk =
  match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
  | 0 ->
      (* EOF before the goodbye is only clean after a drain notice —
         otherwise the link dropped under us. *)
      if conn.quit_sent && Queue.is_empty conn.expect then finish_conn t conn
      else fail_conn t conn
  | n ->
      let need = conn.in_len + n in
      if Bytes.length conn.inbuf < need then begin
        let grown = Bytes.create (max need (2 * Bytes.length conn.inbuf)) in
        Bytes.blit conn.inbuf 0 grown 0 conn.in_len;
        conn.inbuf <- grown
      end;
      Bytes.blit chunk 0 conn.inbuf conn.in_len n;
      conn.in_len <- need;
      drain_frames t conn
  | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _)
    ->
      ()
  | exception Unix.Unix_error _ -> fail_conn t conn

let try_flush t conn =
  let pending = Buffer.length conn.outbuf - conn.out_off in
  if (not conn.done_) && pending > 0 then begin
    let data = Buffer.to_bytes conn.outbuf in
    match Unix.write conn.fd data conn.out_off pending with
    | n ->
        conn.out_off <- conn.out_off + n;
        if conn.out_off >= Bytes.length data then begin
          Buffer.clear conn.outbuf;
          conn.out_off <- 0
        end
    | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error _ -> fail_conn t conn
  end

let create (config : config) =
  if config.conns <= 0 || config.lines <= 0 then
    Error "conns and lines must be positive"
  else if config.commit_every <= 0 then Error "commit-every must be positive"
  else if config.pipeline <= 0 then Error "pipeline depth must be positive"
  else if config.batch <= 0 then Error "batch must be positive"
  else if config.binary && config.events then
    Error "--binary and --events are mutually exclusive"
  else if (config.binary || config.events) && config.etype = "" then
    Error "event mode needs an event type name"
  else if config.subscribe < 0 then Error "subscribe must be non-negative"
  else if config.subscribe > 0 && not (config.binary || config.events) then
    Error "--subscribe needs --events or --binary (the rule watches events)"
  else if config.retry_max < 0 then Error "retry-max must be non-negative"
  else begin
    (* A server killed mid-run RSTs these sockets; the writes must fail
       with EPIPE (feeding the reconnect path), not raise SIGPIPE. *)
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ | Sys_error _ -> ());
    match Unix.inet_addr_of_string config.host with
    | exception Failure _ -> Error (Printf.sprintf "bad host %s" config.host)
    | addr -> (
        let open_conn ~is_sub i =
          (* Per-connection jitter streams, offset by the index so a
             fleet backing off from one refusal does not reconnect in
             lockstep — yet fully deterministic under [seed]. *)
          let backoff =
            Chimera_util.Backoff.create ~base:config.retry_base
              ~cap:config.retry_cap
              ~seed:(config.seed + if is_sub then config.conns + i else i)
              ()
          in
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          Unix.set_nonblock fd;
          (try Unix.setsockopt fd Unix.TCP_NODELAY true
           with Unix.Unix_error _ -> ());
          let conn =
            {
              fd;
              key =
                (if is_sub then Printf.sprintf "sub-%d" i
                 else Printf.sprintf "lg-%d" i);
              is_sub;
              backoff;
              retry_at = 0.;
              link = Connecting;
              expect = Queue.create ();
              helloed = false;
              etyped = false;
              sub_sent = false;
              sub_acked = false;
              unsub_sent = false;
              unsub_acked = false;
              quit_sent = false;
              gen_events = 0;
              commit_cursor = 0;
              committed_events = 0;
              inbuf = Bytes.create 4096;
              in_len = 0;
              outbuf = Buffer.create 256;
              out_off = 0;
              done_ = false;
            }
          in
          (try Unix.connect fd (Unix.ADDR_INET (addr, config.port)) with
          | Unix.Unix_error (Unix.EINPROGRESS, _, _) -> ()
          | Unix.Unix_error _ ->
              (* A synchronous refusal: straight into backoff. *)
              (try Unix.close fd with Unix.Unix_error _ -> ());
              conn.link <- Backoff;
              conn.retry_at <-
                now_s () +. Chimera_util.Backoff.next backoff);
          conn
        in
        match
          List.init config.conns (open_conn ~is_sub:false)
          @ List.init config.subscribe (open_conn ~is_sub:true)
        with
        | conns ->
            Ok
              {
                config;
                addr;
                conns;
                latencies = Array.make (config.conns * config.lines) 0;
                samples = 0;
                (* One sample per delivered binding, every subscriber a
                   fan-out copy — capped so a huge run stays bounded
                   (percentiles over the first 2^20 samples). *)
                nlat =
                  Array.make
                    (min (1 lsl 20)
                       (max 1 (config.subscribe * config.conns * config.lines)))
                    0;
                nsamples = 0;
                lines_sent = 0;
                lines_ok = 0;
                triggered = 0;
                commits = 0;
                errors = 0;
                drained = 0;
                reconnects = 0;
                notifies = 0;
                gap_frames = 0;
                gap_dropped = 0;
                started = now_s ();
                finished_at = None;
              }
        | exception Unix.Unix_error (e, _, _) ->
            Error (Printf.sprintf "connect: %s" (Unix.error_message e)))
  end

(* A backoff delay expired: fresh socket, fresh connect. *)
let start_connect t conn =
  match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error _ ->
      t.errors <- t.errors + 1;
      mark_done t conn
  | fd -> (
      Unix.set_nonblock fd;
      (try Unix.setsockopt fd Unix.TCP_NODELAY true
       with Unix.Unix_error _ -> ());
      conn.fd <- fd;
      conn.link <- Connecting;
      try Unix.connect fd (Unix.ADDR_INET (t.addr, t.config.port)) with
      | Unix.Unix_error (Unix.EINPROGRESS, _, _) -> ()
      | Unix.Unix_error _ -> fail_conn t conn)

let finished t = List.for_all (fun c -> c.done_) t.conns

let poll t ~timeout =
  (* Fire the retries that are due before selecting, and cap the sleep
     at the earliest one still pending so none oversleeps. *)
  let now = now_s () in
  List.iter
    (fun c ->
      if (not c.done_) && c.link = Backoff && c.retry_at <= now then
        start_connect t c)
    t.conns;
  let live = List.filter (fun c -> not c.done_) t.conns in
  (* Gated senders re-check their gate each turn: an ingester waiting
     on subscriber registration, a subscriber waiting on ingest_done —
     both park with an empty pipeline, and nothing but this would ask
     them again.  A no-op for everyone else. *)
  List.iter (fun c -> if c.link = Streaming then fill t c) live;
  if live <> [] then begin
    let timeout =
      List.fold_left
        (fun acc c ->
          if c.link = Backoff then
            Float.min acc (Float.max 0. (c.retry_at -. now))
          else acc)
        timeout live
    in
    let reads =
      List.filter_map
        (fun c -> if c.link = Streaming then Some c.fd else None)
        live
    in
    let writes =
      List.filter_map
        (fun c ->
          if
            c.link = Connecting
            || (c.link = Streaming && Buffer.length c.outbuf - c.out_off > 0)
          then Some c.fd
          else None)
        live
    in
    match Unix.select reads writes [] timeout with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, writable, _ ->
        let chunk = Bytes.create 8192 in
        List.iter
          (fun c ->
            if (not c.done_) && c.link = Connecting && List.memq c.fd writable
            then begin
              match Unix.getsockopt_error c.fd with
              | Some _err -> fail_conn t c
              | None ->
                  c.link <- Streaming;
                  (* The pipeline fills from here: HELLO first, and —
                     frames execute in order server-side — up to the
                     window's worth of traffic right behind it. *)
                  fill t c
            end)
          live;
        List.iter
          (fun c ->
            if (not c.done_) && c.link = Streaming && List.memq c.fd readable
            then handle_readable t c chunk)
          live;
        List.iter
          (fun c ->
            if (not c.done_) && c.link = Streaming then try_flush t c)
          live
  end

(* Nearest-rank percentile over an already-sorted sample array: the
   smallest element with at least p% of the samples at or below it; 0 on
   an empty array.  With one sample every percentile is that sample. *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0
  else
    let rank = int_of_float (Float.ceil (p /. 100. *. Float.of_int n)) in
    sorted.(Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)))

let report t =
  let finished_at = match t.finished_at with Some f -> f | None -> now_s () in
  let wall_s = Float.max 1e-9 (finished_at -. t.started) in
  let sorted = Array.sub t.latencies 0 t.samples in
  (* [Int.compare], not polymorphic [compare]: same order, no boxing
     walk per comparison. *)
  Array.sort Int.compare sorted;
  let pct = percentile sorted in
  let nsorted = Array.sub t.nlat 0 t.nsamples in
  Array.sort Int.compare nsorted;
  let npct = percentile nsorted in
  {
    conns = t.config.conns;
    lines_sent = t.lines_sent;
    lines_ok = t.lines_ok;
    triggered = t.triggered;
    commits = t.commits;
    errors = t.errors;
    drained = t.drained;
    reconnects = t.reconnects;
    wall_s;
    lines_per_s = Float.of_int t.lines_ok /. wall_s;
    lat_p50_ns = pct 50.;
    lat_p90_ns = pct 90.;
    lat_p99_ns = pct 99.;
    lat_max_ns = (if t.samples = 0 then 0 else sorted.(t.samples - 1));
    subscribers = t.config.subscribe;
    notifies = t.notifies;
    gap_frames = t.gap_frames;
    gap_dropped = t.gap_dropped;
    notifies_per_s = Float.of_int t.notifies /. wall_s;
    nlat_p50_ns = npct 50.;
    nlat_p90_ns = npct 90.;
    nlat_p99_ns = npct 99.;
    nlat_max_ns = (if t.nsamples = 0 then 0 else nsorted.(t.nsamples - 1));
  }

let run config =
  match create config with
  | Error _ as e -> e
  | Ok t ->
      let rec loop () =
        if finished t then Ok (report t)
        else begin
          poll t ~timeout:0.25;
          loop ()
        end
      in
      loop ()
