(** Session management for [chimera serve]: per-connection sessions
    multiplexed onto [--engines N] independent engine shards, executed
    inline or on worker domains.

    Each shard is one ordinary single-threaded engine (wrapped in the
    script interpreter) with its own write-ahead journal; a session is
    pinned to the shard its key hashes to — FNV-1a over the client's
    HELLO session key when one is given ([HELLO <version> <key>]), over
    the decimal session id otherwise.  Transactions serialize per shard:
    the first [LINE] of a session acquires its shard, [COMMIT] /
    [ABORT] release it, and commands of other sessions on the same shard
    queue (FIFO, bounded by [max_pending]) until the shard frees — the
    caller stops reading from a queued session, which is the protocol's
    admission control.  An orderly or disorderly close of a session that
    holds a shard aborts its uncommitted transaction.

    With [domains = 0] (the default here) everything runs synchronously
    on the calling thread.  With [domains = M > 0], M worker domains
    execute the engine-bound commands — shard [i] belongs to worker
    [i mod M] — fed through bounded per-worker mailboxes; replies then
    surface asynchronously from {!pump}, which the caller runs whenever
    {!wakeup_fd} signals (or once per reactor turn). *)

open Chimera_event

module Manager : sig
  type t

  (** What the caller (the reactor) must do next: send a reply frame on a
      session's connection, flush-and-close it, — for [Committed] —
      either send the commit reply immediately or park it until every
      attached replication follower acknowledges the commit sequence
      (semi-synchronous replication), or — for [Notify] — frame a
      subscription push (text or binary per [binary]) onto the session's
      bounded notify queue.

      [Notify] events for a commit are emitted before the commit's own
      [Reply]/[Committed] event, in commit order per subscription; an
      aborted transaction emits none.  Together with the caller's
      bounded-queue accounting this is the delivery guarantee: every
      committed activation of a live subscription is either delivered or
      explicitly counted into a [NOTIFY_GAP]. *)
  type event =
    | Reply of int * Protocol.reply
    | Close of int
    | Committed of { sid : int; shard : int; seq : int; reply : Protocol.reply }
    | Notify of {
        sid : int;
        sub : int;
        binary : bool;
        at : int;
        bindings : (string * string) list list;
      }

  val create :
    engines:int ->
    ?domains:int ->
    ?journal_dir:string ->
    ?fsync:Journal.sync_policy ->
    ?boot_script:string ->
    ?max_pending:int ->
    ?extra_stats:(unit -> string) ->
    ?standby:bool ->
    ?checkpoint_every:int ->
    ?checkpoint_interval:float ->
    unit ->
    (t, string) result
  (** [engines] must be positive.  [domains] (default [0]) is the worker
      domain count: [0] executes inline on the caller's thread, [M > 0]
      spawns [min M engines] worker domains at creation.  [journal_dir]
      (created if missing) gives every shard a write-ahead journal at
      [<dir>/shard-<i>.journal]; [boot_script] is rule-language source
      executed (and committed) on every shard before the first
      connection — the conventional way to predefine schema and rules.
      [extra_stats] is appended to every [STATS] reply (the server
      contributes its connection counters through it); with worker
      domains it is called from them, so it must be domain-safe.

      [standby] (default [false]) creates a replication follower: shards
      run only the boot script's {e definitions} (the boot transaction's
      operations arrive from the primary's stream), carry a raw
      {!Journal.Sink} instead of an engine-attached journal, refuse
      [LINE]/[COMMIT]/[ABORT] with [ERR standby], and always run inline
      ([domains] is ignored).  Feed the stream through {!repl_reset} and
      {!repl_apply}; {!promote} turns the standby into a primary.

      [checkpoint_every] (positive commits) and [checkpoint_interval]
      (positive seconds, checked at commit boundaries) enable bounded
      state on journaled shards — either alone or both, whichever
      cadence is due first: the engine writes a checkpoint beside its
      journal, seals the live segment and GCs segments behind
      [min checkpoint_seq ack_floor] (see {!set_gc_floor}).  A standby
      picks the settings up at promotion. *)

  val engines : t -> int

  val domains : t -> int
  (** Worker domains actually running; [0] in inline mode. *)

  val set_gc_floor : t -> shard:int -> int -> unit
  (** Publishes the shard's replication ack floor — the lowest commit
      sequence every attached follower has durably acknowledged, or
      [max_int] when no follower is attached.  The reactor owns the
      follower bookkeeping and calls this on every ack, attach and
      detach; segment GC (on the shard's worker domain) never retires a
      sealed segment above the floor.  Domain-safe. *)

  val standby : t -> bool
  (** The manager is a replication follower (created with [~standby:true]
      and not yet promoted). *)

  val boot_seqs : t -> int array
  (** Each shard's journal commit sequence right after boot — read before
      any worker domain spawns, so the caller has a race-free baseline to
      track per-shard commit sequences from [Committed] events. *)

  val open_session : t -> int
  (** Registers a fresh session (in the greeting state) and returns its id. *)

  val session_count : t -> int
  (** Open sessions. *)

  val subscription_count : t -> int
  (** Live subscriptions across all sessions — the [sub.active] gauge.
      Eagerly-registered (in-flight) SUBs count; a disconnected
      session's subscriptions stop counting immediately, even while
      their rules await the shard's next transaction boundary to leave
      the engine. *)

  val shard_of_session : t -> int -> int

  val in_transaction : t -> int -> bool
  (** The session currently holds its shard (open transaction). *)

  val blocked : t -> int -> bool
  (** The session has commands queued (behind a busy shard, or behind its
      own in-flight pipeline): the caller should stop reading from its
      connection until events release it. *)

  val idle : t -> int -> bool
  (** Nothing queued and nothing in flight for this session — its reply
      stream is complete as of now.  What a draining server polls before
      it closes a connection. *)

  val on_payload : t -> int -> string -> event list
  (** Feed one decoded frame payload from a session.  Parse errors and
      protocol-state violations come back as [ERR] replies; engine-bound
      commands may queue (empty event list) and their replies surface
      from the [on_payload]/[disconnect] call that released the shard —
      or, with worker domains, from a later {!pump}. *)

  val on_binary : t -> int -> string -> event list
  (** Feed one binary EVENT/BATCH frame payload (raw bytes, tag byte
      included) from a session.  The reactor only runs an O(1) shape
      check; the per-record decode and the engine ingestion run on the
      shard's worker domain.  Each frame yields exactly one reply in
      pipeline order — for a BATCH, [TRIGGERED] with every executed
      rule in order, or the first error (preceding records stay applied
      and the transaction stays open).  Event-type ids resolve through
      the session's [ETYPE] table as of this call. *)

  val disconnect : t -> int -> event list
  (** The connection is gone (EOF, error, timeout, drain): aborts the
      session's open transaction, drops its queue, and wakes waiters of
      its shard — their replies are the returned events.  Idempotent. *)

  val wakeup_fd : t -> Unix.file_descr option
  (** With worker domains, a self-pipe read end that becomes readable
      when completions are waiting: add it to the reactor's select read
      set and call {!pump} on wakeup.  [None] in inline mode. *)

  val pump : t -> event list
  (** Collect finished worker jobs: their replies, plus whatever woke up
      behind them (a completed COMMIT wakes the shard's waiters).  Cheap
      when there is nothing to do; inline mode always returns []. *)

  val shutdown : t -> unit
  (** Drain epilogue: aborts every open transaction, stops and joins the
      worker domains, flushes and closes every journal.  The manager
      accepts no further commands. *)

  val journal_paths : t -> string list
  (** The live journal path of every journaled shard — on a standby, the
      path of each shard's local segment copy. *)

  (** {2 Standby (replication follower) operations}

      Valid only while {!standby} holds; each returns [Error] otherwise. *)

  val repl_reset : t -> shard:int -> (unit, string) result
  (** A [REPL_SEGMENT] arrived: a new segment generation begins upstream
      (initial attach, or the primary rotated a checkpoint).  Restarts
      the shard's engine fresh (boot definitions re-run) and truncates
      its local segment copy; the records that follow rebuild the state. *)

  val repl_apply :
    t -> shard:int -> head_seq:int -> string -> (int, string) result
  (** A [REPL_RECORDS] batch arrived: writes the raw bytes durably to the
      shard's local segment copy, applies the committed transactions they
      close, and returns the applied commit sequence — what the follower
      acknowledges with [REPL_ACK].  [head_seq] is the primary's reported
      commit sequence (kept for lag accounting).  [Error] on a corrupt
      record or a failed replay: the follower's state can no longer be
      trusted and it must resynchronize (reset every shard, reconnect —
      a fresh replication session ships the segment from its start). *)

  val repl_seqs : t -> (int * int) array
  (** Per shard: [(applied, head)] — the last commit sequence applied
      locally and the primary's last reported one.  Their difference is
      the replication lag in commits. *)

  val promote : t -> (unit, string) result
  (** The standby becomes a primary, warm: each shard's local segment
      copy — byte-identical to the primary's journal — reopens for
      appending at the applied sequence and attaches to the engine; no
      replay.  Write verbs are accepted from here on. *)
end
