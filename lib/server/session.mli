(** Session management for [chimera serve]: per-connection sessions
    multiplexed onto [--engines N] independent engine shards, executed
    inline or on worker domains.

    Each shard is one ordinary single-threaded engine (wrapped in the
    script interpreter) with its own write-ahead journal; a session is
    pinned to the shard its key hashes to — FNV-1a over the client's
    HELLO session key when one is given ([HELLO <version> <key>]), over
    the decimal session id otherwise.  Transactions serialize per shard:
    the first [LINE] of a session acquires its shard, [COMMIT] /
    [ABORT] release it, and commands of other sessions on the same shard
    queue (FIFO, bounded by [max_pending]) until the shard frees — the
    caller stops reading from a queued session, which is the protocol's
    admission control.  An orderly or disorderly close of a session that
    holds a shard aborts its uncommitted transaction.

    With [domains = 0] (the default here) everything runs synchronously
    on the calling thread.  With [domains = M > 0], M worker domains
    execute the engine-bound commands — shard [i] belongs to worker
    [i mod M] — fed through bounded per-worker mailboxes; replies then
    surface asynchronously from {!pump}, which the caller runs whenever
    {!wakeup_fd} signals (or once per reactor turn). *)

open Chimera_event

module Manager : sig
  type t

  (** What the caller (the reactor) must do next: send a reply frame on a
      session's connection, or flush-and-close it. *)
  type event = Reply of int * Protocol.reply | Close of int

  val create :
    engines:int ->
    ?domains:int ->
    ?journal_dir:string ->
    ?fsync:Journal.sync_policy ->
    ?boot_script:string ->
    ?max_pending:int ->
    ?extra_stats:(unit -> string) ->
    unit ->
    (t, string) result
  (** [engines] must be positive.  [domains] (default [0]) is the worker
      domain count: [0] executes inline on the caller's thread, [M > 0]
      spawns [min M engines] worker domains at creation.  [journal_dir]
      (created if missing) gives every shard a write-ahead journal at
      [<dir>/shard-<i>.journal]; [boot_script] is rule-language source
      executed (and committed) on every shard before the first
      connection — the conventional way to predefine schema and rules.
      [extra_stats] is appended to every [STATS] reply (the server
      contributes its connection counters through it); with worker
      domains it is called from them, so it must be domain-safe. *)

  val engines : t -> int

  val domains : t -> int
  (** Worker domains actually running; [0] in inline mode. *)

  val open_session : t -> int
  (** Registers a fresh session (in the greeting state) and returns its id. *)

  val session_count : t -> int
  val shard_of_session : t -> int -> int

  val in_transaction : t -> int -> bool
  (** The session currently holds its shard (open transaction). *)

  val blocked : t -> int -> bool
  (** The session has commands queued (behind a busy shard, or behind its
      own in-flight pipeline): the caller should stop reading from its
      connection until events release it. *)

  val idle : t -> int -> bool
  (** Nothing queued and nothing in flight for this session — its reply
      stream is complete as of now.  What a draining server polls before
      it closes a connection. *)

  val on_payload : t -> int -> string -> event list
  (** Feed one decoded frame payload from a session.  Parse errors and
      protocol-state violations come back as [ERR] replies; engine-bound
      commands may queue (empty event list) and their replies surface
      from the [on_payload]/[disconnect] call that released the shard —
      or, with worker domains, from a later {!pump}. *)

  val disconnect : t -> int -> event list
  (** The connection is gone (EOF, error, timeout, drain): aborts the
      session's open transaction, drops its queue, and wakes waiters of
      its shard — their replies are the returned events.  Idempotent. *)

  val wakeup_fd : t -> Unix.file_descr option
  (** With worker domains, a self-pipe read end that becomes readable
      when completions are waiting: add it to the reactor's select read
      set and call {!pump} on wakeup.  [None] in inline mode. *)

  val pump : t -> event list
  (** Collect finished worker jobs: their replies, plus whatever woke up
      behind them (a completed COMMIT wakes the shard's waiters).  Cheap
      when there is nothing to do; inline mode always returns []. *)

  val shutdown : t -> unit
  (** Drain epilogue: aborts every open transaction, stops and joins the
      worker domains, flushes and closes every journal.  The manager
      accepts no further commands. *)

  val journal_paths : t -> string list
end
