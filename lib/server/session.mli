(** Session management for [chimera serve]: per-connection sessions
    multiplexed onto [--engines N] independent engine shards.

    Each shard is one ordinary single-threaded engine (wrapped in the
    script interpreter) with its own write-ahead journal; a session is
    pinned to the shard its id hashes to.  Transactions serialize per
    shard: the first [LINE] of a session acquires its shard, [COMMIT] /
    [ABORT] release it, and commands of other sessions on the same shard
    queue (FIFO, bounded by [max_pending]) until the shard frees — the
    caller stops reading from a queued session, which is the protocol's
    admission control.  An orderly or disorderly close of a session that
    holds a shard aborts its uncommitted transaction. *)

open Chimera_event

module Manager : sig
  type t

  (** What the caller (the reactor) must do next: send a reply frame on a
      session's connection, or flush-and-close it. *)
  type event = Reply of int * Protocol.reply | Close of int

  val create :
    engines:int ->
    ?journal_dir:string ->
    ?fsync:Journal.sync_policy ->
    ?boot_script:string ->
    ?max_pending:int ->
    ?extra_stats:(unit -> string) ->
    unit ->
    (t, string) result
  (** [engines] must be positive.  [journal_dir] (created if missing)
      gives every shard a write-ahead journal at
      [<dir>/shard-<i>.journal]; [boot_script] is rule-language source
      executed (and committed) on every shard before the first
      connection — the conventional way to predefine schema and rules.
      [extra_stats] is appended to every [STATS] reply (the server
      contributes its connection counters through it). *)

  val engines : t -> int
  val open_session : t -> int
  (** Registers a fresh session (in the greeting state) and returns its id. *)

  val session_count : t -> int
  val shard_of_session : t -> int -> int

  val in_transaction : t -> int -> bool
  (** The session currently holds its shard (open transaction). *)

  val blocked : t -> int -> bool
  (** The session has commands queued behind a busy shard: the caller
      should stop reading from its connection until events release it. *)

  val on_payload : t -> int -> string -> event list
  (** Feed one decoded frame payload from a session.  Parse errors and
      protocol-state violations come back as [ERR] replies; engine-bound
      commands may queue (empty event list) and their replies surface
      from the [on_payload]/[disconnect] call that released the shard. *)

  val disconnect : t -> int -> event list
  (** The connection is gone (EOF, error, timeout, drain): aborts the
      session's open transaction, drops its queue, and wakes waiters of
      its shard — their replies are the returned events.  Idempotent. *)

  val shutdown : t -> unit
  (** Drain epilogue: aborts every open transaction, flushes and closes
      every journal.  The manager accepts no further commands. *)

  val journal_paths : t -> string list
end
