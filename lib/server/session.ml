(* Session management: per-connection sessions multiplexed onto N
   independent engine shards.

   The engine is single-threaded and transactional, so concurrency comes
   from partitioning, not sharing: [--engines N] creates N ordinary
   engines (each wrapped in the script interpreter, each with its own
   journal) and a session is pinned to the shard its id hashes to.
   Within a shard, transactions serialize: the first LINE of a session
   acquires the shard, COMMIT/ABORT release it, and engine-bound
   commands of other sessions queue FIFO until then.  Queued sessions
   are reported [blocked] so the reactor stops reading from them — the
   queue bound plus that read-stop is the admission control of the
   protocol.

   Every state transition here is synchronous and single-threaded; the
   reactor calls in with one decoded payload at a time and gets back the
   list of replies (possibly for *other* sessions: releasing a shard
   answers its waiters) to write out. *)

open Chimera_event
open Chimera_rules
open Chimera_lang

module Manager = struct
  type event = Reply of int * Protocol.reply | Close of int

  type session = {
    id : int;
    shard : int;
    mutable greeted : bool;
    pending : Protocol.command Queue.t;
    mutable waiting : bool;  (** enqueued in its shard's waiter queue *)
    mutable closed : bool;
  }

  type shard = {
    interp : Interp.t;
    journal : Journal.t option;
    mutable owner : int option;  (** session id holding the open tx *)
    waiters : int Queue.t;
    executed : string list ref;  (** execution-listener accumulator, newest first *)
  }

  type t = {
    engines : int;
    shards : shard array;
    sessions : (int, session) Hashtbl.t;
    mutable next_sid : int;
    max_pending : int;
    extra_stats : (unit -> string) option;
    mutable down : bool;
  }

  (* ------------------------------------------------------------ setup *)

  let rec mkdir_p path =
    if path = "" || path = "." || path = "/" || Sys.file_exists path then Ok ()
    else
      let parent = Filename.dirname path in
      let ( let* ) = Result.bind in
      let* () = if parent = path then Ok () else mkdir_p parent in
      match Unix.mkdir path 0o755 with
      | () -> Ok ()
      | exception Unix.Unix_error (Unix.EEXIST, _, _) -> Ok ()
      | exception Unix.Unix_error (e, _, _) ->
          Error
            (Printf.sprintf "cannot create journal directory %s: %s" path
               (Unix.error_message e))

  let make_shard ~journal_dir ~fsync ~boot_script idx =
    let ( let* ) = Result.bind in
    let interp = Interp.create () in
    let executed = ref [] in
    Engine.set_on_execution (Interp.engine interp)
      (fun name -> executed := name :: !executed);
    let* journal =
      match journal_dir with
      | None -> Ok None
      | Some dir -> (
          let path = Filename.concat dir (Printf.sprintf "shard-%d.journal" idx) in
          match Journal.create ~sync:fsync ~path () with
          | j ->
              Engine.set_journal (Interp.engine interp) j;
              Ok (Some j)
          | exception Sys_error msg ->
              Error (Printf.sprintf "cannot open journal %s: %s" path msg))
    in
    let* () =
      match boot_script with
      | None -> Ok ()
      | Some src -> (
          match Interp.run_string interp src with
          | Error msg -> Error (Printf.sprintf "boot script (shard %d): %s" idx msg)
          | Ok () -> (
              (* Shards open for traffic on a committed, quiescent state
                 whatever the script's trailing statement was. *)
              Interp.clear_output interp;
              match Engine.commit (Interp.engine interp) with
              | Ok () -> Ok ()
              | Error e ->
                  Error
                    (Fmt.str "boot script commit (shard %d): %a" idx
                       Engine.pp_error e)))
    in
    Ok { interp; journal; owner = None; waiters = Queue.create (); executed }

  let create ~engines ?journal_dir ?(fsync = Journal.Per_commit) ?boot_script
      ?(max_pending = 64) ?extra_stats () =
    let ( let* ) = Result.bind in
    if engines <= 0 then Error "engines must be positive"
    else
      let* () =
        match journal_dir with None -> Ok () | Some dir -> mkdir_p dir
      in
      let* shards =
        let rec build acc idx =
          if idx >= engines then Ok (List.rev acc)
          else
            let* shard = make_shard ~journal_dir ~fsync ~boot_script idx in
            build (shard :: acc) (idx + 1)
        in
        build [] 0
      in
      Ok
        {
          engines;
          shards = Array.of_list shards;
          sessions = Hashtbl.create 64;
          next_sid = 1;
          max_pending;
          extra_stats;
          down = false;
        }

  let engines t = t.engines
  let session_count t = Hashtbl.length t.sessions

  (* Sessions shard by id hash — the documented multiplexing scheme; the
     id sequence is dense, which [Hashtbl.hash] spreads well enough for
     the bench's 64-connections-over-4-shards balance. *)
  let shard_index t sid = Hashtbl.hash sid mod t.engines

  let open_session t =
    let sid = t.next_sid in
    t.next_sid <- sid + 1;
    Hashtbl.replace t.sessions sid
      {
        id = sid;
        shard = shard_index t sid;
        greeted = false;
        pending = Queue.create ();
        waiting = false;
        closed = false;
      };
    sid

  let shard_of_session t sid =
    match Hashtbl.find_opt t.sessions sid with
    | Some s -> s.shard
    | None -> shard_index t sid

  let in_transaction t sid =
    match Hashtbl.find_opt t.sessions sid with
    | Some s -> t.shards.(s.shard).owner = Some sid
    | None -> false

  let blocked t sid =
    match Hashtbl.find_opt t.sessions sid with
    | Some s -> s.waiting
    | None -> false

  let journal_paths t =
    Array.to_list t.shards
    |> List.filter_map (fun shard -> Option.map Journal.path shard.journal)

  (* ------------------------------------------------------- statistics *)

  let stats_text t s =
    let shard = t.shards.(s.shard) in
    let engine = Interp.engine shard.interp in
    let st = Engine.statistics engine in
    let buf = Buffer.create 256 in
    Buffer.add_string buf
      (Printf.sprintf
         "session %d shard %d/%d%s\n\
          engine: %d line(s), %d event(s), %d consideration(s), %d \
          execution(s), %d abort(s)\n\
          memo: %d hit(s), %d miss(es), %d node(s)"
         s.id s.shard t.engines
         (match shard.owner with
         | Some owner when owner = s.id -> " (transaction open)"
         | Some _ -> " (shard busy)"
         | None -> "")
         st.Engine.lines st.Engine.events st.Engine.considerations
         st.Engine.executions st.Engine.aborts st.Engine.memo_hits
         st.Engine.memo_misses st.Engine.memo_nodes);
    (match shard.journal with
    | None -> ()
    | Some j ->
        let c = Journal.counters j in
        Buffer.add_string buf
          (Printf.sprintf
             "\njournal: %d record(s), %d commit(s), %d fsync(s), %d \
              rotation(s) -> %s"
             c.Journal.appends c.Journal.commits c.Journal.syncs
             c.Journal.rotations (Journal.path j)));
    (match t.extra_stats with
    | None -> ()
    | Some f ->
        let extra = f () in
        if extra <> "" then begin
          Buffer.add_char buf '\n';
          Buffer.add_string buf extra
        end);
    Buffer.contents buf

  (* -------------------------------------------------------- execution *)

  let push acc e = acc := e :: !acc

  let requires_shard = function
    | Protocol.Line _ | Protocol.Commit | Protocol.Abort -> true
    | Protocol.Hello _ | Protocol.Stats | Protocol.Ping _ | Protocol.Quit ->
        false

  let trim_trailing_newlines s =
    let n = ref (String.length s) in
    while !n > 0 && (s.[!n - 1] = '\n' || s.[!n - 1] = '\r') do
      decr n
    done;
    String.sub s 0 !n

  (* Runs the statements of one LINE as a unit; the engine rolls a failed
     block back by itself, and the reply is either the executed-rule list
     or the inspection output the statements produced. *)
  let run_line shard statements =
    let interp = shard.interp in
    shard.executed := [];
    Interp.clear_output interp;
    let result =
      List.fold_left
        (fun acc stmt ->
          match acc with
          | Error _ -> acc
          | Ok () -> Interp.run_statement interp stmt)
        (Ok ()) statements
    in
    match result with
    | Error msg -> Protocol.Err ("engine", msg)
    | Ok () -> (
        match List.rev !(shard.executed) with
        | [] -> Protocol.Ok_ (trim_trailing_newlines (Interp.output interp))
        | rules -> Protocol.Triggered rules)

  (* Statements a LINE may carry: anything but [commit] — the transaction
     boundary is a protocol verb, so the session manager always knows who
     holds the shard. *)
  let line_statements text =
    match Parser.parse text with
    | Error msg -> Error ("parse", msg)
    | Ok statements ->
        if List.exists (function Ast.Commit -> true | _ -> false) statements
        then Error ("proto", "commit inside LINE: use the COMMIT verb")
        else Ok statements

  let rec release_shard t shard acc =
    shard.owner <- None;
    drain_waiters t shard acc

  (* Wakes the next waiting sessions of a freed shard, FIFO; each woken
     session runs its queued commands until it blocks again (e.g. its
     LINE re-acquired the shard and its COMMIT is yet to come — then the
     queue simply continues) or empties. *)
  and drain_waiters t shard acc =
    if shard.owner = None && not (Queue.is_empty shard.waiters) then begin
      let sid = Queue.pop shard.waiters in
      (match Hashtbl.find_opt t.sessions sid with
      | Some s when not s.closed ->
          s.waiting <- false;
          process_session t s acc
      | Some _ | None -> ());
      drain_waiters t shard acc
    end

  and process_session t s acc =
    if (not (Queue.is_empty s.pending)) && not s.closed then begin
      let shard = t.shards.(s.shard) in
      let busy =
        match shard.owner with Some owner -> owner <> s.id | None -> false
      in
      if requires_shard (Queue.peek s.pending) && busy then begin
        if not s.waiting then begin
          s.waiting <- true;
          Queue.add s.id shard.waiters
        end
      end
      else begin
        exec_command t s (Queue.pop s.pending) acc;
        process_session t s acc
      end
    end

  and exec_command t s cmd acc =
    let shard = t.shards.(s.shard) in
    let engine = Interp.engine shard.interp in
    let reply r = push acc (Reply (s.id, r)) in
    let owner_self () = shard.owner = Some s.id in
    match cmd with
    | Protocol.Hello v ->
        if s.greeted then reply (Protocol.Err ("state", "already greeted"))
        else if String.equal v Protocol.version then begin
          s.greeted <- true;
          reply
            (Protocol.Ok_
               (Protocol.version ^ " features="
               ^ String.concat "," Protocol.features))
        end
        else begin
          reply
            (Protocol.Err
               ( "proto",
                 Printf.sprintf "unsupported version %S; speak %s" v
                   Protocol.version ));
          s.closed <- true;
          push acc (Close s.id)
        end
    | Protocol.Ping token ->
        reply (Protocol.Ok_ (if token = "" then "pong" else "pong " ^ token))
    | Protocol.Stats -> reply (Protocol.Ok_ (stats_text t s))
    | Protocol.Quit ->
        (* Orderly close: an uncommitted transaction aborts before the
           shard passes to the next waiter. *)
        if owner_self () then begin
          Engine.abort engine;
          release_shard t shard acc
        end;
        reply (Protocol.Ok_ "bye");
        s.closed <- true;
        push acc (Close s.id)
    | Protocol.Line _ | Protocol.Commit | Protocol.Abort
      when not s.greeted ->
        reply (Protocol.Err ("proto", "HELLO required first"))
    | Protocol.Line text -> (
        match line_statements text with
        | Error (code, msg) -> reply (Protocol.Err (code, msg))
        | Ok statements ->
            (* Acquire on first contact, hold across engine errors: the
               failed block was rolled back but the transaction is the
               client's to COMMIT or ABORT. *)
            shard.owner <- Some s.id;
            reply (run_line shard statements))
    | Protocol.Commit ->
        if owner_self () then begin
          shard.executed := [];
          (match Interp.run_statement shard.interp Ast.Commit with
          | Ok () ->
              reply
                (match List.rev !(shard.executed) with
                | [] -> Protocol.Ok_ ""
                | rules -> Protocol.Triggered rules)
          | Error msg ->
              (* A failed commit (e.g. a non-terminating deferred
                 cascade) leaves no committed state to hand over: abort,
                 so the shard frees in a defined state. *)
              Engine.abort engine;
              reply
                (Protocol.Err ("engine", msg ^ " (transaction aborted)")));
          release_shard t shard acc
        end
        else reply (Protocol.Err ("state", "no open transaction"))
    | Protocol.Abort ->
        if owner_self () then begin
          Engine.abort engine;
          release_shard t shard acc;
          reply (Protocol.Ok_ "aborted")
        end
        else reply (Protocol.Err ("state", "no open transaction"))

  (* ---------------------------------------------------------- feeding *)

  let on_payload t sid payload =
    if t.down then []
    else
      match Hashtbl.find_opt t.sessions sid with
      | None -> []
      | Some s when s.closed -> []
      | Some s ->
          let acc = ref [] in
          (match Protocol.command_of_payload payload with
          | Error msg -> push acc (Reply (sid, Protocol.Err ("proto", msg)))
          | Ok cmd ->
              if Queue.length s.pending >= t.max_pending then begin
                (* The per-session pending bound: the client kept sending
                   past a busy shard faster than admission allows. *)
                push acc
                  (Reply
                     ( sid,
                       Protocol.Err
                         ( "overflow",
                           Printf.sprintf "more than %d queued command(s)"
                             t.max_pending ) ));
                s.closed <- true;
                push acc (Close sid)
              end
              else begin
                Queue.add cmd s.pending;
                process_session t s acc
              end);
          List.rev !acc

  let disconnect t sid =
    match Hashtbl.find_opt t.sessions sid with
    | None -> []
    | Some s ->
        s.closed <- true;
        Hashtbl.remove t.sessions sid;
        let shard = t.shards.(s.shard) in
        let acc = ref [] in
        if shard.owner = Some sid then begin
          Engine.abort (Interp.engine shard.interp);
          release_shard t shard acc
        end;
        List.rev !acc

  let shutdown t =
    if not t.down then begin
      t.down <- true;
      Array.iter
        (fun shard ->
          (match shard.owner with
          | Some _ ->
              Engine.abort (Interp.engine shard.interp);
              shard.owner <- None
          | None -> ());
          match shard.journal with
          | Some j -> Journal.close j
          | None -> ())
        t.shards;
      Hashtbl.reset t.sessions
    end
end
