(* Session management: per-connection sessions multiplexed onto N
   independent engine shards, executed either inline (single-reactor
   mode) or on worker domains (one per shard by default).

   The engine is single-threaded and transactional, so concurrency comes
   from partitioning, not sharing: [--engines N] creates N ordinary
   engines (each wrapped in the script interpreter, each with its own
   journal) and a session is pinned to the shard its key hashes to
   (FNV-1a over the full key — a client-supplied HELLO key when given,
   the decimal session id otherwise).  Within a shard, transactions
   serialize: the first LINE of a session acquires the shard,
   COMMIT/ABORT release it, and engine-bound commands of other sessions
   queue FIFO until then.  Queued sessions are reported [blocked] so the
   reactor stops reading from them — the queue bound plus that read-stop
   is the admission control of the protocol.

   With [domains = 0] every state transition is synchronous and
   single-threaded, exactly as above: the reactor calls in with one
   decoded payload at a time and gets back the list of replies (possibly
   for *other* sessions: releasing a shard answers its waiters) to write
   out.

   With [domains = M > 0] the engines move off the reactor: shard [i]
   belongs to worker domain [i mod M], commands travel through a bounded
   per-worker mailbox, and replies come back through a per-worker
   completion queue that the reactor drains from [pump] (a self-pipe
   waker interrupts its select).  The ownership and waiter bookkeeping
   stays on the reactor and is updated *eagerly at submit time* — a
   COMMIT releases its shard the moment it is enqueued — which is sound
   because the per-worker mailbox is FIFO: a waiter's LINE enqueued
   after the COMMIT also executes after it.  Reply order per session is
   preserved by counting in-flight jobs: shard-bound commands pipeline
   FIFO through the one worker the session maps to, and reactor-answered
   commands (HELLO, PING, state errors, QUIT) wait until nothing is in
   flight so their replies cannot overtake. *)

open Chimera_event
open Chimera_rules
open Chimera_lang
module Mailbox = Chimera_util.Mailbox
module Fnv = Chimera_util.Fnv

module Manager = struct
  type event =
    | Reply of int * Protocol.reply
    | Close of int
    | Committed of { sid : int; shard : int; seq : int; reply : Protocol.reply }
        (** a successful COMMIT on a journaled shard: [seq] is the shard's
            commit sequence after the marker.  The reactor may park the
            reply until replication followers acknowledge [seq]
            (semi-synchronous replication); without followers it sends
            the reply immediately. *)
    | Notify of {
        sid : int;
        sub : int;
        binary : bool;
        at : int;
        bindings : (string * string) list list;
      }
        (** a committed activation of [sid]'s subscription [sub] — the
            committing session and the subscriber are in general
            different sessions of the same shard.  Emitted before the
            commit's own Reply/Committed event, so a subscriber that is
            also the committer sees its notifies first.  The reactor
            frames it (text or binary per the subscription) onto the
            connection's bounded notify queue. *)

  (* One queued unit of session input: a parsed text command, or a raw
     binary EVENT/BATCH payload.  Binary payloads stay undecoded here —
     the whole point of the binary path is that the per-record work
     happens on the shard's worker domain, not the reactor; the reactor
     only runs the O(1) shape check before acquiring the shard. *)
  type input = Cmd of Protocol.command | Events of string

  (* One live subscription: the engine rule it registered (named
     [sub.<sid>.<id>], which is what routes activations back) and the
     NOTIFY encoding the client asked for. *)
  type sub_entry = { sub_rule : string; sub_bin : bool }

  type session = {
    id : int;
    mutable shard : int;  (** re-pinned by a HELLO session key *)
    mutable greeted : bool;
    pending : input Queue.t;
    mutable waiting : bool;  (** enqueued in its shard's waiter queue *)
    mutable closed : bool;
    mutable inflight : int;  (** jobs submitted to a worker, not yet completed *)
    mutable etypes : Event_type.t option array;
        (** the session's interned etype table, indexed by the ids binary
            records carry; announced by ETYPE.  Replaced wholesale on
            every change (copy-on-write), so a snapshot shipped with an
            in-flight job is immutable and safe to share with a worker
            domain *)
    subs : (int, sub_entry) Hashtbl.t;
        (** the connection's subscription registry, updated eagerly at
            SUB submit (so pipelined duplicates and in-flight defines are
            visible) and pruned at UNSUB/failed-SUB completion (so
            notifies from commits ahead of the UNSUB still route) *)
  }

  type shard = {
    idx : int;
    mutable interp : Interp.t;  (** replaced wholesale by a standby reset *)
    mutable journal : Journal.t option;  (** attached at promotion on a standby *)
    mutable owner : int option;  (** session id holding the open tx *)
    waiters : int Queue.t;
    executed : string list ref;  (** execution-listener accumulator, newest first *)
    mutable dropped_subs : (int * int * string) list;
        (** [(sid, sub, rule)] of disconnected sessions' subscriptions,
            undefined at the shard's next transaction boundary (an
            undefine inside another session's open transaction would
            move its savepoint); newest first *)
    (* Standby (replication follower) state; inert on a primary. *)
    mutable repl_sink : Journal.Sink.t option;
        (** the local byte-for-byte copy of the primary's segment *)
    mutable repl_pending : Journal.entry list;
        (** records since the last commit/abort marker, newest first *)
    mutable repl_seq : int;  (** last commit sequence applied *)
    mutable repl_head : int;  (** primary's commit sequence, last reported *)
  }

  (* What a worker domain executes.  LINE text is parsed on the reactor
     (a parse error never acquires the shard, and never touches the
     engine), so the job carries statements, not text. *)
  type job =
    | Run_line of { sid : int; shard : int; statements : Ast.statement list }
    | Run_event of {
        sid : int;
        shard : int;
        etype : Event_type.t;
        oid : int;
      }  (** the text EVENT verb, resolved on the reactor *)
    | Run_events of {
        sid : int;
        shard : int;
        payload : string;
        etypes : Event_type.t option array;
            (** the session's table at submit time — an immutable
                snapshot, so an ETYPE later in the pipeline cannot
                retroactively rebind ids of frames already in flight *)
      }  (** a raw binary EVENT/BATCH payload, decoded on the worker *)
    | Run_commit of { sid : int; shard : int }
    | Run_abort of { sid : int; shard : int; quiet : bool }
    | Run_stats of { sid : int; shard : int; note : string }
    | Run_sub of { sid : int; shard : int; sub : int; spec : Rule.spec }
        (** define + watch the subscription's rule; the spec was parsed
            and validated on the reactor *)
    | Run_unsub of {
        sid : int;
        shard : int;
        sub : int;
        rule : string;
        quiet : bool;  (** disconnect cleanup: no reply *)
      }

  type completion = {
    done_sid : int;
    done_reply : Protocol.reply option;
    done_commit : (int * int) option;
        (** [(shard, seq)] when the job was a successful journaled COMMIT *)
    done_notifies : Engine.activation list;
        (** committed activations of watched rules this COMMIT made
            deliverable, in commit order *)
    done_sub_failed : int option;
        (** the engine refused this Run_sub: the reactor rolls back the
            eager registry entry *)
    done_unsub : int option;
        (** this Run_unsub finished: the reactor drops the registry
            entry now (not at submit), so earlier commits' notifies
            still routed *)
  }

  let completion ?reply ?commit ?(notifies = []) ?sub_failed ?unsub sid =
    {
      done_sid = sid;
      done_reply = reply;
      done_commit = commit;
      done_notifies = notifies;
      done_sub_failed = sub_failed;
      done_unsub = unsub;
    }

  type worker = {
    w_index : int;
    w_cmds : job Mailbox.t;
    w_out : completion Mailbox.t;
    w_deferred : job Queue.t;
        (** reactor-side overflow, flushed into [w_cmds] ahead of new
            submissions so the per-worker FIFO order holds *)
    mutable w_domain : unit Domain.t option;
  }

  type runtime =
    | Inline
    | Threaded of {
        n : int;  (** worker count; shard [i] belongs to worker [i mod n] *)
        workers : worker array;
        waker : Mailbox.Waker.waker;
      }

  type t = {
    engines : int;
    shards : shard array;
    sessions : (int, session) Hashtbl.t;
    mutable next_sid : int;
    max_pending : int;
    extra_stats : (unit -> string) option;
    mutable down : bool;
    runtime : runtime;
    mutable standby_mode : bool;
        (** a replication follower: writes are refused, records shipped
            from a primary apply through {!repl_apply}, {!promote} flips
            it to an ordinary primary *)
    fsync : Journal.sync_policy;
    boot_script : string option;  (** kept for standby shard resets *)
    checkpoint_every : int option;
        (** commits between engine checkpoints (journaled shards);
            with [checkpoint_interval] also [None], the legacy
            compact/rotate behaviour applies *)
    checkpoint_interval : float option;
        (** seconds between engine checkpoints (checked at commit
            boundaries); combinable with [checkpoint_every] — whichever
            cadence is due first fires *)
    gc_floors : int Atomic.t array;
        (** per-shard replication ack floor, written by the reactor
            ({!set_gc_floor}) and read by the engine's GC callback on the
            shard's worker domain; [max_int] = no follower pins
            anything *)
    boot_seqs : int array;
        (** each shard's journal commit sequence right after boot, read
            before any worker domain spawns (the reactor's race-free
            baseline for replication head tracking) *)
  }

  (* Commands queued per worker mailbox; sized so a full complement of
     pipelining sessions rarely defers, without unbounded buffering. *)
  let mailbox_capacity = 1024

  (* ------------------------------------------------------------ setup *)

  let rec mkdir_p path =
    if path = "" || path = "." || path = "/" || Sys.file_exists path then Ok ()
    else
      let parent = Filename.dirname path in
      let ( let* ) = Result.bind in
      let* () = if parent = path then Ok () else mkdir_p parent in
      match Unix.mkdir path 0o755 with
      | () -> Ok ()
      | exception Unix.Unix_error (Unix.EEXIST, _, _) -> Ok ()
      | exception Unix.Unix_error (e, _, _) ->
          Error
            (Printf.sprintf "cannot create journal directory %s: %s" path
               (Unix.error_message e))

  (* A standby shard bootstraps the way [chimera recover] does: only the
     boot script's *definitions* run — classes, triggers and timers are
     program text, not journaled state — while the boot transaction's
     operations arrive from the primary's journal stream and replay like
     every other record.  Running the full script here would apply those
     operations twice. *)
  let run_boot_definitions interp src =
    match Parser.parse src with
    | Error msg -> Error msg
    | Ok statements ->
        let definitions =
          List.filter
            (function
              | Ast.Define_class _ | Ast.Define_trigger _ | Ast.Define_timer _
                ->
                  true
              | _ -> false)
            statements
        in
        List.fold_left
          (fun acc stmt ->
            match acc with
            | Error _ -> acc
            | Ok () -> Interp.run_statement interp stmt)
          (Ok ()) definitions

  let shard_journal_path dir idx =
    Filename.concat dir (Printf.sprintf "shard-%d.journal" idx)

  let make_shard ~standby ~journal_dir ~fsync ~boot_script ~checkpoint_every
      ~checkpoint_interval ~gc_floor idx =
    let ( let* ) = Result.bind in
    let interp = Interp.create () in
    let executed = ref [] in
    Engine.set_on_execution (Interp.engine interp)
      (fun name -> executed := name :: !executed);
    let finish ~journal ~repl_sink =
      {
        idx;
        interp;
        journal;
        owner = None;
        waiters = Queue.create ();
        executed;
        dropped_subs = [];
        repl_sink;
        repl_pending = [];
        repl_seq = 0;
        repl_head = 0;
      }
    in
    if standby then
      (* No engine-attached journal: the local segment copy is a raw
         [Sink] fed by the replication stream; promotion reopens it for
         appending and attaches it. *)
      let* repl_sink =
        match journal_dir with
        | None -> Ok None
        | Some dir -> (
            let path = shard_journal_path dir idx in
            match Journal.Sink.create ~sync:fsync ~path () with
            | sink -> Ok (Some sink)
            | exception Sys_error msg ->
                Error (Printf.sprintf "cannot open journal %s: %s" path msg))
      in
      let* () =
        match boot_script with
        | None -> Ok ()
        | Some src -> (
            match run_boot_definitions interp src with
            | Ok () -> Ok ()
            | Error msg ->
                Error (Printf.sprintf "boot script (shard %d): %s" idx msg))
      in
      Ok (finish ~journal:None ~repl_sink)
    else
      let* journal =
        match journal_dir with
        | None -> Ok None
        | Some dir -> (
            let path = shard_journal_path dir idx in
            match Journal.create ~sync:fsync ~path () with
            | j ->
                Engine.set_journal (Interp.engine interp) j;
                Ok (Some j)
            | exception Sys_error msg ->
                Error (Printf.sprintf "cannot open journal %s: %s" path msg))
      in
      let* () =
        match boot_script with
        | None -> Ok ()
        | Some src -> (
            match Interp.run_string interp src with
            | Error msg ->
                Error (Printf.sprintf "boot script (shard %d): %s" idx msg)
            | Ok () -> (
                (* Shards open for traffic on a committed, quiescent state
                   whatever the script's trailing statement was. *)
                Interp.clear_output interp;
                match Engine.commit (Interp.engine interp) with
                | Ok () -> Ok ()
                | Error e ->
                    Error
                      (Fmt.str "boot script commit (shard %d): %a" idx
                         Engine.pp_error e)))
      in
      (* Bounded state: periodic checkpoints + segment GC on journaled
         shards, gated by the replication ack floor the reactor feeds.
         Count cadence, time cadence, or both — first due fires. *)
      (match (journal, checkpoint_every, checkpoint_interval) with
      | Some _, None, None | None, _, _ -> ()
      | Some _, every_commits, every_seconds ->
          Engine.enable_checkpoints (Interp.engine interp) ?every_commits
            ?every_seconds ~gc_floor ());
      Ok (finish ~journal ~repl_sink:None)

  (* ----------------------------------------------------- shard pinning *)

  (* FNV-1a over the full key.  The previous scheme — [Hashtbl.hash sid]
     over the dense id sequence — looks fine in aggregate but skews badly
     over the window of ids a batch of concurrent clients actually holds
     (64 consecutive ids over 4 shards land up to 4x apart); hashing the
     decimal string byte-by-byte spreads dense and common-prefixed keys
     alike. *)
  let pin t key = Fnv.hash key mod t.engines

  (* ------------------------------------------------- worker execution *)

  (* Everything below [run_line]/[do_commit]/[do_stats] touches only the
     shard's own interp/journal/executed cell: exclusive access is by
     construction — inline mode runs them on the reactor, threaded mode
     on the one worker domain the shard maps to. *)

  let trim_trailing_newlines s =
    let n = ref (String.length s) in
    while !n > 0 && (s.[!n - 1] = '\n' || s.[!n - 1] = '\r') do
      decr n
    done;
    String.sub s 0 !n

  (* Runs the statements of one LINE as a unit; the engine rolls a failed
     block back by itself, and the reply is either the executed-rule list
     or the inspection output the statements produced. *)
  let run_line shard statements =
    let interp = shard.interp in
    shard.executed := [];
    Interp.clear_output interp;
    let result =
      List.fold_left
        (fun acc stmt ->
          match acc with
          | Error _ -> acc
          | Ok () -> Interp.run_statement interp stmt)
        (Ok ()) statements
    in
    match result with
    | Error msg -> Protocol.Err ("engine", msg)
    | Ok () -> (
        match List.rev !(shard.executed) with
        | [] -> Protocol.Ok_ (trim_trailing_newlines (Interp.output interp))
        | rules -> Protocol.Triggered rules)

  (* Besides the reply, a successful commit on a journaled shard reports
     the commit sequence its marker carries — what a replication follower
     must acknowledge before the reply may be released under
     semi-synchronous replication. *)
  let do_commit shard =
    let engine = Interp.engine shard.interp in
    shard.executed := [];
    match Interp.run_statement shard.interp Ast.Commit with
    | Ok () ->
        let reply =
          match List.rev !(shard.executed) with
          | [] -> Protocol.Ok_ ""
          | rules -> Protocol.Triggered rules
        in
        (reply, Option.map Journal.commit_seq shard.journal)
    | Error msg ->
        (* A failed commit (e.g. a non-terminating deferred cascade)
           leaves no committed state to hand over: abort, so the shard
           frees in a defined state. *)
        Engine.abort engine;
        (Protocol.Err ("engine", msg ^ " (transaction aborted)"), None)

  let do_abort shard = Engine.abort (Interp.engine shard.interp)

  let executed_reply shard =
    match List.rev !(shard.executed) with
    | [] -> Protocol.Ok_ ""
    | rules -> Protocol.Triggered rules

  (* One external event occurrence as its own engine line (the text
     EVENT verb, etype resolved on the reactor). *)
  let run_event shard ~etype ~oid =
    shard.executed := [];
    match
      Engine.ingest_event (Interp.engine shard.interp) ~etype
        ~oid:(Chimera_util.Ident.Oid.of_int oid)
    with
    | Ok () -> executed_reply shard
    | Error e -> Protocol.Err ("engine", Fmt.str "%a" Engine.pp_error e)

  (* Decodes and applies one binary EVENT/BATCH payload: the per-record
     loop — field validation, etype-id resolution, engine ingestion —
     runs here, on the shard's worker domain, not the reactor.  A BATCH
     is exactly that many single-event lines with ONE reply: the rules
     every record executed, in order, or the first error — preceding
     records stay applied and the transaction stays open (the client
     decides between COMMIT and ABORT).  The wire timestamp is the
     client's clock, carried for tooling; the engine assigns its own
     instants, so replicas and replays agree regardless of client
     clocks. *)
  let run_events shard ~etypes payload =
    shard.executed := [];
    match Protocol.decode_binary payload with
    | Error msg -> Protocol.Err ("proto", msg)
    | Ok records ->
        let engine = Interp.engine shard.interp in
        let rec apply = function
          | [] -> executed_reply shard
          | { Protocol.etype_id; oid; timestamp = _ } :: rest -> (
              let etype =
                if etype_id < Array.length etypes then etypes.(etype_id)
                else None
              in
              match etype with
              | None ->
                  Protocol.Err
                    ( "proto",
                      Printf.sprintf
                        "unknown etype id %d (announce it with ETYPE)" etype_id
                    )
              | Some etype -> (
                  match
                    Engine.ingest_event engine ~etype
                      ~oid:(Chimera_util.Ident.Oid.of_int oid)
                  with
                  | Ok () -> apply rest
                  | Error e ->
                      Protocol.Err ("engine", Fmt.str "%a" Engine.pp_error e)))
        in
        apply records

  (* [note] is the ownership annotation, computed where the ownership
     bookkeeping lives (the reactor) and carried into the job. *)
  let stats_text t ~sid ~shard_idx ~note =
    let shard = t.shards.(shard_idx) in
    let engine = Interp.engine shard.interp in
    let st = Engine.statistics engine in
    let buf = Buffer.create 256 in
    Buffer.add_string buf
      (Printf.sprintf
         "session %d shard %d/%d%s\n\
          engine: %d line(s), %d event(s), %d consideration(s), %d \
          execution(s), %d abort(s)\n\
          memo: %d hit(s), %d miss(es), %d node(s)"
         sid shard_idx t.engines note st.Engine.lines st.Engine.events
         st.Engine.considerations st.Engine.executions st.Engine.aborts
         st.Engine.memo_hits st.Engine.memo_misses st.Engine.memo_nodes);
    (match shard.journal with
    | None -> ()
    | Some j ->
        let c = Journal.counters j in
        Buffer.add_string buf
          (Printf.sprintf
             "\njournal: %d record(s), %d commit(s), %d fsync(s), %d \
              rotation(s) -> %s"
             c.Journal.appends c.Journal.commits c.Journal.syncs
             c.Journal.rotations (Journal.path j)));
    (* The journal-GC floor and the replication ack floor gating it —
       ROADMAP's "unobservable floor": "none" until a checkpoint cycle
       ran (resp. while no follower pins anything). *)
    (if Engine.checkpoint_path engine <> None then
       let floor_text =
         match Engine.gc_floor engine with
         | Some floor -> string_of_int floor
         | None -> "none"
       in
       let ack = Atomic.get t.gc_floors.(shard_idx) in
       let ack_text = if ack = max_int then "none" else string_of_int ack in
       Buffer.add_string buf
         (Printf.sprintf "\nbounds: gc.floor=%s, repl.ack_floor=%s" floor_text
            ack_text));
    if t.standby_mode then begin
      Buffer.add_string buf
        (Printf.sprintf "\nrepl: standby, applied seq %d, primary seq %d"
           shard.repl_seq shard.repl_head);
      match shard.repl_sink with
      | None -> ()
      | Some sink ->
          Buffer.add_string buf
            (Printf.sprintf " -> %s (%d byte(s))" (Journal.Sink.path sink)
               (Journal.Sink.bytes_written sink))
    end;
    (match t.extra_stats with
    | None -> ()
    | Some f ->
        let extra = f () in
        if extra <> "" then begin
          Buffer.add_char buf '\n';
          Buffer.add_string buf extra
        end);
    Buffer.contents buf

  let exec_job t = function
    | Run_line { sid; shard; statements } ->
        completion sid ~reply:(run_line t.shards.(shard) statements)
    | Run_event { sid; shard; etype; oid } ->
        completion sid ~reply:(run_event t.shards.(shard) ~etype ~oid)
    | Run_events { sid; shard; payload; etypes } ->
        completion sid ~reply:(run_events t.shards.(shard) ~etypes payload)
    | Run_commit { sid; shard } ->
        let reply, seq = do_commit t.shards.(shard) in
        (* Drained right after the commit point: the activations this
           transaction (and no aborted one) made deliverable, in commit
           order — the reactor routes them before the commit's reply. *)
        let notifies =
          Engine.drain_activations (Interp.engine t.shards.(shard).interp)
        in
        let c = completion sid ~reply ~notifies in
        { c with done_commit = Option.map (fun seq -> (shard, seq)) seq }
    | Run_abort { sid; shard; quiet } ->
        do_abort t.shards.(shard);
        if quiet then completion sid
        else completion sid ~reply:(Protocol.Ok_ "aborted")
    | Run_stats { sid; shard; note } ->
        completion sid ~reply:(Protocol.Ok_ (stats_text t ~sid ~shard_idx:shard ~note))
    | Run_sub { sid; shard; sub; spec } -> (
        let engine = Interp.engine t.shards.(shard).interp in
        match Engine.define_dynamic engine spec with
        | Error (`Rule_error msg) ->
            completion sid ~reply:(Protocol.Err ("engine", msg)) ~sub_failed:sub
        | Ok _ ->
            Engine.watch_rule engine spec.Rule.name;
            completion sid ~reply:(Protocol.Ok_ ""))
    | Run_unsub { sid; shard; sub; rule; quiet } ->
        let engine = Interp.engine t.shards.(shard).interp in
        Engine.unwatch_rule engine rule;
        (match Engine.undefine engine rule with
        | Ok () -> ()
        | Error (`Rule_error _) -> ());
        let c = if quiet then completion sid else completion sid ~reply:(Protocol.Ok_ "") in
        { c with done_unsub = Some sub }

  let worker_loop t ~n ~waker w =
    let rec loop () =
      match Mailbox.pop w.w_cmds with
      | None -> ()  (* closed and drained: shutdown *)
      | Some job ->
          let c = exec_job t job in
          ignore (Mailbox.push w.w_out c);
          Mailbox.Waker.wake waker;
          loop ()
    in
    loop ();
    (* The worker owns its shards' journals from spawn to exit; closing
       here happens-before the reactor's [Domain.join]. *)
    Array.iteri
      (fun i shard ->
        if i mod n = w.w_index then Option.iter Journal.close shard.journal)
      t.shards;
    Mailbox.Waker.wake waker

  (* ---------------------------------------------------------- create *)

  let create ~engines ?(domains = 0) ?journal_dir ?(fsync = Journal.Per_commit)
      ?boot_script ?(max_pending = 64) ?extra_stats ?(standby = false)
      ?checkpoint_every ?checkpoint_interval () =
    let ( let* ) = Result.bind in
    if engines <= 0 then Error "engines must be positive"
    else if domains < 0 then Error "domains must be non-negative"
    else if (match checkpoint_every with Some n -> n <= 0 | None -> false)
    then Error "checkpoint interval must be positive"
    else if
      match checkpoint_interval with Some s -> s <= 0.0 | None -> false
    then Error "checkpoint interval must be positive"
    else
      let* () =
        match journal_dir with None -> Ok () | Some dir -> mkdir_p dir
      in
      let gc_floors = Array.init engines (fun _ -> Atomic.make max_int) in
      let* shards =
        let rec build acc idx =
          if idx >= engines then Ok (List.rev acc)
          else
            let* shard =
              make_shard ~standby ~journal_dir ~fsync ~boot_script
                ~checkpoint_every ~checkpoint_interval
                ~gc_floor:(fun () -> Atomic.get gc_floors.(idx))
                idx
            in
            build (shard :: acc) (idx + 1)
        in
        build [] 0
      in
      let runtime =
        (* A standby applies the replication stream from the reactor
           thread, so it always runs inline; the worker domains start at
           promotion time in a later revision — for now a promoted
           follower keeps serving inline. *)
        if domains = 0 || standby then Inline
        else
          let n = min domains engines in
          Threaded
            {
              n;
              waker = Mailbox.Waker.create ();
              workers =
                Array.init n (fun i ->
                    {
                      w_index = i;
                      w_cmds = Mailbox.create mailbox_capacity;
                      w_out = Mailbox.create mailbox_capacity;
                      w_deferred = Queue.create ();
                      w_domain = None;
                    });
            }
      in
      let shards = Array.of_list shards in
      let boot_seqs =
        Array.map
          (fun shard ->
            match shard.journal with Some j -> Journal.commit_seq j | None -> 0)
          shards
      in
      let t =
        {
          engines;
          shards;
          sessions = Hashtbl.create 64;
          next_sid = 1;
          max_pending;
          extra_stats;
          down = false;
          runtime;
          standby_mode = standby;
          fsync;
          boot_script;
          checkpoint_every;
          checkpoint_interval;
          gc_floors;
          boot_seqs;
        }
      in
      (match t.runtime with
      | Inline -> ()
      | Threaded { n; workers; waker } ->
          Array.iter
            (fun w ->
              w.w_domain <- Some (Domain.spawn (fun () -> worker_loop t ~n ~waker w)))
            workers);
      Ok t

  let engines t = t.engines
  let domains t = match t.runtime with Inline -> 0 | Threaded { n; _ } -> n

  (* The reactor publishes each shard's replication ack floor (the lowest
     commit sequence every attached follower has durably acked;
     [max_int] without followers): segment GC on the shard's worker
     domain reads it through the engine's [gc_floor] callback. *)
  let set_gc_floor t ~shard floor = Atomic.set t.gc_floors.(shard) floor
  let standby t = t.standby_mode
  let boot_seqs t = Array.copy t.boot_seqs
  let session_count t = Hashtbl.length t.sessions

  let wakeup_fd t =
    match t.runtime with
    | Inline -> None
    | Threaded { waker; _ } -> Some (Mailbox.Waker.fd waker)

  let open_session t =
    let sid = t.next_sid in
    t.next_sid <- sid + 1;
    Hashtbl.replace t.sessions sid
      {
        id = sid;
        shard = pin t (string_of_int sid);
        greeted = false;
        pending = Queue.create ();
        waiting = false;
        closed = false;
        inflight = 0;
        etypes = [||];
        subs = Hashtbl.create 4;
      };
    sid

  let shard_of_session t sid =
    match Hashtbl.find_opt t.sessions sid with
    | Some s -> s.shard
    | None -> pin t (string_of_int sid)

  let in_transaction t sid =
    match Hashtbl.find_opt t.sessions sid with
    | Some s -> t.shards.(s.shard).owner = Some sid
    | None -> false

  let blocked t sid =
    match Hashtbl.find_opt t.sessions sid with
    | Some s -> s.waiting || not (Queue.is_empty s.pending)
    | None -> false

  let idle t sid =
    match Hashtbl.find_opt t.sessions sid with
    | None -> true
    | Some s -> Queue.is_empty s.pending && s.inflight = 0

  let journal_paths t =
    Array.to_list t.shards
    |> List.filter_map (fun shard ->
           match shard.journal with
           | Some j -> Some (Journal.path j)
           | None -> Option.map Journal.Sink.path shard.repl_sink)

  (* ------------------------------------------------------- submission *)

  let worker_of t shard_idx =
    match t.runtime with
    | Inline -> invalid_arg "Session.Manager: no workers in inline mode"
    | Threaded { n; workers; _ } -> workers.(shard_idx mod n)

  (* The reactor never blocks: a push refused by a full mailbox lands in
     the worker's deferred queue instead, flushed (in order, ahead of
     anything newer) by [pump] as completions free slots. *)
  let submit_job t shard_idx job =
    let w = worker_of t shard_idx in
    if not (Queue.is_empty w.w_deferred && Mailbox.try_push w.w_cmds job) then
      Queue.add job w.w_deferred

  let submit t s job =
    s.inflight <- s.inflight + 1;
    submit_job t s.shard job

  let flush_deferred w =
    let rec go () =
      match Queue.peek_opt w.w_deferred with
      | Some job when Mailbox.try_push w.w_cmds job ->
          ignore (Queue.pop w.w_deferred);
          go ()
      | Some _ | None -> ()
    in
    go ()

  (* -------------------------------------------------------- execution *)

  let push acc e = acc := e :: !acc

  let requires_shard = function
    | Events _
    | Cmd
        ( Protocol.Line _ | Protocol.Event _ | Protocol.Commit | Protocol.Abort
        | Protocol.Sub _ | Protocol.Unsub _ ) ->
        true
    | Cmd
        ( Protocol.Hello _ | Protocol.Etype _ | Protocol.Stats
        | Protocol.Ping _ | Protocol.Quit | Protocol.Repl_hello _
        | Protocol.Repl_ack _ | Protocol.Promote ) ->
        false

  (* Statements a LINE may carry: anything but [commit] — the transaction
     boundary is a protocol verb, so the session manager always knows who
     holds the shard. *)
  let line_statements text =
    match Parser.parse text with
    | Error msg -> Error ("parse", msg)
    | Ok statements ->
        if List.exists (function Ast.Commit -> true | _ -> false) statements
        then Error ("proto", "commit inside LINE: use the COMMIT verb")
        else Ok statements

  (* ------------------------------------------------------ subscriptions *)

  (* Subscription rules are named [sub.<sid>.<id>] — globally unique
     (session ids are), and the name alone routes a committed activation
     back to its connection, whichever session's commit drained it. *)
  let sub_rule_name ~sid ~sub = Printf.sprintf "sub.%d.%d" sid sub

  let parse_sub_rule_name name =
    match String.split_on_char '.' name with
    | [ "sub"; sid_text; sub_text ] -> (
        match (int_of_string_opt sid_text, int_of_string_opt sub_text) with
        | Some sid, Some sub -> Some (sid, sub)
        | _ -> None)
    | _ -> None

  (* The SUB payload parses on the reactor — a parse error never reaches
     the shard — into an ordinary rule spec: immediate coupling (the
     activation instant is the block that completed the pattern, not the
     commit), consuming (each notify consumes the events that produced
     it — re-delivery would be a phantom), empty action (detection IS the
     reaction; it cannot fail, so buffering at consideration is safe).
     [Rule.make] inside the engine derives the V(E) relevance filter
     exactly as for boot-script triggers. *)
  let sub_spec ~sid ~sub text =
    match Parser.parse_subscription text with
    | Error msg -> Error msg
    | Ok (event, condition) ->
        Ok
          {
            Rule.name = sub_rule_name ~sid ~sub;
            target = None;
            event;
            condition;
            action = [];
            coupling = Rule.Immediate;
            consumption = Rule.Consuming;
            priority = 0;
          }

  let subscription_count t =
    Hashtbl.fold (fun _ s acc -> acc + Hashtbl.length s.subs) t.sessions 0

  (* Routes one committed activation to its subscriber, by rule name.  A
     missing session or registry entry means the subscriber disconnected
     (or unsubscribed) after the commit was submitted — nobody is owed
     the notify, it drops here. *)
  let route_activation t acc (a : Engine.activation) =
    match parse_sub_rule_name a.Engine.act_rule with
    | None -> ()
    | Some (sid, sub) -> (
        match Hashtbl.find_opt t.sessions sid with
        | None -> ()
        | Some s when s.closed -> ()
        | Some s -> (
            match Hashtbl.find_opt s.subs sub with
            | None -> ()
            | Some entry ->
                push acc
                  (Notify
                     {
                       sid;
                       sub;
                       binary = entry.sub_bin;
                       at = Chimera_util.Time.to_int a.Engine.act_at;
                       bindings = a.Engine.act_bindings;
                     })))

  (* HELLO argument: "<version>" or "<version> <session-key>".  A key,
     when present, re-pins the session by FNV-1a of the full key before
     any engine traffic — clients that mint related ids (dense counters,
     a common prefix) still spread evenly over the shards. *)
  let split_hello arg =
    match String.index_opt arg ' ' with
    | None -> (arg, "")
    | Some i ->
        ( String.sub arg 0 i,
          String.trim (String.sub arg (i + 1) (String.length arg - i - 1)) )

  (* ETYPE: pure session state on the reactor.  The table is replaced,
     never mutated in place, so snapshots shipped with in-flight jobs
     keep the binding they were submitted under.  Any event type the
     text grammar can name is internable — external events by bare name,
     operation events as "op(class)". *)
  let exec_etype s ~id ~name =
    match Event_type.of_string name with
    | Error msg -> Protocol.Err ("parse", msg)
    | Ok etype ->
        let len = Array.length s.etypes in
        let table =
          if id < len then Array.copy s.etypes
          else begin
            let grown = Array.make (id + 1) None in
            Array.blit s.etypes 0 grown 0 len;
            grown
          end
        in
        table.(id) <- Some etype;
        s.etypes <- table;
        Protocol.Ok_ ""

  let greeting_note s shard =
    match shard.owner with
    | Some owner when owner = s.id -> " (transaction open)"
    | Some _ -> " (shard busy)"
    | None -> ""

  (* HELLO is pure reactor state in both modes. *)
  let exec_hello t s arg acc =
    let reply r = push acc (Reply (s.id, r)) in
    let version, key = split_hello arg in
    if s.greeted then reply (Protocol.Err ("state", "already greeted"))
    else if String.equal version Protocol.version then begin
      s.greeted <- true;
      if key <> "" then s.shard <- pin t key;
      (* [window] is the pipelining depth on offer: how many frames the
         client may keep in flight before the per-session pending bound
         (and the read-stop behind it) pushes back. *)
      reply
        (Protocol.Ok_
           (Printf.sprintf "%s features=%s window=%d" Protocol.version
              (String.concat "," Protocol.features)
              t.max_pending))
    end
    else begin
      reply
        (Protocol.Err
           ( "proto",
             Printf.sprintf "unsupported version %S; speak %s" version
               Protocol.version ));
      s.closed <- true;
      push acc (Close s.id)
    end

  let park s shard =
    if not s.waiting then begin
      s.waiting <- true;
      Queue.add s.id shard.waiters
    end

  (* Undefines the subscription rules of disconnected sessions, at a
     transaction boundary of their shard: called whenever the shard
     frees (and at disconnect time when it already is free). *)
  let flush_dropped t shard =
    match shard.dropped_subs with
    | [] -> ()
    | dropped ->
        shard.dropped_subs <- [];
        List.iter
          (fun (sid, sub, rule) ->
            match t.runtime with
            | Inline ->
                let engine = Interp.engine shard.interp in
                Engine.unwatch_rule engine rule;
                (match Engine.undefine engine rule with
                | Ok () -> ()
                | Error (`Rule_error _) -> ())
            | Threaded _ ->
                submit_job t shard.idx
                  (Run_unsub { sid; shard = shard.idx; sub; rule; quiet = true }))
          (List.rev dropped)

  let rec release_shard t shard acc =
    shard.owner <- None;
    flush_dropped t shard;
    drain_waiters t shard acc

  (* Wakes the next waiting sessions of a freed shard, FIFO; each woken
     session runs its queued commands until it blocks again (e.g. its
     LINE re-acquired the shard and its COMMIT is yet to come — then the
     queue simply continues) or empties. *)
  and drain_waiters t shard acc =
    if shard.owner = None && not (Queue.is_empty shard.waiters) then begin
      let sid = Queue.pop shard.waiters in
      (match Hashtbl.find_opt t.sessions sid with
      | Some s when not s.closed ->
          s.waiting <- false;
          process_session t s acc
      | Some _ | None -> ());
      drain_waiters t shard acc
    end

  and process_session t s acc =
    match t.runtime with
    | Inline -> process_inline t s acc
    | Threaded _ -> process_threaded t s acc

  and process_inline t s acc =
    if (not (Queue.is_empty s.pending)) && not s.closed then begin
      let shard = t.shards.(s.shard) in
      let busy =
        match shard.owner with Some owner -> owner <> s.id | None -> false
      in
      if requires_shard (Queue.peek s.pending) && busy then park s shard
      else begin
        exec_inline t s (Queue.pop s.pending) acc;
        process_inline t s acc
      end
    end

  and exec_inline t s input acc =
    let shard = t.shards.(s.shard) in
    let engine = Interp.engine shard.interp in
    let reply r = push acc (Reply (s.id, r)) in
    let owner_self () = shard.owner = Some s.id in
    match input with
    | Cmd (Protocol.Hello v) -> exec_hello t s v acc
    | Cmd (Protocol.Ping token) ->
        reply (Protocol.Ok_ (if token = "" then "pong" else "pong " ^ token))
    | Cmd Protocol.Stats ->
        reply
          (Protocol.Ok_
             (stats_text t ~sid:s.id ~shard_idx:s.shard
                ~note:(greeting_note s shard)))
    | Cmd Protocol.Quit ->
        (* Orderly close: an uncommitted transaction aborts before the
           shard passes to the next waiter. *)
        if owner_self () then begin
          Engine.abort engine;
          release_shard t shard acc
        end;
        reply (Protocol.Ok_ "bye");
        s.closed <- true;
        push acc (Close s.id)
    | Cmd (Protocol.Repl_hello _ | Protocol.Repl_ack _ | Protocol.Promote) ->
        (* Replication verbs never reach the session manager — the
           reactor intercepts them before dispatch; one slipping through
           means the caller is not a chimera server. *)
        reply (Protocol.Err ("proto", "replication verb outside a replication stream"))
    | Cmd
        ( Protocol.Line _ | Protocol.Etype _ | Protocol.Event _
        | Protocol.Commit | Protocol.Abort | Protocol.Sub _ | Protocol.Unsub _ )
    | Events _
      when not s.greeted ->
        reply (Protocol.Err ("proto", "HELLO required first"))
    | Cmd
        ( Protocol.Line _ | Protocol.Etype _ | Protocol.Event _
        | Protocol.Commit | Protocol.Abort | Protocol.Sub _ | Protocol.Unsub _ )
    | Events _
      when t.standby_mode ->
        reply
          (Protocol.Err
             ("standby", "server is a warm standby; writes go to the primary"))
    | Cmd (Protocol.Sub { id; binary; spec }) ->
        (* Subscription changes run at a transaction boundary only:
           [define_dynamic]/[undefine] refresh the savepoint, which
           would swallow part of an open transaction's rollback. *)
        if owner_self () then
          reply (Protocol.Err ("state", "SUB requires a closed transaction"))
        else if Hashtbl.mem s.subs id then
          reply
            (Protocol.Err
               ("state", Printf.sprintf "subscription %d already registered" id))
        else (
          match sub_spec ~sid:s.id ~sub:id spec with
          | Error msg -> reply (Protocol.Err ("parse", msg))
          | Ok rule_spec -> (
              match Engine.define_dynamic engine rule_spec with
              | Error (`Rule_error msg) -> reply (Protocol.Err ("engine", msg))
              | Ok _ ->
                  Engine.watch_rule engine rule_spec.Rule.name;
                  Hashtbl.replace s.subs id
                    { sub_rule = rule_spec.Rule.name; sub_bin = binary };
                  reply (Protocol.Ok_ "")))
    | Cmd (Protocol.Unsub { id }) -> (
        if owner_self () then
          reply (Protocol.Err ("state", "UNSUB requires a closed transaction"))
        else
          match Hashtbl.find_opt s.subs id with
          | None ->
              reply
                (Protocol.Err
                   ("state", Printf.sprintf "unknown subscription %d" id))
          | Some entry ->
              Hashtbl.remove s.subs id;
              Engine.unwatch_rule engine entry.sub_rule;
              (match Engine.undefine engine entry.sub_rule with
              | Ok () -> ()
              | Error (`Rule_error _) -> ());
              reply (Protocol.Ok_ ""))
    | Cmd (Protocol.Etype { id; name }) -> reply (exec_etype s ~id ~name)
    | Cmd (Protocol.Line text) -> (
        match line_statements text with
        | Error (code, msg) -> reply (Protocol.Err (code, msg))
        | Ok statements ->
            (* Acquire on first contact, hold across engine errors: the
               failed block was rolled back but the transaction is the
               client's to COMMIT or ABORT. *)
            shard.owner <- Some s.id;
            reply (run_line shard statements))
    | Cmd (Protocol.Event { etype; oid }) -> (
        match Event_type.of_string etype with
        | Error msg -> reply (Protocol.Err ("parse", msg))
        | Ok etype ->
            shard.owner <- Some s.id;
            reply (run_event shard ~etype ~oid))
    | Events payload -> (
        (* The shape check mirrors [line_statements]: a malformed frame
           never acquires the shard. *)
        match Protocol.check_binary payload with
        | Error msg -> reply (Protocol.Err ("proto", msg))
        | Ok _ ->
            shard.owner <- Some s.id;
            reply (run_events shard ~etypes:s.etypes payload))
    | Cmd Protocol.Commit ->
        if owner_self () then begin
          (let commit_reply, seq = do_commit shard in
           (* Notifies precede the commit's own reply: a subscriber that
              is also the committer observes its activations first. *)
           List.iter (route_activation t acc) (Engine.drain_activations engine);
           match seq with
           | Some seq ->
               push acc
                 (Committed { sid = s.id; shard = s.shard; seq; reply = commit_reply })
           | None -> reply commit_reply);
          release_shard t shard acc
        end
        else reply (Protocol.Err ("state", "no open transaction"))
    | Cmd Protocol.Abort ->
        if owner_self () then begin
          do_abort shard;
          release_shard t shard acc;
          reply (Protocol.Ok_ "aborted")
        end
        else reply (Protocol.Err ("state", "no open transaction"))

  (* The threaded step: examine (don't yet pop) the head command and
     either submit it to the session's worker, answer it from the
     reactor, or leave it queued.  Reactor answers wait for
     [inflight = 0] so they cannot overtake worker replies; shard
     commands park behind a busy shard exactly as in inline mode, so the
     two modes stay observably equivalent. *)
  and process_threaded t s acc =
    if (not s.closed) && (not s.waiting) && not (Queue.is_empty s.pending)
    then begin
      let shard = t.shards.(s.shard) in
      let busy =
        match shard.owner with Some owner -> owner <> s.id | None -> false
      in
      let cmd = Queue.peek s.pending in
      (* Run a reactor-side answer, gated on an empty pipeline. *)
      let inline_now f =
        if s.inflight = 0 then begin
          ignore (Queue.pop s.pending);
          f ();
          process_threaded t s acc
        end
      in
      let submit_now job =
        ignore (Queue.pop s.pending);
        submit t s job;
        process_threaded t s acc
      in
      if requires_shard cmd && busy then park s shard
      else
        match cmd with
        | Cmd (Protocol.Hello v) -> inline_now (fun () -> exec_hello t s v acc)
        | Cmd (Protocol.Ping token) ->
            inline_now (fun () ->
                push acc
                  (Reply
                     ( s.id,
                       Protocol.Ok_
                         (if token = "" then "pong" else "pong " ^ token) )))
        | Cmd Protocol.Stats ->
            submit_now
              (Run_stats
                 { sid = s.id; shard = s.shard; note = greeting_note s shard })
        | Cmd Protocol.Quit ->
            inline_now (fun () ->
                if shard.owner = Some s.id then begin
                  submit t s
                    (Run_abort { sid = s.id; shard = s.shard; quiet = true });
                  release_shard t shard acc
                end;
                push acc (Reply (s.id, Protocol.Ok_ "bye"));
                s.closed <- true;
                push acc (Close s.id))
        | Cmd (Protocol.Repl_hello _ | Protocol.Repl_ack _ | Protocol.Promote)
          ->
            (* Reactor-intercepted before dispatch; see [exec_inline]. *)
            inline_now (fun () ->
                push acc
                  (Reply
                     ( s.id,
                       Protocol.Err
                         ( "proto",
                           "replication verb outside a replication stream" ) )))
        | Cmd
            ( Protocol.Line _ | Protocol.Etype _ | Protocol.Event _
            | Protocol.Commit | Protocol.Abort | Protocol.Sub _
            | Protocol.Unsub _ )
        | Events _
          when not s.greeted ->
            inline_now (fun () ->
                push acc
                  (Reply (s.id, Protocol.Err ("proto", "HELLO required first"))))
        | Cmd
            ( Protocol.Line _ | Protocol.Etype _ | Protocol.Event _
            | Protocol.Commit | Protocol.Abort | Protocol.Sub _
            | Protocol.Unsub _ )
        | Events _
          when t.standby_mode ->
            inline_now (fun () ->
                push acc
                  (Reply
                     ( s.id,
                       Protocol.Err
                         ( "standby",
                           "server is a warm standby; writes go to the primary"
                         ) )))
        | Cmd (Protocol.Sub { id; binary; spec }) ->
            (* Same boundary/duplicate checks as inline; the registry
               entry is written eagerly at submit (like shard ownership),
               so a pipelined duplicate SUB or an immediate UNSUB sees
               the in-flight define.  A failed define rolls it back at
               completion ([done_sub_failed]). *)
            if shard.owner = Some s.id then
              inline_now (fun () ->
                  push acc
                    (Reply
                       ( s.id,
                         Protocol.Err
                           ("state", "SUB requires a closed transaction") )))
            else if Hashtbl.mem s.subs id then
              inline_now (fun () ->
                  push acc
                    (Reply
                       ( s.id,
                         Protocol.Err
                           ( "state",
                             Printf.sprintf "subscription %d already registered"
                               id ) )))
            else (
              match sub_spec ~sid:s.id ~sub:id spec with
              | Error msg ->
                  inline_now (fun () ->
                      push acc (Reply (s.id, Protocol.Err ("parse", msg))))
              | Ok rule_spec ->
                  Hashtbl.replace s.subs id
                    { sub_rule = rule_spec.Rule.name; sub_bin = binary };
                  submit_now
                    (Run_sub
                       { sid = s.id; shard = s.shard; sub = id; spec = rule_spec }))
        | Cmd (Protocol.Unsub { id }) -> (
            if shard.owner = Some s.id then
              inline_now (fun () ->
                  push acc
                    (Reply
                       ( s.id,
                         Protocol.Err
                           ("state", "UNSUB requires a closed transaction") )))
            else
              match Hashtbl.find_opt s.subs id with
              | None ->
                  inline_now (fun () ->
                      push acc
                        (Reply
                           ( s.id,
                             Protocol.Err
                               ( "state",
                                 Printf.sprintf "unknown subscription %d" id ) )))
              | Some entry ->
                  (* The registry entry survives until the completion:
                     commits already in the worker's FIFO ahead of this
                     UNSUB still route their notifies. *)
                  submit_now
                    (Run_unsub
                       {
                         sid = s.id;
                         shard = s.shard;
                         sub = id;
                         rule = entry.sub_rule;
                         quiet = false;
                       }))
        | Cmd (Protocol.Etype { id; name }) ->
            (* Gated on an empty pipeline like every reactor answer; a
               frame submitted before this point keeps its snapshot. *)
            inline_now (fun () ->
                push acc (Reply (s.id, exec_etype s ~id ~name)))
        | Cmd (Protocol.Line text) -> (
            match line_statements text with
            | Error (code, msg) ->
                inline_now (fun () ->
                    push acc (Reply (s.id, Protocol.Err (code, msg))))
            | Ok statements ->
                (* Eager acquire: ownership is reactor state; the worker
                   sees only the statements. *)
                shard.owner <- Some s.id;
                submit_now
                  (Run_line { sid = s.id; shard = s.shard; statements }))
        | Cmd (Protocol.Event { etype; oid }) -> (
            match Event_type.of_string etype with
            | Error msg ->
                inline_now (fun () ->
                    push acc (Reply (s.id, Protocol.Err ("parse", msg))))
            | Ok etype ->
                shard.owner <- Some s.id;
                submit_now
                  (Run_event { sid = s.id; shard = s.shard; etype; oid }))
        | Events payload -> (
            (* O(1) shape check on the reactor; malformed frames never
               acquire the shard, and their ERR stays in pipeline order
               behind in-flight replies.  The per-record decode happens
               on the worker. *)
            match Protocol.check_binary payload with
            | Error msg ->
                inline_now (fun () ->
                    push acc (Reply (s.id, Protocol.Err ("proto", msg))))
            | Ok _count ->
                shard.owner <- Some s.id;
                submit_now
                  (Run_events
                     {
                       sid = s.id;
                       shard = s.shard;
                       payload;
                       etypes = s.etypes;
                     }))
        | Cmd Protocol.Commit ->
            if shard.owner = Some s.id then begin
              ignore (Queue.pop s.pending);
              submit t s (Run_commit { sid = s.id; shard = s.shard });
              (* Eager release: the waiters' commands enqueue behind this
                 COMMIT in the same FIFO mailbox. *)
              release_shard t shard acc;
              process_threaded t s acc
            end
            else
              inline_now (fun () ->
                  push acc
                    (Reply (s.id, Protocol.Err ("state", "no open transaction"))))
        | Cmd Protocol.Abort ->
            if shard.owner = Some s.id then begin
              ignore (Queue.pop s.pending);
              submit t s
                (Run_abort { sid = s.id; shard = s.shard; quiet = false });
              release_shard t shard acc;
              process_threaded t s acc
            end
            else
              inline_now (fun () ->
                  push acc
                    (Reply (s.id, Protocol.Err ("state", "no open transaction"))))
    end

  (* ------------------------------------------------------ completions *)

  let handle_completion t c acc =
    (* Activations route before the session lookup — they belong to the
       subscribers named in the rules, not to the committing session,
       which may itself already be gone. *)
    List.iter (route_activation t acc) c.done_notifies;
    match Hashtbl.find_opt t.sessions c.done_sid with
    | None -> ()  (* session disconnected while the job was in flight *)
    | Some s ->
        if s.inflight > 0 then s.inflight <- s.inflight - 1;
        (match c.done_sub_failed with
        | Some sub -> Hashtbl.remove s.subs sub
        | None -> ());
        (match c.done_unsub with
        | Some sub -> Hashtbl.remove s.subs sub
        | None -> ());
        (match c.done_reply with
        | Some r when not s.closed -> (
            match c.done_commit with
            | Some (shard, seq) ->
                push acc (Committed { sid = s.id; shard; seq; reply = r })
            | None -> push acc (Reply (s.id, r)))
        | Some _ | None -> ());
        if not s.closed then process_session t s acc

  let pump t =
    match t.runtime with
    | Inline -> []
    | Threaded _ when t.down -> []
    | Threaded { workers; waker; _ } ->
        Mailbox.Waker.drain waker;
        let acc = ref [] in
        Array.iter
          (fun w ->
            let rec drain () =
              match Mailbox.try_pop w.w_out with
              | Some c ->
                  handle_completion t c acc;
                  drain ()
              | None -> ()
            in
            drain ();
            flush_deferred w)
          workers;
        List.rev !acc

  (* ---------------------------------------------------------- feeding *)

  let enqueue t s input acc =
    if Queue.length s.pending >= t.max_pending then begin
      (* The per-session pending bound: the client kept sending past a
         busy shard faster than admission allows.  Pipelining clients
         never hit this through the reactor — it stops decoding a
         session's input at [blocked] — so tripping it means frames
         arrived for a session the reactor should have paused. *)
      push acc
        (Reply
           ( s.id,
             Protocol.Err
               ( "overflow",
                 Printf.sprintf "more than %d queued command(s)" t.max_pending
               ) ));
      s.closed <- true;
      push acc (Close s.id)
    end
    else begin
      Queue.add input s.pending;
      process_session t s acc
    end

  let on_payload t sid payload =
    if t.down then []
    else
      match Hashtbl.find_opt t.sessions sid with
      | None -> []
      | Some s when s.closed -> []
      | Some s ->
          let acc = ref [] in
          (match Protocol.command_of_payload payload with
          | Error msg -> push acc (Reply (sid, Protocol.Err ("proto", msg)))
          | Ok cmd -> enqueue t s (Cmd cmd) acc);
          List.rev !acc

  (* The binary twin of [on_payload]: the payload goes in raw — tag
     classification already happened (one byte), the shape check runs at
     dispatch, and the record decode on the worker domain. *)
  let on_binary t sid payload =
    if t.down then []
    else
      match Hashtbl.find_opt t.sessions sid with
      | None -> []
      | Some s when s.closed -> []
      | Some s ->
          let acc = ref [] in
          enqueue t s (Events payload) acc;
          List.rev !acc

  let disconnect t sid =
    match Hashtbl.find_opt t.sessions sid with
    | None -> []
    | Some s ->
        s.closed <- true;
        Hashtbl.remove t.sessions sid;
        let shard = t.shards.(s.shard) in
        let acc = ref [] in
        (* Subscriptions die with the connection: no registry residue
           (the session record just left the table), and the rules leave
           the engine at the shard's next transaction boundary. *)
        Hashtbl.iter
          (fun sub entry ->
            shard.dropped_subs <- (sid, sub, entry.sub_rule) :: shard.dropped_subs)
          s.subs;
        Hashtbl.reset s.subs;
        if shard.owner = Some sid then begin
          (match t.runtime with
          | Inline -> do_abort shard
          | Threaded _ ->
              submit_job t s.shard
                (Run_abort { sid; shard = s.shard; quiet = true }));
          release_shard t shard acc
        end
        else if shard.owner = None then flush_dropped t shard;
        List.rev !acc

  (* ----------------------------------------------- standby (follower) *)

  let check_standby t =
    if t.down then Error "manager is down"
    else if not t.standby_mode then Error "not a standby"
    else Ok ()

  (* A new segment generation began upstream (initial attach, or a
     checkpoint rotation on the primary): the shipped records rebuild the
     shard from nothing, so the engine restarts fresh — definitions only,
     exactly like standby boot — and the local segment copy truncates to
     a new header. *)
  let repl_reset t ~shard:idx =
    let ( let* ) = Result.bind in
    let* () = check_standby t in
    let shard = t.shards.(idx) in
    let interp = Interp.create () in
    Engine.set_on_execution (Interp.engine interp) (fun name ->
        shard.executed := name :: !(shard.executed));
    let* () =
      match t.boot_script with
      | None -> Ok ()
      | Some src -> (
          match run_boot_definitions interp src with
          | Ok () -> Ok ()
          | Error msg ->
              Error (Printf.sprintf "boot script (shard %d): %s" idx msg))
    in
    shard.interp <- interp;
    shard.repl_pending <- [];
    shard.repl_seq <- 0;
    shard.repl_head <- 0;
    (match shard.repl_sink with
    | None -> ()
    | Some sink -> Journal.Sink.reset sink);
    Ok ()

  (* Applies one [REPL_RECORDS] batch.  The raw bytes reach the local
     segment copy first — the ack this enables must vouch for durability
     — then the records parse, group into transactions at the
     commit/abort markers they arrived with, and the committed groups
     replay through the same machinery as recovery.  The primary's
     tailer ships only marker-terminated chunks, so [repl_pending] is
     normally empty between calls; it buffers defensively regardless.
     Returns the applied commit sequence (what the follower acks). *)
  let repl_apply t ~shard:idx ~head_seq data =
    let ( let* ) = Result.bind in
    let* () = check_standby t in
    if idx < 0 || idx >= t.engines then
      Error (Printf.sprintf "no shard %d (engines=%d)" idx t.engines)
    else begin
      let shard = t.shards.(idx) in
      (match shard.repl_sink with
      | None -> ()
      | Some sink -> Journal.Sink.write sink data);
      shard.repl_head <- max shard.repl_head head_seq;
      let* txs_rev, last_seq =
        List.fold_left
          (fun acc line ->
            match acc with
            | Error _ -> acc
            | Ok (txs, _seq) -> (
                if line = "" then acc
                else
                  match Journal.entry_of_line line with
                  | Error msg ->
                      Error ("corrupt record in the replication stream: " ^ msg)
                  | Ok entry -> (
                      match entry.Journal.tag with
                      | "commit" -> (
                          match int_of_string_opt entry.Journal.payload with
                          | None -> Error "corrupt commit marker in the stream"
                          | Some marker_seq ->
                              let tx = List.rev shard.repl_pending in
                              shard.repl_pending <- [];
                              Ok ((tx, marker_seq) :: txs, marker_seq))
                      | "abort" ->
                          shard.repl_pending <- [];
                          acc
                      | _ ->
                          shard.repl_pending <- entry :: shard.repl_pending;
                          acc)))
          (Ok ([], shard.repl_seq))
          (String.split_on_char '\n' data)
      in
      (* Idempotency guard: a checkpoint base synthesized on the primary
         can cover sequences this shard already applied (the reactor may
         read a checkpoint newer than the seal it is handling) — skip
         any committed group at or below the applied sequence. *)
      let fresh =
        List.filter_map
          (fun (tx, seq) -> if seq > shard.repl_seq then Some tx else None)
          (List.rev txs_rev)
      in
      let* () =
        match fresh with
        | [] -> Ok ()
        | txs -> Engine.apply_replayed (Interp.engine shard.interp) txs
      in
      shard.repl_seq <- max shard.repl_seq last_seq;
      Ok shard.repl_seq
    end

  let repl_seqs t =
    Array.map (fun shard -> (shard.repl_seq, shard.repl_head)) t.shards

  (* Promotion: the standby becomes a primary, warm.  The shipped segment
     copy is byte-identical to the primary's journal, so it simply
     reopens for appending at the applied sequence and attaches to the
     engine — no replay; the engine already settled on committed state
     (every [repl_apply] ends in a fresh transaction, exactly as a
     completed recovery would). *)
  let promote t =
    let ( let* ) = Result.bind in
    let* () = check_standby t in
    t.standby_mode <- false;
    let rec go idx =
      if idx >= Array.length t.shards then Ok ()
      else
        let shard = t.shards.(idx) in
        let* () =
          match shard.repl_sink with
          | None -> Ok ()
          | Some sink -> (
              let path = Journal.Sink.path sink in
              Journal.Sink.close sink;
              shard.repl_sink <- None;
              match
                Journal.open_append ~sync:t.fsync ~path
                  ~commit_seq:shard.repl_seq ()
              with
              | j ->
                  Engine.set_journal (Interp.engine shard.interp) j;
                  shard.journal <- Some j;
                  (* The promoted primary checkpoints like any other. *)
                  (match (t.checkpoint_every, t.checkpoint_interval) with
                  | None, None -> ()
                  | every_commits, every_seconds ->
                      Engine.enable_checkpoints (Interp.engine shard.interp)
                        ?every_commits ?every_seconds
                        ~gc_floor:(fun () -> Atomic.get t.gc_floors.(idx))
                        ());
                  Ok ()
              | exception Sys_error msg ->
                  Error (Printf.sprintf "cannot reopen journal %s: %s" path msg)
              )
        in
        go (idx + 1)
    in
    go 0

  (* --------------------------------------------------------- shutdown *)

  let shutdown t =
    if not t.down then begin
      (match t.runtime with
      | Inline ->
          Array.iter
            (fun shard ->
              (match shard.owner with
              | Some _ ->
                  do_abort shard;
                  shard.owner <- None
              | None -> ());
              (match shard.journal with
              | Some j -> Journal.close j
              | None -> ());
              match shard.repl_sink with
              | Some sink -> Journal.Sink.close sink
              | None -> ())
            t.shards
      | Threaded { workers; waker; _ } ->
          (* Abort whatever transactions are still open — behind any work
             already queued for their shards. *)
          Array.iteri
            (fun i shard ->
              match shard.owner with
              | Some sid ->
                  shard.owner <- None;
                  submit_job t i (Run_abort { sid; shard = i; quiet = true })
              | None -> ())
            t.shards;
          (* Flush the deferred queues, draining completions to free
             mailbox slots; the workers are still live, so this settles. *)
          let rec settle () =
            if
              Array.exists
                (fun w -> not (Queue.is_empty w.w_deferred))
                workers
            then begin
              Array.iter
                (fun w ->
                  ignore (Mailbox.try_pop w.w_out);
                  flush_deferred w)
                workers;
              Domain.cpu_relax ();
              settle ()
            end
          in
          settle ();
          (* Closing [w_cmds] is the stop signal: each worker finishes
             its queue, closes its journals, and exits.  [w_out] closes
             too so a worker blocked publishing a completion is released
             (its push returns [false]) rather than deadlocking the
             join. *)
          Array.iter
            (fun w ->
              Mailbox.close w.w_cmds;
              Mailbox.close w.w_out)
            workers;
          Array.iter (fun w -> Option.iter Domain.join w.w_domain) workers;
          Mailbox.Waker.dispose waker);
      t.down <- true;
      Hashtbl.reset t.sessions
    end
end
