(** The multi-connection load generator behind [chimera loadgen]: C
    concurrent sessions, each sending L transaction lines (one
    outstanding frame per session, so every round trip is a latency
    sample), committing every [commit_every] lines, then quitting.

    Like the server it is a single-threaded non-blocking reactor, so
    tests and the in-process bench interleave {!poll} with
    [Server.poll] co-operatively in one thread; the CLI uses {!run}. *)

type config = {
  host : string;
  port : int;
  conns : int;
  lines : int;  (** per connection *)
  line : string;  (** rule-language text each LINE frame carries *)
  commit_every : int;
  max_frame : int;
  reconnect : bool;
      (** ride out a dropped link: close, back off, reconnect, and
          resend the lines the dead session had not committed (the
          server aborted them with it).  What a failover drill runs
          with.  [false] (the default) makes any mid-run failure a hard
          error, as before. *)
  retry_max : int;
      (** consecutive failed connects tolerated before giving up — the
          initial connect is always retried this way (a refused port at
          startup backs off rather than failing), [reconnect] extends
          the same schedule to mid-run drops *)
  retry_base : float;  (** first backoff delay, seconds *)
  retry_cap : float;  (** backoff saturation bound, seconds *)
  seed : int;
      (** jitter PRNG seed; connection [i] uses [seed + i], so the whole
          retry schedule is deterministic under a fixed seed *)
}

val default_config : config
(** 8 connections, 100 lines each, committing every 10; no mid-run
    reconnect, up to 8 connect retries from 50 ms doubling to 2 s. *)

type report = {
  conns : int;
  lines_sent : int;
  lines_ok : int;  (** replied [OK] or [TRIGGERED] *)
  triggered : int;  (** lines whose reply listed executed rules *)
  commits : int;
  errors : int;  (** [ERR] replies other than a drain notice *)
  drained : int;  (** sessions ended by the server's [ERR shutdown] *)
  reconnects : int;  (** backoff-scheduled connect retries *)
  wall_s : float;
  lines_per_s : float;
  lat_p50_ns : int;  (** LINE round-trip latency percentiles *)
  lat_p90_ns : int;
  lat_p99_ns : int;
  lat_max_ns : int;
}

val pp_report : Format.formatter -> report -> unit

val percentile : int array -> float -> int
(** [percentile sorted p] — nearest-rank percentile of an ascending
    sample array: the smallest element with at least [p]% of the samples
    at or below it.  [0] on an empty array; total over [p] (values
    outside [0..100] clamp to the extremes).  Exposed for tests. *)

type t

val create : config -> (t, string) result
(** Opens the connections (non-blocking connect). *)

val poll : t -> timeout:float -> unit
(** One reactor turn. *)

val finished : t -> bool
val report : t -> report

val run : config -> (report, string) result
(** {!create} then {!poll} to completion. *)
