(** The multi-connection load generator behind [chimera loadgen]: C
    concurrent sessions, each sending L events, committing every
    [commit_every], then quitting.  By default each event is one LINE
    frame in strict ping-pong (one outstanding frame per session, so
    every round trip is a latency sample); [pipeline] keeps up to D
    frames in flight per session, and [binary] switches the work frames
    to the binary ingestion path (one ETYPE announcement, then
    EVENT/BATCH frames of [batch] records each).

    Replies are matched against a FIFO expectation queue per session —
    the protocol preserves reply order, so no correlation ids are
    needed, and any out-of-order or unexpected reply is a hard error.

    Like the server it is a single-threaded non-blocking reactor, so
    tests and the in-process bench interleave {!poll} with
    [Server.poll] co-operatively in one thread; the CLI uses {!run}. *)

type config = {
  host : string;
  port : int;
  conns : int;
  lines : int;  (** events per connection *)
  line : string;  (** rule-language text each LINE frame carries *)
  commit_every : int;  (** events between COMMIT frames *)
  pipeline : int;
      (** frames in flight per session (default [1] — strict ping-pong);
          the server's HELLO [window] token is the useful maximum, going
          past it only parks frames in the server's admission queue *)
  binary : bool;
      (** send binary EVENT/BATCH frames instead of LINE text: the
          session announces [ETYPE 0 <etype>] once after HELLO, then
          ships records referencing id 0 *)
  events : bool;
      (** send text [EVENT <etype> <oid>] frames instead of LINE — the
          same engine work as [binary] through the text parser, for
          apples-to-apples comparisons.  Mutually exclusive with
          [binary] *)
  batch : int;
      (** records per binary frame (default [1] — EVENT frames); above 1
          BATCH frames carry up to this many records each, one reply (and
          one latency sample) per frame.  Ignored without [binary] *)
  etype : string;  (** the event-type name binary records carry *)
  subscribe : int;
      (** extra subscriber connections (default [0]): each registers one
          live subscription on [etype] ([SUB 0 [BIN] ON { etype } DO
          at(...)], [BIN] when [binary]) before any ingester sends work,
          then measures the push side — notify count, gap accounting,
          and trigger-to-notify latency.  In a subscription run every
          ingested event's oid is its send time in nanoseconds, so each
          delivered binding yields one end-to-end latency sample with no
          correlation state.  Subscribers UNSUB and QUIT after the last
          ingester finishes; the UNSUB reply rides behind all owed
          notifies, so the counts are complete.  Requires [events] or
          [binary]. *)
  max_frame : int;
  reconnect : bool;
      (** ride out a dropped link: close, back off, reconnect, and
          resend the lines the dead session had not committed (the
          server aborted them with it).  What a failover drill runs
          with.  [false] (the default) makes any mid-run failure a hard
          error, as before. *)
  retry_max : int;
      (** consecutive failed connects tolerated before giving up — the
          initial connect is always retried this way (a refused port at
          startup backs off rather than failing), [reconnect] extends
          the same schedule to mid-run drops *)
  retry_base : float;  (** first backoff delay, seconds *)
  retry_cap : float;  (** backoff saturation bound, seconds *)
  seed : int;
      (** jitter PRNG seed; connection [i] uses [seed + i], so the whole
          retry schedule is deterministic under a fixed seed *)
}

val default_config : config
(** 8 connections, 100 events each, committing every 10; text LINE
    frames in ping-pong ([pipeline = 1]); no mid-run reconnect, up to 8
    connect retries from 50 ms doubling to 2 s. *)

type report = {
  conns : int;
  lines_sent : int;  (** events sent (a BATCH frame counts its records) *)
  lines_ok : int;  (** events whose frame replied [OK] or [TRIGGERED] *)
  triggered : int;  (** work frames whose reply listed executed rules *)
  commits : int;
  errors : int;  (** [ERR] replies other than a drain notice *)
  drained : int;  (** sessions ended by the server's [ERR shutdown] *)
  reconnects : int;  (** backoff-scheduled connect retries *)
  wall_s : float;
  lines_per_s : float;
  lat_p50_ns : int;  (** LINE round-trip latency percentiles *)
  lat_p90_ns : int;
  lat_p99_ns : int;
  lat_max_ns : int;
  subscribers : int;  (** subscriber connections the run added *)
  notifies : int;  (** NOTIFY frames delivered across all subscribers *)
  gap_frames : int;  (** NOTIFY_GAP frames received *)
  gap_dropped : int;  (** notifies the gaps account as shed *)
  notifies_per_s : float;
  nlat_p50_ns : int;  (** trigger-to-notify latency percentiles *)
  nlat_p90_ns : int;
  nlat_p99_ns : int;
  nlat_max_ns : int;
}

val pp_report : Format.formatter -> report -> unit

val percentile : int array -> float -> int
(** [percentile sorted p] — nearest-rank percentile of an ascending
    sample array: the smallest element with at least [p]% of the samples
    at or below it.  [0] on an empty array; total over [p] (values
    outside [0..100] clamp to the extremes).  Exposed for tests. *)

type t

val create : config -> (t, string) result
(** Opens the connections (non-blocking connect). *)

val poll : t -> timeout:float -> unit
(** One reactor turn. *)

val finished : t -> bool
val report : t -> report

val run : config -> (report, string) result
(** {!create} then {!poll} to completion. *)
