(* The relevance filter the Trigger Support consults (Section 5.1).

   A new event occurrence of type [p] constitutes a positive variation of
   [p] (at both granularities).  Under endpoint detection — evaluate ts at
   the current instant, the behaviour sketched in the implementation
   section — recomputation for a rule can be skipped when V(E) does not
   require a positive variation of any type the occurrence matches.

   Under the exact existential semantics of Section 4.4, a rule whose V(E)
   contains negative variations (a negation somewhere relevant) can become
   triggered by the mere passage of activity (the probe at the window's
   lower bound), so the filter conservatively treats every arrival as
   relevant for such rules. *)

open Chimera_event
open Chimera_calculus

(* Sign of ts on a window that contains activity but no occurrence of any
   of the expression's own primitive types: every primitive is inactive, so
   the sign is fully determined.  A [true] result means the rule can become
   triggered by the mere presence of unrelated events (or right after its
   own consideration window moves), so no type-based filter is sound for
   it. *)
let rec active_without_occurrences = function
  | Expr.Prim _ -> false
  | Expr.Not e -> not (active_without_occurrences e)
  | Expr.And (a, b) ->
      active_without_occurrences a && active_without_occurrences b
  | Expr.Or (a, b) ->
      active_without_occurrences a || active_without_occurrences b
  | Expr.Seq (a, b) ->
      active_without_occurrences a && active_without_occurrences b
  | Expr.Inst ie -> active_without_occurrences_inst ie

and active_without_occurrences_inst = function
  | Expr.I_prim _ -> false
  | Expr.I_not e -> not (active_without_occurrences_inst e)
  | Expr.I_and (a, b) ->
      active_without_occurrences_inst a && active_without_occurrences_inst b
  | Expr.I_or (a, b) ->
      active_without_occurrences_inst a || active_without_occurrences_inst b
  | Expr.I_seq (a, b) ->
      active_without_occurrences_inst a && active_without_occurrences_inst b

(* Sign of ts on an *empty* window prefix (the probe at the window's lower
   bound under the exact existential semantics): as above, but the object
   universe is empty, so a min-lifted instance negation is vacuously active
   while every other lifted expression is inactive, whatever its body. *)
let rec active_on_empty_prefix = function
  | Expr.Prim _ -> false
  | Expr.Not e -> not (active_on_empty_prefix e)
  | Expr.And (a, b) -> active_on_empty_prefix a && active_on_empty_prefix b
  | Expr.Or (a, b) -> active_on_empty_prefix a || active_on_empty_prefix b
  | Expr.Seq (a, b) -> active_on_empty_prefix a && active_on_empty_prefix b
  | Expr.Inst (Expr.I_not _) -> true
  | Expr.Inst _ -> false

type t = {
  v : Simplify.v_set;
  has_negative : bool;
  always_relevant : bool;
  (* Positive-variation subscriptions, precomputed for the fast path. *)
  positive : Event_type.t list;
}

let of_expr e =
  let v = Simplify.v_of_expr e in
  let positive =
    List.filter_map
      (fun (etype, pol) ->
        match pol with
        | Variation.Positive | Variation.Both -> Some etype
        | Variation.Negative -> None)
      (Simplify.bindings v)
  in
  {
    v;
    has_negative = Simplify.has_negative v;
    always_relevant =
      active_without_occurrences e || active_on_empty_prefix e;
    positive;
  }

let v_set t = t.v
let has_negative t = t.has_negative
let always_relevant t = t.always_relevant
let positive_types t = t.positive

(* [occurrence] is the (possibly attribute-qualified) type of an arriving
   event; a subscription on the unqualified modify matches it too. *)
let relevant_endpoint t ~occurrence =
  t.always_relevant
  || List.exists
       (fun subscription -> Event_type.generalizes ~subscription ~occurrence)
       t.positive

let relevant_exact t ~occurrence =
  t.has_negative || relevant_endpoint t ~occurrence

let pp ppf t = Simplify.pp ppf t.v
