(** The relevance filter consulted by the Trigger Support (Section 5.1):
    decide, from V(E) alone, whether an arriving event occurrence can
    possibly change a rule's ts sign, and hence whether recomputation may
    be skipped. *)

open Chimera_event
open Chimera_calculus

type t

val of_expr : Expr.set -> t

val v_set : t -> Simplify.v_set
val has_negative : t -> bool

val always_relevant : t -> bool
(** The expression can be active on a window with no occurrence of its own
    primitive types (negation-dominated); every arrival is then relevant. *)

val positive_types : t -> Event_type.t list
(** The positive-variation subscriptions of V(E): the event types whose
    arrival can flip the rule's ts sign when neither [has_negative] nor
    [always_relevant] holds — the reverse-index subscription set. *)

val relevant_endpoint : t -> occurrence:Event_type.t -> bool
(** Sound for endpoint detection (evaluate ts at the current instant). *)

val relevant_exact : t -> occurrence:Event_type.t -> bool
(** Sound for the exact existential semantics of Section 4.4; additionally
    treats every arrival as relevant when V(E) contains negative
    variations. *)

val active_without_occurrences : Expr.set -> bool
(** Sign of ts on a window with activity but no occurrence of the
    expression's own primitives (it is fully determined). *)

val pp : Format.formatter -> t -> unit

val active_on_empty_prefix : Chimera_calculus.Expr.set -> bool
(** Sign of ts at the window's lower-bound probe, where the object universe
    is empty: a min-lifted instance negation is then vacuously active. *)
