(** Recursive-descent parser for the script language; see the grammar in
    the implementation header and the README's language reference. *)

exception Error of string * int

val parse : string -> (Ast.script, string) result

val parse_exn : string -> Ast.script
(** Raises [Invalid_argument] on error. *)

val parse_subscription :
  string ->
  ( Chimera_calculus.Expr.set * Chimera_rules.Condition.t,
    string )
  result
(** Parses a subscription body — [on { <event expression> } [do <atom>,
    ...]], keywords case-insensitive — into the event expression and
    condition atoms of an ad-hoc rule (the [SUB] verb's payload).  The
    full trigger grammar is allowed: set and instance calculus in the
    expression, [occurred]/[at]/comparison/range atoms after [do]. *)
