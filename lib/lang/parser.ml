(* Recursive-descent parser for the script language.

   Grammar (statements are ';'-terminated):

     define class <name> [extends <name>] ( attr : type, ... )
     define (immediate|deferred) trigger <name> [for <class>]
       events { <event calculus expression> }
       [condition <atom>, ...]
       actions <action>, ...
       [consuming|preserving] [priority <int>]
     end
     create <class>(attr = expr, ...) [as X] | modify X.attr = expr
       | delete X | generalize X to <class> | specialize X to <class>
       | select <class>
     begin <dml>; ... end            -- several DMLs in one line
     commit | show <class> | rules | events

   Condition atoms: <class>(X) ranges, occurred({expr}, X),
   at({expr}, X, T), and comparisons between terms
   (literal | X | X.attr) with ==, !=, <, <=, >, >=. *)

open Chimera_calculus
open Chimera_store
open Chimera_rules
open Lexer

exception Error of string * int

type state = { mutable toks : spanned list }

let peek st = match st.toks with [] -> { token = EOF; pos = 0; line = 0 } | t :: _ -> t
let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let fail st msg = raise (Error (msg, (peek st).pos))

let expect st token =
  let t = peek st in
  if t.token = token then advance st
  else
    fail st
      (Printf.sprintf "expected %s, found %s" (token_name token)
         (token_name t.token))

let ident st =
  match (peek st).token with
  | IDENT s ->
      advance st;
      s
  | t -> fail st (Printf.sprintf "expected an identifier, found %s" (token_name t))

let keyword st kw =
  match (peek st).token with
  | IDENT s when String.equal s kw -> advance st
  | t -> fail st (Printf.sprintf "expected '%s', found %s" kw (token_name t))

let peek_ident st =
  match (peek st).token with IDENT s -> Some s | _ -> None

let event_expr st =
  match (peek st).token with
  | EVENT_EXPR text -> (
      advance st;
      match Expr_parse.parse text with
      | Ok e -> e
      | Error msg -> fail st msg)
  | t -> fail st (Printf.sprintf "expected { event expression }, found %s" (token_name t))

let inst_event_expr st =
  match (peek st).token with
  | EVENT_EXPR text -> (
      advance st;
      match Expr_parse.parse_inst text with
      | Ok e -> e
      | Error msg -> fail st msg)
  | t -> fail st (Printf.sprintf "expected { event expression }, found %s" (token_name t))

let value_type st =
  match ident st with
  | "integer" | "int" -> Value.T_int
  | "real" | "float" -> Value.T_float
  | "string" -> Value.T_str
  | "boolean" | "bool" -> Value.T_bool
  | "oid" -> Value.T_oid
  | other -> fail st (Printf.sprintf "unknown type %s" other)

(* Terms: literals, variables, attribute paths. *)
let term st =
  match (peek st).token with
  | INT i ->
      advance st;
      Query.Const (Value.Int i)
  | FLOAT f ->
      advance st;
      Query.Const (Value.Float f)
  | STRING s ->
      advance st;
      Query.Const (Value.Str s)
  | MINUS ->
      advance st;
      (match (peek st).token with
      | INT i ->
          advance st;
          Query.Const (Value.Int (-i))
      | FLOAT f ->
          advance st;
          Query.Const (Value.Float (-.f))
      | t -> fail st (Printf.sprintf "expected a number after '-', found %s" (token_name t)))
  | IDENT "true" ->
      advance st;
      Query.Const (Value.Bool true)
  | IDENT "false" ->
      advance st;
      Query.Const (Value.Bool false)
  | IDENT "null" ->
      advance st;
      Query.Const Value.Null
  | IDENT x ->
      advance st;
      if (peek st).token = DOT then begin
        advance st;
        let attr = ident st in
        Query.Attr (x, attr)
      end
      else Query.Var x
  | t -> fail st (Printf.sprintf "expected a term, found %s" (token_name t))

(* Arithmetic expressions over terms, with min/max. *)
let rec expr st =
  let lhs = mul_expr st in
  match (peek st).token with
  | PLUS ->
      advance st;
      Query.Add (lhs, expr st)
  | MINUS ->
      advance st;
      Query.Sub (lhs, expr st)
  | _ -> lhs

and mul_expr st =
  let lhs = atom_expr st in
  match (peek st).token with
  | STAR ->
      advance st;
      Query.Mul (lhs, mul_expr st)
  | SLASH ->
      advance st;
      Query.Div (lhs, mul_expr st)
  | _ -> lhs

and atom_expr st =
  match (peek st).token with
  | LPAREN ->
      advance st;
      let e = expr st in
      expect st RPAREN;
      e
  | IDENT (("min" | "max") as f) when (match st.toks with _ :: { token = LPAREN; _ } :: _ -> true | _ -> false) ->
      advance st;
      expect st LPAREN;
      let a = expr st in
      expect st COMMA;
      let b = expr st in
      expect st RPAREN;
      if String.equal f "min" then Query.Min (a, b) else Query.Max (a, b)
  | _ -> Query.Term (term st)

let comparison st =
  match (peek st).token with
  | EQ ->
      advance st;
      Query.Eq
  | NEQ ->
      advance st;
      Query.Neq
  | LT ->
      advance st;
      Query.Lt
  | LE ->
      advance st;
      Query.Le
  | GT ->
      advance st;
      Query.Gt
  | GE ->
      advance st;
      Query.Ge
  | t -> fail st (Printf.sprintf "expected a comparison operator, found %s" (token_name t))

(* One condition atom. *)
let rec condition_atom st =
  match (peek st).token with
  | IDENT "absent" ->
      advance st;
      expect st LPAREN;
      let atoms = condition_atoms st in
      expect st RPAREN;
      Condition.Absent atoms
  | IDENT "occurred" ->
      advance st;
      expect st LPAREN;
      let e = inst_event_expr st in
      expect st COMMA;
      let var = ident st in
      expect st RPAREN;
      Condition.Occurred { expr = e; var }
  | IDENT "at" ->
      advance st;
      expect st LPAREN;
      let e = inst_event_expr st in
      expect st COMMA;
      let var = ident st in
      expect st COMMA;
      let time_var = ident st in
      expect st RPAREN;
      Condition.At { expr = e; var; time_var }
  | IDENT class_name
    when (match st.toks with
         | _ :: { token = LPAREN; _ } :: { token = IDENT _; _ }
           :: { token = RPAREN; _ } :: _ ->
             true
         | _ -> false) ->
      advance st;
      expect st LPAREN;
      let var = ident st in
      expect st RPAREN;
      Condition.Range { var; class_name }
  | _ ->
      let lhs = term st in
      let op = comparison st in
      let rhs = term st in
      Condition.Compare (Query.Cmp (op, lhs, rhs))

and condition_atoms st =
  let atom = condition_atom st in
  if (peek st).token = COMMA then begin
    advance st;
    atom :: condition_atoms st
  end
  else [ atom ]

let assigns st =
  expect st LPAREN;
  if (peek st).token = RPAREN then begin
    advance st;
    []
  end
  else begin
    let rec loop () =
      let attr = ident st in
      expect st ASSIGN;
      let value = expr st in
      if (peek st).token = COMMA then begin
        advance st;
        (attr, value) :: loop ()
      end
      else [ (attr, value) ]
    in
    let result = loop () in
    expect st RPAREN;
    result
  end

let optional_bind st =
  match peek_ident st with
  | Some "as" ->
      advance st;
      Some (ident st)
  | _ -> None

(* One action op (inside a trigger definition). *)
let action_op st =
  match ident st with
  | "modify" ->
      expect st LPAREN;
      let var = ident st in
      expect st DOT;
      let attribute = ident st in
      expect st COMMA;
      let value = expr st in
      expect st RPAREN;
      Action.A_modify { var; attribute; value }
  | "create" ->
      let class_name = ident st in
      let attrs = assigns st in
      let bind = optional_bind st in
      Action.A_create { class_name; attrs; bind }
  | "delete" -> Action.A_delete { var = ident st }
  | "generalize" ->
      let var = ident st in
      keyword st "to";
      Action.A_generalize { var; to_class = ident st }
  | "specialize" ->
      let var = ident st in
      keyword st "to";
      Action.A_specialize { var; to_class = ident st }
  | "select" -> Action.A_select { class_name = ident st }
  | other -> fail st (Printf.sprintf "unknown action %s" other)

let rec action_ops st =
  let op = action_op st in
  if (peek st).token = COMMA then begin
    advance st;
    op :: action_ops st
  end
  else [ op ]

let trigger_def st ~coupling =
  keyword st "trigger";
  let name = ident st in
  let target =
    match peek_ident st with
    | Some "for" ->
        advance st;
        Some (ident st)
    | _ -> None
  in
  keyword st "events";
  let event = event_expr st in
  let condition =
    match peek_ident st with
    | Some "condition" ->
        advance st;
        condition_atoms st
    | _ -> []
  in
  keyword st "actions";
  let action = action_ops st in
  let consumption =
    match peek_ident st with
    | Some "consuming" ->
        advance st;
        Rule.Consuming
    | Some "preserving" ->
        advance st;
        Rule.Preserving
    | _ -> Rule.Consuming
  in
  let priority =
    match peek_ident st with
    | Some "priority" -> (
        advance st;
        match (peek st).token with
        | INT p ->
            advance st;
            p
        | t -> fail st (Printf.sprintf "expected a priority, found %s" (token_name t)))
    | _ -> 0
  in
  keyword st "end";
  {
    Rule.name;
    target;
    event;
    condition;
    action;
    coupling;
    consumption;
    priority;
  }

(* One DML statement. *)
let dml st =
  match ident st with
  | "create" ->
      let class_name = ident st in
      let a = assigns st in
      let bind = optional_bind st in
      Ast.D_create { class_name; assigns = a; bind }
  | "modify" ->
      let var = ident st in
      expect st DOT;
      let attribute = ident st in
      expect st ASSIGN;
      let value = expr st in
      Ast.D_modify { var; attribute; value }
  | "delete" -> Ast.D_delete (ident st)
  | "generalize" ->
      let var = ident st in
      keyword st "to";
      Ast.D_generalize { var; to_class = ident st }
  | "specialize" ->
      let var = ident st in
      keyword st "to";
      Ast.D_specialize { var; to_class = ident st }
  | "select" -> Ast.D_select (ident st)
  | other -> fail st (Printf.sprintf "unknown statement %s" other)

let statement st =
  match peek_ident st with
  | Some "define" -> (
      advance st;
      match ident st with
      | "class" ->
          let name = ident st in
          let super =
            match peek_ident st with
            | Some "extends" ->
                advance st;
                Some (ident st)
            | _ -> None
          in
          expect st LPAREN;
          let rec attrs () =
            let a = ident st in
            expect st COLON;
            let ty = value_type st in
            if (peek st).token = COMMA then begin
              advance st;
              (a, ty) :: attrs ()
            end
            else [ (a, ty) ]
          in
          let attributes = if (peek st).token = RPAREN then [] else attrs () in
          expect st RPAREN;
          Ast.Define_class { name; super; attributes }
      | "immediate" -> Ast.Define_trigger (trigger_def st ~coupling:Rule.Immediate)
      | "deferred" -> Ast.Define_trigger (trigger_def st ~coupling:Rule.Deferred)
      | "timer" -> (
          let name = ident st in
          keyword st "every";
          match (peek st).token with
          | INT period ->
              advance st;
              Ast.Define_timer { name; period_lines = period }
          | t -> fail st (Printf.sprintf "expected a period, found %s" (token_name t)))
      | other -> fail st (Printf.sprintf "expected class/immediate/deferred, found %s" other))
  | Some "begin" ->
      advance st;
      let rec dmls () =
        match peek_ident st with
        | Some "end" ->
            advance st;
            []
        | _ ->
            let d = dml st in
            expect st SEMI;
            d :: dmls ()
      in
      Ast.Line (dmls ())
  | Some "commit" ->
      advance st;
      Ast.Commit
  | Some "show" ->
      advance st;
      Ast.Show (ident st)
  | Some "rules" ->
      advance st;
      Ast.Show_rules
  | Some "events" ->
      advance st;
      Ast.Show_events
  | _ -> Ast.Line [ dml st ]

let script st =
  let rec loop acc =
    if (peek st).token = EOF then List.rev acc
    else begin
      let s = statement st in
      (match (peek st).token with
      | SEMI -> advance st
      | EOF -> ()
      | t -> fail st (Printf.sprintf "expected ';', found %s" (token_name t)));
      loop (s :: acc)
    end
  in
  loop []

(* Ad-hoc subscription bodies: [on { expr } [do <atoms>]] — the SUB
   verb's rule text, reusing the trigger grammar's event expression and
   condition atoms.  Keywords are matched case-insensitively because
   clients write them in protocol style ([ON]/[DO]). *)
let sub_keyword st kw =
  match (peek st).token with
  | IDENT s when String.equal (String.lowercase_ascii s) kw -> advance st
  | t -> fail st (Printf.sprintf "expected '%s', found %s" kw (token_name t))

let subscription st =
  sub_keyword st "on";
  let event = event_expr st in
  let condition =
    match peek_ident st with
    | Some s when String.equal (String.lowercase_ascii s) "do" ->
        advance st;
        condition_atoms st
    | _ -> []
  in
  (match (peek st).token with
  | EOF -> ()
  | t -> fail st (Printf.sprintf "trailing input after subscription: %s" (token_name t)));
  (event, condition)

let parse_subscription src : (Expr.set * Condition.t, string) result =
  match Lexer.tokenize src with
  | exception Lexer.Error (msg, pos) ->
      Error (Printf.sprintf "lex error at offset %d: %s" pos msg)
  | toks -> (
      let st = { toks } in
      match subscription st with
      | r -> Ok r
      | exception Error (msg, pos) ->
          Error (Printf.sprintf "parse error at offset %d: %s" pos msg))

let parse src : (Ast.script, string) result =
  match Lexer.tokenize src with
  | exception Lexer.Error (msg, pos) ->
      Error (Printf.sprintf "lex error at offset %d: %s" pos msg)
  | toks -> (
      let st = { toks } in
      match script st with
      | s -> Ok s
      | exception Error (msg, pos) ->
          Error (Printf.sprintf "parse error at offset %d: %s" pos msg))

let parse_exn src =
  match parse src with Ok s -> s | Error msg -> invalid_arg msg
