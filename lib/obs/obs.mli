(** The observability layer: named counters, gauges and log-scale latency
    histograms, plus lightweight nestable trace spans recorded into a
    bounded ring buffer and streamed to pluggable sinks.

    The whole subsystem sits behind one global [enabled] flag: every
    recording entry point is a single load-and-branch when disabled, and
    the disabled path allocates nothing (property-tested).  Metric and
    histogram handles are registered once by name at module-load time and
    then incremented through the handle — the hot path never hashes.

    The registry is global (one process, one engine instance in every
    current deployment): two engines in one process share counters, which
    is the conventional process-wide metrics model.  Tests isolate
    themselves with {!reset}/{!hard_reset}.

    Environment activation: [CHIMERA_METRICS=1] enables metrics at
    startup; [CHIMERA_TRACE=1] additionally enables span recording (ring
    buffer only), [CHIMERA_TRACE=stderr] attaches the human-readable
    stderr sink, and any other [CHIMERA_TRACE=PATH] attaches the JSONL
    file sink (flushed at exit). *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val now_ns : unit -> int
(** The current clock reading in nanoseconds (monotone under the default
    clock for the sub-second spans measured here; replaceable). *)

val set_clock : (unit -> int) -> unit
(** Replaces the clock — deterministic tests drive spans and histograms
    with a hand-stepped counter. *)

(** {1 Metrics} *)

module Metrics : sig
  type counter

  val counter : string -> counter
  (** Registers (or retrieves) the counter of that name. *)

  val incr : counter -> unit
  val add : counter -> int -> unit
  val counter_value : counter -> int
  val counter_name : counter -> string

  type gauge

  val gauge : string -> gauge
  val set_gauge : gauge -> int -> unit
  val gauge_value : gauge -> int

  (** Log-scale latency histograms: bucket [i] counts observations in
      [[2{^i}, 2{^i+1})] nanoseconds; observations below 1 clamp to
      bucket 0. *)

  type histogram

  val histogram : string -> histogram
  val observe : histogram -> int -> unit

  val bucket_index : int -> int
  (** [floor (log2 (max v 1))] — the bucket an observation lands in. *)

  val bucket_lower : int -> int
  (** [2{^i}], the inclusive lower bound of bucket [i]. *)

  type histogram_stat = {
    h_count : int;
    h_sum : int;
    h_min : int;  (** 0 when empty *)
    h_max : int;
    h_buckets : (int * int) list;
        (** (inclusive lower bound, count), populated buckets only,
            ascending *)
  }

  val histogram_stat : histogram -> histogram_stat
end

val start_timer : unit -> int
(** A latency-measurement origin: the clock when enabled, [0] when
    disabled (so the disabled path never reads the clock). *)

val observe_since : Metrics.histogram -> int -> unit
(** Records [now_ns () - t0] into the histogram; no-op when disabled or
    when the origin was taken disabled ([t0 = 0]). *)

(** {1 Trace spans} *)

module Trace : sig
  type span = {
    name : string;
    detail : string;  (** free-form qualifier, e.g. the rule name *)
    start_ns : int;
    dur_ns : int;
    depth : int;  (** nesting depth at begin; 0 = top level *)
    tx : int;  (** transaction id current at begin *)
    eid : int;  (** last event EID current at begin *)
  }

  val set_tx : int -> unit
  (** Sets the transaction id carried by subsequently begun spans. *)

  val set_eid : int -> unit
  (** Sets the event EID carried by subsequently begun spans. *)

  val begin_ : ?detail:string -> string -> int
  (** Opens a span; returns a token for {!end_}, or [-1] when disabled.
      Allocation-free when disabled. *)

  val end_ : int -> unit
  (** Closes the span of that token, recording it into the ring and the
      sinks.  Inner spans left open (an exception skipped their [end_])
      are closed first, so every begin gets its end.  No-op on [-1]. *)

  val end_into : Metrics.histogram -> int -> unit
  (** {!end_} that also observes the span's duration into the histogram
      (one clock read for both). *)

  val instant : ?detail:string -> string -> unit
  (** A zero-duration marker span (e.g. an event raise). *)

  val with_span : ?detail:string -> string -> (unit -> 'a) -> 'a
  (** [begin_]/[end_] around [f], balanced on exceptions.  Convenience
      for cold paths (the closure allocates even when disabled). *)

  val open_depth : unit -> int
  (** Currently open spans — 0 whenever the system is quiescent. *)

  val recorded : unit -> span list
  (** Ring contents, oldest first; at most {!ring_capacity} spans. *)

  val ring_capacity : unit -> int

  val set_ring_capacity : int -> unit
  (** Replaces the ring (contents dropped); capacity must be positive. *)
end

(** {1 Snapshots and sinks} *)

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * int) list;
  histograms : (string * Metrics.histogram_stat) list;
}

val snapshot : unit -> snapshot

val pp_snapshot : Format.formatter -> snapshot -> unit
(** Aligned tables: counters, gauges, then histograms with count / mean /
    max and the populated log-scale buckets. *)

module Sink : sig
  (** The sink contract: [on_span] is called once per completed span, in
      completion order (innermost first), only while enabled; [on_snapshot]
      receives the full metrics snapshot on {!publish}; [on_flush] must
      make everything durable (files flushed).  Sinks must not call back
      into the recording API. *)
  type t = {
    name : string;
    on_span : Trace.span -> unit;
    on_snapshot : snapshot -> unit;
    on_flush : unit -> unit;
  }

  val attach : t -> unit
  val detach : string -> unit
  val detach_all : unit -> unit
  val attached : unit -> string list

  val memory : unit -> t * (unit -> Trace.span list)
  (** Collects spans in memory; the closure returns them oldest first. *)

  val stderr : unit -> t
  (** Human-readable one-line-per-span to stderr; snapshots pretty-print. *)

  val jsonl : path:string -> t
  (** One JSON object per line: spans as they complete, the snapshot as a
      [{"snapshot": ...}] line on publish.  [on_flush] flushes the file;
      the channel stays open for the process lifetime. *)

  val span_to_json : Trace.span -> string

  val span_of_json : string -> (Trace.span, string) result
  (** Parses a line written by {!span_to_json} (round-trip tested). *)
end

val publish : unit -> unit
(** Pushes the current snapshot to every sink, then flushes them all. *)

val reset : unit -> unit
(** Zeroes every registered metric, clears the span ring, the open-span
    stack and the trace context.  Registered names and attached sinks
    survive. *)

val hard_reset : unit -> unit
(** {!reset} plus: unregisters every metric and detaches every sink.
    Handles obtained before a [hard_reset] keep working but are no longer
    reachable from snapshots.  Test isolation only. *)
