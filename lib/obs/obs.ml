(* The observability layer: metrics (counters / gauges / log-scale
   histograms), trace spans in a bounded ring, and pluggable sinks.

   Everything hangs off one global [on] flag.  The discipline throughout:
   a disabled recording call is a single load-and-branch and allocates
   nothing — instrumentation can therefore live inside the engine's hot
   paths (memo probes, trigger checks, journal writes) without being paid
   for when observability is off.  Enabled-mode cost is bounded too: the
   open-span stack and the ring are preallocated arrays, so a span is two
   clock reads plus a handful of stores.

   The registry is global by design (process-wide metrics model); tests
   isolate with [reset]/[hard_reset]. *)

let on = ref false
let[@inline] enabled () = !on
let set_enabled b = on := b

(* The clock: the process monotonic clock in integer nanoseconds — never
   stepped by NTP, so span durations and latency samples cannot go
   negative; tests swap in a hand-stepped counter for determinism.  Only
   consulted while enabled. *)
let default_clock = Chimera_util.Monotime.now_ns

let clock = ref default_clock
let now_ns () = !clock ()
let set_clock f = clock := f

(* ------------------------------------------------------------ metrics *)

module Metrics = struct
  (* Counters, gauges and histogram cells are [Atomic.t]: with one engine
     shard per domain ([chimera serve --domains]) the same process-wide
     handles are bumped concurrently from every worker, and a plain
     mutable field would silently lose increments.  The disabled path is
     still one load-and-branch; the enabled path pays one atomic RMW. *)
  type counter = { cname : string; cv : int Atomic.t }
  type gauge = { gname : string; gv : int Atomic.t }

  (* 63 buckets cover every positive OCaml int. *)
  let n_buckets = 63

  type histogram = {
    hname : string;
    hcounts : int Atomic.t array;
    hcount : int Atomic.t;
    hsum : int Atomic.t;
    hmin : int Atomic.t;  (** [max_int] while empty *)
    hmax : int Atomic.t;
  }

  let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
  let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
  let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 32

  (* Registration is rare (module-load time) but may race when a worker
     domain forces a module first; a lock keeps the registry coherent.
     The hot paths never take it — they go through the handle. *)
  let registry_lock = Mutex.create ()

  let registered tbl name make =
    Mutex.lock registry_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock registry_lock)
      (fun () ->
        match Hashtbl.find_opt tbl name with
        | Some v -> v
        | None ->
            let v = make () in
            Hashtbl.add tbl name v;
            v)

  let counter name =
    registered counters name (fun () -> { cname = name; cv = Atomic.make 0 })

  let incr c = if !on then ignore (Atomic.fetch_and_add c.cv 1)
  let add c n = if !on then ignore (Atomic.fetch_and_add c.cv n)
  let counter_value c = Atomic.get c.cv
  let counter_name c = c.cname

  let gauge name =
    registered gauges name (fun () -> { gname = name; gv = Atomic.make 0 })

  let set_gauge g v = if !on then Atomic.set g.gv v
  let gauge_value g = Atomic.get g.gv

  let histogram name =
    registered histograms name (fun () ->
        {
          hname = name;
          hcounts = Array.init n_buckets (fun _ -> Atomic.make 0);
          hcount = Atomic.make 0;
          hsum = Atomic.make 0;
          hmin = Atomic.make max_int;
          hmax = Atomic.make 0;
        })

  let bucket_index v =
    if v <= 1 then 0
    else begin
      let i = ref 0 and v = ref v in
      while !v > 1 do
        v := !v lsr 1;
        Stdlib.incr i
      done;
      !i
    end

  let bucket_lower i = 1 lsl i

  let rec atomic_min a v =
    let cur = Atomic.get a in
    if v >= cur then ()
    else if Atomic.compare_and_set a cur v then ()
    else atomic_min a v

  let rec atomic_max a v =
    let cur = Atomic.get a in
    if v <= cur then ()
    else if Atomic.compare_and_set a cur v then ()
    else atomic_max a v

  let observe h v =
    if !on then begin
      let v = if v < 0 then 0 else v in
      let i = bucket_index v in
      ignore (Atomic.fetch_and_add h.hcounts.(i) 1);
      atomic_min h.hmin v;
      atomic_max h.hmax v;
      ignore (Atomic.fetch_and_add h.hcount 1);
      ignore (Atomic.fetch_and_add h.hsum v)
    end

  type histogram_stat = {
    h_count : int;
    h_sum : int;
    h_min : int;
    h_max : int;
    h_buckets : (int * int) list;
  }

  let histogram_stat h =
    let buckets = ref [] in
    for i = n_buckets - 1 downto 0 do
      let c = Atomic.get h.hcounts.(i) in
      if c > 0 then buckets := (bucket_lower i, c) :: !buckets
    done;
    let count = Atomic.get h.hcount in
    {
      h_count = count;
      h_sum = Atomic.get h.hsum;
      h_min = (if count = 0 then 0 else Atomic.get h.hmin);
      h_max = Atomic.get h.hmax;
      h_buckets = !buckets;
    }

  let reset_all () =
    Hashtbl.iter (fun _ c -> Atomic.set c.cv 0) counters;
    Hashtbl.iter (fun _ g -> Atomic.set g.gv 0) gauges;
    Hashtbl.iter
      (fun _ h ->
        Array.iter (fun a -> Atomic.set a 0) h.hcounts;
        Atomic.set h.hcount 0;
        Atomic.set h.hsum 0;
        Atomic.set h.hmin max_int;
        Atomic.set h.hmax 0)
      histograms

  let forget_all () =
    Hashtbl.reset counters;
    Hashtbl.reset gauges;
    Hashtbl.reset histograms
end

let start_timer () = if !on then now_ns () else 0
let observe_since h t0 = if t0 <> 0 && !on then Metrics.observe h (now_ns () - t0)

(* ------------------------------------------------------- trace spans *)

module Trace = struct
  type span = {
    name : string;
    detail : string;
    start_ns : int;
    dur_ns : int;
    depth : int;
    tx : int;
    eid : int;
  }

  (* The open-span stack and the tx/eid context are per-domain state
     (Domain.DLS): each engine shard traces its own nesting without
     seeing the others'.  Only the completed-span ring and the sinks are
     shared, behind [ring_lock].  Nesting past [max_depth] is tolerated
     (tokens stay valid) but the overflowing spans are not recorded. *)
  let max_depth = 256

  type tls = {
    stk_name : string array;
    stk_detail : string array;
    stk_start : int array;
    stk_tx : int array;
    stk_eid : int array;
    mutable depth : int;
    mutable cur_tx : int;
    mutable cur_eid : int;
  }

  let tls_key =
    Domain.DLS.new_key (fun () ->
        {
          stk_name = Array.make max_depth "";
          stk_detail = Array.make max_depth "";
          stk_start = Array.make max_depth 0;
          stk_tx = Array.make max_depth 0;
          stk_eid = Array.make max_depth 0;
          depth = 0;
          cur_tx = 0;
          cur_eid = 0;
        })

  let tls () = Domain.DLS.get tls_key
  let set_tx n = if !on then (tls ()).cur_tx <- n
  let set_eid n = if !on then (tls ()).cur_eid <- n
  let ring_lock = Mutex.create ()

  (* The bounded span ring: completed spans, newest overwriting oldest. *)
  let dummy =
    { name = ""; detail = ""; start_ns = 0; dur_ns = 0; depth = 0; tx = 0; eid = 0 }

  let ring = ref (Array.make 4096 dummy)
  let ring_next = ref 0  (* total spans ever recorded *)

  let ring_capacity () = Array.length !ring

  let set_ring_capacity n =
    if n <= 0 then invalid_arg "Obs.Trace.set_ring_capacity: capacity must be positive";
    Mutex.lock ring_lock;
    ring := Array.make n dummy;
    ring_next := 0;
    Mutex.unlock ring_lock

  (* Set by the sink layer below; a forward reference breaks the module
     cycle between spans and sinks. *)
  let emit : (span -> unit) ref = ref (fun _ -> ())

  let record sp =
    Mutex.lock ring_lock;
    let r = !ring in
    r.(!ring_next mod Array.length r) <- sp;
    incr ring_next;
    Mutex.unlock ring_lock;
    !emit sp

  let recorded () =
    Mutex.lock ring_lock;
    let r = !ring in
    let cap = Array.length r in
    let n = if !ring_next < cap then !ring_next else cap in
    let first = !ring_next - n in
    let spans = List.init n (fun i -> r.((first + i) mod cap)) in
    Mutex.unlock ring_lock;
    spans

  let open_depth () = (tls ()).depth

  let begin_ ?(detail = "") name =
    if not !on then -1
    else begin
      let s = tls () in
      let d = s.depth in
      if d < max_depth then begin
        s.stk_name.(d) <- name;
        s.stk_detail.(d) <- detail;
        s.stk_start.(d) <- now_ns ();
        s.stk_tx.(d) <- s.cur_tx;
        s.stk_eid.(d) <- s.cur_eid
      end;
      s.depth <- d + 1;
      d
    end

  (* Closes the span of [token], first closing any inner spans an
     exception path left open — every begin gets its end.  [stop] is the
     shared clock reading, so [end_into] costs one read. *)
  let close_to s token stop =
    for i = s.depth - 1 downto token do
      if i < max_depth then
        record
          {
            name = s.stk_name.(i);
            detail = s.stk_detail.(i);
            start_ns = s.stk_start.(i);
            dur_ns = stop - s.stk_start.(i);
            depth = i;
            tx = s.stk_tx.(i);
            eid = s.stk_eid.(i);
          }
    done;
    s.depth <- token

  let end_ token =
    if token >= 0 && !on then begin
      let s = tls () in
      if token < s.depth then close_to s token (now_ns ())
    end

  let end_into h token =
    if token >= 0 && !on then begin
      let s = tls () in
      if token < s.depth then begin
        let stop = now_ns () in
        let dur = if token < max_depth then stop - s.stk_start.(token) else 0 in
        close_to s token stop;
        Metrics.observe h dur
      end
    end

  let instant ?(detail = "") name =
    if !on then begin
      let s = tls () in
      let now = now_ns () in
      record
        {
          name;
          detail;
          start_ns = now;
          dur_ns = 0;
          depth = s.depth;
          tx = s.cur_tx;
          eid = s.cur_eid;
        }
    end

  let with_span ?detail name f =
    let tok = begin_ ?detail name in
    Fun.protect ~finally:(fun () -> end_ tok) f

  (* Resets the calling domain's stack/context plus the shared ring; other
     domains' open stacks are theirs to unwind (tests run single-domain). *)
  let reset_all () =
    let s = tls () in
    s.depth <- 0;
    s.cur_tx <- 0;
    s.cur_eid <- 0;
    Mutex.lock ring_lock;
    ring_next := 0;
    Array.fill !ring 0 (Array.length !ring) dummy;
    Mutex.unlock ring_lock
end

(* --------------------------------------------------------- snapshots *)

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : (string * Metrics.histogram_stat) list;
}

let by_name (a, _) (b, _) = String.compare a b

let snapshot () =
  {
    counters =
      List.sort by_name
        (Hashtbl.fold
           (fun name c acc -> (name, Atomic.get c.Metrics.cv) :: acc)
           Metrics.counters []);
    gauges =
      List.sort by_name
        (Hashtbl.fold
           (fun name g acc -> (name, Atomic.get g.Metrics.gv) :: acc)
           Metrics.gauges []);
    histograms =
      List.sort by_name
        (Hashtbl.fold
           (fun name h acc -> (name, Metrics.histogram_stat h) :: acc)
           Metrics.histograms []);
  }

let ns_pretty v =
  if v >= 1_000_000_000 then Printf.sprintf "%.2fs" (float_of_int v /. 1e9)
  else if v >= 1_000_000 then Printf.sprintf "%.2fms" (float_of_int v /. 1e6)
  else if v >= 1_000 then Printf.sprintf "%.2fus" (float_of_int v /. 1e3)
  else Printf.sprintf "%dns" v

let pp_snapshot ppf snap =
  let open Chimera_util in
  (if snap.counters <> [] then begin
     let t =
       Pretty.table ~title:"counters" ~header:[ "name"; "value" ]
         ~aligns:[ Pretty.Left; Pretty.Right ] ()
     in
     List.iter (fun (n, v) -> Pretty.add_row t [ n; string_of_int v ]) snap.counters;
     Fmt.pf ppf "%s" (Pretty.render t)
   end);
  (if snap.gauges <> [] then begin
     let t =
       Pretty.table ~title:"gauges" ~header:[ "name"; "value" ]
         ~aligns:[ Pretty.Left; Pretty.Right ] ()
     in
     List.iter (fun (n, v) -> Pretty.add_row t [ n; string_of_int v ]) snap.gauges;
     Fmt.pf ppf "%s" (Pretty.render t)
   end);
  if snap.histograms <> [] then begin
    let t =
      Pretty.table ~title:"histograms"
        ~header:[ "name"; "count"; "mean"; "min"; "max"; "buckets" ]
        ~aligns:[ Pretty.Left; Pretty.Right; Pretty.Right; Pretty.Right; Pretty.Right; Pretty.Left ]
        ()
    in
    List.iter
      (fun (n, (s : Metrics.histogram_stat)) ->
        let mean = if s.h_count = 0 then 0 else s.h_sum / s.h_count in
        let buckets =
          String.concat " "
            (List.map
               (fun (lo, c) -> Printf.sprintf "%s:%d" (ns_pretty lo) c)
               s.h_buckets)
        in
        Pretty.add_row t
          [
            n;
            string_of_int s.h_count;
            ns_pretty mean;
            ns_pretty s.h_min;
            ns_pretty s.h_max;
            buckets;
          ])
      snap.histograms;
    Fmt.pf ppf "%s" (Pretty.render t)
  end

(* ------------------------------------------------------------- sinks *)

(* Minimal JSON emission/parsing for the JSONL sink — enough for our own
   span lines; no external dependency. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] = '\\' && !i + 1 < n then begin
       (match s.[!i + 1] with
       | '"' -> Buffer.add_char buf '"'
       | '\\' -> Buffer.add_char buf '\\'
       | 'n' -> Buffer.add_char buf '\n'
       | 'r' -> Buffer.add_char buf '\r'
       | 't' -> Buffer.add_char buf '\t'
       | 'u' when !i + 5 < n ->
           (match int_of_string_opt ("0x" ^ String.sub s (!i + 2) 4) with
           | Some code when code < 0x100 -> Buffer.add_char buf (Char.chr code)
           | _ -> ());
           i := !i + 4
       | c -> Buffer.add_char buf c);
       i := !i + 2
     end
     else begin
       Buffer.add_char buf s.[!i];
       incr i
     end)
  done;
  Buffer.contents buf

module Sink = struct
  type t = {
    name : string;
    on_span : Trace.span -> unit;
    on_snapshot : snapshot -> unit;
    on_flush : unit -> unit;
  }

  let sinks : t list ref = ref []

  let rewire () =
    match !sinks with
    | [] -> Trace.emit := fun _ -> ()
    | ss -> Trace.emit := fun sp -> List.iter (fun s -> s.on_span sp) ss

  let attach s =
    sinks := !sinks @ [ s ];
    rewire ()

  let detach name =
    sinks := List.filter (fun s -> not (String.equal s.name name)) !sinks;
    rewire ()

  let detach_all () =
    sinks := [];
    rewire ()

  let attached () = List.map (fun s -> s.name) !sinks

  let memory () =
    let acc = ref [] in
    ( {
        name = "memory";
        on_span = (fun sp -> acc := sp :: !acc);
        on_snapshot = (fun _ -> ());
        on_flush = (fun () -> ());
      },
      fun () -> List.rev !acc )

  let pp_span_line ppf (sp : Trace.span) =
    Fmt.pf ppf "[trace] tx=%d eid=%d %s%s%s %s depth=%d" sp.tx sp.eid sp.name
      (if sp.detail = "" then "" else "(")
      (if sp.detail = "" then "" else sp.detail ^ ")")
      (ns_pretty sp.dur_ns) sp.depth

  let stderr () =
    {
      name = "stderr";
      on_span = (fun sp -> Fmt.epr "%a@." pp_span_line sp);
      on_snapshot = (fun snap -> Fmt.epr "%a@." pp_snapshot snap);
      on_flush = (fun () -> flush Stdlib.stderr);
    }

  let span_to_json (sp : Trace.span) =
    Printf.sprintf
      "{\"name\":\"%s\",\"detail\":\"%s\",\"start_ns\":%d,\"dur_ns\":%d,\"depth\":%d,\"tx\":%d,\"eid\":%d}"
      (json_escape sp.name) (json_escape sp.detail) sp.start_ns sp.dur_ns
      sp.depth sp.tx sp.eid

  (* Field extraction from our own span lines: finds ["key":] outside any
     string literal and reads the value after it.  Not a general JSON
     parser — exactly the shape [span_to_json] emits. *)
  let find_field line key =
    let marker = "\"" ^ key ^ "\":" in
    let mlen = String.length marker and n = String.length line in
    let rec scan i in_string =
      if i >= n then None
      else if in_string then
        if line.[i] = '\\' then scan (i + 2) true
        else scan (i + 1) (line.[i] <> '"')
      else if
        line.[i] = '"'
        && i + mlen <= n
        && String.sub line i mlen = marker
      then Some (i + mlen)
      else if line.[i] = '"' then scan (i + 1) true
      else scan (i + 1) false
    in
    scan 0 false

  let string_field line key =
    match find_field line key with
    | None -> Error (Printf.sprintf "missing field %S" key)
    | Some start ->
        if start >= String.length line || line.[start] <> '"' then
          Error (Printf.sprintf "field %S is not a string" key)
        else begin
          let n = String.length line in
          let rec close i =
            if i >= n then Error (Printf.sprintf "unterminated field %S" key)
            else if line.[i] = '\\' then close (i + 2)
            else if line.[i] = '"' then
              Ok (json_unescape (String.sub line (start + 1) (i - start - 1)))
            else close (i + 1)
          in
          close (start + 1)
        end

  let int_field line key =
    match find_field line key with
    | None -> Error (Printf.sprintf "missing field %S" key)
    | Some start ->
        let n = String.length line in
        let stop = ref start in
        while
          !stop < n && (line.[!stop] = '-' || (line.[!stop] >= '0' && line.[!stop] <= '9'))
        do
          incr stop
        done;
        (match int_of_string_opt (String.sub line start (!stop - start)) with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "field %S is not an integer" key))

  let span_of_json line =
    let ( let* ) = Result.bind in
    let* name = string_field line "name" in
    let* detail = string_field line "detail" in
    let* start_ns = int_field line "start_ns" in
    let* dur_ns = int_field line "dur_ns" in
    let* depth = int_field line "depth" in
    let* tx = int_field line "tx" in
    let* eid = int_field line "eid" in
    Ok { Trace.name; detail; start_ns; dur_ns; depth; tx; eid }

  let snapshot_to_json snap =
    let buf = Buffer.create 512 in
    Buffer.add_string buf "{\"snapshot\":{\"counters\":{";
    List.iteri
      (fun i (n, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (Printf.sprintf "\"%s\":%d" (json_escape n) v))
      snap.counters;
    Buffer.add_string buf "},\"gauges\":{";
    List.iteri
      (fun i (n, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (Printf.sprintf "\"%s\":%d" (json_escape n) v))
      snap.gauges;
    Buffer.add_string buf "},\"histograms\":{";
    List.iteri
      (fun i (n, (s : Metrics.histogram_stat)) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf
          (Printf.sprintf
             "\"%s\":{\"count\":%d,\"sum\":%d,\"min\":%d,\"max\":%d,\"buckets\":["
             (json_escape n) s.h_count s.h_sum s.h_min s.h_max);
        List.iteri
          (fun j (lo, c) ->
            if j > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf (Printf.sprintf "[%d,%d]" lo c))
          s.h_buckets;
        Buffer.add_string buf "]}")
      snap.histograms;
    Buffer.add_string buf "}}}";
    Buffer.contents buf

  let jsonl ~path =
    let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 path in
    {
      name = "jsonl:" ^ path;
      on_span =
        (fun sp ->
          output_string oc (span_to_json sp);
          output_char oc '\n');
      on_snapshot =
        (fun snap ->
          output_string oc (snapshot_to_json snap);
          output_char oc '\n');
      on_flush = (fun () -> flush oc);
    }
end

let publish () =
  match !Sink.sinks with
  | [] -> ()
  | sinks ->
      let snap = snapshot () in
      List.iter (fun (s : Sink.t) -> s.on_snapshot snap) sinks;
      List.iter (fun (s : Sink.t) -> s.on_flush ()) sinks

let reset () =
  Metrics.reset_all ();
  Trace.reset_all ()

let hard_reset () =
  reset ();
  Metrics.forget_all ();
  Sink.detach_all ()

(* ---------------------------------------------- environment start-up *)

(* CHIMERA_METRICS=1 turns metrics on; CHIMERA_TRACE additionally records
   spans — into the ring only ("1"), to stderr ("stderr") or to a JSONL
   file (any other value, taken as a path, flushed at exit). *)
let () =
  (match Sys.getenv_opt "CHIMERA_METRICS" with
  | Some ("1" | "true" | "yes") -> set_enabled true
  | Some _ | None -> ());
  match Sys.getenv_opt "CHIMERA_TRACE" with
  | None | Some "" | Some "0" -> ()
  | Some v ->
      set_enabled true;
      (match v with
      | "1" | "true" | "yes" -> ()
      | "stderr" -> Sink.attach (Sink.stderr ())
      | path ->
          Sink.attach (Sink.jsonl ~path);
          at_exit publish)
