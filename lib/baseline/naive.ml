(* The naive baseline: re-evaluate ts for every monitored expression after
   every event, with no V(E) filtering and no incremental state.  This is
   the strawman the static optimization of Section 5.1 is measured
   against. *)

open Chimera_event
open Chimera_calculus
module Obs = Chimera_obs.Obs

let c_evals = Obs.Metrics.counter "baseline.naive.evals"

type t = {
  eb : Event_base.t;
  exprs : Expr.set array;
  mutable active : bool array;
}

let create exprs =
  {
    eb = Event_base.create ();
    exprs = Array.of_list exprs;
    active = Array.make (List.length exprs) false;
  }

let event_base t = t.eb

(* Records the event and recomputes every expression at the new instant. *)
let on_event t ~etype ~oid =
  ignore (Event_base.record t.eb ~etype ~oid);
  let at = Event_base.probe_now t.eb in
  let window = Window.all ~upto:at in
  let env = Ts.env t.eb ~window in
  Array.iteri
    (fun i expr ->
      Obs.Metrics.incr c_evals;
      t.active.(i) <- Ts.active env ~at expr)
    t.exprs

let active t i = t.active.(i)
let count_active t = Array.fold_left (fun n a -> if a then n + 1 else n) 0 t.active
