(* Ode-style automaton detector (related work, Section 2).

   Ode observes that negation-free composite events have regular-language
   expressive power and detects them with finite automata.  We compile an
   expression to a deterministic automaton whose states are bitmasks of
   per-node activation flags; transitions are computed on demand and
   memoized (lazy DFA construction), so steady-state detection is one
   hash lookup per event.

   Supported fragment: negation- and instance-free set expressions, up to
   62 nodes.  Activation (the ts sign) matches the calculus exactly; the
   automaton intentionally does not track activation timestamps — that is
   the representational gap between automaton detection and Chimera's
   timestamp calculus that the paper's Section 4 motivates. *)

open Chimera_event
open Chimera_calculus
module Obs = Chimera_obs.Obs

let c_transitions = Obs.Metrics.counter "baseline.automaton.transitions"

let g_states = Obs.Metrics.gauge "baseline.automaton.states_materialized"
(* Lazy-DFA growth: the gauge tracks the largest transition memo across
   detectors, the point of comparison against the 2^nodes upper bound. *)

exception Unsupported of string

type shape =
  | A_prim of Event_type.t
  | A_and of int * int
  | A_or of int * int
  | A_seq of int * int

type t = {
  (* Postorder: children precede parents; the root is last. *)
  nodes : shape array;
  (* Transition memo: (state, event-type id) -> state. *)
  memo : (int * int, int) Hashtbl.t;
  type_ids : int Event_type.Tbl.t;
  mutable next_type_id : int;
  mutable state : int;
}

let build expr =
  let nodes = ref [] in
  let count = ref 0 in
  let push shape =
    let id = !count in
    incr count;
    nodes := shape :: !nodes;
    id
  in
  let rec go = function
    | Expr.Prim p -> push (A_prim p)
    | Expr.And (a, b) ->
        let ia = go a in
        let ib = go b in
        push (A_and (ia, ib))
    | Expr.Or (a, b) ->
        let ia = go a in
        let ib = go b in
        push (A_or (ia, ib))
    | Expr.Seq (a, b) ->
        let ia = go a in
        let ib = go b in
        push (A_seq (ia, ib))
    | Expr.Not _ -> raise (Unsupported "automaton: negation")
    | Expr.Inst _ -> raise (Unsupported "automaton: instance operators")
  in
  let root = go expr in
  let arr = Array.of_list (List.rev !nodes) in
  assert (root = Array.length arr - 1);
  arr

let create expr =
  let nodes = build expr in
  if Array.length nodes > 62 then
    raise (Unsupported "automaton: expression too large (> 62 nodes)");
  {
    nodes;
    memo = Hashtbl.create 256;
    type_ids = Event_type.Tbl.create 16;
    next_type_id = 0;
    state = 0;
  }

let type_id t etype =
  match Event_type.Tbl.find_opt t.type_ids etype with
  | Some id -> id
  | None ->
      let id = t.next_type_id in
      t.next_type_id <- id + 1;
      Event_type.Tbl.add t.type_ids etype id;
      id

let bit state i = (state lsr i) land 1 = 1

(* One symbolic step: given the active bits before the event and the event
   type, compute active bits after.  [refreshed] marks the nodes whose
   activation instant is the arriving event's instant; a precedence node
   activates when its second operand refreshes while its first operand is
   active at that same instant (inclusive, as in ts(A, ts(B,t))). *)
let step nodes state etype =
  let n = Array.length nodes in
  let active = Array.make n false in
  let refreshed = Array.make n false in
  for i = 0 to n - 1 do
    let old = bit state i in
    (match nodes.(i) with
    | A_prim subscription ->
        if Event_type.generalizes ~subscription ~occurrence:etype then begin
          active.(i) <- true;
          refreshed.(i) <- true
        end
        else active.(i) <- old
    | A_and (a, b) ->
        active.(i) <- active.(a) && active.(b);
        refreshed.(i) <- active.(i) && (refreshed.(a) || refreshed.(b))
    | A_or (a, b) ->
        active.(i) <- active.(a) || active.(b);
        refreshed.(i) <-
          (active.(a) && refreshed.(a)) || (active.(b) && refreshed.(b))
    | A_seq (a, b) ->
        let newly = refreshed.(b) && active.(a) in
        active.(i) <- old || newly;
        refreshed.(i) <- newly);
    ()
  done;
  let out = ref 0 in
  for i = 0 to n - 1 do
    if active.(i) then out := !out lor (1 lsl i)
  done;
  !out

let on_event t ~etype =
  Obs.Metrics.incr c_transitions;
  let key = (t.state, type_id t etype) in
  let next =
    match Hashtbl.find_opt t.memo key with
    | Some s -> s
    | None ->
        let s = step t.nodes t.state etype in
        Hashtbl.add t.memo key s;
        if Obs.enabled () then begin
          let n = Hashtbl.length t.memo in
          if n > Obs.Metrics.gauge_value g_states then
            Obs.Metrics.set_gauge g_states n
        end;
        s
  in
  t.state <- next

let active t = bit t.state (Array.length t.nodes - 1)
let reset t = t.state <- 0
let states_materialized t = Hashtbl.length t.memo
