(* Snoop-style incremental operator-tree detector (related work, Section 2
   of the paper).

   Each node of the expression tree carries its current activation
   timestamp; an arriving event updates the matching primitive leaves and
   propagates along their root paths.  This is the classic incremental
   alternative to Chimera's recompute-from-indexes ts evaluation, used as a
   baseline in the comparison benches.

   Supported fragment: negation-free, set-oriented expressions (negation
   makes node state time-dependent — its value is the current instant —
   which a stored-state tree cannot cache; Snoop itself restricts negation
   to bounded intervals for the same reason).  On this fragment the
   detector computes exactly the calculus' ts value, which the test suite
   checks by property. *)

open Chimera_util
open Chimera_event
open Chimera_calculus
module Obs = Chimera_obs.Obs

let c_activations = Obs.Metrics.counter "baseline.tree.activations"

type node = {
  mutable value : int;  (** current ts; 0 = inactive (no occurrence yet) *)
  shape : shape;
  parent : node option ref;
}

and shape =
  | N_prim of Event_type.t
  | N_and of node * node
  | N_or of node * node
  | N_seq of node * node

exception Unsupported of string

type t = {
  root : node;
  (* Leaves grouped for the per-event update; matching uses
     [Event_type.generalizes]. *)
  leaves : (Event_type.t * node) list;
}

let rec build parent = function
  | Expr.Prim p ->
      let node = { value = 0; shape = N_prim p; parent } in
      (node, [ (p, node) ])
  | Expr.And (a, b) ->
      let self = ref None in
      let na, la = build self a and nb, lb = build self b in
      let node = { value = 0; shape = N_and (na, nb); parent } in
      self := Some node;
      (node, la @ lb)
  | Expr.Or (a, b) ->
      let self = ref None in
      let na, la = build self a and nb, lb = build self b in
      let node = { value = 0; shape = N_or (na, nb); parent } in
      self := Some node;
      (node, la @ lb)
  | Expr.Seq (a, b) ->
      let self = ref None in
      let na, la = build self a and nb, lb = build self b in
      let node = { value = 0; shape = N_seq (na, nb); parent } in
      self := Some node;
      (node, la @ lb)
  | Expr.Not _ -> raise (Unsupported "tree detector: negation")
  | Expr.Inst _ -> raise (Unsupported "tree detector: instance operators")

let create expr =
  if not (Expr.is_regular expr) then
    raise (Unsupported "tree detector: negation or instance operators");
  let root_parent = ref None in
  let root, leaves = build root_parent expr in
  { root; leaves }

(* Recomputes a node from its children after a child refresh.  [stamp] is
   the arriving event's instant: any node whose activation is refreshed by
   this event is stamped with it (it is the latest instant, hence the max). *)
let refresh node ~stamp =
  match node.shape with
  | N_prim _ -> true (* leaves are stamped directly *)
  | N_and (a, b) ->
      if a.value > 0 && b.value > 0 then begin
        node.value <- stamp;
        true
      end
      else false
  | N_or (a, b) ->
      if a.value > 0 || b.value > 0 then begin
        node.value <- stamp;
        true
      end
      else false
  | N_seq (a, b) ->
      (* The second operand refreshed at [stamp]; the precedence activates
         iff the first operand is active at that instant (which includes a
         same-event activation, matching ts(A, ts(B,t)) with inclusive
         bound). *)
      if a.value > 0 && b.value > 0 then begin
        node.value <- stamp;
        true
      end
      else false

(* Propagates a leaf refresh towards the root; stops as soon as a node is
   not refreshed (its value cannot have changed: children values only grow
   and activation stamps are monotone). *)
let rec propagate node ~stamp =
  match !(node.parent) with
  | None -> ()
  | Some parent ->
      (* A refresh of [node] can only refresh [parent] through the operand
         position [node] occupies; for N_seq only the second operand
         position refreshes the activation. *)
      let relevant =
        match parent.shape with
        | N_prim _ -> false
        | N_and _ | N_or _ -> true
        | N_seq (_, b) -> b == node
      in
      if relevant && refresh parent ~stamp then begin
        Obs.Metrics.incr c_activations;
        propagate parent ~stamp
      end

let on_event t ~etype ~timestamp =
  let stamp = Time.to_int timestamp in
  List.iter
    (fun (subscription, leaf) ->
      if Event_type.generalizes ~subscription ~occurrence:etype then begin
        leaf.value <- stamp;
        (* One activation per stamped node: the leaf plus every ancestor
           [propagate] refreshes — the detector's work unit. *)
        Obs.Metrics.incr c_activations;
        propagate leaf ~stamp
      end)
    t.leaves

let value t = t.root.value
let active t = t.root.value > 0

let reset t =
  let rec clear node =
    node.value <- 0;
    match node.shape with
    | N_prim _ -> ()
    | N_and (a, b) | N_or (a, b) | N_seq (a, b) ->
        clear a;
        clear b
  in
  clear t.root
