(** Shared memoized ts evaluation over interned (hash-consed) expressions
    — the engine's default evaluation substrate.

    One memo serves a whole rule set: because the event base is
    append-only, ts(E, at) over a window with a fixed lower bound is
    immutable once computed, so (node, window, instant) values are cached
    across probes and across rules (structurally equal subexpressions
    intern to the same node).  Cache keys carry the window's lower bound,
    so a rule's consideration moves it onto fresh keys — nothing is
    invalidated and the interned graph is never rebuilt.

    Each node also carries the set of primitive event types it mentions
    (V(E) at node granularity): for negation-free nodes a probe at a later
    instant reuses the previous value when no occurrence of those types
    arrived in between, so an arrival only forces re-evaluation of the
    nodes that mention its type.

    Set-level values live in small flat per-node slot rings (the hot path
    allocates nothing); per-object instance values live in bounded
    per-node tables.  Primitives and cheap composites bypass the cache:
    their recompute is fewer index probes than a lookup costs. *)

open Chimera_util
open Chimera_event

type t

type handle
(** An interned expression; evaluation through a handle never re-hashes
    the tree.  Handles stay valid across {!restart}. *)

val create : ?max_entries:int -> Event_base.t -> t
(** A memo bound to an event base.  [max_entries] bounds the per-object
    instance-slot population (default 2^20; set-level slots are one ring
    per node and need no bound); exceeding it drops the instance slots —
    never the interned graph — and counts an eviction. *)

val intern : t -> Expr.set -> handle
val intern_inst : t -> Expr.inst -> handle

val ts_handle : t -> after:Time.t -> at:Time.t -> handle -> int
(** ts of the interned expression at [at] over the window whose lower
    bound is [after] (upper bound clips at [at]); same value as {!Ts.ts}
    under the logical style (property-tested). *)

val active_handle : t -> after:Time.t -> at:Time.t -> handle -> bool

val ts : t -> after:Time.t -> at:Time.t -> Expr.set -> int
(** Interns (cached) then evaluates. *)

val ots : t -> after:Time.t -> at:Time.t -> Expr.inst -> Ident.Oid.t -> int
val active : t -> after:Time.t -> at:Time.t -> Expr.set -> bool

val occurred_objects :
  ?candidates:Ident.Oid.t list ->
  t ->
  after:Time.t ->
  at:Time.t ->
  Expr.inst ->
  Ident.Oid.t list
(** Objects activating the instance expression at [at] — the [occurred]
    event formula through the cache; agrees with {!Ts.occurred_objects}. *)

val occurrence_instants :
  t -> after:Time.t -> at:Time.t -> Expr.inst -> Ident.Oid.t -> Time.t list
(** Instants at which the expression arises for the object — the [at]
    event formula through the cache; agrees with
    {!Ts.occurrence_instants}. *)

val restart : t -> Event_base.t -> unit
(** The commit/compaction path: drops every cached value and rebinds to
    [eb] (pass the current event base when only the windows restarted);
    the interned graph, handles, and counters survive. *)

val hits : t -> int
val misses : t -> int

val evictions : t -> int
(** Times the instance slots overflowed [max_entries] and were dropped. *)

val event_base : t -> Event_base.t
(** The log this memo is bound to (cached values are per event base). *)

val node_count : t -> int
(** Distinct interned nodes (shows cross-rule sharing). *)

(** {2 Per-node observability} *)

type node_stat = {
  node_id : int;
  node_expr : string;  (** diagnostic rendering, fully parenthesized *)
  node_hits : int;
  node_misses : int;
  node_invalidations : int;
      (** restarts/evictions that dropped live cached values of the node *)
  node_cost : int;  (** recompute cost estimate (index probes) *)
  node_cached : bool;  (** false for nodes that bypass the cache *)
}

val node_stats : t -> node_stat list
(** One entry per interned node, in interning order.  The per-node
    hit/miss/invalidation tallies are maintained only while
    [Obs.enabled]; the aggregate {!hits}/{!misses} always are. *)
