(* The ts / ots functions (Section 4).

   [ts env ~at e] maps expression [e], at instant [at], relative to the
   window R carried by [env], to a signed integer: positive iff [e] is
   active, with magnitude the activation timestamp when active and the
   evaluation instant (or a negated component timestamp) when not.

   Both semantic styles of the paper are implemented: [Logical] is the
   case-analysis definition, [Algebraic] the closed form built from min/max
   and the sign function [u].  They agree on every expression and instant
   (property-tested), which is the paper's point: boolean laws such as
   De Morgan hold for ts values, not just for activation. *)

open Chimera_util
open Chimera_event
module Obs = Chimera_obs.Obs

(* Top-level evaluation entries are counted and timed (recursive descent
   is not: one observation per probe, not per node). *)
let c_evals = Obs.Metrics.counter "ts.evals"
let h_eval = Obs.Metrics.histogram "ts.eval_ns"

type style = Logical | Algebraic

type env = { eb : Event_base.t; window : Window.t; style : style }

let env ?(style = Logical) eb ~window = { eb; window; style }
let window t = t.window
let event_base t = t.eb
let with_window t ~window = { t with window }

let u v = if v > 0 then 1 else -1

let prim_ts t ~at p =
  match Event_base.last_of_type t.eb ~etype:p ~window:t.window ~at with
  | Some stamp -> Time.to_int stamp
  | None -> -Time.to_int at

let prim_ots t ~at p oid =
  match Event_base.last_of_type_on t.eb ~etype:p ~oid ~window:t.window ~at with
  | Some stamp -> Time.to_int stamp
  | None -> -Time.to_int at

(* Logical-style ots (Section 4.3). *)
let rec ots_logical t ~at ie oid =
  match ie with
  | Expr.I_prim p -> prim_ots t ~at p oid
  | Expr.I_not e -> -ots_logical t ~at e oid
  | Expr.I_and (a, b) ->
      let va = ots_logical t ~at a oid and vb = ots_logical t ~at b oid in
      if va > 0 && vb > 0 then max va vb else min va vb
  | Expr.I_or (a, b) ->
      let va = ots_logical t ~at a oid and vb = ots_logical t ~at b oid in
      if va > 0 || vb > 0 then max va vb else min va vb
  | Expr.I_seq (a, b) ->
      let vb = ots_logical t ~at b oid in
      if vb > 0 && ots_logical t ~at:(Time.of_int vb) a oid > 0 then vb
      else -Time.to_int at

(* Algebraic-style ots: the same function expressed through u-coefficients,
   mirroring the paper's closed forms. *)
let rec ots_algebraic t ~at ie oid =
  match ie with
  | Expr.I_prim p -> prim_ots t ~at p oid
  | Expr.I_not e -> -ots_algebraic t ~at e oid
  | Expr.I_and (a, b) ->
      let va = ots_algebraic t ~at a oid and vb = ots_algebraic t ~at b oid in
      let both = (1 + u va) * (1 + u vb) / 4 in
      (max va vb * both) + (min va vb * (1 - both))
  | Expr.I_or (a, b) ->
      let va = ots_algebraic t ~at a oid and vb = ots_algebraic t ~at b oid in
      let neither = (1 - u va) * (1 - u vb) / 4 in
      (min va vb * neither) + (max va vb * (1 - neither))
  | Expr.I_seq (a, b) ->
      let vb = ots_algebraic t ~at b oid in
      let probe = if vb > 0 then Time.of_int vb else at in
      let va_at_b = ots_algebraic t ~at:probe a oid in
      let q = (1 + u vb) * (1 + u va_at_b) / 4 in
      (vb * q) - (Time.to_int at * (1 - q))

let ots t ~at ie oid =
  match t.style with
  | Logical -> ots_logical t ~at ie oid
  | Algebraic -> ots_algebraic t ~at ie oid

(* Instance-to-set lifting (Section 4.3): an instance expression used at
   the set level is active iff some object activates it — except a
   top-level instance negation, which is active iff *no* object has the
   negated event active (min-lift); on primitives this makes -=A coincide
   with -A exactly, as the paper states. *)
let lift t ~at ie =
  let oids = Event_base.oids_in t.eb ~window:t.window ~at in
  match ie with
  | Expr.I_not _ -> (
      match oids with
      | [] -> Time.to_int at
      | o :: os ->
          List.fold_left
            (fun acc oid -> min acc (ots t ~at ie oid))
            (ots t ~at ie o) os)
  | Expr.I_prim _ | Expr.I_and _ | Expr.I_or _ | Expr.I_seq _ -> (
      match oids with
      | [] -> -Time.to_int at
      | o :: os ->
          List.fold_left
            (fun acc oid -> max acc (ots t ~at ie oid))
            (ots t ~at ie o) os)

let rec ts_logical t ~at e =
  match e with
  | Expr.Prim p -> prim_ts t ~at p
  | Expr.Not e -> -ts_logical t ~at e
  | Expr.And (a, b) ->
      let va = ts_logical t ~at a and vb = ts_logical t ~at b in
      if va > 0 && vb > 0 then max va vb else min va vb
  | Expr.Or (a, b) ->
      let va = ts_logical t ~at a and vb = ts_logical t ~at b in
      if va > 0 || vb > 0 then max va vb else min va vb
  | Expr.Seq (a, b) ->
      let vb = ts_logical t ~at b in
      if vb > 0 && ts_logical t ~at:(Time.of_int vb) a > 0 then vb
      else -Time.to_int at
  | Expr.Inst ie -> lift t ~at ie

let rec ts_algebraic t ~at e =
  match e with
  | Expr.Prim p -> prim_ts t ~at p
  | Expr.Not e -> -ts_algebraic t ~at e
  | Expr.And (a, b) ->
      let va = ts_algebraic t ~at a and vb = ts_algebraic t ~at b in
      let both = (1 + u va) * (1 + u vb) / 4 in
      (max va vb * both) + (min va vb * (1 - both))
  | Expr.Or (a, b) ->
      let va = ts_algebraic t ~at a and vb = ts_algebraic t ~at b in
      let neither = (1 - u va) * (1 - u vb) / 4 in
      (min va vb * neither) + (max va vb * (1 - neither))
  | Expr.Seq (a, b) ->
      let vb = ts_algebraic t ~at b in
      let probe = if vb > 0 then Time.of_int vb else at in
      let va_at_b = ts_algebraic t ~at:probe a in
      let q = (1 + u vb) * (1 + u va_at_b) / 4 in
      (vb * q) - (Time.to_int at * (1 - q))
  | Expr.Inst ie -> lift t ~at ie

let eval t ~at e =
  match t.style with
  | Logical -> ts_logical t ~at e
  | Algebraic -> ts_algebraic t ~at e

(* A primitive evaluation is ~150ns, so the disabled path must stay a
   single load-and-branch ahead of the untouched pre-obs code. *)
let ts t ~at e =
  if Obs.enabled () then begin
    Obs.Metrics.incr c_evals;
    let t0 = Obs.start_timer () in
    let v = eval t ~at e in
    Obs.observe_since h_eval t0;
    v
  end
  else eval t ~at e

let active t ~at e = ts t ~at e > 0
let active_on t ~at ie oid = ots t ~at ie oid > 0

let activation t ~at e =
  let v = ts t ~at e in
  if v > 0 then Some (Time.of_int v) else None

(* Existential activation over an interval (the triggering semantics of
   Section 4.4 quantifies over dense time).  The sign of ts only changes at
   event instants, so probing the window's lower bound, each event instant
   in range, and [upto] is exact. *)
let exists_active t ~upto e =
  let after = Window.after t.window in
  if Time.( < ) upto after then None
  else begin
    let scan_window =
      Window.make ~after ~upto:(Time.min upto (Window.upto t.window))
    in
    let candidates =
      after :: Event_base.timestamps_in t.eb ~window:scan_window @ [ upto ]
    in
    List.find_opt (fun at -> active t ~at e) candidates
  end

(* Objects bound by the [occurred] event formula (Section 3.3): those for
   which the instance expression is active at [at].  The default candidate
   set is the objects affected within the window; [candidates] lets callers
   widen it (a negation can hold for objects untouched by any event). *)
let occurred_objects ?candidates t ~at ie =
  let candidates =
    match candidates with
    | Some oids -> oids
    | None -> Event_base.oids_in t.eb ~window:t.window ~at
  in
  List.filter (fun oid -> ots t ~at ie oid > 0) candidates

(* Instants bound by the [at] event formula: every instant in the window at
   which the expression arises for [oid], i.e. event instants [tau] where
   the activation timestamp equals [tau] itself.  Negations "occur" at
   probe instants continuously and are therefore reported only when they
   stamp an enclosing composite at an event instant, matching the paper's
   reading that [at] enumerates occurrences. *)
let occurrence_instants t ~at ie oid =
  let prims = Event_type.Set.elements (Expr.primitives_inst ie) in
  let stamps =
    List.concat_map
      (fun etype ->
        Event_base.timestamps_of_type_on t.eb ~etype ~oid ~window:t.window ~at)
      prims
  in
  let stamps = List.sort_uniq Time.compare stamps in
  List.filter (fun tau -> ots t ~at:tau ie oid = Time.to_int tau) stamps

(* Convenience for the Fig. 5 reproduction: sample ts over given instants. *)
let series t e ~instants = List.map (fun at -> (at, ts t ~at e)) instants
