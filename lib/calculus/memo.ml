(* Shared memoized ts evaluation over interned (hash-consed) expressions.

   The recompute-from-indexes evaluation of Section 5 re-derives every
   subexpression value on each probe.  Because the event base is
   append-only, ts(E, at) over a window with a fixed lower bound never
   changes once computed, so (node, window, instant) triples can be cached
   across probes — and across rules, since structurally equal
   subexpressions intern to the same node.

   One memo serves a whole rule set: cache entries carry the window's
   lower bound in their key, so rules whose windows coincide (the common
   case — every window restarts at the transaction start) share values,
   and a rule's consideration merely moves it onto fresh keys instead of
   invalidating anything.  {!restart} — the commit/compaction path —
   drops the cached values while preserving the interned node graph and
   the cumulative counters.

   On top of the exact value cache sits a per-node V(E) fast path: each
   node carries the set of primitive event types it mentions, and for
   negation-free nodes a probe at a later instant reuses the previous
   value when no occurrence of those types arrived in between (activation
   is monotone in the node's own events, and a negation-free node's
   inactive value is exactly -at).  An arriving occurrence therefore only
   forces re-evaluation of the nodes that mention its type. *)

open Chimera_util
open Chimera_event
module Obs = Chimera_obs.Obs

(* The cache's behaviour over time is the first thing a slow engine run
   asks about: aggregate hit/miss/eviction/restart counters feed the
   metric registry on the same increments as the engine-visible totals,
   and per-node tallies (kept in flat int vectors, touched only while
   observability is enabled) attribute them to individual interned
   subexpressions via {!node_stats}. *)
let c_hits = Obs.Metrics.counter "memo.hits"
let c_misses = Obs.Metrics.counter "memo.misses"
let c_evictions = Obs.Metrics.counter "memo.evictions"
let c_restarts = Obs.Metrics.counter "memo.restarts"
let c_evals = Obs.Metrics.counter "memo.evals"
let g_nodes = Obs.Metrics.gauge "memo.nodes"
let h_eval = Obs.Metrics.histogram "memo.eval_ns"

type node =
  | N_prim of Event_type.t
  | N_not of int
  | N_and of int * int
  | N_or of int * int
  | N_seq of int * int
  | N_inst of int  (** set-level lifting of the instance node *)
  | N_iprim of Event_type.t
  | N_inot of int
  | N_iand of int * int
  | N_ior of int * int
  | N_iseq of int * int

type handle = int

(* A per-object slot for instance-level values, updated in place. *)
type islot = { mutable iafter : int; mutable iat : int; mutable iv : int }

(* Values are cached in a small ring of slots per node (set-oriented) or
   one slot per (node, object) (instance-oriented), each holding a
   (window, instant, value) probe.  Set rings live in three flat unboxed
   int vectors of stride [slot_width], so the hot path — one probe per
   node per instant, driven by the Trigger Support after every block —
   allocates nothing and never hashes.  The ring (rather than a single
   newest slot) is what makes cross-rule sharing work: rules scan the
   same new instants one after another, so the second rule's probes hit
   the instants the first rule just filled in. *)
type t = {
  mutable eb : Event_base.t;
  nodes : node Vec.t;
  tyset : Event_type.Set.t Vec.t;
      (** per-node primitive-type sets: the node-granular V(E) *)
  stable : bool Vec.t;
      (** negation-free below: value-stable across irrelevant arrivals *)
  cost : int Vec.t;
      (** recompute cost estimate (index probes in the subtree); nodes
          cheaper than the cache machinery bypass it *)
  set_ids : (Expr.set, int) Hashtbl.t;
  inst_ids : (Expr.inst, int) Hashtbl.t;
  node_ids : (node, int) Hashtbl.t;
  slot_after : int Vec.t;
      (** ring, stride [slot_width]: window lower bound; -1 = empty *)
  slot_at : int Vec.t;  (** ring: probe instant *)
  slot_v : int Vec.t;  (** ring: cached ts value *)
  slot_cursor : int Vec.t;  (** per-node round-robin insertion point *)
  inst_slots : (int, islot) Hashtbl.t Vec.t;  (** per node, keyed by oid *)
  mutable inst_entries : int;  (** live instance slots, for the bound *)
  max_entries : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  (* Per-node observability tallies, maintained only while [Obs.enabled]
     (two int-vector bumps per cached probe): hits, misses, and
     invalidations (restarts/evictions that dropped live values of the
     node). *)
  nhits : int Vec.t;
  nmisses : int Vec.t;
  ninval : int Vec.t;
  (* The reverse V(E) index: each node subscribes to the event types of
     its footprint, and an event-base listener bumps the subscribers'
     arrival watermark as occurrences are recorded.  A probe whose cached
     instant is at or past the watermark is clean — no relevant arrival
     since — and reuses without re-probing the window. *)
  subs : int list Event_type.Tbl.t;  (** event type -> subscribed node ids *)
  last_arrival : int Vec.t;
      (** per node: instant of the newest relevant occurrence (as
          [Time.to_int]); only ever an over-approximation, so a stale
          entry costs a re-probe, never soundness *)
}

(* Ring size: at least the number of fresh instants per block, so that
   every rule of a set scanning the block hits the values the first one
   computed.  Scanning it is a handful of int compares. *)
let slot_width = 8

(* A slot probe (ring scan or per-object table lookup, plus the arrival
   test on a near miss) costs about as much as a couple of index probes,
   so nodes whose whole subtree recomputes in fewer bypass the cache:
   caching a [conj] of two primitives can only lose. *)
let cache_min_cost = 4

let default_max_entries = 1 lsl 20

(* Feed the arrival watermarks from the event base: an occurrence bumps
   exactly the nodes subscribed to one of its index keys (its type and,
   for qualified modifies, the unqualified alias) — the Rete-style
   discrimination step, O(affected nodes) per event. *)
let attach t eb =
  Event_base.on_insert eb (fun occ ->
      let stamp = Time.to_int (Occurrence.timestamp occ) in
      List.iter
        (fun key ->
          match Event_type.Tbl.find_opt t.subs key with
          | None -> ()
          | Some ids -> List.iter (fun id -> Vec.set t.last_arrival id stamp) ids)
        (Event_base.indexed_types occ))

let create ?(max_entries = default_max_entries) eb =
  let t = {
    eb;
    nodes = Vec.create ~dummy:(N_prim (Event_type.external_ ~name:"_" ~class_name:""));
    tyset = Vec.create ~dummy:Event_type.Set.empty;
    stable = Vec.create ~dummy:false;
    cost = Vec.create ~dummy:0;
    set_ids = Hashtbl.create 16;
    inst_ids = Hashtbl.create 16;
    node_ids = Hashtbl.create 16;
    slot_after = Vec.create ~dummy:(-1);
    slot_at = Vec.create ~dummy:(-1);
    slot_v = Vec.create ~dummy:0;
    slot_cursor = Vec.create ~dummy:0;
    inst_slots = Vec.create ~dummy:(Hashtbl.create 0);
    inst_entries = 0;
    max_entries;
    hits = 0;
    misses = 0;
    evictions = 0;
    nhits = Vec.create ~dummy:0;
    nmisses = Vec.create ~dummy:0;
    ninval = Vec.create ~dummy:0;
    subs = Event_type.Tbl.create 64;
    last_arrival = Vec.create ~dummy:0;
  }
  in
  attach t eb;
  t

let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
let event_base t = t.eb
let node_count t = Vec.length t.nodes

(* Structural interning: one deep traversal per distinct expression.  Each
   node is allocated with its primitive-type set and stability flag, both
   derived from its children (already interned). *)
let alloc t node ~types ~stable ~cost =
  match Hashtbl.find_opt t.node_ids node with
  | Some id -> id
  | None ->
      let id = Vec.length t.nodes in
      Vec.push t.nodes node;
      Vec.push t.tyset types;
      Vec.push t.stable stable;
      Vec.push t.cost cost;
      for _ = 1 to slot_width do
        Vec.push t.slot_after (-1);
        Vec.push t.slot_at (-1);
        Vec.push t.slot_v 0
      done;
      Vec.push t.slot_cursor 0;
      Vec.push t.inst_slots (Hashtbl.create 8);
      Vec.push t.nhits 0;
      Vec.push t.nmisses 0;
      Vec.push t.ninval 0;
      (* Subscribe the node to its V(E) types and start its watermark at
         the present: occurrences already in the log predate it, so the
         watermark never understates a relevant arrival. *)
      Event_type.Set.iter
        (fun ty ->
          let ids =
            match Event_type.Tbl.find_opt t.subs ty with
            | Some ids -> ids
            | None -> []
          in
          Event_type.Tbl.replace t.subs ty (id :: ids))
        types;
      Vec.push t.last_arrival (Time.to_int (Event_base.now t.eb));
      Hashtbl.add t.node_ids node id;
      Obs.Metrics.set_gauge g_nodes (Vec.length t.nodes);
      id

let tally vec id = if Obs.enabled () then Vec.set vec id (Vec.get vec id + 1)
let types_of t id = Vec.get t.tyset id
let stable_of t id = Vec.get t.stable id
let cost_of t id = Vec.get t.cost id

let alloc1 t mk a ~stable =
  alloc t (mk a)
    ~types:(types_of t a)
    ~stable:(stable && stable_of t a)
    ~cost:(1 + cost_of t a)

let alloc2 t mk a b =
  alloc t (mk a b)
    ~types:(Event_type.Set.union (types_of t a) (types_of t b))
    ~stable:(stable_of t a && stable_of t b)
    ~cost:(1 + cost_of t a + cost_of t b)

let rec intern_inst t ie =
  match Hashtbl.find_opt t.inst_ids ie with
  | Some id -> id
  | None ->
      let id =
        match ie with
        | Expr.I_prim p ->
            alloc t (N_iprim p)
              ~types:(Event_type.Set.singleton p)
              ~stable:true ~cost:1
        | Expr.I_not e ->
            alloc1 t (fun a -> N_inot a) (intern_inst t e) ~stable:false
        | Expr.I_and (a, b) ->
            alloc2 t (fun a b -> N_iand (a, b)) (intern_inst t a) (intern_inst t b)
        | Expr.I_or (a, b) ->
            alloc2 t (fun a b -> N_ior (a, b)) (intern_inst t a) (intern_inst t b)
        | Expr.I_seq (a, b) ->
            alloc2 t (fun a b -> N_iseq (a, b)) (intern_inst t a) (intern_inst t b)
      in
      Hashtbl.add t.inst_ids ie id;
      id

let rec intern t e =
  match Hashtbl.find_opt t.set_ids e with
  | Some id -> id
  | None ->
      let id =
        match e with
        | Expr.Prim p ->
            alloc t (N_prim p)
              ~types:(Event_type.Set.singleton p)
              ~stable:true ~cost:1
        | Expr.Not e -> alloc1 t (fun a -> N_not a) (intern t e) ~stable:false
        | Expr.And (a, b) ->
            alloc2 t (fun a b -> N_and (a, b)) (intern t a) (intern t b)
        | Expr.Or (a, b) ->
            alloc2 t (fun a b -> N_or (a, b)) (intern t a) (intern t b)
        | Expr.Seq (a, b) ->
            alloc2 t (fun a b -> N_seq (a, b)) (intern t a) (intern t b)
        | Expr.Inst ie ->
            (* Lifting scans the window's objects and evaluates the child
               per object, so its recompute cost dwarfs its children's. *)
            let a = intern_inst t ie in
            alloc t (N_inst a) ~types:(types_of t a) ~stable:(stable_of t a)
              ~cost:(8 + (2 * cost_of t a))
      in
      Hashtbl.add t.set_ids e id;
      id

let window ~after ~at = Window.make ~after ~upto:(Time.max after at)

let prim_ts t ~after ~at p =
  match Event_base.last_of_type t.eb ~etype:p ~window:(window ~after ~at) ~at with
  | Some stamp -> Time.to_int stamp
  | None -> -Time.to_int at

let prim_ots t ~after ~at p oid =
  match
    Event_base.last_of_type_on t.eb ~etype:p ~oid ~window:(window ~after ~at) ~at
  with
  | Some stamp -> Time.to_int stamp
  | None -> -Time.to_int at

(* Any occurrence of one of [types] in (lo, at]?  Cached probe instants
   never precede their window's lower bound, so the gap (lo, at] covers
   the in-window arrivals; finding one outside the window merely forgoes
   a reuse.  The gap between successive probes is typically a few
   occurrences, which {!Event_base.occurred_in} scans in one pass. *)
let arrival_in t ~lo ~at types = Event_base.occurred_in t.eb ~types ~after:lo ~upto:at

(* Per-object variant: instance-level values only depend on the object's
   own occurrences of the node's types.  The global gap check screens
   out the common all-quiet case before the per-(type, object) probes. *)
let arrival_on t ~after ~lo ~at types oid =
  Event_base.occurred_in t.eb ~types ~after:lo ~upto:at
  && Event_type.Set.exists
       (fun p ->
         match
           Event_base.last_of_type_on t.eb ~etype:p ~oid
             ~window:(window ~after ~at) ~at
         with
         | Some stamp -> Time.( > ) stamp lo
         | None -> false)
       types

(* The instance-slot population is bounded: blowing past [max_entries]
   drops every per-object slot (never the interned graph) and starts
   over.  Soundness is unaffected — slots are pure (node, window,
   instant, object) facts.  Set-level slots need no bound: one per
   node. *)
let evict_if_full t =
  if t.inst_entries > t.max_entries then begin
    if Obs.enabled () then
      Vec.iteri
        (fun id slots -> if Hashtbl.length slots > 0 then tally t.ninval id)
        t.inst_slots;
    Vec.iter Hashtbl.reset t.inst_slots;
    t.inst_entries <- 0;
    t.evictions <- t.evictions + 1;
    Obs.Metrics.incr c_evictions
  end

(* Instance-level evaluation, mirroring the set-level slot discipline:
   cheap nodes (primitives, small composites) bypass the cache — their
   recompute is a few per-object index probes, less than the table
   lookup — while costlier nodes reuse their per-object slot on an exact
   instant match or, for stable nodes, when none of the node's types
   occurred on the object since the cached instant. *)
let rec compute_inst t ~after ~at node oid =
  match node with
  | N_iprim p -> prim_ots t ~after ~at p oid
  | N_inot e -> -eval_inst t ~after ~at e oid
  | N_iand (a, b) ->
      let va = eval_inst t ~after ~at a oid
      and vb = eval_inst t ~after ~at b oid in
      if va > 0 && vb > 0 then max va vb else min va vb
  | N_ior (a, b) ->
      let va = eval_inst t ~after ~at a oid
      and vb = eval_inst t ~after ~at b oid in
      if va > 0 || vb > 0 then max va vb else min va vb
  | N_iseq (a, b) ->
      let vb = eval_inst t ~after ~at b oid in
      if vb > 0 && eval_inst t ~after ~at:(Time.of_int vb) a oid > 0 then vb
      else -Time.to_int at
  | N_prim _ | N_not _ | N_and _ | N_or _ | N_seq _ | N_inst _ ->
      invalid_arg "Memo: set node in instance position"

and eval_inst t ~after ~at id oid =
  match Vec.get t.nodes id with
  | N_iprim p -> prim_ots t ~after ~at p oid
  | node when Vec.get t.cost id < cache_min_cost ->
      compute_inst t ~after ~at node oid
  | node ->
      let afteri = Time.to_int after and ati = Time.to_int at in
      let slots = Vec.get t.inst_slots id in
      let oidi = Ident.Oid.to_int oid in
      let slot = Hashtbl.find_opt slots oidi in
      let reuse =
        match slot with
        | Some s when s.iafter = afteri ->
            if s.iat = ati then Some s.iv
            else if
              s.iat < ati
              && Vec.get t.stable id
              && (Vec.get t.last_arrival id <= s.iat
                 || not
                      (arrival_on t ~after ~lo:(Time.of_int s.iat) ~at
                         (Vec.get t.tyset id) oid))
            then Some (if s.iv > 0 then s.iv else -ati)
            else None
        | _ -> None
      in
      (match reuse with
      | Some v ->
          t.hits <- t.hits + 1;
          if Obs.enabled () then begin
            Obs.Metrics.incr c_hits;
            tally t.nhits id
          end;
          v
      | None ->
          t.misses <- t.misses + 1;
          if Obs.enabled () then begin
            Obs.Metrics.incr c_misses;
            tally t.nmisses id
          end;
          let v = compute_inst t ~after ~at node oid in
          (match slot with
          | Some s ->
              (* Keep the newest probe (sequences probe left operands at
                 earlier instants). *)
              if s.iafter <> afteri || s.iat <= ati then begin
                s.iafter <- afteri;
                s.iat <- ati;
                s.iv <- v
              end
          | None ->
              Hashtbl.add slots oidi { iafter = afteri; iat = ati; iv = v };
              t.inst_entries <- t.inst_entries + 1;
              evict_if_full t);
          v)

let lift t ~after ~at id =
  let oids = Event_base.oids_in t.eb ~window:(window ~after ~at) ~at in
  let is_negation =
    match Vec.get t.nodes id with N_inot _ -> true | _ -> false
  in
  if is_negation then
    match oids with
    | [] -> Time.to_int at
    | o :: os ->
        List.fold_left
          (fun acc oid -> min acc (eval_inst t ~after ~at id oid))
          (eval_inst t ~after ~at id o) os
  else
    match oids with
    | [] -> -Time.to_int at
    | o :: os ->
        List.fold_left
          (fun acc oid -> max acc (eval_inst t ~after ~at id oid))
          (eval_inst t ~after ~at id o) os

(* Set-level evaluation with the per-node slot cache.

   Primitives and cheap composites bypass the cache entirely: a
   primitive's evaluation IS a single index probe, and a small composite
   recomputes from the indexes in fewer probes than a slot scan costs —
   only nodes whose subtree is worth saving carry slots.

   For composite nodes, a slot probe reuses the cached value when:

   - the window matches and the instant is the very same (exact: ts is a
     pure function of (node, window, instant)) — this is how concurrent
     rules probing the same instants share work; or
   - the window matches, the node is negation-free (stable), and none of
     its own event types occurred since the cached instant.  Exact
     because (i) active values only move on an occurrence of one of the
     node's types (activation is monotone in them for negation-free
     nodes), and (ii) a negation-free node's inactive value is exactly
     -at (induction over the operators: every inactive branch bottoms
     out in -at and min/max propagate it).  The arrival test is first an
     O(1) comparison against the newest occurrence overall, then
     per-type index probes — the node-granular V(E).

   Nodes under a negation get only the exact same-instant reuse: their
   activation magnitude can track the probe instant itself (e.g. -A is
   active "now" while A stays silent), so no arrival-based reuse is
   sound for them. *)
let rec compute_set t ~after ~at node =
  match node with
  | N_prim p -> prim_ts t ~after ~at p
  | N_not e -> -eval t ~after ~at e
  | N_and (a, b) ->
      let va = eval t ~after ~at a and vb = eval t ~after ~at b in
      if va > 0 && vb > 0 then max va vb else min va vb
  | N_or (a, b) ->
      let va = eval t ~after ~at a and vb = eval t ~after ~at b in
      if va > 0 || vb > 0 then max va vb else min va vb
  | N_seq (a, b) ->
      let vb = eval t ~after ~at b in
      if vb > 0 && eval t ~after ~at:(Time.of_int vb) a > 0 then vb
      else -Time.to_int at
  | N_inst ie -> lift t ~after ~at ie
  | N_iprim _ | N_inot _ | N_iand _ | N_ior _ | N_iseq _ ->
      invalid_arg "Memo: instance node in set position"

and eval t ~after ~at id =
  match Vec.get t.nodes id with
  | N_prim p -> prim_ts t ~after ~at p
  | node when Vec.get t.cost id < cache_min_cost -> compute_set t ~after ~at node
  | node ->
      let afteri = Time.to_int after and ati = Time.to_int at in
      (* One pass over the ring: an exact (window, instant) entry wins;
         otherwise remember the newest same-window entry as the seed for
         the stable-node arrival test. *)
      let base = id * slot_width in
      let exact = ref false and exact_v = ref 0 in
      let best_at = ref (-1) and best_v = ref 0 in
      for j = base to base + slot_width - 1 do
        if Vec.get t.slot_after j = afteri then begin
          let sat = Vec.get t.slot_at j in
          if sat = ati then begin
            exact := true;
            exact_v := Vec.get t.slot_v j
          end;
          if sat > !best_at then begin
            best_at := sat;
            best_v := Vec.get t.slot_v j
          end
        end
      done;
      let reuse =
        if !exact then Some !exact_v
        else if
          !best_at >= 0
          && !best_at < ati
          && Vec.get t.stable id
          (* Clean slot: the subscription watermark says no occurrence of
             the node's types arrived after the cached instant — an O(1)
             reuse.  A raised watermark (which may only over-approximate)
             falls back to the precise arrival probe, which still matters
             for sub-instant re-probes inside sequences. *)
          && (Vec.get t.last_arrival id <= !best_at
             || not
                  (arrival_in t ~lo:(Time.of_int !best_at) ~at
                     (Vec.get t.tyset id)))
        then Some (if !best_v > 0 then !best_v else -ati)
        else None
      in
      (match reuse with
      | Some v ->
          t.hits <- t.hits + 1;
          if Obs.enabled () then begin
            Obs.Metrics.incr c_hits;
            tally t.nhits id
          end;
          v
      | None ->
          t.misses <- t.misses + 1;
          if Obs.enabled () then begin
            Obs.Metrics.incr c_misses;
            tally t.nmisses id
          end;
          let v = compute_set t ~after ~at node in
          let c = Vec.get t.slot_cursor id in
          let j = base + c in
          Vec.set t.slot_after j afteri;
          Vec.set t.slot_at j ati;
          Vec.set t.slot_v j v;
          Vec.set t.slot_cursor id ((c + 1) mod slot_width);
          v)

(* Handles resolve to evaluations as cheap as one index probe, so the
   disabled path must be a single load-and-branch ahead of [eval]. *)
let ts_handle t ~after ~at handle =
  if Obs.enabled () then begin
    Obs.Metrics.incr c_evals;
    let t0 = Obs.start_timer () in
    let v = eval t ~after ~at handle in
    Obs.observe_since h_eval t0;
    v
  end
  else eval t ~after ~at handle
let ts t ~after ~at e = eval t ~after ~at (intern t e)
let ots t ~after ~at ie oid = eval_inst t ~after ~at (intern_inst t ie) oid
let active t ~after ~at e = ts t ~after ~at e > 0
let active_handle t ~after ~at handle = ts_handle t ~after ~at handle > 0

(* The [occurred] event formula (Section 3.3) through the cache: objects
   for which the instance expression is active at [at]. *)
let occurred_objects ?candidates t ~after ~at ie =
  let id = intern_inst t ie in
  let candidates =
    match candidates with
    | Some oids -> oids
    | None -> Event_base.oids_in t.eb ~window:(window ~after ~at) ~at
  in
  List.filter (fun oid -> eval_inst t ~after ~at id oid > 0) candidates

(* The [at] event formula: instants where the expression arises for [oid]
   (activation timestamp equal to the instant itself, cf.
   {!Ts.occurrence_instants}).  The candidate instants come from the
   node's own type set — the interned graph already carries V(E). *)
let occurrence_instants t ~after ~at ie oid =
  let id = intern_inst t ie in
  let w = window ~after ~at in
  let stamps =
    Event_type.Set.fold
      (fun etype acc ->
        Event_base.timestamps_of_type_on t.eb ~etype ~oid ~window:w ~at @ acc)
      (Vec.get t.tyset id) []
  in
  let stamps = List.sort_uniq Time.compare stamps in
  List.filter
    (fun tau -> eval_inst t ~after ~at:tau id oid = Time.to_int tau)
    stamps

(* The commit/compaction path: every rule window restarts, so no cached
   value is reachable again — drop them all (and rebind to the possibly
   fresh log), preserving the interned graph and the counters. *)
let restart t eb =
  (* Per-node invalidation tally: a node whose set ring or instance table
     held live values loses them here. *)
  if Obs.enabled () then
    for id = 0 to Vec.length t.nodes - 1 do
      let live = ref (Hashtbl.length (Vec.get t.inst_slots id) > 0) in
      let base = id * slot_width in
      for j = base to base + slot_width - 1 do
        if Vec.get t.slot_after j >= 0 then live := true
      done;
      if !live then tally t.ninval id
    done;
  for id = 0 to Vec.length t.slot_after - 1 do
    Vec.set t.slot_after id (-1)
  done;
  Vec.iter Hashtbl.reset t.inst_slots;
  t.inst_entries <- 0;
  Obs.Metrics.incr c_restarts;
  (* Rebuild the subscription feed for the (possibly fresh) event base:
     re-attach the listener when the log changed and restart every
     watermark at the new present — conservative for whatever the new log
     already contains, exact from the next occurrence on. *)
  let fresh_eb = not (eb == t.eb) in
  t.eb <- eb;
  for id = 0 to Vec.length t.last_arrival - 1 do
    Vec.set t.last_arrival id (Time.to_int (Event_base.now eb))
  done;
  if fresh_eb then attach t eb

(* ------------------------------------------- per-node observability *)

type node_stat = {
  node_id : int;
  node_expr : string;
  node_hits : int;
  node_misses : int;
  node_invalidations : int;
  node_cost : int;
  node_cached : bool;  (** false for nodes that bypass the cache *)
}

(* Diagnostic rendering of an interned node: fully parenthesized, so no
   precedence reasoning is needed (and none is claimed — {!Expr.pp} is
   the round-trippable printer). *)
let rec render t id =
  match Vec.get t.nodes id with
  | N_prim p | N_iprim p -> Event_type.to_string p
  | N_not a -> "-(" ^ render t a ^ ")"
  | N_inot a -> "-=(" ^ render t a ^ ")"
  | N_and (a, b) -> "(" ^ render t a ^ " + " ^ render t b ^ ")"
  | N_iand (a, b) -> "(" ^ render t a ^ " += " ^ render t b ^ ")"
  | N_or (a, b) -> "(" ^ render t a ^ " , " ^ render t b ^ ")"
  | N_ior (a, b) -> "(" ^ render t a ^ " ,= " ^ render t b ^ ")"
  | N_seq (a, b) -> "(" ^ render t a ^ " < " ^ render t b ^ ")"
  | N_iseq (a, b) -> "(" ^ render t a ^ " <= " ^ render t b ^ ")"
  | N_inst a -> render t a

let node_stats t =
  List.init (Vec.length t.nodes) (fun id ->
      {
        node_id = id;
        node_expr = render t id;
        node_hits = Vec.get t.nhits id;
        node_misses = Vec.get t.nmisses id;
        node_invalidations = Vec.get t.ninval id;
        node_cost = Vec.get t.cost id;
        node_cached = Vec.get t.cost id >= cache_min_cost;
      })
