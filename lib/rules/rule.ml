(* ECA rule definitions and their runtime status (the Rule Table entries of
   Section 5: triggered flag, last-consideration and last-consumption
   timestamps, plus the statically derived relevance filter V(E)). *)

open Chimera_util
open Chimera_event
open Chimera_calculus
open Chimera_optimizer

(* Windows move only at consideration/reset; the engine's shared memo
   keys its cache by the window lower bound, so moving a window needs no
   invalidation here. *)

type coupling = Immediate | Deferred
type consumption = Consuming | Preserving

type spec = {
  name : string;
  target : string option;  (** targeted rules restrict events to a class *)
  event : Expr.set;
  condition : Condition.t;
  action : Action.t;
  coupling : coupling;
  consumption : consumption;
  priority : int;  (** higher is considered first *)
}

type t = {
  spec : spec;
  relevance : Relevance.t;
  seqno : int;  (** definition order; ties in priority break on it *)
  mutable triggered : bool;
  mutable last_consideration : Time.t;
  mutable last_consumption : Time.t;
  mutable scan_from : Time.t;
      (** exact detection: instants at or before this were already probed *)
  mutable last_recomputation : Time.t;
      (** endpoint detection: when ts was last recomputed *)
  mutable last_sign_positive : bool;
  mutable memo_handle : (Memo.t * Memo.handle) option;
      (** the rule's event expression interned into the engine's shared
          memo; handles survive restarts, so this is set once per memo *)
  mutable wake_pending : bool;
      (** already enqueued in the dirty-rule set of the indexed wake
          (see {!Trigger_support.Wake}); dedups marking in O(1) *)
}

let spec t = t.spec
let name t = t.spec.name
let relevance t = t.relevance
let priority t = t.spec.priority

(* A targeted rule may only mention events of its target class
   (Section 2). *)
let validate_target spec =
  match spec.target with
  | None -> Ok ()
  | Some class_name ->
      let offending =
        Event_type.Set.filter
          (fun p -> not (String.equal (Event_type.class_name p) class_name))
          (Expr.primitives spec.event)
      in
      if Event_type.Set.is_empty offending then Ok ()
      else
        Error
          (`Rule_error
            (Printf.sprintf
               "rule %s is targeted to %s but mentions events on other \
                classes (%s)"
               spec.name class_name
               (String.concat ", "
                  (List.map Event_type.to_string
                     (Event_type.Set.elements offending)))))

let make ~seqno ~tx_start spec =
  match validate_target spec with
  | Error _ as e -> e
  | Ok () ->
      Ok
        {
          spec;
          relevance = Relevance.of_expr spec.event;
          seqno;
          triggered = false;
          last_consideration = tx_start;
          last_consumption = tx_start;
          scan_from = tx_start;
          last_recomputation = Time.origin;
          last_sign_positive = false;
          memo_handle = None;
          wake_pending = false;
        }

(* Two distinct windows (the paper keeps them orthogonal):

   - Triggering (Section 4.4) always ranges over the occurrences more
     recent than the last consideration — "events occurred before the
     consideration loose the capability of triggering the rule",
     whatever the consumption mode.
   - Event formulas in the condition (Section 3.3) observe an interval
     governed by the consumption mode: since the last consideration for
     consuming rules, since the transaction start for preserving ones. *)

let trigger_window_start t = t.last_consideration

let formula_window_start t ~tx_start =
  match t.spec.consumption with
  | Consuming -> t.last_consumption
  | Preserving -> tx_start

let detrigger t ~at =
  t.triggered <- false;
  t.last_consideration <- at;
  (match t.spec.consumption with
  | Consuming -> t.last_consumption <- at
  | Preserving -> ());
  t.scan_from <- at;
  t.last_recomputation <- Time.origin;
  t.last_sign_positive <- false

let reset t ~tx_start =
  t.triggered <- false;
  t.last_consideration <- tx_start;
  t.last_consumption <- tx_start;
  t.scan_from <- tx_start;
  t.last_recomputation <- Time.origin;
  t.last_sign_positive <- false

let coupling_name = function Immediate -> "immediate" | Deferred -> "deferred"

let consumption_name = function
  | Consuming -> "consuming"
  | Preserving -> "preserving"

let pp_spec ppf spec =
  Fmt.pf ppf "@[<v2>define %s trigger %s%a@,events: %a@,condition: %a@,actions: %a@,%s, priority %d@]"
    (coupling_name spec.coupling) spec.name
    Fmt.(option (fun ppf c -> Fmt.pf ppf " for %s" c))
    spec.target Expr.pp spec.event Condition.pp spec.condition Action.pp
    spec.action
    (consumption_name spec.consumption)
    spec.priority

let pp ppf t =
  Fmt.pf ppf "%a@,[%s, last consideration %a, V(E)=%a]" pp_spec t.spec
    (if t.triggered then "triggered" else "idle")
    Time.pp t.last_consideration Relevance.pp t.relevance
