(* Rule conditions (Section 2 and 3.3).

   A condition is a conjunction of atoms: class ranges, event formulas
   ([occurred], [at]) and comparison predicates.  Evaluation is
   set-oriented: it produces every variable binding satisfying all atoms,
   and the action then runs once per binding.  Conjunctions are
   order-independent, so atoms are evaluated in a cheap-first order
   (event formulas bind variables from the event base before class ranges
   enumerate extents). *)

open Chimera_util
open Chimera_calculus
open Chimera_store

type atom =
  | Range of { var : string; class_name : string }
      (** [stock(S)]: S ranges over the class extent. *)
  | Occurred of { expr : Expr.inst; var : string }
      (** [occurred(expr, S)]: S binds the objects activating [expr]. *)
  | At of { expr : Expr.inst; var : string; time_var : string }
      (** [at(expr, S, T)]: additionally binds the occurrence instants. *)
  | Compare of Query.predicate
  | Absent of atom list
      (** negated subcondition: the binding survives iff the nested
          conjunction has no solution under it *)

type t = atom list

(* How event formulas are evaluated: recompute-from-indexes (a plain
   [Ts.env]) or through the engine's shared memo over interned
   expressions — the default path.  Both agree (property-tested). *)
type evaluator =
  | Recompute of Ts.env
  | Memoized of { memo : Memo.t; after : Time.t }

let occurred_objects ev ~at expr =
  match ev with
  | Recompute env -> Ts.occurred_objects env ~at expr
  | Memoized { memo; after } -> Memo.occurred_objects memo ~after ~at expr

let occurrence_instants ev ~at expr oid =
  match ev with
  | Recompute env -> Ts.occurrence_instants env ~at expr oid
  | Memoized { memo; after } ->
      Memo.occurrence_instants memo ~after ~at expr oid

(* A binding environment; object variables are bound to [Value.Oid],
   time variables to [Value.Int] carrying the raw instant. *)
type env = (string * Value.t) list

let lookup env x = List.assoc_opt x env

type error = [ Query.error | `Rule_error of string ]

let pp_error ppf = function
  | #Query.error as e -> Query.pp_error ppf e
  | `Rule_error msg -> Fmt.string ppf msg

let ( let* ) = Result.bind

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let rec atom_cost = function
  | Occurred _ | At _ -> 0
  | Range _ -> 1
  | Compare _ -> 2
  | Absent atoms ->
      (* Evaluate negated subconditions last: they only filter, and their
         nested atoms may use variables bound by the outer ones. *)
      3 + List.fold_left (fun acc a -> acc + atom_cost a) 0 atoms

let plan atoms = List.stable_sort (fun a b -> compare (atom_cost a) (atom_cost b)) atoms

(* Candidate objects for an event formula: those affected inside the
   window.  For negation-dominated formulas the caller's class extent
   would be needed; [Occurred]/[At] fall back to it via [Range] atoms. *)
let rec eval_atom store ev ~at atom envs : (env list, error) result =
  match atom with
  | Absent atoms ->
      map_result
        (fun env ->
          let* solutions = eval_under store ev ~at atoms [ env ] in
          Ok (if solutions = [] then [ env ] else []))
        envs
      |> Result.map List.concat
  | Range { var; class_name } ->
      let extent = Object_store.extent store ~class_name in
      map_result
        (fun env ->
          match lookup env var with
          | Some (Value.Oid oid) ->
              (* Already bound: keep the env iff the object belongs. *)
              Ok
                (if List.exists (Ident.Oid.equal oid) extent then [ env ]
                 else [])
          | Some v ->
              Error
                (`Type_error
                  (Printf.sprintf "variable %s is not an object (%s)" var
                     (Value.to_string v)))
          | None ->
              Ok (List.map (fun oid -> (var, Value.Oid oid) :: env) extent))
        envs
      |> Result.map List.concat
  | Occurred { expr; var } ->
      let matching = occurred_objects ev ~at expr in
      map_result
        (fun env ->
          match lookup env var with
          | Some (Value.Oid oid) ->
              Ok
                (if List.exists (Ident.Oid.equal oid) matching then [ env ]
                 else [])
          | Some v ->
              Error
                (`Type_error
                  (Printf.sprintf "variable %s is not an object (%s)" var
                     (Value.to_string v)))
          | None ->
              Ok (List.map (fun oid -> (var, Value.Oid oid) :: env) matching))
        envs
      |> Result.map List.concat
  | At { expr; var; time_var } ->
      let extend env oid =
        let instants = occurrence_instants ev ~at expr oid in
        List.map
          (fun tau ->
            let env =
              if lookup env var = None then (var, Value.Oid oid) :: env
              else env
            in
            (time_var, Value.Int (Time.to_int tau)) :: env)
          instants
      in
      map_result
        (fun env ->
          match lookup env var with
          | Some (Value.Oid oid) -> Ok (extend env oid)
          | Some v ->
              Error
                (`Type_error
                  (Printf.sprintf "variable %s is not an object (%s)" var
                     (Value.to_string v)))
          | None ->
              let candidates = occurred_objects ev ~at expr in
              Ok (List.concat_map (extend env) candidates))
        envs
      |> Result.map List.concat
  | Compare pred ->
      map_result
        (fun env ->
          let* keep =
            (Query.eval_predicate store ~resolve:(lookup env) pred
              : (bool, Query.error) result
              :> (bool, error) result)
          in
          Ok (if keep then [ env ] else []))
        envs
      |> Result.map List.concat

(* Evaluates [atoms] under the given initial bindings. *)
and eval_under store ev ~at atoms envs : (env list, error) result =
  List.fold_left
    (fun acc atom ->
      let* envs = acc in
      if envs = [] then Ok [] else eval_atom store ev ~at atom envs)
    (Ok envs) (plan atoms)

(* Evaluates the condition at instant [at] against the window R carried
   by the evaluator; returns the satisfying bindings (empty list: not
   satisfied). *)
let eval store ev ~at atoms : (env list, error) result =
  eval_under store ev ~at atoms [ [] ]

(* Event types the condition's event formulas probe: the union of the
   primitive types of every [occurred]/[at] expression, including those
   nested under [absent].  The sliding-window horizon must not retire a
   type's postings past any window these formulas can still reach into. *)
let event_types atoms =
  let module Event_type = Chimera_event.Event_type in
  let rec collect acc = function
    | Range _ | Compare _ -> acc
    | Occurred { expr; _ } | At { expr; _ } ->
        Event_type.Set.union acc (Expr.primitives_inst expr)
    | Absent nested -> List.fold_left collect acc nested
  in
  List.fold_left collect Event_type.Set.empty atoms

let vars atoms =
  (* Variables bound inside an [Absent] are local to it. *)
  List.concat_map
    (function
      | Range { var; _ } | Occurred { var; _ } -> [ var ]
      | At { var; time_var; _ } -> [ var; time_var ]
      | Compare _ | Absent _ -> [])
    atoms
  |> List.sort_uniq String.compare

let rec pp_atom ppf = function
  | Range { var; class_name } -> Fmt.pf ppf "%s(%s)" class_name var
  | Occurred { expr; var } ->
      Fmt.pf ppf "occurred(%a, %s)" Expr.pp_inst expr var
  | At { expr; var; time_var } ->
      Fmt.pf ppf "at(%a, %s, %s)" Expr.pp_inst expr var time_var
  | Compare pred -> Query.pp_predicate ppf pred
  | Absent atoms -> Fmt.pf ppf "absent(%a)" pp atoms

and pp ppf atoms = Fmt.(list ~sep:comma pp_atom) ppf atoms
