(* The rule-processing engine: Block Executor + transaction loop.

   A transaction is a sequence of transaction lines (non-interruptible
   blocks of data manipulations).  After every block the Trigger Support
   determines newly triggered rules; then the highest-priority triggered
   rule with a matching coupling mode is considered (condition evaluated
   set-oriented), detriggered, and — if the condition produced bindings —
   its action executes as a new block, whose events can trigger further
   rules.  Deferred rules wait for commit (Section 2). *)

open Chimera_util
open Chimera_event
open Chimera_calculus
open Chimera_store

type error =
  [ Condition.error
  | `Nontermination of string ]

let pp_error ppf = function
  | #Condition.error as e -> Condition.pp_error ppf e
  | `Nontermination rule ->
      Fmt.pf ppf "rule processing did not quiesce (last rule %s)" rule

type config = {
  trigger : Trigger_support.config;
  max_rule_executions : int;
      (** guard against non-terminating rule cascades *)
  compact_at_commit : int option;
      (** drop the event log at commit once it exceeds this size; sound
          because every rule window restarts at the commit instant *)
}

let default_config =
  {
    trigger = Trigger_support.default_config;
    max_rule_executions = 10_000;
    compact_at_commit = Some 100_000;
  }

type stats = {
  trigger_stats : Trigger_support.stats;
  mutable lines : int;  (** user transaction lines executed *)
  mutable blocks : int;  (** blocks (lines + rule actions) *)
  mutable considerations : int;
  mutable executions : int;  (** considerations whose condition held *)
  mutable operations : int;
  mutable events : int;
  mutable memo_hits : int;  (** shared-memo cache hits (cumulative) *)
  mutable memo_misses : int;  (** shared-memo cache misses (cumulative) *)
  mutable memo_nodes : int;  (** interned nodes (shows cross-rule sharing) *)
}

let stats () =
  {
    trigger_stats = Trigger_support.stats ();
    lines = 0;
    blocks = 0;
    considerations = 0;
    executions = 0;
    operations = 0;
    events = 0;
    memo_hits = 0;
    memo_misses = 0;
    memo_nodes = 0;
  }

(* HiPAC-style periodic (clock) events, simulated on the engine's logical
   time: a timer matures every [period] transaction lines and contributes
   an external event occurrence to that line's block. *)
type timer = {
  timer_name : string;
  etype : Event_type.t;
  period : int;
  mutable countdown : int;
}

type t = {
  config : config;
  store : Object_store.t;
  mutable eb : Event_base.t;
  memo : Memo.t;
      (** the shared evaluation cache: one interned node graph for every
          rule, cache entries keyed by window; survives commits and
          compactions via {!Memo.restart} *)
  rules : Rule_table.t;
  mutable tx_start : Time.t;
  timers : timer Queue.t;  (** in definition order; maturing is in-order *)
  timer_index : (string, unit) Hashtbl.t;  (** O(1) duplicate rejection *)
  stats : stats;
}

(* Timer occurrences affect a reserved pseudo-object. *)
let timer_oid = Ident.Oid.of_int 0

let create ?(config = default_config) schema =
  let eb = Event_base.create () in
  {
    config;
    store = Object_store.create schema;
    eb;
    memo = Memo.create eb;
    rules = Rule_table.create ();
    tx_start = Event_base.probe_now eb;
    timers = Queue.create ();
    timer_index = Hashtbl.create 8;
    stats = stats ();
  }

let store t = t.store
let event_base t = t.eb
let memo t = t.memo
let rules t = t.rules

let statistics t =
  t.stats.memo_hits <- Memo.hits t.memo;
  t.stats.memo_misses <- Memo.misses t.memo;
  t.stats.memo_nodes <- Memo.node_count t.memo;
  t.stats
let tx_start t = t.tx_start

let define t spec = Rule_table.add t.rules ~tx_start:t.tx_start spec

(* Registers a periodic timer; returns the event type rules subscribe to
   (an external event on the pseudo-class "timer").  Duplicate names are
   rejected — two timers of the same name share an event type and would
   double-fire per line. *)
let define_timer t ~name ~period_lines =
  if period_lines <= 0 then
    invalid_arg "Engine.define_timer: period must be positive";
  if Hashtbl.mem t.timer_index name then
    invalid_arg (Printf.sprintf "Engine.define_timer: duplicate timer %s" name);
  let etype = Event_type.external_ ~name ~class_name:"timer" in
  Hashtbl.add t.timer_index name ();
  Queue.add
    { timer_name = name; etype; period = period_lines; countdown = period_lines }
    t.timers;
  etype

let timer_names t =
  List.rev (Queue.fold (fun acc timer -> timer.timer_name :: acc) [] t.timers)

(* Matured timers contribute occurrences to the upcoming line's block. *)
let fire_timers t =
  Queue.iter
    (fun timer ->
      timer.countdown <- timer.countdown - 1;
      if timer.countdown <= 0 then begin
        timer.countdown <- timer.period;
        t.stats.events <- t.stats.events + 1;
        ignore (Event_base.record t.eb ~etype:timer.etype ~oid:timer_oid)
      end)
    t.timers

let define_exn t spec =
  match define t spec with
  | Ok rule -> rule
  | Error (`Rule_error msg) -> invalid_arg msg

let log_src = Logs.Src.create "chimera.engine" ~doc:"Rule-processing engine"

module Log = (val Logs.src_log log_src : Logs.LOG)

let ( let* ) = Result.bind

(* Applies one store operation and records the generated occurrences. *)
let apply_operation t op : (Ident.Oid.t option, error) result =
  match Operation.apply t.store op with
  | Error e -> Error (e : Object_store.error :> error)
  | Ok emitted ->
      t.stats.operations <- t.stats.operations + 1;
      List.iter
        (fun { Operation.etype; affected } ->
          t.stats.events <- t.stats.events + 1;
          ignore (Event_base.record t.eb ~etype ~oid:affected))
        emitted;
      Ok
        (match emitted with
        | [ { Operation.affected; _ } ] -> Some affected
        | _ -> None)

(* Executes a block of operations (a transaction line or one rule-action
   instantiation), then lets the Trigger Support look for new triggered
   rules.  Returns the object affected by each operation (scripts use the
   one of a trailing [create] for [as X] bindings). *)
let run_block t ops : (Ident.Oid.t option list, error) result =
  t.stats.blocks <- t.stats.blocks + 1;
  let* affected =
    List.fold_left
      (fun acc op ->
        let* oids = acc in
        let* oid = apply_operation t op in
        Ok (oid :: oids))
      (Ok []) ops
  in
  Trigger_support.check_all t.config.trigger t.stats.trigger_stats t.memo
    t.rules;
  Ok (List.rev affected)

(* Executes a rule's action for every binding produced by its condition,
   threading environment extensions from binding creates. *)
let run_action t rule envs : (unit, error) result =
  t.stats.blocks <- t.stats.blocks + 1;
  let* () =
    List.fold_left
      (fun acc env ->
        let* () = acc in
        let* _env =
          List.fold_left
            (fun acc op ->
              let* env = acc in
              let* operation, extend =
                (Action.instantiate t.store env op
                  : (_, Condition.error) result
                  :> (_, error) result)
              in
              let* oid = apply_operation t operation in
              match oid with
              | Some oid -> Ok (extend oid)
              | None -> Ok env)
            (Ok env) rule.Rule.spec.action
        in
        Ok ())
      (Ok ()) envs
  in
  Trigger_support.check_all t.config.trigger t.stats.trigger_stats t.memo
    t.rules;
  Ok ()

(* Considers the selected rule: evaluate its condition over its window,
   detrigger, and execute the action when the condition holds. *)
let consider t rule : (unit, error) result =
  let at = Event_base.probe_now t.eb in
  let after = Rule.formula_window_start rule ~tx_start:t.tx_start in
  let evaluator =
    if t.config.trigger.Trigger_support.memoize then
      Condition.Memoized { memo = t.memo; after }
    else
      let window = Window.make ~after ~upto:at in
      Condition.Recompute
        (Ts.env ~style:t.config.trigger.Trigger_support.style t.eb ~window)
  in
  let* envs =
    (Condition.eval t.store evaluator ~at rule.Rule.spec.condition
      : (_, Condition.error) result
      :> (_, error) result)
  in
  t.stats.considerations <- t.stats.considerations + 1;
  Rule.detrigger rule ~at;
  Log.debug (fun m ->
      m "considering %s at %a: %d binding(s)" (Rule.name rule) Time.pp at
        (List.length envs));
  if envs = [] then Ok ()
  else begin
    t.stats.executions <- t.stats.executions + 1;
    run_action t rule envs
  end

let coupling_filter ~include_deferred rule =
  match rule.Rule.spec.coupling with
  | Rule.Immediate -> true
  | Rule.Deferred -> include_deferred

(* The rule-processing loop: select, consider, repeat until quiescent. *)
let process t ~include_deferred : (unit, error) result =
  let budget = ref t.config.max_rule_executions in
  let rec loop () =
    match
      Rule_table.select t.rules ~filter:(coupling_filter ~include_deferred)
    with
    | None -> Ok ()
    | Some rule ->
        if !budget <= 0 then Error (`Nontermination (Rule.name rule))
        else begin
          decr budget;
          let* () = consider t rule in
          loop ()
        end
  in
  loop ()

let execute_line t ops : (unit, error) result =
  t.stats.lines <- t.stats.lines + 1;
  fire_timers t;
  let* _affected = run_block t ops in
  process t ~include_deferred:false

(* Like {!execute_line}, additionally reporting the object affected by each
   operation (before any rule runs). *)
let execute_line_affected t ops : (Ident.Oid.t option list, error) result =
  t.stats.lines <- t.stats.lines + 1;
  fire_timers t;
  let* affected = run_block t ops in
  let* () = process t ~include_deferred:false in
  Ok affected

(* After commit every rule window restarts at the commit instant, so no
   evaluation can ever reach the old occurrences again: the log can be
   dropped, keeping only the clock position so instants stay monotone. *)
let compact t =
  let fresh = Event_base.create () in
  Time.Clock.advance_to (Event_base.clock fresh) (Event_base.now t.eb);
  t.eb <- fresh

let commit t : (unit, error) result =
  (* Give deferred rules a final trigger check over the whole transaction,
     then process every triggered rule. *)
  Trigger_support.check_all t.config.trigger t.stats.trigger_stats t.memo
    t.rules;
  let* () = process t ~include_deferred:true in
  (match t.config.compact_at_commit with
  | Some threshold when Event_base.size t.eb >= threshold -> compact t
  | Some _ | None -> ());
  let fresh_start = Event_base.probe_now t.eb in
  t.tx_start <- fresh_start;
  Rule_table.iter (fun rule -> Rule.reset rule ~tx_start:fresh_start) t.rules;
  (* Every rule window restarted at the commit instant, so no cached value
     is reachable again: drop them all, keep the interned graph (and
     rebind to the fresh log when the commit compacted). *)
  Memo.restart t.memo t.eb;
  Ok ()

let execute_line_exn t ops =
  match execute_line t ops with
  | Ok () -> ()
  | Error e -> failwith (Fmt.str "%a" pp_error e)

let commit_exn t =
  match commit t with
  | Ok () -> ()
  | Error e -> failwith (Fmt.str "%a" pp_error e)
