(* The rule-processing engine: Block Executor + transaction loop.

   A transaction is a sequence of transaction lines (non-interruptible
   blocks of data manipulations).  After every block the Trigger Support
   determines newly triggered rules; then the highest-priority triggered
   rule with a matching coupling mode is considered (condition evaluated
   set-oriented), detriggered, and — if the condition produced bindings —
   its action executes as a new block, whose events can trigger further
   rules.  Deferred rules wait for commit (Section 2). *)

open Chimera_util
open Chimera_event
open Chimera_calculus
open Chimera_store
module Obs = Chimera_obs.Obs

(* The engine phases of one transaction — event raise, rule wake,
   condition eval, action exec — plus the transaction boundaries
   (commit/abort/recover) each get a counter and, where latency is
   interesting, a histogram fed by a span. *)
let c_lines = Obs.Metrics.counter "engine.lines"
let c_blocks = Obs.Metrics.counter "engine.blocks"
let c_considerations = Obs.Metrics.counter "engine.considerations"
let c_executions = Obs.Metrics.counter "engine.executions"
let c_operations = Obs.Metrics.counter "engine.operations"
let c_commits = Obs.Metrics.counter "engine.commits"
let c_aborts = Obs.Metrics.counter "engine.aborts"
let c_block_rollbacks = Obs.Metrics.counter "engine.block_rollbacks"
let c_recover_entries = Obs.Metrics.counter "engine.recover.entries"
let c_ckpt_writes = Obs.Metrics.counter "ckpt.writes"

(* The journal-GC floor actually applied by the last checkpoint cycle:
   min(checkpoint seq, replication ack floor).  max_int (the unreplicated
   sentinel) is never written here — the applied floor is capped by the
   checkpoint sequence. *)
let g_gc_floor = Obs.Metrics.gauge "gc.floor"
let c_replayed_records = Obs.Metrics.counter "journal.replayed_records"
let h_ckpt = Obs.Metrics.histogram "ckpt.write_ns"
let h_line = Obs.Metrics.histogram "engine.line_ns"
let h_condition = Obs.Metrics.histogram "engine.condition_ns"
let h_action = Obs.Metrics.histogram "engine.action_ns"
let h_commit = Obs.Metrics.histogram "engine.commit_ns"
let h_abort = Obs.Metrics.histogram "engine.abort_ns"

type error =
  [ Condition.error
  | `Nontermination of string ]

let pp_error ppf = function
  | #Condition.error as e -> Condition.pp_error ppf e
  | `Nontermination rule ->
      Fmt.pf ppf "rule processing did not quiesce (last rule %s)" rule

type config = {
  trigger : Trigger_support.config;
  max_rule_executions : int;
      (** guard against non-terminating rule cascades *)
  compact_at_commit : int option;
      (** drop the event log at commit once it exceeds this size; sound
          because every rule window restarts at the commit instant.
          Skipped while checkpointing is enabled (retirement and segment
          GC bound state instead). *)
  window_events : bool;
      (** sliding event-base windows: at commit (and mid-transaction
          beyond [retire_in_tx]) retire occurrences no rule window can
          reach again, keeping log indices stable — behaviour-preserving
          (differential-tested against an unwindowed twin) *)
  retire_in_tx : int option;
      (** mid-transaction retirement threshold: once the live log
          exceeds this many occurrences, each line ends with a horizon
          computation and prefix retirement (bounds long transactions
          with consuming rules; preserved events stay until commit) *)
}

let default_config =
  {
    trigger = Trigger_support.default_config;
    max_rule_executions = 10_000;
    compact_at_commit = Some 100_000;
    window_events = true;
    retire_in_tx = Some 10_000;
  }

type stats = {
  trigger_stats : Trigger_support.stats;
  mutable lines : int;  (** user transaction lines executed *)
  mutable blocks : int;  (** blocks (lines + rule actions) *)
  mutable considerations : int;
  mutable executions : int;  (** considerations whose condition held *)
  mutable operations : int;
  mutable events : int;
  mutable memo_hits : int;  (** shared-memo cache hits (cumulative) *)
  mutable memo_misses : int;  (** shared-memo cache misses (cumulative) *)
  mutable memo_nodes : int;  (** interned nodes (shows cross-rule sharing) *)
  mutable aborts : int;  (** transactions rolled back via {!abort} *)
  mutable block_rollbacks : int;  (** failed blocks undone atomically *)
  mutable journal_appends : int;  (** records accepted by the journal *)
  mutable journal_commits : int;  (** commit markers (incl. rotations) *)
  mutable journal_syncs : int;  (** fsyncs issued by the journal *)
  mutable journal_rotations : int;
  mutable recovered_commits : int;  (** committed transactions replayed *)
  mutable recovered_entries : int;  (** journal records replayed *)
  mutable recovery_dropped_entries : int;
      (** intact but uncommitted records dropped on recovery *)
  mutable recovery_torn_bytes : int;  (** torn-tail bytes dropped *)
}

let stats () =
  {
    trigger_stats = Trigger_support.stats ();
    lines = 0;
    blocks = 0;
    considerations = 0;
    executions = 0;
    operations = 0;
    events = 0;
    memo_hits = 0;
    memo_misses = 0;
    memo_nodes = 0;
    aborts = 0;
    block_rollbacks = 0;
    journal_appends = 0;
    journal_commits = 0;
    journal_syncs = 0;
    journal_rotations = 0;
    recovered_commits = 0;
    recovered_entries = 0;
    recovery_dropped_entries = 0;
    recovery_torn_bytes = 0;
  }

(* One committed trigger activation of a watched rule — the unit the
   live-subscription layer pushes to clients.  Bindings are rendered to
   text at consideration time (they are plain oids and instants), so an
   activation is immutable string data, safe to ship across domains. *)
type activation = {
  act_rule : string;
  act_at : Time.t;  (** the consideration instant ([ts] evaluation point) *)
  act_bindings : (string * string) list list;
      (** one entry per satisfying binding environment, in evaluation
          order; each is the condition's variables with rendered values *)
}

(* HiPAC-style periodic (clock) events, simulated on the engine's logical
   time: a timer matures every [period] transaction lines and contributes
   an external event occurrence to that line's block. *)
type timer = {
  timer_name : string;
  etype : Event_type.t;
  period : int;
  mutable countdown : int;
}

(* Checkpoint scheduling state: on a commit-count cadence, a wall-clock
   cadence, or both (whichever fires first), the engine writes a
   checkpoint beside the journal, seals the live segment and GCs the
   segments both the checkpoint and every connected follower
   ([gc_floor]) are done with.  Checkpoints only happen at commit
   boundaries — the time cadence is checked there, so a quiet engine
   does not checkpoint until the next commit lands. *)
type ckpt_state = {
  ckpt_path : string;
  every_commits : int option;
  every_seconds : float option;
  gc_floor : unit -> int;
      (** the replication ack floor: the highest commit sequence every
          connected follower has durably acked ([max_int] when
          unreplicated) — segments above it stay pinned *)
  mutable commits_since : int;
  mutable last_ckpt_s : float;  (** [Monotime.now_s] of the last cycle *)
  mutable last_floor : int;
      (** the GC floor the last cycle applied; [max_int] until one runs *)
}

type t = {
  config : config;
  store : Object_store.t;
  mutable eb : Event_base.t;
  memo : Memo.t;
      (** the shared evaluation cache: one interned node graph for every
          rule, cache entries keyed by window; survives commits and
          compactions via {!Memo.restart} *)
  rules : Rule_table.t;
  wake : Trigger_support.Wake.t;
      (** the reverse V(E) index over rules, fed by an event-base
          listener; the indexed wake drains its dirty set *)
  mutable tx_start : Time.t;
  timers : timer Queue.t;  (** in definition order; maturing is in-order *)
  timer_index : (string, unit) Hashtbl.t;  (** O(1) duplicate rejection *)
  stats : stats;
  mutable tx_id : int;
      (** monotone per-engine transaction number, carried by trace spans *)
  mutable journal : Journal.t option;
  mutable ckpt : ckpt_state option;
  (* The transaction savepoint: everything {!abort} winds back to. *)
  mutable tx_sp : Object_store.savepoint;
  mutable tx_instant : Time.t;  (** last event instant at tx start *)
  mutable tx_trigger : Trigger_support.snapshot;
  mutable tx_timers : (timer * int) list;  (** timers and countdowns *)
  mutable on_execution : (string -> unit) option;
      (** notified with the rule name each time a consideration's
          condition holds and the action is about to execute — the
          network server reports the executed rules of a line to its
          client through this *)
  watched : (string, unit) Hashtbl.t;
      (** rules whose activations are buffered for {!drain_activations}
          (the live-subscription set) *)
  mutable tx_notifies : activation list;
      (** activations of watched rules in the open transaction, newest
          first; promoted to [committed_notifies] at the commit point,
          discarded wholesale by {!abort} — an aborted transaction never
          produces a notify *)
  mutable committed_notifies : activation list;
      (** committed, undrained activations, newest first *)
}

(* Timer occurrences affect a reserved pseudo-object. *)
let timer_oid = Ident.Oid.of_int 0

let timer_list t =
  List.rev (Queue.fold (fun acc timer -> timer :: acc) [] t.timers)

(* Marks the transaction start: the state {!abort} restores.  Called at
   creation, after every commit, and after recovery. *)
let begin_transaction t =
  t.tx_id <- t.tx_id + 1;
  Obs.Trace.set_tx t.tx_id;
  t.tx_sp <- Object_store.savepoint t.store;
  t.tx_instant <- Event_base.now t.eb;
  t.tx_trigger <- Trigger_support.snapshot t.rules;
  t.tx_timers <- List.map (fun tm -> (tm, tm.countdown)) (timer_list t)

let create ?(config = default_config) schema =
  let eb = Event_base.create () in
  let store = Object_store.create schema in
  let rules = Rule_table.create () in
  let wake = Trigger_support.Wake.create () in
  Event_base.on_insert eb (Trigger_support.Wake.on_event wake);
  Obs.Trace.set_tx 1;
  {
    config;
    store;
    eb;
    memo = Memo.create eb;
    rules;
    wake;
    tx_start = Event_base.probe_now eb;
    timers = Queue.create ();
    timer_index = Hashtbl.create 8;
    stats = stats ();
    tx_id = 1;
    journal = None;
    ckpt = None;
    tx_sp = Object_store.savepoint store;
    tx_instant = Event_base.now eb;
    tx_trigger = Trigger_support.snapshot rules;
    tx_timers = [];
    on_execution = None;
    watched = Hashtbl.create 8;
    tx_notifies = [];
    committed_notifies = [];
  }

let store t = t.store
let event_base t = t.eb
let memo t = t.memo
let rules t = t.rules

let statistics t =
  t.stats.memo_hits <- Memo.hits t.memo;
  t.stats.memo_misses <- Memo.misses t.memo;
  t.stats.memo_nodes <- Memo.node_count t.memo;
  (match t.journal with
  | None -> ()
  | Some j ->
      let c = Journal.counters j in
      t.stats.journal_appends <- c.Journal.appends;
      t.stats.journal_commits <- c.Journal.commits;
      t.stats.journal_syncs <- c.Journal.syncs;
      t.stats.journal_rotations <- c.Journal.rotations);
  t.stats

let tx_start t = t.tx_start
let journal t = t.journal
let set_on_execution t f = t.on_execution <- Some f
let clear_on_execution t = t.on_execution <- None

(* Attaches a write-ahead journal.  Records flow from here on: attach at
   transaction start (normally right after {!create} or {!recover}) so
   the journal sees whole transactions. *)
let set_journal t j = t.journal <- Some j

(* Turns on periodic checkpointing (requires an attached journal; at
   least one cadence).  With checkpointing on, commits skip
   [compact_at_commit]/[Journal.rotate] entirely: sliding-window
   retirement bounds the event base, and the checkpoint + seal + GC
   cycle bounds the journal chain instead. *)
let enable_checkpoints t ?path ?every_commits ?every_seconds
    ?(gc_floor = fun () -> max_int) () =
  (match every_commits with
  | Some n when n <= 0 ->
      invalid_arg "Engine.enable_checkpoints: every_commits must be positive"
  | _ -> ());
  (match every_seconds with
  | Some s when s <= 0.0 ->
      invalid_arg "Engine.enable_checkpoints: every_seconds must be positive"
  | _ -> ());
  if every_commits = None && every_seconds = None then
    invalid_arg "Engine.enable_checkpoints: no cadence given";
  match t.journal with
  | None -> invalid_arg "Engine.enable_checkpoints: attach a journal first"
  | Some j ->
      let ckpt_path =
        match path with
        | Some p -> p
        | None -> Checkpoint.path_for (Journal.path j)
      in
      t.ckpt <-
        Some
          {
            ckpt_path;
            every_commits;
            every_seconds;
            gc_floor;
            commits_since = 0;
            last_ckpt_s = Monotime.now_s ();
            last_floor = max_int;
          }

let checkpoint_path t =
  match t.ckpt with Some ck -> Some ck.ckpt_path | None -> None

let gc_floor t =
  match t.ckpt with
  | Some ck when ck.last_floor <> max_int -> Some ck.last_floor
  | _ -> None

let journal_append t ~tag payload =
  match t.journal with
  | None -> ()
  | Some j -> Journal.append j ~tag payload

let define t spec =
  match Rule_table.add t.rules ~tx_start:t.tx_start spec with
  | Ok rule as ok ->
      (* Into the wake index (and its dirty set) the moment it exists:
         occurrences already in this transaction's window get their
         trigger check at the next wake. *)
      Trigger_support.Wake.add_rule t.wake rule;
      ok
  | Error _ as e -> e

(* Live-subscription support: dynamic rule definition and removal at a
   transaction boundary (no open client transaction — the server's
   session layer guarantees it by holding SUB/UNSUB behind shard
   ownership).  Both refresh the transaction savepoint afterwards, so a
   later abort neither removes a dynamically defined rule (it is not
   "defined inside the aborted transaction") nor resurrects a removed
   one. *)
let define_dynamic t spec =
  match define t spec with
  | Error _ as e -> e
  | Ok _ as ok ->
      begin_transaction t;
      ok

let undefine t name =
  match Rule_table.remove t.rules name with
  | Error _ as e -> e
  | Ok () ->
      Hashtbl.remove t.watched name;
      (* The removed rule may sit in the wake dirty set: re-derive the
         index from the table, exactly as abort does. *)
      Trigger_support.Wake.rebuild t.wake t.rules;
      begin_transaction t;
      Ok ()

let watch_rule t name = Hashtbl.replace t.watched name ()

let unwatch_rule t name =
  Hashtbl.remove t.watched name;
  t.tx_notifies <-
    List.filter (fun a -> not (String.equal a.act_rule name)) t.tx_notifies

let drain_activations t =
  match t.committed_notifies with
  | [] -> []
  | acts ->
      t.committed_notifies <- [];
      List.rev acts

(* Registers a periodic timer; returns the event type rules subscribe to
   (an external event on the pseudo-class "timer").  Duplicate names are
   rejected — two timers of the same name share an event type and would
   double-fire per line. *)
let define_timer t ~name ~period_lines =
  if period_lines <= 0 then
    invalid_arg "Engine.define_timer: period must be positive";
  if Hashtbl.mem t.timer_index name then
    invalid_arg (Printf.sprintf "Engine.define_timer: duplicate timer %s" name);
  let etype = Event_type.external_ ~name ~class_name:"timer" in
  Hashtbl.add t.timer_index name ();
  Queue.add
    { timer_name = name; etype; period = period_lines; countdown = period_lines }
    t.timers;
  etype

let timer_names t =
  List.rev (Queue.fold (fun acc timer -> timer.timer_name :: acc) [] t.timers)

(* Matured timers contribute occurrences to the upcoming line's block. *)
let fire_timers t =
  Queue.iter
    (fun timer ->
      timer.countdown <- timer.countdown - 1;
      if timer.countdown <= 0 then begin
        timer.countdown <- timer.period;
        t.stats.events <- t.stats.events + 1;
        let occ = Event_base.record t.eb ~etype:timer.etype ~oid:timer_oid in
        journal_append t ~tag:"ev" (Event_codec.occurrence_line occ)
      end)
    t.timers

let define_exn t spec =
  match define t spec with
  | Ok rule -> rule
  | Error (`Rule_error msg) -> invalid_arg msg

let log_src = Logs.Src.create "chimera.engine" ~doc:"Rule-processing engine"

module Log = (val Logs.src_log log_src : Logs.LOG)

let ( let* ) = Result.bind

(* Applies one store operation and records the generated occurrences.
   The journal sees the operation (a [Store_codec] line, replayed against
   the store on recovery) and every occurrence (an [Event_codec] line
   carrying the exact instant, replayed against the event base). *)
let apply_operation t op : (Ident.Oid.t option, error) result =
  match Operation.apply t.store op with
  | Error e -> Error (e : Object_store.error :> error)
  | Ok emitted ->
      t.stats.operations <- t.stats.operations + 1;
      Obs.Metrics.incr c_operations;
      journal_append t ~tag:"op" (Store_codec.op_to_line op);
      List.iter
        (fun { Operation.etype; affected } ->
          t.stats.events <- t.stats.events + 1;
          let occ = Event_base.record t.eb ~etype ~oid:affected in
          journal_append t ~tag:"ev" (Event_codec.occurrence_line occ))
        emitted;
      Ok
        (match emitted with
        | [ { Operation.affected; _ } ] -> Some affected
        | _ -> None)

(* Runs [f] as one non-interruptible block (Section 2): on [Error] the
   store, the event base, the timer countdowns and the pending journal
   records are restored to the block start, so a failing operation takes
   its whole block with it; on [Ok] the block's journal records reach
   the file as one batch. *)
let guarded_block t f =
  let sp = Object_store.savepoint t.store in
  let instant = Event_base.now t.eb in
  let countdowns = List.map (fun tm -> (tm, tm.countdown)) (timer_list t) in
  let operations = t.stats.operations and events = t.stats.events in
  match f () with
  | Ok _ as ok ->
      (match t.journal with None -> () | Some j -> Journal.flush_block j);
      ok
  | Error _ as err ->
      Object_store.rollback_to t.store sp;
      Event_base.truncate_to t.eb ~instant;
      List.iter (fun (tm, c) -> tm.countdown <- c) countdowns;
      (match t.journal with None -> () | Some j -> Journal.drop_block j);
      (* The operation/event counters mirror applied state, so they
         rewind with it; blocks/lines count attempts and do not. *)
      t.stats.operations <- operations;
      t.stats.events <- events;
      t.stats.block_rollbacks <- t.stats.block_rollbacks + 1;
      Obs.Metrics.incr c_block_rollbacks;
      Log.debug (fun m -> m "block rolled back to instant %a" Time.pp instant);
      err

(* Executes a block of operations (a transaction line or one rule-action
   instantiation), then lets the Trigger Support look for new triggered
   rules.  Returns the object affected by each operation (scripts use the
   one of a trailing [create] for [as X] bindings). *)
let run_block t ops : (Ident.Oid.t option list, error) result =
  t.stats.blocks <- t.stats.blocks + 1;
  Obs.Metrics.incr c_blocks;
  let* affected =
    List.fold_left
      (fun acc op ->
        let* oids = acc in
        let* oid = apply_operation t op in
        Ok (oid :: oids))
      (Ok []) ops
  in
  Trigger_support.check_all t.config.trigger t.stats.trigger_stats t.memo
    t.wake t.rules;
  Ok (List.rev affected)

(* Executes a rule's action for every binding produced by its condition,
   threading environment extensions from binding creates.  The whole
   action instantiation is one block: a failing operation undoes it
   entirely. *)
let run_action_body t rule envs : (unit, error) result =
  let* () =
    List.fold_left
      (fun acc env ->
        let* () = acc in
        let* _env =
          List.fold_left
            (fun acc op ->
              let* env = acc in
              let* operation, extend =
                (Action.instantiate t.store env op
                  : (_, Condition.error) result
                  :> (_, error) result)
              in
              let* oid = apply_operation t operation in
              match oid with
              | Some oid -> Ok (extend oid)
              | None -> Ok env)
            (Ok env) rule.Rule.spec.action
        in
        Ok ())
      (Ok ()) envs
  in
  Trigger_support.check_all t.config.trigger t.stats.trigger_stats t.memo
    t.wake t.rules;
  Ok ()

let run_action t rule envs : (unit, error) result =
  let tok = Obs.Trace.begin_ "engine.action" ~detail:(Rule.name rule) in
  let result =
    guarded_block t @@ fun () ->
    t.stats.blocks <- t.stats.blocks + 1;
    Obs.Metrics.incr c_blocks;
    run_action_body t rule envs
  in
  Obs.Trace.end_into h_action tok;
  result

(* Considers the selected rule: evaluate its condition over its window,
   detrigger, and execute the action when the condition holds. *)
let consider t rule : (unit, error) result =
  let tok = Obs.Trace.begin_ "engine.consider" ~detail:(Rule.name rule) in
  let at = Event_base.probe_now t.eb in
  let after = Rule.formula_window_start rule ~tx_start:t.tx_start in
  let evaluator =
    if t.config.trigger.Trigger_support.memoize then
      Condition.Memoized { memo = t.memo; after }
    else
      let window = Window.make ~after ~upto:at in
      Condition.Recompute
        (Ts.env ~style:t.config.trigger.Trigger_support.style t.eb ~window)
  in
  let ctok = Obs.Trace.begin_ "engine.condition" ~detail:(Rule.name rule) in
  let condition =
    (Condition.eval t.store evaluator ~at rule.Rule.spec.condition
      : (_, Condition.error) result
      :> (_, error) result)
  in
  Obs.Trace.end_into h_condition ctok;
  let result =
    let* envs = condition in
    t.stats.considerations <- t.stats.considerations + 1;
    Obs.Metrics.incr c_considerations;
    Rule.detrigger rule ~at;
    (* The consideration moved the rule's windows: re-arm it for the next
       wake independently of new arrivals (under endpoint detection its
       first post-consideration check can matter even without them). *)
    Trigger_support.Wake.mark t.wake rule;
    Log.debug (fun m ->
        m "considering %s at %a: %d binding(s)" (Rule.name rule) Time.pp at
          (List.length envs));
    if envs = [] then Ok ()
    else begin
      t.stats.executions <- t.stats.executions + 1;
      Obs.Metrics.incr c_executions;
      (match t.on_execution with
      | Some notify -> notify (Rule.name rule)
      | None -> ());
      if Hashtbl.mem t.watched (Rule.name rule) then
        t.tx_notifies <-
          {
            act_rule = Rule.name rule;
            act_at = at;
            act_bindings =
              List.map
                (List.map (fun (v, value) -> (v, Value.to_string value)))
                envs;
          }
          :: t.tx_notifies;
      run_action t rule envs
    end
  in
  Obs.Trace.end_ tok;
  result

let coupling_filter ~include_deferred rule =
  match rule.Rule.spec.coupling with
  | Rule.Immediate -> true
  | Rule.Deferred -> include_deferred

(* The rule-processing loop: select, consider, repeat until quiescent. *)
let process t ~include_deferred : (unit, error) result =
  let budget = ref t.config.max_rule_executions in
  let rec loop () =
    match
      Rule_table.select t.rules ~filter:(coupling_filter ~include_deferred)
    with
    | None -> Ok ()
    | Some rule ->
        if !budget <= 0 then Error (`Nontermination (Rule.name rule))
        else begin
          decr budget;
          let* () = consider t rule in
          loop ()
        end
  in
  loop ()

(* Mid-transaction retirement: the raw log must keep the whole
   transaction (the global horizon is pinned at [tx_start] so abort's
   truncation and EID rewind stay exact), but per-type posting prefixes
   behind every interested rule's formula-window start — consumption
   advances as consuming rules fire — are dead and can go. *)
let maybe_retire_in_tx t =
  if t.config.window_events then
    match t.config.retire_in_tx with
    | Some threshold when Event_base.live_size t.eb >= threshold ->
        let type_horizon =
          Trigger_support.type_horizons t.rules ~tx_start:t.tx_start
        in
        Event_base.retire_to t.eb ~horizon:t.tx_start ~type_horizon
    | Some _ | None -> ()

(* A transaction line's block covers its matured timer occurrences too:
   on failure the countdowns rewind with the events. *)
let line_block t ops =
  guarded_block t @@ fun () ->
  fire_timers t;
  run_block t ops

let execute_line t ops : (unit, error) result =
  t.stats.lines <- t.stats.lines + 1;
  Obs.Metrics.incr c_lines;
  let tok = Obs.Trace.begin_ "engine.line" in
  let result =
    let* _affected = line_block t ops in
    let* () = process t ~include_deferred:false in
    maybe_retire_in_tx t;
    Ok ()
  in
  Obs.Trace.end_into h_line tok;
  result

(* Like {!execute_line}, additionally reporting the object affected by each
   operation (before any rule runs). *)
let execute_line_affected t ops : (Ident.Oid.t option list, error) result =
  t.stats.lines <- t.stats.lines + 1;
  Obs.Metrics.incr c_lines;
  let tok = Obs.Trace.begin_ "engine.line" in
  let result =
    let* affected = line_block t ops in
    let* () = process t ~include_deferred:false in
    maybe_retire_in_tx t;
    Ok affected
  in
  Obs.Trace.end_into h_line tok;
  result

(* Records one external event occurrence as its own transaction line —
   the server's hot ingestion path (EVENT / binary frames).  No store
   operation is involved: the occurrence is journaled as an "ev" record
   (replayed into the event base independently of any "op"), the engine
   assigns the instant, and triggering/rule processing run exactly as
   after [execute_line].  The block guard makes a failing rule cascade
   take the occurrence (and any matured timers) with it. *)
let ingest_event t ~etype ~oid : (unit, error) result =
  t.stats.lines <- t.stats.lines + 1;
  Obs.Metrics.incr c_lines;
  let tok = Obs.Trace.begin_ "engine.line" in
  let result =
    let* () =
      guarded_block t @@ fun () ->
      fire_timers t;
      t.stats.blocks <- t.stats.blocks + 1;
      Obs.Metrics.incr c_blocks;
      t.stats.events <- t.stats.events + 1;
      let occ = Event_base.record t.eb ~etype ~oid in
      journal_append t ~tag:"ev" (Event_codec.occurrence_line occ);
      Trigger_support.check_all t.config.trigger t.stats.trigger_stats t.memo
        t.wake t.rules;
      Ok ()
    in
    let* () = process t ~include_deferred:false in
    maybe_retire_in_tx t;
    Ok ()
  in
  Obs.Trace.end_into h_line tok;
  result

(* After commit every rule window restarts at the commit instant, so no
   evaluation can ever reach the old occurrences again: the log can be
   dropped, keeping only the clock position so instants stay monotone. *)
let compact t =
  let fresh = Event_base.create () in
  Time.Clock.advance_to (Event_base.clock fresh) (Event_base.now t.eb);
  Event_base.on_insert fresh (Trigger_support.Wake.on_event t.wake);
  t.eb <- fresh

(* ------------------------------------------------- journal integration *)

(* Timers are journaled at every commit as "name TAB period TAB
   countdown" (the name is parsed from the right, so it may contain
   tabs); the last committed record per name wins on replay. *)
let timer_to_line tm =
  Printf.sprintf "%s\t%d\t%d" tm.timer_name tm.period tm.countdown

let timer_of_line line =
  let fail () = Error (Printf.sprintf "malformed timer record %S" line) in
  match String.rindex_opt line '\t' with
  | None -> fail ()
  | Some j when j = 0 -> fail ()
  | Some j -> (
      match String.rindex_from_opt line (j - 1) '\t' with
      | None -> fail ()
      | Some i -> (
          let name = String.sub line 0 i in
          let period = String.sub line (i + 1) (j - i - 1) in
          let countdown = String.sub line (j + 1) (String.length line - j - 1) in
          match (int_of_string_opt period, int_of_string_opt countdown) with
          | Some period, Some countdown when name <> "" && period > 0 ->
              Ok (name, period, countdown)
          | _ -> fail ()))

(* The checkpoint a rotated segment opens with: it must reconstruct the
   committed state exactly — live object rows (committed state carries
   no tombstones: the commit point purges them, so a base written
   mid-commit must drop the closing transaction's dead rows too), the
   OID generator, the clock position (the event log itself was just
   compacted away, soundly), and the timers. *)
let checkpoint_entries t =
  ("ckpt.oidgen", string_of_int (Object_store.oid_count t.store))
  :: ("ckpt.clock", string_of_int (Time.to_int (Event_base.now t.eb)))
  :: List.filter_map
       (fun ((_, _, deleted, _) as row) ->
         if deleted then None
         else Some ("ckpt.obj", Store_codec.object_to_line row))
       (Object_store.dump_objects t.store)
  @ List.map (fun tm -> ("timer", timer_to_line tm)) (timer_list t)

let checkpoint_records t =
  List.map
    (fun (tag, payload) -> { Journal.tag; payload })
    (checkpoint_entries t)

(* Writes a checkpoint covering everything committed so far, seals the
   live segment behind it and GCs the segments both the checkpoint and
   the follower ack floor are done with.  Returns (covered commit
   sequence, segments removed).  Must run at a commit boundary — the
   seal requires it. *)
let write_checkpoint t j ck =
  let ckpt =
    { Checkpoint.commit_seq = Journal.commit_seq j; entries = checkpoint_records t }
  in
  let tok = Obs.Trace.begin_ "engine.checkpoint" ~detail:ck.ckpt_path in
  Checkpoint.write ~path:ck.ckpt_path ckpt;
  Obs.Trace.end_into h_ckpt tok;
  Obs.Metrics.incr c_ckpt_writes;
  Journal.seal j;
  let floor = min ckpt.Checkpoint.commit_seq (ck.gc_floor ()) in
  let removed = Journal.gc j ~upto:floor in
  ck.commits_since <- 0;
  ck.last_ckpt_s <- Monotime.now_s ();
  ck.last_floor <- floor;
  Obs.Metrics.set_gauge g_gc_floor floor;
  Log.info (fun m ->
      m "checkpoint at commit seq %d (%d segment(s) GC'd)"
        ckpt.Checkpoint.commit_seq removed);
  (ckpt.Checkpoint.commit_seq, removed)

(* Forces a checkpoint + seal + GC cycle now (the CHECKPOINT wire
   command / CLI path); resets the periodic countdowns. *)
let checkpoint_now t : (int * int, string) result =
  match (t.ckpt, t.journal) with
  | Some ck, Some j -> Ok (write_checkpoint t j ck)
  | _ -> Error "checkpointing is not enabled on this engine"

(* Runs at each commit boundary: fires on the commit-count cadence, the
   wall-clock cadence, or both — whichever is due first. *)
let maybe_checkpoint t =
  match (t.ckpt, t.journal) with
  | Some ck, Some j ->
      ck.commits_since <- ck.commits_since + 1;
      let count_due =
        match ck.every_commits with
        | Some n -> ck.commits_since >= n
        | None -> false
      in
      let time_due =
        match ck.every_seconds with
        | Some s -> Monotime.now_s () -. ck.last_ckpt_s >= s
        | None -> false
      in
      if count_due || time_due then ignore (write_checkpoint t j ck)
  | _ -> ()

(* Sliding-window retirement at a transaction boundary: every rule
   window restarts at [t.tx_start], so nothing at or before it is
   reachable — retire the whole live prefix in place (indices and EIDs
   stay stable, unlike {!compact}). *)
let retire_at_boundary t =
  Event_base.retire_to t.eb ~horizon:t.tx_start
    ~type_horizon:(fun _ -> t.tx_start)

let rec commit t : (unit, error) result =
  let tok = Obs.Trace.begin_ "engine.commit" in
  let result = commit_body t in
  Obs.Trace.end_into h_commit tok;
  (match result with Ok () -> Obs.Metrics.incr c_commits | Error _ -> ());
  result

and commit_body t : (unit, error) result =
  (* Give deferred rules a final trigger check over the whole transaction,
     then process every triggered rule. *)
  Trigger_support.check_all t.config.trigger t.stats.trigger_stats t.memo
    t.wake t.rules;
  let* () = process t ~include_deferred:true in
  let checkpointing = Option.is_some t.ckpt in
  let compacted =
    match t.config.compact_at_commit with
    | Some threshold when (not checkpointing) && Event_base.size t.eb >= threshold
      ->
        compact t;
        true
    | Some _ | None -> false
  in
  (match t.journal with
  | None -> ()
  | Some j ->
      if compacted then
        (* Segment rotation rides the compaction: the dropped history is
           replaced by a checkpoint of the committed state. *)
        Journal.rotate j ~base:(checkpoint_entries t)
      else begin
        Queue.iter
          (fun tm -> Journal.append j ~tag:"timer" (timer_to_line tm))
          t.timers;
        Journal.commit j
      end);
  (* The commit point: committed history can never be rolled back.  The
     transaction's buffered activations become deliverable exactly here —
     never earlier, so an abort (or a commit that failed above) can never
     leak a phantom notify. *)
  if t.tx_notifies <> [] then begin
    t.committed_notifies <- t.tx_notifies @ t.committed_notifies;
    t.tx_notifies <- []
  end;
  let purged = Object_store.forget_undo t.store in
  let fresh_start = Event_base.probe_now t.eb in
  t.tx_start <- fresh_start;
  Rule_table.iter (fun rule -> Rule.reset rule ~tx_start:fresh_start) t.rules;
  (* Every rule window restarted at the commit instant, so no cached value
     is reachable again: drop them all, keep the interned graph (and
     rebind to the fresh log when the commit compacted). *)
  Memo.restart t.memo t.eb;
  (* The whole live window died with the windows: retire it in place.
     Under checkpointing this replaces compaction entirely — indices and
     EIDs stay stable across the engine's lifetime. *)
  if t.config.window_events && not compacted then begin
    retire_at_boundary t;
    (* The purged objects' occurrences just retired with the window:
       their per-object indexes are dead weight now. *)
    if purged <> [] then Event_base.forget_objects t.eb ~oids:purged
  end;
  (* A checkpoint taken here needs no event records at all: the live
     window is empty, and every rule window starts at [fresh_start]. *)
  maybe_checkpoint t;
  begin_transaction t;
  Ok ()

(* ------------------------------------------------------ abort/recover *)

(* Restores the engine to the transaction start: store (undo log), event
   base (truncation — clock and EIDs rewind with it), trigger state,
   timers (countdowns back, mid-transaction definitions dropped), memo
   (all cached values over the truncated log go).  Observationally the
   transaction never ran. *)
let abort t =
  let tok = Obs.Trace.begin_ "engine.abort" in
  (match t.journal with None -> () | Some j -> Journal.abort j);
  Object_store.rollback_to t.store t.tx_sp;
  Event_base.truncate_to t.eb ~instant:t.tx_instant;
  Trigger_support.restore t.rules t.tx_trigger;
  (* Rules defined in the aborted transaction left the table; everything
     else moved its windows back.  Re-derive the wake index and mark all
     dirty — one sweep-equivalent wake, then delta-driven again. *)
  Trigger_support.Wake.rebuild t.wake t.rules;
  Queue.clear t.timers;
  Hashtbl.reset t.timer_index;
  List.iter
    (fun (tm, countdown) ->
      tm.countdown <- countdown;
      Hashtbl.add t.timer_index tm.timer_name ();
      Queue.add tm t.timers)
    t.tx_timers;
  Memo.restart t.memo t.eb;
  (* Activations buffered by the aborted transaction never happened. *)
  t.tx_notifies <- [];
  t.stats.aborts <- t.stats.aborts + 1;
  Obs.Metrics.incr c_aborts;
  (* The savepoint state is unchanged — the transaction may be retried —
     but retake it so rollback internals start from a clean undo log. *)
  begin_transaction t;
  Obs.Trace.end_into h_abort tok;
  Log.info (fun m -> m "transaction aborted; back to %a" Time.pp t.tx_start)

type recovery = {
  recovered_commits : int;  (** commit markers replayed from the chain *)
  last_commit_seq : int;  (** global sequence of the last committed tx *)
  recovered_entries : int;
  dropped_entries : int;  (** intact but uncommitted records dropped *)
  dropped_bytes : int;  (** torn-tail bytes dropped *)
  booted_from_checkpoint : int option;
      (** the commit sequence of the checkpoint the boot started from;
          [None] on a full-chain replay *)
  first_segment : int option;
      (** lowest sealed segment still present ([None]: live file only) *)
  replayed_records : int;
      (** journal records replayed {e after} the checkpoint — the
          O(delta) recovery guard *)
}

(* Replays one journal record into the engine.  The progress counter
   ticks per record attempted, so a trace of a recovery shows how far the
   replay got even when it fails partway. *)
let replay_entry t (entry : Journal.entry) : (unit, string) result =
  Obs.Metrics.incr c_recover_entries;
  match entry.Journal.tag with
  | "op" -> (
      let* op = Store_codec.op_of_line entry.Journal.payload in
      (* OIDs are issued densely, so replaying the operations in order
         reproduces the original identifiers; the emitted occurrences
         are discarded — the "ev" records carry the exact instants. *)
      match Operation.apply t.store op with
      | Ok _emitted -> Ok ()
      | Error e -> Error (Fmt.str "cannot replay operation: %a" Object_store.pp_error e))
  | "ev" -> (
      let* etype, oid, timestamp =
        Event_codec.parse_occurrence_line entry.Journal.payload
      in
      match Event_base.record_at t.eb ~etype ~oid ~timestamp with
      | _occ -> Ok ()
      | exception Invalid_argument msg -> Error msg)
  | "timer" -> (
      let* name, period, countdown = timer_of_line entry.Journal.payload in
      match
        Queue.fold
          (fun acc tm -> if String.equal tm.timer_name name then Some tm else acc)
          None t.timers
      with
      | Some tm ->
          if tm.period <> period then
            Error (Printf.sprintf "timer %s: period mismatch on replay" name)
          else begin
            tm.countdown <- countdown;
            Ok ()
          end
      | None ->
          let etype = Event_type.external_ ~name ~class_name:"timer" in
          Hashtbl.add t.timer_index name ();
          Queue.add { timer_name = name; etype; period; countdown } t.timers;
          Ok ())
  | "ckpt.oidgen" -> (
      match int_of_string_opt entry.Journal.payload with
      | Some n -> (
          match Object_store.set_oid_count t.store n with
          | () -> Ok ()
          | exception Invalid_argument msg -> Error msg)
      | None -> Error "malformed ckpt.oidgen record")
  | "ckpt.clock" -> (
      match int_of_string_opt entry.Journal.payload with
      | Some n ->
          Time.Clock.advance_to (Event_base.clock t.eb) (Time.of_int n);
          Ok ()
      | None -> Error "malformed ckpt.clock record")
  | "ckpt.obj" -> (
      let* oid, class_name, deleted, attrs =
        Store_codec.object_of_line entry.Journal.payload
      in
      match Object_store.restore_object t.store ~oid ~class_name ~deleted ~attrs with
      | () -> Ok ()
      | exception Invalid_argument msg -> Error msg)
  | other ->
      (* Unknown tags are future extensions, not corruption: skip. *)
      Log.warn (fun m -> m "recovery: skipping unknown record tag %s" other);
      Ok ()

(* Applies a batch of committed transactions and settles the engine on
   the resulting committed state, exactly as a completed [recover] would:
   undo log forgotten, rule windows restarted, wake index re-derived,
   memo restarted, fresh transaction begun.  This is the whole of the
   replay machinery behind both {!recover} (one batch, a fresh engine)
   and {!apply_replayed} (incremental batches on a replication
   follower). *)
let apply_committed_txs t txs : (unit, string) result =
  let* () =
    List.fold_left
      (fun acc tx ->
        let* () = acc in
        List.fold_left
          (fun acc entry ->
            let* () = acc in
            replay_entry t entry)
          (Ok ()) tx)
      (Ok ()) txs
  in
  (* The replayed state is committed state: start a fresh transaction
     exactly as [commit] would. *)
  let purged = Object_store.forget_undo t.store in
  let fresh_start = Event_base.probe_now t.eb in
  t.tx_start <- fresh_start;
  Rule_table.iter (fun rule -> Rule.reset rule ~tx_start:fresh_start) t.rules;
  (* The replay recorded events through the same listener feed, but the
     windows all moved: re-derive the wake index from scratch. *)
  Trigger_support.Wake.rebuild t.wake t.rules;
  Memo.restart t.memo t.eb;
  (* The replayed history is unreachable, exactly as after a commit:
     retire it so a long-lived standby's event base stays bounded. *)
  if t.config.window_events then begin
    Event_base.retire_to t.eb ~horizon:t.tx_start
      ~type_horizon:(fun _ -> t.tx_start);
    if purged <> [] then Event_base.forget_objects t.eb ~oids:purged
  end;
  begin_transaction t;
  Ok ()

(* Incremental replay for a warm standby: applies committed transactions
   shipped from a primary's journal, in order, onto an engine that
   already holds the state of every earlier batch.  The engine must be
   quiescent (no client transaction in progress) — on a standby it only
   ever sees this call.  Counted into the recovery statistics so STATS
   on a follower shows replication progress. *)
let apply_replayed t txs : (unit, string) result =
  let* () = apply_committed_txs t txs in
  t.stats.recovered_commits <- t.stats.recovered_commits + List.length txs;
  t.stats.recovered_entries <-
    t.stats.recovered_entries
    + List.fold_left (fun acc tx -> acc + List.length tx) 0 txs;
  Ok ()

(* Rebuilds the state after the last committed transaction from a
   journal chain (sealed segments + live file), booting from the
   checkpoint beside it when one exists.  The engine must be fresh (same
   schema, rules and timers re-defined by the caller — definitions are
   program text, not journaled state) and holds exactly the committed
   state afterwards: uncommitted trailing records and a torn tail are
   dropped and reported.  With a checkpoint at commit sequence S, only
   transactions with a marker past S replay — O(delta) recovery — and
   the chain may legally start past segment 0 (GC retired the rest). *)
let recover t ~path : (recovery, string) result =
  if Object_store.oid_count t.store > 0 || Event_base.size t.eb > 0 then
    Error "Engine.recover: the engine already holds state"
  else
    Obs.Trace.with_span "engine.recover" ~detail:path @@ fun () ->
    let* chain = Journal.read_chain ~path in
    let replay = chain.Journal.chain_replay in
    let* ckpt =
      match Checkpoint.read_opt ~path:(Checkpoint.path_for path) with
      | Ok c -> Ok c
      | Error msg -> (
          (* A damaged checkpoint is fatal only when recovery needs it:
             with the whole chain present, a full replay still works. *)
          match chain.Journal.chain_first_segment with
          | None | Some 0 ->
              Log.warn (fun m ->
                  m "ignoring unreadable checkpoint (%s): full chain present"
                    msg);
              Ok None
          | Some _ -> Error msg)
    in
    let* () =
      match (ckpt, chain.Journal.chain_first_segment) with
      | None, Some first when first > 0 ->
          Error
            (Printf.sprintf
               "journal chain starts at segment %d but no checkpoint covers \
                the GC'd prefix"
               first)
      | _ -> Ok ()
    in
    let ckpt_seq, ckpt_entries =
      match ckpt with
      | None -> (0, [])
      | Some c -> (c.Checkpoint.commit_seq, c.Checkpoint.entries)
    in
    let* () =
      List.fold_left
        (fun acc entry ->
          let* () = acc in
          replay_entry t entry)
        (Ok ()) ckpt_entries
    in
    (* Replay only the suffix the checkpoint does not cover. *)
    let kept =
      List.filter_map
        (fun (tx, seq) -> if seq > ckpt_seq then Some tx else None)
        (List.combine replay.Journal.committed replay.Journal.committed_seqs)
    in
    let* () = apply_committed_txs t kept in
    let kept_entries =
      List.fold_left (fun acc tx -> acc + List.length tx) 0 kept
    in
    Obs.Metrics.add c_replayed_records kept_entries;
    let report =
      {
        recovered_commits = List.length kept;
        last_commit_seq = max replay.Journal.last_commit_seq ckpt_seq;
        recovered_entries = List.length ckpt_entries + kept_entries;
        dropped_entries = replay.Journal.uncommitted_entries;
        dropped_bytes = replay.Journal.torn_bytes;
        booted_from_checkpoint =
          (match ckpt with Some c -> Some c.Checkpoint.commit_seq | None -> None);
        first_segment = chain.Journal.chain_first_segment;
        replayed_records = kept_entries;
      }
    in
    t.stats.recovered_commits <- report.recovered_commits;
    t.stats.recovered_entries <- report.recovered_entries;
    t.stats.recovery_dropped_entries <- report.dropped_entries;
    t.stats.recovery_torn_bytes <- report.dropped_bytes;
    Log.info (fun m ->
        m
          "recovered %d transaction(s), %d record(s)%s; dropped %d \
           uncommitted record(s), %d torn byte(s)"
          report.recovered_commits report.recovered_entries
          (match report.booted_from_checkpoint with
          | Some seq -> Printf.sprintf " (booted from checkpoint at seq %d)" seq
          | None -> "")
          report.dropped_entries report.dropped_bytes);
    Ok report

let execute_line_exn t ops =
  match execute_line t ops with
  | Ok () -> ()
  | Error e -> failwith (Fmt.str "%a" pp_error e)

let commit_exn t =
  match commit t with
  | Ok () -> ()
  | Error e -> failwith (Fmt.str "%a" pp_error e)
