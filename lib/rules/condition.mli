(** Rule conditions (Sections 2 and 3.3): conjunctions of class ranges,
    event formulas and comparison predicates, evaluated set-oriented into
    the full list of satisfying bindings. *)

open Chimera_util
open Chimera_calculus
open Chimera_store

type atom =
  | Range of { var : string; class_name : string }
      (** [stock(S)]: S ranges over the class extent. *)
  | Occurred of { expr : Expr.inst; var : string }
      (** [occurred(expr, S)]: S binds the objects activating [expr]. *)
  | At of { expr : Expr.inst; var : string; time_var : string }
      (** [at(expr, S, T)]: additionally binds the occurrence instants. *)
  | Compare of Query.predicate
  | Absent of atom list
      (** Negated subcondition: a binding survives iff the nested
          conjunction has no solution under it (variables bound inside are
          local). *)

type t = atom list

(** How event formulas are evaluated: [Recompute] re-derives every value
    from the event-base indexes through a plain {!Ts.env}; [Memoized]
    evaluates through the engine's shared memo over interned expressions
    (the default engine path), against the window starting at [after] and
    clipping at the probe instant.  Both agree (property-tested). *)
type evaluator =
  | Recompute of Ts.env
  | Memoized of { memo : Memo.t; after : Time.t }

(** A binding environment: object variables map to [Value.Oid], time
    variables to [Value.Int] carrying the raw instant. *)
type env = (string * Value.t) list

val lookup : env -> string -> Value.t option

type error = [ Query.error | `Rule_error of string ]

val pp_error : Format.formatter -> error -> unit

val map_result : ('a -> ('b, 'e) result) -> 'a list -> ('b list, 'e) result
(** All-or-nothing map; shared with the action interpreter. *)

val eval :
  Object_store.t -> evaluator -> at:Time.t -> t -> (env list, error) result
(** Evaluates the condition at instant [at] against the window R carried by
    the evaluator.  The empty list means "not satisfied".  Atoms are
    conjunctive, hence order-independent; evaluation reorders them
    cheapest-first (event formulas before ranges before comparisons). *)

val vars : t -> string list
(** Variables bound by the condition, sorted. *)

val event_types : t -> Chimera_event.Event_type.Set.t
(** The primitive event types the condition's event formulas
    ([occurred]/[at], including under [absent]) probe — part of a rule's
    interest set for the sliding-window retirement horizon. *)

val pp_atom : Format.formatter -> atom -> unit
val pp : Format.formatter -> t -> unit
