(** ECA rule definitions and their runtime status: the Rule Table entries
    of Section 5 (triggered flag, last-consideration / last-consumption
    timestamps, and the statically derived V(E) relevance filter). *)

open Chimera_util
open Chimera_calculus
open Chimera_optimizer

type coupling = Immediate | Deferred
type consumption = Consuming | Preserving

type spec = {
  name : string;
  target : string option;
      (** a targeted rule may only mention events of this class *)
  event : Expr.set;
  condition : Condition.t;
  action : Action.t;
  coupling : coupling;
  consumption : consumption;
  priority : int;  (** higher is considered first *)
}

type t = {
  spec : spec;
  relevance : Relevance.t;
  seqno : int;  (** definition order; priority ties break on it *)
  mutable triggered : bool;
  mutable last_consideration : Time.t;
  mutable last_consumption : Time.t;
  mutable scan_from : Time.t;
      (** exact detection: instants at or before this were already probed *)
  mutable last_recomputation : Time.t;
      (** endpoint detection: when ts was last recomputed *)
  mutable last_sign_positive : bool;
  mutable memo_handle : (Memo.t * Memo.handle) option;
      (** the rule's event expression interned into the engine's shared
          memo (see {!Trigger_support}); handles survive restarts, so
          this is set once per memo *)
  mutable wake_pending : bool;
      (** already enqueued in the dirty-rule set of the indexed wake
          (see {!Trigger_support.Wake}); dedups marking in O(1) *)
}

val spec : t -> spec
val name : t -> string
val relevance : t -> Relevance.t
val priority : t -> int

val make :
  seqno:int -> tx_start:Time.t -> spec -> (t, [> `Rule_error of string ]) result
(** Validates the targeting constraint and derives V(E). *)

val trigger_window_start : t -> Time.t
(** Lower bound of the triggering window R (Section 4.4): always the last
    consideration — earlier events lose the capability of triggering,
    whatever the consumption mode. *)

val formula_window_start : t -> tx_start:Time.t -> Time.t
(** Lower bound of the observed interval of the condition's event formulas
    (Section 3.3): the last consideration for consuming rules, the
    transaction start for preserving ones. *)

val detrigger : t -> at:Time.t -> unit
(** Consideration: clears the triggered flag, stamps the consideration
    instant and (for consuming rules) consumes the events before it. *)

val reset : t -> tx_start:Time.t -> unit
(** Transaction boundary: fresh windows, flag cleared. *)

val coupling_name : coupling -> string
val consumption_name : consumption -> string
val pp_spec : Format.formatter -> spec -> unit
val pp : Format.formatter -> t -> unit
