(** The rule-processing engine: Block Executor plus the transaction loop
    of Section 2.

    A transaction is a sequence of transaction lines (non-interruptible
    blocks).  After every block the Trigger Support runs; then the
    highest-priority triggered rule with a matching coupling mode is
    considered (condition evaluated set-oriented), detriggered, and its
    action — when the condition held — executes as a new block whose
    events can trigger further rules.  Deferred rules wait for commit. *)

open Chimera_util
open Chimera_event
open Chimera_calculus
open Chimera_store

type error = [ Condition.error | `Nontermination of string ]

val pp_error : Format.formatter -> error -> unit

type config = {
  trigger : Trigger_support.config;
  max_rule_executions : int;
      (** guard against non-terminating rule cascades *)
  compact_at_commit : int option;
      (** drop the event log at commit once it exceeds this size (sound:
          every rule window restarts at the commit instant); [None]
          disables compaction.  Skipped while checkpointing is enabled
          (retirement and segment GC bound state instead).  Default:
          [Some 100_000]. *)
  window_events : bool;
      (** sliding event-base windows: at commit (and mid-transaction past
          [retire_in_tx]) retire occurrences no rule window can reach
          again, in place — log indices and event identifiers stay
          stable, unlike compaction.  Behaviour-preserving
          (differential-tested against an unwindowed twin).  Default:
          [true]. *)
  retire_in_tx : int option;
      (** mid-transaction retirement threshold: once the live log holds
          this many occurrences, every transaction line ends with a
          per-type horizon computation (consuming rules advance their
          windows as they fire) and prefix retirement.  [None] retires
          only at commit.  Default: [Some 10_000]. *)
}

val default_config : config

type stats = {
  trigger_stats : Trigger_support.stats;
  mutable lines : int;  (** user transaction lines executed *)
  mutable blocks : int;  (** blocks (lines plus rule actions) *)
  mutable considerations : int;
  mutable executions : int;  (** considerations whose condition held *)
  mutable operations : int;
  mutable events : int;
  mutable memo_hits : int;  (** shared-memo cache hits (cumulative) *)
  mutable memo_misses : int;  (** shared-memo cache misses (cumulative) *)
  mutable memo_nodes : int;  (** interned nodes (shows cross-rule sharing) *)
  mutable aborts : int;  (** transactions rolled back via {!abort} *)
  mutable block_rollbacks : int;  (** failed blocks undone atomically *)
  mutable journal_appends : int;  (** records accepted by the journal *)
  mutable journal_commits : int;  (** commit markers (incl. rotations) *)
  mutable journal_syncs : int;  (** fsyncs issued by the journal *)
  mutable journal_rotations : int;
  mutable recovered_commits : int;  (** committed transactions replayed *)
  mutable recovered_entries : int;  (** journal records replayed *)
  mutable recovery_dropped_entries : int;
      (** intact but uncommitted records dropped on recovery *)
  mutable recovery_torn_bytes : int;  (** torn-tail bytes dropped *)
}

type t

val create : ?config:config -> Schema.t -> t
val store : t -> Object_store.t
val event_base : t -> Event_base.t

val memo : t -> Memo.t
(** The engine-owned shared evaluation cache: one interned node graph for
    every rule; entries are keyed by window, so considerations invalidate
    nothing, and {!commit} restarts it in place (graph preserved). *)

val rules : t -> Rule_table.t

val statistics : t -> stats
(** Engine counters; the memo fields are synced from the shared cache on
    each call. *)

val tx_start : t -> Time.t

val define : t -> Rule.spec -> (Rule.t, [> `Rule_error of string ]) result

val define_exn : t -> Rule.spec -> Rule.t
(** Raises [Invalid_argument] on rejection. *)

(** {2 Dynamic rules and live activations (subscriptions)} *)

type activation = {
  act_rule : string;  (** rule name, as defined *)
  act_at : Time.t;  (** the consideration instant ([ts] evaluation point) *)
  act_bindings : (string * string) list list;
      (** one binding list per satisfying environment, variables in
          declaration order, values printed with [Value.to_string] *)
}
(** One committed trigger activation of a watched rule. *)

val define_dynamic : t -> Rule.spec -> (Rule.t, [> `Rule_error of string ]) result
(** Like {!define}, for a rule added while the engine is live.  Must be
    called at a transaction boundary; on success the transaction
    savepoint is refreshed so a later {!abort} cannot silently drop the
    rule again. *)

val undefine : t -> string -> (unit, [> `Rule_error of string ]) result
(** Drops a rule by name and rebuilds the wake index.  Returns [Error]
    (never raises) when the name is unknown or already dropped.  Must be
    called at a transaction boundary; the savepoint is refreshed so a
    later {!abort} cannot resurrect the rule. *)

val watch_rule : t -> string -> unit
(** Marks a rule as watched: each consideration whose condition holds
    buffers an {!activation} in the current transaction. *)

val unwatch_rule : t -> string -> unit
(** Stops watching a rule and discards its activations buffered in the
    current (uncommitted) transaction.  Already-committed activations
    stay deliverable. *)

val drain_activations : t -> activation list
(** Returns (and clears) the committed activations of watched rules, in
    commit order.  Buffered activations become deliverable exactly at
    the commit point — an aborted transaction contributes none — so the
    sequence of drained activations is precisely the committed execution
    log of the watched rules. *)

val execute_line : t -> Operation.t list -> (unit, error) result
(** Executes one transaction line, then processes immediate rules to
    quiescence. *)

val execute_line_affected :
  t -> Operation.t list -> (Ident.Oid.t option list, error) result
(** Like {!execute_line}, additionally reporting the object affected by
    each operation (before any rule runs); scripts use it for [as X]
    bindings. *)

val ingest_event :
  t -> etype:Chimera_event.Event_type.t -> oid:Ident.Oid.t -> (unit, error) result
(** Records one external event occurrence as its own transaction line —
    the server's hot ingestion path (the [EVENT] verb and the binary
    frames).  No store operation runs: the occurrence is journaled as an
    ["ev"] record, the engine assigns the instant, and immediate rules
    process to quiescence exactly as after {!execute_line}.  On [Error]
    the occurrence (and any matured timer events) roll back with the
    block. *)

val commit : t -> (unit, error) result
(** Processes deferred (and remaining immediate) rules, then starts a
    fresh transaction: rule windows restart, flags clear.  With a journal
    attached, the commit is made durable first — a commit marker under the
    journal's fsync policy, or a checkpointed segment rotation when the
    commit compacted the event log. *)

val abort : t -> unit
(** Rolls the current transaction back to its start: the store (via the
    undo log), the event base (truncation — clock and identifier
    generators rewind with it), the trigger state, the timers (countdowns
    restored, mid-transaction definitions dropped) and the shared memo.
    Observationally equivalent to the transaction never having run; a
    durable abort marker is journaled when a journal is attached.  The
    engine is immediately usable for the next transaction. *)

val execute_line_exn : t -> Operation.t list -> unit
val commit_exn : t -> unit

val define_timer : t -> name:string -> period_lines:int -> Chimera_event.Event_type.t
(** Registers a HiPAC-style periodic clock event, simulated on the
    engine's logical time: it matures every [period_lines] transaction
    lines and contributes an external occurrence (on the reserved timer
    pseudo-object) to that line's block.  Returns the event type rules
    subscribe to.  Registration is O(1); raises [Invalid_argument] on a
    non-positive period or a duplicate timer name (two timers of the same
    name would share an event type and double-fire per line). *)

val timer_names : t -> string list

val set_on_execution : t -> (string -> unit) -> unit
(** Registers the (single) execution listener: called with the rule name
    each time a consideration's condition holds, immediately before the
    action block runs.  The network server uses it to report the rules a
    transaction line executed ([TRIGGERED ...]) back to the client. *)

val clear_on_execution : t -> unit

(** {2 Durability: write-ahead journal and crash recovery} *)

val set_journal : t -> Chimera_event.Journal.t -> unit
(** Attaches a write-ahead journal; every applied operation and recorded
    occurrence is journaled from here on (blocks atomically, transactions
    closed by commit/abort markers).  Attach at transaction start —
    normally right after {!create} or {!recover} — so the journal sees
    whole transactions. *)

val journal : t -> Chimera_event.Journal.t option

(** {2 Bounded state: checkpoints, segment GC, sliding windows} *)

val enable_checkpoints :
  t ->
  ?path:string ->
  ?every_commits:int ->
  ?every_seconds:float ->
  ?gc_floor:(unit -> int) ->
  unit ->
  unit
(** Turns on periodic checkpointing (requires an attached journal and at
    least one cadence; raises [Invalid_argument] otherwise).  On a
    commit-count cadence ([every_commits]), a wall-clock cadence
    ([every_seconds], measured on {!Chimera_util.Monotime}), or both —
    whichever is due first, checked at commit boundaries only — the
    engine atomically writes a checkpoint of the committed state to
    [path] (default: {!Chimera_event.Checkpoint.path_for} of the journal
    path), seals the live journal segment, and GCs every sealed segment
    at or below [min checkpoint_seq (gc_floor ())] — [gc_floor] is the
    replication ack floor, pinning segments a connected follower still
    needs ([max_int] when unreplicated).  While enabled,
    [compact_at_commit] is skipped: sliding-window retirement bounds the
    event base and the checkpoint cycle bounds the journal chain. *)

val gc_floor : t -> int option
(** The journal-GC floor the last checkpoint cycle applied —
    [min checkpoint_seq (replication ack floor)] — or [None] before the
    first cycle (or with checkpointing off).  Also published as the
    ["gc.floor"] gauge. *)

val checkpoint_now : t -> (int * int, string) result
(** Forces a checkpoint + seal + GC cycle immediately; must be called at
    a transaction boundary (between a commit and the first line of the
    next transaction).  Returns (covered commit sequence, segments
    GC'd); [Error] when checkpointing is not enabled. *)

val checkpoint_path : t -> string option
(** The checkpoint file path, when checkpointing is enabled. *)

val checkpoint_records : t -> Chimera_event.Journal.entry list
(** The replayable records a checkpoint of the current committed state
    carries (object rows, OID generator, clock, timers) — exposed for
    the offline [chimera checkpoint] path, which writes a checkpoint
    beside a recovered journal without opening it for appending. *)

type recovery = {
  recovered_commits : int;  (** commit markers replayed from the chain *)
  last_commit_seq : int;  (** global sequence of the last committed tx *)
  recovered_entries : int;
  dropped_entries : int;  (** intact but uncommitted records dropped *)
  dropped_bytes : int;  (** torn-tail bytes dropped *)
  booted_from_checkpoint : int option;
      (** commit sequence of the checkpoint the boot started from;
          [None] on a full-chain replay *)
  first_segment : int option;
      (** lowest sealed segment still present ([None]: live file only) *)
  replayed_records : int;
      (** journal records replayed after the checkpoint — the O(delta)
          recovery guard (also on the ["journal.replayed_records"]
          counter) *)
}

val apply_replayed :
  t -> Chimera_event.Journal.entry list list -> (unit, string) result
(** Incremental replay for a warm standby: applies committed
    transactions (shipped from a primary's journal, in order) onto an
    engine already holding the state of every earlier batch, through the
    same machinery as {!recover}, and settles on the resulting committed
    state (fresh transaction, windows restarted).  The engine must be
    quiescent — no client transaction in progress. *)

val recover : t -> path:string -> (recovery, string) result
(** Rebuilds the state after the last committed transaction from a
    journal chain (sealed segments plus the live file), booting from the
    checkpoint beside it when one exists: checkpoint records restore the
    committed base state, then only transactions with a commit marker
    past the checkpoint's sequence replay — O(delta) recovery — so the
    chain may legally start past segment 0 (GC retired the rest).
    Without a checkpoint the whole chain replays: operations against the
    store (OIDs are issued densely, so identifiers reproduce exactly),
    occurrences against the event base at their original instants.  The
    engine must be fresh; schema, rules and timers are program text, not
    journaled state — re-define them before calling (recovered timer
    countdowns override defined ones).  Trailing uncommitted records and
    a torn tail are tolerated, dropped and reported; a GC'd chain with a
    missing or unreadable checkpoint is an error. *)
