(** The rule-processing engine: Block Executor plus the transaction loop
    of Section 2.

    A transaction is a sequence of transaction lines (non-interruptible
    blocks).  After every block the Trigger Support runs; then the
    highest-priority triggered rule with a matching coupling mode is
    considered (condition evaluated set-oriented), detriggered, and its
    action — when the condition held — executes as a new block whose
    events can trigger further rules.  Deferred rules wait for commit. *)

open Chimera_util
open Chimera_event
open Chimera_calculus
open Chimera_store

type error = [ Condition.error | `Nontermination of string ]

val pp_error : Format.formatter -> error -> unit

type config = {
  trigger : Trigger_support.config;
  max_rule_executions : int;
      (** guard against non-terminating rule cascades *)
  compact_at_commit : int option;
      (** drop the event log at commit once it exceeds this size (sound:
          every rule window restarts at the commit instant); [None]
          disables compaction.  Default: [Some 100_000]. *)
}

val default_config : config

type stats = {
  trigger_stats : Trigger_support.stats;
  mutable lines : int;  (** user transaction lines executed *)
  mutable blocks : int;  (** blocks (lines plus rule actions) *)
  mutable considerations : int;
  mutable executions : int;  (** considerations whose condition held *)
  mutable operations : int;
  mutable events : int;
  mutable memo_hits : int;  (** shared-memo cache hits (cumulative) *)
  mutable memo_misses : int;  (** shared-memo cache misses (cumulative) *)
  mutable memo_nodes : int;  (** interned nodes (shows cross-rule sharing) *)
}

type t

val create : ?config:config -> Schema.t -> t
val store : t -> Object_store.t
val event_base : t -> Event_base.t

val memo : t -> Memo.t
(** The engine-owned shared evaluation cache: one interned node graph for
    every rule; entries are keyed by window, so considerations invalidate
    nothing, and {!commit} restarts it in place (graph preserved). *)

val rules : t -> Rule_table.t

val statistics : t -> stats
(** Engine counters; the memo fields are synced from the shared cache on
    each call. *)

val tx_start : t -> Time.t

val define : t -> Rule.spec -> (Rule.t, [> `Rule_error of string ]) result

val define_exn : t -> Rule.spec -> Rule.t
(** Raises [Invalid_argument] on rejection. *)

val execute_line : t -> Operation.t list -> (unit, error) result
(** Executes one transaction line, then processes immediate rules to
    quiescence. *)

val execute_line_affected :
  t -> Operation.t list -> (Ident.Oid.t option list, error) result
(** Like {!execute_line}, additionally reporting the object affected by
    each operation (before any rule runs); scripts use it for [as X]
    bindings. *)

val commit : t -> (unit, error) result
(** Processes deferred (and remaining immediate) rules, then starts a
    fresh transaction: rule windows restart, flags clear. *)

val execute_line_exn : t -> Operation.t list -> unit
val commit_exn : t -> unit

val define_timer : t -> name:string -> period_lines:int -> Chimera_event.Event_type.t
(** Registers a HiPAC-style periodic clock event, simulated on the
    engine's logical time: it matures every [period_lines] transaction
    lines and contributes an external occurrence (on the reserved timer
    pseudo-object) to that line's block.  Returns the event type rules
    subscribe to.  Registration is O(1); raises [Invalid_argument] on a
    non-positive period or a duplicate timer name (two timers of the same
    name would share an event type and double-fire per line). *)

val timer_names : t -> string list
