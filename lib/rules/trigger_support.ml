(* The Trigger Support (Section 5): after every non-interruptible block it
   determines the newly triggered rules by evaluating ts for each
   non-triggered rule over its window R, consulting the statically derived
   V(E) to skip recomputations that cannot change the sign.

   Two detection modes:

   - [Exact] implements the existential semantics of Section 4.4 literally:
     the rule is triggered if ts was positive at *some* instant since the
     last consideration.  The sign of ts only changes at event instants, so
     the support probes the window's lower bound once per window plus every
     new event instant (incremental: [scan_from] remembers coverage).

   - [Endpoint] evaluates ts at the current instant only, the cheaper
     behaviour sketched in the implementation section. *)

open Chimera_util
open Chimera_event
open Chimera_calculus
open Chimera_optimizer
module Obs = Chimera_obs.Obs

(* The rule-wake phase: one [trigger.wake] span per post-block sweep, and
   counters mirroring the per-run [stats] record into the registry. *)
let c_checks = Obs.Metrics.counter "trigger.checks"
let c_recomputations = Obs.Metrics.counter "trigger.recomputations"
let c_probes = Obs.Metrics.counter "trigger.probes"
let c_skipped = Obs.Metrics.counter "trigger.skipped"
let c_fired = Obs.Metrics.counter "trigger.fired"
let c_woken = Obs.Metrics.counter "trigger.woken"
let c_idle = Obs.Metrics.counter "trigger.idle"
let h_wake = Obs.Metrics.histogram "trigger.wake_ns"

let log_src = Logs.Src.create "chimera.trigger" ~doc:"Trigger Support decisions"

module Log = (val Logs.src_log log_src : Logs.LOG)

type detection = Exact | Endpoint
type wake_mode = Sweep | Indexed

type stats = {
  mutable checks : int;  (** per-rule trigger checks performed *)
  mutable recomputations : int;  (** ts (re)computations *)
  mutable probes : int;  (** instants at which ts was evaluated *)
  mutable skipped : int;  (** checks skipped thanks to V(E) *)
  mutable fired : int;  (** rule triggerings *)
  mutable woken : int;  (** rules drained from the dirty set *)
  mutable idle : int;  (** rules a wake never visited *)
}

let stats () =
  {
    checks = 0;
    recomputations = 0;
    probes = 0;
    skipped = 0;
    fired = 0;
    woken = 0;
    idle = 0;
  }

let reset_stats s =
  s.checks <- 0;
  s.recomputations <- 0;
  s.probes <- 0;
  s.skipped <- 0;
  s.fired <- 0;
  s.woken <- 0;
  s.idle <- 0

type config = {
  detection : detection;
  optimizer : bool;  (** consult V(E) before recomputing ts *)
  style : Ts.style;
  memoize : bool;
      (** evaluate through the engine's shared memo over interned
          expressions (sound: the cache keys carry the window's lower
          bound, so moving windows invalidate nothing).  The memoized
          path uses the logical style; both styles agree on every
          expression and instant (property-tested). *)
  wake : wake_mode;
      (** [Sweep] visits every rule after every block (the legacy path);
          [Indexed] drains only the rules subscribed to a type that
          arrived since their last visit — O(affected rules) per block,
          behaviour-preserving (differential-tested against [Sweep]). *)
}

let default_config =
  {
    detection = Exact;
    optimizer = true;
    style = Ts.Logical;
    memoize = true;
    wake = Indexed;
  }

(* ------------------------------------------------------ indexed wake *)

(* The reverse V(E) index over whole rules: each rule subscribes to the
   positive-variation types of its V(E) — or to every arrival when type
   filtering is unsound for it (negative variations, or activation on
   windows without own occurrences; the conservative union of what either
   detection mode needs.  An arriving occurrence marks exactly the
   subscribed rules dirty, and the post-block wake drains the dirty set
   instead of sweeping the table.  Marking is O(1) and deduplicated by
   the rule's [wake_pending] flag, so the dirty set is bounded by the
   rule count whatever the event volume. *)
module Wake = struct
  type t = {
    subs : Rule.t list Event_type.Tbl.t;
        (** positive-variation subscriptions, keyed like the event base's
            posting lists (qualified modifies match under their alias) *)
    mutable wildcard : Rule.t list;  (** marked on every arrival *)
    mutable dirty : Rule.t list;  (** pending drain, newest first *)
  }

  let create () =
    { subs = Event_type.Tbl.create 32; wildcard = []; dirty = [] }

  let mark t rule =
    if not rule.Rule.wake_pending then begin
      rule.Rule.wake_pending <- true;
      t.dirty <- rule :: t.dirty
    end

  let subscribe t rule =
    let relevance = Rule.relevance rule in
    if Relevance.has_negative relevance || Relevance.always_relevant relevance
    then t.wildcard <- rule :: t.wildcard
    else
      List.iter
        (fun ty ->
          let rules =
            match Event_type.Tbl.find_opt t.subs ty with
            | Some rules -> rules
            | None -> []
          in
          Event_type.Tbl.replace t.subs ty (rule :: rules))
        (Relevance.positive_types relevance)

  (* A rule enters dirty as it enters the index: events already in its
     window (defined mid-transaction) get their check at the next wake. *)
  let add_rule t rule =
    subscribe t rule;
    mark t rule

  let on_event t occ =
    List.iter (mark t) t.wildcard;
    List.iter
      (fun key ->
        match Event_type.Tbl.find_opt t.subs key with
        | Some rules -> List.iter (mark t) rules
        | None -> ())
      (Event_base.indexed_types occ)

  (* Re-derive the whole index from the table — the abort/recovery path,
     where rules may have been removed and every window moved.  Marks
     everything dirty: one full sweep-equivalent wake, then delta-driven
     again. *)
  let rebuild t table =
    List.iter (fun rule -> rule.Rule.wake_pending <- false) t.dirty;
    Event_type.Tbl.reset t.subs;
    t.wildcard <- [];
    t.dirty <- [];
    Rule_table.iter (add_rule t) table

  (* Oldest-first, so a drain visits rules in marking order. *)
  let drain t =
    let d = t.dirty in
    t.dirty <- [];
    List.iter (fun rule -> rule.Rule.wake_pending <- false) d;
    List.rev d
end

(* The rule's event expression interned into [memo] — once per memo;
   handles survive restarts. *)
let rule_handle memo rule =
  match rule.Rule.memo_handle with
  | Some (m, h) when m == memo -> h
  | _ ->
      let h = Memo.intern memo rule.Rule.spec.event in
      rule.Rule.memo_handle <- Some (memo, h);
      h

(* One activation probe for [rule], through the shared memo when enabled. *)
let rule_active config memo ~window ~at rule =
  if config.memoize then
    Memo.active_handle memo ~after:(Window.after window) ~at
      (rule_handle memo rule)
  else
    let env = Ts.env ~style:config.style (Memo.event_base memo) ~window in
    Ts.active env ~at rule.Rule.spec.event

(* Is there, among the occurrences in (from, upto], one whose type is
   relevant to the rule under the configured detection mode? *)
let relevant_arrival config eb rule ~from ~upto =
  if Time.( >= ) from upto then false
  else begin
    let window = Window.make ~after:from ~upto in
    let relevance = Rule.relevance rule in
    let relevant =
      match config.detection with
      | Exact -> fun occ -> Relevance.relevant_exact relevance ~occurrence:occ
      | Endpoint ->
          fun occ -> Relevance.relevant_endpoint relevance ~occurrence:occ
    in
    let found = ref false in
    Event_base.iter_in eb ~window (fun occ ->
        if (not !found) && relevant (Occurrence.etype occ) then found := true);
    !found
  end

let trigger stats rule =
  rule.Rule.triggered <- true;
  stats.fired <- stats.fired + 1;
  Log.debug (fun m -> m "rule %s triggered" (Rule.name rule))

(* Check one rule after a block; [now] is a probe instant after every
   recorded occurrence. *)
let check_rule config stats memo rule =
  if not rule.Rule.triggered then begin
    let eb = Memo.event_base memo in
    stats.checks <- stats.checks + 1;
    let after = Rule.trigger_window_start rule in
    let now = Event_base.probe_now eb in
    if Time.( < ) after now then begin
      let window = Window.make ~after ~upto:now in
      (* The R <> 0 gate: a rule reacts only when something happened. *)
      if not (Event_base.is_empty_in eb ~window) then begin
        match config.detection with
        | Endpoint ->
            let since = Time.max rule.Rule.last_recomputation after in
            let skip =
              config.optimizer
              && Time.( > ) rule.Rule.last_recomputation Time.origin
              && not (relevant_arrival config eb rule ~from:since ~upto:now)
            in
            if skip then begin
              stats.skipped <- stats.skipped + 1;
              Log.debug (fun m ->
                  m "rule %s: endpoint check skipped via V(E)" (Rule.name rule));
              rule.Rule.last_recomputation <- now
            end
            else begin
              stats.recomputations <- stats.recomputations + 1;
              stats.probes <- stats.probes + 1;
              let positive = rule_active config memo ~window ~at:now rule in
              rule.Rule.last_recomputation <- now;
              rule.Rule.last_sign_positive <- positive;
              if positive then trigger stats rule
            end
        | Exact ->
            let first_scan = Time.equal rule.Rule.scan_from after in
            let relevance = Rule.relevance rule in
            (* Delta-driven candidate restriction: when the rule's sign
               can only flip at an arrival of one of its positive V(E)
               types (no negative variations, inactive on windows without
               own occurrences — the very property the V(E) skip below
               already relies on), the probe instants come straight off
               the posting lists: O(log n + matches) instead of scanning
               the whole uncovered window.  The window's lower-bound and
               current-instant probes of a first scan are unnecessary
               here: such a rule is inactive on an empty prefix, and its
               sign at [now] equals its sign at its newest own arrival. *)
            let restricted =
              config.wake = Indexed && config.optimizer
              && (not (Relevance.has_negative relevance))
              && not (Relevance.always_relevant relevance)
            in
            if restricted then begin
              let candidates =
                Event_base.timestamps_of_types_in eb
                  ~types:(Relevance.positive_types relevance)
                  ~after:rule.Rule.scan_from ~upto:now
              in
              match candidates with
              | [] ->
                  stats.skipped <- stats.skipped + 1;
                  Log.debug (fun m ->
                      m "rule %s: no posting in scan window" (Rule.name rule));
                  rule.Rule.scan_from <- now
              | _ :: _ ->
                  stats.recomputations <- stats.recomputations + 1;
                  let found =
                    List.exists
                      (fun at ->
                        stats.probes <- stats.probes + 1;
                        rule_active config memo ~window ~at rule)
                      candidates
                  in
                  rule.Rule.scan_from <- now;
                  rule.Rule.last_sign_positive <- found;
                  if found then trigger stats rule
            end
            else
            let skip =
              config.optimizer
              && (not (relevant_arrival config eb rule ~from:rule.Rule.scan_from ~upto:now))
              && not (first_scan && Relevance.always_relevant relevance)
            in
            if skip then begin
              stats.skipped <- stats.skipped + 1;
              Log.debug (fun m ->
                  m "rule %s: exact scan skipped via V(E)" (Rule.name rule));
              (* Irrelevant arrivals cannot flip the sign at the skipped
                 instants, so coverage advances. *)
              rule.Rule.scan_from <- now
            end
            else begin
              stats.recomputations <- stats.recomputations + 1;
              let scan_window =
                Window.make ~after:rule.Rule.scan_from ~upto:now
              in
              let candidates =
                let news = Event_base.timestamps_in eb ~window:scan_window in
                if first_scan then (after :: news) @ [ now ] else news
              in
              let found =
                List.exists
                  (fun at ->
                    stats.probes <- stats.probes + 1;
                    rule_active config memo ~window ~at rule)
                  candidates
              in
              rule.Rule.scan_from <- now;
              rule.Rule.last_sign_positive <- found;
              if found then trigger stats rule
            end
      end
    end
  end

(* One post-block wake: the sweep visits every rule; the indexed wake
   drains the dirty set — rules untouched by the block's events are never
   visited, and show up in [idle] instead. *)
let run_checks config stats memo wake table =
  match config.wake with
  | Sweep -> Rule_table.iter (check_rule config stats memo) table
  | Indexed ->
      let woken = Wake.drain wake in
      let n = List.length woken in
      stats.woken <- stats.woken + n;
      stats.idle <- stats.idle + max 0 (Rule_table.cardinal table - n);
      List.iter (check_rule config stats memo) woken

let check_all config stats memo wake table =
  if Obs.enabled () then begin
    let checks0 = stats.checks
    and recomputations0 = stats.recomputations
    and probes0 = stats.probes
    and skipped0 = stats.skipped
    and fired0 = stats.fired
    and woken0 = stats.woken
    and idle0 = stats.idle in
    let tok = Obs.Trace.begin_ "trigger.wake" in
    Fun.protect
      ~finally:(fun () ->
        Obs.Trace.end_into h_wake tok;
        Obs.Metrics.add c_checks (stats.checks - checks0);
        Obs.Metrics.add c_recomputations
          (stats.recomputations - recomputations0);
        Obs.Metrics.add c_probes (stats.probes - probes0);
        Obs.Metrics.add c_skipped (stats.skipped - skipped0);
        Obs.Metrics.add c_fired (stats.fired - fired0);
        Obs.Metrics.add c_woken (stats.woken - woken0);
        Obs.Metrics.add c_idle (stats.idle - idle0))
      (fun () -> run_checks config stats memo wake table)
  end
  else run_checks config stats memo wake table

(* ------------------------------------------------- snapshot / restore *)

(* The per-rule runtime state the Trigger Support owns: everything a
   transaction abort must wind back.  Snapshots capture it by value for
   every rule in the table; restore puts it back and drops rules defined
   after the snapshot (a rule defined inside an aborted transaction was
   never defined). *)
(* ------------------------------------------------ retirement horizons *)

(* The event types whose occurrences a rule's evaluation can probe: the
   primitives of its event expression (every ts probe, positive or
   negated, and the V(E) posting-list restrictions) plus the primitives
   of its condition's event formulas. *)
let interest_types rule =
  let spec = Rule.spec rule in
  Event_type.Set.union
    (Expr.primitives spec.Rule.event)
    (Condition.event_types spec.Rule.condition)

(* Per-type safe retirement horizon: the paper's forgetting rule read off
   the Trigger Support state.  Every probe a rule can still issue is
   bounded below by its formula window start (last consumption for
   consuming rules, the transaction start for preserving ones — trigger
   windows and scan coverage never trail it), so occurrences of type T at
   or before [min] over the rules interested in T can never be observed
   again.  Types no rule is interested in clamp to [tx_start]: a rule
   defined later in the transaction starts its windows there, and the raw
   log is never retired past it either (abort rewinds exactly to it). *)
let type_horizons table ~tx_start =
  let mins = Event_type.Tbl.create 16 in
  Rule_table.iter
    (fun rule ->
      let start = Rule.formula_window_start rule ~tx_start in
      Event_type.Set.iter
        (fun ty ->
          match Event_type.Tbl.find_opt mins ty with
          | Some h when Time.( <= ) h start -> ()
          | _ -> Event_type.Tbl.replace mins ty start)
        (interest_types rule))
    table;
  fun etype ->
    match Event_type.Tbl.find_opt mins etype with
    | Some h -> h
    | None -> tx_start

type rule_state = {
  rule : Rule.t;
  triggered : bool;
  last_consideration : Time.t;
  last_consumption : Time.t;
  scan_from : Time.t;
  last_recomputation : Time.t;
  last_sign_positive : bool;
}

type snapshot = rule_state list

let snapshot table =
  List.map
    (fun rule ->
      {
        rule;
        triggered = rule.Rule.triggered;
        last_consideration = rule.Rule.last_consideration;
        last_consumption = rule.Rule.last_consumption;
        scan_from = rule.Rule.scan_from;
        last_recomputation = rule.Rule.last_recomputation;
        last_sign_positive = rule.Rule.last_sign_positive;
      })
    (Rule_table.rules table)

let restore table saved =
  let keep = Hashtbl.create 16 in
  List.iter (fun st -> Hashtbl.replace keep (Rule.name st.rule) ()) saved;
  List.iter
    (fun rule ->
      let name = Rule.name rule in
      if not (Hashtbl.mem keep name) then
        ignore (Rule_table.remove table name))
    (Rule_table.rules table);
  List.iter
    (fun st ->
      let rule = st.rule in
      rule.Rule.triggered <- st.triggered;
      rule.Rule.last_consideration <- st.last_consideration;
      rule.Rule.last_consumption <- st.last_consumption;
      rule.Rule.scan_from <- st.scan_from;
      rule.Rule.last_recomputation <- st.last_recomputation;
      rule.Rule.last_sign_positive <- st.last_sign_positive)
    saved
