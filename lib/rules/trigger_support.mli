(** The Trigger Support (Section 5): after every non-interruptible block,
    determine the newly triggered rules by evaluating ts over each rule's
    window, consulting V(E) to skip recomputations that cannot flip the
    sign. *)

open Chimera_event
open Chimera_calculus

type detection =
  | Exact
      (** The existential semantics of Section 4.4: triggered if ts was
          positive at {e some} instant since the last consideration.
          Incremental: each instant is probed at most once. *)
  | Endpoint
      (** Evaluate ts at the current instant only — the cheaper behaviour
          sketched in the implementation section.  Equivalent to [Exact]
          on negation-free rules (activation is monotone). *)

type wake_mode =
  | Sweep  (** visit every rule after every block — the legacy path *)
  | Indexed
      (** drain only the rules subscribed (via V(E)) to a type that
          arrived since their last visit: O(affected rules) per block,
          behaviour-preserving (differential-tested against [Sweep]) *)

type stats = {
  mutable checks : int;  (** per-rule trigger checks performed *)
  mutable recomputations : int;  (** ts (re)computations *)
  mutable probes : int;  (** instants at which ts was evaluated *)
  mutable skipped : int;  (** checks skipped thanks to V(E) *)
  mutable fired : int;  (** rule triggerings *)
  mutable woken : int;  (** rules drained from the dirty set *)
  mutable idle : int;  (** rules a wake never visited *)
}

val stats : unit -> stats
val reset_stats : stats -> unit

type config = {
  detection : detection;
  optimizer : bool;  (** consult V(E) before recomputing ts *)
  style : Ts.style;
  memoize : bool;
      (** evaluate ts through the shared memo over interned expressions
          (see {!Chimera_calculus.Memo}); behaviour-preserving — cache
          keys carry the window's lower bound, so moving windows
          invalidate nothing.  The memoized path evaluates in the logical
          style (both styles agree, property-tested). *)
  wake : wake_mode;
}

val default_config : config
(** Exact detection, optimizer on, logical style, memoized evaluation,
    indexed wake. *)

(** The reverse V(E) index over rules: each rule subscribes to the
    positive-variation types of its V(E) (or to every arrival when type
    filtering is unsound for it); an arriving occurrence marks the
    subscribed rules dirty, and the post-block wake under [Indexed]
    drains the dirty set instead of sweeping the table.  Marking is O(1),
    deduplicated by {!Rule.t.wake_pending}, so the dirty set is bounded
    by the rule count. *)
module Wake : sig
  type t

  val create : unit -> t

  val on_event : t -> Occurrence.t -> unit
  (** Feed from {!Event_base.on_insert}: marks the subscribers of the
      occurrence's index keys dirty. *)

  val add_rule : t -> Rule.t -> unit
  (** Subscribes a newly defined rule and marks it dirty, so events
      already in its window get their check at the next wake. *)

  val mark : t -> Rule.t -> unit
  (** Forces a rule into the next drain — the consideration path, whose
      window move re-arms the rule independently of new arrivals. *)

  val rebuild : t -> Rule_table.t -> unit
  (** Re-derives the whole index from the table and marks every rule
      dirty — the abort/recovery path. *)
end

val check_rule : config -> stats -> Memo.t -> Rule.t -> unit
(** Checks one non-triggered rule at the current instant over its
    triggering window (events since its last consideration); sets its
    triggered flag when its event expression activated.  The R <> 0 gate
    keeps negation rules reactive rather than active.  [memo] is the
    shared evaluation cache bound to the engine's event base; it carries
    the event base even when [memoize] is off. *)

val check_all : config -> stats -> Memo.t -> Wake.t -> Rule_table.t -> unit
(** One post-block wake: sweeps the table or drains the dirty set,
    according to [config.wake]. *)

val type_horizons :
  Rule_table.t -> tx_start:Chimera_util.Time.t -> Event_type.t -> Chimera_util.Time.t
(** The per-type safe retirement horizon, read off the Trigger Support
    state: for each type, the minimum formula-window start (last
    consumption for consuming rules, [tx_start] for preserving ones)
    over the rules whose event expression or condition formulas probe
    it — occurrences at or before it can never be observed again.
    Types no rule is interested in clamp to [tx_start] (a rule defined
    later in the transaction starts its windows there).  Feed to
    {!Chimera_event.Event_base.retire_to}. *)

type snapshot
(** The per-rule runtime state the Trigger Support owns (triggered flag,
    consideration/consumption stamps, scan coverage), captured by value
    for every rule in a table. *)

val snapshot : Rule_table.t -> snapshot

val restore : Rule_table.t -> snapshot -> unit
(** Puts every captured rule back to its snapshotted state and removes
    rules added after the snapshot — a rule defined inside an aborted
    transaction was never defined. *)
