(** The Trigger Support (Section 5): after every non-interruptible block,
    determine the newly triggered rules by evaluating ts over each rule's
    window, consulting V(E) to skip recomputations that cannot flip the
    sign. *)

open Chimera_calculus

type detection =
  | Exact
      (** The existential semantics of Section 4.4: triggered if ts was
          positive at {e some} instant since the last consideration.
          Incremental: each instant is probed at most once. *)
  | Endpoint
      (** Evaluate ts at the current instant only — the cheaper behaviour
          sketched in the implementation section.  Equivalent to [Exact]
          on negation-free rules (activation is monotone). *)

type stats = {
  mutable checks : int;  (** per-rule trigger checks performed *)
  mutable recomputations : int;  (** ts (re)computations *)
  mutable probes : int;  (** instants at which ts was evaluated *)
  mutable skipped : int;  (** checks skipped thanks to V(E) *)
  mutable fired : int;  (** rule triggerings *)
}

val stats : unit -> stats
val reset_stats : stats -> unit

type config = {
  detection : detection;
  optimizer : bool;  (** consult V(E) before recomputing ts *)
  style : Ts.style;
  memoize : bool;
      (** evaluate ts through the shared memo over interned expressions
          (see {!Chimera_calculus.Memo}); behaviour-preserving — cache
          keys carry the window's lower bound, so moving windows
          invalidate nothing.  The memoized path evaluates in the logical
          style (both styles agree, property-tested). *)
}

val default_config : config
(** Exact detection, optimizer on, logical style, memoized evaluation. *)

val check_rule : config -> stats -> Memo.t -> Rule.t -> unit
(** Checks one non-triggered rule at the current instant over its
    triggering window (events since its last consideration); sets its
    triggered flag when its event expression activated.  The R <> 0 gate
    keeps negation rules reactive rather than active.  [memo] is the
    shared evaluation cache bound to the engine's event base; it carries
    the event base even when [memoize] is off. *)

val check_all : config -> stats -> Memo.t -> Rule_table.t -> unit

type snapshot
(** The per-rule runtime state the Trigger Support owns (triggered flag,
    consideration/consumption stamps, scan coverage), captured by value
    for every rule in a table. *)

val snapshot : Rule_table.t -> snapshot

val restore : Rule_table.t -> snapshot -> unit
(** Puts every captured rule back to its snapshotted state and removes
    rules added after the snapshot — a rule defined inside an aborted
    transaction was never defined. *)
