(* The umbrella public API: one module re-exporting every subsystem of the
   reproduction.  Downstream users depend on the [core] library and reach
   everything as [Core.<Module>]; the examples and benches use only this
   surface. *)

(* Foundations. *)
module Time = Chimera_util.Time
module Ident = Chimera_util.Ident
module Prng = Chimera_util.Prng
module Pretty = Chimera_util.Pretty
module Vec = Chimera_util.Vec
module Failpoint = Chimera_util.Failpoint
module Monotime = Chimera_util.Monotime
module Fnv = Chimera_util.Fnv
module Mailbox = Chimera_util.Mailbox
module Backoff = Chimera_util.Backoff

(* Observability: metrics, trace spans, sinks. *)
module Obs = Chimera_obs.Obs

(* Event substrate. *)
module Event_type = Chimera_event.Event_type
module Occurrence = Chimera_event.Occurrence
module Event_base = Chimera_event.Event_base
module Window = Chimera_event.Window
module Event_codec = Chimera_event.Event_codec
module Event_stats = Chimera_event.Event_stats
module Journal = Chimera_event.Journal
module Checkpoint = Chimera_event.Checkpoint

(* The event calculus: the paper's contribution. *)
module Expr = Chimera_calculus.Expr
module Expr_parse = Chimera_calculus.Expr_parse
module Ts = Chimera_calculus.Ts
module Memo = Chimera_calculus.Memo
module Derived = Chimera_calculus.Derived
module Normal_form = Chimera_calculus.Normal_form

(* Static optimization (Section 5.1). *)
module Variation = Chimera_optimizer.Variation
module Derive = Chimera_optimizer.Derive
module Simplify = Chimera_optimizer.Simplify
module Relevance = Chimera_optimizer.Relevance

(* Chimera object store. *)
module Value = Chimera_store.Value
module Schema = Chimera_store.Schema
module Object_store = Chimera_store.Object_store
module Operation = Chimera_store.Operation
module Query = Chimera_store.Query
module Store_codec = Chimera_store.Store_codec

(* Active-rule subsystem. *)
module Rule = Chimera_rules.Rule
module Rule_table = Chimera_rules.Rule_table
module Condition = Chimera_rules.Condition
module Action = Chimera_rules.Action
module Trigger_support = Chimera_rules.Trigger_support
module Engine = Chimera_rules.Engine
module Net_effect = Chimera_rules.Net_effect
module Analysis = Chimera_rules.Analysis

(* Network ingestion: the wire protocol, session shards, the select
   reactor and the load generator behind [chimera serve]/[loadgen]. *)
module Protocol = Chimera_server.Protocol
module Session = Chimera_server.Session
module Server = Chimera_server.Server
module Loadgen = Chimera_server.Loadgen

(* Script language. *)
module Lang_ast = Chimera_lang.Ast
module Lang_lexer = Chimera_lang.Lexer
module Lang_parser = Chimera_lang.Parser
module Interp = Chimera_lang.Interp

(* Baseline detectors from the related-work systems. *)
module Tree_detector = Chimera_baseline.Tree_detector
module Automaton = Chimera_baseline.Automaton
module Naive = Chimera_baseline.Naive
module Context_detector = Chimera_baseline.Context_detector
module Inst_tree_detector = Chimera_baseline.Inst_tree_detector

(* Workload generation. *)
module Domain = Chimera_workload.Domain
module Expr_gen = Chimera_workload.Expr_gen
module Scenario = Chimera_workload.Scenario
