(* Logical time for the event calculus.

   The paper's [ts] function needs to be probed "at" event instants and also
   strictly *between* two consecutive event instants (the existential
   triggering semantics of Section 4.4 quantifies over dense time, while the
   sign of [ts] only changes at event occurrences).  We make such probes
   exact with integer arithmetic by issuing *even* instants to event
   occurrences and reserving *odd* instants for probes: between any two
   distinct event instants there is always at least one probe instant. *)

type t = int

let origin = 0
let compare = Int.compare
let equal = Int.equal
let ( < ) (a : t) (b : t) = Stdlib.( < ) a b
let ( <= ) (a : t) (b : t) = Stdlib.( <= ) a b
let ( > ) (a : t) (b : t) = Stdlib.( > ) a b
let ( >= ) (a : t) (b : t) = Stdlib.( >= ) a b
let min = Stdlib.min
let max = Stdlib.max
let is_event_instant t = t mod 2 = 0 && t > 0
let is_probe_instant t = t mod 2 = 1

(* The probe instant immediately before [t]; for an event instant this is
   the unique odd instant in the open interval between the previous event
   instant and [t]. *)
let probe_before t = t - 1
let probe_after t = t + 1
let pp ppf t = Fmt.pf ppf "t%d" t
let to_string t = Fmt.str "%a" pp t
let to_int t = t
let of_int t = t

module Clock = struct
  (* A clock issues strictly increasing event instants.  [now] is the last
     issued instant; [probe_now] is an instant strictly after every issued
     event instant, usable to evaluate "the current time". *)
  type clock = { mutable last : t }

  let create () = { last = origin }

  let next_event_instant c =
    let t = c.last + 2 in
    c.last <- t;
    t

  let now c = c.last
  let probe_now c = c.last + 1

  (* Advance the clock past [t] so that subsequently issued instants are
     strictly greater.  Used when replaying externally timestamped events. *)
  let advance_to c t = if Stdlib.( > ) t c.last then c.last <- t

  (* Move the clock back to [t] (a no-op when already at or before it).
     Only the rollback path uses this: instants issued after [t] were
     undone together with the occurrences carrying them, so reissuing
     them keeps aborted histories indistinguishable from never-run
     ones. *)
  let rewind_to c t = if Stdlib.( < ) t c.last then c.last <- t
end
