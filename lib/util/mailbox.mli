(** Bounded single-producer/single-consumer mailboxes and a self-pipe
    waker — the hand-off machinery between the reactor domain and the
    engine-shard worker domains of [chimera serve].

    A mailbox is a bounded FIFO ring.  The intended discipline is one
    producing domain and one consuming domain per mailbox (commands flow
    reactor -> worker through one, completions flow worker -> reactor
    through another); the implementation is mutex-protected, so misuse
    by extra producers degrades throughput, not correctness.

    Closing is how a worker is told to finish: after {!close}, pushes
    are refused but the consumer still drains what was queued; {!pop}
    returns [None] only once the mailbox is both closed and empty. *)

type 'a t

val create : int -> 'a t
(** [create capacity] — capacity must be positive. *)

val capacity : 'a t -> int
val length : 'a t -> int
val closed : 'a t -> bool

val try_push : 'a t -> 'a -> bool
(** Non-blocking; [false] when full or closed.  The reactor side: it
    must never block, so a refused push parks the session instead. *)

val push : 'a t -> 'a -> bool
(** Blocking push: waits while full, [false] only when closed.  The
    worker side (completion queues), where blocking is acceptable
    because the reactor drains without ever blocking itself. *)

val try_pop : 'a t -> 'a option
(** Non-blocking; [None] when currently empty (closed or not). *)

val pop : 'a t -> 'a option
(** Blocking pop: waits while empty and open; [None] once the mailbox
    is closed and drained — the worker's exit condition. *)

val close : 'a t -> unit
(** Refuse further pushes and wake all blocked parties.  Idempotent. *)

(** The self-pipe: lets worker domains interrupt the reactor's
    [Unix.select] so a completion never waits for the select timeout.
    Many writers, one reader; writes coalesce (the pipe holds at most a
    few bytes and a full pipe means a wakeup is already pending). *)
module Waker : sig
  type waker

  val create : unit -> waker
  (** Both ends non-blocking. *)

  val fd : waker -> Unix.file_descr
  (** The read end — add it to the reactor's select read set. *)

  val wake : waker -> unit
  (** Write one byte (drop it if the pipe is already full: the reader
      has a wakeup pending).  Async-signal-safe in spirit: never blocks,
      never raises. *)

  val drain : waker -> unit
  (** Consume all pending bytes; call when [fd] selects readable. *)

  val dispose : waker -> unit
end
