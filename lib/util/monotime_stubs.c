/* Monotonic clock binding: CLOCK_MONOTONIC nanoseconds as an OCaml int.
   63-bit OCaml ints hold ~292 years of nanoseconds, so the uptime-based
   monotonic reading never overflows in practice; returning an unboxed
   int keeps the call allocation-free ([@@noalloc]). */

#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value chimera_monotime_ns(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}
