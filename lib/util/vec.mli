(** Growable arrays for append-only logs and indexes, with the binary
    searches the event-base queries are built on. *)

type 'a t

val create : dummy:'a -> 'a t
(** [dummy] fills unused capacity; it is never observable. *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] out of bounds. *)

val set : 'a t -> int -> 'a -> unit
(** Replaces an existing element; raises [Invalid_argument] out of
    bounds. *)

val last : 'a t -> 'a option
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val to_list : 'a t -> 'a list
val clear : 'a t -> unit

val truncate : 'a t -> int -> unit
(** Keeps the first [n] elements (the undo/rollback path of append-only
    logs); raises [Invalid_argument] when [n] is negative or exceeds the
    length. *)

val bisect_right : 'a t -> key:('a -> 'b) -> 'b -> int
(** Greatest index [i] with [key t.(i) <= x] under the polymorphic order,
    assuming [key] is non-decreasing over the vector; [-1] when every key
    exceeds [x]. *)

val bisect_after : 'a t -> key:('a -> 'b) -> 'b -> int
(** Least index [i] with [key t.(i) > x]; [length t] when none. *)
