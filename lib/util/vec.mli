(** Growable arrays for append-only logs and indexes, with the binary
    searches the event-base queries are built on.

    Indices are {e absolute}: the [i]-th element ever pushed keeps index
    [i] for its whole life.  {!retire_prefix} releases a dead prefix
    without renumbering the survivors — the physical buffer is compacted
    (and shrunk) behind the offset, so capacity tracks the live size.
    A vector that is never retired behaves exactly like a plain growable
    array with [start = 0]. *)

type 'a t

val create : dummy:'a -> 'a t
(** [dummy] fills unused capacity; it is never observable. *)

val length : 'a t -> int
(** The absolute end: one past the last element ever pushed (retired
    elements still count — this is the next index {!push} will assign). *)

val start : 'a t -> int
(** The absolute index of the first live element ([0] until a prefix is
    retired). *)

val live_length : 'a t -> int
(** [length t - start t]: the number of retained elements. *)

val is_empty : 'a t -> bool
(** No live elements. *)

val push : 'a t -> 'a -> unit

val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] out of bounds or on a retired index. *)

val set : 'a t -> int -> 'a -> unit
(** Replaces an existing live element; raises [Invalid_argument] out of
    bounds or on a retired index. *)

val last : 'a t -> 'a option
val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit
(** Indices are absolute (the first callback receives [start t]). *)

val fold : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val to_list : 'a t -> 'a list

val clear : 'a t -> unit
(** Empties the vector and resets absolute indexing to [0]. *)

val truncate : 'a t -> int -> unit
(** Keeps the elements below absolute index [n] (the undo/rollback path
    of append-only logs); raises [Invalid_argument] when [n] is below
    [start t] or exceeds the length. *)

val retire_prefix : 'a t -> int -> unit
(** Releases every element below absolute index [n]; surviving elements
    keep their indices.  Clamps: a bound at or below [start t] is a
    no-op.  Raises [Invalid_argument] when [n] exceeds the length.
    Compacts (and shrinks) the physical buffer once the retired region
    dominates, so memory is proportional to the live size. *)

val bisect_right : 'a t -> key:('a -> 'b) -> 'b -> int
(** Greatest live index [i] with [key t.(i) <= x] under the polymorphic
    order, assuming [key] is non-decreasing over the vector;
    [start t - 1] when every live key exceeds [x] ([-1] when nothing has
    been retired). *)

val bisect_after : 'a t -> key:('a -> 'b) -> 'b -> int
(** Least live index [i] with [key t.(i) > x]; [length t] when none. *)
