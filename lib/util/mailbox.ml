(* A mutex-and-conditions bounded ring.  SPSC in usage, not in mechanism:
   the lock is held for a few loads and stores only, and the two
   conditions ([nonempty] for the consumer, [nonfull] for the producer)
   keep wakeups targeted.  OCaml 5 domains only — no Thread dependency. *)

type 'a t = {
  buf : 'a option array;
  mutable head : int;  (* next pop position *)
  mutable len : int;
  mutable is_closed : bool;
  mutex : Mutex.t;
  nonempty : Condition.t;
  nonfull : Condition.t;
}

let create capacity =
  if capacity <= 0 then invalid_arg "Mailbox.create: capacity must be positive";
  {
    buf = Array.make capacity None;
    head = 0;
    len = 0;
    is_closed = false;
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    nonfull = Condition.create ();
  }

let capacity t = Array.length t.buf

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let length t = with_lock t (fun () -> t.len)
let closed t = with_lock t (fun () -> t.is_closed)

let unsafe_push t v =
  let cap = Array.length t.buf in
  t.buf.((t.head + t.len) mod cap) <- Some v;
  t.len <- t.len + 1;
  Condition.signal t.nonempty

let unsafe_pop t =
  match t.buf.(t.head) with
  | None -> assert false
  | Some v ->
      t.buf.(t.head) <- None;
      t.head <- (t.head + 1) mod Array.length t.buf;
      t.len <- t.len - 1;
      Condition.signal t.nonfull;
      Some v

let try_push t v =
  with_lock t (fun () ->
      if t.is_closed || t.len >= Array.length t.buf then false
      else begin
        unsafe_push t v;
        true
      end)

let push t v =
  with_lock t (fun () ->
      while (not t.is_closed) && t.len >= Array.length t.buf do
        Condition.wait t.nonfull t.mutex
      done;
      if t.is_closed then false
      else begin
        unsafe_push t v;
        true
      end)

let try_pop t = with_lock t (fun () -> if t.len = 0 then None else unsafe_pop t)

let pop t =
  with_lock t (fun () ->
      while t.len = 0 && not t.is_closed do
        Condition.wait t.nonempty t.mutex
      done;
      if t.len = 0 then None else unsafe_pop t)

let close t =
  with_lock t (fun () ->
      if not t.is_closed then begin
        t.is_closed <- true;
        Condition.broadcast t.nonempty;
        Condition.broadcast t.nonfull
      end)

(* ------------------------------------------------------------- waker *)

module Waker = struct
  type waker = { r : Unix.file_descr; w : Unix.file_descr; buf : Bytes.t }

  let create () =
    let r, w = Unix.pipe () in
    Unix.set_nonblock r;
    Unix.set_nonblock w;
    { r; w; buf = Bytes.create 64 }

  let fd t = t.r

  let one = Bytes.of_string "!"

  let wake t =
    match Unix.write t.w one 0 1 with
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) ->
        (* Pipe full: the reader already has a pending wakeup. *)
        ()
    | exception Unix.Unix_error _ -> ()

  let rec drain t =
    match Unix.read t.r t.buf 0 (Bytes.length t.buf) with
    | 0 -> ()
    | _ -> drain t
    | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error _ -> ()

  let dispose t =
    (try Unix.close t.r with Unix.Unix_error _ -> ());
    try Unix.close t.w with Unix.Unix_error _ -> ()
end
