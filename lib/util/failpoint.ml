(* Seeded fault injection for durability testing.

   Code under test declares *sites* — named points where a crash may be
   injected — by calling [hit] (or [cut] for partial writes).  Tests arm
   the module with a hit budget: the first [after] hits pass through, the
   next one raises {!Crash}, simulating a process death at exactly that
   boundary.  Counting a fault-free run first ([total_hits]) lets a test
   crash at *every* boundary in turn.

   The state is global and not thread-safe: this is a test harness, not a
   production facility.  When disarmed (the default) every site is a
   no-op costing one branch. *)

exception Crash of string

type state = {
  mutable armed : bool;
  mutable budget : int;  (** hits still allowed before crashing *)
  mutable prng : Prng.t option;  (** drives torn-write cut points *)
  mutable hits : int;  (** total sites passed since the last [clear] *)
}

let state = { armed = false; budget = 0; prng = None; hits = 0 }

let clear () =
  state.armed <- false;
  state.budget <- 0;
  state.prng <- None;
  state.hits <- 0

let arm ?seed ~after () =
  if after < 0 then invalid_arg "Failpoint.arm: negative budget";
  state.armed <- true;
  state.budget <- after;
  state.prng <- Option.map (fun seed -> Prng.create ~seed) seed;
  state.hits <- 0

let armed () = state.armed
let total_hits () = state.hits
let crash site = raise (Crash site)

(* One hit: pass while budget remains, crash when it is spent. *)
let hit site =
  if state.armed then begin
    state.hits <- state.hits + 1;
    if state.budget > 0 then state.budget <- state.budget - 1
    else crash site
  end

(* A write-shaped hit: when the crash lands here, pick how many of the
   [len] bytes reach the disk (strictly fewer than all of them — a torn
   write), seeded for reproducibility.  The caller must persist that
   prefix and then call {!crash}. *)
let cut site ~len =
  if not state.armed then None
  else begin
    state.hits <- state.hits + 1;
    if state.budget > 0 then begin
      state.budget <- state.budget - 1;
      None
    end
    else if len <= 0 then crash site
    else
      let keep =
        match state.prng with
        | Some prng -> Prng.next_int prng ~bound:len
        | None -> 0
      in
      Some keep
  end
