(** Seeded fault injection for durability testing.

    Code under test declares named crash sites with {!hit} (or {!cut}
    for torn writes); tests {!arm} the module with a hit budget and the
    next site past the budget raises {!Crash}, simulating a process
    death at exactly that boundary.  Global and not thread-safe — a test
    harness.  Disarmed (the default), every site is a one-branch
    no-op. *)

exception Crash of string
(** Carries the site name that "killed the process". *)

val arm : ?seed:int -> after:int -> unit -> unit
(** Allow the next [after] hits, then crash.  [seed] makes torn-write
    cut points ({!cut}) reproducible.  Resets the hit counter. *)

val clear : unit -> unit
(** Disarm and reset counters (call in test teardown). *)

val armed : unit -> bool

val hit : string -> unit
(** A crash site: no-op while disarmed or within budget, raises
    {!Crash} otherwise. *)

val cut : string -> len:int -> int option
(** A write of [len] bytes about to happen.  [None]: proceed normally.
    [Some k] ([k < len]): the crash lands here as a torn write — the
    caller must persist exactly the first [k] bytes and then call
    {!crash}. *)

val crash : string -> 'a
(** Raise {!Crash} for the site (used after honouring a {!cut}). *)

val total_hits : unit -> int
(** Sites passed since arming/clearing — run once fault-free to learn
    how many crash points a scenario has, then crash at each in turn. *)
