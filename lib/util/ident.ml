(* Object and event-occurrence identifiers.

   The paper's Event Base (Fig. 3) identifies rows by EIDs and the affected
   objects by OIDs.  Both are dense integers here; generators hand them out
   monotonically so logs are reproducible. *)

module type ID = sig
  type t

  val compare : t -> t -> int
  val equal : t -> t -> bool
  val hash : t -> int
  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
  val to_int : t -> int
  val of_int : int -> t

  type gen

  val generator : unit -> gen
  val fresh : gen -> t
  val count : gen -> int
  val rewind : gen -> count:int -> unit
end

module Make (Prefix : sig
  val prefix : string
end) : ID = struct
  type t = int

  let compare = Int.compare
  let equal = Int.equal
  let hash x = x
  let pp ppf x = Fmt.pf ppf "%s%d" Prefix.prefix x
  let to_string x = Fmt.str "%a" pp x
  let to_int x = x
  let of_int x = x

  type gen = { mutable next : int }

  let generator () = { next = 1 }

  let fresh g =
    let x = g.next in
    g.next <- x + 1;
    x

  let count g = g.next - 1

  (* Rollback support: identifiers issued during an undone span are
     reissued, keeping logs dense and replays deterministic. *)
  let rewind g ~count =
    if count < 0 then invalid_arg "Ident.rewind: negative count";
    if count + 1 < g.next then g.next <- count + 1
end

module Oid = Make (struct
  let prefix = "o"
end)

module Eid = Make (struct
  let prefix = "e"
end)
