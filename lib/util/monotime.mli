(** The process monotonic clock.

    Wall-clock time ([Unix.gettimeofday]) steps under NTP corrections and
    manual adjustment, which turns interval arithmetic built on it into
    spurious idle disconnects and negative latency samples.  Every
    duration measurement in the tree goes through this module instead:
    [CLOCK_MONOTONIC], never stepped, meaningful only as a difference of
    two readings from the same process. *)

val now_ns : unit -> int
(** Nanoseconds on the monotonic clock.  Allocation-free.  The absolute
    value is arbitrary (typically time since boot); only differences
    between two readings mean anything. *)

val now_s : unit -> float
(** The monotonic reading as seconds, for second-granularity deadline
    arithmetic (idle timeouts, wall-clock spans). *)

val elapsed_ns : since:int -> int
(** [now_ns () - since], clamped to be non-negative — a latency sample
    can never be negative even if the clock source misbehaves. *)
