(** Logical time.

    Event occurrences live at {e even} instants; {e odd} instants are
    reserved as probe points, so that between any two distinct event
    instants there is always a probe instant.  This makes the existential
    triggering semantics of the paper (Section 4.4) decidable with exact
    integer arithmetic. *)

type t = private int

val origin : t
(** The instant before any event; no occurrence carries it. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val is_event_instant : t -> bool
(** [true] on the even instants issued by {!Clock.next_event_instant}. *)

val is_probe_instant : t -> bool

val probe_before : t -> t
(** The probe instant immediately before [t] (strictly earlier). *)

val probe_after : t -> t
(** The probe instant immediately after [t] (strictly later). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val to_int : t -> int

val of_int : int -> t
(** Unchecked injection; intended for tests and workload replay. *)

(** Issues strictly increasing event instants. *)
module Clock : sig
  type clock

  val create : unit -> clock

  val next_event_instant : clock -> t
  (** A fresh even instant, strictly greater than all previously issued. *)

  val now : clock -> t
  (** The last issued instant ({!origin} initially). *)

  val probe_now : clock -> t
  (** A probe instant strictly after every issued event instant. *)

  val advance_to : clock -> t -> unit
  (** Make subsequent instants strictly greater than the given one. *)

  val rewind_to : clock -> t -> unit
  (** Move the clock back to the given instant (no-op when already at or
      before it) — the rollback path: the instants issued after it were
      undone together with the occurrences carrying them. *)
end
