external now_ns : unit -> int = "chimera_monotime_ns" [@@noalloc]

let now_s () = float_of_int (now_ns ()) /. 1e9

let elapsed_ns ~since =
  let d = now_ns () - since in
  if d < 0 then 0 else d
