(* Bounded exponential backoff with deterministic jitter.

   [2. ** n] overflows to [infinity] for large [n], which [min cap]
   saturates right back — no explicit exponent clamp needed. *)

type t = {
  base : float;
  cap : float;
  jitter : float;
  prng : Prng.t;
  mutable attempts : int;
}

let create ?(base = 0.1) ?(cap = 5.0) ?(jitter = 0.25) ?(seed = 0x6a09e667)
    () =
  if base <= 0. then invalid_arg "Backoff.create: base must be positive";
  if cap < base then invalid_arg "Backoff.create: cap must be >= base";
  if jitter < 0. || jitter >= 1. then
    invalid_arg "Backoff.create: jitter must be in [0, 1)";
  { base; cap; jitter; prng = Prng.create ~seed; attempts = 0 }

let next t =
  let raw = Float.min t.cap (t.base *. (2. ** float_of_int t.attempts)) in
  t.attempts <- t.attempts + 1;
  (* Uniform factor in [1 - jitter, 1 + jitter). *)
  let factor = 1. -. t.jitter +. (2. *. t.jitter *. Prng.next_float t.prng) in
  raw *. factor

let attempts t = t.attempts
let reset t = t.attempts <- 0
