(** FNV-1a string hashing, for partitioning by key.

    [Hashtbl.hash] is tuned for hash-table bucketing, not for balanced
    partitioning into a handful of shards: over the *window* of keys a
    system actually holds at once (say 64 consecutive session ids mod 4
    shards) its residues cluster up to 4x apart, and being
    runtime-defined it may change across compiler versions, silently
    re-pinning every key.  FNV-1a folds every byte through a fixed,
    documented recurrence: dense and common-prefixed key sets spread
    evenly, and the mapping is stable forever.  Not cryptographic; meant
    for partitioning and interning, not for adversarial inputs. *)

val hash : string -> int
(** 64-bit FNV-1a folded into a non-negative OCaml int. *)

val hash_seeded : seed:int -> string -> int
(** Same fold started from [basis xor seed] — distinct seeds give
    independent partitionings of the same key set. *)
