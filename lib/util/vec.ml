(* Growable array used for append-only logs and indexes. *)

type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let create ~dummy = { data = Array.make 8 dummy; len = 0; dummy }

let length t = t.len

let is_empty t = t.len = 0

let grow t =
  let cap = Array.length t.data in
  let data = Array.make (2 * cap) t.dummy in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let push t x =
  if t.len = Array.length t.data then grow t;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get: index out of bounds";
  t.data.(i)

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Vec.set: index out of bounds";
  t.data.(i) <- x

let last t = if t.len = 0 then None else Some t.data.(t.len - 1)

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_list t =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (t.data.(i) :: acc) in
  loop (t.len - 1) []

let clear t = t.len <- 0

(* Keeps the first [n] elements.  Slots beyond the new length are reset to
   the dummy so truncation never pins dropped values. *)
let truncate t n =
  if n < 0 || n > t.len then invalid_arg "Vec.truncate: length out of bounds";
  Array.fill t.data n (t.len - n) t.dummy;
  t.len <- n

(* Greatest index [i] such that [key t.(i) <= x], assuming [key] is
   non-decreasing over the vector; [-1] when all keys exceed [x]. *)
let bisect_right t ~key x =
  let rec loop lo hi =
    (* invariant: key t.(lo-1) <= x < key t.(hi), with virtual sentinels *)
    if lo >= hi then lo - 1
    else
      let mid = (lo + hi) / 2 in
      if key t.data.(mid) <= x then loop (mid + 1) hi else loop lo mid
  in
  loop 0 t.len

(* Least index [i] such that [key t.(i) > x]; [length t] when none. *)
let bisect_after t ~key x = bisect_right t ~key x + 1
