(* Growable array used for append-only logs and indexes.

   Indices are *absolute*: the [i]-th element ever pushed keeps index [i]
   for its whole life, even after the prefix before it has been retired
   with [retire_prefix].  Physically the live region [start_, len) is
   stored at offset [start_ - base] in [data]; retirement slides [start_]
   forward and compaction slides the live region back to the front of the
   buffer (possibly shrinking it), so capacity tracks the live size, not
   the historical length. *)

type 'a t = {
  mutable data : 'a array;
  mutable base : int;  (* absolute index stored at data.(0) *)
  mutable start_ : int;  (* absolute index of the first live element *)
  mutable len : int;  (* absolute end: one past the last element *)
  dummy : 'a;
}
(* Invariants: base <= start_ <= len and len - base <= Array.length data. *)

let create ~dummy = { data = Array.make 8 dummy; base = 0; start_ = 0; len = 0; dummy }

let length t = t.len

let start t = t.start_

let live_length t = t.len - t.start_

let is_empty t = t.len = t.start_

(* Drops the retired prefix from the buffer, shrinking it when the live
   region has become much smaller than the capacity (never below 8). *)
let compact t =
  let cap = Array.length t.data in
  let retired = t.start_ - t.base in
  let live = t.len - t.start_ in
  let rec fit c = if c > 8 && live * 4 <= c then fit (c / 2) else c in
  let cap' = fit cap in
  if cap' < cap then begin
    let data = Array.make cap' t.dummy in
    Array.blit t.data retired data 0 live;
    t.data <- data
  end
  else begin
    Array.blit t.data retired t.data 0 live;
    Array.fill t.data live retired t.dummy
  end;
  t.base <- t.start_

let grow t =
  let cap = Array.length t.data in
  let retired = t.start_ - t.base in
  if retired >= cap / 2 then compact t
  else begin
    (* Growing also sheds the retired prefix, so capacity is bounded by
       twice the largest live size rather than the historical length. *)
    let live = t.len - t.start_ in
    let data = Array.make (2 * cap) t.dummy in
    Array.blit t.data retired data 0 live;
    t.data <- data;
    t.base <- t.start_
  end

let push t x =
  if t.len - t.base = Array.length t.data then grow t;
  t.data.(t.len - t.base) <- x;
  t.len <- t.len + 1

let get t i =
  if i < t.start_ || i >= t.len then invalid_arg "Vec.get: index out of bounds";
  t.data.(i - t.base)

let set t i x =
  if i < t.start_ || i >= t.len then invalid_arg "Vec.set: index out of bounds";
  t.data.(i - t.base) <- x

let last t = if t.len = t.start_ then None else Some t.data.(t.len - 1 - t.base)

let iter f t =
  for i = t.start_ - t.base to t.len - 1 - t.base do
    f t.data.(i)
  done

let iteri f t =
  for i = t.start_ to t.len - 1 do
    f i t.data.(i - t.base)
  done

let fold f acc t =
  let acc = ref acc in
  for i = t.start_ - t.base to t.len - 1 - t.base do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_list t =
  let rec loop i acc =
    if i < t.start_ then acc else loop (i - 1) (t.data.(i - t.base) :: acc)
  in
  loop (t.len - 1) []

let clear t =
  Array.fill t.data 0 (t.len - t.base) t.dummy;
  t.base <- 0;
  t.start_ <- 0;
  t.len <- 0

(* Keeps the elements below absolute index [n].  Slots beyond the new
   length are reset to the dummy so truncation never pins dropped
   values. *)
let truncate t n =
  if n < t.start_ || n > t.len then invalid_arg "Vec.truncate: length out of bounds";
  Array.fill t.data (n - t.base) (t.len - n) t.dummy;
  t.len <- n

(* Retires every element below absolute index [n]; their indices remain
   reserved but the slots are released.  A bound at or below the current
   start is a no-op (retirement horizons need not be monotone across
   callers). *)
let retire_prefix t n =
  if n > t.len then invalid_arg "Vec.retire_prefix: bound out of bounds";
  if n > t.start_ then begin
    Array.fill t.data (t.start_ - t.base) (n - t.start_) t.dummy;
    t.start_ <- n;
    let cap = Array.length t.data in
    let retired = t.start_ - t.base in
    if retired >= cap / 2 && retired > 0 then compact t
  end

(* Greatest live index [i] such that [key t.(i) <= x], assuming [key] is
   non-decreasing over the vector; [start t - 1] when all live keys
   exceed [x]. *)
let bisect_right t ~key x =
  let rec loop lo hi =
    (* invariant: key t.(lo-1) <= x < key t.(hi), with virtual sentinels *)
    if lo >= hi then lo - 1
    else
      let mid = (lo + hi) / 2 in
      if key t.data.(mid - t.base) <= x then loop (mid + 1) hi else loop lo mid
  in
  loop t.start_ t.len

(* Least live index [i] such that [key t.(i) > x]; [length t] when none. *)
let bisect_after t ~key x = bisect_right t ~key x + 1
