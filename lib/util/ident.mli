(** Object (OID) and event-occurrence (EID) identifiers: dense integers
    with monotone generators, so logs are reproducible. *)

module type ID = sig
  type t

  val compare : t -> t -> int
  val equal : t -> t -> bool
  val hash : t -> int
  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
  val to_int : t -> int
  val of_int : int -> t

  type gen

  val generator : unit -> gen

  val fresh : gen -> t
  (** Identifiers are handed out from 1 upwards. *)

  val count : gen -> int
  (** How many identifiers were issued. *)

  val rewind : gen -> count:int -> unit
  (** Forgets identifiers beyond the first [count] issued, so the next
      {!fresh} returns [count + 1] again — the rollback/truncation path
      (never advances the generator).  Raises [Invalid_argument] on a
      negative count. *)
end

module Make (_ : sig
  val prefix : string
end) : ID

module Oid : ID
module Eid : ID
