(** Bounded exponential backoff with jitter, for reconnect loops.

    The raw schedule doubles from [base] and saturates at [cap]; each
    delay is then jittered by a uniform factor in
    [\[1 - jitter, 1 + jitter)] so a fleet of clients knocked off the
    same server does not reconnect in lockstep.  The jitter stream is a
    deterministic {!Prng} under [seed], so a given [(seed, attempt)]
    pair always yields the same delay — what the schedule tests pin
    down. *)

type t

val create :
  ?base:float -> ?cap:float -> ?jitter:float -> ?seed:int -> unit -> t
(** [base] (default [0.1]s) is the first delay, [cap] (default [5.0]s)
    the saturation bound on the raw (pre-jitter) delay, [jitter]
    (default [0.25]) the +/- fraction.  Raises [Invalid_argument] when
    [base <= 0], [cap < base], or [jitter] is outside [\[0, 1)]. *)

val next : t -> float
(** The delay to sleep before the next attempt, advancing the schedule:
    [min cap (base * 2^attempts)] jittered.  Always strictly positive. *)

val attempts : t -> int
(** Attempts scheduled so far ({!next} calls since creation/{!reset}). *)

val reset : t -> unit
(** Back to the first delay — call after a successful connect, so the
    next failure starts the schedule over. *)
