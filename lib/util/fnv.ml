(* FNV-1a, 64-bit parameters.  OCaml ints are 63-bit so the running hash
   lives truncated to 63 bits; the multiply wraps, which is exactly the
   modular arithmetic FNV wants.  Every byte of the key participates —
   the property [Hashtbl.hash] lacks on long strings. *)

(* 0xcbf29ce484222325 truncated to OCaml's 63-bit int range. *)
let offset_basis = 0x4bf29ce484222325
let prime = 0x100000001b3

let fold h s =
  let h = ref h in
  String.iter (fun c -> h := (!h lxor Char.code c) * prime) s;
  !h land max_int

let hash s = fold offset_basis s
let hash_seeded ~seed s = fold ((offset_basis lxor seed) land max_int) s
