-- Boot schema for the ingestion server; run with:
--   chimera serve --script examples/scripts/serve_boot.ch
--
-- Defines the class the load generator's default LINE creates, plus a
-- trigger so TRIGGERED replies show up under load.

define class item (n: integer);
define class audit (tag: string);

define immediate trigger onItem for item
  events { create(item) }
  condition item(I), occurred({ create(item) }, I), I.n > 0
  actions create audit(tag = "item")
end;
