(* Extension subsystems: net effects (the holds replacement), the
   triggering-graph termination analysis, memoized ts evaluation, and
   HiPAC-style periodic clock events. *)

open Core

(* ------------------------------------------------------- net effects *)

let a = Domain.create_stock
let m = Domain.modify_stock_quantity
let mmin = Domain.modify_stock_minquantity
let d = Domain.delete_stock
let oid i = Ident.Oid.of_int i

let replay occs =
  let eb = Event_base.create () in
  List.iter (fun (etype, o) -> ignore (Event_base.record eb ~etype ~oid:(oid o))) occs;
  (eb, Window.all ~upto:(Event_base.probe_now eb))

let test_net_effects () =
  let eb, window =
    replay
      [
        (a, 1); (m, 1);          (* o1: created then modified *)
        (a, 2); (d, 2);          (* o2: created then deleted *)
        (m, 3); (mmin, 3);       (* o3: pre-existing, modified twice *)
        (m, 4); (d, 4);          (* o4: pre-existing, deleted *)
        (d, 5); (a, 5);          (* o5: deleted then re-created *)
      ]
  in
  let effects = Net_effect.compute eb ~window in
  let effect_of i = List.assoc (oid i) effects in
  (match effect_of 1 with
  | Net_effect.Net_created { class_name = "stock"; modified = [ "quantity" ] } -> ()
  | e -> Alcotest.failf "o1: %s" (Net_effect.effect_name e));
  (match effect_of 2 with
  | Net_effect.No_net_effect -> ()
  | e -> Alcotest.failf "o2: %s" (Net_effect.effect_name e));
  (match effect_of 3 with
  | Net_effect.Net_modified { modified = [ "minquantity"; "quantity" ]; _ } -> ()
  | e -> Alcotest.failf "o3: %s" (Net_effect.effect_name e));
  (match effect_of 4 with
  | Net_effect.Net_deleted _ -> ()
  | e -> Alcotest.failf "o4: %s" (Net_effect.effect_name e));
  (match effect_of 5 with
  | Net_effect.Net_created _ -> ()
  | e -> Alcotest.failf "o5: %s" (Net_effect.effect_name e));
  Alcotest.(check (list int)) "created" [ 1; 5 ]
    (List.map Ident.Oid.to_int (Net_effect.created eb ~window));
  Alcotest.(check (list int)) "deleted" [ 4 ]
    (List.map Ident.Oid.to_int (Net_effect.deleted eb ~window))

(* The calculus cross-check from the paper's footnote: for objects without
   re-creation patterns, net-created coincides with
   occurred(create += -=delete). *)
let test_net_effect_calculus_agreement () =
  let eb, window = replay [ (a, 1); (m, 1); (a, 2); (d, 2); (m, 3) ] in
  let env = Ts.env eb ~window in
  let at = Window.upto window in
  let formula = Expr_parse.parse_inst_exn "create(stock) += -=delete(stock)" in
  Alcotest.(check (list int))
    "footnote formula agrees"
    (List.map Ident.Oid.to_int (Net_effect.created eb ~window))
    (List.map Ident.Oid.to_int (Ts.occurred_objects env ~at formula))

(* ---------------------------------------------------------- analysis *)

let noop_condition = []

let rule name ?target ~event ~condition ~action () =
  {
    Rule.name;
    target;
    event = Expr_parse.parse_exn event;
    condition;
    action;
    coupling = Rule.Immediate;
    consumption = Rule.Consuming;
    priority = 0;
  }

let create_show =
  Action.A_create
    {
      class_name = "show";
      attrs = [ ("quantity", Query.Term (Query.Const (Value.Int 0))) ];
      bind = None;
    }

let test_triggering_graph () =
  let r1 =
    rule "onStock" ~event:"create(stock)" ~condition:noop_condition
      ~action:[ create_show ] ()
  in
  let r2 =
    rule "onShow" ~event:"create(show)" ~condition:noop_condition ~action:[] ()
  in
  Alcotest.(check bool) "r1 may trigger r2" true (Analysis.may_trigger r1 r2);
  Alcotest.(check bool) "r2 cannot trigger r1" false (Analysis.may_trigger r2 r1);
  Alcotest.(check bool) "acyclic set terminates" true
    (Analysis.terminates [ r1; r2 ])

let test_self_loop_detected () =
  let looping =
    rule "loop" ~event:"create(show)" ~condition:noop_condition
      ~action:[ create_show ] ()
  in
  Alcotest.(check bool) "self loop flagged" false (Analysis.terminates [ looping ]);
  match Analysis.potential_cycles [ looping ] with
  | [ [ "loop" ] ] -> ()
  | other ->
      Alcotest.failf "unexpected cycles: %s"
        (String.concat "; " (List.map (String.concat ",") other))

let test_mutual_cycle_detected () =
  let r1 =
    rule "ping" ~event:"create(show)" ~condition:noop_condition
      ~action:
        [
          Action.A_create
            { class_name = "stock"; attrs = []; bind = None };
        ]
      ()
  in
  let r2 =
    rule "pong" ~event:"create(stock)" ~condition:noop_condition
      ~action:[ create_show ] ()
  in
  (match Analysis.potential_cycles [ r1; r2 ] with
  | [ cycle ] ->
      Alcotest.(check (list string)) "both in the cycle" [ "ping"; "pong" ]
        (List.sort String.compare cycle)
  | other -> Alcotest.failf "expected one cycle, got %d" (List.length other));
  (* checkStockQty (modify action vs create subscription) stays acyclic. *)
  Alcotest.(check bool) "paper's rule terminates" true
    (Analysis.terminates [ Scenario.check_stock_qty ])

let test_modify_attribute_matching () =
  (* A rule modifying quantity must not be seen as triggering a rule
     subscribed to modify(stock.minquantity), but does match a rule on the
     unqualified modify(stock). *)
  let producer =
    rule "producer" ~event:"create(stock)"
      ~condition:[ Condition.Range { var = "S"; class_name = "stock" } ]
      ~action:
        [
          Action.A_modify
            { var = "S"; attribute = "quantity"; value = Query.Term (Query.Const (Value.Int 0)) };
        ]
      ()
  in
  let on_min =
    rule "onMin" ~event:"modify(stock.minquantity)" ~condition:noop_condition
      ~action:[] ()
  in
  let on_any =
    rule "onAny" ~event:"modify(stock)" ~condition:noop_condition ~action:[] ()
  in
  Alcotest.(check bool) "attribute mismatch" false
    (Analysis.may_trigger producer on_min);
  Alcotest.(check bool) "unqualified matches" true
    (Analysis.may_trigger producer on_any)

let test_negation_rules_always_reachable () =
  (* A rule on -create(stock) can be triggered by ANY activity, so any
     event-producing rule gets an edge to it. *)
  let producer =
    rule "producer" ~event:"create(show)" ~condition:noop_condition
      ~action:[ create_show ] ()
  in
  let negation =
    rule "negation" ~event:"-create(stock)" ~condition:noop_condition
      ~action:[] ()
  in
  Alcotest.(check bool) "edge into negation rule" true
    (Analysis.may_trigger producer negation)

(* -------------------------------------------------------------- memo *)

let memo_equals_ts =
  Gen.qcheck ~count:300 "memoized evaluation = plain ts"
    (Gen.arb_history_and_expr Gen.Full)
    (fun (h, e) ->
      let eb = Gen.build_event_base h in
      let env = Gen.ts_env eb in
      let memo = Memo.create eb in
      let after = Time.origin in
      List.for_all
        (fun at -> Ts.ts env ~at e = Memo.ts memo ~after ~at e)
        (Gen.probe_instants eb)
      (* Probe twice: cached answers must not drift. *)
      && List.for_all
           (fun at -> Ts.ts env ~at e = Memo.ts memo ~after ~at e)
           (Gen.probe_instants eb))

let test_memo_caches () =
  let eb = Gen.build_event_base [ (0, 0); (1, 1); (2, 0); (0, 1) ] in
  let e =
    Expr.conj
      (Expr.prim Gen.alphabet.(0))
      (Expr.seq (Expr.prim Gen.alphabet.(1)) (Expr.prim Gen.alphabet.(2)))
  in
  let memo = Memo.create eb in
  let at = Event_base.probe_now eb in
  let v1 = Memo.ts memo ~after:Time.origin ~at e in
  let misses_after_first = Memo.misses memo in
  let v2 = Memo.ts memo ~after:Time.origin ~at e in
  Alcotest.(check int) "stable value" v1 v2;
  Alcotest.(check int) "second probe is pure hits" misses_after_first
    (Memo.misses memo);
  Alcotest.(check bool) "hits recorded" true (Memo.hits memo > 0);
  (* A moved window is just a different [after] key - no invalidation. *)
  let later = Time.probe_after at in
  Alcotest.(check bool) "restarted window sees empty R" false
    (Memo.active memo ~after:at ~at:later e);
  Alcotest.(check int) "old window still cached" v1
    (Memo.ts memo ~after:Time.origin ~at e);
  (* [restart] (the commit path) drops values, keeps graph and counters. *)
  let nodes_before = Memo.node_count memo in
  Memo.restart memo eb;
  Alcotest.(check int) "graph survives restart" nodes_before
    (Memo.node_count memo);
  Alcotest.(check int) "values recomputed identically" v1
    (Memo.ts memo ~after:Time.origin ~at e)

(* ------------------------------------------------------------ timers *)

let test_periodic_timer () =
  let engine = Engine.create (Domain.schema ()) in
  let tick = Engine.define_timer engine ~name:"tick" ~period_lines:3 in
  let spec =
    {
      Rule.name = "onTick";
      target = None;
      event = Expr.prim tick;
      condition = [];
      action =
        [
          Action.A_create
            {
              class_name = "show";
              attrs = [ ("quantity", Query.Term (Query.Const (Value.Int 1))) ];
              bind = None;
            };
        ];
      coupling = Rule.Immediate;
      consumption = Rule.Consuming;
      priority = 0;
    }
  in
  let _ = Engine.define_exn engine spec in
  for _ = 1 to 9 do
    Engine.execute_line_exn engine []
  done;
  Alcotest.(check int) "fired every 3 lines" 3
    (List.length (Object_store.extent (Engine.store engine) ~class_name:"show"));
  Alcotest.(check (list string)) "timer registered" [ "tick" ]
    (Engine.timer_names engine)

let test_timer_composes_with_calculus () =
  (* "A tick with no stock creation since the last consideration":
     tick + -create(stock). *)
  let engine = Engine.create (Domain.schema ()) in
  let tick = Engine.define_timer engine ~name:"audit" ~period_lines:2 in
  let spec =
    {
      Rule.name = "auditIdle";
      target = None;
      event = Expr.conj (Expr.prim tick) (Expr.not_ (Expr.prim Domain.create_stock));
      condition =
        [
          Condition.Range { var = "W"; class_name = "show" };
          Condition.Compare
            (Query.Cmp (Query.Neq, Query.Attr ("W", "quantity"), Query.Const (Value.Int 9)));
        ];
      action =
        [
          Action.A_modify
            { var = "W"; attribute = "quantity"; value = Query.Term (Query.Const (Value.Int 9)) };
        ];
      coupling = Rule.Immediate;
      consumption = Rule.Consuming;
      priority = 0;
    }
  in
  let _ = Engine.define_exn engine spec in
  (* Seed a marker object. *)
  Engine.execute_line_exn engine
    [ Operation.Create { class_name = "show"; attrs = [ ("quantity", Value.Int 0) ] } ];
  (* Line 2 matures the timer with no stock creation: the idle audit fires. *)
  Engine.execute_line_exn engine [];
  let w = List.hd (Object_store.extent (Engine.store engine) ~class_name:"show") in
  match Object_store.get (Engine.store engine) w ~attribute:"quantity" with
  | Ok (Value.Int 9) -> ()
  | Ok v -> Alcotest.failf "marker is %s" (Value.to_string v)
  | Error e -> Alcotest.failf "%a" Object_store.pp_error e

let suite =
  [
    Alcotest.test_case "net effects" `Quick test_net_effects;
    Alcotest.test_case "net effects agree with the calculus footnote" `Quick
      test_net_effect_calculus_agreement;
    Alcotest.test_case "triggering graph edges" `Quick test_triggering_graph;
    Alcotest.test_case "self-loop detected" `Quick test_self_loop_detected;
    Alcotest.test_case "mutual cycle detected" `Quick test_mutual_cycle_detected;
    Alcotest.test_case "modify attribute matching" `Quick
      test_modify_attribute_matching;
    Alcotest.test_case "negation rules always reachable" `Quick
      test_negation_rules_always_reachable;
    memo_equals_ts;
    Alcotest.test_case "memo caches and restarts" `Quick test_memo_caches;
    Alcotest.test_case "periodic timers" `Quick test_periodic_timer;
    Alcotest.test_case "timer composes with negation" `Quick
      test_timer_composes_with_calculus;
  ]

(* Memoization across moving windows: restart at random consumption points
   and stay equal to a fresh plain evaluation over the same window. *)
let memo_restart_equals_ts =
  Gen.qcheck ~count:200 "memo restart tracks moving windows"
    (QCheck.make
       ~print:(fun ((h, e), cut) ->
         Printf.sprintf "history=[%s] expr=%s cut=%d" (Gen.print_history h)
           (Expr.to_string e) cut)
       QCheck.Gen.(
         pair (pair Gen.gen_history (Gen.gen_set_expr Gen.Full)) (int_range 0 20)))
    (fun ((h, e), cut) ->
      QCheck.assume (h <> []);
      let eb = Gen.build_event_base h in
      let stamps =
        Event_base.timestamps_in eb
          ~window:(Window.all ~upto:(Event_base.probe_now eb))
      in
      let consumption = Time.probe_after (List.nth stamps (cut mod List.length stamps)) in
      let memo = Memo.create eb in
      (* Prime the cache over the whole history; the moved window is just a
         different [after] key, so nothing needs invalidating. *)
      ignore (Memo.ts memo ~after:Time.origin ~at:(Event_base.probe_now eb) e);
      let env =
        Ts.env eb
          ~window:(Window.make ~after:consumption ~upto:(Event_base.probe_now eb))
      in
      List.for_all
        (fun at -> Ts.ts env ~at e = Memo.ts memo ~after:consumption ~at e)
        (List.filter (fun at -> Time.(at > consumption)) (Gen.probe_instants eb)))

let suite = suite @ [ memo_restart_equals_ts ]
