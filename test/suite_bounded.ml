(* Bounded state under sustained load (DESIGN.md §4h, EXPERIMENTS.md E15
   in miniature — the long soak lives in bench/bounded.ml):

   - the live event window stays flat while the absolute log keeps
     growing (sliding-window retirement, not compaction: indices and
     event identifiers stay stable);
   - the heap stays flat over a stationary workload (retired prefixes
     are really freed, not merely hidden);
   - the journal chain on disk stays a handful of files (checkpoint +
     segment GC);
   - recovery is O(delta): it boots from the checkpoint and replays only
     the post-checkpoint suffix, with the ["journal.replayed_records"]
     observability counter agreeing with the recovery report. *)

open Core

let temp_journal () = Filename.temp_file "chimera-bounded" ".chj"

let segment_files path =
  let dir = Filename.dirname path and base = Filename.basename path in
  let prefix = base ^ ".seg-" in
  Array.to_list (Sys.readdir dir)
  |> List.filter (fun f ->
         String.length f > String.length prefix
         && String.sub f 0 (String.length prefix) = prefix)

let remove_chain path =
  let rm p = try Sys.remove p with Sys_error _ -> () in
  rm path;
  rm (Checkpoint.path_for path);
  List.iter
    (fun f -> rm (Filename.concat (Filename.dirname path) f))
    (segment_files path)

let bounded_config =
  {
    Engine.default_config with
    Engine.compact_at_commit = None;
    retire_in_tx = Some 1;
  }

(* One stationary transaction: create a stock row, delete an old one
   once the population exceeds a handful.  Quantity 50 sits between the
   reorder and overflow thresholds, so the standard rules watch but
   never create objects of their own — the store population is constant
   and any heap growth is a leak. *)
(* Returns the live window size just before the commit (after it the
   window is empty by construction — every rule window restarts). *)
let stationary_tx engine =
  Engine.execute_line_exn engine
    [ Domain.new_stock ~quantity:50 ~maxquantity:100 ~minquantity:10 ];
  (match Object_store.extent (Engine.store engine) ~class_name:"stock" with
  | oid :: _ :: _ :: _ :: _ ->
      Engine.execute_line_exn engine [ Operation.Delete { oid } ]
  | _ -> ());
  let live = Event_base.live_size (Engine.event_base engine) in
  Engine.commit_exn engine;
  live

let journaled_engine ~path ~every_commits =
  let engine = Scenario.engine ~config:bounded_config () in
  let journal = Journal.create ~path () in
  Engine.set_journal engine journal;
  Engine.enable_checkpoints engine ~every_commits ();
  (engine, journal)

let test_soak_bounded () =
  let path = temp_journal () in
  Fun.protect ~finally:(fun () -> remove_chain path) @@ fun () ->
  let engine, journal = journaled_engine ~path ~every_commits:8 in
  let eb = Engine.event_base engine in
  (* Warm up, then measure over a long second leg. *)
  for _ = 1 to 50 do
    ignore (stationary_tx engine)
  done;
  Gc.full_major ();
  let live_words0 = (Gc.stat ()).Gc.live_words in
  let size0 = Event_base.size eb in
  let max_window = ref 0 in
  for _ = 1 to 800 do
    max_window := max !max_window (stationary_tx engine)
  done;
  Gc.full_major ();
  let live_words1 = (Gc.stat ()).Gc.live_words in
  (* The absolute log grew by at least one occurrence per transaction
     (create events), yet the live window never exceeded a small
     constant: retirement keeps up with the workload. *)
  Alcotest.(check bool) "absolute log keeps growing" true
    (Event_base.size eb >= size0 + 800);
  Alcotest.(check bool)
    (Printf.sprintf "live window stays small (max %d)" !max_window)
    true
    (!max_window > 0 && !max_window <= 64);
  (* The heap is flat: 800 transactions appended thousands of absolute
     log entries; had retirement leaked them, live words would grow by
     tens of thousands.  Allow generous slack for allocator noise. *)
  let growth = live_words1 - live_words0 in
  Alcotest.(check bool)
    (Printf.sprintf "heap flat over 800 txs (grew %d words)" growth)
    true
    (growth < 20_000);
  (* The chain on disk is the live file plus at most a segment awaiting
     the next cycle — 100 checkpoint cycles GC'd the rest. *)
  Alcotest.(check bool)
    (Printf.sprintf "segments GC'd (%d left)"
       (List.length (segment_files path)))
    true
    (List.length (segment_files path) <= 1);
  Journal.close journal

let test_odelta_recovery () =
  let path = temp_journal () in
  Fun.protect ~finally:(fun () -> remove_chain path) @@ fun () ->
  let engine, journal = journaled_engine ~path ~every_commits:10 in
  (* 57 commits: checkpoints at 10, 20, ..., 50; a 7-transaction
     suffix. *)
  for _ = 1 to 57 do
    ignore (stationary_tx engine)
  done;
  Journal.close journal;
  let counter = Obs.Metrics.counter "journal.replayed_records" in
  let counted0 = Obs.Metrics.counter_value counter in
  Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.set_enabled false) @@ fun () ->
  let fresh = Scenario.engine ~config:bounded_config () in
  match Engine.recover fresh ~path with
  | Error msg -> Alcotest.fail msg
  | Ok report ->
      Alcotest.(check int) "all commits recovered" 57
        report.Engine.last_commit_seq;
      Alcotest.(check (option int)) "booted from the last checkpoint"
        (Some 50) report.Engine.booted_from_checkpoint;
      (* O(delta): only the 7-transaction suffix replays from the
         journal.  A stationary transaction is a handful of records; a
         full-history replay would be well past a thousand. *)
      Alcotest.(check bool)
        (Printf.sprintf "suffix-sized replay (%d records)"
           report.Engine.replayed_records)
        true
        (report.Engine.replayed_records <= 200);
      Alcotest.(check int) "obs counter tracks the replay"
        report.Engine.replayed_records
        (Obs.Metrics.counter_value counter - counted0);
      (* The recovered engine agrees with the survivor on the store. *)
      Alcotest.(check int) "store population matches"
        (Object_store.count_live (Engine.store engine))
        (Object_store.count_live (Engine.store fresh))

let test_checkpoint_now_paths () =
  (* Not enabled (no journal): checkpoint_now errors, path is None. *)
  let plain = Scenario.engine ~config:bounded_config () in
  Alcotest.(check bool) "no checkpoint path without enablement" true
    (Engine.checkpoint_path plain = None);
  (match Engine.checkpoint_now plain with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "checkpoint_now succeeded without enablement");
  (* Enabled: an explicit checkpoint lands on disk at the derived path
     and covers the last committed sequence. *)
  let path = temp_journal () in
  Fun.protect ~finally:(fun () -> remove_chain path) @@ fun () ->
  let engine, journal = journaled_engine ~path ~every_commits:1000 in
  for _ = 1 to 3 do
    ignore (stationary_tx engine)
  done;
  Alcotest.(check (option string)) "derived checkpoint path"
    (Some (Checkpoint.path_for path))
    (Engine.checkpoint_path engine);
  (match Engine.checkpoint_now engine with
  | Error msg -> Alcotest.fail msg
  | Ok (seq, _gced) ->
      Alcotest.(check int) "covers the last commit" 3 seq;
      Alcotest.(check bool) "checkpoint on disk" true
        (Sys.file_exists (Checkpoint.path_for path)));
  Journal.close journal

let suite =
  [
    Alcotest.test_case "soak: window, heap and chain stay bounded" `Quick
      test_soak_bounded;
    Alcotest.test_case "recovery replays only the checkpoint suffix" `Quick
      test_odelta_recovery;
    Alcotest.test_case "checkpoint_now: error and success paths" `Quick
      test_checkpoint_now_paths;
  ]
