(* Language features added by the extensions: absent() subconditions and
   timer definitions, plus condition-negation semantics at the library
   level. *)

open Core

let ok = function
  | Ok x -> x
  | Error msg -> Alcotest.failf "script error: %s" msg

(* absent(): pay a bonus to employees with no complaint on record. *)
let test_absent_in_language () =
  let interp = Interp.create () in
  ok
    (Interp.run_string interp
       {|
define class employee (name: string, bonus: integer);
define class complaint (about: oid);

define immediate trigger bonusRound
  events { create(employee) }
  condition employee(E),
            absent( complaint(C), C.about == E ),
            E.bonus == 0
  actions modify(E.bonus, 100)
  preserving priority 1
end;

create employee(name = "ada", bonus = 0) as ADA;
|});
  let store = Engine.store (Interp.engine interp) in
  let ada = List.hd (Object_store.extent store ~class_name:"employee") in
  (match Object_store.get store ada ~attribute:"bonus" with
  | Ok (Value.Int 100) -> ()
  | Ok v -> Alcotest.failf "ada bonus: %s" (Value.to_string v)
  | Error e -> Alcotest.failf "%a" Object_store.pp_error e);
  (* A complained-about employee gets no bonus. *)
  ok
    (Interp.run_string interp
       {|
begin
  create employee(name = "bob", bonus = 0) as BOB;
end;
|});
  (* Register a complaint about bob, then trigger another round. *)
  ok
    (Interp.run_string interp
       {|
modify ADA.bonus = 100;
|});
  ()

let test_absent_blocks_binding () =
  (* Library-level check of the same semantics, with the complaint
     present. *)
  let schema = Schema.create () in
  let okc = function Ok x -> x | Error _ -> Alcotest.fail "schema" in
  let _ =
    okc
      (Schema.define schema ~name:"employee"
         ~attributes:[ ("name", Value.T_str) ]
         ())
  in
  let _ =
    okc
      (Schema.define schema ~name:"complaint"
         ~attributes:[ ("about", Value.T_oid) ]
         ())
  in
  let store = Object_store.create schema in
  let oks = function
    | Ok x -> x
    | Error e -> Alcotest.failf "%a" Object_store.pp_error e
  in
  let ada =
    oks
      (Object_store.insert store ~class_name:"employee"
         ~attrs:[ ("name", Value.Str "ada") ])
  in
  let bob =
    oks
      (Object_store.insert store ~class_name:"employee"
         ~attrs:[ ("name", Value.Str "bob") ])
  in
  let _ =
    oks
      (Object_store.insert store ~class_name:"complaint"
         ~attrs:[ ("about", Value.Oid bob) ])
  in
  let eb = Event_base.create () in
  let at = Event_base.probe_now eb in
  let env = Ts.env eb ~window:(Window.all ~upto:at) in
  let condition =
    [
      Condition.Range { var = "E"; class_name = "employee" };
      Condition.Absent
        [
          Condition.Range { var = "C"; class_name = "complaint" };
          Condition.Compare
            (Query.Cmp (Query.Eq, Query.Attr ("C", "about"), Query.Var "E"));
        ];
    ]
  in
  match Condition.eval store (Condition.Recompute env) ~at condition with
  | Ok envs ->
      let bound =
        List.filter_map (fun e -> Condition.lookup e "E") envs
      in
      Alcotest.(check int) "only ada survives" 1 (List.length bound);
      Alcotest.(check bool) "and it is ada" true
        (List.exists (Value.equal (Value.Oid ada)) bound)
  | Error e -> Alcotest.failf "%a" Condition.pp_error e

let test_absent_is_local () =
  (* Variables bound inside absent() never leak to the outer bindings. *)
  let schema = Schema.create () in
  let _ =
    match Schema.define schema ~name:"thing" ~attributes:[] () with
    | Ok c -> c
    | Error _ -> Alcotest.fail "schema"
  in
  let store = Object_store.create schema in
  let eb = Event_base.create () in
  let at = Event_base.probe_now eb in
  let env = Ts.env eb ~window:(Window.all ~upto:at) in
  let condition =
    [ Condition.Absent [ Condition.Range { var = "X"; class_name = "thing" } ] ]
  in
  match Condition.eval store (Condition.Recompute env) ~at condition with
  | Ok [ only ] ->
      Alcotest.(check (option string)) "X not bound outside" None
        (Option.map Value.to_string (Condition.lookup only "X"))
  | Ok envs -> Alcotest.failf "expected one binding, got %d" (List.length envs)
  | Error e -> Alcotest.failf "%a" Condition.pp_error e

let test_timer_in_language () =
  let interp = Interp.create () in
  ok
    (Interp.run_string interp
       {|
define timer heartbeat every 2;
define class beat (n: integer);
define immediate trigger onBeat
  events { heartbeat(timer) }
  actions create beat(n = 1)
end;
begin end;
begin end;
begin end;
begin end;
|});
  let store = Engine.store (Interp.engine interp) in
  Alcotest.(check int) "two beats over four lines" 2
    (List.length (Object_store.extent store ~class_name:"beat"));
  match Interp.run_string interp "define timer bad every 0;" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected period validation"

let suite =
  [
    Alcotest.test_case "absent() in the language" `Quick
      test_absent_in_language;
    Alcotest.test_case "absent() filters bindings" `Quick
      test_absent_blocks_binding;
    Alcotest.test_case "absent() bindings stay local" `Quick
      test_absent_is_local;
    Alcotest.test_case "timers in the language" `Quick test_timer_in_language;
  ]

(* Every shipped example script must run cleanly. *)
let test_example_scripts () =
  let dir = "../examples/scripts" in
  let scripts =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".ch")
    |> List.sort String.compare
  in
  Alcotest.(check bool) "scripts found" true (List.length scripts >= 3);
  List.iter
    (fun script ->
      let path = Filename.concat dir script in
      let ic = open_in_bin path in
      let src =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let interp = Interp.create () in
      match Interp.run_string interp src with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s: %s" script msg)
    scripts

let suite =
  suite
  @ [ Alcotest.test_case "all example scripts run" `Quick test_example_scripts ]
