(* The observability layer: bucket math, histograms under a hand-stepped
   clock, span nesting and ring semantics, sink round-trips, and the
   disabled-path allocation guarantee. *)

open Core

(* A hand-stepped clock: every reading advances by [step] ns, so span
   durations and histogram observations are exact. *)
let fake_clock ?(step = 10) () =
  let now = ref 0 in
  Obs.set_clock (fun () ->
      now := !now + step;
      !now)

let restore_clock () = Obs.set_clock (fun () -> int_of_float (Sys.time () *. 1e9))

(* Every test runs enabled with clean metric values and leaves the layer
   disabled and restored, whatever happens. *)
let with_obs f () =
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.reset ();
      Obs.Sink.detach_all ();
      restore_clock ();
      Obs.set_enabled false)
    f

let test_bucket_math () =
  let cases =
    [ (0, 0); (1, 0); (2, 1); (3, 1); (4, 2); (7, 2); (8, 3); (1023, 9);
      (1024, 10); (1025, 10); (-5, 0) ]
  in
  List.iter
    (fun (v, expected) ->
      Alcotest.(check int)
        (Printf.sprintf "bucket_index %d" v)
        expected
        (Obs.Metrics.bucket_index v))
    cases;
  List.iter
    (fun i ->
      Alcotest.(check int)
        (Printf.sprintf "bucket_lower %d" i)
        (1 lsl i)
        (Obs.Metrics.bucket_lower i))
    [ 0; 1; 2; 10; 30 ];
  (* The bucket bounds tile: every value lands in the bucket whose lower
     bound is the largest power of two below it. *)
  for v = 1 to 5000 do
    let i = Obs.Metrics.bucket_index v in
    assert (Obs.Metrics.bucket_lower i <= v);
    assert (v < Obs.Metrics.bucket_lower (i + 1))
  done

let test_histogram () =
  let h = Obs.Metrics.histogram "test.histogram" in
  List.iter (Obs.Metrics.observe h) [ 1; 2; 3; 1024; 9 ];
  let s = Obs.Metrics.histogram_stat h in
  Alcotest.(check int) "count" 5 s.Obs.Metrics.h_count;
  Alcotest.(check int) "sum" 1039 s.Obs.Metrics.h_sum;
  Alcotest.(check int) "min" 1 s.Obs.Metrics.h_min;
  Alcotest.(check int) "max" 1024 s.Obs.Metrics.h_max;
  Alcotest.(check (list (pair int int)))
    "buckets"
    [ (1, 1); (2, 2); (8, 1); (1024, 1) ]
    s.Obs.Metrics.h_buckets;
  (* A zero-or-negative observation clamps into bucket 0. *)
  Obs.Metrics.observe h 0;
  let s = Obs.Metrics.histogram_stat h in
  Alcotest.(check int) "clamped count" 6 s.Obs.Metrics.h_count;
  Alcotest.(check int) "min after clamp" 0 s.Obs.Metrics.h_min

let test_counters_gauges () =
  let c = Obs.Metrics.counter "test.counter" in
  let g = Obs.Metrics.gauge "test.gauge" in
  Obs.Metrics.incr c;
  Obs.Metrics.add c 41;
  Obs.Metrics.set_gauge g 17;
  Alcotest.(check int) "counter" 42 (Obs.Metrics.counter_value c);
  Alcotest.(check int) "gauge" 17 (Obs.Metrics.gauge_value g);
  (* Registration is by name: the same name yields the same cell. *)
  Obs.Metrics.incr (Obs.Metrics.counter "test.counter");
  Alcotest.(check int) "shared by name" 43 (Obs.Metrics.counter_value c);
  let snap = Obs.snapshot () in
  Alcotest.(check (option int))
    "snapshot sees it" (Some 43)
    (List.assoc_opt "test.counter" snap.Obs.counters);
  Obs.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Obs.Metrics.counter_value c);
  Alcotest.(check int) "reset zeroes gauge" 0 (Obs.Metrics.gauge_value g)

let test_ring_wraparound () =
  fake_clock ();
  Obs.Trace.set_ring_capacity 8;
  Fun.protect ~finally:(fun () -> Obs.Trace.set_ring_capacity 4096)
  @@ fun () ->
  for i = 1 to 20 do
    let tok = Obs.Trace.begin_ "span" ~detail:(string_of_int i) in
    Obs.Trace.end_ tok
  done;
  let spans = Obs.Trace.recorded () in
  Alcotest.(check int) "capacity bounds" 8 (List.length spans);
  Alcotest.(check (list string))
    "oldest first, newest kept"
    [ "13"; "14"; "15"; "16"; "17"; "18"; "19"; "20" ]
    (List.map (fun sp -> sp.Obs.Trace.detail) spans);
  (* A smaller refill never exceeds what was recorded. *)
  Obs.Trace.set_ring_capacity 4;
  let tok = Obs.Trace.begin_ "solo" in
  Obs.Trace.end_ tok;
  Alcotest.(check int) "partial ring" 1 (List.length (Obs.Trace.recorded ()))

let test_span_nesting () =
  fake_clock ();
  Obs.Trace.set_tx 7;
  Obs.Trace.set_eid 3;
  let outer = Obs.Trace.begin_ "outer" in
  let inner = Obs.Trace.begin_ "inner" ~detail:"d" in
  Alcotest.(check int) "two open" 2 (Obs.Trace.open_depth ());
  Obs.Trace.end_ inner;
  Obs.Trace.end_ outer;
  Alcotest.(check int) "balanced" 0 (Obs.Trace.open_depth ());
  (match Obs.Trace.recorded () with
  | [ i; o ] ->
      (* Completion order: the inner span lands first. *)
      Alcotest.(check string) "inner first" "inner" i.Obs.Trace.name;
      Alcotest.(check int) "inner depth" 1 i.Obs.Trace.depth;
      Alcotest.(check string) "outer second" "outer" o.Obs.Trace.name;
      Alcotest.(check int) "outer depth" 0 o.Obs.Trace.depth;
      Alcotest.(check int) "tx stamped" 7 o.Obs.Trace.tx;
      Alcotest.(check int) "eid stamped" 3 o.Obs.Trace.eid;
      assert (i.Obs.Trace.dur_ns > 0);
      assert (o.Obs.Trace.dur_ns > i.Obs.Trace.dur_ns)
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans));
  (* An exception path: with_span stays balanced, and ending an outer
     token closes leaked inner spans (every begin gets its end). *)
  Obs.reset ();
  fake_clock ();
  (try
     Obs.Trace.with_span "raises" (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "with_span balanced on raise" 0 (Obs.Trace.open_depth ());
  let outer = Obs.Trace.begin_ "outer" in
  let _leaked = Obs.Trace.begin_ "leaked" in
  let _leaked2 = Obs.Trace.begin_ "leaked2" in
  Obs.Trace.end_ outer;
  Alcotest.(check int) "outer end closes leaks" 0 (Obs.Trace.open_depth ());
  Alcotest.(check (list string))
    "leaked spans recorded innermost first"
    [ "raises"; "leaked2"; "leaked"; "outer" ]
    (List.map (fun sp -> sp.Obs.Trace.name) (Obs.Trace.recorded ()))

let test_end_into () =
  fake_clock ~step:16 ();
  let h = Obs.Metrics.histogram "test.end_into" in
  let tok = Obs.Trace.begin_ "timed" in
  Obs.Trace.end_into h tok;
  let s = Obs.Metrics.histogram_stat h in
  Alcotest.(check int) "one observation" 1 s.Obs.Metrics.h_count;
  (match Obs.Trace.recorded () with
  | [ sp ] ->
      Alcotest.(check int)
        "histogram got the span's duration" sp.Obs.Trace.dur_ns
        s.Obs.Metrics.h_sum
  | _ -> Alcotest.fail "expected exactly one span")

(* The engine's abort path closes every span it opened: after an abort
   mid-transaction the trace stack is quiescent and the abort span is in
   the ring. *)
let test_abort_balance () =
  let engine = Scenario.engine () in
  let prng = Prng.create ~seed:7 in
  Scenario.run_inventory_traffic prng engine ~lines:5 ~ops_per_line:3;
  Engine.abort engine;
  Alcotest.(check int) "quiescent after abort" 0 (Obs.Trace.open_depth ());
  let names = List.map (fun sp -> sp.Obs.Trace.name) (Obs.Trace.recorded ()) in
  Alcotest.(check bool) "abort span recorded" true
    (List.mem "engine.abort" names);
  Alcotest.(check bool) "line spans recorded" true
    (List.mem "engine.line" names);
  (* And the engine keeps working after the rollback. *)
  Scenario.run_inventory_traffic prng engine ~lines:2 ~ops_per_line:2;
  (match Engine.commit engine with
  | Ok () -> ()
  | Error e -> Alcotest.failf "commit after abort: %a" Engine.pp_error e);
  Alcotest.(check int) "quiescent after commit" 0 (Obs.Trace.open_depth ())

let test_jsonl_sink () =
  fake_clock ();
  let path = Filename.temp_file "chimera_obs_test" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let mem, collected = Obs.Sink.memory () in
  Obs.Sink.attach mem;
  Obs.Sink.attach (Obs.Sink.jsonl ~path);
  Obs.Trace.set_tx 5;
  let outer = Obs.Trace.begin_ "outer" ~detail:{|quote " tab	 backslash \|} in
  let inner = Obs.Trace.begin_ "inner" in
  Obs.Trace.end_ inner;
  Obs.Trace.end_ outer;
  ignore (Obs.Metrics.counter "test.jsonl");
  Obs.publish ();
  Obs.Sink.detach_all ();
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  let span_lines, other =
    List.partition (fun l -> not (String.length l > 11 && String.sub l 0 11 = {|{"snapshot"|})) lines
  in
  Alcotest.(check int) "two span lines + snapshot" 2 (List.length span_lines);
  Alcotest.(check int) "one snapshot line" 1 (List.length other);
  let parsed =
    List.map
      (fun line ->
        match Obs.Sink.span_of_json line with
        | Ok sp -> sp
        | Error msg -> Alcotest.failf "parse-back failed on %s: %s" line msg)
      span_lines
  in
  (* The file round-trips to exactly what the memory sink saw, including
     the escaped detail string. *)
  Alcotest.(check int) "sink agreement" (List.length (collected ()))
    (List.length parsed);
  List.iter2
    (fun a b ->
      Alcotest.(check string) "name" a.Obs.Trace.name b.Obs.Trace.name;
      Alcotest.(check string) "detail" a.Obs.Trace.detail b.Obs.Trace.detail;
      Alcotest.(check int) "start" a.Obs.Trace.start_ns b.Obs.Trace.start_ns;
      Alcotest.(check int) "dur" a.Obs.Trace.dur_ns b.Obs.Trace.dur_ns;
      Alcotest.(check int) "depth" a.Obs.Trace.depth b.Obs.Trace.depth;
      Alcotest.(check int) "tx" a.Obs.Trace.tx b.Obs.Trace.tx;
      Alcotest.(check int) "eid" a.Obs.Trace.eid b.Obs.Trace.eid)
    (collected ()) parsed

let test_span_json_roundtrip () =
  let sp =
    {
      Obs.Trace.name = "weird \"name\"\n";
      detail = "\\ \t \x01 ünïcode";
      start_ns = 123456789;
      dur_ns = 42;
      depth = 3;
      tx = -1;
      eid = 999;
    }
  in
  match Obs.Sink.span_of_json (Obs.Sink.span_to_json sp) with
  | Error msg -> Alcotest.failf "round-trip failed: %s" msg
  | Ok back ->
      Alcotest.(check string) "name" sp.Obs.Trace.name back.Obs.Trace.name;
      Alcotest.(check string) "detail" sp.Obs.Trace.detail back.Obs.Trace.detail;
      Alcotest.(check int) "start" sp.Obs.Trace.start_ns back.Obs.Trace.start_ns;
      Alcotest.(check int) "tx" sp.Obs.Trace.tx back.Obs.Trace.tx

(* The disabled path allocates nothing: a loop over every recording entry
   point moves the minor-heap allocation pointer not at all (a lenient
   threshold absorbs the boxed floats of the measurement itself). *)
let test_disabled_no_alloc () =
  Obs.set_enabled false;
  let c = Obs.Metrics.counter "test.noalloc.counter" in
  let g = Obs.Metrics.gauge "test.noalloc.gauge" in
  let h = Obs.Metrics.histogram "test.noalloc.histogram" in
  (* Warm up so any one-time lazy work is done. *)
  Obs.Metrics.incr c;
  let before = Gc.minor_words () in
  for i = 1 to 10_000 do
    Obs.Metrics.incr c;
    Obs.Metrics.add c i;
    Obs.Metrics.set_gauge g i;
    Obs.Metrics.observe h i;
    let t0 = Obs.start_timer () in
    Obs.observe_since h t0;
    let tok = Obs.Trace.begin_ "noalloc" in
    Obs.Trace.end_ tok;
    Obs.Trace.end_into h tok;
    Obs.Trace.instant "noalloc";
    Obs.Trace.set_tx i;
    Obs.Trace.set_eid i
  done;
  let after = Gc.minor_words () in
  let words = after -. before in
  if words > 64.0 then
    Alcotest.failf "disabled path allocated %.0f minor words over 10k rounds"
      words;
  Alcotest.(check int) "no counts either" 0 (Obs.Metrics.counter_value c);
  Alcotest.(check int) "no spans either" 0 (List.length (Obs.Trace.recorded ()))

(* The wake/posting-list counters added with the indexed trigger wake
   all move under ordinary engine traffic: the subscription-driven drain
   wakes rules (and leaves the rest idle), and the event base maintains
   per-type posting lists on every insert. *)
let test_wake_counters_move () =
  let engine = Scenario.engine () in
  (* A rule on a type the traffic never generates: it subscribes but is
     never woken, so the idle counter has something to count. *)
  ignore
    (Engine.define_exn engine
       {
         Rule.name = "dormant";
         target = None;
         event = Expr.prim Domain.modify_show_quantity;
         condition = [];
         action = [];
         coupling = Rule.Immediate;
         consumption = Rule.Consuming;
         priority = 0;
       });
  let prng = Prng.create ~seed:11 in
  Scenario.run_inventory_traffic prng engine ~lines:10 ~ops_per_line:3;
  let snap = Obs.snapshot () in
  let counter name =
    match List.assoc_opt name snap.Obs.counters with
    | Some n -> n
    | None -> Alcotest.failf "%s not registered" name
  in
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (Printf.sprintf "%s > 0" name)
        true
        (counter name > 0))
    [
      "trigger.woken";
      "trigger.idle";
      "eventbase.posting_appends";
      "eventbase.posting_probes";
    ];
  let lists =
    match List.assoc_opt "eventbase.posting_lists" snap.Obs.gauges with
    | Some n -> n
    | None -> Alcotest.fail "eventbase.posting_lists not registered"
  in
  Alcotest.(check bool) "posting_lists gauge > 0" true (lists > 0);
  (* The dirty set over-approximates: woken plus idle accounts for every
     rule the sweep would have visited. *)
  let stats = Engine.statistics engine in
  let t = stats.Engine.trigger_stats in
  Alcotest.(check int)
    "woken mirrors engine stats" t.Trigger_support.woken
    (counter "trigger.woken")

let suite =
  [
    ("bucket math", `Quick, with_obs test_bucket_math);
    ("histogram stats", `Quick, with_obs test_histogram);
    ("counters, gauges, reset", `Quick, with_obs test_counters_gauges);
    ("ring wraparound", `Quick, with_obs test_ring_wraparound);
    ("span nesting and balance", `Quick, with_obs test_span_nesting);
    ("end_into shares the clock read", `Quick, with_obs test_end_into);
    ("abort keeps spans balanced", `Quick, with_obs test_abort_balance);
    ("wake and posting-list counters move", `Quick,
      with_obs test_wake_counters_move);
    ("jsonl sink parse-back", `Quick, with_obs test_jsonl_sink);
    ("span json round-trip", `Quick, with_obs test_span_json_roundtrip);
    ("disabled mode allocates nothing", `Quick, with_obs test_disabled_no_alloc);
  ]
