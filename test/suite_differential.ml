(* The differential harness: the first consumer of the obs layer.

   Seeded random scenarios from the workload generator run the same
   expressions and the same event stream through four independent
   detection engines —

     memo        the engine's default path (shared memoized ts)
     naive       full recompute after every event
     tree        Snoop-style incremental operator tree
     automaton   Ode-style lazy DFA

   — and every engine must report the same activation verdict for every
   expression after every event.  The expressions come from the regular
   profile (negation- and instance-free), the fragment all four support.

   The harness runs with obs enabled and afterwards asserts from the
   metrics registry that the memoized path actually hit its cache: a
   differential test that silently stopped exercising the memo would
   otherwise keep passing. *)

open Core

let scenarios = 120

(* One scenario: expressions, stream and engines all derived from the
   seed.  Returns the number of verdict comparisons made. *)
let run_scenario ~seed =
  let prng = Prng.create ~seed in
  let alphabet = Domain.abstract_alphabet (2 + (seed mod 3)) in
  let nexprs = 1 + (seed mod 3) in
  let depth = 1 + (seed mod 4) in
  let exprs =
    List.init nexprs (fun _ ->
        Expr_gen.gen prng ~profile:Expr_gen.regular_profile ~alphabet ~depth ())
  in
  let objects = 1 + (seed mod 4) in
  let stream = Expr_gen.stream prng ~alphabet ~objects ~length:40 in
  (* The memoized engine path: one shared memo, handles interned once. *)
  let eb = Event_base.create () in
  let memo = Memo.create eb in
  let handles = List.map (Memo.intern memo) exprs in
  let naive = Naive.create exprs in
  let trees = List.map Tree_detector.create exprs in
  let automata = List.map Automaton.create exprs in
  let comparisons = ref 0 in
  List.iteri
    (fun step (etype, oid) ->
      let occ = Event_base.record eb ~etype ~oid in
      Naive.on_event naive ~etype ~oid;
      List.iter
        (fun tree ->
          Tree_detector.on_event tree ~etype
            ~timestamp:(Occurrence.timestamp occ))
        trees;
      List.iter (fun a -> Automaton.on_event a ~etype) automata;
      let at = Event_base.probe_now eb in
      List.iteri
        (fun i (expr, (handle, (tree, automaton))) ->
          let memo_verdict =
            Memo.active_handle memo ~after:Time.origin ~at handle
          in
          let naive_verdict = Naive.active naive i in
          let tree_verdict = Tree_detector.active tree in
          let automaton_verdict = Automaton.active automaton in
          incr comparisons;
          if
            not
              (memo_verdict = naive_verdict
              && memo_verdict = tree_verdict
              && memo_verdict = automaton_verdict)
          then
            Alcotest.failf
              "seed %d step %d expr %s: memo=%b naive=%b tree=%b automaton=%b"
              seed step (Expr.to_string expr) memo_verdict naive_verdict
              tree_verdict automaton_verdict)
        (List.combine exprs
           (List.combine handles (List.combine trees automata))))
    stream;
  !comparisons

let test_verdicts_agree () =
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect ~finally:(fun () -> Obs.set_enabled false)
  @@ fun () ->
  let total = ref 0 in
  for i = 0 to scenarios - 1 do
    total := !total + run_scenario ~seed:(1000 + i)
  done;
  (* Every scenario compared something on every event. *)
  Alcotest.(check bool)
    (Printf.sprintf "substantial comparison volume (%d)" !total)
    true
    (!total >= scenarios * 40);
  (* The memoized path really went through its cache: the registry's
     aggregate hit counter moved during the run. *)
  let snap = Obs.snapshot () in
  let hits =
    match List.assoc_opt "memo.hits" snap.Obs.counters with
    | Some n -> n
    | None -> Alcotest.fail "memo.hits counter not registered"
  in
  Alcotest.(check bool)
    (Printf.sprintf "memo hit count > 0 (got %d)" hits)
    true (hits > 0);
  (* ... and the baselines really ran too. *)
  List.iter
    (fun name ->
      match List.assoc_opt name snap.Obs.counters with
      | Some n when n > 0 -> ()
      | Some 0 -> Alcotest.failf "%s never moved" name
      | _ -> Alcotest.failf "%s not registered" name)
    [
      "baseline.naive.evals";
      "baseline.tree.activations";
      "baseline.automaton.transitions";
    ]

(* The same engines under consumption: restarting every engine at a
   mid-stream instant (fresh window lower bound vs detector reset) keeps
   the verdicts aligned — the memoized path with a moved [after] bound
   against baselines reset and replayed from that point. *)
let test_verdicts_agree_after_restart () =
  let failures = ref 0 in
  for i = 0 to 39 do
    let seed = 5000 + i in
    let prng = Prng.create ~seed in
    let alphabet = Domain.abstract_alphabet 3 in
    let expr =
      Expr_gen.gen prng ~profile:Expr_gen.regular_profile ~alphabet ~depth:3 ()
    in
    let stream = Expr_gen.stream prng ~alphabet ~objects:2 ~length:30 in
    let cut = 10 + (seed mod 10) in
    let eb = Event_base.create () in
    let memo = Memo.create eb in
    let handle = Memo.intern memo expr in
    (* Feed the prefix, then restart detection at the cut instant. *)
    List.iteri
      (fun step (etype, oid) ->
        if step < cut then ignore (Event_base.record eb ~etype ~oid))
      stream;
    let after = Event_base.probe_now eb in
    let tree = Tree_detector.create expr in
    let automaton = Automaton.create expr in
    List.iteri
      (fun step (etype, oid) ->
        if step >= cut then begin
          let occ = Event_base.record eb ~etype ~oid in
          Tree_detector.on_event tree ~etype
            ~timestamp:(Occurrence.timestamp occ);
          Automaton.on_event automaton ~etype;
          let at = Event_base.probe_now eb in
          let memo_verdict = Memo.active_handle memo ~after ~at handle in
          if
            not
              (memo_verdict = Tree_detector.active tree
              && memo_verdict = Automaton.active automaton)
          then begin
            incr failures;
            Alcotest.failf
              "seed %d step %d expr %s: memo=%b tree=%b automaton=%b" seed
              step (Expr.to_string expr) memo_verdict
              (Tree_detector.active tree)
              (Automaton.active automaton)
          end
        end)
      stream
  done;
  Alcotest.(check int) "no disagreements" 0 !failures

(* ------------------------------------------- wake-mode differential *)

(* The indexed wake (subscription table + dirty-set drain) against the
   per-block sweep, at full engine level: the same seeded rules and the
   same operation history through two engines differing only in
   [Trigger_support.wake] must show identical rule behaviour after every
   line — same considerations, executions, firings and recorded events —
   and identical ts values for every rule expression at the end.  The
   160 seeds reuse the two seed ranges above; the second range commits
   mid-stream so the dirty set also survives a window restart. *)

let wake_rule name event =
  {
    Rule.name;
    target = None;
    event;
    condition = [];
    action = [];
    coupling = Rule.Immediate;
    consumption = Rule.Consuming;
    priority = 0;
  }

(* Abstract alphabet types mapped onto store events the engine can
   actually generate (same trick as the trigger suite). *)
let to_domain =
  Expr.map_primitives (fun p ->
      match Event_type.to_string p with
      | "evA(obj)" -> Domain.create_stock
      | "evB(obj)" -> Domain.modify_stock_quantity
      | _ -> Domain.delete_stock)

let wake_engine ~wake exprs =
  let config =
    {
      Engine.default_config with
      Engine.trigger =
        { Trigger_support.default_config with Trigger_support.wake };
    }
  in
  let engine = Engine.create ~config (Domain.schema ()) in
  List.iteri
    (fun i e ->
      match Engine.define engine (wake_rule (Printf.sprintf "r%d" i) e) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "define: %a" Engine.pp_error e)
    exprs;
  engine

let wake_step engine (kind, idx) =
  let live = Object_store.extent (Engine.store engine) ~class_name:"stock" in
  let op =
    match (kind, live) with
    | 0, _ | _, [] ->
        Domain.new_stock ~quantity:(10 + idx) ~maxquantity:100 ~minquantity:0
    | 1, l ->
        Operation.Modify
          {
            oid = List.nth l (idx mod List.length l);
            attribute = "quantity";
            value = Value.Int idx;
          }
    | _, l -> Operation.Delete { oid = List.nth l (idx mod List.length l) }
  in
  match Engine.execute_line engine [ op ] with
  | Ok () -> ()
  | Error e -> Alcotest.failf "line: %a" Engine.pp_error e

let wake_fingerprint engine =
  let s = Engine.statistics engine in
  ( s.Engine.considerations,
    s.Engine.executions,
    s.Engine.events,
    s.Engine.trigger_stats.Trigger_support.fired )

let run_wake_scenario ~seed ~commit_at =
  let prng = Prng.create ~seed in
  let alphabet = Domain.abstract_alphabet 3 in
  let nexprs = 1 + (seed mod 4) in
  let exprs =
    List.init nexprs (fun _ ->
        to_domain
          (Expr_gen.gen prng ~profile:Expr_gen.boolean_profile ~alphabet
             ~depth:(1 + (seed mod 4)) ()))
  in
  let history =
    List.init 25 (fun _ ->
        (Prng.next_int prng ~bound:3, Prng.next_int prng ~bound:8))
  in
  let sweep = wake_engine ~wake:Trigger_support.Sweep exprs in
  let indexed = wake_engine ~wake:Trigger_support.Indexed exprs in
  List.iteri
    (fun step opspec ->
      wake_step sweep opspec;
      wake_step indexed opspec;
      (match commit_at with
      | Some cut when step = cut ->
          let ok = function
            | Ok () -> ()
            | Error e -> Alcotest.failf "commit: %a" Engine.pp_error e
          in
          ok (Engine.commit sweep);
          ok (Engine.commit indexed)
      | _ -> ());
      if wake_fingerprint sweep <> wake_fingerprint indexed then
        let c, x, v, f = wake_fingerprint sweep
        and c', x', v', f' = wake_fingerprint indexed in
        Alcotest.failf
          "seed %d step %d: sweep cons=%d exec=%d events=%d fired=%d vs \
           indexed cons=%d exec=%d events=%d fired=%d"
          seed step c x v f c' x' v' f')
    history;
  (* ts agreement: both logs are identical, and both memo caches — fed
     through entirely different probe schedules — must agree on every
     rule's activation timestamp at the end. *)
  let at = Event_base.probe_now (Engine.event_base sweep) in
  List.iter
    (fun e ->
      let a = Memo.ts (Engine.memo sweep) ~after:Time.origin ~at e in
      let b = Memo.ts (Engine.memo indexed) ~after:Time.origin ~at e in
      if a <> b then
        Alcotest.failf "seed %d expr %s: ts sweep=%d indexed=%d" seed
          (Expr.to_string e) a b)
    exprs

let test_wake_modes_agree () =
  for i = 0 to scenarios - 1 do
    run_wake_scenario ~seed:(1000 + i) ~commit_at:None
  done;
  for i = 0 to 39 do
    let seed = 5000 + i in
    run_wake_scenario ~seed ~commit_at:(Some (10 + (seed mod 10)))
  done

let suite =
  [
    ( Printf.sprintf "%d scenarios x 4 engines agree" scenarios,
      `Quick,
      test_verdicts_agree );
    ("windowed restart keeps agreement", `Quick, test_verdicts_agree_after_restart);
    ( Printf.sprintf "%d scenarios: sweep wake = indexed wake" (scenarios + 40),
      `Quick,
      test_wake_modes_agree );
  ]
