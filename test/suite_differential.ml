(* The differential harness: the first consumer of the obs layer.

   Seeded random scenarios from the workload generator run the same
   expressions and the same event stream through four independent
   detection engines —

     memo        the engine's default path (shared memoized ts)
     naive       full recompute after every event
     tree        Snoop-style incremental operator tree
     automaton   Ode-style lazy DFA

   — and every engine must report the same activation verdict for every
   expression after every event.  The expressions come from the regular
   profile (negation- and instance-free), the fragment all four support.

   The harness runs with obs enabled and afterwards asserts from the
   metrics registry that the memoized path actually hit its cache: a
   differential test that silently stopped exercising the memo would
   otherwise keep passing. *)

open Core

let scenarios = 120

(* One scenario: expressions, stream and engines all derived from the
   seed.  Returns the number of verdict comparisons made. *)
let run_scenario ~seed =
  let prng = Prng.create ~seed in
  let alphabet = Domain.abstract_alphabet (2 + (seed mod 3)) in
  let nexprs = 1 + (seed mod 3) in
  let depth = 1 + (seed mod 4) in
  let exprs =
    List.init nexprs (fun _ ->
        Expr_gen.gen prng ~profile:Expr_gen.regular_profile ~alphabet ~depth ())
  in
  let objects = 1 + (seed mod 4) in
  let stream = Expr_gen.stream prng ~alphabet ~objects ~length:40 in
  (* The memoized engine path: one shared memo, handles interned once. *)
  let eb = Event_base.create () in
  let memo = Memo.create eb in
  let handles = List.map (Memo.intern memo) exprs in
  let naive = Naive.create exprs in
  let trees = List.map Tree_detector.create exprs in
  let automata = List.map Automaton.create exprs in
  let comparisons = ref 0 in
  List.iteri
    (fun step (etype, oid) ->
      let occ = Event_base.record eb ~etype ~oid in
      Naive.on_event naive ~etype ~oid;
      List.iter
        (fun tree ->
          Tree_detector.on_event tree ~etype
            ~timestamp:(Occurrence.timestamp occ))
        trees;
      List.iter (fun a -> Automaton.on_event a ~etype) automata;
      let at = Event_base.probe_now eb in
      List.iteri
        (fun i (expr, (handle, (tree, automaton))) ->
          let memo_verdict =
            Memo.active_handle memo ~after:Time.origin ~at handle
          in
          let naive_verdict = Naive.active naive i in
          let tree_verdict = Tree_detector.active tree in
          let automaton_verdict = Automaton.active automaton in
          incr comparisons;
          if
            not
              (memo_verdict = naive_verdict
              && memo_verdict = tree_verdict
              && memo_verdict = automaton_verdict)
          then
            Alcotest.failf
              "seed %d step %d expr %s: memo=%b naive=%b tree=%b automaton=%b"
              seed step (Expr.to_string expr) memo_verdict naive_verdict
              tree_verdict automaton_verdict)
        (List.combine exprs
           (List.combine handles (List.combine trees automata))))
    stream;
  !comparisons

let test_verdicts_agree () =
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect ~finally:(fun () -> Obs.set_enabled false)
  @@ fun () ->
  let total = ref 0 in
  for i = 0 to scenarios - 1 do
    total := !total + run_scenario ~seed:(1000 + i)
  done;
  (* Every scenario compared something on every event. *)
  Alcotest.(check bool)
    (Printf.sprintf "substantial comparison volume (%d)" !total)
    true
    (!total >= scenarios * 40);
  (* The memoized path really went through its cache: the registry's
     aggregate hit counter moved during the run. *)
  let snap = Obs.snapshot () in
  let hits =
    match List.assoc_opt "memo.hits" snap.Obs.counters with
    | Some n -> n
    | None -> Alcotest.fail "memo.hits counter not registered"
  in
  Alcotest.(check bool)
    (Printf.sprintf "memo hit count > 0 (got %d)" hits)
    true (hits > 0);
  (* ... and the baselines really ran too. *)
  List.iter
    (fun name ->
      match List.assoc_opt name snap.Obs.counters with
      | Some n when n > 0 -> ()
      | Some 0 -> Alcotest.failf "%s never moved" name
      | _ -> Alcotest.failf "%s not registered" name)
    [
      "baseline.naive.evals";
      "baseline.tree.activations";
      "baseline.automaton.transitions";
    ]

(* The same engines under consumption: restarting every engine at a
   mid-stream instant (fresh window lower bound vs detector reset) keeps
   the verdicts aligned — the memoized path with a moved [after] bound
   against baselines reset and replayed from that point. *)
let test_verdicts_agree_after_restart () =
  let failures = ref 0 in
  for i = 0 to 39 do
    let seed = 5000 + i in
    let prng = Prng.create ~seed in
    let alphabet = Domain.abstract_alphabet 3 in
    let expr =
      Expr_gen.gen prng ~profile:Expr_gen.regular_profile ~alphabet ~depth:3 ()
    in
    let stream = Expr_gen.stream prng ~alphabet ~objects:2 ~length:30 in
    let cut = 10 + (seed mod 10) in
    let eb = Event_base.create () in
    let memo = Memo.create eb in
    let handle = Memo.intern memo expr in
    (* Feed the prefix, then restart detection at the cut instant. *)
    List.iteri
      (fun step (etype, oid) ->
        if step < cut then ignore (Event_base.record eb ~etype ~oid))
      stream;
    let after = Event_base.probe_now eb in
    let tree = Tree_detector.create expr in
    let automaton = Automaton.create expr in
    List.iteri
      (fun step (etype, oid) ->
        if step >= cut then begin
          let occ = Event_base.record eb ~etype ~oid in
          Tree_detector.on_event tree ~etype
            ~timestamp:(Occurrence.timestamp occ);
          Automaton.on_event automaton ~etype;
          let at = Event_base.probe_now eb in
          let memo_verdict = Memo.active_handle memo ~after ~at handle in
          if
            not
              (memo_verdict = Tree_detector.active tree
              && memo_verdict = Automaton.active automaton)
          then begin
            incr failures;
            Alcotest.failf
              "seed %d step %d expr %s: memo=%b tree=%b automaton=%b" seed
              step (Expr.to_string expr) memo_verdict
              (Tree_detector.active tree)
              (Automaton.active automaton)
          end
        end)
      stream
  done;
  Alcotest.(check int) "no disagreements" 0 !failures

(* ------------------------------------------- wake-mode differential *)

(* The indexed wake (subscription table + dirty-set drain) against the
   per-block sweep, at full engine level: the same seeded rules and the
   same operation history through two engines differing only in
   [Trigger_support.wake] must show identical rule behaviour after every
   line — same considerations, executions, firings and recorded events —
   and identical ts values for every rule expression at the end.  The
   160 seeds reuse the two seed ranges above; the second range commits
   mid-stream so the dirty set also survives a window restart. *)

let wake_rule name event =
  {
    Rule.name;
    target = None;
    event;
    condition = [];
    action = [];
    coupling = Rule.Immediate;
    consumption = Rule.Consuming;
    priority = 0;
  }

(* Abstract alphabet types mapped onto store events the engine can
   actually generate (same trick as the trigger suite). *)
let to_domain =
  Expr.map_primitives (fun p ->
      match Event_type.to_string p with
      | "evA(obj)" -> Domain.create_stock
      | "evB(obj)" -> Domain.modify_stock_quantity
      | _ -> Domain.delete_stock)

let wake_engine ~wake exprs =
  let config =
    {
      Engine.default_config with
      Engine.trigger =
        { Trigger_support.default_config with Trigger_support.wake };
    }
  in
  let engine = Engine.create ~config (Domain.schema ()) in
  List.iteri
    (fun i e ->
      match Engine.define engine (wake_rule (Printf.sprintf "r%d" i) e) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "define: %a" Engine.pp_error e)
    exprs;
  engine

let wake_step engine (kind, idx) =
  let live = Object_store.extent (Engine.store engine) ~class_name:"stock" in
  let op =
    match (kind, live) with
    | 0, _ | _, [] ->
        Domain.new_stock ~quantity:(10 + idx) ~maxquantity:100 ~minquantity:0
    | 1, l ->
        Operation.Modify
          {
            oid = List.nth l (idx mod List.length l);
            attribute = "quantity";
            value = Value.Int idx;
          }
    | _, l -> Operation.Delete { oid = List.nth l (idx mod List.length l) }
  in
  match Engine.execute_line engine [ op ] with
  | Ok () -> ()
  | Error e -> Alcotest.failf "line: %a" Engine.pp_error e

let wake_fingerprint engine =
  let s = Engine.statistics engine in
  ( s.Engine.considerations,
    s.Engine.executions,
    s.Engine.events,
    s.Engine.trigger_stats.Trigger_support.fired )

let run_wake_scenario ~seed ~commit_at =
  let prng = Prng.create ~seed in
  let alphabet = Domain.abstract_alphabet 3 in
  let nexprs = 1 + (seed mod 4) in
  let exprs =
    List.init nexprs (fun _ ->
        to_domain
          (Expr_gen.gen prng ~profile:Expr_gen.boolean_profile ~alphabet
             ~depth:(1 + (seed mod 4)) ()))
  in
  let history =
    List.init 25 (fun _ ->
        (Prng.next_int prng ~bound:3, Prng.next_int prng ~bound:8))
  in
  let sweep = wake_engine ~wake:Trigger_support.Sweep exprs in
  let indexed = wake_engine ~wake:Trigger_support.Indexed exprs in
  List.iteri
    (fun step opspec ->
      wake_step sweep opspec;
      wake_step indexed opspec;
      (match commit_at with
      | Some cut when step = cut ->
          let ok = function
            | Ok () -> ()
            | Error e -> Alcotest.failf "commit: %a" Engine.pp_error e
          in
          ok (Engine.commit sweep);
          ok (Engine.commit indexed)
      | _ -> ());
      if wake_fingerprint sweep <> wake_fingerprint indexed then
        let c, x, v, f = wake_fingerprint sweep
        and c', x', v', f' = wake_fingerprint indexed in
        Alcotest.failf
          "seed %d step %d: sweep cons=%d exec=%d events=%d fired=%d vs \
           indexed cons=%d exec=%d events=%d fired=%d"
          seed step c x v f c' x' v' f')
    history;
  (* ts agreement: both logs are identical, and both memo caches — fed
     through entirely different probe schedules — must agree on every
     rule's activation timestamp at the end. *)
  let at = Event_base.probe_now (Engine.event_base sweep) in
  List.iter
    (fun e ->
      let a = Memo.ts (Engine.memo sweep) ~after:Time.origin ~at e in
      let b = Memo.ts (Engine.memo indexed) ~after:Time.origin ~at e in
      if a <> b then
        Alcotest.failf "seed %d expr %s: ts sweep=%d indexed=%d" seed
          (Expr.to_string e) a b)
    exprs

let test_wake_modes_agree () =
  for i = 0 to scenarios - 1 do
    run_wake_scenario ~seed:(1000 + i) ~commit_at:None
  done;
  for i = 0 to 39 do
    let seed = 5000 + i in
    run_wake_scenario ~seed ~commit_at:(Some (10 + (seed mod 10)))
  done

(* -------------------------------- windowed ≡ unwindowed differential *)

(* Sliding-window retirement must be invisible: the same seeded rules and
   operation history through a windowed engine (retirement after every
   single line — maximal pressure) and an unwindowed twin (retirement and
   compaction both off, the log grows forever) must show identical rule
   behaviour after every line, identical live-window event-base queries
   at every step, and identical ts values at the end.  The second seed
   range commits and aborts mid-stream, so retirement also survives
   window restarts and the truncation path (aborting with per-type
   horizons advanced past the transaction start). *)

let window_engine ~windowed exprs =
  let config =
    if windowed then
      {
        Engine.default_config with
        Engine.compact_at_commit = None;
        window_events = true;
        retire_in_tx = Some 1;
      }
    else
      {
        Engine.default_config with
        Engine.compact_at_commit = None;
        window_events = false;
        retire_in_tx = None;
      }
  in
  let engine = Engine.create ~config (Domain.schema ()) in
  List.iteri
    (fun i e ->
      match Engine.define engine (wake_rule (Printf.sprintf "r%d" i) e) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "define: %a" Engine.pp_error e)
    exprs;
  engine

let window_fingerprint engine =
  let s = Engine.statistics engine in
  ( s.Engine.lines,
    s.Engine.blocks,
    s.Engine.considerations,
    s.Engine.executions,
    s.Engine.operations,
    s.Engine.events,
    s.Engine.trigger_stats.Trigger_support.fired )

let domain_types =
  [ Domain.create_stock; Domain.modify_stock_quantity; Domain.delete_stock ]

(* Live-window agreement: every query the windowed engine can still
   answer exactly (above its horizons) must match the unwindowed log. *)
let check_window_queries ~seed ~step windowed plain =
  let web = Engine.event_base windowed and peb = Engine.event_base plain in
  let now = Event_base.now web in
  if now <> Event_base.now peb then
    Alcotest.failf "seed %d step %d: clocks diverged (%d vs %d)" seed step
      (Time.to_int now)
      (Time.to_int (Event_base.now peb));
  let h = Event_base.horizon web in
  if Time.( <= ) h now then begin
    let live = Window.make ~after:h ~upto:now in
    if
      Event_base.timestamps_in web ~window:live
      <> Event_base.timestamps_in peb ~window:live
    then
      Alcotest.failf "seed %d step %d: timestamps_in diverged above horizon %d"
        seed step (Time.to_int h);
    if
      Event_base.oids_in web ~window:live ~at:now
      <> Event_base.oids_in peb ~window:live ~at:now
    then Alcotest.failf "seed %d step %d: oids_in diverged" seed step
  end;
  List.iter
    (fun etype ->
      (* Type-restricted probes are exact from the type horizon up. *)
      let th = Event_base.type_horizon web etype in
      (match
         ( Event_base.newest_of_type web ~etype,
           Event_base.newest_of_type peb ~etype )
       with
      | Some a, Some b when a = b -> ()
      | None, None -> ()
      | None, Some b when Time.( <= ) b th ->
          (* The type's whole posting list retired: the lost answer sits
             at or below the advertised horizon — the exactness
             contract, not a divergence. *)
          ()
      | _ ->
          Alcotest.failf "seed %d step %d: newest_of_type %s diverged" seed
            step
            (Event_type.to_string etype));
      (* A horizon one past the clock (windows restart at the next
         instant) leaves an empty exact range — nothing to compare. *)
      if Time.( <= ) th now then begin
        if
          Event_base.timestamps_of_types_in web ~types:[ etype ] ~after:th
            ~upto:now
          <> Event_base.timestamps_of_types_in peb ~types:[ etype ] ~after:th
               ~upto:now
        then
          Alcotest.failf
            "seed %d step %d: posting probe for %s diverged above horizon %d"
            seed step (Event_type.to_string etype) (Time.to_int th);
        let tw = Window.make ~after:th ~upto:now in
        if
          Event_base.last_of_type web ~etype ~window:tw ~at:now
          <> Event_base.last_of_type peb ~etype ~window:tw ~at:now
        then
          Alcotest.failf "seed %d step %d: last_of_type %s diverged" seed step
            (Event_type.to_string etype)
      end)
    domain_types

let run_window_scenario ~seed ~commit_at ~abort_at =
  let prng = Prng.create ~seed in
  let alphabet = Domain.abstract_alphabet 3 in
  let nexprs = 1 + (seed mod 4) in
  let exprs =
    List.init nexprs (fun _ ->
        to_domain
          (Expr_gen.gen prng ~profile:Expr_gen.boolean_profile ~alphabet
             ~depth:(1 + (seed mod 4)) ()))
  in
  let history =
    List.init 25 (fun _ ->
        (Prng.next_int prng ~bound:3, Prng.next_int prng ~bound:8))
  in
  let plain = window_engine ~windowed:false exprs in
  let windowed = window_engine ~windowed:true exprs in
  List.iteri
    (fun step opspec ->
      wake_step plain opspec;
      wake_step windowed opspec;
      (match commit_at with
      | Some cut when step = cut ->
          let ok = function
            | Ok () -> ()
            | Error e -> Alcotest.failf "commit: %a" Engine.pp_error e
          in
          ok (Engine.commit plain);
          ok (Engine.commit windowed)
      | _ -> ());
      (match abort_at with
      | Some cut when step = cut ->
          Engine.abort plain;
          Engine.abort windowed
      | _ -> ());
      if window_fingerprint plain <> window_fingerprint windowed then
        let l, b, c, x, o, v, f = window_fingerprint plain
        and l', b', c', x', o', v', f' = window_fingerprint windowed in
        Alcotest.failf
          "seed %d step %d: plain lines=%d blocks=%d cons=%d exec=%d ops=%d \
           events=%d fired=%d vs windowed lines=%d blocks=%d cons=%d \
           exec=%d ops=%d events=%d fired=%d"
          seed step l b c x o v f l' b' c' x' o' v' f'
      else check_window_queries ~seed ~step windowed plain)
    history;
  (* The windowed engine really retired something, or the scenario is not
     exercising the machinery (every line triggers retirement, so the
     only legitimate zero is an empty history). *)
  (if Event_base.horizon (Engine.event_base windowed) = Time.origin then
     let s = Engine.statistics windowed in
     if s.Engine.events > 2 && abort_at = None then
       Alcotest.failf "seed %d: windowed engine never retired (%d events)"
         seed s.Engine.events);
  (* ts agreement over every rule's actual window: retirement is exact
     from each rule's formula window start up (consuming rules advance
     theirs as they fire), and both engines must agree on where that
     window starts and what ts says inside it. *)
  let at = Event_base.probe_now (Engine.event_base plain) in
  let tx_start = Engine.tx_start plain in
  if tx_start <> Engine.tx_start windowed then
    Alcotest.failf "seed %d: tx_start diverged" seed;
  List.iteri
    (fun i e ->
      let name = Printf.sprintf "r%d" i in
      (* An abort drops rules defined in the rolled-back transaction — in
         both twins alike; the clamp horizon for a ruleless type is the
         transaction start. *)
      let window_start engine =
        match Rule_table.find (Engine.rules engine) name with
        | Some rule -> Some (Rule.formula_window_start rule ~tx_start)
        | None -> None
      in
      let after =
        match (window_start plain, window_start windowed) with
        | Some a, Some b when a = b -> a
        | None, None -> tx_start
        | _ -> Alcotest.failf "seed %d rule %s: window starts diverged" seed name
      in
      let a = Memo.ts (Engine.memo plain) ~after ~at e in
      let b = Memo.ts (Engine.memo windowed) ~after ~at e in
      if a <> b then
        Alcotest.failf "seed %d expr %s: ts plain=%d windowed=%d" seed
          (Expr.to_string e) a b)
    exprs

let test_windowed_agrees () =
  for i = 0 to scenarios - 1 do
    run_window_scenario ~seed:(2000 + i) ~commit_at:None ~abort_at:None
  done;
  for i = 0 to 19 do
    let seed = 6000 + i in
    run_window_scenario ~seed
      ~commit_at:(Some (8 + (seed mod 8)))
      ~abort_at:None
  done;
  for i = 0 to 19 do
    let seed = 7000 + i in
    run_window_scenario ~seed ~commit_at:None
      ~abort_at:(Some (8 + (seed mod 8)))
  done

let suite =
  [
    ( Printf.sprintf "%d scenarios x 4 engines agree" scenarios,
      `Quick,
      test_verdicts_agree );
    ("windowed restart keeps agreement", `Quick, test_verdicts_agree_after_restart);
    ( Printf.sprintf "%d scenarios: sweep wake = indexed wake" (scenarios + 40),
      `Quick,
      test_wake_modes_agree );
    ( Printf.sprintf "%d scenarios: windowed = unwindowed" (scenarios + 40),
      `Quick,
      test_windowed_agrees );
  ]
