(* The shared memoized evaluation path (the engine default): equivalence
   with both plain styles over every window restart point, engine-level
   equivalence across detrigger/commit/compaction boundaries, cross-rule
   structural sharing, eviction transparency, and the O(1)
   duplicate-rejecting timer registry. *)

open Core

(* ------------------------------------------------- style equivalence *)

(* The tentpole property: for every generated history and expression, the
   memoized evaluator agrees with both provably-equal plain styles at
   every (window start, probe instant) pair — and cached answers do not
   drift on a second probe. *)
let memo_equals_both_styles =
  Gen.qcheck ~count:200 "memo = logical = algebraic over moving windows"
    (Gen.arb_history_and_expr Gen.Full)
    (fun (h, e) ->
      let eb = Gen.build_event_base h in
      let memo = Memo.create eb in
      let upto = Event_base.probe_now eb in
      let instants = Gen.probe_instants eb in
      List.for_all
        (fun after ->
          let window = Window.make ~after ~upto in
          let logical = Ts.env ~style:Ts.Logical eb ~window in
          let algebraic = Ts.env ~style:Ts.Algebraic eb ~window in
          List.for_all
            (fun at ->
              let v = Memo.ts memo ~after ~at e in
              v = Ts.ts logical ~at e
              && v = Ts.ts algebraic ~at e
              (* probe twice: the cached answer must not drift *)
              && v = Memo.ts memo ~after ~at e)
            instants)
        (Gen.window_starts eb))

(* Instance-oriented formulas through the cache: the [occurred] and [at]
   condition atoms must see the same objects and instants. *)
let memo_formulas_equal_ts =
  Gen.qcheck ~count:200 "memoized occurred/at = plain"
    (QCheck.make
       ~print:(fun (h, e) ->
         Printf.sprintf "history=[%s] expr=%s" (Gen.print_history h)
           (Expr.inst_to_string e))
       QCheck.Gen.(pair Gen.gen_history Gen.gen_inst_expr))
    (fun (h, e) ->
      let eb = Gen.build_event_base h in
      let memo = Memo.create eb in
      let at = Event_base.probe_now eb in
      List.for_all
        (fun after ->
          let window = Window.make ~after ~upto:at in
          let env = Ts.env eb ~window in
          let plain_objs = List.sort compare (Ts.occurred_objects env ~at e) in
          let memo_objs =
            List.sort compare (Memo.occurred_objects memo ~after ~at e)
          in
          plain_objs = memo_objs
          && List.for_all
               (fun oid ->
                 Ts.occurrence_instants env ~at e oid
                 = Memo.occurrence_instants memo ~after ~at e oid)
               plain_objs)
        (Gen.window_starts eb))

(* Eviction transparency: a cache too small to hold anything still gives
   the right answers (values are dropped, never corrupted). *)
let memo_eviction_transparent =
  Gen.qcheck ~count:150 "eviction keeps answers exact"
    (Gen.arb_history_and_expr Gen.Full)
    (fun (h, e) ->
      let eb = Gen.build_event_base h in
      let memo = Memo.create ~max_entries:2 eb in
      let env = Gen.ts_env eb in
      List.for_all
        (fun at -> Ts.ts env ~at e = Memo.ts memo ~after:Time.origin ~at e)
        (Gen.probe_instants eb))

(* --------------------------------------------- engine-level equality *)

(* The same random inventory traffic through two engines differing only
   in [memoize]; stores and counters must end identical.  With
   [compact_at_commit = Some 1] every commit also swaps the event base,
   exercising the [Memo.restart] rebind path. *)
let drive_inventory ~memoize ~compact =
  let config =
    {
      Engine.default_config with
      Engine.compact_at_commit = (if compact then Some 1 else None);
      trigger =
        (* Sweep wake: the indexed wake filters the probe stream so hard
           that this workload produces no repeated probes, and the point
           here is to exercise the cache (asserted below). *)
        {
          Trigger_support.default_config with
          Trigger_support.memoize;
          wake = Trigger_support.Sweep;
        };
    }
  in
  let engine = Scenario.engine ~config () in
  let ok = function
    | Ok () -> ()
    | Error e -> Alcotest.failf "engine error: %a" Engine.pp_error e
  in
  List.iter
    (fun seed ->
      let prng = Prng.create ~seed in
      Scenario.run_inventory_traffic prng engine ~lines:30 ~ops_per_line:3;
      ok (Engine.commit engine))
    [ 4242; 777; 31337 ];
  let store = Engine.store engine in
  let dump class_name =
    List.map
      (fun oid ->
        let quantity =
          match Object_store.get store oid ~attribute:"quantity" with
          | Ok v -> Value.to_string v
          | Error _ -> "-"
        in
        (Ident.Oid.to_int oid, quantity))
      (Object_store.extent store ~class_name)
  in
  let stats = Engine.statistics engine in
  ( dump "stock",
    dump "stockOrder",
    (stats.Engine.executions, stats.Engine.considerations, stats.Engine.events),
    stats )

let test_engine_equivalence ~compact () =
  let s_on, o_on, c_on, stats_on = drive_inventory ~memoize:true ~compact in
  let s_off, o_off, c_off, _ = drive_inventory ~memoize:false ~compact in
  Alcotest.(check (list (pair int string))) "stock store identical" s_off s_on;
  Alcotest.(check (list (pair int string)))
    "stockOrder store identical" o_off o_on;
  let pp_counts (e, c, v) = Printf.sprintf "exec=%d cons=%d events=%d" e c v in
  Alcotest.(check string) "counters identical" (pp_counts c_off)
    (pp_counts c_on);
  Alcotest.(check bool) "memoized path did cache" true
    (stats_on.Engine.memo_hits > 0)

(* ------------------------------------------------ cross-rule sharing *)

let test_structural_sharing () =
  let eb = Event_base.create () in
  let memo = Memo.create eb in
  let a = Expr.prim Gen.alphabet.(0) and b = Expr.prim Gen.alphabet.(1) in
  let shared = Expr.conj a b in
  let _r1 = Memo.intern memo shared in
  let n1 = Memo.node_count memo in
  (* A second "rule" reusing the subexpression adds only its new nodes. *)
  let _r2 = Memo.intern memo (Expr.seq shared (Expr.prim Gen.alphabet.(2))) in
  Alcotest.(check int) "two nodes added" (n1 + 2) (Memo.node_count memo);
  let _r3 = Memo.intern memo shared in
  Alcotest.(check int) "re-interning adds nothing" (n1 + 2)
    (Memo.node_count memo)

let test_engine_exposes_memo_counters () =
  let engine = Scenario.engine () in
  let prng = Prng.create ~seed:7 in
  Scenario.run_inventory_traffic prng engine ~lines:10 ~ops_per_line:3;
  let stats = Engine.statistics engine in
  Alcotest.(check bool) "nodes interned" true (stats.Engine.memo_nodes > 0);
  Alcotest.(check bool) "probes went through the cache" true
    (stats.Engine.memo_hits + stats.Engine.memo_misses > 0);
  Alcotest.(check int) "engine memo is the shared one"
    stats.Engine.memo_nodes
    (Memo.node_count (Engine.memo engine))

(* -------------------------------------------------------- timers *)

let test_duplicate_timer_rejected () =
  let engine = Engine.create (Schema.create ()) in
  let _ = Engine.define_timer engine ~name:"tick" ~period_lines:3 in
  (match Engine.define_timer engine ~name:"tick" ~period_lines:5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate timer name accepted");
  Alcotest.(check (list string)) "registry unchanged by rejection"
    [ "tick" ]
    (Engine.timer_names engine);
  let _ = Engine.define_timer engine ~name:"tock" ~period_lines:2 in
  Alcotest.(check (list string)) "definition order preserved"
    [ "tick"; "tock" ]
    (Engine.timer_names engine)

let suite =
  [
    memo_equals_both_styles;
    memo_formulas_equal_ts;
    memo_eviction_transparent;
    Alcotest.test_case "engine: memo on = off" `Quick
      (test_engine_equivalence ~compact:false);
    Alcotest.test_case "engine: memo on = off under compaction" `Quick
      (test_engine_equivalence ~compact:true);
    Alcotest.test_case "cross-rule structural sharing" `Quick
      test_structural_sharing;
    Alcotest.test_case "engine exposes memo counters" `Quick
      test_engine_exposes_memo_counters;
    Alcotest.test_case "duplicate timer rejected" `Quick
      test_duplicate_timer_rejected;
  ]
