(* Foundations: the even/odd clock discipline, the deterministic PRNG, and
   the growable vector's binary searches. *)

open Core

let test_clock_discipline () =
  let clock = Time.Clock.create () in
  let t1 = Time.Clock.next_event_instant clock in
  let t2 = Time.Clock.next_event_instant clock in
  Alcotest.(check bool) "event instants are even" true
    (Time.is_event_instant t1 && Time.is_event_instant t2);
  Alcotest.(check bool) "strictly increasing" true (Time.( < ) t1 t2);
  Alcotest.(check bool) "probe between any two events" true
    (Time.is_probe_instant (Time.probe_before t2)
    && Time.( < ) t1 (Time.probe_before t2));
  let probe = Time.Clock.probe_now clock in
  Alcotest.(check bool) "probe_now after all events" true
    (Time.is_probe_instant probe && Time.( > ) probe t2)

let test_clock_advance () =
  let clock = Time.Clock.create () in
  Time.Clock.advance_to clock (Time.of_int 100);
  let t = Time.Clock.next_event_instant clock in
  Alcotest.(check bool) "past the advance" true (Time.( > ) t (Time.of_int 100))

let test_prng_deterministic () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  let xs = List.init 20 (fun _ -> Prng.next_int a ~bound:1000) in
  let ys = List.init 20 (fun _ -> Prng.next_int b ~bound:1000) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys;
  let c = Prng.create ~seed:43 in
  let zs = List.init 20 (fun _ -> Prng.next_int c ~bound:1000) in
  Alcotest.(check bool) "different seed, different stream" true (xs <> zs)

let test_prng_bounds () =
  let p = Prng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Prng.next_int p ~bound:10 in
    if v < 0 || v >= 10 then Alcotest.fail "out of bounds"
  done;
  let f = Prng.next_float p in
  Alcotest.(check bool) "float in [0,1)" true (f >= 0.0 && f < 1.0);
  match Prng.next_int p ~bound:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected invalid bound"

let test_vec_bisect () =
  let v = Vec.create ~dummy:0 in
  List.iter (Vec.push v) [ 2; 4; 4; 8; 10 ];
  let key x = x in
  Alcotest.(check int) "bisect_right finds last <= 4" 2 (Vec.bisect_right v ~key 4);
  Alcotest.(check int) "bisect_right below all" (-1) (Vec.bisect_right v ~key 1);
  Alcotest.(check int) "bisect_right above all" 4 (Vec.bisect_right v ~key 99);
  Alcotest.(check int) "bisect_after 4 is index 3" 3 (Vec.bisect_after v ~key 4);
  Alcotest.(check int) "bisect_after 10 is length" 5 (Vec.bisect_after v ~key 10)

let test_vec_growth () =
  let v = Vec.create ~dummy:(-1) in
  for i = 0 to 999 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 1000 (Vec.length v);
  Alcotest.(check int) "get" 567 (Vec.get v 567);
  Alcotest.(check (option int)) "last" (Some 999) (Vec.last v);
  Alcotest.(check int) "fold" (999 * 1000 / 2) (Vec.fold ( + ) 0 v);
  match Vec.get v 1000 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected out of bounds"

let test_pretty_table () =
  let t =
    Pretty.table ~title:"demo" ~header:[ "name"; "value" ]
      ~aligns:[ Pretty.Left; Pretty.Right ] ()
  in
  Pretty.add_row t [ "a"; "1" ];
  Pretty.add_row t [ "long-name"; "12345" ];
  let rendered = Pretty.render t in
  Alcotest.(check bool) "has title" true (Astring_contains.contains rendered "demo");
  Alcotest.(check bool) "has separator" true (Astring_contains.contains rendered "|-");
  (match Pretty.add_row t [ "wrong" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected arity mismatch");
  Alcotest.(check string) "ns formatting" "1.50us" (Pretty.ns_cell 1500.0);
  Alcotest.(check string) "ms formatting" "2.50ms" (Pretty.ns_cell 2.5e6)

(* --- Monotonic clock ------------------------------------------------- *)

let test_monotime_monotonic () =
  let a = Monotime.now_ns () in
  let b = Monotime.now_ns () in
  let c = Monotime.now_ns () in
  Alcotest.(check bool) "never decreases" true (a <= b && b <= c);
  Alcotest.(check bool) "positive" true (a > 0);
  let s = Monotime.now_s () in
  Alcotest.(check bool) "seconds agree with ns" true
    (Float.abs (s -. (float_of_int c /. 1e9)) < 1.0)

let test_monotime_elapsed_clamp () =
  let since = Monotime.now_ns () in
  Alcotest.(check bool) "elapsed non-negative" true
    (Monotime.elapsed_ns ~since >= 0);
  (* A [since] from the future must clamp to zero, not go negative. *)
  let future = Monotime.now_ns () + 1_000_000_000 in
  Alcotest.(check int) "future since clamps" 0 (Monotime.elapsed_ns ~since:future)

(* --- FNV-1a ----------------------------------------------------------- *)

let test_fnv_full_string () =
  (* Every byte participates: strings sharing a long prefix differ. *)
  let prefix = String.make 200 'x' in
  let h1 = Fnv.hash (prefix ^ "a") and h2 = Fnv.hash (prefix ^ "b") in
  Alcotest.(check bool) "suffix changes hash" true (h1 <> h2);
  Alcotest.(check bool) "non-negative" true (h1 >= 0 && h2 >= 0);
  Alcotest.(check int) "deterministic" h1 (Fnv.hash (prefix ^ "a"));
  let s1 = Fnv.hash_seeded ~seed:1 "key" and s2 = Fnv.hash_seeded ~seed:2 "key" in
  Alcotest.(check bool) "seeds give distinct partitionings" true (s1 <> s2)

(* Shard-pinning skew regression (the bug this PR fixes): [Session.Manager]
   used to pin via [Hashtbl.hash sid mod engines] over dense integer
   session ids.  Over the window of sessions a server actually holds at
   once — say 64 consecutive ids — that clusters badly (up to 4x between
   the fullest and emptiest of 4 shards).  FNV-1a over the full id string
   must stay balanced both globally over 10k prefixed ids and over every
   such window. *)

let max_min_ratio counts =
  let mx = Array.fold_left max 0 counts in
  let mn = Array.fold_left min max_int counts in
  float_of_int mx /. float_of_int (Stdlib.max 1 mn)

let skew_over ~shards ~ids pin =
  let counts = Array.make shards 0 in
  List.iter (fun id -> let s = pin id mod shards in counts.(s) <- counts.(s) + 1) ids;
  max_min_ratio counts

let worst_window_skew ~shards ~window pin n =
  (* Worst max/min ratio over any [window] consecutive integer ids. *)
  let worst = ref 1.0 in
  let start = ref 0 in
  while !start + window <= n do
    let ids = List.init window (fun i -> !start + i) in
    let r = skew_over ~shards ~ids pin in
    if r > !worst then worst := r;
    start := !start + window
  done;
  !worst

let test_shard_skew_regression () =
  let n = 10_000 in
  (* 10k prefixed ids, as issued to sessions keyed like [user-00042]. *)
  let prefixed = List.init n (fun i -> Printf.sprintf "user-%08d" i) in
  List.iter
    (fun shards ->
      let r = skew_over ~shards ~ids:prefixed Fnv.hash in
      Alcotest.(check bool)
        (Printf.sprintf "fnv balanced over 10k prefixed ids (/%d): %.2f" shards r)
        true (r <= 1.5))
    [ 4; 8 ];
  (* Windowed: any 64 consecutive integer ids, as [open_session] pins. *)
  let fnv_int i = Fnv.hash (string_of_int i) in
  let fnv_worst = worst_window_skew ~shards:4 ~window:64 fnv_int n in
  Alcotest.(check bool)
    (Printf.sprintf "fnv worst 64-id window (/4): %.2f" fnv_worst)
    true (fnv_worst <= 1.5);
  (* The old scheme fails exactly this bound — keep it as documentation
     that the test would have caught the bug. *)
  let old_pin i = Hashtbl.hash i in
  let old_worst = worst_window_skew ~shards:4 ~window:64 old_pin n in
  Alcotest.(check bool)
    (Printf.sprintf "old Hashtbl.hash pinning skews (/4): %.2f" old_worst)
    true (old_worst > 1.5)

(* --- Mailbox ---------------------------------------------------------- *)

let test_mailbox_basics () =
  let mb = Mailbox.create 2 in
  Alcotest.(check int) "capacity" 2 (Mailbox.capacity mb);
  Alcotest.(check bool) "push 1" true (Mailbox.try_push mb 1);
  Alcotest.(check bool) "push 2" true (Mailbox.try_push mb 2);
  Alcotest.(check bool) "full refuses" false (Mailbox.try_push mb 3);
  Alcotest.(check int) "length" 2 (Mailbox.length mb);
  Alcotest.(check (option int)) "fifo 1" (Some 1) (Mailbox.try_pop mb);
  Alcotest.(check (option int)) "fifo 2" (Some 2) (Mailbox.try_pop mb);
  Alcotest.(check (option int)) "empty" None (Mailbox.try_pop mb)

let test_mailbox_close () =
  let mb = Mailbox.create 4 in
  Alcotest.(check bool) "push before close" true (Mailbox.push mb 10);
  Alcotest.(check bool) "push before close" true (Mailbox.push mb 11);
  Mailbox.close mb;
  Alcotest.(check bool) "closed" true (Mailbox.closed mb);
  Alcotest.(check bool) "push after close refused" false (Mailbox.push mb 12);
  Alcotest.(check bool) "try_push after close refused" false (Mailbox.try_push mb 12);
  (* Pop drains what was enqueued, then reports closure. *)
  Alcotest.(check (option int)) "drain 10" (Some 10) (Mailbox.pop mb);
  Alcotest.(check (option int)) "drain 11" (Some 11) (Mailbox.pop mb);
  Alcotest.(check (option int)) "closed+empty is None" None (Mailbox.pop mb)

let test_mailbox_cross_domain_fifo () =
  (* A tiny-capacity mailbox forces the producer domain to block on a
     full ring while the consumer drains: order must still be FIFO and
     nothing may be lost or duplicated.  [Core] shadows [Domain] with
     the workload module, hence [Stdlib.Domain]. *)
  let n = 10_000 in
  let mb = Mailbox.create 8 in
  let producer =
    Stdlib.Domain.spawn (fun () ->
        for i = 0 to n - 1 do
          if not (Mailbox.push mb i) then failwith "push refused"
        done;
        Mailbox.close mb)
  in
  let next = ref 0 and ok = ref true in
  let rec drain () =
    match Mailbox.pop mb with
    | Some v ->
        if v <> !next then ok := false;
        incr next;
        drain ()
    | None -> ()
  in
  drain ();
  Stdlib.Domain.join producer;
  Alcotest.(check bool) "in order" true !ok;
  Alcotest.(check int) "all delivered" n !next

let test_mailbox_close_wakes_pop () =
  (* A consumer blocked on an empty mailbox must wake when another
     domain closes it. *)
  let mb : int Mailbox.t = Mailbox.create 4 in
  let consumer = Stdlib.Domain.spawn (fun () -> Mailbox.pop mb) in
  Unix.sleepf 0.02;
  Mailbox.close mb;
  Alcotest.(check (option int)) "woken with None" None (Stdlib.Domain.join consumer)

let test_waker () =
  let w = Mailbox.Waker.create () in
  let fd = Mailbox.Waker.fd w in
  (* Nothing pending: fd is not readable. *)
  let r, _, _ = Unix.select [ fd ] [] [] 0.0 in
  Alcotest.(check bool) "idle fd not readable" true (r = []);
  Mailbox.Waker.wake w;
  Mailbox.Waker.wake w;
  (* wakes coalesce *)
  let r, _, _ = Unix.select [ fd ] [] [] 0.5 in
  Alcotest.(check bool) "woken fd readable" true (r <> []);
  Mailbox.Waker.drain w;
  let r, _, _ = Unix.select [ fd ] [] [] 0.0 in
  Alcotest.(check bool) "drained fd not readable" true (r = []);
  Mailbox.Waker.dispose w

(* --- Loadgen percentile ----------------------------------------------- *)

let test_percentile_edges () =
  let pct = Loadgen.percentile in
  Alcotest.(check int) "empty p50" 0 (pct [||] 50.);
  Alcotest.(check int) "empty p99" 0 (pct [||] 99.);
  let one = [| 7 |] in
  List.iter
    (fun p -> Alcotest.(check int) "single sample" 7 (pct one p))
    [ 0.; 50.; 90.; 99.; 100. ];
  let two = [| 1; 9 |] in
  Alcotest.(check int) "two p50" 1 (pct two 50.);
  Alcotest.(check int) "two p90" 9 (pct two 90.);
  Alcotest.(check int) "two p99" 9 (pct two 99.);
  Alcotest.(check int) "two p100" 9 (pct two 100.);
  let hundred = Array.init 100 (fun i -> i + 1) in
  Alcotest.(check int) "hundred p50" 50 (pct hundred 50.);
  Alcotest.(check int) "hundred p90" 90 (pct hundred 90.);
  Alcotest.(check int) "hundred p99" 99 (pct hundred 99.);
  Alcotest.(check int) "hundred p100" 100 (pct hundred 100.);
  Alcotest.(check int) "hundred p0 clamps" 1 (pct hundred 0.);
  Alcotest.(check int) "over 100 clamps" 100 (pct hundred 150.)

(* ------------------------- Vec prefix retirement (offset semantics) *)

(* The sliding-window substrate: after [retire_prefix], absolute indices
   stay stable, live iteration drops exactly the retired prefix, and the
   bisections keep answering over the live region (with [start - 1] as
   the "nothing live at or below" sentinel).  A model list of
   (absolute index, value) pairs is the oracle. *)

let test_vec_retire_basics () =
  let v = Vec.create ~dummy:(-1) in
  for i = 0 to 9 do
    Vec.push v (i * 10)
  done;
  Vec.retire_prefix v 4;
  Alcotest.(check int) "length stays absolute" 10 (Vec.length v);
  Alcotest.(check int) "start advanced" 4 (Vec.start v);
  Alcotest.(check int) "live_length" 6 (Vec.live_length v);
  Alcotest.(check int) "surviving index stable" 70 (Vec.get v 7);
  (match Vec.get v 3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "retired index readable");
  Alcotest.(check (list int)) "to_list is the live suffix"
    [ 40; 50; 60; 70; 80; 90 ] (Vec.to_list v);
  (* Clamps and bounds. *)
  Vec.retire_prefix v 2;
  Alcotest.(check int) "lower bound is a no-op" 4 (Vec.start v);
  (match Vec.retire_prefix v 11 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "retire past length accepted");
  (* Pushes continue the absolute numbering. *)
  Vec.push v 100;
  Alcotest.(check int) "push after retire" 100 (Vec.get v 10);
  (* Bisection over the live region: keys 40..100 at indices 4..10. *)
  let key x = x in
  Alcotest.(check int) "bisect_right live" 6 (Vec.bisect_right v ~key 65);
  Alcotest.(check int) "bisect_right below live" 3 (Vec.bisect_right v ~key 5);
  Alcotest.(check int) "bisect_after" 7 (Vec.bisect_after v ~key 65);
  (* Full retirement: empty live region, indices still absolute. *)
  Vec.retire_prefix v 11;
  Alcotest.(check bool) "empty after full retire" true (Vec.is_empty v);
  Alcotest.(check (option int)) "last on empty" None (Vec.last v);
  Alcotest.(check int) "bisect_right on empty" 10 (Vec.bisect_right v ~key 999);
  Vec.push v 110;
  Alcotest.(check int) "numbering continues" 110 (Vec.get v 11)

let test_vec_retire_truncate_interplay () =
  (* truncate below start is the abort-after-retire edge: rejected, the
     vector unchanged. *)
  let v = Vec.create ~dummy:(-1) in
  for i = 0 to 9 do
    Vec.push v i
  done;
  Vec.retire_prefix v 5;
  (match Vec.truncate v 3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "truncate below start accepted");
  Vec.truncate v 7;
  Alcotest.(check int) "truncate above start works" 7 (Vec.length v);
  Alcotest.(check (list int)) "live window" [ 5; 6 ] (Vec.to_list v)

let test_vec_retire_qcheck =
  Gen.qcheck ~count:500 "vec retire/push/bisect ≡ model"
    QCheck.(
      pair (int_bound 1_000_000)
        (small_list (pair (int_bound 2) small_nat)))
    (fun (seed, script) ->
      ignore seed;
      let v = Vec.create ~dummy:(-1) in
      (* model: (absolute index, value) assoc of the live region, plus
         the absolute length *)
      let model = ref [] and next = ref 0 in
      let sorted_push x =
        (* values pushed non-decreasing so bisection's precondition
           holds: use the running maximum *)
        let x = match !model with (_, m) :: _ when m > x -> m | _ -> x in
        model := (!next, x) :: !model;
        Vec.push v x;
        incr next
      in
      List.iter
        (fun (op, n) ->
          match op with
          | 0 -> sorted_push n
          | 1 ->
              (* retire a random prefix bound within [0, length] *)
              let bound = min n !next in
              Vec.retire_prefix v bound;
              model := List.filter (fun (i, _) -> i >= bound) !model
          | _ -> (
              (* probe: live view and a bisection agree with the model *)
              let live = List.rev !model in
              if Vec.to_list v <> List.map snd live then
                QCheck.Test.fail_report "live view diverged";
              if Vec.length v <> !next then
                QCheck.Test.fail_report "absolute length diverged";
              if Vec.live_length v <> List.length live then
                QCheck.Test.fail_report "live_length diverged";
              let expect =
                List.fold_left
                  (fun acc (i, x) -> if x <= n then max acc i else acc)
                  (Vec.start v - 1) live
              in
              if Vec.bisect_right v ~key:(fun x -> x) n <> expect then
                QCheck.Test.fail_report "bisect_right diverged";
              match live with
              | [] -> ()
              | (i0, x0) :: _ ->
                  if Vec.get v i0 <> x0 then
                    QCheck.Test.fail_report "first live index diverged"))
        script;
      true)

let suite =
  [
    Alcotest.test_case "clock discipline" `Quick test_clock_discipline;
    Alcotest.test_case "clock advance" `Quick test_clock_advance;
    Alcotest.test_case "prng determinism" `Quick test_prng_deterministic;
    Alcotest.test_case "prng bounds" `Quick test_prng_bounds;
    Alcotest.test_case "vec bisect" `Quick test_vec_bisect;
    Alcotest.test_case "vec growth" `Quick test_vec_growth;
    Alcotest.test_case "vec prefix retirement" `Quick test_vec_retire_basics;
    Alcotest.test_case "vec retire/truncate interplay" `Quick
      test_vec_retire_truncate_interplay;
    test_vec_retire_qcheck;
    Alcotest.test_case "pretty tables" `Quick test_pretty_table;
    Alcotest.test_case "monotime monotonic" `Quick test_monotime_monotonic;
    Alcotest.test_case "monotime elapsed clamp" `Quick test_monotime_elapsed_clamp;
    Alcotest.test_case "fnv full-string" `Quick test_fnv_full_string;
    Alcotest.test_case "shard skew regression" `Quick test_shard_skew_regression;
    Alcotest.test_case "mailbox basics" `Quick test_mailbox_basics;
    Alcotest.test_case "mailbox close" `Quick test_mailbox_close;
    Alcotest.test_case "mailbox cross-domain fifo" `Quick
      test_mailbox_cross_domain_fifo;
    Alcotest.test_case "mailbox close wakes pop" `Quick
      test_mailbox_close_wakes_pop;
    Alcotest.test_case "waker" `Quick test_waker;
    Alcotest.test_case "percentile edges" `Quick test_percentile_edges;
  ]
