(* The replication suite: the REPL_* wire frames in isolation, the
   backoff schedule, journal tailing across rotation (including crashes
   at every durability failpoint), the reactor surviving a hard RST with
   replies buffered, the load generator's bounded connect retry — and a
   full in-process failover drill: primary and warm standby polled
   co-operatively in one thread, semi-synchronous commit gating, loss of
   the primary, promotion, and a journal differential between the two
   data directories. *)

open Core

let mf = Protocol.default_max_frame

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let boot_script =
  "define class item (n: integer);\n\
   define class audit (tag: string);\n\
   define immediate trigger onItem for item\n\
  \  events { create(item) }\n\
  \  condition item(I), occurred({ create(item) }, I), I.n > 0\n\
  \  actions create audit(tag = \"item\")\n\
   end;\n"

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let tmp_dir name =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "chimera-repl-%s-%d" name (Unix.getpid ()))
  in
  rm_rf dir;
  Unix.mkdir dir 0o755;
  dir

(* ----------------------------------------------------- protocol frames *)

let test_repl_protocol_roundtrip () =
  let roundtrip_command c =
    match Protocol.command_of_payload (Protocol.command_to_payload c) with
    | Ok c' ->
        Alcotest.(check bool)
          (Printf.sprintf "command %s" (Protocol.command_to_payload c))
          true (c = c')
    | Error msg -> Alcotest.failf "command rejected: %s" msg
  in
  List.iter roundtrip_command
    [
      Protocol.Repl_hello (Protocol.version ^ " 4");
      Protocol.Repl_ack { shard = 0; seq = 0 };
      Protocol.Repl_ack { shard = 3; seq = 123456 };
      Protocol.Promote;
    ];
  let roundtrip_push p =
    match Protocol.push_of_payload (Protocol.push_to_payload p) with
    | Ok p' ->
        Alcotest.(check bool)
          (Printf.sprintf "push %s"
             (String.escaped (Protocol.push_to_payload p)))
          true (p = p')
    | Error msg -> Alcotest.failf "push rejected: %s" msg
  in
  List.iter roundtrip_push
    [
      Protocol.Repl_segment { shard = 0; generation = 1 };
      Protocol.Repl_segment { shard = 7; generation = 42 };
      Protocol.Repl_records { shard = 0; head_seq = 3; data = "x\ty\tz\n" };
      (* Record bytes are arbitrary: embedded newlines and tabs must
         survive the frame untouched. *)
      Protocol.Repl_records
        {
          shard = 2;
          head_seq = 9;
          data = "18\t123\tcommit\t4\nline two\twith\ttabs\n";
        };
    ];
  (* The reactor classifies repl verbs before session dispatch. *)
  List.iter
    (fun (payload, expect) ->
      Alcotest.(check bool)
        (Printf.sprintf "is_repl_payload %S" payload)
        expect
        (Protocol.is_repl_payload payload))
    [
      ("REPL_HELLO chimera/1 2", true);
      ("REPL_ACK 0 17", true);
      ("PROMOTE", true);
      ("LINE create item(n = 1)", false);
      ("REPLY not-a-verb", false);
    ];
  List.iter
    (fun (payload, expect) ->
      Alcotest.(check bool)
        (Printf.sprintf "is_push_payload %S" payload)
        expect
        (Protocol.is_push_payload payload))
    [
      ("REPL_SEGMENT 0 1", true);
      ("REPL_RECORDS 0 3\nraw", true);
      ("REPL_ACK 0 17", false);
      ("OK fine", false);
    ];
  (* Malformed repl frames are rejected, never crash. *)
  List.iter
    (fun payload ->
      match Protocol.command_of_payload payload with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" payload)
    [ "REPL_ACK 0"; "REPL_ACK x y"; "REPL_ACK 0 -1"; "PROMOTE now" ];
  List.iter
    (fun payload ->
      match Protocol.push_of_payload payload with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted push %S" payload)
    [
      "REPL_SEGMENT 0 0" (* generations start at 1 *);
      "REPL_SEGMENT 0";
      "REPL_RECORDS 0 3" (* no record bytes after the head line *);
      "REPL_RECORDS x 3\ndata";
    ]

(* ------------------------------------------------------------ backoff *)

let test_backoff_schedule () =
  let base = 0.05 and cap = 2.0 and jitter = 0.25 in
  (* Deterministic under the seed: two instances, one schedule. *)
  let a = Backoff.create ~base ~cap ~jitter ~seed:7 () in
  let b = Backoff.create ~base ~cap ~jitter ~seed:7 () in
  for i = 0 to 19 do
    let da = Backoff.next a and db = Backoff.next b in
    Alcotest.(check (float 0.)) (Printf.sprintf "attempt %d" i) da db
  done;
  (* Every delay sits in the jitter band of the doubling, capped raw
     schedule, and is strictly positive. *)
  let t = Backoff.create ~base ~cap ~jitter ~seed:99 () in
  for i = 0 to 19 do
    let raw = Float.min cap (base *. (2. ** float_of_int i)) in
    let d = Backoff.next t in
    Alcotest.(check bool)
      (Printf.sprintf "attempt %d in band (%g)" i d)
      true
      (d > 0. && d >= raw *. (1. -. jitter) && d < raw *. (1. +. jitter))
  done;
  Alcotest.(check int) "attempts counted" 20 (Backoff.attempts t);
  (* Reset restarts the raw schedule (the jitter stream keeps going). *)
  Backoff.reset t;
  Alcotest.(check int) "reset zeroes attempts" 0 (Backoff.attempts t);
  let d = Backoff.next t in
  Alcotest.(check bool) "first delay after reset is base-sized" true
    (d >= base *. (1. -. jitter) && d < base *. (1. +. jitter));
  (* Saturation: far past the doubling range the cap bounds every
     delay (2^big overflows to infinity; min must saturate it). *)
  let s = Backoff.create ~base ~cap ~jitter ~seed:1 () in
  for _ = 1 to 80 do ignore (Backoff.next s) done;
  let d = Backoff.next s in
  Alcotest.(check bool) "capped" true (d < cap *. (1. +. jitter));
  (* Invalid parameters are rejected. *)
  List.iter
    (fun f ->
      match f () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "bad backoff accepted")
    [
      (fun () -> Backoff.create ~base:0. ());
      (fun () -> Backoff.create ~base:1.0 ~cap:0.5 ());
      (fun () -> Backoff.create ~jitter:1.0 ());
      (fun () -> Backoff.create ~jitter:(-0.1) ());
    ]

(* ------------------------------------------------------ journal tailing *)

let records_of events =
  List.filter_map
    (function Journal.Tail.Records d -> Some d | _ -> None)
    events

let segments_of events =
  List.filter_map
    (function
      | Journal.Tail.Segment { generation } -> Some generation | _ -> None)
    events

let tags_of_data data =
  String.split_on_char '\n' data
  |> List.filter (fun l -> l <> "")
  |> List.map (fun l ->
         match Journal.entry_of_line l with
         | Ok e -> e.Journal.tag
         | Error msg -> Alcotest.failf "bad record %S: %s" l msg)

let test_tail_commit_prefix () =
  let dir = tmp_dir "tail-prefix" in
  let path = Filename.concat dir "shard-0.journal" in
  let j = Journal.create ~sync:Journal.Never ~path () in
  let tail = Journal.Tail.create ~path () in
  (* First poll opens the segment. *)
  Alcotest.(check (list int)) "segment 1" [ 1 ]
    (segments_of (Journal.Tail.poll tail));
  (* Uncommitted records are held back... *)
  Journal.append j ~tag:"a" "1";
  Journal.append j ~tag:"b" "2";
  Journal.flush_block j;
  Alcotest.(check int) "held back before the marker" 0
    (List.length (records_of (Journal.Tail.poll tail)));
  (* ...and ship as one prefix once the commit marker lands. *)
  Journal.commit j;
  let tags =
    List.concat_map tags_of_data (records_of (Journal.Tail.poll tail))
  in
  Alcotest.(check (list string)) "committed prefix" [ "a"; "b"; "commit" ] tags;
  (* An abort ships too: the follower's replay machinery discards it. *)
  Journal.append j ~tag:"c" "3";
  Journal.flush_block j;
  Alcotest.(check int) "held back again" 0
    (List.length (records_of (Journal.Tail.poll tail)));
  Journal.abort j;
  let tags =
    List.concat_map tags_of_data (records_of (Journal.Tail.poll tail))
  in
  Alcotest.(check (list string)) "aborted prefix" [ "c"; "abort" ] tags;
  Journal.close j;
  Journal.Tail.close tail;
  rm_rf dir

(* Pump tail events into a sink the way the standby does: [Segment]
   resets, [Records] append raw bytes.  Runs until two quiet polls. *)
let pump tail sink =
  let rec go quiet =
    if quiet < 2 then begin
      let evs = Journal.Tail.poll tail in
      List.iter
        (function
          | Journal.Tail.Segment _ -> Journal.Sink.reset sink
          | Journal.Tail.Records data -> Journal.Sink.write sink data)
        evs;
      go (if evs = [] then quiet + 1 else 0)
    end
  in
  go 0

let check_replay_equal what ~src ~copy =
  match (Journal.read ~path:src, Journal.read ~path:copy) with
  | Ok a, Ok b ->
      Alcotest.(check int)
        (what ^ ": last_commit_seq")
        a.Journal.last_commit_seq b.Journal.last_commit_seq;
      Alcotest.(check bool)
        (what ^ ": committed transactions identical")
        true
        (a.Journal.committed = b.Journal.committed);
      Alcotest.(check int)
        (what ^ ": nothing uncommitted in the copy")
        0 b.Journal.uncommitted_entries
  | Error msg, _ -> Alcotest.failf "%s: source unreadable: %s" what msg
  | _, Error msg -> Alcotest.failf "%s: copy unreadable: %s" what msg

let test_tail_across_rotation () =
  let dir = tmp_dir "tail-rotate" in
  let src = Filename.concat dir "shard-0.journal" in
  let copy = Filename.concat dir "copy.journal" in
  let j = Journal.create ~sync:Journal.Never ~path:src () in
  (* A small chunk forces [Records] splitting at record boundaries. *)
  let tail = Journal.Tail.create ~chunk:1024 ~path:src () in
  let sink = Journal.Sink.create ~sync:Journal.Never ~path:copy () in
  for i = 1 to 5 do
    Journal.append j ~tag:"op" (Printf.sprintf "pre-%d" i);
    Journal.commit j
  done;
  pump tail sink;
  check_replay_equal "before rotation" ~src ~copy;
  (* Rotate: the checkpoint base replaces history; the tail must reset
     the sink and ship the new segment from its start — nothing dropped,
     nothing duplicated. *)
  Journal.rotate j ~base:[ ("ckpt", "state-at-5"); ("ckpt", "more") ];
  for i = 1 to 3 do
    Journal.append j ~tag:"op" (Printf.sprintf "post-%d" i);
    Journal.commit j
  done;
  pump tail sink;
  Alcotest.(check int) "tail saw the second segment" 2
    (Journal.Tail.generation tail);
  check_replay_equal "after rotation" ~src ~copy;
  (match Journal.read ~path:copy with
  | Ok r ->
      Alcotest.(check int) "checkpoint + 3 transactions" 4
        (List.length r.Journal.committed)
  | Error msg -> Alcotest.fail msg);
  Journal.close j;
  Journal.Tail.close tail;
  Journal.Sink.close sink;
  rm_rf dir

(* Crash the writer at every failpoint inside rotation — torn segment
   writes, the rename, the directory sync — and check the tail + sink
   still converge to exactly what the surviving source segment replays
   to.  The dirsync site is the interesting one: the rename is visible
   but not yet durable, and the tail follows the new inode. *)
let test_tail_rotation_failpoints () =
  (* Setup runs disarmed; only the rotation itself is inside the blast
     radius, so the crash budget indexes its sites exactly. *)
  let scenario ~after =
    let dir = tmp_dir (Printf.sprintf "tail-crash-%d" after) in
    let src = Filename.concat dir "shard-0.journal" in
    let copy = Filename.concat dir "copy.journal" in
    let j = Journal.create ~sync:Journal.Per_commit ~path:src () in
    let tail = Journal.Tail.create ~path:src () in
    let sink = Journal.Sink.create ~sync:Journal.Never ~path:copy () in
    for i = 1 to 3 do
      Journal.append j ~tag:"op" (Printf.sprintf "tx-%d" i);
      Journal.commit j
    done;
    pump tail sink;
    Failpoint.arm ~after ();
    let crashed =
      try
        Journal.rotate j ~base:[ ("ckpt", "base") ];
        false
      with Failpoint.Crash _ -> true
    in
    let hits = Failpoint.total_hits () in
    Failpoint.clear ();
    (* The "process" died (or survived); the tail keeps polling and the
       sink must land on the replay of whatever segment now lives at
       the path. *)
    pump tail sink;
    check_replay_equal (Printf.sprintf "crash point %d" after) ~src ~copy;
    (try Journal.close j with _ -> ());
    Journal.Tail.close tail;
    Journal.Sink.close sink;
    rm_rf dir;
    (crashed, hits)
  in
  (* Fault-free pass first, counting the sites a rotation crosses. *)
  let _, total = scenario ~after:max_int in
  Alcotest.(check bool) "rotation crosses failpoints" true (total > 0);
  for k = 0 to total - 1 do
    let crashed, _ = scenario ~after:k in
    Alcotest.(check bool)
      (Printf.sprintf "crash at site %d/%d" k total)
      true crashed
  done

(* ------------------------------------------------- socket test harness *)

(* Like the suite_server client, but every wait interleaves polls of a
   LIST of servers — a primary and its standby run co-operatively in
   this one thread. *)

type client = { fd : Unix.file_descr; mutable buf : Bytes.t; mutable len : int }

let poll_all servers =
  List.iter (fun srv -> ignore (Server.poll srv ~timeout:0.002)) servers

let connect_port port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.set_nonblock fd;
  { fd; buf = Bytes.create 4096; len = 0 }

let connect srv = connect_port (Server.port srv)
let close_client c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let client_read c =
  let chunk = Bytes.create 4096 in
  match Unix.read c.fd chunk 0 (Bytes.length chunk) with
  | 0 -> `Eof
  | n ->
      let need = c.len + n in
      if Bytes.length c.buf < need then begin
        let grown = Bytes.create (max need (2 * Bytes.length c.buf)) in
        Bytes.blit c.buf 0 grown 0 c.len;
        c.buf <- grown
      end;
      Bytes.blit chunk 0 c.buf c.len n;
      c.len <- need;
      `Read
  | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _)
    ->
      `Nothing
  | exception Unix.Unix_error _ -> `Eof

let send_raw servers c s =
  let rec go off =
    if off < String.length s then
      match Unix.write_substring c.fd s off (String.length s - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error
          ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _) ->
          poll_all servers;
          go off
  in
  go 0

let send servers c cmd =
  send_raw servers c
    (Protocol.frame_exn ~max_frame:mf (Protocol.command_to_payload cmd))

let recv ?(polls = 400) servers c =
  let take () =
    match Protocol.decode ~max_frame:mf c.buf ~off:0 ~len:c.len with
    | Protocol.Frame (payload, used) ->
        Bytes.blit c.buf used c.buf 0 (c.len - used);
        c.len <- c.len - used;
        (match Protocol.reply_of_payload payload with
        | Ok r -> Some r
        | Error msg -> Alcotest.failf "unparsable reply %S: %s" payload msg)
    | _ -> None
  in
  let rec go polls =
    match take () with
    | Some r -> `Reply r
    | None ->
        if polls <= 0 then `Timeout
        else begin
          poll_all servers;
          match client_read c with
          | `Eof -> ( match take () with Some r -> `Reply r | None -> `Eof)
          | `Read | `Nothing -> go (polls - 1)
        end
  in
  go polls

let expect_ok servers c what =
  match recv servers c with
  | `Reply (Protocol.Ok_ s) -> s
  | `Reply r ->
      Alcotest.failf "%s: expected OK, got %s" what (Protocol.reply_to_payload r)
  | `Eof -> Alcotest.failf "%s: connection closed" what
  | `Timeout -> Alcotest.failf "%s: no reply" what

let expect_triggered servers c what =
  match recv servers c with
  | `Reply (Protocol.Triggered rules) -> rules
  | `Reply r ->
      Alcotest.failf "%s: expected TRIGGERED, got %s" what
        (Protocol.reply_to_payload r)
  | `Eof | `Timeout -> Alcotest.failf "%s: no TRIGGERED reply" what

let expect_err servers c code what =
  match recv servers c with
  | `Reply (Protocol.Err (got, msg)) ->
      Alcotest.(check string) (what ^ ": code") code got;
      msg
  | `Reply r ->
      Alcotest.failf "%s: expected ERR %s, got %s" what code
        (Protocol.reply_to_payload r)
  | `Eof -> Alcotest.failf "%s: connection closed" what
  | `Timeout -> Alcotest.failf "%s: no reply" what

let hello ?(key = "") servers c =
  send servers c (Protocol.Hello (Protocol.version ^ key));
  ignore (expect_ok servers c "hello")

let stop_server srv =
  Server.request_drain srv;
  let rec go n =
    if n = 0 then Alcotest.fail "server did not stop on drain"
    else
      match Server.poll srv ~timeout:0.005 with
      | Server.Stopped -> ()
      | Server.Running -> go (n - 1)
  in
  go 1000

(* --------------------------------------- hard close with buffered data *)

(* A client that RSTs its socket (SO_LINGER 0) while replies are still
   owed must cost the server exactly that one connection: the write
   surfaces EPIPE/ECONNRESET, never SIGPIPE, and other sessions keep
   being served. *)
let test_hard_close_keeps_serving () =
  let config =
    { Server.default_config with Server.boot_script = Some boot_script }
  in
  match Server.create { config with Server.port = 0 } with
  | Error msg -> Alcotest.fail msg
  | Ok srv ->
      Fun.protect ~finally:(fun () -> stop_server srv) @@ fun () ->
      let servers = [ srv ] in
      let c1 = connect srv in
      hello servers c1;
      (* Pipeline a burst of lines and never read the replies: the
         server buffers them against this connection. *)
      let buf = Buffer.create 4096 in
      for _ = 1 to 64 do
        Buffer.add_string buf
          (Protocol.frame_exn ~max_frame:mf
             (Protocol.command_to_payload
                (Protocol.Line "create item(n = 1)")))
      done;
      send_raw servers c1 (Buffer.contents buf);
      poll_all servers;
      (* RST: linger zero discards the socket, no FIN handshake. *)
      Unix.setsockopt_optint c1.fd Unix.SO_LINGER (Some 0);
      close_client c1;
      for _ = 1 to 50 do
        poll_all servers
      done;
      (* The reactor survived and still serves a fresh session. *)
      let c2 = connect srv in
      Fun.protect ~finally:(fun () -> close_client c2) @@ fun () ->
      hello servers c2;
      send servers c2 (Protocol.Line "create item(n = 2)");
      ignore (expect_triggered servers c2 "line after RST");
      send servers c2 Protocol.Commit;
      ignore (expect_ok servers c2 "commit after RST");
      Alcotest.(check int) "only the RST'd session died" 1
        (Server.active_conns srv)

(* --------------------------------------------------- loadgen reconnect *)

(* An ephemeral port with nothing behind it: bind, learn the number,
   close — connects to it then get ECONNREFUSED. *)
let free_port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> Alcotest.fail "unexpected socket family"
  in
  Unix.close fd;
  port

let test_loadgen_bounded_retry_gives_up () =
  let config =
    {
      Loadgen.default_config with
      Loadgen.port = free_port ();
      conns = 2;
      lines = 1;
      retry_max = 2;
      retry_base = 0.001;
      retry_cap = 0.004;
      seed = 11;
    }
  in
  match Loadgen.create config with
  | Error msg -> Alcotest.fail msg
  | Ok t ->
      let rec drive n =
        if n = 0 then Alcotest.fail "loadgen did not give up"
        else if not (Loadgen.finished t) then begin
          Loadgen.poll t ~timeout:0.01;
          drive (n - 1)
        end
      in
      drive 2000;
      let r = Loadgen.report t in
      Alcotest.(check int) "every connection failed hard" 2 r.Loadgen.errors;
      Alcotest.(check int) "nothing was sent" 0 r.Loadgen.lines_sent;
      Alcotest.(check bool)
        (Printf.sprintf "retries were scheduled and bounded (%d)"
           r.Loadgen.reconnects)
        true
        (r.Loadgen.reconnects >= 2 && r.Loadgen.reconnects <= 2 * 2)

let test_loadgen_retry_until_server_arrives () =
  let port = free_port () in
  let config =
    {
      Loadgen.default_config with
      Loadgen.port;
      conns = 2;
      lines = 5;
      commit_every = 2;
      retry_max = 12;
      retry_base = 0.002;
      retry_cap = 0.02;
      seed = 5;
    }
  in
  match Loadgen.create config with
  | Error msg -> Alcotest.fail msg
  | Ok t ->
      (* Let it bounce off the dead port a few times... *)
      for _ = 1 to 20 do
        Loadgen.poll t ~timeout:0.002
      done;
      Alcotest.(check bool) "still retrying" false (Loadgen.finished t);
      (* ...then the server shows up on that very port. *)
      let sconfig =
        {
          Server.default_config with
          Server.port;
          boot_script = Some boot_script;
        }
      in
      (match Server.create sconfig with
      | Error msg -> Alcotest.fail msg
      | Ok srv ->
          Fun.protect ~finally:(fun () -> stop_server srv) @@ fun () ->
          let rec drive n =
            if n = 0 then Alcotest.fail "loadgen did not finish"
            else if not (Loadgen.finished t) then begin
              ignore (Server.poll srv ~timeout:0.002);
              Loadgen.poll t ~timeout:0.002;
              drive (n - 1)
            end
          in
          drive 5000;
          let r = Loadgen.report t in
          Alcotest.(check int) "no hard errors" 0 r.Loadgen.errors;
          Alcotest.(check int) "every line acknowledged" 10 r.Loadgen.lines_ok;
          Alcotest.(check bool) "the refusals were retried" true
            (r.Loadgen.reconnects > 0))

(* ------------------------------------------------------ failover drill *)

let repl_caught_up mgr ~commits =
  Array.fold_left (fun acc (seq, _) -> acc + seq) 0
    (Session.Manager.repl_seqs mgr)
  >= commits

let await what servers pred =
  let rec go n =
    if pred () then ()
    else if n = 0 then Alcotest.failf "%s: never happened" what
    else begin
      poll_all servers;
      go (n - 1)
    end
  in
  go 2000

let test_failover_drill () =
  let dir_a = tmp_dir "drill-primary" in
  let dir_b = tmp_dir "drill-standby" in
  let base =
    {
      Server.default_config with
      Server.engines = 2;
      domains = Some 0;
      boot_script = Some boot_script;
    }
  in
  let primary =
    match
      Server.create { base with Server.journal_dir = Some dir_a; port = 0 }
    with
    | Ok s -> s
    | Error msg -> Alcotest.fail msg
  in
  let follower =
    match
      Server.create
        {
          base with
          Server.journal_dir = Some dir_b;
          port = 0;
          follow = Some ("127.0.0.1", Server.port primary);
        }
    with
    | Ok s -> s
    | Error msg -> Alcotest.fail msg
  in
  let both = [ primary; follower ] in
  Alcotest.(check bool) "follower reports standby" true
    (Server.standby follower);
  Alcotest.(check bool) "primary does not" false (Server.standby primary);
  (* The boot transaction (seq 1 on each shard) reaches the standby
     through the stream. *)
  await "initial resync" both (fun () ->
      repl_caught_up (Server.manager follower) ~commits:2);
  (* Writes flow through the primary and replicate. *)
  let c = connect primary in
  hello ~key:" drill" both c;
  send both c (Protocol.Line "create item(n = 41)");
  ignore (expect_triggered both c "primary line");
  send both c Protocol.Commit;
  ignore (expect_ok both c "primary commit");
  await "commit replicated" both (fun () ->
      repl_caught_up (Server.manager follower) ~commits:3);
  (* Semi-synchronous gating: with the standby frozen, a COMMIT reply
     parks; it releases on the standby's ack. *)
  send both c (Protocol.Line "create item(n = 42)");
  ignore (expect_triggered both c "second line");
  send both c Protocol.Commit;
  (match recv ~polls:60 [ primary ] c with
  | `Timeout -> ()
  | `Reply r ->
      Alcotest.failf "commit answered without the follower ack: %s"
        (Protocol.reply_to_payload r)
  | `Eof -> Alcotest.fail "connection closed while parked");
  ignore (expect_ok both c "gated commit releases");
  (* The standby itself refuses writes and says why in STATS. *)
  let cs = connect follower in
  hello both cs;
  send both cs (Protocol.Line "create item(n = 1)");
  ignore (expect_err both cs "standby" "standby write");
  send both cs Protocol.Stats;
  let stats = expect_ok both cs "standby stats" in
  Alcotest.(check bool) "stats mention standby" true
    (contains_sub stats "standby");
  (* The read path stays open on a follower: PING answers too, so a
     health probe needs no primary. *)
  send both cs (Protocol.Ping "probe");
  Alcotest.(check string) "standby answers ping" "pong probe"
    (expect_ok both cs "standby ping");
  close_client cs;
  (* Quit cleanly, then lose the primary. *)
  send both c Protocol.Quit;
  ignore (expect_ok both c "quit");
  close_client c;
  await "fully replicated" both (fun () ->
      repl_caught_up (Server.manager follower) ~commits:4);
  let primary_port = Server.port primary in
  stop_server primary;
  (* Differential: both data directories replay to the same committed
     transactions, shard by shard. *)
  List.iter
    (fun shard ->
      let name = Printf.sprintf "shard-%d.journal" shard in
      check_replay_equal
        (Printf.sprintf "failover differential, shard %d" shard)
        ~src:(Filename.concat dir_a name)
        ~copy:(Filename.concat dir_b name))
    [ 0; 1 ];
  (* Promote: SIGUSR1's handler calls exactly this. *)
  Server.request_promote follower;
  await "promotion" [ follower ] (fun () -> not (Server.standby follower));
  (* The promoted server carries the replicated state forward: the
     boot definitions are live (the trigger fires) and new commits land
     on the shipped journals. *)
  let c2 = connect follower in
  hello ~key:" drill" [ follower ] c2;
  send [ follower ] c2 (Protocol.Line "create item(n = 58)");
  ignore (expect_triggered [ follower ] c2 "post-promotion line");
  send [ follower ] c2 Protocol.Commit;
  ignore (expect_ok [ follower ] c2 "post-promotion commit");
  send [ follower ] c2 Protocol.Quit;
  ignore (expect_ok [ follower ] c2 "post-promotion quit");
  close_client c2;
  (* The old primary's address was taken over: clients reconnecting to
     it land on the promoted server. *)
  let c3 = connect_port primary_port in
  Fun.protect ~finally:(fun () -> close_client c3) @@ fun () ->
  hello [ follower ] c3;
  send [ follower ] c3 (Protocol.Ping "takeover");
  Alcotest.(check string) "ping over the taken-over port" "pong takeover"
    (expect_ok [ follower ] c3 "takeover ping");
  (* One more commit than the primary ever saw. *)
  let total_b =
    List.fold_left
      (fun acc shard ->
        match
          Journal.read
            ~path:
              (Filename.concat dir_b (Printf.sprintf "shard-%d.journal" shard))
        with
        | Ok r -> acc + r.Journal.last_commit_seq
        | Error msg -> Alcotest.fail msg)
      0 [ 0; 1 ]
  in
  Alcotest.(check int) "promoted journal carries the new commit" 5 total_b;
  stop_server follower;
  rm_rf dir_a;
  rm_rf dir_b

(* ----------------- checkpoint-era replication: GC'd history, attach *)

(* With [checkpoint_every = 1] every commit checkpoints, seals and — with
   no follower attached — GCs its history: the journal alone stops being
   full history.  A follower attaching afterwards must be caught up from
   the checkpoint base the primary synthesizes onto the segment stream;
   every later seal re-bases it the same way (the idempotency guard
   skipping already-applied sequences); promotion of such a follower
   yields a working, checkpointing primary. *)
let test_checkpointed_attach_and_promote () =
  let dir_a = tmp_dir "ckpt-primary" in
  let dir_b = tmp_dir "ckpt-standby" in
  let base =
    {
      Server.default_config with
      Server.engines = 1;
      domains = Some 0;
      boot_script = Some boot_script;
      checkpoint_every = Some 1;
    }
  in
  let primary =
    match
      Server.create { base with Server.journal_dir = Some dir_a; port = 0 }
    with
    | Ok s -> s
    | Error msg -> Alcotest.fail msg
  in
  (* Two committed transactions before any follower exists: each one
     checkpoints and seals, and with no ack floor the covered segments
     unlink — on-disk history is now checkpoint + live suffix only. *)
  let c = connect primary in
  hello ~key:" ckpt" [ primary ] c;
  List.iter
    (fun n ->
      send [ primary ] c
        (Protocol.Line (Printf.sprintf "create item(n = %d)" n));
      ignore (expect_triggered [ primary ] c "pre-attach line");
      send [ primary ] c Protocol.Commit;
      ignore (expect_ok [ primary ] c "pre-attach commit"))
    [ 41; 42 ];
  let journal_a = Filename.concat dir_a "shard-0.journal" in
  Alcotest.(check bool) "checkpoint written" true
    (Sys.file_exists (Checkpoint.path_for journal_a));
  Alcotest.(check bool) "seg 0 GC'd" false
    (Sys.file_exists (journal_a ^ ".seg-000000"));
  (* The follower attaches against GC'd history. *)
  let follower =
    match
      Server.create
        {
          base with
          Server.journal_dir = Some dir_b;
          port = 0;
          follow = Some ("127.0.0.1", Server.port primary);
        }
    with
    | Ok s -> s
    | Error msg -> Alcotest.fail msg
  in
  let both = [ primary; follower ] in
  (* Boot commit + two data commits = seq 3, reachable only through the
     shipped checkpoint base. *)
  await "resync from the checkpoint base" both (fun () ->
      repl_caught_up (Server.manager follower) ~commits:3);
  (* A post-attach commit replicates (and seals again: the follower is
     re-based mid-session, the idempotency guard holding the line). *)
  send both c (Protocol.Line "create item(n = 43)");
  ignore (expect_triggered both c "post-attach line");
  send both c Protocol.Commit;
  ignore (expect_ok both c "post-attach commit");
  await "post-attach commit replicated" both (fun () ->
      repl_caught_up (Server.manager follower) ~commits:4);
  send both c Protocol.Quit;
  ignore (expect_ok both c "quit");
  close_client c;
  stop_server primary;
  (* Promote and keep writing; the promoted shard checkpoints too. *)
  Server.request_promote follower;
  await "promotion" [ follower ] (fun () -> not (Server.standby follower));
  let c2 = connect follower in
  hello ~key:" ckpt" [ follower ] c2;
  send [ follower ] c2 (Protocol.Line "create item(n = 58)");
  ignore (expect_triggered [ follower ] c2 "post-promotion line");
  send [ follower ] c2 Protocol.Commit;
  ignore (expect_ok [ follower ] c2 "post-promotion commit");
  send [ follower ] c2 Protocol.Quit;
  ignore (expect_ok [ follower ] c2 "post-promotion quit");
  close_client c2;
  stop_server follower;
  (* The promoted shard checkpoints and GCs like any primary, so its
     journal alone is not full history — its own checkpoint is. *)
  let journal_b = Filename.concat dir_b "shard-0.journal" in
  Alcotest.(check bool) "promoted shard wrote its own checkpoint" true
    (Sys.file_exists (Checkpoint.path_for journal_b));
  (* A fresh recovery of the promoted data directory reproduces the full
     item set — 3 replicated plus 1 post-promotion create, each with its
     audit row from the boot trigger. *)
  let interp = Interp.create () in
  (* definitions only: recovery replays the operations *)
  (match Interp.run_string interp boot_script with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  (match Engine.recover (Interp.engine interp) ~path:journal_b with
  | Error msg -> Alcotest.fail msg
  | Ok report ->
      Alcotest.(check int) "recovery reaches the last commit" 5
        report.Engine.last_commit_seq;
      Alcotest.(check bool) "recovery booted from the checkpoint" true
        (report.Engine.booted_from_checkpoint <> None);
      let live =
        Object_store.count_live (Engine.store (Interp.engine interp))
      in
      Alcotest.(check int) "4 items + 4 audits" 8 live);
  rm_rf dir_a;
  rm_rf dir_b

let suite =
  [
    Alcotest.test_case "repl frames round-trip" `Quick
      test_repl_protocol_roundtrip;
    Alcotest.test_case "backoff schedule is bounded, jittered, seeded" `Quick
      test_backoff_schedule;
    Alcotest.test_case "tail ships committed prefixes only" `Quick
      test_tail_commit_prefix;
    Alcotest.test_case "tail follows segment rotation" `Quick
      test_tail_across_rotation;
    Alcotest.test_case "tail converges across rotation crash points" `Quick
      test_tail_rotation_failpoints;
    Alcotest.test_case "hard RST with buffered replies keeps serving" `Quick
      test_hard_close_keeps_serving;
    Alcotest.test_case "loadgen connect retry is bounded" `Quick
      test_loadgen_bounded_retry_gives_up;
    Alcotest.test_case "loadgen retries until the server arrives" `Quick
      test_loadgen_retry_until_server_arrives;
    Alcotest.test_case "failover drill: replicate, lose, promote" `Quick
      test_failover_drill;
    Alcotest.test_case "attach over GC'd history via checkpoint base" `Quick
      test_checkpointed_attach_and_promote;
  ]
