(* Durability: journal framing, crash recovery under fault injection,
   transaction abort, block atomicity and engine error-path hygiene.

   The central properties (the acceptance criteria of the durability
   extension, DESIGN.md §4b):

   - Crash recovery: for a seeded workload with failpoints armed at
     EVERY journal write/fsync/rename boundary in turn (torn writes
     included), recovery from the abandoned journal reproduces exactly
     the state after the last committed transaction — compared by store
     dump, by the full event log, and by ts probes.
   - Abort: [Engine.abort] is observationally equivalent to the
     transaction never having run, including for a follow-up
     transaction.

   The crash matrix honours CHIMERA_FAULT_SEED so CI can sweep seeds. *)

open Core

let fault_seed =
  match Sys.getenv_opt "CHIMERA_FAULT_SEED" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with Some n -> n | None -> 42)
  | None -> 42

let temp_journal () = Filename.temp_file "chimera-recovery" ".chj"
let remove_if_exists path = try Sys.remove path with Sys_error _ -> ()

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------- comparisons *)

let store_dump engine =
  List.map Store_codec.object_to_line
    (Object_store.dump_objects (Engine.store engine))

let event_log engine = Event_codec.to_string (Engine.event_base engine)

(* ts values of the domain's primitives and two composites, at every
   probe instant of the log: activation timestamps are part of the
   observable state recovery must reproduce. *)
let probe_exprs =
  List.map Expr_parse.parse_exn
    [
      "create(stock)";
      "modify(stock.quantity)";
      "delete(stock)";
      "create(stock) < modify(stock.quantity)";
      "modify(stock.quantity) , -delete(stock)";
    ]

let ts_probes engine =
  let eb = Engine.event_base engine in
  let env = Ts.env eb ~window:(Window.all ~upto:(Event_base.probe_now eb)) in
  let probes = Gen.probe_instants eb in
  List.concat_map
    (fun e -> List.map (fun at -> Ts.ts env ~at e) probes)
    probe_exprs

let check_same_state ~msg reference recovered =
  Alcotest.(check (list string))
    (msg ^ ": store dump") (store_dump reference) (store_dump recovered);
  Alcotest.(check string)
    (msg ^ ": event log") (event_log reference) (event_log recovered);
  Alcotest.(check (list int))
    (msg ^ ": ts probes") (ts_probes reference) (ts_probes recovered);
  Alcotest.(check int)
    (msg ^ ": oid generator")
    (Object_store.oid_count (Engine.store reference))
    (Object_store.oid_count (Engine.store recovered))

(* ------------------------------------------------ workload scaffolds *)

(* [txs] committed transactions of seeded inventory traffic.  The prng
   stream is consumed transaction by transaction, so a reference engine
   driven with the same seed for the first R transactions reproduces a
   crashed run's committed prefix exactly. *)
let drive ?(seed = fault_seed) engine ~txs ~lines ~ops =
  let prng = Prng.create ~seed in
  for _ = 1 to txs do
    Scenario.run_inventory_traffic prng engine ~lines ~ops_per_line:ops;
    Engine.commit_exn engine
  done

let reference_after ?config ~seed ~txs ~lines ~ops () =
  let engine = Scenario.engine ?config () in
  drive ~seed engine ~txs ~lines ~ops;
  engine

(* ------------------------------------------------ journal unit tests *)

let test_crc32 () =
  (* The standard CRC-32 check value. *)
  Alcotest.(check int)
    "crc32 check value" 0xCBF43926
    (Journal.crc32 "123456789")

let test_journal_roundtrip () =
  let path = temp_journal () in
  Fun.protect ~finally:(fun () -> remove_if_exists path) @@ fun () ->
  let j = Journal.create ~path () in
  Journal.append j ~tag:"op" "create\tstock";
  Journal.append j ~tag:"ev" "1\tcreate(stock)\t1\t2";
  Journal.commit j;
  Journal.append j ~tag:"op" "delete\t1";
  Journal.abort j;
  Journal.append j ~tag:"op" "select\tstock";
  Journal.commit j;
  Journal.append j ~tag:"op" "uncommitted";
  Journal.flush_block j;
  Journal.close j;
  match Journal.read ~path with
  | Error msg -> Alcotest.fail msg
  | Ok replay ->
      Alcotest.(check int)
        "committed txs" 2
        (List.length replay.Journal.committed);
      Alcotest.(check int) "last seq" 2 replay.Journal.last_commit_seq;
      Alcotest.(check int)
        "committed entries" 3 replay.Journal.entries_committed;
      Alcotest.(check int) "uncommitted" 1 replay.Journal.uncommitted_entries;
      Alcotest.(check int) "torn bytes" 0 replay.Journal.torn_bytes;
      let tags =
        List.map
          (fun e -> e.Journal.tag)
          (List.concat replay.Journal.committed)
      in
      (* The aborted transaction's flushed record must not replay. *)
      Alcotest.(check (list string)) "tags" [ "op"; "ev"; "op" ] tags

let test_torn_tail_tolerated () =
  let path = temp_journal () in
  Fun.protect ~finally:(fun () -> remove_if_exists path) @@ fun () ->
  let j = Journal.create ~path () in
  Journal.append j ~tag:"op" "first";
  Journal.commit j;
  Journal.append j ~tag:"op" "second-record-with-a-long-payload";
  Journal.commit j;
  Journal.close j;
  let content =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (* Cut the file mid-way through the second transaction's records. *)
  let cut = String.length content - 7 in
  let oc = open_out_bin path in
  output_string oc (String.sub content 0 cut);
  close_out oc;
  match Journal.read ~path with
  | Error msg -> Alcotest.fail msg
  | Ok replay ->
      Alcotest.(check int)
        "only the intact tx" 1
        (List.length replay.Journal.committed);
      Alcotest.(check int) "seq stops at 1" 1 replay.Journal.last_commit_seq;
      Alcotest.(check bool)
        "torn bytes reported" true
        (replay.Journal.torn_bytes > 0)

let test_foreign_file_rejected () =
  let path = temp_journal () in
  Fun.protect ~finally:(fun () -> remove_if_exists path) @@ fun () ->
  let oc = open_out_bin path in
  output_string oc "not a journal at all\n";
  close_out oc;
  (match Journal.read ~path with
  | Error msg ->
      Alcotest.(check bool)
        "error mentions header" true
        (contains_sub msg "header")
  | Ok _ -> Alcotest.fail "garbage accepted");
  match Journal.read ~path:(path ^ ".definitely-absent") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file accepted"

(* ----------------------------------------------- recovery (no fault) *)

let test_recover_clean () =
  let path = temp_journal () in
  Fun.protect ~finally:(fun () -> remove_if_exists path) @@ fun () ->
  let engine = Scenario.engine () in
  Engine.set_journal engine (Journal.create ~path ());
  drive engine ~txs:3 ~lines:8 ~ops:3;
  Option.iter Journal.close (Engine.journal engine);
  let recovered = Scenario.engine () in
  match Engine.recover recovered ~path with
  | Error msg -> Alcotest.fail msg
  | Ok report ->
      Alcotest.(check int) "three txs" 3 report.Engine.recovered_commits;
      Alcotest.(check int) "seq" 3 report.Engine.last_commit_seq;
      let reference =
        reference_after ~seed:fault_seed ~txs:3 ~lines:8 ~ops:3 ()
      in
      check_same_state ~msg:"clean recovery" reference recovered;
      (* Recovery counters surface in the engine stats. *)
      let stats = Engine.statistics recovered in
      Alcotest.(check int)
        "stats.recovered_commits" 3 stats.Engine.recovered_commits;
      Alcotest.(check bool)
        "stats.recovered_entries" true
        (stats.Engine.recovered_entries > 0)

let test_recover_uncommitted_dropped () =
  let path = temp_journal () in
  Fun.protect ~finally:(fun () -> remove_if_exists path) @@ fun () ->
  let engine = Scenario.engine () in
  Engine.set_journal engine (Journal.create ~path ());
  let prng = Prng.create ~seed:fault_seed in
  Scenario.run_inventory_traffic prng engine ~lines:6 ~ops_per_line:3;
  Engine.commit_exn engine;
  (* A second transaction that never commits: flushed but uncommitted. *)
  Scenario.run_inventory_traffic prng engine ~lines:6 ~ops_per_line:3;
  Option.iter Journal.close (Engine.journal engine);
  let recovered = Scenario.engine () in
  match Engine.recover recovered ~path with
  | Error msg -> Alcotest.fail msg
  | Ok report ->
      Alcotest.(check int) "one tx" 1 report.Engine.recovered_commits;
      Alcotest.(check bool)
        "uncommitted reported" true
        (report.Engine.dropped_entries > 0);
      let reference =
        reference_after ~seed:fault_seed ~txs:1 ~lines:6 ~ops:3 ()
      in
      check_same_state ~msg:"uncommitted dropped" reference recovered

(* ------------------------------------- crash-recovery property (core) *)

(* Runs the workload against a journaled engine expecting a [Crash];
   returns the journal (when its descriptor was created) so the caller
   can abandon it — losing unflushed bytes, as a real kill would. *)
let run_until_crash ~path ~sync ~config ~txs ~lines ~ops =
  let engine = Scenario.engine ~config () in
  match Journal.create ~sync ~path () with
  | exception Failpoint.Crash _ -> (None, true)
  | journal -> (
      Engine.set_journal engine journal;
      match drive engine ~txs ~lines ~ops with
      | () -> (Some journal, false)
      | exception Failpoint.Crash _ -> (Some journal, true))

(* The acceptance property: crash at every journal boundary in turn and
   assert recovery ≡ the last committed prefix re-run on a fresh
   engine. *)
let crash_matrix ~name ~sync ~compact ~txs ~lines ~ops () =
  let config =
    {
      Engine.default_config with
      Engine.compact_at_commit = compact;
      max_rule_executions = 10_000;
    }
  in
  let path = temp_journal () in
  Fun.protect
    ~finally:(fun () ->
      Failpoint.clear ();
      remove_if_exists path;
      remove_if_exists (path ^ ".rotating"))
  @@ fun () ->
  (* Pass 1: count the journal boundaries of the fault-free run. *)
  Failpoint.arm ~seed:fault_seed ~after:max_int ();
  let journal, crashed = run_until_crash ~path ~sync ~config ~txs ~lines ~ops in
  Alcotest.(check bool) (name ^ ": fault-free run completes") false crashed;
  Option.iter Journal.close journal;
  let boundaries = Failpoint.total_hits () in
  Failpoint.clear ();
  Alcotest.(check bool)
    (name ^ ": scenario has boundaries")
    true (boundaries > 0);
  (* Pass 2: crash at each boundary; recover; compare with the reference
     prefix.  References are cached per commit count — recovery across
     the whole matrix only ever lands on a committed prefix. *)
  let references = Hashtbl.create 8 in
  let reference_for commits =
    match Hashtbl.find_opt references commits with
    | Some engine -> engine
    | None ->
        let engine =
          reference_after ~config ~seed:fault_seed ~txs:commits ~lines ~ops ()
        in
        Hashtbl.replace references commits engine;
        engine
  in
  for boundary = 0 to boundaries - 1 do
    (* Varying the seed varies the torn-write cut points; the boundary
       order itself is seed-independent. *)
    Failpoint.arm ~seed:(fault_seed + boundary) ~after:boundary ();
    let journal, crashed =
      run_until_crash ~path ~sync ~config ~txs ~lines ~ops
    in
    Failpoint.clear ();
    Alcotest.(check bool)
      (Printf.sprintf "%s: boundary %d crashes" name boundary)
      true crashed;
    Option.iter Journal.abandon journal;
    let recovered = Scenario.engine ~config () in
    match Engine.recover recovered ~path with
    | Error msg ->
        Alcotest.failf "%s: boundary %d: recovery failed: %s" name boundary
          msg
    | Ok report ->
        let reference = reference_for report.Engine.last_commit_seq in
        check_same_state
          ~msg:(Printf.sprintf "%s: boundary %d" name boundary)
          reference recovered
  done

let test_crash_recovery_per_commit () =
  crash_matrix ~name:"per-commit" ~sync:Journal.Per_commit ~compact:None
    ~txs:3 ~lines:5 ~ops:2 ()

let test_crash_recovery_per_write () =
  crash_matrix ~name:"per-write" ~sync:Journal.Per_write ~compact:None ~txs:2
    ~lines:4 ~ops:2 ()

let test_crash_recovery_rotation () =
  (* compact_at_commit = 0: every commit compacts, so every commit is a
     checkpointed segment rotation — crashing the journal.rename boundary
     included. *)
  crash_matrix ~name:"rotation" ~sync:Journal.Per_commit ~compact:(Some 0)
    ~txs:3 ~lines:5 ~ops:2 ()

(* Rotation durability (the dirsync bugfix): rotation renames the fresh
   compacted segment over the live path and must then fsync the parent
   directory, or the rename itself can be lost on power failure.  The
   [journal.dirsync] failpoint sits exactly between the rename and the
   directory fsync; crashing there must leave a recoverable journal whose
   checkpoint is intact. *)
let test_rotation_dirsync_crash () =
  let path = temp_journal () in
  Fun.protect
    ~finally:(fun () ->
      Failpoint.clear ();
      remove_if_exists path;
      remove_if_exists (path ^ ".rotating"))
  @@ fun () ->
  let scenario () =
    let j = Journal.create ~path () in
    Journal.append j ~tag:"op" "before-rotation";
    Journal.commit j;
    Journal.rotate j ~base:[ ("op", "checkpoint-entry") ];
    Journal.append j ~tag:"op" "after-rotation";
    Journal.commit j;
    Journal.close j
  in
  (* Pass 1: count the boundaries of the fault-free run. *)
  remove_if_exists path;
  Failpoint.arm ~seed:fault_seed ~after:max_int ();
  scenario ();
  let boundaries = Failpoint.total_hits () in
  Failpoint.clear ();
  (* Pass 2: crash at each boundary; at the dirsync site specifically,
     assert the rename already happened and the journal recovers. *)
  let dirsync_crashes = ref 0 in
  for b = 0 to boundaries - 1 do
    remove_if_exists path;
    remove_if_exists (path ^ ".rotating");
    Failpoint.arm ~seed:fault_seed ~after:b ();
    (match scenario () with
    | () -> Alcotest.failf "boundary %d did not crash" b
    | exception Failpoint.Crash site ->
        Failpoint.clear ();
        if site = "journal.dirsync" then begin
          incr dirsync_crashes;
          Alcotest.(check bool) "temp segment renamed away" false
            (Sys.file_exists (path ^ ".rotating"));
          match Journal.read ~path with
          | Error msg ->
              Alcotest.failf "recovery after dirsync crash: %s" msg
          | Ok replay ->
              let payloads =
                List.map
                  (fun e -> e.Journal.payload)
                  (List.concat replay.Journal.committed)
              in
              Alcotest.(check bool) "checkpoint entry recovered" true
                (List.mem "checkpoint-entry" payloads);
              Alcotest.(check bool) "pre-rotation state is the checkpoint"
                false
                (List.mem "before-rotation" payloads)
        end)
  done;
  Alcotest.(check bool) "dirsync boundary exercised" true (!dirsync_crashes >= 1)

(* --------------------------- checkpoint/GC crash matrix (§4h bounded) *)

(* The checkpoint cycle (write ckpt atomically → seal the live segment →
   GC covered segments) adds seven crash sites to the journal's:
   [ckpt.write] (torn), [ckpt.fsync], [ckpt.rename], [ckpt.dirsync],
   [journal.seal.rename], [journal.seal.dirsync], [journal.gc.unlink] —
   plus [window.retire] inside the in-memory prefix retirement.  Crashing
   at every boundary of a checkpoint-every-commit workload, recovery from
   whatever files the crash left must land exactly on the last committed
   state, and must never need a segment GC already unlinked. *)

let segment_files path =
  let dir = Filename.dirname path in
  let prefix = Filename.basename path ^ ".seg-" in
  let plen = String.length prefix in
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter_map (fun name ->
             if String.length name > plen && String.sub name 0 plen = prefix
             then Some (Filename.concat dir name)
             else None)

let remove_chain path =
  remove_if_exists path;
  remove_if_exists (Checkpoint.path_for path);
  remove_if_exists (Checkpoint.path_for path ^ ".writing");
  List.iter remove_if_exists (segment_files path)

let run_ckpt_until_crash ?(cadence = `Commits) ~path ~config ~txs ~lines ~ops
    () =
  let engine = Scenario.engine ~config () in
  match Journal.create ~sync:Journal.Per_commit ~path () with
  | exception Failpoint.Crash _ -> (None, true)
  | journal -> (
      Engine.set_journal engine journal;
      (match cadence with
      | `Commits -> Engine.enable_checkpoints engine ~every_commits:1 ()
      | `Seconds ->
          (* A threshold below the monotonic clock's resolution: every
             commit boundary is due on the wall-clock cadence, so the
             crash sites match the commit-count matrix — reached through
             the Monotime arm of the cadence check. *)
          Engine.enable_checkpoints engine ~every_seconds:1e-9 ());
      match drive engine ~txs ~lines ~ops with
      | () -> (Some journal, false)
      | exception Failpoint.Crash _ -> (Some journal, true))

let test_checkpoint_crash_matrix () =
  let config =
    {
      Engine.default_config with
      Engine.compact_at_commit = None;
      max_rule_executions = 10_000;
      (* every line retires, so the checkpoint sites interleave with
         mid-transaction [window.retire] boundaries *)
      retire_in_tx = Some 1;
    }
  in
  let txs = 3 and lines = 5 and ops = 2 in
  let path = temp_journal () in
  Fun.protect
    ~finally:(fun () ->
      Failpoint.clear ();
      remove_chain path)
  @@ fun () ->
  (* Pass 1: boundaries of the fault-free run. *)
  remove_chain path;
  Failpoint.arm ~seed:fault_seed ~after:max_int ();
  let journal, crashed =
    run_ckpt_until_crash ~path ~config ~txs ~lines ~ops ()
  in
  Alcotest.(check bool) "fault-free checkpoint run completes" false crashed;
  Option.iter Journal.close journal;
  let boundaries = Failpoint.total_hits () in
  Failpoint.clear ();
  Alcotest.(check bool) "checkpoint scenario has boundaries" true
    (boundaries > 0);
  (* Pass 2: crash at each boundary; recover from whatever is on disk. *)
  let references = Hashtbl.create 8 in
  let reference_for commits =
    match Hashtbl.find_opt references commits with
    | Some engine -> engine
    | None ->
        let engine =
          reference_after ~config ~seed:fault_seed ~txs:commits ~lines ~ops ()
        in
        Hashtbl.replace references commits engine;
        engine
  in
  let sites = Hashtbl.create 8 in
  let booted_from_ckpt = ref 0 in
  for boundary = 0 to boundaries - 1 do
    remove_chain path;
    Failpoint.arm ~seed:(fault_seed + boundary) ~after:boundary ();
    let journal, crashed =
      match run_ckpt_until_crash ~path ~config ~txs ~lines ~ops () with
      | r -> r
      | exception Failpoint.Crash site ->
          (* Crash escaping the driver (e.g. inside [Journal.create]). *)
          Hashtbl.replace sites site ();
          (None, true)
    in
    Failpoint.clear ();
    Alcotest.(check bool)
      (Printf.sprintf "checkpoint boundary %d crashes" boundary)
      true crashed;
    Option.iter Journal.abandon journal;
    let recovered = Scenario.engine ~config () in
    match Engine.recover recovered ~path with
    | Error msg ->
        Alcotest.failf "checkpoint boundary %d: recovery failed: %s" boundary
          msg
    | Ok report ->
        if report.Engine.booted_from_checkpoint <> None then
          incr booted_from_ckpt;
        (* O(delta): a checkpoint boot replays only the suffix. *)
        (match report.Engine.booted_from_checkpoint with
        | Some seq ->
            Alcotest.(check bool)
              (Printf.sprintf
                 "boundary %d: suffix past checkpoint %d only (replayed %d)"
                 boundary seq report.Engine.replayed_records)
              true
              (report.Engine.last_commit_seq >= seq)
        | None -> ());
        let reference = reference_for report.Engine.last_commit_seq in
        check_same_state
          ~msg:(Printf.sprintf "checkpoint boundary %d" boundary)
          reference recovered
  done;
  (* The matrix really exercised the new sites and the checkpoint boot
     path (run with --verbose to see per-site counts if this trips). *)
  Alcotest.(check bool) "some recovery booted from a checkpoint" true
    (!booted_from_ckpt > 0)

(* The wall-clock cadence ([--checkpoint-interval]) through the same
   matrix: with [every_seconds] below the clock's resolution every
   commit is due on the time cadence, so the crash sites are the
   commit-count matrix's — reached through the Monotime arm of the
   cadence check.  Recovery must be exactly as crash-safe. *)
let test_checkpoint_time_cadence_crash_matrix () =
  let config =
    { Engine.default_config with Engine.compact_at_commit = None }
  in
  let txs = 2 and lines = 4 and ops = 2 in
  let path = temp_journal () in
  Fun.protect
    ~finally:(fun () ->
      Failpoint.clear ();
      remove_chain path)
  @@ fun () ->
  remove_chain path;
  (* Fault-free pass: the time cadence actually checkpoints. *)
  Failpoint.arm ~seed:fault_seed ~after:max_int ();
  let journal, crashed =
    run_ckpt_until_crash ~cadence:`Seconds ~path ~config ~txs ~lines ~ops ()
  in
  Alcotest.(check bool) "fault-free time-cadence run completes" false crashed;
  Option.iter Journal.close journal;
  let boundaries = Failpoint.total_hits () in
  Failpoint.clear ();
  (let recovered = Scenario.engine ~config () in
   match Engine.recover recovered ~path with
   | Error msg -> Alcotest.fail msg
   | Ok report ->
       Alcotest.(check bool) "time cadence wrote a checkpoint" true
         (report.Engine.booted_from_checkpoint <> None));
  (* Crash at every boundary; recovery lands on the committed prefix. *)
  let booted_from_ckpt = ref 0 in
  for boundary = 0 to boundaries - 1 do
    remove_chain path;
    Failpoint.arm ~seed:(fault_seed + boundary) ~after:boundary ();
    let journal, crashed =
      match
        run_ckpt_until_crash ~cadence:`Seconds ~path ~config ~txs ~lines ~ops
          ()
      with
      | r -> r
      | exception Failpoint.Crash _ -> (None, true)
    in
    Failpoint.clear ();
    Alcotest.(check bool)
      (Printf.sprintf "time-cadence boundary %d crashes" boundary)
      true crashed;
    Option.iter Journal.abandon journal;
    let recovered = Scenario.engine ~config () in
    match Engine.recover recovered ~path with
    | Error msg ->
        Alcotest.failf "time-cadence boundary %d: recovery failed: %s"
          boundary msg
    | Ok report ->
        if report.Engine.booted_from_checkpoint <> None then
          incr booted_from_ckpt;
        let reference =
          reference_after ~config ~seed:fault_seed
            ~txs:report.Engine.last_commit_seq ~lines ~ops ()
        in
        check_same_state
          ~msg:(Printf.sprintf "time-cadence boundary %d" boundary)
          reference recovered
  done;
  Alcotest.(check bool) "some time-cadence recovery booted from a checkpoint"
    true
    (!booted_from_ckpt > 0)

(* A crash between checkpoint+seal and the covered segments' unlink
   leaves both the checkpoint and the full chain behind: recovery must
   prefer the checkpoint (O(delta)) but land on the same state as a full
   replay would — and a chain whose covered segments DID unlink must
   recover without them. *)
let test_checkpoint_gc_unlink_crash () =
  let config =
    { Engine.default_config with Engine.compact_at_commit = None }
  in
  let path = temp_journal () in
  Fun.protect
    ~finally:(fun () ->
      Failpoint.clear ();
      remove_chain path)
  @@ fun () ->
  remove_chain path;
  (* Fault-free reference run with checkpoints, counting boundaries. *)
  Failpoint.arm ~seed:fault_seed ~after:max_int ();
  let journal, crashed =
    run_ckpt_until_crash ~path ~config ~txs:3 ~lines:4 ~ops:2 ()
  in
  Alcotest.(check bool) "fault-free run completes" false crashed;
  Option.iter Journal.close journal;
  let boundaries = Failpoint.total_hits () in
  Failpoint.clear ();
  (* Crash at every boundary; whenever the site is the GC unlink, assert
     the checkpoint file is already durable and recovery works both with
     the leftover segments present and after finishing their removal. *)
  let unlink_crashes = ref 0 in
  for b = 0 to boundaries - 1 do
    remove_chain path;
    Failpoint.arm ~seed:fault_seed ~after:b ();
    let journal, crashed =
      run_ckpt_until_crash ~path ~config ~txs:3 ~lines:4 ~ops:2 ()
    in
    Failpoint.clear ();
    Alcotest.(check bool) (Printf.sprintf "boundary %d crashes" b) true
      crashed;
    Option.iter Journal.abandon journal;
    (* GC runs only after the seal has opened the fresh live file, so
       "the unlink finishes post-crash" is a reachable state only when
       the live file exists; a crash mid-seal leaves segments too, but
       there nothing was ever going to unlink them. *)
    let site_was_unlink = segment_files path <> [] && Sys.file_exists path in
    if site_was_unlink then begin
      (* Leftover covered segments: recovery with them present... *)
      let with_segments = Scenario.engine ~config () in
      (match Engine.recover with_segments ~path with
      | Error msg -> Alcotest.failf "boundary %d (segments left): %s" b msg
      | Ok _ -> ());
      (* ...and with the unlink completed post-crash agree exactly. *)
      (match Checkpoint.read_opt ~path:(Checkpoint.path_for path) with
      | Ok (Some ckpt) ->
          let covered seg =
            match Journal.read ~path:seg with
            | Ok r -> r.Journal.last_commit_seq <= ckpt.Checkpoint.commit_seq
            | Error _ -> false
          in
          let removable = List.filter covered (segment_files path) in
          if removable <> [] then begin
            incr unlink_crashes;
            List.iter remove_if_exists removable;
            let without = Scenario.engine ~config () in
            match Engine.recover without ~path with
            | Error msg ->
                Alcotest.failf "boundary %d (segments GC'd): %s" b msg
            | Ok _ ->
                check_same_state
                  ~msg:(Printf.sprintf "boundary %d: GC completion" b)
                  with_segments without
          end
      | Ok None | Error _ -> ())
    end
  done;
  Alcotest.(check bool) "covered-segment crashes exercised" true
    (!unlink_crashes >= 1)

(* ------------------------------------------------------------- abort *)

(* Abort ≡ the transaction never ran: state, generators and the
   behaviour of a follow-up transaction all coincide with an engine that
   only saw the committed prefix. *)
let test_abort_equiv_never_ran () =
  let aborted = Scenario.engine () and reference = Scenario.engine () in
  (* Both commit the same first transaction. *)
  drive aborted ~txs:1 ~lines:8 ~ops:3;
  drive reference ~txs:1 ~lines:8 ~ops:3;
  (* Only [aborted] runs a second transaction — including a rule and a
     timer defined mid-transaction — then aborts it. *)
  let prng = Prng.create ~seed:(fault_seed + 1) in
  Scenario.run_inventory_traffic prng aborted ~lines:8 ~ops_per_line:3;
  ignore (Engine.define_timer aborted ~name:"doomed" ~period_lines:2);
  ignore
    (Engine.define_exn aborted
       { Scenario.check_stock_qty with Rule.name = "doomedRule"; priority = 99 });
  Scenario.run_inventory_traffic prng aborted ~lines:4 ~ops_per_line:2;
  Engine.abort aborted;
  check_same_state ~msg:"abort" reference aborted;
  Alcotest.(check bool)
    "mid-tx rule dropped" true
    (Rule_table.find (Engine.rules aborted) "doomedRule" = None);
  Alcotest.(check (list string))
    "mid-tx timer dropped"
    (Engine.timer_names reference)
    (Engine.timer_names aborted);
  Alcotest.(check int)
    "abort counted" 1 (Engine.statistics aborted).Engine.aborts;
  (* The follow-up transaction behaves identically on both engines. *)
  drive ~seed:(fault_seed + 2) aborted ~txs:1 ~lines:8 ~ops:3;
  drive ~seed:(fault_seed + 2) reference ~txs:1 ~lines:8 ~ops:3;
  check_same_state ~msg:"post-abort transaction" reference aborted

let test_abort_qcheck =
  Gen.qcheck ~count:40 "abort ≡ never-ran on random traffic"
    QCheck.(triple (int_bound 10_000) (int_range 1 10) (int_range 1 4))
    (fun (seed, lines, ops) ->
      let aborted = Scenario.engine () and reference = Scenario.engine () in
      drive ~seed aborted ~txs:1 ~lines:4 ~ops:2;
      drive ~seed reference ~txs:1 ~lines:4 ~ops:2;
      let prng = Prng.create ~seed:(seed + 7) in
      Scenario.run_inventory_traffic prng aborted ~lines ~ops_per_line:ops;
      Engine.abort aborted;
      store_dump aborted = store_dump reference
      && event_log aborted = event_log reference
      && ts_probes aborted = ts_probes reference)

(* ------------------------------- posting lists / wake index rebuild *)

(* The type-indexed structures added for the indexed wake — per-type
   posting lists in the event base and the subscription-driven dirty set
   in the engine — are rebuilt, not journaled.  Regression: after an
   abort and after a crash-style recovery they must answer type-indexed
   queries exactly like a reference engine that only ever saw the
   committed prefix, and a follow-up transaction must trigger rules
   identically (a stale or empty wake index would silently under-fire). *)
let posting_dump engine =
  let eb = Engine.event_base engine in
  let upto = Event_base.probe_now eb in
  List.map
    (fun etype ->
      List.map Time.to_int
        (Event_base.timestamps_of_types_in eb ~types:[ etype ]
           ~after:Time.origin ~upto))
    Domain.all_event_types

let firing_counts engine =
  let s = Engine.statistics engine in
  (s.Engine.considerations, s.Engine.executions,
   s.Engine.trigger_stats.Trigger_support.fired)

let test_posting_lists_survive_abort_and_recovery () =
  let path = temp_journal () in
  Fun.protect ~finally:(fun () -> remove_if_exists path) @@ fun () ->
  let engine = Scenario.engine () in
  Engine.set_journal engine (Journal.create ~path ());
  drive engine ~txs:2 ~lines:6 ~ops:3;
  (* An aborted transaction must leave no trace in the posting lists. *)
  let prng = Prng.create ~seed:(fault_seed + 3) in
  Scenario.run_inventory_traffic prng engine ~lines:6 ~ops_per_line:3;
  Engine.abort engine;
  let reference = reference_after ~seed:fault_seed ~txs:2 ~lines:6 ~ops:3 () in
  Alcotest.(check (list (list int)))
    "posting lists after abort" (posting_dump reference) (posting_dump engine);
  Option.iter Journal.close (Engine.journal engine);
  (* Crash-style recovery into a fresh engine: the posting lists and the
     wake subscriptions are rebuilt from the replayed log. *)
  let recovered = Scenario.engine () in
  (match Engine.recover recovered ~path with
  | Error msg -> Alcotest.fail msg
  | Ok report ->
      Alcotest.(check int) "two txs" 2 report.Engine.recovered_commits);
  check_same_state ~msg:"posting recovery" reference recovered;
  Alcotest.(check (list (list int)))
    "posting lists after recovery" (posting_dump reference)
    (posting_dump recovered);
  (* The follow-up transaction exercises the rebuilt wake index: the
     standard rules must consider and fire exactly as on the reference
     (both engines run the default indexed wake). *)
  let base_ref = firing_counts reference in
  let base_rec = firing_counts recovered in
  drive ~seed:(fault_seed + 4) reference ~txs:1 ~lines:8 ~ops:3;
  drive ~seed:(fault_seed + 4) recovered ~txs:1 ~lines:8 ~ops:3;
  let d (a, b, c) (a', b', c') = (a - a', b - b', c - c') in
  let pp (a, b, c) = Printf.sprintf "cons=%d exec=%d fired=%d" a b c in
  Alcotest.(check string)
    "post-recovery trigger behaviour"
    (pp (d (firing_counts reference) base_ref))
    (pp (d (firing_counts recovered) base_rec));
  check_same_state ~msg:"post-recovery transaction" reference recovered

(* --------------------------------------------------- block atomicity *)

(* A block whose Nth operation fails must leave no trace: store, event
   base and counters as if the line was never issued. *)
let test_failed_block_rolls_back () =
  let engine = Scenario.engine () in
  drive engine ~txs:1 ~lines:6 ~ops:3;
  let dump_before = store_dump engine in
  let log_before = event_log engine in
  let stats = Engine.statistics engine in
  let ops_before = stats.Engine.operations
  and evs_before = stats.Engine.events in
  (match
     Engine.execute_line engine
       [
         Domain.new_stock ~quantity:5 ~maxquantity:100 ~minquantity:0;
         Operation.Modify
           {
             oid = Ident.Oid.of_int 9999;
             attribute = "quantity";
             value = Value.Int 1;
           };
       ]
   with
  | Error (`Unknown_object _) -> ()
  | Ok () -> Alcotest.fail "expected unknown object"
  | Error e -> Alcotest.failf "unexpected error: %a" Engine.pp_error e);
  Alcotest.(check (list string))
    "store unchanged" dump_before (store_dump engine);
  Alcotest.(check string) "event base unchanged" log_before (event_log engine);
  let stats = Engine.statistics engine in
  Alcotest.(check int)
    "operations counter unwound" ops_before stats.Engine.operations;
  Alcotest.(check int) "events counter unwound" evs_before stats.Engine.events;
  Alcotest.(check bool)
    "rollback counted" true
    (stats.Engine.block_rollbacks > 0);
  (* The engine stays usable after the rollback. *)
  match
    Engine.execute_line engine
      [ Domain.new_stock ~quantity:7 ~maxquantity:100 ~minquantity:0 ]
  with
  | Ok () -> ()
  | Error e ->
      Alcotest.failf "engine wedged after rollback: %a" Engine.pp_error e

(* ------------------------------------------------ error-path hygiene *)

(* `Nontermination aborts cleanly: after the budget error the engine can
   be wound back to the committed prefix. *)
let test_nontermination_abortable () =
  let config = { Engine.default_config with Engine.max_rule_executions = 5 } in
  let make () =
    let engine = Engine.create ~config (Domain.schema ()) in
    (* create(stock) -> create another stock: an unbounded cascade. *)
    ignore
      (Engine.define_exn engine
         {
           Rule.name = "runaway";
           target = None;
           event = Expr_parse.parse_exn "create(stock)";
           condition = [];
           action =
             [
               Action.A_create
                 {
                   class_name = "stock";
                   attrs =
                     [
                       ("quantity", Query.Term (Query.Const (Value.Int 1)));
                       ("maxquantity", Query.Term (Query.Const (Value.Int 10)));
                       ("minquantity", Query.Term (Query.Const (Value.Int 0)));
                     ];
                   bind = None;
                 };
             ];
           coupling = Rule.Immediate;
           consumption = Rule.Consuming;
           priority = 1;
         });
    engine
  in
  let engine = make () and reference = make () in
  (match
     Engine.execute_line engine
       [ Domain.new_stock ~quantity:1 ~maxquantity:10 ~minquantity:0 ]
   with
  | Error (`Nontermination _) -> ()
  | Ok () -> Alcotest.fail "expected nontermination"
  | Error e -> Alcotest.failf "unexpected: %a" Engine.pp_error e);
  Engine.abort engine;
  check_same_state ~msg:"nontermination then abort" reference engine

(* Duplicate-timer and invalid-operation rejections leave every counter
   that mirrors state untouched. *)
let test_error_paths_keep_stats () =
  let engine = Scenario.engine () in
  ignore (Engine.define_timer engine ~name:"tick" ~period_lines:3);
  drive engine ~txs:1 ~lines:5 ~ops:2;
  let snap () =
    let s = Engine.statistics engine in
    (s.Engine.operations, s.Engine.events, s.Engine.executions)
  in
  let ops0, evs0, exec0 = snap () in
  let timers0 = Engine.timer_names engine in
  (match Engine.define_timer engine ~name:"tick" ~period_lines:5 with
  | _ -> Alcotest.fail "duplicate timer accepted"
  | exception Invalid_argument _ -> ());
  (match Engine.define_timer engine ~name:"bad" ~period_lines:0 with
  | _ -> Alcotest.fail "non-positive period accepted"
  | exception Invalid_argument _ -> ());
  (match
     Engine.execute_line engine
       [
         Operation.Modify
           {
             oid = Ident.Oid.of_int 424242;
             attribute = "quantity";
             value = Value.Int 1;
           };
       ]
   with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unknown object accepted");
  let ops1, evs1, exec1 = snap () in
  Alcotest.(check int) "operations stable" ops0 ops1;
  Alcotest.(check int) "events stable" evs0 evs1;
  Alcotest.(check int) "executions stable" exec0 exec1;
  Alcotest.(check (list string))
    "timers unchanged" timers0 (Engine.timer_names engine);
  (* And the engine still commits. *)
  drive ~seed:(fault_seed + 9) engine ~txs:1 ~lines:3 ~ops:2

let suite =
  [
    Alcotest.test_case "crc32 check value" `Quick test_crc32;
    Alcotest.test_case "journal roundtrip (commit/abort markers)" `Quick
      test_journal_roundtrip;
    Alcotest.test_case "torn tail tolerated" `Quick test_torn_tail_tolerated;
    Alcotest.test_case "foreign/missing journals rejected" `Quick
      test_foreign_file_rejected;
    Alcotest.test_case "clean recovery reproduces committed state" `Quick
      test_recover_clean;
    Alcotest.test_case "uncommitted tail dropped on recovery" `Quick
      test_recover_uncommitted_dropped;
    Alcotest.test_case "crash recovery at every boundary (per-commit)" `Quick
      test_crash_recovery_per_commit;
    Alcotest.test_case "crash recovery at every boundary (per-write)" `Quick
      test_crash_recovery_per_write;
    Alcotest.test_case "crash recovery across segment rotation" `Quick
      test_crash_recovery_rotation;
    Alcotest.test_case "rotation crash between rename and dirsync" `Quick
      test_rotation_dirsync_crash;
    Alcotest.test_case "checkpoint/seal/GC crash at every boundary" `Quick
      test_checkpoint_crash_matrix;
    Alcotest.test_case "checkpoint time cadence crash at every boundary"
      `Quick test_checkpoint_time_cadence_crash_matrix;
    Alcotest.test_case "crash between checkpoint and segment unlink" `Quick
      test_checkpoint_gc_unlink_crash;
    Alcotest.test_case "abort ≡ never ran (incl. follow-up tx)" `Quick
      test_abort_equiv_never_ran;
    Alcotest.test_case "posting lists + wake survive abort and recovery"
      `Quick test_posting_lists_survive_abort_and_recovery;
    test_abort_qcheck;
    Alcotest.test_case "failed block leaves no trace" `Quick
      test_failed_block_rolls_back;
    Alcotest.test_case "nontermination leaves the engine abortable" `Quick
      test_nontermination_abortable;
    Alcotest.test_case "rejected inputs keep stats consistent" `Quick
      test_error_paths_keep_stats;
  ]
