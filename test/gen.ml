(* Shared QCheck generators: random event histories over the paper's
   A/B/C-style abstract alphabet, and random event expressions at several
   operator profiles. *)

open Core

let alphabet_list = Domain.abstract_alphabet 3
let alphabet = Array.of_list alphabet_list

(* A history is a list of (event-type index, object index). *)
type history = (int * int) list

let gen_history =
  QCheck.Gen.(list_size (int_range 0 15) (pair (int_range 0 2) (int_range 0 2)))

let print_history h =
  String.concat ";"
    (List.map
       (fun (t, o) -> Printf.sprintf "%s@o%d" (Event_type.to_string alphabet.(t)) o)
       h)

(* Replays a history into a fresh event base.  Object indexes are offset by
   one (oid 0 is reserved). *)
let build_event_base history =
  let eb = Event_base.create () in
  List.iter
    (fun (t, o) ->
      ignore
        (Event_base.record eb ~etype:alphabet.(t) ~oid:(Ident.Oid.of_int (o + 1))))
    history;
  eb

(* Probe instants covering every sign regime of a replayed history: one
   before everything, every event instant, and one after everything. *)
let probe_instants eb =
  let window = Window.all ~upto:(Event_base.probe_now eb) in
  let stamps = Event_base.timestamps_in eb ~window in
  (Time.of_int 1 :: stamps) @ [ Event_base.probe_now eb ]

type profile = Regular | Boolean | Full

let gen_inst_expr =
  QCheck.Gen.(
    sized_size (int_range 0 4) @@ fix (fun self n ->
        if n = 0 then map (fun i -> Expr.I_prim alphabet.(i)) (int_range 0 2)
        else
          frequency
            [
              (1, map (fun i -> Expr.I_prim alphabet.(i)) (int_range 0 2));
              (2, map2 Expr.i_conj (self (n / 2)) (self (n / 2)));
              (2, map2 Expr.i_disj (self (n / 2)) (self (n / 2)));
              (2, map2 Expr.i_seq (self (n / 2)) (self (n / 2)));
              (1, map Expr.i_not (self (n - 1)));
            ]))

let gen_set_expr profile =
  QCheck.Gen.(
    sized_size (int_range 0 5) @@ fix (fun self n ->
        if n = 0 then map (fun i -> Expr.Prim alphabet.(i)) (int_range 0 2)
        else
          let base =
            [
              (1, map (fun i -> Expr.Prim alphabet.(i)) (int_range 0 2));
              (2, map2 Expr.conj (self (n / 2)) (self (n / 2)));
              (2, map2 Expr.disj (self (n / 2)) (self (n / 2)));
              (2, map2 Expr.seq (self (n / 2)) (self (n / 2)));
            ]
          in
          let with_neg =
            match profile with
            | Regular -> base
            | Boolean | Full -> (1, map Expr.not_ (self (n - 1))) :: base
          in
          let with_inst =
            match profile with
            | Regular | Boolean -> with_neg
            | Full -> (1, map Expr.inst gen_inst_expr) :: with_neg
          in
          frequency with_inst))

let arb_set_expr profile =
  QCheck.make ~print:Expr.to_string (gen_set_expr profile)

let arb_inst_expr = QCheck.make ~print:Expr.inst_to_string gen_inst_expr

let arb_history = QCheck.make ~print:print_history gen_history

let arb_history_and_expr profile =
  QCheck.make
    ~print:(fun (h, e) ->
      Printf.sprintf "history=[%s] expr=%s" (print_history h) (Expr.to_string e))
    QCheck.Gen.(pair gen_history (gen_set_expr profile))

let arb_history_and_exprs2 profile =
  QCheck.make
    ~print:(fun (h, (a, b)) ->
      Printf.sprintf "history=[%s] a=%s b=%s" (print_history h)
        (Expr.to_string a) (Expr.to_string b))
    QCheck.Gen.(
      pair gen_history (pair (gen_set_expr profile) (gen_set_expr profile)))

let arb_history_and_exprs3 profile =
  QCheck.make
    ~print:(fun (h, (a, (b, c))) ->
      Printf.sprintf "history=[%s] a=%s b=%s c=%s" (print_history h)
        (Expr.to_string a) (Expr.to_string b) (Expr.to_string c))
    QCheck.Gen.(
      pair gen_history
        (pair (gen_set_expr profile)
           (pair (gen_set_expr profile) (gen_set_expr profile))))

(* Evaluation helper: ts at every probe instant under both styles. *)
let ts_env ?style eb =
  Ts.env ?style eb ~window:(Window.all ~upto:(Event_base.probe_now eb))

(* Candidate window lower bounds covering every restart point of a
   history: the transaction start plus the consumption instant right
   after each event (where a consuming rule's window would move). *)
let window_starts eb =
  let window = Window.all ~upto:(Event_base.probe_now eb) in
  let stamps = Event_base.timestamps_in eb ~window in
  Time.origin :: List.map Time.probe_after stamps

let qcheck ?(count = 300) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)
