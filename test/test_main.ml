(* Aggregates every test suite; run with [dune runtest]. *)

let () =
  Alcotest.run "chimera-composite-events"
    [
      ("util", Suite_util.suite);
      ("event", Suite_event.suite);
      ("expr", Suite_expr.suite);
      ("ts-walkthroughs", Suite_ts.suite);
      ("event-formulas", Suite_formulas.suite);
      ("prose-examples", Suite_prose.suite);
      ("laws", Suite_laws.suite);
      ("optimizer", Suite_optimizer.suite);
      ("store", Suite_store.suite);
      ("store-model", Suite_store_model.suite);
      ("trigger-support", Suite_trigger.suite);
      ("engine", Suite_engine.suite);
      ("engine-lifecycle", Suite_engine2.suite);
      ("baselines", Suite_baseline.suite);
      ("lang", Suite_lang.suite);
      ("extensions", Suite_extensions.suite);
      ("memo", Suite_memo.suite);
      ("derived-operators", Suite_derived.suite);
      ("persistence", Suite_persistence.suite);
      ("recovery", Suite_recovery.suite);
      ("bounded", Suite_bounded.suite);
      ("edge-cases", Suite_edge.suite);
      ("lang-extensions", Suite_lang2.suite);
      ("workload", Suite_workload.suite);
      ("obs", Suite_obs.suite);
      ("differential", Suite_differential.suite);
      ("roundtrip", Suite_roundtrip.suite);
      ("server", Suite_server.suite);
      ("repl", Suite_repl.suite);
    ]
