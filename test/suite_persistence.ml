(* Event-base persistence (codec) and engine log compaction. *)

open Core

let roundtrip =
  Gen.qcheck ~count:200 "codec roundtrip preserves ts everywhere"
    (Gen.arb_history_and_expr Gen.Full)
    (fun (h, e) ->
      let eb = Gen.build_event_base h in
      match Event_codec.of_string (Event_codec.to_string eb) with
      | Error msg -> QCheck.Test.fail_reportf "decode: %s" msg
      | Ok eb' ->
          let probe eb =
            let at = Event_base.probe_now eb in
            let env = Ts.env eb ~window:(Window.all ~upto:at) in
            List.map (fun at -> Ts.ts env ~at e) (Gen.probe_instants eb)
          in
          Event_base.size eb = Event_base.size eb' && probe eb = probe eb')

let test_codec_errors () =
  let cases =
    [
      ("", "header");
      ("# wrong header\n", "header");
      ("# chimera-event-base v1\ngarbage", "fields");
      ("# chimera-event-base v1\n1\tcreate(stock)\tx\t2", "numbers");
      (* timestamp going backwards *)
      ( "# chimera-event-base v1\n\
         1\tcreate(stock)\t1\t4\n\
         2\tcreate(stock)\t1\t2",
        "increasing" );
      (* odd (probe) instant *)
      ("# chimera-event-base v1\n1\tcreate(stock)\t1\t3", "instant");
    ]
  in
  List.iter
    (fun (text, needle) ->
      match Event_codec.of_string text with
      | Ok _ -> Alcotest.failf "expected failure for %S" text
      | Error msg ->
          Alcotest.(check bool)
            (Printf.sprintf "%S mentions %s" msg needle)
            true
            (Astring_contains.contains msg needle))
    cases

let test_file_roundtrip () =
  let eb = Gen.build_event_base [ (0, 0); (1, 1); (2, 0) ] in
  let path = Filename.temp_file "chimera" ".events" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (match Event_codec.write_file eb ~path with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg);
      match Event_codec.read_file path with
      | Ok eb' -> Alcotest.(check int) "size" 3 (Event_base.size eb')
      | Error msg -> Alcotest.fail msg)

(* The file variants report I/O failures as [Error] carrying the path —
   never a raised [Sys_error]. *)
let test_file_io_errors () =
  let missing = Filename.concat (Filename.get_temp_dir_name ()) "chimera-definitely-absent.events" in
  (match Event_codec.read_file missing with
  | Ok _ -> Alcotest.fail "reading a missing file succeeded"
  | Error msg ->
      Alcotest.(check bool) "read error mentions the path" true
        (Astring_contains.contains msg missing));
  let unwritable = "/nonexistent-dir/chimera.events" in
  match Event_codec.write_file (Gen.build_event_base [ (0, 0) ]) ~path:unwritable with
  | Ok () -> Alcotest.fail "writing into a missing directory succeeded"
  | Error msg ->
      Alcotest.(check bool) "write error mentions the path" true
        (Astring_contains.contains msg unwritable)

(* Compaction must be behaviour-invisible: same traffic with and without
   it yields the same store contents and rule executions, while the log
   shrinks. *)
let test_compaction_transparent () =
  let run ~compact =
    let config =
      {
        Engine.default_config with
        Engine.compact_at_commit = (if compact then Some 1 else None);
      }
    in
    let engine = Scenario.engine ~config () in
    let prng = Prng.create ~seed:99 in
    for _ = 1 to 5 do
      Scenario.run_inventory_traffic prng engine ~lines:20 ~ops_per_line:3;
      Engine.commit_exn engine
    done;
    let stats = Engine.statistics engine in
    let stock =
      List.map
        (fun oid ->
          match
            Object_store.get (Engine.store engine) oid ~attribute:"quantity"
          with
          | Ok v -> Value.to_string v
          | Error _ -> "?")
        (Object_store.extent (Engine.store engine) ~class_name:"stock")
    in
    (stats.Engine.executions, stock, Event_base.size (Engine.event_base engine))
  in
  let execs_c, stock_c, size_c = run ~compact:true in
  let execs_n, stock_n, size_n = run ~compact:false in
  Alcotest.(check int) "same executions" execs_n execs_c;
  Alcotest.(check (list string)) "same final store" stock_n stock_c;
  Alcotest.(check bool) "compacted log is empty after commit" true (size_c = 0);
  Alcotest.(check bool) "uncompacted log retains history" true (size_n > 0)

let test_compaction_keeps_clock_monotone () =
  let config =
    { Engine.default_config with Engine.compact_at_commit = Some 1 }
  in
  let engine = Engine.create ~config (Domain.schema ()) in
  Engine.execute_line_exn engine
    [ Domain.new_stock ~quantity:1 ~maxquantity:10 ~minquantity:0 ];
  let before = Time.to_int (Event_base.now (Engine.event_base engine)) in
  Engine.commit_exn engine;
  Engine.execute_line_exn engine
    [ Domain.new_stock ~quantity:2 ~maxquantity:10 ~minquantity:0 ];
  let after = Time.to_int (Event_base.now (Engine.event_base engine)) in
  Alcotest.(check bool) "instants strictly increase across compaction" true
    (after > before)

let suite =
  [
    roundtrip;
    Alcotest.test_case "codec error reporting" `Quick test_codec_errors;
    Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
    Alcotest.test_case "file I/O errors are results" `Quick
      test_file_io_errors;
    Alcotest.test_case "compaction is transparent" `Quick
      test_compaction_transparent;
    Alcotest.test_case "compaction keeps instants monotone" `Quick
      test_compaction_keeps_clock_monotone;
  ]
